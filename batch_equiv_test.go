package onepipe_test

import (
	"fmt"
	"testing"

	"onepipe"
)

// collectDeliveries runs a fixed multi-round workload — bursty scatterings
// that coalesce into frames when batching is on, a mix of best-effort and
// reliable traffic, and payloads big enough to split runs across frames —
// and returns every process's delivery log as (ts, src, payload) strings.
func collectDeliveries(t *testing.T, disableBatching bool, lossRate float64) [][]string {
	t.Helper()
	cfg := onepipe.Defaults()
	cfg.Seed = 7
	cfg.LossRate = lossRate
	cfg.DisableBatching = disableBatching
	cl := onepipe.NewCluster(cfg)
	n := cl.NumProcesses()

	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		i := i
		cl.Process(i).OnDeliver(func(d onepipe.Delivery) {
			logs[i] = append(logs[i], fmt.Sprintf("%d/%d/%v", d.TS, d.Src, d.Data))
		})
	}
	cl.Run(50 * onepipe.Microsecond)

	for round := 0; round < 4; round++ {
		// Back-to-back scatterings from each sender at one sim instant:
		// same-conn members land inside the batch window and coalesce.
		for sender := 0; sender < n; sender += 2 {
			for burst := 0; burst < 3; burst++ {
				var msgs []onepipe.Message
				for k := 0; k < 3; k++ {
					dst := (sender + 1 + k) % n
					msgs = append(msgs, onepipe.Message{
						Dst:  onepipe.ProcID(dst),
						Data: fmt.Sprintf("r%d/s%d/b%d/k%d", round, sender, burst, k),
						Size: 64 + 128*burst,
					})
				}
				var opts []onepipe.SendOption
				if (sender+burst)%2 == 1 {
					opts = append(opts, onepipe.Reliable())
				}
				if err := cl.Process(sender).Send(msgs, opts...); err != nil {
					t.Fatalf("send (round %d sender %d burst %d): %v", round, sender, burst, err)
				}
			}
		}
		cl.Run(30 * onepipe.Microsecond)
	}
	cl.Run(2 * onepipe.Millisecond)
	return logs
}

// TestBatchingPreservesDeliverySequence is the equivalence property behind
// the adaptive-batching tentpole: frame coalescing is a wire-level
// optimization, so a batched run and an unbatched run of the same seeded
// workload must deliver identical (timestamp, sender, payload) sequences at
// every process. Timestamps are assigned at launch, before the doorbell
// queue, which is what makes this hold exactly.
func TestBatchingPreservesDeliverySequence(t *testing.T) {
	batched := collectDeliveries(t, false, 0)
	plain := collectDeliveries(t, true, 0)
	if len(batched) != len(plain) {
		t.Fatalf("process counts differ: %d vs %d", len(batched), len(plain))
	}
	total := 0
	for p := range batched {
		if len(batched[p]) != len(plain[p]) {
			t.Fatalf("process %d: batched delivered %d, unbatched %d", p, len(batched[p]), len(plain[p]))
		}
		for i := range batched[p] {
			if batched[p][i] != plain[p][i] {
				t.Fatalf("process %d delivery %d differs:\n  batched:   %s\n  unbatched: %s",
					p, i, batched[p][i], plain[p][i])
			}
		}
		total += len(batched[p])
	}
	if total == 0 {
		t.Fatal("workload delivered nothing; property vacuous")
	}
}

// TestBatchedRunIsDeterministic pins the weaker property that still must
// hold under loss (where frames share fate and the delivery sets may
// legitimately differ from an unbatched run): the same seed always yields
// the same batched delivery sequences.
func TestBatchedRunIsDeterministic(t *testing.T) {
	a := collectDeliveries(t, false, 0.01)
	b := collectDeliveries(t, false, 0.01)
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatalf("process %d: %d vs %d deliveries across identical runs", p, len(a[p]), len(b[p]))
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatalf("process %d delivery %d differs across identical seeded runs", p, i)
			}
		}
	}
}
