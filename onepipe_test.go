package onepipe

import (
	"sort"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	cl := NewCluster(Defaults())
	var got []Delivery
	cl.Process(1).OnDeliver(func(d Delivery) { got = append(got, d) })
	cl.Run(50 * Microsecond)
	if err := cl.Process(0).UnreliableSend([]Message{{Dst: 1, Data: "hello", Size: 64}}); err != nil {
		t.Fatal(err)
	}
	cl.Run(200 * Microsecond)
	if len(got) != 1 || got[0].Data != "hello" || got[0].Src != 0 {
		t.Fatalf("got %v", got)
	}
	if got[0].TS <= 0 {
		t.Fatal("delivery has no timestamp")
	}
}

func TestScatteringAtomicTimestampViaAPI(t *testing.T) {
	cl := NewCluster(Defaults())
	ts := make(map[int]Timestamp)
	for i := 1; i < 4; i++ {
		i := i
		cl.Process(i).OnDeliver(func(d Delivery) { ts[i] = d.TS })
	}
	cl.Run(50 * Microsecond)
	cl.Process(0).ReliableSend([]Message{
		{Dst: 1, Data: 1, Size: 64},
		{Dst: 2, Data: 2, Size: 64},
		{Dst: 3, Data: 3, Size: 64},
	})
	cl.Run(300 * Microsecond)
	if len(ts) != 3 {
		t.Fatalf("delivered to %d of 3", len(ts))
	}
	if ts[1] != ts[2] || ts[2] != ts[3] {
		t.Fatalf("scattering timestamps differ: %v", ts)
	}
}

func TestTotalOrderAcrossReceiversViaAPI(t *testing.T) {
	cl := NewCluster(Defaults())
	n := cl.NumProcesses()
	logs := make([][]Timestamp, n)
	for i := 0; i < n; i++ {
		i := i
		cl.Process(i).OnDeliver(func(d Delivery) { logs[i] = append(logs[i], d.TS) })
	}
	cl.Run(50 * Microsecond)
	// Everyone scatters to everyone a few times.
	for round := 0; round < 10; round++ {
		for p := 0; p < n; p++ {
			var msgs []Message
			for q := 0; q < n; q++ {
				if q != p {
					msgs = append(msgs, Message{Dst: ProcID(q), Size: 64})
				}
			}
			cl.Process(p).UnreliableSend(msgs)
		}
		cl.Run(30 * Microsecond)
	}
	cl.Run(500 * Microsecond)
	for i, log := range logs {
		if len(log) == 0 {
			t.Fatalf("proc %d delivered nothing", i)
		}
		if !sort.SliceIsSorted(log, func(a, b int) bool { return log[a] < log[b] }) {
			t.Fatalf("proc %d delivered out of timestamp order", i)
		}
	}
}

func TestFailureCallbacksViaAPI(t *testing.T) {
	cfg := Defaults()
	cfg.WithController = true
	cl := NewCluster(cfg)
	var failedProc ProcID = -1
	cl.Process(2).OnProcFail(func(p ProcID, ts Timestamp) { failedProc = p })
	sendFails := 0
	cl.Process(0).OnSendFail(func(SendFailure) { sendFails++ })
	cl.Run(100 * Microsecond)
	cl.KillHost(1)
	cl.Process(0).ReliableSend([]Message{
		{Dst: 1, Size: 64}, {Dst: 2, Size: 64},
	})
	cl.Run(5 * Millisecond)
	if failedProc != 1 {
		t.Fatalf("proc-fail callback saw %d, want 1", failedProc)
	}
	if sendFails != 2 {
		t.Fatalf("send failures = %d, want 2 (recalled scattering)", sendFails)
	}
	if cl.Controller() == nil || len(cl.Controller().Failures) == 0 {
		t.Fatal("controller recorded no failure")
	}
}

func TestTimestampMonotoneViaAPI(t *testing.T) {
	cl := NewCluster(Defaults())
	p := cl.Process(0)
	last := Timestamp(-1)
	for i := 0; i < 100; i++ {
		cl.Run(1 * Microsecond)
		now := p.Timestamp()
		if now < last {
			t.Fatal("timestamp went backwards")
		}
		last = now
	}
}

func TestLossConfigViaAPI(t *testing.T) {
	cfg := Defaults()
	cfg.LossRate = 0.05
	cfg.Seed = 3
	cl := NewCluster(cfg)
	delivered, failed := 0, 0
	cl.Process(1).OnDeliver(func(Delivery) { delivered++ })
	cl.Process(0).OnSendFail(func(SendFailure) { failed++ })
	cl.Run(50 * Microsecond)
	for i := 0; i < 200; i++ {
		cl.Process(0).UnreliableSend([]Message{{Dst: 1, Size: 64}})
		cl.Run(2 * Microsecond)
	}
	cl.Run(2 * Millisecond)
	if delivered == 0 || failed == 0 {
		t.Fatalf("delivered=%d failed=%d under loss", delivered, failed)
	}
	if delivered+failed < 200 {
		t.Fatalf("accounting hole: %d+%d < 200", delivered, failed)
	}
}
