package onepipe_test

import (
	"strconv"
	"testing"

	"onepipe"
	"onepipe/internal/experiments"
	"onepipe/internal/sim"
)

// benchScale keeps each figure regeneration small enough for `go test
// -bench=.` while preserving the sweep shapes; use cmd/onepipe-bench
// [-full] for the paper-scale axes.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Name:     "bench",
		MaxProcs: 16,
		Window:   150 * sim.Microsecond,
		Warmup:   80 * sim.Microsecond,
		Seeds:    1,
	}
}

// benchFigure regenerates one figure per iteration and reports its row
// count (so a silently-empty table fails loudly).
func benchFigure(b *testing.B, id string) {
	r, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	sc := benchScale()
	var rows int
	for i := 0; i < b.N; i++ {
		tbl := r.Run(sc)
		rows = len(tbl.Rows)
		if rows == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// One benchmark per table/figure of the paper's evaluation (§7).

func BenchmarkFig8a(b *testing.B)  { benchFigure(b, "8a") }
func BenchmarkFig8b(b *testing.B)  { benchFigure(b, "8b") }
func BenchmarkFig9a(b *testing.B)  { benchFigure(b, "9a") }
func BenchmarkFig9b(b *testing.B)  { benchFigure(b, "9b") }
func BenchmarkFig10(b *testing.B)  { benchFigure(b, "10") }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "11") }
func BenchmarkFig12a(b *testing.B) { benchFigure(b, "12a") }
func BenchmarkFig12b(b *testing.B) { benchFigure(b, "12b") }
func BenchmarkFig13a(b *testing.B) { benchFigure(b, "13a") }
func BenchmarkFig13b(b *testing.B) { benchFigure(b, "13b") }
func BenchmarkFig14a(b *testing.B) { benchFigure(b, "14a") }
func BenchmarkFig14b(b *testing.B) { benchFigure(b, "14b") }
func BenchmarkFig14c(b *testing.B) { benchFigure(b, "14c") }
func BenchmarkFig15a(b *testing.B) { benchFigure(b, "15a") }
func BenchmarkFig15b(b *testing.B) { benchFigure(b, "15b") }
func BenchmarkFig16(b *testing.B)  { benchFigure(b, "16") }
func BenchmarkCeph(b *testing.B)   { benchFigure(b, "ceph") }
func BenchmarkOutOfOrder(b *testing.B) {
	benchFigure(b, "ooo")
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkHazards(b *testing.B)    { benchFigure(b, "haz") }
func BenchmarkAblBarrier(b *testing.B) { benchFigure(b, "abl-barrier") }
func BenchmarkAblRelay(b *testing.B)   { benchFigure(b, "abl-relay") }
func BenchmarkAblECMP(b *testing.B)    { benchFigure(b, "abl-ecmp") }
func BenchmarkAblBeacon(b *testing.B)  { benchFigure(b, "abl-beacon") }
func BenchmarkProjection(b *testing.B) { benchFigure(b, "proj") }

// BenchmarkMessageRate measures raw simulated 1Pipe message throughput —
// how many end-to-end ordered deliveries per wall-clock second the
// simulator sustains (a harness-speed number, not a paper figure).
func BenchmarkMessageRate(b *testing.B) {
	for _, procs := range []int{8, 32} {
		b.Run(strconv.Itoa(procs), func(b *testing.B) {
			delivered := 0
			for i := 0; i < b.N; i++ {
				cl := onepipe.NewCluster(onepipe.Config{
					Topology:     onepipe.Testbed(),
					ProcsPerHost: (procs + 31) / 32,
					Seed:         int64(i + 1),
				})
				for p := 0; p < procs; p++ {
					cl.Process(p).OnDeliver(func(onepipe.Delivery) { delivered++ })
				}
				for p := 0; p < procs; p++ {
					p := p
					for k := 0; k < 50; k++ {
						dst := onepipe.ProcID((p + k + 1) % procs)
						cl.Process(p).Send([]onepipe.Message{{Dst: dst, Size: 64}})
					}
				}
				cl.Run(500 * onepipe.Microsecond)
			}
			b.ReportMetric(float64(delivered)/float64(b.N), "msgs/op")
		})
	}
}
