package onepipe

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFabricJoinDrainSim exercises the Fabric-level elastic membership API
// on the simulated cluster: a host joined mid-run sends into the same total
// order, a drained host refuses sends without tripping failure handling,
// and delivery timestamps at an incumbent never regress across either
// epoch change.
func TestFabricJoinDrainSim(t *testing.T) {
	cfg := Defaults()
	cfg.WithController = true
	c := NewCluster(cfg)
	defer c.Close()

	np := c.NumProcesses()
	var got []Delivery
	c.Process(1).OnDeliver(func(d Delivery) { got = append(got, d) })
	send := func(p int) {
		t.Helper()
		if err := c.Process(p).Send([]Message{{Dst: 1, Data: p, Size: 64}}, Reliable()); err != nil {
			t.Fatalf("send from %d: %v", p, err)
		}
	}

	send(0)
	c.Run(2 * Millisecond)
	if len(got) != 1 {
		t.Fatalf("warm-up delivery missing: got %d", len(got))
	}

	hi, err := c.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if c.NumProcesses() != np+cfg.ProcsPerHost {
		t.Fatalf("NumProcesses = %d after join, want %d", c.NumProcesses(), np+cfg.ProcsPerHost)
	}
	joined := np // ProcsPerHost=1: the new host's proc is at the tail
	send(joined)
	send(0)
	c.Run(2 * Millisecond)
	var fromJoined int
	for _, d := range got {
		if int(d.Src) == joined {
			fromJoined++
		}
	}
	if fromJoined != 1 {
		t.Fatalf("deliveries from joined proc %d (host %d) = %d, want 1", joined, hi, fromJoined)
	}

	if err := c.Drain(2); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := c.Process(2).Send([]Message{{Dst: 1, Data: "x", Size: 8}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on drained host: err = %v, want ErrClosed", err)
	}
	if ctrl := c.Controller(); ctrl != nil && len(ctrl.Failures) != 0 {
		t.Fatalf("graceful drain produced failure records: %+v", ctrl.Failures)
	}
	send(0)
	c.Run(2 * Millisecond)

	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("delivery timestamp regressed across reconfiguration: %v after %v", got[i].TS, got[i-1].TS)
		}
	}
	if n := len(got); n < 4 {
		t.Fatalf("deliveries after drain missing: got %d", n)
	}
}

// TestLiveJoinDrain exercises the same Fabric surface on the in-process
// real-time fabric.
func TestLiveJoinDrain(t *testing.T) {
	l := NewLiveCluster(LiveConfig{Hosts: 3, ProcsPerHost: 1})
	defer l.Close()

	var mu sync.Mutex
	var got []Delivery
	l.Process(1).OnDeliver(func(d Delivery) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	})
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(got)
	}
	waitFor := func(n int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if count() >= n {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("%s timed out: %d/%d deliveries", what, count(), n)
	}

	hi, err := l.Join()
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if hi != 3 || l.NumProcesses() != 4 {
		t.Fatalf("Join = host %d, NumProcesses = %d; want 3 and 4", hi, l.NumProcesses())
	}
	if err := l.Process(3).Send([]Message{{Dst: 1, Data: "joined", Size: 8}}, Reliable()); err != nil {
		t.Fatalf("send from joined host: %v", err)
	}
	waitFor(1, "delivery from joined host")

	if err := l.Drain(2); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := l.Process(2).Send([]Message{{Dst: 1, Data: "x", Size: 8}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on drained host: err = %v, want ErrClosed", err)
	}
	if err := l.Process(0).Send([]Message{{Dst: 1, Data: "after", Size: 8}}, Reliable()); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
	waitFor(2, "delivery after drain")

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			t.Fatalf("delivery timestamp regressed: %v after %v", got[i].TS, got[i-1].TS)
		}
	}
}
