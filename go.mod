module onepipe

go 1.22
