// Command onepipe-sim runs a configurable 1Pipe data center simulation and
// prints ordering, latency and overhead statistics — a scriptable way to
// poke at the system outside the canned experiments.
//
// Example:
//
//	onepipe-sim -hosts 32 -procs 2 -mode chip -duration 5ms -load 2e6 -loss 1e-5
package main

import (
	"flag"
	"fmt"
	"os"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/topology"
)

func main() {
	hosts := flag.Int("hosts", 32, "number of hosts (8, 16 or 32)")
	procs := flag.Int("procs", 1, "processes per host")
	modeS := flag.String("mode", "chip", "switch incarnation: chip|switchcpu|hostdelegate")
	durMs := flag.Float64("duration", 2, "simulated duration (ms)")
	load := flag.Float64("load", 1e6, "offered load per process (msg/s)")
	loss := flag.Float64("loss", 0, "per-link corruption probability")
	beaconUs := flag.Float64("beacon", 3, "beacon interval (us)")
	reliable := flag.Bool("reliable", false, "use reliable 1Pipe")
	noack := flag.Bool("noack", false, "disable best-effort loss-detection ACKs (throughput mode)")
	jitterUs := flag.Float64("jitter", 0, "per-link bursty delay variance (us)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	var topo topology.ClosConfig
	switch {
	case *hosts <= 8:
		topo = topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: *hosts, SpinesPerPod: 1, Cores: 1}
	case *hosts <= 16:
		topo = topology.ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: *hosts / 2, SpinesPerPod: 2, Cores: 1}
	default:
		topo = topology.Testbed()
	}
	var mode netsim.Mode
	switch *modeS {
	case "chip":
		mode = netsim.ModeChip
	case "switchcpu":
		mode = netsim.ModeSwitchCPU
	case "hostdelegate":
		mode = netsim.ModeHostDelegate
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeS)
		os.Exit(2)
	}

	ncfg := netsim.DefaultConfig(topo, *procs)
	ncfg.Mode = mode
	ncfg.LossRate = *loss
	ncfg.BeaconInterval = sim.Time(*beaconUs * 1000)
	ncfg.Seed = *seed
	ncfg.Jitter = sim.Time(*jitterUs * 1000)
	net := netsim.New(ncfg)
	ecfg := core.DefaultConfig()
	ecfg.DisableBEAck = *noack
	cl := core.Deploy(net, ecfg)
	eng := net.Eng
	n := net.NumProcs()

	var lat stats.Sample
	delivered := 0
	violations := 0
	lastTS := make([]sim.Time, n)
	for i, p := range cl.Procs {
		i := i
		p.OnDeliver = func(d core.Delivery) {
			delivered++
			if d.TS < lastTS[i] {
				violations++
			}
			lastTS[i] = d.TS
			if sent, ok := d.Data.(sim.Time); ok {
				lat.Add(float64(eng.Now()-sent) / 1000)
			}
		}
	}
	gap := sim.Time(1e9 / *load)
	for pi := range cl.Procs {
		pi := pi
		k := 0
		// Spread send phases across the tick so co-located processes do
		// not burst in lockstep.
		phase := sim.Time(int64(pi) * int64(gap) / int64(n))
		sim.NewTicker(eng, gap, phase, func() {
			k++
			dst := netsim.ProcID((pi + k) % n)
			if int(dst) == pi {
				dst = netsim.ProcID((pi + 1) % n)
			}
			m := []core.Message{{Dst: dst, Data: eng.Now(), Size: 64}}
			if *reliable {
				cl.Procs[pi].SendReliable(m)
			} else {
				cl.Procs[pi].Send(m)
			}
		})
	}
	dur := sim.Time(*durMs * float64(sim.Millisecond))
	eng.RunFor(dur)

	total := cl.TotalStats()
	fmt.Printf("1Pipe simulation: %d hosts x %d procs, mode=%s, %.2fms simulated (%d events)\n",
		len(net.G.Hosts), *procs, mode, dur.Seconds()*1e3, eng.Executed)
	fmt.Printf("  delivered        %d msgs (%.2f M msg/s/proc)\n",
		delivered, float64(delivered)/dur.Seconds()/float64(n)/1e6)
	fmt.Printf("  delivery latency %s us\n", lat.Summary())
	fmt.Printf("  order violations %d\n", violations)
	fmt.Printf("  send failures    %d, retransmits %d, naks %d, dups %d\n",
		total.MsgsFailed, total.PktsRetx, total.Naks, total.DupPkts)
	fmt.Printf("  beacons          %d host + %d fabric (%.3f%% of bytes)\n",
		total.Beacons, net.Stats.PktsByKind[netsim.KindBeacon]-total.Beacons,
		100*net.Stats.BeaconBandwidthFraction())
	fmt.Printf("  max reorder buf  %.1f KB\n", float64(total.MaxBufferBytes)/1024)
	if violations > 0 {
		os.Exit(1)
	}
}
