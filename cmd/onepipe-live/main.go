// Command onepipe-live runs a complete 1Pipe fabric over real UDP sockets
// on loopback (internal/udpnet): N host endpoints, one software switch
// doing barrier aggregation in the 48-bit wire format, concurrent
// scatterers, and a total-order verification pass — optionally with loss
// injected at the switch to exercise reliable 1Pipe's retransmission and
// commit machinery on a real network path.
//
//	onepipe-live -hosts 4 -msgs 20 -loss 0.02 -reliable
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
	"onepipe/internal/udpnet"
)

func main() {
	hosts := flag.Int("hosts", 4, "number of UDP host endpoints")
	msgs := flag.Int("msgs", 20, "broadcasts per process")
	loss := flag.Float64("loss", 0, "loss probability injected at the switch")
	reliable := flag.Bool("reliable", false, "use reliable 1Pipe")
	trace := flag.Bool("trace", false, "record per-stage lifecycle latencies and print the breakdown")
	debug := flag.String("debug", "", "serve /debug/vars, /debug/pprof and /debug/onepipe on this address (implies -trace)")
	flag.Parse()

	cfg := udpnet.DefaultConfig(*hosts, 1)
	cfg.LossRate = *loss
	cfg.Trace = *trace || *debug != ""
	cfg.DebugAddr = *debug
	c, err := udpnet.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	n := c.NumProcs()
	fmt.Printf("UDP 1Pipe: %d host sockets + switch on loopback, loss=%.1f%%, reliable=%v\n\n",
		n, *loss*100, *reliable)
	if addr := c.DebugAddr(); addr != "" {
		fmt.Printf("debug server on http://%s/debug/onepipe\n\n", addr)
	}

	type rec struct {
		ts   sim.Time
		src  netsim.ProcID
		body string
	}
	var mu sync.Mutex
	logs := make([][]rec, n)
	for i := 0; i < n; i++ {
		i := i
		c.Proc(i).OnDeliver(func(d core.Delivery) {
			mu.Lock()
			logs[i] = append(logs[i], rec{d.TS, d.Src, string(d.Data.([]byte))})
			mu.Unlock()
		})
	}

	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < *msgs; k++ {
				var batch []core.Message
				for q := 0; q < n; q++ {
					if q != p {
						batch = append(batch, core.Message{
							Dst: netsim.ProcID(q), Data: []byte(fmt.Sprintf("p%d/m%d", p, k)), Size: 16,
						})
					}
				}
				if *reliable {
					c.Proc(p).SendReliable(batch)
				} else {
					c.Proc(p).Send(batch)
				}
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	time.Sleep(500 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	total, sorted := 0, true
	for i := range logs {
		total += len(logs[i])
		if !sort.SliceIsSorted(logs[i], func(a, b int) bool {
			x, y := logs[i][a], logs[i][b]
			if x.ts != y.ts {
				return x.ts < y.ts
			}
			return x.src < y.src
		}) {
			sorted = false
		}
	}
	want := n * (n - 1) * *msgs
	fmt.Printf("delivered %d/%d messages; per-receiver total order intact: %v\n", total, want, sorted)
	fmt.Printf("switch forwarded %d packets, dropped %d\n", c.Switch.Forwarded, c.Switch.Dropped)
	if cfg.Trace {
		fmt.Println("\nper-stage latency breakdown (us):")
		fmt.Printf("  %-16s %8s %9s %9s %9s %9s\n", "span", "count", "mean", "p50", "p95", "p99")
		for _, s := range obs.Summarize(obs.Merge(c.Traces()...)) {
			fmt.Printf("  %-16s %8d %9.1f %9.1f %9.1f %9.1f\n",
				s.Span, s.Count, s.MeanU, s.P50U, s.P95U, s.P99U)
		}
	}
	if *reliable && total != want {
		fmt.Println("WARNING: reliable mode should deliver everything")
		os.Exit(1)
	}
	if !sorted {
		os.Exit(1)
	}
}
