// Command onepipe-bench regenerates the tables and figures of the 1Pipe
// paper's evaluation section on the simulated data center.
//
// Usage:
//
//	onepipe-bench -list
//	onepipe-bench -fig 8a [-full]
//	onepipe-bench -all [-full]
//
// -full runs the paper's complete sweeps (up to 512 processes; minutes of
// wall time); the default quick scale preserves every figure's shape with
// smaller axes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"onepipe/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "experiment id to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	full := flag.Bool("full", false, "paper-scale sweeps (slow)")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-5s %s\n", r.ID, r.Title)
		}
		return
	}
	sc := experiments.Quick()
	if *full {
		sc = experiments.Full()
	}
	run := func(r experiments.Runner) {
		start := time.Now()
		tbl := r.Run(sc)
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("scale=%s, wall time %.1fs", sc.Name, time.Since(start).Seconds()))
		tbl.Print(os.Stdout)
	}
	switch {
	case *all:
		for _, r := range experiments.Registry() {
			run(r)
		}
	case *fig != "":
		r, ok := experiments.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *fig)
			os.Exit(1)
		}
		run(r)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
