// Command onepipe-bench regenerates the tables and figures of the 1Pipe
// paper's evaluation section on the simulated data center.
//
// Usage:
//
//	onepipe-bench -list
//	onepipe-bench -fig 8a [-full] [-shards N]
//	onepipe-bench -all [-full]
//	onepipe-bench -bench-json [-bench-suite] [-bench-out BENCH_core.json]
//	onepipe-bench -bench-gate BENCH_core.json
//	onepipe-bench -slo-gate BENCH_core.json
//	onepipe-bench -serve-gate BENCH_core.json
//
// -full runs the paper's complete sweeps (up to 512 processes; minutes of
// wall time); the default quick scale preserves every figure's shape with
// smaller axes.
//
// -bench-json runs the core micro-benchmark set (engine scheduling, wire
// codec, simulated send path, end-to-end message rate) and writes the
// machine-readable report used for performance tracking; -bench-gate
// compares a fresh engine measurement against a committed report and exits
// nonzero on a >10% events/sec regression. -cpuprofile and -memprofile
// capture pprof profiles of whichever mode runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"onepipe/internal/experiments"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	fig := flag.String("fig", "", "experiment id to run (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	full := flag.Bool("full", false, "paper-scale sweeps (slow)")
	shards := flag.Int("shards", 0, "run experiments on N lockstep engine shards (0/1 = single engine; results are identical by construction)")
	benchJSON := flag.Bool("bench-json", false, "run core benchmarks, write machine-readable report")
	benchOut := flag.String("bench-out", "BENCH_core.json", "output path for -bench-json")
	benchSuite := flag.Bool("bench-suite", false, "with -bench-json: also time the quick figure suite (slow)")
	benchGate := flag.String("bench-gate", "", "compare fresh engine events/sec against this committed report; fail on >10% regression")
	sloGate := flag.String("slo-gate", "", "re-run the quick SLO race against this committed report; fail on delivery drift or >25% p99 regression")
	serveGate := flag.String("serve-gate", "", "re-run the quick serving-tier figure against this committed report; fail on delivered-count drift, >25% p99 regression, or a failed elastic recovery")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-5s %s\n", r.ID, r.Title)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	sc := experiments.Quick()
	if *full {
		sc = experiments.Full()
	}
	experiments.EngineShards = *shards
	run := func(r experiments.Runner) {
		start := time.Now()
		tbl := r.Run(sc)
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("scale=%s, wall time %.1fs", sc.Name, time.Since(start).Seconds()))
		tbl.Print(os.Stdout)
	}
	switch {
	case *benchGate != "":
		if err := runBenchGate(*benchGate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case *sloGate != "":
		if err := runSLOGate(*sloGate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case *serveGate != "":
		if err := runServeGate(*serveGate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case *benchJSON:
		if err := runBenchJSON(*benchOut, *benchSuite); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case *all:
		for _, r := range experiments.Registry() {
			run(r)
		}
	case *fig != "":
		r, ok := experiments.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *fig)
			for _, r := range experiments.Registry() {
				fmt.Fprintf(os.Stderr, "  %-11s %s\n", r.ID, r.Title)
			}
			return 1
		}
		run(r)
	default:
		flag.Usage()
		return 2
	}
	return 0
}
