package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	onepipe "onepipe"
	"onepipe/internal/experiments"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/topology"
	"onepipe/internal/wire"
)

// benchResult is one micro-benchmark's figures in BENCH_core.json.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchBaseline records the pre-optimization numbers the current figures
// are compared against in docs/performance.md. It is frozen by hand when a
// new baseline is deliberately established, never by `-bench-json` runs.
type benchBaseline struct {
	Note               string  `json:"note"`
	EngineNsPerOp      float64 `json:"engine_ns_per_op"`
	EngineAllocsPerOp  int64   `json:"engine_allocs_per_op"`
	EngineEventsPerSec float64 `json:"engine_events_per_sec"`
	WireEncodeNsPerOp  float64 `json:"wire_encode_ns_per_op"`
	WireDecodeNsPerOp  float64 `json:"wire_decode_ns_per_op"`
	QuickSuiteWallS    float64 `json:"quick_suite_wall_s"`
}

// parallelEngineBench is the sharded-engine throughput row. The figure is
// GOMAXPROCS-dependent (shard goroutines need real cores to overlap), so
// the core count it was measured at is recorded beside it rather than
// letting numbers from different machines be compared bare.
type parallelEngineBench struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Shards       int     `json:"shards"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// scaleBench is the 1024-host fabric wall-time row (experiments.FabricScaleOnce).
type scaleBench struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	WallS      float64 `json:"wall_s"`
	Events     uint64  `json:"events"`
	WindowUs   float64 `json:"window_us"`
}

// benchReport is the machine-readable performance contract: refreshed by
// `make bench-json`, gated by CI's bench-smoke job (engine events/sec must
// stay within 10% of the committed figure).
type benchReport struct {
	Generated          string  `json:"generated"`
	GoVersion          string  `json:"go_version"`
	GOMAXPROCS         int     `json:"gomaxprocs"`
	EngineEventsPerSec float64 `json:"engine_events_per_sec"`
	// EngineEventsPerSecParallel is the 8-shard conservative-lookahead
	// engine on the same self-rescheduling workload (one cross-shard
	// handoff per 16 events). Single-threaded it trails the classic engine
	// (window barriers cost more than the smaller heaps save); the figure
	// exists to track the parallel drive's overhead and its scaling with
	// cores.
	EngineEventsPerSecParallel *parallelEngineBench `json:"engine_events_per_sec_parallel,omitempty"`
	// Scale1024 is the wall time of the 1024-host fabric scale workload
	// at 8 parallel shards (the -fig scale tentpole row).
	Scale1024     *scaleBench `json:"scale_1024,omitempty"`
	E2EMsgsPerSec float64     `json:"e2e_msgs_per_sec"`
	// E2EUnbatchedMsgsPerSec is the same workload with frame coalescing
	// and the delivery fast path off — the pre-batching wire behavior,
	// kept for the batching speedup comparison.
	E2EUnbatchedMsgsPerSec float64                `json:"e2e_unbatched_msgs_per_sec,omitempty"`
	SendOccupancy          *occupancySummary      `json:"send_frame_occupancy,omitempty"`
	RecvOccupancy          *occupancySummary      `json:"recv_batch_occupancy,omitempty"`
	// SLO carries the -fig slo percentile rows (batched / unbatched /
	// conflict-aware under the reference trace + impairment profile) at
	// quick scale. The slo gate compares fresh p99s against these.
	SLO []experiments.SLORow `json:"slo,omitempty"`
	// Serve carries the -fig serve rows at quick scale: the closed-loop
	// KV client sweep, the tpcc-style mix, the fabric-SMR vs Raft
	// head-to-head, and the elastic Join/Drain timeline. The serve gate
	// compares fresh delivered counts (exact) and p99s against these.
	Serve []experiments.ServeRow `json:"serve,omitempty"`
	// ServeNotes records the elastic segment's self-asserted verdict
	// (RECOVERED/EXCEEDED) from the run that produced Serve.
	ServeNotes      []string               `json:"serve_notes,omitempty"`
	QuickSuiteWallS float64                `json:"quick_suite_wall_s,omitempty"`
	Benchmarks      map[string]benchResult `json:"benchmarks"`
	Baseline        *benchBaseline         `json:"baseline,omitempty"`
}

func toResult(r testing.BenchmarkResult) benchResult {
	return benchResult{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// benchEngine is the BenchmarkEngineSchedule shape: a 4096-deep event heap
// where every executed event re-schedules itself. 1e9/ns_per_op is the
// engine events/sec figure.
func benchEngine() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1)
		const depth = 4096
		var step func()
		step = func() {
			e.After(sim.Time(e.Rand().Intn(1000))+1, step)
		}
		for i := 0; i < depth; i++ {
			e.After(sim.Time(e.Rand().Intn(1000))+1, step)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Step()
		}
	})
}

// benchEngineParallel mirrors internal/sim's BenchmarkShardedEngineParallel:
// an 8-shard parallel group, 4096-deep self-rescheduling heap per shard,
// one cross-shard handoff every 16 events. Returns aggregate events/sec.
func benchEngineParallel() parallelEngineBench {
	const (
		nShards   = 8
		depth     = 4096
		lookahead = sim.Time(1000)
	)
	s := sim.NewShardedEngine(1, nShards, lookahead, true)
	defer s.Close()
	steps := make([]func(a, b any), nShards)
	for i := 0; i < nShards; i++ {
		i := i
		e := s.Shard(i)
		next := (i + 1) % nShards
		var k int
		steps[i] = func(a, b any) {
			k++
			if k%16 == 0 {
				e.At2On(s.Shard(next), e.Now()+lookahead+sim.Time(e.Rand().Intn(1000)), steps[next], a, b)
				return
			}
			e.After2(sim.Time(e.Rand().Intn(1000))+1, steps[i], a, b)
		}
	}
	for i := 0; i < nShards; i++ {
		e := s.Shard(i)
		for j := 0; j < depth; j++ {
			e.After2(sim.Time(e.Rand().Intn(1000))+1, steps[i], nil, nil)
		}
	}
	s.RunFor(10 * sim.Microsecond) // warm up workers and heaps
	n0 := s.ExecutedTotal()
	start := time.Now()
	for time.Since(start) < 2*time.Second {
		s.RunFor(50 * sim.Microsecond)
	}
	return parallelEngineBench{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Shards:       nShards,
		EventsPerSec: float64(s.ExecutedTotal()-n0) / time.Since(start).Seconds(),
	}
}

func benchWireEncode() testing.BenchmarkResult {
	pkt := &netsim.Packet{
		Kind: netsim.KindData, Src: 3, Dst: 9, MsgTS: 123456789,
		BarrierBE: 123456000, BarrierC: 123455000, PSN: 77, FragIdx: 1,
		EndOfMsg: true, Reliable: true, Size: 1024,
	}
	payload := make([]byte, 512)
	buf := make([]byte, 0, wire.HeaderLen+len(payload))
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wire.AppendEncode(buf[:0], pkt, payload)
		}
	})
}

func benchWireDecode() testing.BenchmarkResult {
	pkt := &netsim.Packet{
		Kind: netsim.KindData, Src: 3, Dst: 9, MsgTS: 123456789,
		PSN: 77, EndOfMsg: true, Reliable: true, Size: 1024,
	}
	buf := wire.Encode(pkt, make([]byte, 512))
	var dst netsim.Packet
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodeInto(&dst, buf, 123456789); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSendPath is the BenchmarkSendPath shape: one best-effort packet over
// a quiescent 16-host Clos, all simulated hops included.
func benchSendPath() testing.BenchmarkResult {
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	cfg.Clock.MaxOffset = 0
	cfg.Clock.MaxDriftPPM = 0
	cfg.DisableBeacons = true
	n := netsim.New(cfg)
	n.AttachHost(7, netsim.PutPacket)
	send := func() {
		pkt := netsim.GetPacket()
		pkt.Kind, pkt.Src, pkt.Dst = netsim.KindData, 0, 7
		pkt.Size = 1024 + netsim.HeaderBytes
		pkt.MsgTS = n.Eng.Now()
		n.SendFromHost(0, pkt)
		n.Eng.Run()
	}
	send()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			send()
		}
	})
}

// occupancySummary is the shape of one batch-occupancy histogram in
// BENCH_core.json: how many messages shared a unit (wire frame on the send
// side, delivery batch on the receive side).
type occupancySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func summarize(h *stats.Histogram) occupancySummary {
	if h.N() == 0 {
		return occupancySummary{}
	}
	return occupancySummary{
		Count: h.N(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		Max:   h.Max(),
	}
}

// benchE2E measures end-to-end ordered deliveries per wall-clock second on
// the public API: 32 processes each scattering 50 best-effort messages on
// the paper's testbed topology. batched selects the adaptive-batching
// defaults plus the OnDeliverBatch fast path; unbatched restores the
// one-packet-per-message wire behavior through the per-delivery callback.
// The returned histograms aggregate send-frame and delivery-batch occupancy
// across all runs (nil when unbatched).
func benchE2E(batched bool) (float64, *stats.Histogram, *stats.Histogram) {
	const procs, msgsEach = 32, 50
	delivered := 0
	sendOcc, recvOcc := &stats.Histogram{}, &stats.Histogram{}
	start := time.Now()
	runs := 0
	for time.Since(start) < 2*time.Second {
		cl := onepipe.NewCluster(onepipe.Config{
			Topology:        onepipe.Testbed(),
			ProcsPerHost:    1,
			Seed:            int64(runs + 1),
			DisableBatching: !batched,
		})
		for p := 0; p < procs; p++ {
			if batched {
				cl.Process(p).OnDeliverBatch(func(ds []onepipe.Delivery) { delivered += len(ds) })
			} else {
				cl.Process(p).OnDeliver(func(onepipe.Delivery) { delivered++ })
			}
		}
		for p := 0; p < procs; p++ {
			for k := 0; k < msgsEach; k++ {
				dst := onepipe.ProcID((p + k + 1) % procs)
				cl.Process(p).Send([]onepipe.Message{{Dst: dst, Size: 64}})
			}
		}
		cl.Run(500 * onepipe.Microsecond)
		if batched {
			s, r := cl.Core().Occupancy()
			sendOcc.Merge(s)
			recvOcc.Merge(r)
		}
		runs++
	}
	rate := float64(delivered) / time.Since(start).Seconds()
	if !batched {
		return rate, nil, nil
	}
	return rate, sendOcc, recvOcc
}

// runBenchJSON runs the core benchmark set and writes outPath. When
// withSuite is set it also regenerates the full quick-scale figure suite to
// measure end-to-end wall time; otherwise a previous measurement in outPath
// is carried forward so CI's fast refresh does not erase it.
func runBenchJSON(outPath string, withSuite bool) error {
	var prev benchReport
	if raw, err := os.ReadFile(outPath); err == nil {
		_ = json.Unmarshal(raw, &prev)
	}

	eng := benchEngine()
	enc := benchWireEncode()
	dec := benchWireDecode()
	sp := benchSendPath()

	rep := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]benchResult{
			"engine_schedule":    toResult(eng),
			"wire_append_encode": toResult(enc),
			"wire_decode_into":   toResult(dec),
			"send_path":          toResult(sp),
		},
		Baseline: prev.Baseline,
	}
	rep.EngineEventsPerSec = 1e9 / rep.Benchmarks["engine_schedule"].NsPerOp
	par := benchEngineParallel()
	rep.EngineEventsPerSecParallel = &par
	const scaleShards = 8
	scaleWindow := 400 * sim.Microsecond
	wall, events, _ := experiments.FabricScaleOnce(scaleShards, true, scaleWindow)
	rep.Scale1024 = &scaleBench{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     scaleShards,
		WallS:      wall,
		Events:     events,
		WindowUs:   scaleWindow.Micros(),
	}
	e2e, sendOcc, recvOcc := benchE2E(true)
	rep.E2EMsgsPerSec = e2e
	so, ro := summarize(sendOcc), summarize(recvOcc)
	rep.SendOccupancy, rep.RecvOccupancy = &so, &ro
	rep.E2EUnbatchedMsgsPerSec, _, _ = benchE2E(false)
	rep.SLO = experiments.RunSLO(experiments.Quick())
	rep.Serve, rep.ServeNotes = experiments.RunServe(experiments.Quick())

	if withSuite {
		start := time.Now()
		sc := experiments.Quick()
		for _, r := range experiments.Registry() {
			if tbl := r.Run(sc); len(tbl.Rows) == 0 {
				return fmt.Errorf("experiment %s produced no rows", r.ID)
			}
		}
		rep.QuickSuiteWallS = time.Since(start).Seconds()
	} else {
		rep.QuickSuiteWallS = prev.QuickSuiteWallS
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("engine      %8.1f ns/op  %d allocs/op  (%.2fM events/s)\n",
		rep.Benchmarks["engine_schedule"].NsPerOp, rep.Benchmarks["engine_schedule"].AllocsPerOp,
		rep.EngineEventsPerSec/1e6)
	if p := rep.EngineEventsPerSecParallel; p != nil {
		fmt.Printf("engine||    %8.2fM events/s  (%d shards, GOMAXPROCS=%d)\n",
			p.EventsPerSec/1e6, p.Shards, p.GOMAXPROCS)
	}
	if sb := rep.Scale1024; sb != nil {
		fmt.Printf("scale 1024  %8.2f s wall  (%d events, %.0fus window, %d shards)\n",
			sb.WallS, sb.Events, sb.WindowUs, sb.Shards)
	}
	fmt.Printf("encode      %8.1f ns/op  %d allocs/op\n",
		rep.Benchmarks["wire_append_encode"].NsPerOp, rep.Benchmarks["wire_append_encode"].AllocsPerOp)
	fmt.Printf("decode      %8.1f ns/op  %d allocs/op\n",
		rep.Benchmarks["wire_decode_into"].NsPerOp, rep.Benchmarks["wire_decode_into"].AllocsPerOp)
	fmt.Printf("send path   %8.1f ns/op  %d allocs/op\n",
		rep.Benchmarks["send_path"].NsPerOp, rep.Benchmarks["send_path"].AllocsPerOp)
	fmt.Printf("e2e         %8.0f msgs/s  (unbatched %0.f)\n", rep.E2EMsgsPerSec, rep.E2EUnbatchedMsgsPerSec)
	if rep.SendOccupancy != nil && rep.SendOccupancy.Count > 0 {
		fmt.Printf("frame occ   mean %.2f p50 %.0f p99 %.0f max %.0f (%d frames)\n",
			rep.SendOccupancy.Mean, rep.SendOccupancy.P50, rep.SendOccupancy.P99,
			rep.SendOccupancy.Max, rep.SendOccupancy.Count)
	}
	if rep.RecvOccupancy != nil && rep.RecvOccupancy.Count > 0 {
		fmt.Printf("deliver occ mean %.2f p50 %.0f p99 %.0f max %.0f (%d batches)\n",
			rep.RecvOccupancy.Mean, rep.RecvOccupancy.P50, rep.RecvOccupancy.P99,
			rep.RecvOccupancy.Max, rep.RecvOccupancy.Count)
	}
	for _, r := range rep.SLO {
		fmt.Printf("slo %-14s %6d delivered  p50 %.2fus  p99 %.2fus  p999 %.2fus\n",
			r.Config, r.Delivered, r.P50, r.P99, r.P999)
	}
	for _, r := range rep.Serve {
		fmt.Printf("serve %-14s %7d clients %7d delivered  p50 %.2fus  p99 %.2fus\n",
			r.Segment, r.Clients, r.Delivered, r.P50, r.P99)
	}
	for _, n := range rep.ServeNotes {
		fmt.Println("serve note: " + n)
	}
	if rep.QuickSuiteWallS > 0 {
		fmt.Printf("quick suite %8.1f s wall\n", rep.QuickSuiteWallS)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// runBenchGate re-measures engine scheduling and fails if events/sec
// regressed more than 10% against the committed BENCH_core.json — the CI
// bench-smoke contract. The engine figure is the gate because every
// simulated packet hop pays it and it is the least noisy of the set.
func runBenchGate(committedPath string) error {
	raw, err := os.ReadFile(committedPath)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var committed benchReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("bench gate: parse %s: %w", committedPath, err)
	}
	if committed.EngineEventsPerSec <= 0 {
		return fmt.Errorf("bench gate: %s has no engine_events_per_sec", committedPath)
	}
	// Best of 3 to damp shared-runner noise.
	var best float64
	for i := 0; i < 3; i++ {
		r := benchEngine()
		if ev := 1e9 / (float64(r.T.Nanoseconds()) / float64(r.N)); ev > best {
			best = ev
		}
	}
	ratio := best / committed.EngineEventsPerSec
	fmt.Printf("bench gate: engine %.2fM events/s vs committed %.2fM (ratio %.2f)\n",
		best/1e6, committed.EngineEventsPerSec/1e6, ratio)
	if ratio < 0.90 {
		return fmt.Errorf("bench gate: engine events/sec regressed %.0f%% (> 10%% budget)",
			(1-ratio)*100)
	}
	return nil
}

// runServeGate re-runs the quick-scale serving-tier figure and fails if any
// segment's delivered count drifted (the closed loop is deterministic, so a
// count change means a behavior change), if any p99 regressed more than 25%
// against the committed report, or if the elastic Join/Drain segment did not
// recover its SLO (the fresh run's notes carry FAILED/EXCEEDED verdicts).
func runServeGate(committedPath string) error {
	raw, err := os.ReadFile(committedPath)
	if err != nil {
		return fmt.Errorf("serve gate: %w", err)
	}
	var committed benchReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("serve gate: parse %s: %w", committedPath, err)
	}
	if len(committed.Serve) == 0 {
		return fmt.Errorf("serve gate: %s has no serve rows; refresh with -bench-json", committedPath)
	}
	fresh, notes := experiments.RunServe(experiments.Quick())
	// The kv sweep repeats one segment name at several client counts, so
	// rows are keyed by (segment, clients), not segment alone.
	type segKey struct {
		segment string
		clients int
	}
	bySeg := make(map[segKey]experiments.ServeRow, len(fresh))
	for _, r := range fresh {
		bySeg[segKey{r.Segment, r.Clients}] = r
	}
	var failures []string
	for _, want := range committed.Serve {
		got, ok := bySeg[segKey{want.Segment, want.Clients}]
		if !ok {
			failures = append(failures, fmt.Sprintf("segment %s (%d clients) missing from fresh run", want.Segment, want.Clients))
			continue
		}
		fmt.Printf("serve gate: %-14s %7d clients  delivered %d (committed %d)  p99 %.2fus (committed %.2fus)\n",
			got.Segment, got.Clients, got.Delivered, want.Delivered, got.P99, want.P99)
		if got.Delivered != want.Delivered {
			failures = append(failures, fmt.Sprintf(
				"%s/%d: delivered %d != committed %d (deterministic tier; behavior changed — refresh BENCH_core.json if intended)",
				want.Segment, want.Clients, got.Delivered, want.Delivered))
		}
		if want.P99 > 0 && got.P99 > want.P99*1.25 {
			failures = append(failures, fmt.Sprintf("%s/%d: p99 %.2fus regressed >25%% vs committed %.2fus",
				want.Segment, want.Clients, got.P99, want.P99))
		}
	}
	for _, n := range notes {
		fmt.Println("serve gate: " + n)
		if strings.Contains(n, "FAILED") || strings.Contains(n, "EXCEEDED") {
			failures = append(failures, "elastic verdict: "+n)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "serve gate: "+f)
		}
		return fmt.Errorf("serve gate: %d failure(s)", len(failures))
	}
	return nil
}

// runSLOGate re-runs the quick-scale SLO race and fails if any config's p99
// delivery latency regressed more than 25% against the committed report, or
// if delivery counts drifted at all (the race is deterministic, so a count
// change means a behavior change, not noise).
func runSLOGate(committedPath string) error {
	raw, err := os.ReadFile(committedPath)
	if err != nil {
		return fmt.Errorf("slo gate: %w", err)
	}
	var committed benchReport
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("slo gate: parse %s: %w", committedPath, err)
	}
	if len(committed.SLO) == 0 {
		return fmt.Errorf("slo gate: %s has no slo rows; refresh with -bench-json", committedPath)
	}
	fresh := experiments.RunSLO(experiments.Quick())
	byName := make(map[string]experiments.SLORow, len(fresh))
	for _, r := range fresh {
		byName[r.Config] = r
	}
	var failures []string
	for _, want := range committed.SLO {
		got, ok := byName[want.Config]
		if !ok {
			failures = append(failures, fmt.Sprintf("config %s missing from fresh run", want.Config))
			continue
		}
		fmt.Printf("slo gate: %-14s delivered %d (committed %d)  p99 %.2fus (committed %.2fus)\n",
			got.Config, got.Delivered, want.Delivered, got.P99, want.P99)
		if got.Delivered != want.Delivered {
			failures = append(failures, fmt.Sprintf(
				"%s: delivered %d != committed %d (deterministic race; behavior changed — refresh BENCH_core.json if intended)",
				want.Config, got.Delivered, want.Delivered))
		}
		if want.P99 > 0 && got.P99 > want.P99*1.25 {
			failures = append(failures, fmt.Sprintf("%s: p99 %.2fus regressed >25%% vs committed %.2fus",
				want.Config, got.P99, want.P99))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "slo gate: "+f)
		}
		return fmt.Errorf("slo gate: %d failure(s)", len(failures))
	}
	return nil
}
