// Command onepipe-demo runs 1Pipe live: the same lib1pipe state machines
// as the simulator, but in real time — either on the in-process channel
// fabric (internal/livenet) or, with -udp, over actual UDP sockets on
// loopback with the 48-bit wire format (internal/udpnet). Several
// goroutines scatter concurrently; the demo then verifies that all
// receivers delivered the common messages in one consistent total order.
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/livenet"
	"onepipe/internal/netsim"
	"onepipe/internal/udpnet"
)

// fabric abstracts the two live substrates.
type fabric interface {
	NumProcs() int
	OnDeliver(p int, fn func(core.Delivery))
	Send(p int, msgs []core.Message) error
	Stop()
}

type liveFabric struct{ n *livenet.Net }

func (f liveFabric) NumProcs() int { return f.n.NumProcs() }
func (f liveFabric) OnDeliver(p int, fn func(core.Delivery)) {
	f.n.Do(func() { f.n.Proc(p).OnDeliver = fn })
}
func (f liveFabric) Send(p int, msgs []core.Message) error { return f.n.Send(p, false, msgs) }
func (f liveFabric) Stop()                                 { f.n.Stop() }

type udpFabric struct{ c *udpnet.Cluster }

func (f udpFabric) NumProcs() int                           { return f.c.NumProcs() }
func (f udpFabric) OnDeliver(p int, fn func(core.Delivery)) { f.c.Proc(p).OnDeliver(fn) }
func (f udpFabric) Send(p int, msgs []core.Message) error   { return f.c.Proc(p).Send(msgs) }
func (f udpFabric) Stop()                                   { f.c.Close() }

func main() {
	useUDP := flag.Bool("udp", false, "run over real UDP sockets (loopback) instead of in-process channels")
	flag.Parse()

	const hosts = 4
	var net fabric
	if *useUDP {
		c, err := udpnet.Start(udpnet.DefaultConfig(hosts, 1))
		if err != nil {
			panic(err)
		}
		net = udpFabric{c: c}
		fmt.Printf("UDP 1Pipe fabric: %d host sockets + 1 switch socket on loopback, %v beacons\n\n", hosts, time.Millisecond)
	} else {
		net = liveFabric{n: livenet.New(livenet.DefaultConfig(hosts, 1))}
		fmt.Printf("live 1Pipe fabric: %d hosts, beacons every %v of wall time\n\n", hosts, time.Millisecond)
	}
	defer net.Stop()
	n := net.NumProcs()

	type rec struct {
		ts   int64
		src  netsim.ProcID
		data any
	}
	var mu sync.Mutex
	logs := make([][]rec, n)
	for i := 0; i < n; i++ {
		i := i
		net.OnDeliver(i, func(d core.Delivery) {
			data := d.Data
			if b, ok := data.([]byte); ok {
				data = string(b)
			}
			mu.Lock()
			logs[i] = append(logs[i], rec{int64(d.TS), d.Src, data})
			mu.Unlock()
		})
	}

	// Concurrent broadcasters on real goroutines.
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				var msgs []core.Message
				for q := 0; q < n; q++ {
					if q != p {
						msgs = append(msgs, core.Message{
							Dst: netsim.ProcID(q), Data: []byte(fmt.Sprintf("p%d/m%d", p, k)), Size: 64,
						})
					}
				}
				net.Send(p, msgs)
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let the last barriers propagate

	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 2; i++ {
		fmt.Printf("first deliveries at process %d:\n", i)
		for j, r := range logs[i] {
			if j == 6 {
				break
			}
			fmt.Printf("  ts=%-16d from=%d %v\n", r.ts, r.src, r.data)
		}
	}

	// Verify the pairwise total-order property on common messages.
	key := func(r rec) string { return fmt.Sprint(r.ts, "/", r.src, "/", r.data) }
	violations := 0
	for a := 0; a < n; a++ {
		pos := make(map[string]int, len(logs[a]))
		for idx, r := range logs[a] {
			pos[key(r)] = idx
		}
		for b := a + 1; b < n; b++ {
			lastPos := -1
			for _, r := range logs[b] {
				if p, ok := pos[key(r)]; ok {
					if p < lastPos {
						violations++
					}
					lastPos = p
				}
			}
		}
	}
	total := 0
	for i := range logs {
		total += len(logs[i])
	}
	fmt.Printf("\n%d messages delivered across %d receivers; pairwise order violations: %d\n",
		total, n, violations)
	if violations == 0 {
		fmt.Println("all receivers observed one consistent total order over real wall-clock time ✓")
	}
}
