// Command onepipe-demo runs 1Pipe live: the same lib1pipe state machines
// as the simulator, but in real time — either on the in-process channel
// fabric (internal/livenet) or, with -udp, over actual UDP sockets on
// loopback with the 48-bit wire format (internal/udpnet). Several
// goroutines scatter concurrently; the demo then verifies that all
// receivers delivered the common messages in one consistent total order.
//
// Both substrates are driven through the unified onepipe.Fabric API: the
// demo code is identical for either backend.
package main

import (
	"flag"
	"fmt"
	"sync"
	"time"

	"onepipe"
)

func main() {
	useUDP := flag.Bool("udp", false, "run over real UDP sockets (loopback) instead of in-process channels")
	flag.Parse()

	const hosts = 4
	cfg := onepipe.LiveConfig{Hosts: hosts, ProcsPerHost: 1}
	var net onepipe.Fabric
	if *useUDP {
		c, err := onepipe.NewUDPCluster(cfg)
		if err != nil {
			panic(err)
		}
		net = c
		fmt.Printf("UDP 1Pipe fabric: %d host sockets + 1 switch socket on loopback, %v beacons\n\n", hosts, time.Millisecond)
	} else {
		net = onepipe.NewLiveCluster(cfg)
		fmt.Printf("live 1Pipe fabric: %d hosts, beacons every %v of wall time\n\n", hosts, time.Millisecond)
	}
	defer net.Close()
	n := net.NumProcesses()

	type rec struct {
		ts   int64
		src  onepipe.ProcID
		data any
	}
	var mu sync.Mutex
	logs := make([][]rec, n)
	for i := 0; i < n; i++ {
		i := i
		net.Process(i).OnDeliver(func(d onepipe.Delivery) {
			data := d.Data
			if b, ok := data.([]byte); ok {
				data = string(b)
			}
			mu.Lock()
			logs[i] = append(logs[i], rec{int64(d.TS), d.Src, data})
			mu.Unlock()
		})
	}

	// Concurrent broadcasters on real goroutines.
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				var msgs []onepipe.Message
				for q := 0; q < n; q++ {
					if q != p {
						msgs = append(msgs, onepipe.Message{
							Dst: onepipe.ProcID(q), Data: []byte(fmt.Sprintf("p%d/m%d", p, k)), Size: 64,
						})
					}
				}
				net.Process(p).Send(msgs)
				time.Sleep(3 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let the last barriers propagate

	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 2; i++ {
		fmt.Printf("first deliveries at process %d:\n", i)
		for j, r := range logs[i] {
			if j == 6 {
				break
			}
			fmt.Printf("  ts=%-16d from=%d %v\n", r.ts, r.src, r.data)
		}
	}

	// Verify the pairwise total-order property on common messages.
	key := func(r rec) string { return fmt.Sprint(r.ts, "/", r.src, "/", r.data) }
	violations := 0
	for a := 0; a < n; a++ {
		pos := make(map[string]int, len(logs[a]))
		for idx, r := range logs[a] {
			pos[key(r)] = idx
		}
		for b := a + 1; b < n; b++ {
			lastPos := -1
			for _, r := range logs[b] {
				if p, ok := pos[key(r)]; ok {
					if p < lastPos {
						violations++
					}
					lastPos = p
				}
			}
		}
	}
	total := 0
	for i := range logs {
		total += len(logs[i])
	}
	fmt.Printf("\n%d messages delivered across %d receivers; pairwise order violations: %d\n",
		total, n, violations)
	if violations == 0 {
		fmt.Println("all receivers observed one consistent total order over real wall-clock time ✓")
	}
}
