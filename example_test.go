package onepipe_test

import (
	"fmt"

	"onepipe"
)

// The basic flow: deploy a cluster, send a scattering, poll deliveries in
// total order.
func Example() {
	cluster := onepipe.NewCluster(onepipe.Defaults())
	cluster.Run(50 * onepipe.Microsecond)

	cluster.Process(0).ReliableSend([]onepipe.Message{
		{Dst: 1, Data: "debit", Size: 32},
		{Dst: 2, Data: "credit", Size: 32},
	})
	cluster.Run(300 * onepipe.Microsecond)

	d1, _ := cluster.Process(1).Poll()
	d2, _ := cluster.Process(2).Poll()
	fmt.Println(d1.Data, d2.Data, "same timestamp:", d1.TS == d2.TS)
	// Output: debit credit same timestamp: true
}

// Scatterings from concurrent senders are delivered in one consistent
// total order at every receiver.
func Example_totalOrder() {
	cluster := onepipe.NewCluster(onepipe.Defaults())
	cluster.Run(50 * onepipe.Microsecond)

	// Two senders race.
	cluster.Process(3).UnreliableSend([]onepipe.Message{
		{Dst: 1, Data: "from-3", Size: 16}, {Dst: 2, Data: "from-3", Size: 16},
	})
	cluster.Process(5).UnreliableSend([]onepipe.Message{
		{Dst: 1, Data: "from-5", Size: 16}, {Dst: 2, Data: "from-5", Size: 16},
	})
	cluster.Run(300 * onepipe.Microsecond)

	var order1, order2 []any
	for {
		d, ok := cluster.Process(1).Poll()
		if !ok {
			break
		}
		order1 = append(order1, d.Data)
	}
	for {
		d, ok := cluster.Process(2).Poll()
		if !ok {
			break
		}
		order2 = append(order2, d.Data)
	}
	fmt.Println("receiver 1 and 2 agree:", fmt.Sprint(order1) == fmt.Sprint(order2))
	// Output: receiver 1 and 2 agree: true
}

// The send-failure callback reports best-effort messages that were lost
// (Table 1's onepipe_send_fail_callback).
func Example_sendFailure() {
	cfg := onepipe.Defaults()
	cfg.WithController = true
	cluster := onepipe.NewCluster(cfg)
	cluster.Run(100 * onepipe.Microsecond)

	fails := 0
	cluster.Process(0).OnSendFail(func(onepipe.SendFailure) { fails++ })
	cluster.KillHost(1) // destination dies
	cluster.Process(0).ReliableSend([]onepipe.Message{
		{Dst: 1, Data: "doomed", Size: 16},
		{Dst: 2, Data: "recalled with it", Size: 16},
	})
	cluster.Run(5 * onepipe.Millisecond)
	fmt.Println("failures reported:", fails)
	// Output: failures reported: 2
}
