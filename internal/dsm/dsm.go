// Package dsm implements the §2.2.1 use case: a distributed shared object
// store whose remote reads and writes travel through 1Pipe, giving the
// system a Total Store Ordering (TSO) memory model — write-after-write and
// independent-read-independent-write hazards cannot occur, and no fences
// are needed.
//
// For contrast, the same store can run over raw (unordered) RPC, where
// both hazards are observable: a notification can overtake the write it
// announces (WAW), and two readers can disagree about the order of two
// writes (IRIW). The experiments count hazard occurrences under both
// transports.
package dsm

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// Transport selects how operations travel.
type Transport uint8

const (
	// TransportOnePipe orders all operations with best-effort 1Pipe.
	TransportOnePipe Transport = iota
	// TransportRaw uses unordered datagrams (multi-path hazards visible).
	TransportRaw
)

func (tr Transport) String() string {
	if tr == TransportOnePipe {
		return "1Pipe"
	}
	return "raw"
}

// Store is a sharded object store: object o lives on process o % N.
type Store struct {
	Transport Transport
	cl        *core.Cluster
	nodes     []*node
}

// node is per-process state: the objects it owns and the continuation
// table for reads issued by local clients.
type node struct {
	st      *Store
	proc    *core.Proc
	objects map[uint64]uint64 // object -> value
	nextID  uint64
	reads   map[uint64]func(uint64)
	// onNotify observes application signals.
	onNotify func(from netsim.ProcID, data uint64)
}

// write applies a value to an owned object.
type writeMsg struct {
	Obj, Val uint64
}

// readMsg asks the owner for an object's value.
type readMsg struct {
	Obj uint64
	ID  uint64
}
type readReply struct {
	ID, Val uint64
}

// notifyMsg is an application-level signal (the "A tells B" arrow of the
// WAW diagram); Data rides along.
type notifyMsg struct {
	Data uint64
}

// New deploys the store over every process of the cluster.
func New(cl *core.Cluster, tr Transport) *Store {
	st := &Store{Transport: tr, cl: cl}
	for _, p := range cl.Procs {
		n := &node{st: st, proc: p,
			objects: make(map[uint64]uint64),
			reads:   make(map[uint64]func(uint64)),
		}
		st.nodes = append(st.nodes, n)
		p.OnDeliver = func(d core.Delivery) { n.handle(d.Src, d.Data) }
		p.OnRaw = func(src netsim.ProcID, data any) { n.handle(src, data) }
	}
	return st
}

func (st *Store) owner(obj uint64) netsim.ProcID {
	return netsim.ProcID(obj % uint64(len(st.nodes)))
}

func (n *node) handle(src netsim.ProcID, data any) {
	switch m := data.(type) {
	case writeMsg:
		n.objects[m.Obj] = m.Val
	case readMsg:
		val := n.objects[m.Obj]
		// Replies never need ordering (§2.2.1): always raw.
		n.proc.SendRaw(src, readReply{ID: m.ID, Val: val}, 16)
	case readReply:
		if fn := n.reads[m.ID]; fn != nil {
			delete(n.reads, m.ID)
			fn(m.Val)
		}
	case notifyMsg:
		if n.onNotify != nil {
			n.onNotify(src, m.Data)
		}
	}
}

// send routes one message per the configured transport.
func (st *Store) send(src netsim.ProcID, dst netsim.ProcID, data any, size int) {
	if st.Transport == TransportOnePipe {
		st.cl.Procs[src].Send([]core.Message{{Dst: dst, Data: data, Size: size}})
	} else {
		st.cl.Procs[src].SendRaw(dst, data, size)
	}
}

// Write stores val into obj from process src — no fence, no completion
// wait (the 1Pipe transport guarantees everyone orders it consistently).
func (st *Store) Write(src netsim.ProcID, obj, val uint64) {
	st.send(src, st.owner(obj), writeMsg{Obj: obj, Val: val}, 16)
}

// Read fetches obj's value; done receives it. The read request is ordered
// (so it serializes after all earlier writes); the reply is raw.
func (st *Store) Read(src netsim.ProcID, obj uint64, done func(uint64)) {
	n := st.nodes[src]
	n.nextID++
	id := n.nextID
	n.reads[id] = done
	st.send(src, st.owner(obj), readMsg{Obj: obj, ID: id}, 16)
}

// Notify sends an application signal from src to dst, carrying data.
func (st *Store) Notify(src, dst netsim.ProcID, data uint64) {
	st.send(src, dst, notifyMsg{Data: data}, 16)
}

// OnNotify installs dst's notification handler.
func (st *Store) OnNotify(dst netsim.ProcID, fn func(from netsim.ProcID, data uint64)) {
	st.nodes[dst].onNotify = fn
}

// Hazard experiment results.
type HazardStats struct {
	Trials     int
	Violations int
}

// RunWAW runs the write-after-write experiment of Fig. 2a: A writes object
// O on host O's owner, then (without waiting) notifies B; B reads O on the
// notification and checks it sees the new value. Returns the violation
// count.
func (st *Store) RunWAW(eng *sim.Engine, trials int, gap sim.Time) *HazardStats {
	res := &HazardStats{}
	const obj = 1
	a, b := netsim.ProcID(2), netsim.ProcID(3)
	st.OnNotify(b, func(_ netsim.ProcID, want uint64) {
		st.Read(b, obj, func(got uint64) {
			res.Trials++
			if got < want {
				res.Violations++
			}
		})
	})
	for i := 0; i < trials; i++ {
		val := uint64(i + 1)
		eng.At(eng.Now()+sim.Time(i+1)*gap, func() {
			st.Write(a, obj, val) // A -> O
			st.Notify(a, b, val)  // A -> B, immediately: no fence
		})
	}
	return res
}

// RunIRIW runs the independent-read-independent-write experiment of
// Fig. 2b with fence-free pipelining on both sides: A writes O1 (data)
// then immediately O2 (metadata); B issues the read of O2 and then
// immediately the read of O1, without waiting for the first reply —
// exactly the behavior 1Pipe makes safe. A violation is seeing new
// metadata with stale data.
func (st *Store) RunIRIW(eng *sim.Engine, trials int, gap sim.Time) *HazardStats {
	res := &HazardStats{}
	a, b := netsim.ProcID(0), netsim.ProcID(1)
	const o1, o2 = 6, 7 // distinct owners
	for i := 0; i < trials; i++ {
		val := uint64(i + 1)
		at := eng.Now() + sim.Time(i+1)*gap
		eng.At(at, func() {
			st.Write(a, o1, val) // data first
			st.Write(a, o2, val) // metadata immediately after: no fence
		})
		// B pipelines both reads, program order metadata-then-data.
		eng.At(at, func() {
			var metaVal, dataVal uint64
			got := 0
			check := func() {
				if got != 2 {
					return
				}
				res.Trials++
				if dataVal < metaVal {
					res.Violations++
				}
			}
			st.Read(b, o2, func(v uint64) { metaVal = v; got++; check() })
			st.Read(b, o1, func(v uint64) { dataVal = v; got++; check() })
		})
	}
	return res
}
