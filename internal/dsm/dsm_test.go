package dsm

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func deploy(t *testing.T, tr Transport) (*core.Cluster, *Store) {
	t.Helper()
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	// Realistic per-packet delay variation: this is what makes ordering
	// hazards observable on the unordered transport (different paths,
	// different delays — §2.2.1).
	cfg.Jitter = 3 * sim.Microsecond
	cl := core.Deploy(netsim.New(cfg), core.DefaultConfig())
	return cl, New(cl, tr)
}

func TestBasicReadWrite(t *testing.T) {
	cl, st := deploy(t, TransportOnePipe)
	var got uint64
	cl.Net.Eng.At(50*sim.Microsecond, func() {
		st.Write(0, 42, 7)
		st.Read(1, 42, func(v uint64) { got = v })
	})
	cl.Run(1 * sim.Millisecond)
	if got != 7 {
		t.Fatalf("read %d, want 7 (ordered read must see the earlier write)", got)
	}
}

func TestWAWHazardEliminatedByOnePipe(t *testing.T) {
	cl, st := deploy(t, TransportOnePipe)
	res := st.RunWAW(cl.Net.Eng, 300, 2*sim.Microsecond)
	cl.Run(5 * sim.Millisecond)
	if res.Trials < 290 {
		t.Fatalf("only %d/300 trials completed", res.Trials)
	}
	if res.Violations != 0 {
		t.Fatalf("%d WAW violations with 1Pipe (must be zero)", res.Violations)
	}
}

func TestWAWHazardObservableOnRaw(t *testing.T) {
	cl, st := deploy(t, TransportRaw)
	res := st.RunWAW(cl.Net.Eng, 300, 2*sim.Microsecond)
	cl.Run(5 * sim.Millisecond)
	if res.Trials < 290 {
		t.Fatalf("only %d/300 trials completed", res.Trials)
	}
	if res.Violations == 0 {
		t.Fatal("no WAW violation on raw transport under jitter — the hazard should be observable")
	}
	t.Logf("raw WAW violations: %d/%d", res.Violations, res.Trials)
}

func TestIRIWHazardEliminatedByOnePipe(t *testing.T) {
	cl, st := deploy(t, TransportOnePipe)
	res := st.RunIRIW(cl.Net.Eng, 300, 2*sim.Microsecond)
	cl.Run(5 * sim.Millisecond)
	if res.Trials < 290 {
		t.Fatalf("only %d/300 trials completed", res.Trials)
	}
	if res.Violations != 0 {
		t.Fatalf("%d IRIW violations with 1Pipe (must be zero)", res.Violations)
	}
}

func TestIRIWHazardObservableOnRaw(t *testing.T) {
	cl, st := deploy(t, TransportRaw)
	res := st.RunIRIW(cl.Net.Eng, 500, 2*sim.Microsecond)
	cl.Run(8 * sim.Millisecond)
	if res.Trials < 480 {
		t.Fatalf("only %d/500 trials completed", res.Trials)
	}
	if res.Violations == 0 {
		t.Fatal("no IRIW violation on raw transport under jitter — the hazard should be observable")
	}
	t.Logf("raw IRIW violations: %d/%d", res.Violations, res.Trials)
}
