package experiments

import (
	"fmt"
	"runtime"
	"time"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// FabricScale drives a packet-level all-to-all workload on a 1024-host
// fat-tree (8 pods x 8 racks x 16 hosts) and sweeps the simulation engine's
// shard count: the classic single engine, then the parallel conservative-
// lookahead engine at 2/4/8 pod-cut shards. The workload is fault-free and
// rng-free on the data path (flow ECMP, no loss, no jitter), so delivered
// counts and mean latency must agree across every row — the table doubles
// as an end-to-end determinism check while measuring wall-clock speedup.
//
// Unlike the paper figures this is a simulator scaling experiment, not a
// 1Pipe result: it exists to show the event engine reaches fabric sizes
// (§7.2's 32K-host projection territory) that a single event loop cannot.
func FabricScale(sc Scale) *Table {
	topo := topology.ClosConfig{Pods: 8, RacksPerPod: 8, HostsPerRack: 16, SpinesPerPod: 4, Cores: 8}
	window := sc.Window
	t := &Table{
		ID:      "scale",
		Title:   fmt.Sprintf("Sharded engine scaling, %d-host fat-tree, %v window", topo.NumHosts(), window),
		Columns: []string{"shards", "drive", "wall_s", "events", "Mev/s", "delivered", "avg_lat_us"},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; parallel speedup needs free cores", runtime.GOMAXPROCS(0)),
		"deterministic workload: delivered and avg_lat_us must match across rows")
	type cfgRow struct {
		shards   int
		parallel bool
	}
	rows := []cfgRow{{1, false}, {2, true}, {4, true}, {8, true}}
	for _, r := range rows {
		res := runFabricScale(topo, r.shards, r.parallel, window)
		drive := "single"
		if r.shards > 1 {
			drive = "parallel"
		}
		t.AddRow(
			fmt.Sprintf("%d", r.shards), drive,
			fmt.Sprintf("%.2f", res.wall),
			fmt.Sprintf("%d", res.events),
			fm(float64(res.events)/res.wall),
			fmt.Sprintf("%d", res.delivered),
			f2(res.avgLatUs),
		)
	}
	return t
}

// FabricScaleOnce runs a single configuration of the 1024-host scale
// workload and returns wall-clock seconds, executed events and delivered
// messages — the scale_1024_wall_s figure in BENCH_core.json.
func FabricScaleOnce(shards int, parallel bool, window sim.Time) (wallS float64, events, delivered uint64) {
	topo := topology.ClosConfig{Pods: 8, RacksPerPod: 8, HostsPerRack: 16, SpinesPerPod: 4, Cores: 8}
	res := runFabricScale(topo, shards, parallel, window)
	return res.wall, res.events, res.delivered
}

type fabricScaleResult struct {
	wall      float64
	events    uint64
	delivered uint64
	avgLatUs  float64
}

// runFabricScale runs one (shards, parallel) configuration: every host
// sends a 512 B message every 2 μs to a deterministically rotating
// destination; receivers account delivery count and send-to-deliver
// latency in per-host (shard-confined) slots.
func runFabricScale(topo topology.ClosConfig, shards int, parallel bool, window sim.Time) fabricScaleResult {
	cfg := netsim.DefaultConfig(topo, 1)
	cfg.FlowECMP = true // rng-free path selection: identical physics at any shard count
	cfg.Shards = shards
	cfg.Parallel = parallel
	n := netsim.New(cfg)
	defer n.Close()

	hosts := len(n.G.Hosts)
	type hostAcct struct {
		delivered uint64
		latSum    sim.Time
		_         [48]byte // avoid false sharing between shard goroutines
	}
	acct := make([]hostAcct, hosts)
	for hi := 0; hi < hosts; hi++ {
		hi := hi
		eng := n.HostEngine(hi)
		n.AttachHost(hi, func(pkt *netsim.Packet) {
			if pkt.Kind == netsim.KindData {
				acct[hi].delivered++
				acct[hi].latSum += eng.Now() - pkt.SentAt
			}
			netsim.PutPacket(pkt)
		})
	}

	const interval = 2 * sim.Microsecond
	for hi := 0; hi < hosts; hi++ {
		hi := hi
		eng := n.HostEngine(hi)
		k := 0
		var send func()
		send = func() {
			dst := (hi + 1 + (k*131)%(hosts-1)) % hosts
			pkt := netsim.GetPacket()
			pkt.Kind = netsim.KindData
			pkt.Src = netsim.ProcID(hi)
			pkt.Dst = netsim.ProcID(dst)
			pkt.MsgTS = n.Clocks[hi].Now()
			pkt.PSN = uint32(k)
			pkt.EndOfMsg = true
			pkt.Size = 512 + netsim.HeaderBytes
			n.SendFromHost(hi, pkt)
			k++
			eng.After(interval, send)
		}
		// Stagger start times so the fabric does not see a synchronized
		// 1024-way burst at t=0.
		eng.After(sim.Time(hi%200)*10*sim.Nanosecond, send)
	}

	start := time.Now()
	n.RunFor(window)
	wall := time.Since(start).Seconds()

	var res fabricScaleResult
	res.wall = wall
	res.events = n.ExecutedEvents()
	var latSum sim.Time
	for hi := range acct {
		res.delivered += acct[hi].delivered
		latSum += acct[hi].latSum
	}
	if res.delivered > 0 {
		res.avgLatUs = float64(latSum) / float64(res.delivered) / float64(sim.Microsecond)
	}
	return res
}
