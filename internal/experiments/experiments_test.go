package experiments

import (
	"strings"
	"testing"

	"onepipe/internal/sim"
)

// tiny is a minimal scale so the whole registry can run in CI.
func tiny() Scale {
	return Scale{Name: "tiny", MaxProcs: 8, Window: 100 * sim.Microsecond, Warmup: 50 * sim.Microsecond, Seeds: 1}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"8a", "8b", "9a", "9b", "10", "11", "12a", "12b", "13a", "13b", "14a", "14b", "14c", "15a", "15b", "16", "ceph", "ooo", "haz", "abl-barrier", "abl-relay", "abl-ecmp", "abl-beacon", "elastic", "mem", "proj", "stages", "chaos", "scale", "conflict", "slo", "serve"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, ok := Find("14a"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find matched a bogus id")
	}
}

// Every experiment must run to completion at tiny scale and produce a
// plausibly-shaped table.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl := r.Run(tiny())
			if tbl.ID != r.ID {
				t.Fatalf("table id %s, want %s", tbl.ID, r.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row width %d != %d columns: %v", len(row), len(tbl.Columns), row)
				}
			}
			var sb strings.Builder
			tbl.Print(&sb)
			if !strings.Contains(sb.String(), tbl.ID) {
				t.Fatal("Print lost the table id")
			}
		})
	}
}

func TestTopoForSizes(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 512} {
		topo, pph := topoFor(n)
		if got := topo.NumHosts() * pph; got < n {
			t.Fatalf("topoFor(%d) provides only %d proc slots", n, got)
		}
	}
}
