package experiments

import (
	"fmt"
	"math"
)

// Projection reproduces the §7.2 "Scalability to larger networks"
// analysis: at 32K hosts, the expected reliable-1Pipe latency penalty from
// packet loss is the probability-weighted cost of retransmission stalls,
// and the idle-path delay grows with hop count. The paper quotes
// +0–3 μs for all-healthy links (loss 1e-8) and +3–17 μs for all
// sub-healthy links (1e-6).
func Projection(sc Scale) *Table {
	t := &Table{
		ID: "proj", Title: "Projected reliable-1Pipe loss penalty at scale (§7.2 analysis)",
		Columns: []string{"hosts", "hops", "loss/link", "E[losses per RTT]", "added latency (us)"},
	}
	// Model: a reliable delivery waits for every host's commit floor; any
	// lost packet anywhere within one RTT window stalls the commit
	// barrier by roughly one retransmission timeout for the affected
	// sender, and every receiver waits for the worst sender. With L =
	// expected number of losses in flight per RTT, the expected added
	// latency is RTO * (1 - e^-L) + residual beacon quantization.
	const (
		rto              = 20.0 // us, the deployment's retransmission timeout
		pktPerHostPerRTT = 20.0 // packets in flight per host in one RTT at high load
	)
	for _, row := range []struct {
		hosts int
		hops  int
		loss  float64
	}{
		{32, 5, 1e-8},
		{32, 5, 1e-6},
		{1024, 7, 1e-8},
		{1024, 7, 1e-6},
		{32768, 9, 1e-8},
		{32768, 9, 1e-6},
	} {
		expLosses := float64(row.hosts) * float64(row.hops) * row.loss * pktPerHostPerRTT
		added := rto * (1 - math.Exp(-expLosses))
		t.AddRow(
			fmt.Sprintf("%d", row.hosts),
			fmt.Sprintf("%d", row.hops),
			fmt.Sprintf("%.0e", row.loss),
			fmt.Sprintf("%.4f", expLosses),
			f1(added),
		)
	}
	t.Notes = append(t.Notes,
		"paper: 32K hosts, healthy links (1e-8): +0-3us; sub-healthy (1e-6): +3-17us",
		"memory for reordering stays at the bandwidth-delay product; beacon overhead is per-link and scale-independent (Fig. 13)")
	return t
}
