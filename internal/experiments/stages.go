package experiments

import (
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// runStages drives the Fig. 9a idle-system probe workload with lifecycle
// tracing armed on every host and the in-network gauges sampling, and
// returns the merged histogram set.
func runStages(sc Scale, n int, reliable bool) [obs.NumSpans]stats.Histogram {
	cl := deploy(n, nil, nil)
	traces := cl.EnableTracing()
	netTrace := cl.Net.EnableObs(0)
	for _, p := range cl.Procs {
		p.OnDeliver = func(core.Delivery) {}
	}
	eng := cl.Net.Eng
	probes := 120
	for i := 0; i < probes; i++ {
		i := i
		at := sc.Warmup + sim.Time(i)*7*sim.Microsecond + sim.Time(i%11)*531*sim.Nanosecond
		eng.At(at, func() {
			src := cl.Procs[i%n]
			dst := netsim.ProcID((i*7 + 3) % n)
			if int(dst) == i%n {
				dst = netsim.ProcID((int(dst) + 1) % n)
			}
			msg := []core.Message{{Dst: dst, Data: struct{}{}, Size: 64}}
			if reliable {
				src.SendOpts(msg, core.SendOptions{Reliable: true})
			} else {
				src.Send(msg)
			}
		})
	}
	eng.RunFor(sc.Warmup + sim.Time(probes)*7*sim.Microsecond + 2*sim.Millisecond)
	return obs.Merge(append(traces, netTrace)...)
}

// Stages decomposes delivery latency into lifecycle spans — the breakdown
// behind Figs. 9/10: how much of the end-to-end latency is credit wait,
// ACK wait (the 2PC prepare phase) and barrier wait, plus the sampled
// in-network gauges (switch barrier lag, egress queue depth).
func Stages(sc Scale) *Table {
	t := &Table{
		ID: "stages", Title: "Per-stage latency decomposition (us)",
		Columns: []string{"class", "span", "count", "mean", "p50", "p95", "p99", "max"},
	}
	n := 32
	if n > sc.MaxProcs {
		n = sc.MaxProcs
	}
	for _, class := range []struct {
		name     string
		reliable bool
	}{{"best-effort", false}, {"reliable", true}} {
		hists := runStages(sc, n, class.reliable)
		for _, s := range obs.Summarize(hists) {
			t.AddRow(class.name, s.Span, fmt.Sprintf("%d", s.Count),
				f2(s.MeanU), f2(s.P50U), f2(s.P95U), f2(s.P99U), f2(s.MaxU))
		}
	}
	t.Notes = append(t.Notes,
		"e2e = net-transit + barrier-wait; reliable adds ack-wait (2PC prepare) to the barrier path",
		"switch-lag-*/switch-qdepth are periodic in-network gauges, not per-message spans")
	return t
}
