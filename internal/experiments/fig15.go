package experiments

import (
	"fmt"

	"onepipe/internal/netsim"
	"onepipe/internal/tpcc"
)

func tpccRun(sc Scale, n int, mode tpcc.Mode, loss float64) *tpcc.Stats {
	cl := deploy(n, func(c *netsim.Config) { c.LossRate = loss }, nil)
	b := tpcc.New(cl, mode, tpcc.DefaultConfig())
	return b.Run(sc.Warmup, sc.Window)
}

// Fig15a regenerates TPC-C (New-Order + Payment) throughput scalability.
func Fig15a(sc Scale) *Table {
	t := &Table{
		ID: "15a", Title: "TPC-C throughput (M txn/s) vs. number of processes; 4 warehouses, 3 replicas",
		Columns: []string{"procs", "1Pipe", "Lock", "OCC", "NonTX"},
	}
	for _, n := range procSweep(sc, []int{4, 8, 16, 32, 64, 128, 256, 512}) {
		row := []string{f1(float64(n))}
		for _, mode := range []tpcc.Mode{tpcc.Mode1Pipe, tpcc.ModeLock, tpcc.ModeOCC, tpcc.ModeNonTX} {
			s := tpccRun(sc, n, mode, 0)
			row = append(row, fm(s.TxnPerSec()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe scales near NonTX; Lock and OCC peak early and decline (4 hot warehouse rows)")
	return t
}

// Fig15b regenerates TPC-C throughput under packet loss (64 processes).
func Fig15b(sc Scale) *Table {
	t := &Table{
		ID: "15b", Title: "TPC-C throughput (M txn/s) vs. packet loss probability",
		Columns: []string{"loss", "1Pipe", "Lock", "OCC", "NonTX"},
	}
	n := 64
	if n > sc.MaxProcs {
		n = sc.MaxProcs
	}
	for _, loss := range []float64{0, 1e-5, 1e-4, 1e-3, 1e-2} {
		row := []string{fmt.Sprintf("%.0e", loss)}
		for _, mode := range []tpcc.Mode{tpcc.Mode1Pipe, tpcc.ModeLock, tpcc.ModeOCC, tpcc.ModeNonTX} {
			s := tpccRun(sc, n, mode, loss)
			row = append(row, fm(s.TxnPerSec()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe throughput barely moves with loss (new txns flow during retransmissions); Lock/OCC degrade as lock hold times inflate")
	return t
}
