package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/sim"
)

// MemBound regenerates the bounded-receiver-memory figure: an incast (every
// process sends to process 0) with artificially inflated delivery latency
// (the barrier-holdback knob), swept over fabric size. The unbounded
// receiver's hot reorder heap grows with the number of senders; with
// ReorderHotCap set, hot occupancy stays pinned at the cap while overflow
// spills to the cold store — and the victim's delivery sequence is
// byte-identical, which the last column verifies per row by hashing both
// runs' delivery logs.
func MemBound(sc Scale) *Table {
	t := &Table{
		ID: "mem", Title: "Receiver reorder memory vs. fabric size (incast, 25us holdback)",
		Columns: []string{"procs", "hot_max_unbounded", "hot_max_capped", "cold_spills", "delivery_identical"},
	}
	const hotCap = 32
	hold := 25 * sim.Microsecond
	for _, n := range procSweep(sc, []int{8, 16, 32, 64, 128, 256}) {
		unb, unbMax, _ := runIncast(sc, n, hold, 0)
		cap_, capMax, spills := runIncast(sc, n, hold, hotCap)
		same := "YES"
		if unb != cap_ {
			same = "NO"
		}
		t.AddRow(fd(n), fd(int(unbMax)), fd(int(capMax)), fd(int(spills)), same)
	}
	t.Notes = append(t.Notes,
		"expected shape: unbounded hot occupancy grows with sender count (linear incast pressure); capped stays at ReorderHotCap=32 with the overflow in cold spills; delivery sequences must match on every row",
		"hot_max is the peak entry count of the larger per-plane heap on any host; the victim (proc 0) dominates")
	return t
}

// runIncast drives one incast run and returns the victim's delivery-log
// digest, the fabric-wide peak hot heap occupancy, and total cold spills.
func runIncast(sc Scale, n int, hold sim.Time, hotCap int) (digest string, hotMax int64, spills uint64) {
	cl := deploy(n, nil, func(c *core.Config) {
		c.DeliveryHoldback = hold
		c.DisableBEAck = true
		c.ReorderHotCap = hotCap
	})
	eng := cl.Net.Eng
	h := sha256.New()
	var buf [16]byte
	cl.Procs[0].OnDeliver = func(d core.Delivery) {
		binary.LittleEndian.PutUint64(buf[:8], uint64(d.TS))
		binary.LittleEndian.PutUint64(buf[8:], uint64(d.Src))
		h.Write(buf[:])
	}
	// Every non-victim process sends small best-effort messages to proc 0
	// on a deterministic ticker: classic incast, and the holdback keeps
	// each message parked in the victim's reorder buffer for ~hold.
	gap := sim.Time(2 * sim.Microsecond)
	for pi := 1; pi < n; pi++ {
		pi := pi
		sim.NewTicker(eng, gap, sim.Time(pi)*53*sim.Nanosecond, func() {
			cl.Procs[pi].Send([]core.Message{{Dst: 0, Size: 256}})
		})
	}
	eng.RunFor(sc.Warmup + sc.Window + 4*hold)
	st := cl.TotalStats()
	return hex.EncodeToString(h.Sum(nil)), st.ReorderHotMax, st.ReorderSpills
}

func fd(v int) string { return fmt.Sprintf("%d", v) }
