package experiments

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/workload"
)

// runQueueingProbe measures BE and reliable delivery latency while
// background flows load the fabric.
func runQueueingProbe(sc Scale, n int, flowsPerHost int, oversub float64) (be, rel stats.Sample) {
	cl := deploy(n, func(c *netsim.Config) {
		c.Mode = netsim.ModeHostDelegate // the paper's Fig. 12 uses host representatives
		c.Oversub = oversub
		c.ECNThreshold = 7 * sim.Microsecond
	}, nil)
	eng := cl.Net.Eng
	nh := len(cl.Net.G.Hosts)
	// Background flows: 4KB message streams between host pairs, pushed
	// through the 1Pipe transport so DCTCP congestion control paces them
	// (the paper's background load is TCP). Aggregate offered load is held
	// near 40% of host bandwidth so the fabric queues without collapsing —
	// the regime the paper's latency-inflation numbers come from.
	var flows []workload.Source
	for h := 0; h < nh; h++ {
		for f := 0; f < flowsPerHost; f++ {
			src := h * cl.Net.Cfg.ProcsPerHost
			dst := ((h + nh/2 + f) % nh) * cl.Net.Cfg.ProcsPerHost
			gap := sim.Time(800*flowsPerHost) * sim.Nanosecond
			phase := sim.Time(h*131+f*37) * sim.Nanosecond
			flows = append(flows, workload.NewFixedStream(src, []int{dst}, gap, phase, 4096, workload.SendOpts{}))
		}
	}
	if len(flows) > 0 {
		// Unstamped: probes carry the send-time payload, background must not.
		drivePump(cl, workload.Merge(flows...), 0, false)
	}
	for _, p := range cl.Procs {
		p.OnDeliver = func(d core.Delivery) {
			if sent, ok := d.Data.(sim.Time); ok {
				if d.Reliable {
					rel.Add(float64(eng.Now()-sent) / 1000)
				} else {
					be.Add(float64(eng.Now()-sent) / 1000)
				}
			}
		}
	}
	probes := 80
	if sc.MaxProcs <= 16 { // bench scale: keep the sweep affordable
		probes = 30
	}
	for i := 0; i < probes; i++ {
		i := i
		at := sc.Warmup + sim.Time(i)*31*sim.Microsecond + sim.Time(i%13)*701*sim.Nanosecond
		eng.At(at, func() {
			src := cl.Procs[i%n]
			dst := netsim.ProcID((i*5 + 7) % n)
			if int(dst) == i%n {
				dst = netsim.ProcID((int(dst) + 1) % n)
			}
			m := []core.Message{{Dst: dst, Data: eng.Now(), Size: 64}}
			if i%2 == 0 {
				src.Send(m)
			} else {
				src.SendOpts(m, core.SendOptions{Reliable: true})
			}
		})
	}
	tail := 3 * sim.Millisecond
	if sc.MaxProcs <= 16 {
		tail = 1500 * sim.Microsecond
	}
	eng.RunFor(sc.Warmup + sim.Time(probes)*31*sim.Microsecond + tail)
	return be, rel
}

// latOrDash formats a latency sample, showing "-" when no probe of that
// class completed.
func latOrDash(s *stats.Sample) string {
	if s.N() == 0 {
		return "-"
	}
	return f1(s.Mean())
}

// Fig12a regenerates latency vs. background flow count.
func Fig12a(sc Scale) *Table {
	t := &Table{
		ID: "12a", Title: "Delivery latency (us) vs. background flows per host",
		Columns: []string{"flows", "BE-host", "R-host"},
	}
	n := 32
	if n > sc.MaxProcs {
		n = sc.MaxProcs
	}
	for _, flows := range []int{0, 2, 4, 6, 8, 10} {
		be, rel := runQueueingProbe(sc, n, flows, 1)
		t.AddRow(f1(float64(flows)), latOrDash(&be), latOrDash(&rel))
	}
	t.Notes = append(t.Notes, "expected shape: latency inflates with background load (queueing); R above BE")
	return t
}

// Fig12b regenerates latency vs. core oversubscription ratio.
func Fig12b(sc Scale) *Table {
	t := &Table{
		ID: "12b", Title: "Delivery latency (us) vs. oversubscription ratio",
		Columns: []string{"oversub", "BE-host", "R-host"},
	}
	n := 32
	if n > sc.MaxProcs {
		n = sc.MaxProcs
	}
	for _, ratio := range []float64{1, 2, 3, 4, 5, 6} {
		be, rel := runQueueingProbe(sc, n, 2, ratio)
		t.AddRow(f1(ratio), latOrDash(&be), latOrDash(&rel))
	}
	t.Notes = append(t.Notes, "expected shape: latency grows with oversubscription (core queueing)")
	return t
}
