package experiments

import (
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// runLatencyProbe measures idle-system delivery latency: sparse probe
// messages between random process pairs, phases decorrelated from the
// beacon interval.
func runLatencyProbe(sc Scale, n int, mode netsim.Mode, reliable, ordered bool, loss float64) stats.Sample {
	cl := deploy(n, func(c *netsim.Config) {
		c.Mode = mode
		c.LossRate = loss
	}, nil)
	eng := cl.Net.Eng
	var lat stats.Sample
	if ordered {
		for _, p := range cl.Procs {
			p.OnDeliver = func(d core.Delivery) {
				if sent, ok := d.Data.(sim.Time); ok {
					lat.Add(float64(eng.Now()-sent) / 1000)
				}
			}
		}
	} else {
		for _, p := range cl.Procs {
			p.OnRaw = func(src netsim.ProcID, data any) {
				if sent, ok := data.(sim.Time); ok {
					lat.Add(float64(eng.Now()-sent) / 1000)
				}
			}
		}
	}
	probes := 120
	for i := 0; i < probes; i++ {
		i := i
		at := sc.Warmup + sim.Time(i)*7*sim.Microsecond + sim.Time(i%11)*531*sim.Nanosecond
		eng.At(at, func() {
			src := cl.Procs[i%n]
			dst := netsim.ProcID((i*7 + 3) % n)
			if int(dst) == i%n {
				dst = netsim.ProcID((int(dst) + 1) % n)
			}
			switch {
			case !ordered:
				src.SendRaw(dst, eng.Now(), 64)
			case reliable:
				src.SendOpts([]core.Message{{Dst: dst, Data: eng.Now(), Size: 64}}, core.SendOptions{Reliable: true})
			default:
				src.Send([]core.Message{{Dst: dst, Data: eng.Now(), Size: 64}})
			}
		})
	}
	eng.RunFor(sc.Warmup + sim.Time(probes)*7*sim.Microsecond + 2*sim.Millisecond)
	return lat
}

// Fig9a regenerates idle-system delivery latency across variants.
func Fig9a(sc Scale) *Table {
	t := &Table{
		ID: "9a", Title: "Delivery latency (us): mean [p5, p95]",
		Columns: []string{"procs", "BE-chip", "BE-host", "R-chip", "R-host", "unordered"},
	}
	for _, n := range procSweep(sc, []int{8, 16, 32, 512}) {
		beChip := runLatencyProbe(sc, n, netsim.ModeChip, false, true, 0)
		beHost := runLatencyProbe(sc, n, netsim.ModeHostDelegate, false, true, 0)
		rChip := runLatencyProbe(sc, n, netsim.ModeChip, true, true, 0)
		rHost := runLatencyProbe(sc, n, netsim.ModeHostDelegate, true, true, 0)
		raw := runLatencyProbe(sc, n, netsim.ModeChip, false, false, 0)
		t.AddRow(f1(float64(n)),
			beChip.Summary(), beHost.Summary(), rChip.Summary(), rHost.Summary(), raw.Summary())
	}
	t.Notes = append(t.Notes,
		"expected shape: unordered < BE-chip < R-chip; host delegation adds ~2us per hop; overhead grows with hop count (8->32 procs)")
	return t
}

// Fig9b regenerates delivery latency under increasing packet loss (the
// paper's 512-process setting, scaled).
func Fig9b(sc Scale) *Table {
	t := &Table{
		ID: "9b", Title: "Average delivery latency (us) vs. packet loss probability",
		Columns: []string{"loss", "BE-chip", "BE-host", "R-chip", "R-host", "unordered"},
	}
	n := sc.MaxProcs
	if n > 64 {
		n = 64
	}
	for _, loss := range []float64{1e-8, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2} {
		beChip := runLatencyProbe(sc, n, netsim.ModeChip, false, true, loss)
		beHost := runLatencyProbe(sc, n, netsim.ModeHostDelegate, false, true, loss)
		rChip := runLatencyProbe(sc, n, netsim.ModeChip, true, true, loss)
		rHost := runLatencyProbe(sc, n, netsim.ModeHostDelegate, true, true, loss)
		raw := runLatencyProbe(sc, n, netsim.ModeChip, false, false, loss)
		t.AddRow(fmt.Sprintf("%.0e", loss),
			f1(beChip.Mean()), f1(beHost.Mean()), f1(rChip.Mean()), f1(rHost.Mean()), f1(raw.Mean()))
	}
	t.Notes = append(t.Notes,
		"expected shape: flat below ~1e-5, rising beyond as lost beacons stall barriers and reliable retransmissions stall commits")
	return t
}
