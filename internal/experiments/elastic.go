package experiments

import (
	"fmt"
	"math/rand"

	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/reconfig"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/topology"
)

// Elastic plots the fabric absorbing live membership changes: a steady
// all-to-all reliable workload runs while a rolling join brings N fresh
// hosts into the total order and a spine switch gracefully drains. Each
// row is one time bucket of the run — delivered messages (throughput),
// delivery latency p50/p95, and the minimum barrier announced by any live
// host. The experiment fails its own acceptance criteria in the notes if
// any receiver observed a timestamp regression or the minimum barrier
// stalled longer than the engine's skew bound allows.
func Elastic(sc Scale) *Table {
	topo := topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}
	ncfg := netsim.DefaultConfig(topo, 1)
	ncfg.Seed = 7
	ncfg.ControllerManagedCommit = true
	net := netsim.New(ncfg)
	cl := core.Deploy(net, core.DefaultConfig())
	ctrl := controller.New(net, cl, controller.DefaultConfig())
	ctrl.Raft.WaitLeader(50 * sim.Millisecond)
	eng := net.Eng
	g := net.G
	engine := reconfig.New(net, cl, ctrl, reconfig.Config{})
	// Leader election consumed some simulated time; the timeline is
	// relative to this start so bucket 0 carries traffic.
	start := eng.Now()

	joins, total := 2, 6*sim.Millisecond
	if sc.Name == "full" {
		joins, total = 4, 12*sim.Millisecond
	}
	bucket := total / 24
	nb := int(total / bucket)

	type bstat struct {
		deliv  int
		lat    stats.Sample
		minbar sim.Time
		live   int
	}
	buckets := make([]bstat, nb)
	bi := func() int {
		i := int((eng.Now() - start) / bucket)
		if i >= nb {
			i = nb - 1
		}
		return i
	}

	// Delivery recorders: latency is receiver clock minus message
	// timestamp; lastTS tracks per-receiver order so any regression across
	// an epoch change is counted, not silently averaged away.
	regressions := 0
	lastTS := make(map[netsim.ProcID]sim.Time)
	watch := func(pi int) {
		proc := cl.Procs[pi]
		proc.OnDeliver = func(d core.Delivery) {
			b := &buckets[bi()]
			b.deliv++
			b.lat.Add(float64(proc.Timestamp()-d.TS) / float64(sim.Microsecond))
			if d.TS < lastTS[proc.ID] {
				regressions++
			}
			lastTS[proc.ID] = d.TS
		}
	}

	// Workload: every live process sends one reliable unicast to a random
	// peer each interval. Draws come from one seeded RNG, so the run is
	// reproducible.
	rng := rand.New(rand.NewSource(11))
	interval := 4 * sim.Microsecond
	stop := start + total - sim.Millisecond
	var sender func(pi int)
	sender = func(pi int) {
		if eng.Now() >= stop {
			return
		}
		proc := cl.Procs[pi]
		dst := netsim.ProcID(rng.Intn(len(cl.Procs)))
		if dst != proc.ID {
			proc.SendOpts([]core.Message{{Dst: dst, Data: int64(pi), Size: 128}}, core.SendOptions{Reliable: true})
		}
		eng.After(interval/2+sim.Time(rng.Int63n(int64(interval))), func() { sender(pi) })
	}
	for pi := range cl.Procs {
		watch(pi)
		pi := pi
		eng.After(sim.Time(rng.Int63n(int64(interval)))+sim.Microsecond, func() { sender(pi) })
	}

	// Barrier probe: every 25 us, the minimum best-effort barrier announced
	// by any live (not drained, not dead) host, plus the live host count.
	// stall tracks the longest interval the minimum failed to advance.
	probeEvery := 25 * sim.Microsecond
	var lastMin sim.Time
	lastAdvance := start
	var maxStall sim.Time
	var probe func()
	probe = func() {
		minbar := sim.Time(0)
		live := 0
		for hi, h := range cl.Hosts {
			id := g.Host(hi)
			if g.NodeDead(id) || g.NodeDrained(id) {
				continue
			}
			be, _ := h.Barriers()
			if live == 0 || be < minbar {
				minbar = be
			}
			live++
		}
		if minbar > lastMin {
			lastMin, lastAdvance = minbar, eng.Now()
		} else if s := eng.Now() - lastAdvance; s > maxStall {
			maxStall = s
		}
		b := &buckets[bi()]
		b.minbar, b.live = lastMin, live
		if eng.Now() < start+total-probeEvery {
			eng.After(probeEvery, probe)
		}
	}
	eng.After(probeEvery, probe)

	// Rolling join: one fresh host every 600 us starting at t=1ms,
	// alternating pods. Each activation wires the recorder and a sender of
	// its own, so the joiner contributes load as soon as it is live.
	t := &Table{
		ID:      "elastic",
		Title:   "Live reconfiguration timeline: rolling host join + spine drain under load",
		Columns: []string{"t_us", "live", "deliv", "p50_us", "p95_us", "minbar_us"},
	}
	for j := 0; j < joins; j++ {
		j := j
		at := start + sim.Millisecond + sim.Time(j)*600*sim.Microsecond
		eng.At(at, func() {
			_, err := engine.JoinHost(j%topo.Pods, j%topo.RacksPerPod, func(_ *core.Host, eff sim.Time) {
				pi := len(cl.Procs) - 1
				watch(pi)
				sender(pi)
				t.Notes = append(t.Notes, fmt.Sprintf("join %d activated at t=%dus, effective epoch %dus",
					j, (eng.Now()-start)/sim.Microsecond, eff/sim.Microsecond))
			})
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("join %d failed: %v", j, err))
			}
		})
	}

	// Spine drain at two thirds of the run: pod 0 loses its second spine;
	// ECMP reroutes over the survivor without the barrier regressing.
	eng.At(start+total*2/3, func() {
		phys := g.Node(g.SpineUps(0)[1]).Phys
		err := engine.DrainSwitch(phys, func() {
			t.Notes = append(t.Notes, fmt.Sprintf("spine phys=%d drained at t=%dus", phys, (eng.Now()-start)/sim.Microsecond))
		})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("spine drain failed: %v", err))
		}
	})

	eng.RunFor(total)

	for i, b := range buckets {
		p50, p95 := "-", "-"
		if b.lat.N() > 0 {
			p50, p95 = f1(b.lat.Median()), f1(b.lat.Percentile(95))
		}
		t.AddRow(
			fmt.Sprintf("%d", sim.Time(i)*bucket/sim.Microsecond),
			fmt.Sprintf("%d", b.live),
			fmt.Sprintf("%d", b.deliv),
			p50, p95,
			fmt.Sprintf("%d", b.minbar/sim.Microsecond),
		)
	}
	skew := engine.Cfg.SkewBound
	stallVerdict := "ok"
	// The minimum barrier may legitimately hold still for the skew bound
	// plus a few beacon intervals while an epoch activates; anything
	// longer means a seeded register parked the aggregation.
	if allowed := skew + 10*net.Cfg.BeaconInterval; maxStall > allowed {
		stallVerdict = fmt.Sprintf("EXCEEDED allowance %dus", allowed/sim.Microsecond)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("timestamp regressions across all receivers: %d (must be 0)", regressions),
		fmt.Sprintf("max min-barrier stall %dus vs skew bound %dus: %s",
			maxStall/sim.Microsecond, skew/sim.Microsecond, stallVerdict),
		fmt.Sprintf("epochs committed: %d (joins=%d, spine drain=1)", len(ctrl.Epochs), joins))
	if regressions > 0 {
		t.Notes = append(t.Notes, "FAILED: a receiver's delivered timestamp regressed across an epoch change")
	}
	return t
}
