package experiments

import (
	"onepipe/internal/kvstore"
)

// kvRun deploys and measures one KVS configuration.
func kvRun(sc Scale, n int, mode kvstore.Mode, mut func(*kvstore.Config)) *kvstore.Stats {
	cl := deploy(n, nil, nil)
	cfg := kvstore.DefaultConfig()
	cfg.Keys = 1 << 20
	if mut != nil {
		mut(&cfg)
	}
	st := kvstore.New(cl, mode, cfg)
	return st.Run(sc.Warmup, sc.Window)
}

// Fig14a regenerates KVS throughput scalability: uniform and YCSB keys,
// 50% read-only transactions, 2 ops each.
func Fig14a(sc Scale) *Table {
	t := &Table{
		ID: "14a", Title: "KVS throughput per process (M txn/s); 50% read-only, 2 ops/txn",
		Columns: []string{"procs", "1Pipe/Unif", "FaRM/Unif", "NonTX/Unif", "1Pipe/YCSB", "FaRM/YCSB", "NonTX/YCSB"},
	}
	half := func(c *kvstore.Config) { c.ROFrac = 0.5 }
	for _, n := range procSweep(sc, []int{4, 8, 16, 32, 64, 128, 256, 512}) {
		row := []string{f1(float64(n))}
		for _, zipf := range []bool{false, true} {
			for _, mode := range []kvstore.Mode{kvstore.Mode1Pipe, kvstore.ModeFaRM, kvstore.ModeNonTX} {
				s := kvRun(sc, n, mode, func(c *kvstore.Config) {
					half(c)
					c.Zipf = zipf
				})
				row = append(row, fm(s.TxnPerSecPerProc(n)))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe ~flat near NonTX; FaRM below and collapsing on YCSB hot keys")
	return t
}

// Fig14b regenerates KVS latency by class vs. write fraction (YCSB keys).
func Fig14b(sc Scale) *Table {
	t := &Table{
		ID: "14b", Title: "KVS transaction latency (us) vs. write-op percentage (YCSB)",
		Columns: []string{"write%", "1Pipe-RO", "1Pipe-WO", "1Pipe-WR", "FaRM-RO", "FaRM-WO", "FaRM-WR"},
	}
	n := sc.MaxProcs
	if n > 128 {
		n = 128
	}
	for _, wf := range []float64{0.001, 0.01, 0.05, 0.2, 0.5} {
		row := []string{f1(wf * 100)}
		for _, mode := range []kvstore.Mode{kvstore.Mode1Pipe, kvstore.ModeFaRM} {
			s := kvRun(sc, n, mode, func(c *kvstore.Config) {
				c.Zipf = true
				c.WriteFrac = wf
			})
			row = append(row, latOrDash(&s.LatRO), latOrDash(&s.LatWO), latOrDash(&s.LatWR))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe latencies ~flat in write fraction; FaRM RO cheapest at low writes but write latency explodes with contention")
	return t
}

// Fig14c regenerates total KV operation throughput vs. transaction size
// (95% read-only).
func Fig14c(sc Scale) *Table {
	t := &Table{
		ID: "14c", Title: "Total KV ops/s (millions) vs. ops per transaction; 95% read-only",
		Columns: []string{"ops/txn", "1Pipe/Unif", "FaRM/Unif", "NonTX/Unif", "1Pipe/YCSB", "FaRM/YCSB", "NonTX/YCSB"},
	}
	n := sc.MaxProcs
	if n > 128 {
		n = 128
	}
	for _, ops := range []int{2, 4, 8, 16, 32, 64} {
		row := []string{f1(float64(ops))}
		for _, zipf := range []bool{false, true} {
			for _, mode := range []kvstore.Mode{kvstore.Mode1Pipe, kvstore.ModeFaRM, kvstore.ModeNonTX} {
				s := kvRun(sc, n, mode, func(c *kvstore.Config) {
					c.Zipf = zipf
					c.OpsPerTxn = ops
					c.ROFrac = 0.95
					c.Outstanding = 4
				})
				row = append(row, fm(s.OpsPerSec()))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe and NonTX roughly flat in txn size; FaRM/YCSB plummets as abort probability grows with footprint")
	return t
}
