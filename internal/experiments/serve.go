package experiments

import (
	"fmt"

	"onepipe"
	"onepipe/internal/serve"
	"onepipe/internal/sim"
)

// ServeRow is one serving-tier measurement: a client-scale point, the
// tpcc-style mix, an SMR mode, or one elastic-timeline bucket. Latencies
// are microseconds, client-observed.
type ServeRow struct {
	Segment   string  `json:"segment"`
	Clients   int     `json:"clients"`
	Delivered int     `json:"delivered"`
	ReqPerSec float64 `json:"req_per_s"`
	P50       float64 `json:"p50_us"`
	P99       float64 `json:"p99_us"`
	P999      float64 `json:"p999_us"`
}

// serveProcs sizes the serving fabric from the scale's process budget.
func serveProcs(sc Scale) int {
	n := sc.MaxProcs
	if n > 512 {
		n = 512
	}
	if n < 8 {
		n = 8
	}
	return n
}

// serveCluster deploys a root-API fabric for n processes, honoring the
// -shards flag the way every deploy-based experiment does.
func serveCluster(n int, withController bool) *onepipe.Cluster {
	topo, pph := topoFor(n)
	return onepipe.NewCluster(onepipe.Config{
		Topology:       topo,
		ProcsPerHost:   pph,
		Shards:         EngineShards,
		Seed:           1,
		WithController: withController,
	})
}

// ElasticP99Budget bounds post-drain tail latency relative to the
// pre-reconfiguration bucket: recovery means the final bucket's p99 is
// within this factor of the baseline.
const ElasticP99Budget = 2.5

// RunServe produces the -fig serve rows: a KV client-scale sweep (the top
// point is >=100k closed-loop clients at quick scale, ~1M at full), the
// transaction mix, the fabric-SMR vs Raft head-to-head, and an elastic
// Join/Drain timeline. The returned notes carry the self-asserted elastic
// verdict (RECOVERED/EXCEEDED — CI greps for failure).
func RunServe(sc Scale) ([]ServeRow, []string) {
	n := serveProcs(sc)
	var rows []ServeRow
	var notes []string

	// KV client-scale sweep: fixed think time, so offered load grows with
	// the connected-client count and the sweep traces latency under load.
	for _, mul := range []int{32, 128, 2048} {
		clients := n * mul
		cfg := serve.DefaultConfig()
		cfg.Clients = clients
		cfg.Seed = 1
		tier := serve.New(serveCluster(n, false), cfg)
		res := tier.RunLoad(sc.Warmup, sc.Window)
		rows = append(rows, serveRow(fmt.Sprintf("kv/%d", n), clients, res))
	}

	// tpcc-style transaction mix.
	{
		clients := n * 64
		cfg := serve.DefaultConfig()
		cfg.Service = serve.Txn
		cfg.Clients = clients
		cfg.Seed = 1
		tier := serve.New(serveCluster(n, false), cfg)
		res := tier.RunLoad(sc.Warmup, sc.Window)
		rows = append(rows, serveRow("txn", clients, res))
	}

	// SMR head-to-head: the same replicated state machine, commands
	// sequenced by the fabric's total order (no leader) vs the in-tree
	// Raft baseline riding best-effort fabric scatterings.
	smrProcs := 16
	if smrProcs > n {
		smrProcs = n
	}
	for _, svc := range []serve.Service{serve.SMRFabric, serve.SMRRaft} {
		clients := smrProcs * 64
		cfg := serve.DefaultConfig()
		cfg.Service = svc
		cfg.Replicas = 3
		cfg.Clients = clients
		cfg.ThinkTime = 200 * sim.Microsecond
		cfg.Seed = 1
		tier := serve.New(serveCluster(smrProcs, false), cfg)
		tier.WaitSMRReady(5 * sim.Millisecond)
		res := tier.RunLoad(sc.Warmup, sc.Window)
		rows = append(rows, serveRow(svc.String(), clients, res))
	}

	// Elastic timeline: Join then Drain mid-load, with SLO recovery
	// asserted against the pre-reconfiguration bucket.
	er, en := runServeElastic(sc)
	rows = append(rows, er...)
	notes = append(notes, en...)
	return rows, notes
}

func serveRow(seg string, clients int, res serve.Result) ServeRow {
	return ServeRow{
		Segment:   seg,
		Clients:   clients,
		Delivered: res.Delivered,
		ReqPerSec: res.ReqPerSec(),
		P50:       res.P50,
		P99:       res.P99,
		P999:      res.P999,
	}
}

// runServeElastic drives the Join/Drain-under-load segment: a fabric where
// half the processes own shards and half are pure frontends, a joined host
// adding frontend capacity mid-load, then a graceful frontend drain — with
// a measured bucket after each transition.
func runServeElastic(sc Scale) ([]ServeRow, []string) {
	n := 32
	if n > serveProcs(sc) {
		n = serveProcs(sc)
	}
	cl := serveCluster(n, true)
	cfg := serve.DefaultConfig()
	cfg.Servers = n / 2 // the rest are pure frontends; joins add more
	cfg.Clients = n * 128
	cfg.ThinkTime = 500 * sim.Microsecond
	cfg.Seed = 1
	tier := serve.New(cl, cfg)
	tier.Start()
	cl.Run(sc.Warmup)

	bucket := sc.Window / 2
	if bucket < 50*sim.Microsecond {
		bucket = 50 * sim.Microsecond
	}
	measure := func(seg string) ServeRow {
		tier.StartMeasure()
		cl.Run(bucket)
		return serveRow(seg, tier.Sessions(), tier.StopMeasure())
	}

	var rows []ServeRow
	var notes []string
	rows = append(rows, measure("elastic-pre"))

	// Scale out: one host joins live; its processes become frontends and
	// new sessions land on them while the rest of the pool keeps running.
	pph := cl.NumProcesses() / len(cl.Network().G.Hosts)
	if _, err := cl.Join(); err != nil {
		notes = append(notes, fmt.Sprintf("elastic: join FAILED: %v", err))
		return rows, notes
	}
	total := cl.NumProcesses()
	joined := make([]int, 0, pph)
	for p := total - pph; p < total; p++ {
		joined = append(joined, p)
	}
	tier.AddFrontends(joined, cfg.Clients/8)
	rows = append(rows, measure("elastic-join"))

	// Graceful drain: stop the victim frontend's sessions, let in-flight
	// requests finish, then drain the host out of the fabric.
	victim := n - 1 // highest original proc: a pure frontend
	victimHost := victim / pph
	stopped := tier.StopFrontend(victim)
	cl.Run(20 * sim.Microsecond)
	if err := cl.Drain(victimHost); err != nil {
		notes = append(notes, fmt.Sprintf("elastic: drain FAILED: %v", err))
		return rows, notes
	}
	rows = append(rows, measure("elastic-post"))

	pre, post := rows[0], rows[len(rows)-1]
	if post.P99 <= pre.P99*ElasticP99Budget {
		notes = append(notes, fmt.Sprintf(
			"elastic: post-drain p99 %.2fus within %.1fx of pre-reconfig %.2fus (stopped %d sessions) — RECOVERED",
			post.P99, ElasticP99Budget, pre.P99, stopped))
	} else {
		notes = append(notes, fmt.Sprintf(
			"elastic: post-drain p99 %.2fus EXCEEDED %.1fx of pre-reconfig %.2fus",
			post.P99, ElasticP99Budget, pre.P99))
	}
	return rows, notes
}

// Serve regenerates the -fig serve table.
func Serve(sc Scale) *Table {
	t := &Table{
		ID:      "serve",
		Title:   "Serving tier: closed-loop clients on the Fabric API (KV / txn / SMR / elastic)",
		Columns: []string{"segment", "clients", "delivered", "req/s", "p50(us)", "p99(us)", "p999(us)"},
	}
	rows, notes := RunServe(sc)
	for _, r := range rows {
		t.AddRow(r.Segment, fmt.Sprintf("%d", r.Clients), fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%.0f", r.ReqPerSec), f2(r.P50), f2(r.P99), f2(r.P999))
	}
	t.Notes = append(t.Notes,
		"closed-loop sessions (1 outstanding request, exponential think) on per-session SplitMix64 state; latency client-observed from issue decision to last reply part",
		"kv rows: fixed 1ms think, so offered load scales with connected clients; requests are Reliable() when they write, best-effort when read-only",
		"smr rows: same state machine, fabric total order as the log (no leader) vs the in-tree Raft baseline over best-effort fabric transport")
	t.Notes = append(t.Notes, notes...)
	return t
}
