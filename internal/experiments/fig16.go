package experiments

import (
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/hashtable"
	"onepipe/internal/netsim"
	"onepipe/internal/replication"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func htRun(sc Scale, d hashtable.Design, mix hashtable.OpMix, replicas int) *hashtable.Stats {
	ncfg := netsim.DefaultConfig(topology.Testbed(), 1)
	ncfg.BeaconInterval = 1 * sim.Microsecond // latency-sensitive data structure
	cl := core.Deploy(netsim.New(ncfg), core.DefaultConfig())
	cfg := hashtable.DefaultConfig()
	cfg.Replicas = replicas
	tb := hashtable.New(cl, d, mix, cfg)
	return tb.Run(sc.Warmup, sc.Window)
}

// Fig16 regenerates the replicated remote hash table comparison.
func Fig16(sc Scale) *Table {
	t := &Table{
		ID: "16", Title: "Remote hash table per-client throughput (M op/s) vs. replicas",
		Columns: []string{"replicas", "1Pipe/insert", "base/insert", "1Pipe/lookup", "base/lookup"},
	}
	clients := hashtable.DefaultConfig().Clients
	for _, reps := range []int{1, 2, 3, 4} {
		row := []string{f1(float64(reps))}
		for _, mix := range []hashtable.OpMix{hashtable.MixInsert, hashtable.MixLookup} {
			for _, d := range []hashtable.Design{hashtable.DesignOnePipe, hashtable.DesignBase} {
				s := htRun(sc, d, mix, reps)
				row = append(row, fm(s.OpsPerClientPerSec(clients)*1e0))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe insert beats the fenced baseline and the gap widens with replicas (leader CPU replication); 1Pipe lookups hold steady with replicas while leader-bound lookups do not scale")
	return t
}

// Ceph regenerates the §7.3.4 storage replication latency comparison.
func Ceph(sc Scale) *Table {
	t := &Table{
		ID: "ceph", Title: "4KB replicated write latency (us), 3 replicas, idle system",
		Columns: []string{"design", "mean", "stddev", "p5", "p95"},
	}
	ncfg := netsim.DefaultConfig(topology.Testbed(), 1)
	cl1 := core.Deploy(netsim.New(ncfg), core.DefaultConfig())
	g1 := replication.NewGroup(cl1, []netsim.ProcID{5, 6, 7}, replication.CephConfig())
	c := g1.Client(0)
	eng1 := cl1.Net.Eng
	writes := 100
	for i := 0; i < writes; i++ {
		eng1.At(sim.Time(100+i*400)*sim.Microsecond, func() { c.Append("obj", 4096, nil) })
	}
	eng1.RunFor(sim.Time(writes)*400*sim.Microsecond + 10*sim.Millisecond)

	ncfg2 := netsim.DefaultConfig(topology.Testbed(), 1)
	cl2 := core.Deploy(netsim.New(ncfg2), core.DefaultConfig())
	g2 := replication.NewCephGroup(cl2, 5, []netsim.ProcID{6, 7}, replication.CephConfig())
	eng2 := cl2.Net.Eng
	for i := 0; i < writes; i++ {
		eng2.At(sim.Time(100+i*400)*sim.Microsecond, func() { g2.Write(0, 4096, nil) })
	}
	eng2.RunFor(sim.Time(writes)*400*sim.Microsecond + 10*sim.Millisecond)

	add := func(name string, s *replication.Stats) {
		t.AddRow(name, f1(s.Latency.Mean()), f1(s.Latency.Stddev()),
			f1(s.Latency.Percentile(5)), f1(s.Latency.Percentile(95)))
	}
	add("1Pipe (1 RTT + parallel disk)", &g1.Stats)
	add("primary-backup chain (Ceph-style)", &g2.Stats)
	red := 1 - g1.Stats.Latency.Mean()/g2.Stats.Latency.Mean()
	t.Notes = append(t.Notes,
		fmt.Sprintf("latency reduction %.0f%% (paper: 64%%, 160±54us -> 58±28us)", red*100))
	return t
}

// OutOfOrder regenerates the §4.1 motivation number: the fraction of
// out-of-timestamp-order arrivals at one receiver fed by 8 senders (the
// paper measured 57%).
func OutOfOrder(sc Scale) *Table {
	t := &Table{
		ID: "ooo", Title: "Out-of-order arrival fraction at one receiver",
		Columns: []string{"senders", "ooo_fraction"},
	}
	for _, senders := range []int{2, 4, 8, 16} {
		ncfg := netsim.DefaultConfig(topology.Testbed(), 1)
		net := netsim.New(ncfg)
		total, ooo := 0, 0
		var lastTS sim.Time
		net.AttachHost(31, func(p *netsim.Packet) {
			if p.Kind != netsim.KindData {
				return
			}
			total++
			if p.MsgTS < lastTS {
				ooo++
			} else {
				lastTS = p.MsgTS
			}
		})
		for h := 0; h < senders; h++ {
			h := h
			sim.NewTicker(net.Eng, 200*sim.Nanosecond, 0, func() {
				ts := net.Clocks[h].Now()
				net.SendFromHost(h, &netsim.Packet{Kind: netsim.KindData, Src: netsim.ProcID(h),
					Dst: 31, MsgTS: ts, BarrierBE: ts, Size: 1024})
			})
		}
		net.Eng.RunFor(2 * sim.Millisecond)
		t.AddRow(f1(float64(senders)), f2(float64(ooo)/float64(total)))
	}
	t.Notes = append(t.Notes, "paper: 57% with 8 senders — dropping out-of-order arrivals is untenable, hence barriers")
	return t
}
