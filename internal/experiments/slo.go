package experiments

import (
	"bytes"
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/topology"
	"onepipe/internal/workload"
)

// SLORow is one raced config's percentile outcome under the reference
// trace + impairment profile. Latencies are microseconds.
type SLORow struct {
	Config    string  `json:"config"`
	Delivered int     `json:"delivered"`
	P50       float64 `json:"p50_us"`
	P99       float64 `json:"p99_us"`
	P999      float64 `json:"p999_us"`
}

// sloProcs picks the fabric size for the SLO race.
func sloProcs(sc Scale) int {
	if sc.MaxProcs >= 64 {
		return 64
	}
	return sc.MaxProcs
}

// sloSource builds the reference workload: a Zipf-skewed, ETC-heavy-tailed
// synthetic stream with a diurnal rate ramp, merged with periodic incast
// bursts at a victim. Fully seeded — every run regenerates the same trace.
func sloSource(n int, until sim.Time) workload.Source {
	base := workload.NewSynthetic(workload.SyntheticConfig{
		Procs:        n,
		MeanGap:      300 * sim.Nanosecond,
		Fanout:       2,
		Size:         workload.ETCSize,
		ZipfTheta:    0.99,
		ReliableFrac: 0.3,
		Rate:         workload.Diurnal(until, 0.6, 1.8),
		Stop:         until,
		Seed:         20260808,
	})
	incast := workload.NewIncast(n, 0, 6, 25*sim.Microsecond, 256, 0, until)
	return workload.Merge(base, incast)
}

// sloProfile is the reference impairment profile: switch-variance jitter
// everywhere, Gilbert-Elliott burst loss on host access links, and a
// WAN-ish RTT class on the core tier. Deliberately no ReorderRate: the
// barrier algebra assumes per-link FIFO (§4.1), and the SLO race measures
// the stack under conditions it is specified for.
func sloProfile() *netsim.Profile {
	jit := 150 * sim.Nanosecond
	access := &netsim.Impairment{Jitter: jit, GE: netsim.BurstLoss(0.002, 6)}
	wan := &netsim.Impairment{Jitter: jit, ExtraDelay: 1 * sim.Microsecond}
	return &netsim.Profile{
		Default: &netsim.Impairment{Jitter: jit},
		ByKind: map[topology.LinkKind]*netsim.Impairment{
			topology.LinkHostUp:       access,
			topology.LinkTorHostDown:  access,
			topology.LinkSpineCoreUp:  wan,
			topology.LinkCoreSpineDown: wan,
		},
	}
}

// RunSLO races batched / unbatched / conflict-aware endpoint configs under
// one recorded trace and one impairment profile, reporting delivery-latency
// percentiles from streaming histograms. The trace is recorded once (via
// the text format, proving the record→parse→replay pipeline on every run)
// and replayed verbatim for each config, so the configs see byte-identical
// offered load.
func RunSLO(sc Scale) []SLORow {
	n := sloProcs(sc)
	until := sc.Warmup + sc.Window
	trace := recordTrace(sloSource(n, until))
	configs := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"batched", nil},
		{"unbatched", func(c *core.Config) { c.DisableBatching = true }},
		{"conflict-aware", func(c *core.Config) { c.Mode = core.DeliverConflictAware }},
	}
	rows := make([]SLORow, 0, len(configs))
	for _, cc := range configs {
		cl := deploy(n, func(nc *netsim.Config) { nc.Impair = sloProfile() }, cc.mut)
		eng := cl.Net.Eng
		var hist stats.Histogram
		measuring := false
		delivered := 0
		for _, p := range cl.Procs {
			p.OnDeliver = func(d core.Delivery) {
				if !measuring {
					return
				}
				delivered++
				if sent, ok := d.Data.(sim.Time); ok {
					hist.Add(float64(eng.Now() - sent)) // ns
				}
			}
		}
		driveSource(cl, workload.NewReplay(trace), 0)
		eng.RunFor(sc.Warmup)
		measuring = true
		eng.RunFor(sc.Window + quiesceSLO)
		measuring = false
		rows = append(rows, SLORow{
			Config:    cc.name,
			Delivered: delivered,
			P50:       hist.Percentile(50) / 1000,
			P99:       hist.Percentile(99) / 1000,
			P999:      hist.Percentile(99.9) / 1000,
		})
	}
	return rows
}

// quiesceSLO lets in-flight scatterings (including loss-triggered
// retransmissions) finish delivering after the trace ends, so delivered
// counts are a determinism check, not a race with the window edge.
const quiesceSLO = 200 * sim.Microsecond

// recordTrace drains a source through the trace recorder and re-parses the
// dump — the same bytes an on-disk trace file would hold.
func recordTrace(src workload.Source) []workload.Intent {
	var buf bytes.Buffer
	tw := workload.NewTraceWriter(&buf)
	rec := workload.Record(src, tw)
	for {
		if _, ok := rec.Next(); !ok {
			break
		}
	}
	if err := tw.Flush(); err != nil {
		panic(err)
	}
	its, err := workload.ParseTrace(&buf)
	if err != nil {
		panic(err) // the recorder wrote it; a parse failure is a format bug
	}
	return its
}

// SLO regenerates the -fig slo table.
func SLO(sc Scale) *Table {
	t := &Table{
		ID:    "slo",
		Title: "Delivery latency SLO race: one trace + impairment profile, three configs",
		Columns: []string{"config", "delivered", "p50(us)", "p99(us)", "p999(us)"},
	}
	for _, r := range RunSLO(sc) {
		t.AddRow(r.Config, fmt.Sprintf("%d", r.Delivered), f2(r.P50), f2(r.P99), f2(r.P999))
	}
	t.Notes = append(t.Notes,
		"workload: Zipf-skewed dsts (theta .99), ETC heavy-tailed sizes, diurnal ramp, 6-way incasts; recorded to the text trace format and replayed per config",
		"impairments: 150ns jitter fabric-wide, Gilbert-Elliott burst loss (0.2%, mean burst 6) on access links, +1us RTT class on the core tier; no reordering (the barrier algebra assumes per-link FIFO)",
		"identical 'delivered' across -shards values is the lockstep determinism check")
	return t
}
