package experiments

import (
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Fig13a regenerates the beacon CPU overhead model: how much of a CPU core
// a 32-port switch's beacon generation consumes at each interval, for the
// paper's three processing paths (Arista switch CPU through the OS stack,
// the same with a raw/kernel-bypass path, and a host server core with
// DPDK).
func Fig13a(sc Scale) *Table {
	t := &Table{
		ID: "13a", Title: "Portion of a CPU core for beacon processing (32-port switch)",
		Columns: []string{"interval_us", "Arista(OS)", "Arista(raw)", "Server(DPDK)"},
	}
	// Per-beacon processing costs (send one + fold one received barrier),
	// calibrated to the paper's measurements: a host core sustains the
	// 3us interval; a switch CPU has ~1/3 of that capacity through a raw
	// path and far less through the OS IP stack.
	const (
		costOS   = 30e-6 // seconds per beacon via the switch OS stack
		costRaw  = 1e-6
		costDPDK = 0.3e-6
	)
	const ports = 32
	for _, usI := range []float64{1, 3, 10, 30, 100, 300, 1000} {
		rate := ports / (usI * 1e-6) // beacons per second for all ports
		t.AddRow(f1(usI),
			fmt.Sprintf("%.3g", rate*costOS),
			fmt.Sprintf("%.3g", rate*costRaw),
			fmt.Sprintf("%.3g", rate*costDPDK))
	}
	t.Notes = append(t.Notes,
		"cost model calibrated to §7.2: one server core sustains a 3us interval; a switch CPU core sustains ~10us with kernel bypass; the OS stack needs many cores below ~100us")
	return t
}

// Fig13b regenerates beacon bandwidth overhead, cross-checked against the
// simulator's measured byte counters for the 100 Gbps case.
func Fig13b(sc Scale) *Table {
	t := &Table{
		ID: "13b", Title: "Beacon traffic as a percentage of link bandwidth",
		Columns: []string{"interval_us", "10Gbps", "40Gbps", "100Gbps", "100Gbps(sim)"},
	}
	for _, usI := range []float64{1, 3, 10, 30, 100, 300, 1000} {
		beaconBitsPerSec := float64(netsim.BeaconBytes*8) / (usI * 1e-6)
		row := []string{f1(usI)}
		for _, gbps := range []float64{10, 40, 100} {
			row = append(row, fmt.Sprintf("%.3g%%", 100*beaconBitsPerSec/(gbps*1e9)))
		}
		// Measured: an idle simulated fabric carries only beacons; the
		// overhead is beacon bytes per link per second over capacity.
		ncfg := netsim.DefaultConfig(topology.Testbed(), 1)
		ncfg.BeaconInterval = sim.Time(usI * 1000)
		net := netsim.New(ncfg)
		core.Deploy(net, core.DefaultConfig())
		dur := 5 * sim.Millisecond
		net.Eng.RunFor(dur)
		links := float64(len(net.G.Links))
		bytesPerLinkPerSec := float64(net.Stats.BytesByKind[netsim.KindBeacon]) / links / dur.Seconds()
		row = append(row, fmt.Sprintf("%.3g%%", 100*bytesPerLinkPerSec*8/(100e9)))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: overhead inversely proportional to interval; ~0.3% at 3us on 100Gbps; independent of network scale (beacons are hop-by-hop)")
	return t
}
