package experiments

import (
	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/topology"
)

// failureKind selects what to kill in the Fig. 10 sweep.
type failureKind int

const (
	failHost failureKind = iota
	failToR
	failCoreLink
	failCoreSwitch
)

// runRecovery deploys a controller-managed cluster of n hosts, injects one
// failure, and returns the measured recovery time (barrier stall) in
// microseconds, or -1 if recovery never completed.
func runRecovery(n int, kind failureKind, seed int64) float64 {
	topo, pph := topoFor(n)
	ncfg := netsim.DefaultConfig(topo, pph)
	ncfg.Seed = seed
	ncfg.ControllerManagedCommit = true
	net := netsim.New(ncfg)
	cl := core.Deploy(net, core.DefaultConfig())
	ctrl := controller.New(net, cl, controller.DefaultConfig())
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		return -1
	}
	eng := net.Eng
	g := net.G
	eng.After(100*sim.Microsecond, func() {
		switch kind {
		case failHost:
			cl.Hosts[0].Stop()
			g.KillNode(g.Host(0))
		case failToR:
			tor := g.Links[g.Out[g.Host(0)][0]].To
			g.KillPhys(g.Nodes[tor].Phys)
		case failCoreLink:
			killCoreAdjacent(g, true)
		case failCoreSwitch:
			killCoreAdjacent(g, false)
		}
	})
	eng.RunFor(10 * sim.Millisecond)
	if ctrl.RecoveryTime.N() == 0 {
		return -1
	}
	return ctrl.RecoveryTime.Mean()
}

// killCoreAdjacent kills one spine->core link (linkOnly) or one whole core
// switch.
func killCoreAdjacent(g *topology.Graph, linkOnly bool) {
	for _, l := range g.Links {
		if l.Kind == topology.LinkSpineCoreUp {
			if linkOnly {
				g.KillLink(l.ID)
			} else {
				g.KillPhys(g.Nodes[l.To].Phys)
			}
			return
		}
	}
	// Single-core topologies without a core layer fall back to a spine
	// loopback link.
	for _, l := range g.Links {
		if l.Kind == topology.LinkLoopback {
			g.KillLink(l.ID)
			return
		}
	}
}

// Fig10 regenerates failure recovery time by failure type and host count.
func Fig10(sc Scale) *Table {
	t := &Table{
		ID: "10", Title: "Failure recovery time (us): mean [p5, p95]",
		Columns: []string{"hosts", "Host", "ToR Switch", "Core Link", "Core Switch"},
	}
	for _, n := range procSweep(sc, []int{8, 16, 32}) {
		row := []string{f1(float64(n))}
		for _, kind := range []failureKind{failHost, failToR, failCoreLink, failCoreSwitch} {
			var s stats.Sample
			for seed := int64(1); seed <= int64(sc.Seeds); seed++ {
				if us := runRecovery(n, kind, seed); us >= 0 {
					s.Add(us)
				}
			}
			if s.N() == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, s.Summary())
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expected shape: core link/switch failures recover without involving processes; host and especially ToR failures take longer (more processes to Discard/Recall); paper band 50-500us")
	return t
}
