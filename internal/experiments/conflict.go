package experiments

import (
	"fmt"
	"math/rand"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// runConflictRace drives a steady random-destination workload in the given
// delivery mode, tagging each scattering with a nonzero conflict key with
// probability rate, and reports post-warmup throughput (messages/s) and
// delivery latency. The RNG stream is mode-independent, so the conflict-
// aware and unified runs of one rate race identical traffic.
func runConflictRace(sc Scale, n int, mode core.DeliveryMode, rate float64) (thr float64, lat stats.Sample) {
	cl := deploy(n, nil, func(c *core.Config) { c.Mode = mode })
	eng := cl.Net.Eng
	delivered := 0
	for _, p := range cl.Procs {
		p.OnDeliver = func(d core.Delivery) {
			if eng.Now() < sc.Warmup {
				return
			}
			delivered++
			if sent, ok := d.Data.(sim.Time); ok {
				lat.Add(float64(eng.Now()-sent) / 1000)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	interval := 4 * sim.Microsecond
	stop := sc.Warmup + sc.Window
	var loop func(pi int)
	loop = func(pi int) {
		if eng.Now() >= stop {
			return
		}
		dst := netsim.ProcID(rng.Intn(n))
		if int(dst) == pi {
			dst = netsim.ProcID((pi + 1) % n)
		}
		var key uint32
		if rng.Float64() < rate {
			key = 1 + uint32(rng.Intn(8))
		}
		_ = cl.Procs[pi].SendOpts(
			[]core.Message{{Dst: dst, Data: eng.Now(), Size: 128}},
			core.SendOptions{ConflictKey: key})
		eng.After(interval, func() { loop(pi) })
	}
	for pi := 0; pi < n; pi++ {
		pi := pi
		eng.After(sim.Time(rng.Int63n(int64(interval)))+sim.Microsecond, func() { loop(pi) })
	}
	eng.RunFor(stop + sim.Millisecond)
	return float64(delivered) / (float64(sc.Window+sim.Millisecond) / float64(sim.Second)), lat
}

// Conflict is the conflict-aware ablation: DeliverConflictAware raced
// against DeliverUnified on identical workloads while the fraction of
// conflict-tagged scatterings sweeps 0% -> 100%. At 100% the mode
// degenerates to the unified order (same waits, same numbers within noise);
// at 0% every delivery is relaxed and mean latency approaches the 0.5 RTT
// floor, which is the win the Generic Multicast relaxation buys workloads
// that can declare their conflicts.
func Conflict(sc Scale) *Table {
	t := &Table{
		ID: "conflict", Title: "Conflict-aware ablation: latency (us) and throughput vs. conflict rate",
		Columns: []string{"rate", "CA-mean", "CA-p99", "CA-Mmsg/s", "Uni-mean", "Uni-p99", "Uni-Mmsg/s"},
	}
	n := sc.MaxProcs
	if n > 32 {
		n = 32
	}
	for _, rate := range []float64{0, 0.25, 0.5, 0.75, 1} {
		caThr, caLat := runConflictRace(sc, n, core.DeliverConflictAware, rate)
		uThr, uLat := runConflictRace(sc, n, core.DeliverUnified, rate)
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100),
			f1(caLat.Mean()), f1(caLat.Percentile(99)), fm(caThr),
			f1(uLat.Mean()), f1(uLat.Percentile(99)), fm(uThr))
	}
	t.Notes = append(t.Notes,
		"expected shape: CA-mean rises with conflict rate toward the unified column; at 100% the two modes coincide (degeneracy); unified columns are rate-independent within noise")
	return t
}
