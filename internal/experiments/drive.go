package experiments

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/workload"
)

// pump is a running source drive's counters.
type pump struct {
	// Sent counts intents the fabric accepted (Send returned nil).
	Sent int
}

// drivePump pumps a workload.Source into a cluster: each intent becomes
// one scattering from Procs[Src]. With stamp set, messages carry the send
// time as payload (the latency convention every figure uses); without it
// they are anonymous background load. Events are scheduled on the root
// engine — the same shard the ticker loops this replaces lived on — so
// lockstep-sharded runs reproduce the identical schedule. Intents at or
// past stop (when nonzero) end the pump.
func drivePump(cl *core.Cluster, src workload.Source, stop sim.Time, stamp bool) *pump {
	p := &pump{}
	eng := cl.Net.Eng
	n := len(cl.Procs)
	var step func()
	var cur workload.Intent
	pull := func() bool {
		it, ok := src.Next()
		if !ok || (stop > 0 && it.At >= stop) {
			return false
		}
		cur = it
		at := it.At
		if now := eng.Now(); at < now {
			at = now
		}
		eng.At(at, step)
		return true
	}
	step = func() {
		msgs := make([]core.Message, 0, len(cur.Dsts))
		for _, d := range cur.Dsts {
			m := core.Message{Dst: netsim.ProcID(d % n), Size: cur.Size}
			if stamp {
				m.Data = eng.Now()
			}
			msgs = append(msgs, m)
		}
		src := cl.Procs[cur.Src%n]
		err := src.SendOpts(msgs, core.SendOptions{
			Reliable:    cur.Opts.Reliable,
			NoBatch:     cur.Opts.Unbatched,
			ConflictKey: cur.Opts.ConflictKey,
		})
		if err == nil {
			p.Sent++
		}
		pull()
	}
	pull()
	return p
}

// driveSource is the stamped pump (the latency-figure default).
func driveSource(cl *core.Cluster, src workload.Source, stop sim.Time) {
	drivePump(cl, src, stop, true)
}

// driveRaw pumps a Source as raw data-plane packets injected below the
// 1Pipe stack: intent Src/Dsts are host indices, each packet stamped with
// the sending host's synchronized clock (the pre-stack ablation path that
// measures what the fabric alone does to ordering).
func driveRaw(netN *netsim.Network, src workload.Source, stop sim.Time) {
	eng := netN.Eng
	var step func()
	var cur workload.Intent
	pull := func() bool {
		it, ok := src.Next()
		if !ok || (stop > 0 && it.At >= stop) {
			return false
		}
		cur = it
		at := it.At
		if now := eng.Now(); at < now {
			at = now
		}
		eng.At(at, step)
		return true
	}
	step = func() {
		ts := netN.Clocks[cur.Src].Now()
		for _, d := range cur.Dsts {
			netN.SendFromHost(cur.Src, &netsim.Packet{Kind: netsim.KindData,
				Src: netsim.ProcID(cur.Src), Dst: netsim.ProcID(d),
				MsgTS: ts, BarrierBE: ts, Size: cur.Size})
		}
		pull()
	}
	pull()
}
