package experiments

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/sim"
	"onepipe/internal/workload"
)

// TestSLOShardDeterminism is the acceptance check for the SLO pipeline:
// the race must produce identical delivery counts and percentile rows on
// the single engine and on a 4-way lockstep-sharded engine.
func TestSLOShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slo race skipped in -short mode")
	}
	saved := EngineShards
	defer func() { EngineShards = saved }()
	EngineShards = 0
	a := RunSLO(tiny())
	EngineShards = 4
	b := RunSLO(tiny())
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 config rows, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs across shard counts: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Delivered == 0 {
			t.Errorf("config %s delivered nothing", a[i].Config)
		}
		if !(a[i].P50 <= a[i].P99 && a[i].P99 <= a[i].P999) {
			t.Errorf("config %s percentiles not monotone: %+v", a[i].Config, a[i])
		}
	}
}

// TestDriveSourceMatchesTickers pins the fig8 migration: driving a
// RoundRobin source through driveSource must deliver messages (the exact
// schedule equivalence is pinned in workload's TestRoundRobinSchedule; this
// covers the pump end of the contract).
func TestDriveSourceMatchesTickers(t *testing.T) {
	cl := deploy(8, nil, nil)
	eng := cl.Net.Eng
	delivered := 0
	for _, p := range cl.Procs {
		p.OnDeliver = func(core.Delivery) { delivered++ }
	}
	driveSource(cl, workload.NewRoundRobin(8, 2*sim.Microsecond, 64, false), 0)
	eng.RunFor(100 * sim.Microsecond)
	// 8 procs sending every 2us for 100us ≈ 400 sends; batching and the
	// final window edge trim a few.
	if delivered < 300 {
		t.Fatalf("driveSource delivered only %d messages", delivered)
	}
}
