// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each experiment is a named runner that sweeps the
// figure's parameter, drives the workload on the simulated data center,
// and emits the same rows/series the paper plots. The cmd/onepipe-bench
// tool and the repository's bench_test.go both call into this package.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Table is one regenerated figure or table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats (e.g. reduced sweep at quick scale).
	Notes []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale sizes an experiment run: Quick keeps the full sweep *shape* while
// bounding process counts and windows for CI; Full reproduces the paper's
// axes.
type Scale struct {
	Name     string
	MaxProcs int
	Window   sim.Time
	Warmup   sim.Time
	Seeds    int
}

// Quick is the default scale used by `go test -bench`.
func Quick() Scale {
	return Scale{Name: "quick", MaxProcs: 64, Window: 400 * sim.Microsecond, Warmup: 150 * sim.Microsecond, Seeds: 1}
}

// Full reproduces the paper's sweeps (minutes of wall time).
func Full() Scale {
	return Scale{Name: "full", MaxProcs: 512, Window: 2 * sim.Millisecond, Warmup: 500 * sim.Microsecond, Seeds: 3}
}

// Runner is one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(sc Scale) *Table
}

// Registry lists every experiment, in figure order.
func Registry() []Runner {
	return []Runner{
		{"8a", "Total order broadcast throughput vs. process count", Fig8a},
		{"8b", "Total order broadcast latency vs. process count", Fig8b},
		{"9a", "Message delivery latency on an idle system", Fig9a},
		{"9b", "Delivery latency under packet loss", Fig9b},
		{"10", "Failure recovery time by failure type", Fig10},
		{"11", "Receiver reorder overhead vs. delivery latency", Fig11},
		{"12a", "Latency with background flows", Fig12a},
		{"12b", "Latency vs. oversubscription", Fig12b},
		{"13a", "Beacon CPU overhead vs. beacon interval", Fig13a},
		{"13b", "Beacon bandwidth overhead vs. beacon interval", Fig13b},
		{"14a", "Transactional KVS scalability", Fig14a},
		{"14b", "KVS latency vs. write fraction", Fig14b},
		{"14c", "KVS throughput vs. transaction size", Fig14c},
		{"15a", "TPC-C throughput scalability", Fig15a},
		{"15b", "TPC-C resilience to packet loss", Fig15b},
		{"16", "Replicated remote hash table throughput", Fig16},
		{"ceph", "Distributed storage replication latency (§7.3.4)", Ceph},
		{"ooo", "Out-of-order arrival fraction (§4.1 motivation)", OutOfOrder},
		{"haz", "WAW/IRIW ordering hazards, raw vs 1Pipe (§2.2.1)", Hazards},
		{"abl-barrier", "Ablation: barrier reordering vs naive drop", AblBarrier},
		{"abl-relay", "Ablation: event-driven relay vs per-link ticker", AblRelay},
		{"abl-ecmp", "Ablation: packet spraying vs flow ECMP", AblECMP},
		{"abl-beacon", "Ablation: beacon interval latency/overhead trade-off", AblBeacon},
		{"elastic", "Live reconfiguration: rolling join + spine drain under load", Elastic},
		{"mem", "Bounded receiver reorder memory vs. fabric size (incast)", MemBound},
		{"proj", "Projected loss penalty at 32K hosts (§7.2 analysis)", Projection},
		{"stages", "Per-stage latency decomposition (Fig. 9/10 breakdown)", Stages},
		{"chaos", "Randomized fault sweep with invariant checking (harness)", ChaosSweep},
		{"scale", "Sharded-engine scaling: 1024-host fabric, parallel lookahead sweep", FabricScale},
		{"conflict", "Ablation: conflict-aware relaxed order vs unified, by conflict rate", Conflict},
		{"slo", "SLO race: p50/p99/p999 under one trace + impairment profile", SLO},
		{"serve", "Serving tier: closed-loop clients on the Fabric API (KV/txn/SMR/elastic)", Serve},
	}
}

// Find returns the runner with the given ID.
func Find(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// topoFor picks a Clos sizing that hosts exactly n processes the way the
// paper does: up to 32 processes on distinct servers (growing the fabric),
// beyond that 32 servers with n/32 processes each.
func topoFor(n int) (topology.ClosConfig, int) {
	switch {
	case n <= 8:
		return topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: n, SpinesPerPod: 1, Cores: 1}, 1
	case n <= 16:
		return topology.ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: n / 2, SpinesPerPod: 2, Cores: 1}, 1
	case n <= 32:
		return topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: n / 4, SpinesPerPod: 2, Cores: 2}, 1
	default:
		return topology.Testbed(), n / 32
	}
}

// EngineShards, when > 1, runs every deploy-based experiment on a sharded
// lockstep engine (netsim.Config.Shards). Because the lockstep drive is
// event-order identical to the single engine, any figure re-run with
// -shards must reproduce its table exactly — a whole-suite determinism
// check for the sharded routing. Set from onepipe-bench's -shards flag.
var EngineShards int

// deploy builds a 1Pipe cluster for n processes.
func deploy(n int, mutNet func(*netsim.Config), mutCore func(*core.Config)) *core.Cluster {
	topo, pph := topoFor(n)
	ncfg := netsim.DefaultConfig(topo, pph)
	ncfg.Shards = EngineShards
	if mutNet != nil {
		mutNet(&ncfg)
	}
	ccfg := core.DefaultConfig()
	if mutCore != nil {
		mutCore(&ccfg)
	}
	return core.Deploy(netsim.New(ncfg), ccfg)
}

// procSweep returns the figure's process-count axis, capped by scale.
func procSweep(sc Scale, full []int) []int {
	var out []int
	for _, n := range full {
		if n <= sc.MaxProcs {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{full[0]}
	}
	return out
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// fm formats millions.
func fm(v float64) string { return fmt.Sprintf("%.2f", v/1e6) }
