package experiments

import (
	"onepipe/internal/core"
	"onepipe/internal/sim"
	"onepipe/internal/workload"
)

// Fig11 regenerates the receiver reorder-overhead experiment: delivery
// latency is inflated artificially (the barrier holdback knob) and the
// sustained per-process throughput and peak reorder-buffer memory are
// measured.
func Fig11(sc Scale) *Table {
	t := &Table{
		ID: "11", Title: "Reorder overhead on a host vs. added delivery latency",
		Columns: []string{"holdback_us", "tput_per_proc_Mmsg_s", "max_buffer_MB"},
	}
	n := 16
	for _, holdUs := range []int64{0, 1, 5, 25, 125} {
		hold := sim.Time(holdUs) * sim.Microsecond
		cl := deploy(n, nil, func(c *core.Config) {
			c.DeliveryHoldback = hold
			c.DisableBEAck = true // isolate receive-path overhead
		})
		eng := cl.Net.Eng
		delivered := 0
		measuring := false
		for _, p := range cl.Procs {
			p.OnDeliver = func(core.Delivery) {
				if measuring {
					delivered++
				}
			}
		}
		const offered = 4e6
		gap := sim.Time(1e9 / offered)
		drivePump(cl, workload.NewRoundRobin(n, gap, 1024, false), 0, false)
		window := sc.Window + 2*hold
		eng.RunFor(sc.Warmup + 2*hold)
		measuring = true
		eng.RunFor(window)
		measuring = false
		maxBuf := int64(0)
		for _, h := range cl.Hosts {
			if h.Stats.MaxBufferBytes > maxBuf {
				maxBuf = h.Stats.MaxBufferBytes
			}
		}
		tput := float64(delivered) / window.Seconds() / float64(n)
		t.AddRow(f1(float64(holdUs)), fm(tput), f2(float64(maxBuf)/1e6))
	}
	t.Notes = append(t.Notes,
		"expected shape: throughput roughly flat; buffer memory grows linearly with delivery latency (BDP), a few MB at 125us")
	return t
}
