package experiments

import (
	"fmt"

	"onepipe/internal/chaos"
)

// ChaosSweep runs the randomized chaos harness (internal/chaos) as a bench
// figure: each row is one seed — a fresh topology, workload and fault
// schedule — with the run's headline counters and the number of invariant
// violations the checker catalog found (always 0 on a healthy build; a
// nonzero cell prints the failing seed for replay with
// `go test ./internal/chaos -run TestChaosReplay -chaos.seed=N -v`).
func ChaosSweep(sc Scale) *Table {
	t := &Table{
		ID:      "chaos",
		Title:   "Randomized fault sweep: invariants checked per seed (§4.1, §5)",
		Columns: []string{"seed", "hosts", "procs", "mode", "faults", "sends", "deliveries", "recalled", "stuck", "forwarded", "violations"},
	}
	seeds := 8 * sc.Seeds
	bad := 0
	for s := int64(1); s <= int64(seeds); s++ {
		p := chaos.NewPlan(s)
		r := chaos.Run(p)
		vios := chaos.Check(r)
		bad += len(vios)
		mode := "separate"
		if p.Mode == 1 {
			mode = "unified"
		}
		t.AddRow(
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%d", p.Topo.NumHosts()),
			fmt.Sprintf("%d", p.Topo.NumHosts()*p.ProcsPerHost),
			mode,
			fmt.Sprintf("%d", len(p.Faults)),
			fmt.Sprintf("%d", len(r.Sends)),
			fmt.Sprintf("%d", r.TotalDeliveries()),
			fmt.Sprintf("%d", r.Stats.Recalled),
			fmt.Sprintf("%d", r.Stats.StuckReports),
			fmt.Sprintf("%d", r.ForwardedMsgs),
			fmt.Sprintf("%d", len(vios)),
		)
		if len(vios) > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("seed %d VIOLATES: %s (replay: go test ./internal/chaos -run TestChaosReplay -chaos.seed=%d -v)",
				s, vios[0], s))
		}
	}
	if bad == 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("all %d seeds upheld the full invariant catalog (see internal/chaos/checker.go)", seeds))
	}
	return t
}
