package experiments

import (
	"onepipe/internal/baseline"
	"onepipe/internal/core"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/workload"
)

// opResult is one 1Pipe data point of Fig. 8.
type opResult struct {
	tputPerProc float64
	lat         stats.Sample
}

// runOnePipeBroadcast drives the Fig. 8 all-to-all pattern on the real
// 1Pipe stack: every process sends 64-byte messages round-robin to all
// peers (a broadcast sliced into scatterings), at the offered per-process
// rate.
func runOnePipeBroadcast(sc Scale, n int, reliable bool, offered float64) opResult {
	cl := deploy(n, nil, func(c *core.Config) {
		// Best-effort throughput runs measure the data path; per-message
		// loss-detection ACKs would double the packet count and saturate
		// host NICs at 512 processes (the paper's ACKs are not in the
		// reported message rate). Reliable runs keep ACKs: they ARE the
		// 2PC prepare phase.
		c.DisableBEAck = !reliable
	})
	eng := cl.Net.Eng
	var res opResult
	measuring := false
	delivered := 0
	for _, p := range cl.Procs {
		p.OnDeliver = func(d core.Delivery) {
			if !measuring {
				return
			}
			delivered++
			if sent, ok := d.Data.(sim.Time); ok {
				res.lat.Add(float64(eng.Now()-sent) / 1000)
			}
		}
	}
	gap := sim.Time(1e9 / offered)
	// The broadcast schedule is a workload.Source now; RoundRobin emits the
	// exact (src, dst, at) sequence the per-process tickers used to produce
	// (pinned by workload's TestRoundRobinSchedule), so the figures are
	// unchanged.
	driveSource(cl, workload.NewRoundRobin(n, gap, 64, reliable), 0)
	eng.RunFor(sc.Warmup)
	measuring = true
	eng.RunFor(sc.Window)
	measuring = false
	res.tputPerProc = float64(delivered) / sc.Window.Seconds() / float64(n)
	return res
}

var fig8Procs = []int{2, 4, 8, 16, 32, 64, 128, 256, 512}

// Fig8a regenerates the broadcast throughput comparison.
func Fig8a(sc Scale) *Table {
	t := &Table{
		ID: "8a", Title: "Throughput per process (M msg/s) vs. number of processes",
		Columns: []string{"procs", "1Pipe/BE", "1Pipe/R", "SwitchSeq", "HostSeq", "Token", "Lamport"},
	}
	const offered = 5e6
	for _, n := range procSweep(sc, fig8Procs) {
		be := runOnePipeBroadcast(sc, n, false, offered)
		rel := runOnePipeBroadcast(sc, n, true, offered)
		bcfg := baseline.DefaultConfig(n)
		bcfg.Duration = sc.Window
		sw := baseline.RunSwitchSeq(bcfg)
		ho := baseline.RunHostSeq(bcfg)
		tk := baseline.RunToken(bcfg)
		lp := baseline.RunLamport(bcfg)
		t.AddRow(f1(float64(n)),
			fm(be.tputPerProc), fm(rel.tputPerProc),
			fm(sw.TputPerProc), fm(ho.TputPerProc), fm(tk.TputPerProc), fm(lp.TputPerProc))
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe stays flat (linear total scaling); sequencers decay ~1/N past saturation; token ~1/N; Lamport decays with exchange overhead")
	return t
}

// Fig8b regenerates the broadcast latency comparison (low offered load).
func Fig8b(sc Scale) *Table {
	t := &Table{
		ID: "8b", Title: "Broadcast delivery latency (us) vs. number of processes",
		Columns: []string{"procs", "1Pipe/BE", "1Pipe/R", "SwitchSeq", "HostSeq", "Token", "Lamport"},
	}
	// Latency is measured at the throughput experiment's offered load, as
	// in the paper — this is what makes saturated sequencers soar.
	const offered = 5e6
	for _, n := range procSweep(sc, fig8Procs) {
		be := runOnePipeBroadcast(sc, n, false, offered)
		rel := runOnePipeBroadcast(sc, n, true, offered)
		bcfg := baseline.DefaultConfig(n)
		bcfg.Duration = sc.Window
		bcfg.OfferedPerProc = offered
		sw := baseline.RunSwitchSeq(bcfg)
		ho := baseline.RunHostSeq(bcfg)
		tk := baseline.RunToken(bcfg)
		lp := baseline.RunLamport(bcfg)
		t.AddRow(f1(float64(n)),
			f1(be.lat.Mean()), f1(rel.lat.Mean()),
			f1(sw.Latency.Mean()), f1(ho.Latency.Mean()), f1(tk.Latency.Mean()), f1(lp.Latency.Mean()))
	}
	t.Notes = append(t.Notes,
		"expected shape: 1Pipe grows slowly with hop count; token latency grows with ring size; Lamport bounded below by the exchange interval")
	return t
}
