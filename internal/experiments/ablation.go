package experiments

import (
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/dsm"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/topology"
	"onepipe/internal/workload"
)

// incastStreams is the ablations' fan-in load as a Source: senders 0..n-1
// each stream size-byte messages to victim every gap, all in phase (the
// worst case for arrival order).
func incastStreams(n, victim int, gap sim.Time, size int) workload.Source {
	srcs := make([]workload.Source, n)
	for h := 0; h < n; h++ {
		srcs[h] = workload.NewFixedStream(h, []int{victim}, gap, 0, size, workload.SendOpts{})
	}
	return workload.Merge(srcs...)
}

// Hazards regenerates the §2.2.1 motivation as a table: write-after-write
// and IRIW ordering-hazard rates over an unordered transport versus 1Pipe,
// on a jittery multi-path fabric.
func Hazards(sc Scale) *Table {
	t := &Table{
		ID: "haz", Title: "Ordering hazards (§2.2.1): violations per 1000 trials",
		Columns: []string{"hazard", "raw transport", "1Pipe"},
	}
	run := func(tr dsm.Transport, iriw bool) float64 {
		cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
		cfg.Jitter = 3 * sim.Microsecond
		cl := core.Deploy(netsim.New(cfg), core.DefaultConfig())
		st := dsm.New(cl, tr)
		var res *dsm.HazardStats
		if iriw {
			res = st.RunIRIW(cl.Net.Eng, 500, 2*sim.Microsecond)
		} else {
			res = st.RunWAW(cl.Net.Eng, 500, 2*sim.Microsecond)
		}
		cl.Run(8 * sim.Millisecond)
		if res.Trials == 0 {
			return -1
		}
		return 1000 * float64(res.Violations) / float64(res.Trials)
	}
	t.AddRow("write-after-write", f1(run(dsm.TransportRaw, false)), f1(run(dsm.TransportOnePipe, false)))
	t.AddRow("IRIW", f1(run(dsm.TransportRaw, true)), f1(run(dsm.TransportOnePipe, true)))
	t.Notes = append(t.Notes, "1Pipe columns must be exactly 0 — total order makes the fences unnecessary")
	return t
}

// AblBarrier quantifies what barrier-based reordering buys over the naive
// alternative (§4.1): a receiver that simply drops out-of-timestamp-order
// arrivals loses the majority of messages under multi-path spraying.
func AblBarrier(sc Scale) *Table {
	t := &Table{
		ID: "abl-barrier", Title: "Ablation: barrier reordering vs. drop-out-of-order receiver",
		Columns: []string{"senders", "delivered% (barrier)", "delivered% (naive drop)"},
	}
	for _, senders := range []int{4, 8, 16} {
		// Naive: count in-order arrivals at the raw network level.
		cfgN := netsim.DefaultConfig(topology.Testbed(), 1)
		netN := netsim.New(cfgN)
		total, inOrder := 0, 0
		var lastTS sim.Time
		netN.AttachHost(31, func(p *netsim.Packet) {
			if p.Kind != netsim.KindData {
				return
			}
			total++
			if p.MsgTS >= lastTS {
				inOrder++
				lastTS = p.MsgTS
			}
		})
		driveRaw(netN, incastStreams(senders, 31, 300*sim.Nanosecond, 1024), 0)
		netN.Eng.RunFor(1 * sim.Millisecond)
		naive := 100 * float64(inOrder) / float64(total)

		// Barrier-based: the full stack delivers everything, in order.
		cl := deploy(32, nil, nil)
		delivered := 0
		cl.Procs[31].OnDeliver = func(core.Delivery) { delivered++ }
		load := workload.Limit(incastStreams(senders, 31, 300*sim.Nanosecond, 1024), 500*sim.Microsecond)
		p := drivePump(cl, load, 0, false)
		cl.Run(2 * sim.Millisecond)
		barrier := 100 * float64(delivered) / float64(p.Sent)
		t.AddRow(f1(float64(senders)), f1(barrier), f1(naive))
	}
	t.Notes = append(t.Notes,
		"§4.1: with 8 senders the paper measured 57% of arrivals out of order — naive dropping is untenable")
	return t
}

// AblRelay compares event-driven barrier relaying (this implementation)
// against the paper's literal per-link idle ticker: the ticker accumulates
// roughly one beacon interval of barrier lag per switch hop.
func AblRelay(sc Scale) *Table {
	t := &Table{
		ID: "abl-relay", Title: "Ablation: event-driven barrier relay vs. per-link ticker (BE latency, us)",
		Columns: []string{"procs", "event relay", "ticker only"},
	}
	measure := func(n int, disable bool) float64 {
		cl := deploy(n, func(c *netsim.Config) { c.DisableEventRelay = disable }, nil)
		eng := cl.Net.Eng
		var lat stats.Sample
		for _, p := range cl.Procs {
			p.OnDeliver = func(d core.Delivery) {
				if sent, ok := d.Data.(sim.Time); ok {
					lat.Add(float64(eng.Now()-sent) / 1000)
				}
			}
		}
		for i := 0; i < 80; i++ {
			i := i
			at := sim.Time(100_000+i*9_000+i%11*531) * sim.Nanosecond
			eng.At(at, func() {
				dst := netsim.ProcID((i*5 + 3) % n)
				src := i % n
				if int(dst) == src {
					dst = netsim.ProcID((src + 1) % n)
				}
				cl.Procs[src].Send([]core.Message{{Dst: dst, Data: eng.Now(), Size: 64}})
			})
		}
		cl.Run(3 * sim.Millisecond)
		return lat.Mean()
	}
	for _, n := range procSweep(sc, []int{8, 16, 32}) {
		t.AddRow(f1(float64(n)), f1(measure(n, false)), f1(measure(n, true)))
	}
	t.Notes = append(t.Notes,
		"the gap grows with hop count; the event-driven relay is what achieves the paper's interval/2-style idle overhead (DESIGN.md deviation #1)")
	return t
}

// AblBeacon sweeps the beacon interval, exposing the latency/overhead
// trade-off behind the deployment's 3 μs choice (§4.2): delivery latency
// grows with the interval while beacon bandwidth shrinks inversely.
func AblBeacon(sc Scale) *Table {
	t := &Table{
		ID: "abl-beacon", Title: "Ablation: beacon interval vs. BE latency and beacon overhead",
		Columns: []string{"interval_us", "BE latency us", "beacon traffic %"},
	}
	n := 32
	if n > sc.MaxProcs {
		n = sc.MaxProcs
	}
	for _, usI := range []int64{1, 3, 10, 30} {
		cl := deploy(n, func(c *netsim.Config) {
			c.BeaconInterval = sim.Time(usI) * sim.Microsecond
		}, nil)
		eng := cl.Net.Eng
		var lat stats.Sample
		for _, p := range cl.Procs {
			p.OnDeliver = func(d core.Delivery) {
				if sent, ok := d.Data.(sim.Time); ok {
					lat.Add(float64(eng.Now()-sent) / 1000)
				}
			}
		}
		for i := 0; i < 60; i++ {
			i := i
			at := sim.Time(100_000+i*int(usI)*4_000+i%11*531) * sim.Nanosecond
			eng.At(at, func() {
				src := i % n
				dst := netsim.ProcID((i*7 + 5) % n)
				if int(dst) == src {
					dst = netsim.ProcID((src + 1) % n)
				}
				cl.Procs[src].Send([]core.Message{{Dst: dst, Data: eng.Now(), Size: 64}})
			})
		}
		dur := sim.Time(100_000+60*int(usI)*4_000)*sim.Nanosecond + 2*sim.Millisecond
		cl.Run(dur)
		// Overhead as a share of link capacity (as in Fig. 13b), not of
		// the probe traffic.
		links := float64(len(cl.Net.G.Links))
		bytesPerLinkPerSec := float64(cl.Net.Stats.BytesByKind[netsim.KindBeacon]) / links / dur.Seconds()
		frac := bytesPerLinkPerSec * 8 / (cl.Net.Cfg.HostGbps * 1e9)
		t.AddRow(f1(float64(usI)), f1(lat.Mean()), fmt.Sprintf("%.4f", 100*frac))
	}
	t.Notes = append(t.Notes,
		"latency ≈ base + path + interval-bound quantization; overhead ∝ 1/interval — the 3us deployment choice balances both")
	return t
}

// AblECMP compares per-packet spraying against flow-hash ECMP under 1Pipe:
// spraying raises raw out-of-order arrivals sharply, yet end-to-end ordered
// delivery latency barely moves — the receiver reorder buffer absorbs the
// difference (the property that lets 1Pipe ride any multipath scheme,
// §4.1).
func AblECMP(sc Scale) *Table {
	t := &Table{
		ID: "abl-ecmp", Title: "Ablation: per-packet spraying vs. flow ECMP under 1Pipe",
		Columns: []string{"routing", "raw ooo fraction", "BE latency us"},
	}
	for _, flow := range []bool{false, true} {
		name := "spray"
		if flow {
			name = "flow-hash"
		}
		// Raw out-of-order measurement.
		cfg := netsim.DefaultConfig(topology.Testbed(), 1)
		cfg.FlowECMP = flow
		netN := netsim.New(cfg)
		total, ooo := 0, 0
		var lastTS sim.Time
		netN.AttachHost(31, func(p *netsim.Packet) {
			if p.Kind != netsim.KindData {
				return
			}
			total++
			if p.MsgTS < lastTS {
				ooo++
			} else {
				lastTS = p.MsgTS
			}
		})
		driveRaw(netN, incastStreams(8, 31, 250*sim.Nanosecond, 1024), 0)
		netN.Eng.RunFor(1 * sim.Millisecond)

		// Ordered delivery latency on the full stack.
		cl := deploy(32, func(c *netsim.Config) { c.FlowECMP = flow }, nil)
		eng := cl.Net.Eng
		var lat stats.Sample
		for _, p := range cl.Procs {
			p.OnDeliver = func(d core.Delivery) {
				if sent, ok := d.Data.(sim.Time); ok {
					lat.Add(float64(eng.Now()-sent) / 1000)
				}
			}
		}
		for i := 0; i < 80; i++ {
			i := i
			at := sim.Time(100_000+i*9_000+i%11*531) * sim.Nanosecond
			eng.At(at, func() {
				src := i % 32
				dst := netsim.ProcID((i*7 + 5) % 32)
				if int(dst) == src {
					dst = netsim.ProcID((src + 1) % 32)
				}
				cl.Procs[src].Send([]core.Message{{Dst: dst, Data: eng.Now(), Size: 64}})
			})
		}
		cl.Run(3 * sim.Millisecond)
		t.AddRow(name, fmt.Sprintf("%.2f", float64(ooo)/float64(total)), f1(lat.Mean()))
	}
	t.Notes = append(t.Notes,
		"barrier reordering decouples delivery order from arrival order, so spraying costs almost nothing end to end")
	return t
}
