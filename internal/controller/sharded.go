package controller

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Sharded distributes the controller across pods — the §6.1 future-work
// design ("future work can distribute the controller to a cluster, each
// of which serves a portion of the network"). Each pod gets its own
// Raft-replicated controller instance handling failures reported against
// that pod's links; a shared core switch's death is reported by the
// adjacent links' pods (each shard resolves its own side). Because the
// §5.2 pipeline's Broadcast step must still reach *every* correct process
// (any host may hold in-flight traffic to the failed one), sharding
// parallelizes detection, determination and the Raft round, while
// completion collection remains global per shard round.
type Sharded struct {
	Shards []*Controller
	net    *netsim.Network
}

// NewSharded deploys one controller shard per pod. The per-shard
// configuration is cfg with its own Raft group.
func NewSharded(net *netsim.Network, cl *core.Cluster, cfg Config) *Sharded {
	s := &Sharded{net: net}
	pods := net.Cfg.Topo.Pods
	for p := 0; p < pods; p++ {
		c := &Controller{Cfg: cfg, net: net, cl: cl, declared: make(map[netsim.ProcID]bool)}
		c.Raft = buildRaft(net, c, cfg)
		s.Shards = append(s.Shards, c)
	}
	// Route dead-link reports to the owning shard.
	net.OnLinkDead = func(l topology.Link, lastCommit sim.Time) {
		shard := s.owner(l)
		at := net.Eng.Now()
		net.Eng.After(cfg.MgmtDelay, func() {
			shard.onReport(report{link: l, lastCommit: lastCommit, at: at})
		})
	}
	for _, h := range cl.Hosts {
		h := h
		hostPod := s.podOfHost(h.ID)
		h.OnStuck = func(src, dst netsim.ProcID, ts sim.Time) {
			s.Shards[hostPod].onStuck(h, src, dst, ts)
		}
	}
	return s
}

// podOfHost returns the pod index of a host.
func (s *Sharded) podOfHost(host int) int {
	return s.net.G.Node(s.net.G.Host(host)).Pod
}

// owner picks the shard responsible for a failed link: the pod of its
// upstream node, falling back to the downstream pod (and shard 0 when
// neither endpoint belongs to a pod).
func (s *Sharded) owner(l topology.Link) *Controller {
	pod := s.net.G.Node(l.From).Pod
	if pod < 0 { // core switches belong to no pod
		pod = s.net.G.Node(l.To).Pod
	}
	if pod < 0 || pod >= len(s.Shards) {
		pod = 0
	}
	return s.Shards[pod]
}

// WaitLeaders blocks until every shard's Raft group has a leader.
func (s *Sharded) WaitLeaders(deadline sim.Time) bool {
	for _, c := range s.Shards {
		if c.Raft.WaitLeader(deadline) == nil {
			return false
		}
	}
	return true
}

// Failures aggregates all shards' failure records.
func (s *Sharded) Failures() []FailureRecord {
	var out []FailureRecord
	for _, c := range s.Shards {
		out = append(out, c.Failures...)
	}
	return out
}

// RecoveryTimes returns each shard's recovery-time samples.
func (s *Sharded) RecoveryTimes() []float64 {
	var out []float64
	for _, c := range s.Shards {
		for i := 0; i < c.RecoveryTime.N(); i++ {
			out = append(out, c.RecoveryTime.Mean())
		}
	}
	return out
}
