// Package controller implements 1Pipe's highly available network
// controller (§5.2): it detects component failures from switch reports,
// determines which processes failed and when (the failure timestamp),
// records the decision in a Raft-replicated store, broadcasts it to every
// correct process (Discard / Recall / Callback), and finally resumes
// commit-plane barrier propagation once all completions arrive.
package controller

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/raft"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/topology"
)

// Config tunes the controller deployment.
type Config struct {
	// Replicas is the Raft group size backing the controller store.
	Replicas int
	// MgmtDelay is the one-way management-network latency between the
	// controller and any host or switch.
	MgmtDelay sim.Time
	// PerHostCost is the controller's serialization cost per contacted
	// host during Broadcast (§7.2: recovery grows 3-15us per host at
	// scale because the controller must reach every process).
	PerHostCost sim.Time
	// AggregationWindow batches near-simultaneous dead-link reports (a
	// ToR failure produces one report per spine) into one failure event.
	AggregationWindow sim.Time
}

// DefaultConfig returns deployment defaults: a 3-replica store on a
// management network with 10 us one-way latency.
func DefaultConfig() Config {
	return Config{
		Replicas:          3,
		MgmtDelay:         10 * sim.Microsecond,
		PerHostCost:       3 * sim.Microsecond,
		AggregationWindow: 10 * sim.Microsecond,
	}
}

// FailureRecord is the replicated decision for one failure event.
type FailureRecord struct {
	// Procs maps each failed process to its failure timestamp.
	Procs map[netsim.ProcID]sim.Time
	// DetectedAt is when the first report arrived.
	DetectedAt sim.Time
}

// RecallRecord is a durably recorded undeliverable recall, consulted by
// recovering receivers.
type RecallRecord struct {
	Src, Dst netsim.ProcID
	TS       sim.Time
}

// EpochOp enumerates live-reconfiguration operations.
type EpochOp uint8

const (
	// EpochJoinHost attaches a new host to a running fabric.
	EpochJoinHost EpochOp = iota
	// EpochDrainHost gracefully removes a host.
	EpochDrainHost
	// EpochDrainSwitch gracefully removes a physical switch.
	EpochDrainSwitch
	// EpochAddSwitch grows a pod's spine set.
	EpochAddSwitch
)

func (op EpochOp) String() string {
	switch op {
	case EpochJoinHost:
		return "join-host"
	case EpochDrainHost:
		return "drain-host"
	case EpochDrainSwitch:
		return "drain-switch"
	case EpochAddSwitch:
		return "add-switch"
	}
	return "?"
}

// EpochRecord is the replicated decision for one membership change. Like
// failure records, an epoch is decided exactly once and survives leader
// changes: a host dying mid-join is resolved by the §5.2 failure path
// against the recorded epoch (its registers were seeded at TJoin, so its
// failure timestamp can never precede the epoch).
type EpochRecord struct {
	// Seq is the epoch sequence number (1-based, in decision order).
	Seq int
	// Op is the membership operation.
	Op EpochOp
	// Host is the host index joining or draining (join/drain-host ops).
	Host int
	// Phys is the physical switch index (drain-switch/add-switch ops).
	Phys int
	// TJoin is the join epoch timestamp: every input-link register of the
	// new attachment is pre-seeded to it, and the joining host's clock is
	// forced above it. Zero for drains.
	TJoin sim.Time
	// At is the decision time.
	At sim.Time
}

// Controller coordinates failure handling for one simulated cluster.
type Controller struct {
	Cfg  Config
	net  *netsim.Network
	cl   *core.Cluster
	Raft *raft.Cluster

	// Replicated state (applied from the Raft log on the leader).
	Failures []FailureRecord
	Recalls  []RecallRecord
	Epochs   []EpochRecord

	// In-flight detection state.
	reports    []report
	windowOpen bool
	busy       bool
	// declared remembers every process already covered by a FailureRecord:
	// a failure timestamp is decided exactly once. A later round must not
	// re-declare the proc with a timestamp derived from unrelated reports.
	declared map[netsim.ProcID]bool

	// RecoveryTime samples barrier-stall durations (detect -> resume) for
	// the Fig. 10 experiment.
	RecoveryTime stats.Sample
	// ForwardedMsgs counts messages relayed by Controller Forwarding.
	ForwardedMsgs uint64
	// OnForward, if set, observes every packet relayed by Controller
	// Forwarding before it reaches the receiver. Forwarded traffic carries
	// the §5.2 partition caveat — only locally ordered — so test harnesses
	// use this to mark the affected scatterings.
	OnForward func(pkt *netsim.Packet)
	// OnRecovered fires after each completed failure-handling round.
	OnRecovered func(rec FailureRecord)
}

type report struct {
	link       topology.Link
	lastCommit sim.Time
	at         sim.Time
}

// New deploys the controller over a cluster: it hooks the network's
// dead-link reports, the hosts' stuck-message escalation, and builds the
// Raft store on the same engine.
func New(net *netsim.Network, cl *core.Cluster, cfg Config) *Controller {
	c := &Controller{Cfg: cfg, net: net, cl: cl, declared: make(map[netsim.ProcID]bool)}
	c.Raft = buildRaft(net, c, cfg)
	net.OnLinkDead = func(l topology.Link, lastCommit sim.Time) {
		// Switch -> controller report over the management network.
		at := net.Eng.Now()
		net.Eng.After(cfg.MgmtDelay, func() { c.onReport(report{link: l, lastCommit: lastCommit, at: at}) })
	}
	for _, h := range cl.Hosts {
		h := h
		h.OnStuck = func(src, dst netsim.ProcID, ts sim.Time) { c.onStuck(h, src, dst, ts) }
	}
	return c
}

// buildRaft constructs the replicated store backing a controller: every
// replica applies the committed log; the controller reads replica 0's
// materialized state.
func buildRaft(net *netsim.Network, c *Controller, cfg Config) *raft.Cluster {
	return raft.NewCluster(net.Eng, cfg.Replicas, raft.DefaultConfig(), func(node, index int, cmd any) {
		if node != 0 {
			return // single logical view: apply on replica 0's state
		}
		switch rec := cmd.(type) {
		case FailureRecord:
			c.Failures = append(c.Failures, rec)
		case RecallRecord:
			c.Recalls = append(c.Recalls, rec)
		case EpochRecord:
			c.Epochs = append(c.Epochs, rec)
		}
	})
}

// onReport accumulates dead-link reports and opens an aggregation window
// so one physical failure is handled as one event (Detect step).
func (c *Controller) onReport(r report) {
	c.reports = append(c.reports, r)
	if c.windowOpen {
		return
	}
	c.windowOpen = true
	c.net.Eng.After(c.Cfg.AggregationWindow, c.determine)
}

// determine computes the failed process set and failure timestamps
// (Determine step): a process is failed iff its host is disconnected from
// the routing graph; the failure timestamp is the maximum last-commit
// barrier reported by the failed component's neighbors.
func (c *Controller) determine() {
	c.windowOpen = false
	if c.busy {
		// A handling round is in flight; re-arm to pick these reports up
		// afterwards.
		c.net.Eng.After(c.Cfg.AggregationWindow, c.determine)
		c.windowOpen = true
		return
	}
	reports := c.reports
	c.reports = nil
	if len(reports) == 0 {
		return
	}
	detectedAt := reports[0].at
	g := c.net.G

	// Failure timestamp per physical component: max over its neighbors'
	// reports (Appendix: gathered from a cut separating the failed node
	// from all receivers).
	maxCommitFrom := make(map[topology.NodeID]sim.Time)
	for _, r := range reports {
		if r.lastCommit > maxCommitFrom[r.link.From] {
			maxCommitFrom[r.link.From] = r.lastCommit
		}
		if r.at < detectedAt {
			detectedAt = r.at
		}
	}

	failed := make(map[netsim.ProcID]sim.Time)
	for hi := 0; hi < len(g.Hosts); hi++ {
		host := g.Host(hi)
		if g.NodeDrained(host) {
			// A drained (or not-yet-activated joining) host is out of the
			// fabric by decision, not by failure: no failure timestamp, no
			// Recall, no declaration.
			continue
		}
		if c.hostConnected(host) {
			continue
		}
		if c.hostDeclared(hi) {
			continue // already handled by an earlier round
		}
		// Failure timestamp: the latest commit any neighbor saw from this
		// host — or, when the host died with its ToR, the ToR's reported
		// aggregate.
		fts := sim.Time(0)
		if v, ok := maxCommitFrom[host]; ok {
			fts = v
		} else {
			for _, r := range reports {
				if r.lastCommit > fts {
					fts = r.lastCommit
				}
			}
		}
		// A half-connected host (dead receive path, live uplink) kept
		// announcing commits after the reported register froze, and correct
		// receivers kept delivering above it. Disable its surviving ports
		// (§5.2: the controller blocks the failed process at the switch)
		// and take fts from the uplink register at the instant of the
		// block: commit gating guarantees nothing above it was — or can
		// be — delivered before Discard installs.
		for _, lid := range g.Out[host] {
			if _, uc := c.net.LinkRegisters(lid); uc > fts {
				fts = uc
			}
			if !g.LinkDead(lid) {
				g.KillLink(lid)
			}
		}
		for p := 0; p < c.net.NumProcs(); p++ {
			if c.net.HostOfProc(netsim.ProcID(p)) == hi {
				failed[netsim.ProcID(p)] = fts
			}
		}
	}

	rec := FailureRecord{Procs: failed, DetectedAt: detectedAt}
	for p := range failed {
		c.declared[p] = true
	}
	// Snapshot the commit-gated link set NOW: the Resume step at the end of
	// this round must unblock only the links this round's failure gated. A
	// component that dies while this round is in flight gates its own links,
	// and those must stay gated (holding the commit barrier below the new
	// failure timestamp) until the round that handles it finishes its
	// Discard/Recall — resuming them early lets some receivers deliver
	// messages other receivers are about to discard (§5.2).
	gated := c.net.CommitGatedLinks()
	c.busy = true
	c.replicate(rec, func() { c.broadcast(rec, gated) })
}

// hostDeclared reports whether every process of a host is already covered
// by a previous FailureRecord.
func (c *Controller) hostDeclared(hi int) bool {
	for p := 0; p < c.net.NumProcs(); p++ {
		if c.net.HostOfProc(netsim.ProcID(p)) == hi && !c.declared[netsim.ProcID(p)] {
			return false
		}
	}
	return true
}

// hostConnected reports whether a host still has a live path into the
// fabric in BOTH directions (single-homed hosts fail with their uplink,
// their downlink, or their ToR). A host that can send but not receive is
// disconnected in the §5.2 sense: its commit barrier can never advance, so
// it will never deliver again and its peers' scatterings toward it must be
// recalled.
func (c *Controller) hostConnected(host topology.NodeID) bool {
	g := c.net.G
	if g.NodeDead(host) || g.NodeDrained(host) {
		return false
	}
	up := false
	for _, lid := range g.Out[host] {
		if !g.LinkDead(lid) && !g.NodeDead(g.Link(lid).To) {
			up = true
			break
		}
	}
	if !up {
		return false
	}
	for _, lid := range g.In[host] {
		if !g.LinkDead(lid) && !g.NodeDead(g.Link(lid).From) {
			return true
		}
	}
	return false
}

const retryDelay = 1 * sim.Millisecond

// replicate commits a record (failure or epoch) through the Raft store
// before acting on it (the controller must not broadcast a decision it
// could forget). Records are idempotent at hosts, so a leadership change
// mid-commit is handled by re-proposing.
func (c *Controller) replicate(rec any, then func()) {
	leader := c.Raft.Leader()
	if leader == nil {
		// Controller replicas electing: retry; the barrier stays stalled,
		// which is safe.
		c.net.Eng.After(retryDelay, func() { c.replicate(rec, then) })
		return
	}
	idx, _, ok := leader.Propose(rec)
	if !ok {
		c.net.Eng.After(retryDelay, func() { c.replicate(rec, then) })
		return
	}
	var poll func()
	poll = func() {
		if leader.CommitIndex() >= idx {
			then()
			return
		}
		if leader.Stopped() || leader.Role() != raft.Leader {
			c.replicate(rec, then)
			return
		}
		c.net.Eng.After(20*sim.Microsecond, poll)
	}
	poll()
}

// completionSweep is how often the controller re-checks the hosts it is
// still waiting on during a broadcast round. A host that crashes after
// being handed ApplyFailure can never report completion; without the sweep
// one cascading failure would wedge the round forever — busy never clears,
// later failures are never determined, and the commit plane stays stalled
// cluster-wide.
const completionSweep = 100 * sim.Microsecond

// broadcast sends the failure record to every correct host and collects
// completions (Broadcast / Discard / Recall / Callback steps), then
// resumes the commit plane.
func (c *Controller) broadcast(rec FailureRecord, gated []topology.LinkID) {
	eng := c.net.Eng
	failedHosts := make(map[int]bool)
	for p := range rec.Procs {
		failedHosts[c.net.HostOfProc(p)] = true
	}
	waiting := 0
	pending := make(map[int]bool)
	var resume func()
	done := func(hi int) {
		// Host -> controller completion, one management hop back.
		eng.After(c.Cfg.MgmtDelay, func() {
			if !pending[hi] {
				return // already written off by the sweep
			}
			delete(pending, hi)
			waiting--
			if waiting == 0 {
				resume()
			}
		})
	}
	resume = func() {
		// Resume step: unblock the links this round's failure gated (and
		// only those — see the snapshot in determine).
		for _, lid := range gated {
			c.net.ResumeCommitPlane(lid)
		}
		// A failed host's surviving links leave barrier aggregation for
		// good. A host declared failed because its receive path died can
		// still transmit, and its commit floor — parked, since ACKs can
		// never reach it — would otherwise cap the cluster barrier (§5.2).
		for hi := range failedHosts {
			for _, lid := range c.net.G.Out[c.net.G.Host(hi)] {
				c.net.ExcludeCommitPlane(lid)
			}
		}
		c.RecoveryTime.Add(float64(eng.Now()-rec.DetectedAt) / float64(sim.Microsecond))
		c.busy = false
		if c.OnRecovered != nil {
			c.OnRecovered(rec)
		}
	}
	if len(rec.Procs) == 0 {
		// Pure fabric failure (core link/switch): no process failed; no
		// host involvement needed (§7.2: "only the controller needs to
		// be involved").
		eng.After(2*c.Cfg.MgmtDelay, resume)
		return
	}
	i := 0
	for hi, h := range c.cl.Hosts {
		if failedHosts[hi] || c.net.G.NodeDrained(c.net.G.Host(hi)) {
			continue
		}
		waiting++
		pending[hi] = true
		hi, h := hi, h
		// The controller serializes its broadcast: each additional host
		// costs PerHostCost of controller CPU/NIC time.
		eng.After(c.Cfg.MgmtDelay+sim.Time(i)*c.Cfg.PerHostCost, func() { h.ApplyFailure(rec.Procs, func() { done(hi) }) })
		i++
	}
	if waiting == 0 {
		resume()
		return
	}
	// Write off hosts that die mid-round: their own failure is a new
	// report round, but this round must not block on their completion.
	var sweep func()
	sweep = func() {
		if waiting == 0 {
			return
		}
		for hi := range pending {
			if !c.hostConnected(c.net.G.Host(hi)) {
				delete(pending, hi)
				waiting--
			}
		}
		if waiting == 0 {
			resume()
			return
		}
		eng.After(completionSweep, sweep)
	}
	eng.After(completionSweep, sweep)
}

// onStuck handles a sender that exhausted retransmissions toward dst
// (§5.2 Controller Forwarding): if dst is still connected — a network
// partition between the pair — the controller relays the pending messages
// itself and acknowledges the sender on the receiver's behalf. If dst is
// truly unreachable, the undeliverable recall is recorded durably and the
// sender released.
func (c *Controller) onStuck(h *core.Host, src, dst netsim.ProcID, ts sim.Time) {
	eng := c.net.Eng
	eng.After(c.Cfg.MgmtDelay, func() {
		dstHost := c.net.G.Host(c.net.HostOfProc(dst))
		if c.hostConnected(dstHost) {
			c.forward(h, src, dst)
			return
		}
		rec := RecallRecord{Src: src, Dst: dst, TS: ts}
		leader := c.Raft.Leader()
		if leader != nil {
			leader.Propose(rec)
		}
		eng.After(c.Cfg.MgmtDelay, func() { h.ResolveUnreachable(dst, ts) })
	})
}

// forward relays every pending reliable packet from src to dst over the
// management network and returns the ACKs to the sender — "S asks
// controller to forward the message to R, and waits for ACK from the
// controller". Note the paper's partition caveat applies: a receiver cut
// off from part of the fabric no longer aggregates the missing senders'
// barriers, so deliveries during a partition are only locally ordered.
func (c *Controller) forward(h *core.Host, src, dst netsim.ProcID) {
	eng := c.net.Eng
	pkts := h.PendingTo(src, dst)
	if len(pkts) == 0 {
		return
	}
	dstHost := c.cl.Hosts[c.net.HostOfProc(dst)]
	for _, pkt := range pkts {
		pkt := pkt
		c.ForwardedMsgs++
		if c.OnForward != nil {
			c.OnForward(pkt)
		}
		eng.After(c.Cfg.MgmtDelay, func() {
			// Acknowledge on the receiver's behalf: the receiver's own
			// ACK would die on the partitioned path. Built before the
			// handoff — HandlePacket consumes pkt.
			ack := &netsim.Packet{
				Kind: netsim.KindAck, Src: pkt.Dst, Dst: pkt.Src,
				PSN: pkt.PSN, MsgTS: pkt.MsgTS, Reliable: pkt.Reliable,
				Size: netsim.BeaconBytes,
			}
			dstHost.HandlePacket(pkt)
			eng.After(c.Cfg.MgmtDelay, func() { h.HandlePacket(ack) })
		})
	}
}

// ProposeEpoch durably records a membership change through the Raft store
// and runs then once committed. The sequence number is assigned here from
// the materialized epoch count so concurrent operations serialize in
// decision order.
func (c *Controller) ProposeEpoch(rec EpochRecord, then func()) {
	rec.Seq = len(c.Epochs) + 1
	rec.At = c.net.Eng.Now()
	c.replicate(rec, then)
}

// AttachHost installs the stuck-message escalation hook on a host joined
// after the controller was built (New only wires the hosts present at
// construction).
func (c *Controller) AttachHost(h *core.Host) {
	h.OnStuck = func(src, dst netsim.ProcID, ts sim.Time) { c.onStuck(h, src, dst, ts) }
}

// RecoverHost replays all recorded failures and undeliverable recalls to a
// recovered host so it delivers or discards its buffered messages
// consistently with the rest of the cluster (Receiver Recovery, §5.2).
func (c *Controller) RecoverHost(hi int) {
	h := c.cl.Hosts[hi]
	for _, rec := range c.Failures {
		own := make(map[netsim.ProcID]sim.Time)
		for p, ts := range rec.Procs {
			if c.net.HostOfProc(p) != hi {
				own[p] = ts
			}
		}
		if len(own) > 0 {
			h.ApplyFailure(own, func() {})
		}
	}
	for _, rr := range c.Recalls {
		if c.net.HostOfProc(rr.Dst) == hi {
			h.ApplyRecallTombstone(rr.Src, rr.TS)
		}
	}
}
