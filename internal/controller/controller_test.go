package controller

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func testCluster(t *testing.T, mut func(*netsim.Config)) (*core.Cluster, *Controller) {
	t.Helper()
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	cfg.ControllerManagedCommit = true
	if mut != nil {
		mut(&cfg)
	}
	n := netsim.New(cfg)
	cl := core.Deploy(n, core.DefaultConfig())
	ctrl := New(n, cl, DefaultConfig())
	// Let the Raft group elect before traffic starts.
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		t.Fatal("controller replicas never elected a leader")
	}
	return cl, ctrl
}

func TestHostFailureDetectedAndRecorded(t *testing.T) {
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	base := eng.Now()
	eng.At(base+100*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(3)) })
	cl.Run(5 * sim.Millisecond)
	if len(ctrl.Failures) != 1 {
		t.Fatalf("failure records = %d, want 1", len(ctrl.Failures))
	}
	rec := ctrl.Failures[0]
	if _, ok := rec.Procs[3]; !ok || len(rec.Procs) != 1 {
		t.Fatalf("failed procs = %v, want {3}", rec.Procs)
	}
	if rec.Procs[3] == 0 {
		t.Fatal("failure timestamp not determined")
	}
}

func TestCoreSwitchFailureNoProcessFails(t *testing.T) {
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	var corePhys int
	for _, n := range cl.Net.G.Nodes {
		if n.Kind == topology.KindCore {
			corePhys = n.Phys
			break
		}
	}
	recovered := false
	ctrl.OnRecovered = func(rec FailureRecord) {
		recovered = true
		if len(rec.Procs) != 0 {
			t.Errorf("core switch failure marked processes failed: %v", rec.Procs)
		}
	}
	eng.At(eng.Now()+100*sim.Microsecond, func() { cl.Net.G.KillPhys(corePhys) })
	cl.Run(5 * sim.Millisecond)
	if !recovered {
		t.Fatal("controller never completed recovery")
	}
}

func TestCommitBarrierStallsThenResumes(t *testing.T) {
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	recoveredAt := sim.Time(0)
	var cAtRecovery sim.Time
	killAt := eng.Now() + 100*sim.Microsecond
	ctrl.OnRecovered = func(FailureRecord) {
		recoveredAt = eng.Now()
		_, cAtRecovery = cl.Hosts[7].Barriers()
	}
	eng.At(killAt, func() { cl.Net.G.KillNode(cl.Net.G.Host(0)) })
	cl.Run(2 * sim.Millisecond)
	if recoveredAt == 0 {
		t.Fatal("no recovery")
	}
	// While the failed host's link gated the commit plane, the barrier
	// could not advance much past the kill time.
	if cAtRecovery > killAt+sim.Time(cl.Net.Cfg.DeadLinkBeacons)*cl.Net.Cfg.BeaconInterval {
		t.Fatalf("commit barrier %v advanced during the stall (killed at %v)", cAtRecovery, killAt)
	}
	cl.Run(1 * sim.Millisecond)
	_, cLater := cl.Hosts[7].Barriers()
	lag := eng.Now() - cLater
	if lag > 50*sim.Microsecond {
		t.Fatalf("commit barrier lag %v after resume", lag)
	}
}

func TestRecoveryTimeInExpectedRange(t *testing.T) {
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	eng.At(eng.Now()+100*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(5)) })
	cl.Run(5 * sim.Millisecond)
	if ctrl.RecoveryTime.N() != 1 {
		t.Fatalf("recovery samples = %d", ctrl.RecoveryTime.N())
	}
	// Paper: 50-500us depending on scale and failure type.
	us := ctrl.RecoveryTime.Mean()
	if us < 20 || us > 1000 {
		t.Fatalf("recovery time %.1fus outside plausible range", us)
	}
}

func TestEndToEndAtomicityWithController(t *testing.T) {
	// Full §5.2 pipeline: a reliable scattering to {dead, alive} must be
	// recalled automatically once the controller handles the failure.
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	deliveredAlive := false
	cl.Procs[2].OnDeliver = func(d core.Delivery) { deliveredAlive = true }
	var senderFails int
	cl.Procs[0].OnSendFail = func(core.SendFailure) { senderFails++ }
	var procFailSeen bool
	cl.Procs[2].OnProcFail = func(p netsim.ProcID, ts sim.Time) {
		if p == 1 {
			procFailSeen = true
		}
	}
	base := eng.Now()
	eng.At(base+90*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(1)) })
	eng.At(base+100*sim.Microsecond, func() {
		cl.Proc(0).SendReliable([]core.Message{
			{Dst: 1, Data: "dead", Size: 64},
			{Dst: 2, Data: "alive", Size: 64},
		})
	})
	cl.Run(10 * sim.Millisecond)
	if deliveredAlive {
		t.Fatal("atomicity violated")
	}
	if senderFails != 2 {
		t.Fatalf("sender failures = %d, want 2", senderFails)
	}
	if !procFailSeen {
		t.Fatal("process-failure callback not invoked")
	}
	if len(ctrl.Failures) == 0 {
		t.Fatal("no failure recorded")
	}
}

func TestMessagesBeforeFailureTimestampStillDeliver(t *testing.T) {
	// A reliable message fully committed before the failure must deliver
	// even though its sender subsequently dies.
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	var got []string
	cl.Procs[2].OnDeliver = func(d core.Delivery) { got = append(got, d.Data.(string)) }
	base := eng.Now()
	eng.At(base+100*sim.Microsecond, func() {
		cl.Proc(1).SendReliable([]core.Message{{Dst: 2, Data: "committed", Size: 64}})
	})
	eng.At(base+500*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(1)) })
	cl.Run(10 * sim.Millisecond)
	if len(got) != 1 || got[0] != "committed" {
		t.Fatalf("delivered %v, want [committed]", got)
	}
	if len(ctrl.Failures) != 1 {
		t.Fatalf("failures = %d", len(ctrl.Failures))
	}
}

func TestTrafficContinuesAfterRecovery(t *testing.T) {
	cl, _ := testCluster(t, nil)
	eng := cl.Net.Eng
	delivered := 0
	cl.Procs[2].OnDeliver = func(d core.Delivery) { delivered++ }
	base := eng.Now()
	eng.At(base+100*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(1)) })
	// After recovery completes, reliable traffic among survivors flows.
	eng.At(base+3*sim.Millisecond, func() {
		for i := 0; i < 10; i++ {
			cl.Proc(0).SendReliable([]core.Message{{Dst: 2, Size: 64}})
		}
	})
	cl.Run(10 * sim.Millisecond)
	if delivered != 10 {
		t.Fatalf("delivered %d of 10 after recovery", delivered)
	}
}

func TestToRFailureKillsRack(t *testing.T) {
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	// Host 0 and 1 share tor0.
	tor := cl.Net.G.Links[cl.Net.G.Out[cl.Net.G.Host(0)][0]].To
	torPhys := cl.Net.G.Nodes[tor].Phys
	eng.At(eng.Now()+100*sim.Microsecond, func() { cl.Net.G.KillPhys(torPhys) })
	cl.Run(5 * sim.Millisecond)
	if len(ctrl.Failures) == 0 {
		t.Fatal("no failure recorded")
	}
	procs := ctrl.Failures[0].Procs
	if len(procs) != 2 {
		t.Fatalf("failed procs = %v, want both rack hosts", procs)
	}
	if _, ok := procs[0]; !ok {
		t.Fatal("proc 0 not marked failed")
	}
	if _, ok := procs[1]; !ok {
		t.Fatal("proc 1 not marked failed")
	}
}

func TestRecoverHostReplaysState(t *testing.T) {
	cl, ctrl := testCluster(t, nil)
	eng := cl.Net.Eng
	eng.At(eng.Now()+100*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(1)) })
	cl.Run(5 * sim.Millisecond)
	// Host 3 "recovers" fresh (simulating a rejoining receiver) and asks
	// the controller for missed state.
	ctrl.RecoverHost(3)
	cl.Run(1 * sim.Millisecond)
	// It must know about host 1's failure now: sends to proc 1 fail fast.
	err := cl.Proc(3).SendReliable([]core.Message{{Dst: 1, Size: 64}})
	if err == nil {
		t.Fatal("send to known-failed proc succeeded")
	}
}
