package controller

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// partitionPods kills every core switch, cutting pod 0 from pod 1 while
// every host stays up (and controller-reachable via the management
// network).
func partitionPods(g *topology.Graph) {
	for _, n := range g.Nodes {
		if n.Kind == topology.KindCore {
			g.KillPhys(n.Phys)
		}
	}
}

func TestControllerForwardingAcrossPartition(t *testing.T) {
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	ncfg.ControllerManagedCommit = true
	ccfg := core.DefaultConfig()
	ccfg.MaxRetx = 4 // escalate to the controller quickly
	net := netsim.New(ncfg)
	cl := core.Deploy(net, ccfg)
	ctrl := New(net, cl, DefaultConfig())
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		t.Fatal("no controller leader")
	}
	eng := net.Eng
	var got []string
	cl.Procs[7].OnDeliver = func(d core.Delivery) { got = append(got, d.Data.(string)) }

	base := eng.Now()
	eng.At(base+100*sim.Microsecond, func() { partitionPods(net.G) })
	// Send cross-pod (proc 0 in pod 0 -> proc 7 in pod 1) after the
	// partition: the direct path is gone; delivery must go through the
	// controller relay.
	eng.At(base+200*sim.Microsecond, func() {
		if err := cl.Proc(0).SendReliable([]core.Message{{Dst: 7, Data: "via-controller", Size: 64}}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	eng.RunFor(50 * sim.Millisecond)

	if ctrl.ForwardedMsgs == 0 {
		t.Fatal("controller never forwarded")
	}
	if len(got) != 1 || got[0] != "via-controller" {
		t.Fatalf("delivered %v across the partition", got)
	}
	// The sender's commit floor must have advanced (ACK via controller),
	// so its outstanding list is empty and new local traffic flows.
	delivered2 := 0
	cl.Procs[1].OnDeliver = func(core.Delivery) { delivered2++ }
	cl.Proc(0).SendReliable([]core.Message{{Dst: 1, Size: 64}}) // same rack
	eng.RunFor(5 * sim.Millisecond)
	if delivered2 != 1 {
		t.Fatal("intra-pod traffic wedged after forwarding")
	}
}

func TestSecondFailureDuringRecovery(t *testing.T) {
	// Two hosts die in quick succession: the controller's aggregation
	// window plus busy-rearm must handle the second report as a second
	// round, and both failures end up recorded.
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	ncfg.ControllerManagedCommit = true
	net := netsim.New(ncfg)
	cl := core.Deploy(net, core.DefaultConfig())
	ctrl := New(net, cl, DefaultConfig())
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		t.Fatal("no controller leader")
	}
	eng := net.Eng
	base := eng.Now()
	eng.At(base+100*sim.Microsecond, func() {
		cl.Hosts[0].Stop()
		net.G.KillNode(net.G.Host(0))
	})
	eng.At(base+160*sim.Microsecond, func() { // inside the first recovery
		cl.Hosts[7].Stop()
		net.G.KillNode(net.G.Host(7))
	})
	eng.RunFor(20 * sim.Millisecond)

	failed := make(map[netsim.ProcID]bool)
	for _, rec := range ctrl.Failures {
		for p := range rec.Procs {
			failed[p] = true
		}
	}
	if !failed[0] || !failed[7] {
		t.Fatalf("recorded failures %v, want procs 0 and 7", failed)
	}
	// Survivors keep working.
	delivered := 0
	cl.Procs[2].OnDeliver = func(core.Delivery) { delivered++ }
	cl.Proc(1).SendReliable([]core.Message{{Dst: 2, Size: 64}})
	eng.RunFor(5 * sim.Millisecond)
	if delivered != 1 {
		t.Fatal("survivors wedged after double failure")
	}
}

func TestReceiverRecoveryDeliversConsistently(t *testing.T) {
	// A receiver disconnects, misses a failure round, reconnects, replays
	// controller state, and then discards exactly what everyone else
	// discarded.
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	ncfg.ControllerManagedCommit = true
	net := netsim.New(ncfg)
	cl := core.Deploy(net, core.DefaultConfig())
	ctrl := New(net, cl, DefaultConfig())
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		t.Fatal("no leader")
	}
	eng := net.Eng
	base := eng.Now()
	// Host 1 dies; host 6 is "away" (we model a recovering receiver by
	// just replaying state to it afterwards — its network stayed up).
	eng.At(base+100*sim.Microsecond, func() {
		cl.Hosts[1].Stop()
		net.G.KillNode(net.G.Host(1))
	})
	eng.RunFor(10 * sim.Millisecond)
	ctrl.RecoverHost(6)
	eng.RunFor(1 * sim.Millisecond)
	// Host 6 now refuses sends to the failed proc, same as everyone else.
	if err := cl.Proc(6).SendReliable([]core.Message{{Dst: 1, Size: 64}}); err == nil {
		t.Fatal("recovered host does not know about the failure")
	}
}
