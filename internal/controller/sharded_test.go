package controller

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func shardedCluster(t *testing.T) (*core.Cluster, *Sharded) {
	t.Helper()
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	ncfg.ControllerManagedCommit = true
	net := netsim.New(ncfg)
	cl := core.Deploy(net, core.DefaultConfig())
	s := NewSharded(net, cl, DefaultConfig())
	if !s.WaitLeaders(100 * sim.Millisecond) {
		t.Fatal("shard leaders not elected")
	}
	return cl, s
}

func TestShardedRoutesFailureToOwningPod(t *testing.T) {
	cl, s := shardedCluster(t)
	eng := cl.Net.Eng
	// Host 5 lives in pod 1: only shard 1 should record its failure.
	eng.At(eng.Now()+100*sim.Microsecond, func() {
		cl.Hosts[5].Stop()
		cl.Net.G.KillNode(cl.Net.G.Host(5))
	})
	cl.Run(10 * sim.Millisecond)
	if len(s.Shards[1].Failures) != 1 {
		t.Fatalf("owning shard recorded %d failures", len(s.Shards[1].Failures))
	}
	if len(s.Shards[0].Failures) != 0 {
		t.Fatalf("non-owning shard recorded %d failures", len(s.Shards[0].Failures))
	}
	if _, ok := s.Shards[1].Failures[0].Procs[5]; !ok {
		t.Fatal("wrong failed proc recorded")
	}
	// The whole fabric still got Discard/Recall: a cross-pod host knows.
	if err := cl.Proc(0).SendReliable([]core.Message{{Dst: 5, Size: 16}}); err == nil {
		t.Fatal("pod-0 host unaware of pod-1 failure")
	}
}

func TestShardedConcurrentFailuresInBothPods(t *testing.T) {
	cl, s := shardedCluster(t)
	eng := cl.Net.Eng
	eng.At(eng.Now()+100*sim.Microsecond, func() {
		cl.Hosts[0].Stop() // pod 0
		cl.Net.G.KillNode(cl.Net.G.Host(0))
		cl.Hosts[7].Stop() // pod 1
		cl.Net.G.KillNode(cl.Net.G.Host(7))
	})
	cl.Run(15 * sim.Millisecond)
	failed := make(map[netsim.ProcID]bool)
	for _, rec := range s.Failures() {
		for p := range rec.Procs {
			failed[p] = true
		}
	}
	if !failed[0] || !failed[7] {
		t.Fatalf("recorded %v, want procs 0 and 7 across shards", failed)
	}
	if len(s.Shards[0].Failures) == 0 || len(s.Shards[1].Failures) == 0 {
		t.Fatal("failures not handled in parallel by both shards")
	}
	// Survivors flow.
	delivered := 0
	cl.Procs[2].OnDeliver = func(core.Delivery) { delivered++ }
	cl.Proc(1).SendReliable([]core.Message{{Dst: 2, Size: 16}})
	cl.Run(5 * sim.Millisecond)
	if delivered != 1 {
		t.Fatal("survivors wedged after dual-pod failures")
	}
}

func TestShardedCoreFailureGoesToShardZero(t *testing.T) {
	cl, s := shardedCluster(t)
	eng := cl.Net.Eng
	var corePhys int
	for _, n := range cl.Net.G.Nodes {
		if n.Kind == topology.KindCore {
			corePhys = n.Phys
			break
		}
	}
	recovered := 0
	for _, sh := range s.Shards {
		sh.OnRecovered = func(FailureRecord) { recovered++ }
	}
	eng.At(eng.Now()+100*sim.Microsecond, func() { cl.Net.G.KillPhys(corePhys) })
	cl.Run(10 * sim.Millisecond)
	if recovered == 0 {
		t.Fatal("no shard completed core-failure recovery")
	}
	for _, sh := range s.Shards {
		for _, rec := range sh.Failures {
			if len(rec.Procs) != 0 {
				t.Fatalf("core failure marked processes failed: %v", rec.Procs)
			}
		}
	}
}
