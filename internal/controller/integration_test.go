package controller

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// TestAtomicityUnderContinuousTraffic is the whole-stack crucible: many
// processes continuously issue reliable scatterings to random receiver
// pairs while a host is killed mid-stream. Afterwards, every scattering
// must satisfy restricted failure atomicity: its two correct receivers
// either BOTH delivered it or NEITHER did, and each sender observed a
// consistent outcome (both-delivered or failure-reported).
func TestAtomicityUnderContinuousTraffic(t *testing.T) {
	cfg := netsim.DefaultConfig(topology.Testbed(), 1)
	cfg.ControllerManagedCommit = true
	cfg.LossRate = 1e-4
	net := netsim.New(cfg)
	cl := core.Deploy(net, core.DefaultConfig())
	ctrl := New(net, cl, DefaultConfig())
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		t.Fatal("no controller leader")
	}
	eng := net.Eng
	n := len(cl.Procs)

	type scatterID struct {
		src netsim.ProcID
		seq int
	}
	delivered := make(map[scatterID]map[netsim.ProcID]bool)
	failedAt := make(map[scatterID]int) // send-failure callbacks seen
	type payload struct {
		id scatterID
	}
	for _, p := range cl.Procs {
		p := p
		p.OnDeliver = func(d core.Delivery) {
			pl := d.Data.(payload)
			m := delivered[pl.id]
			if m == nil {
				m = make(map[netsim.ProcID]bool)
				delivered[pl.id] = m
			}
			m[p.ID] = true
		}
		p.OnSendFail = func(f core.SendFailure) {
			failedAt[f.Data.(payload).id]++
		}
	}

	// Continuous reliable scatterings to two random receivers each.
	seqs := make([]int, n)
	targets := make(map[scatterID][2]netsim.ProcID)
	rng := eng.Rand()
	for pi := 0; pi < n; pi++ {
		pi := pi
		sim.NewTicker(eng, 5*sim.Microsecond, sim.Time(pi*83)*sim.Nanosecond, func() {
			if eng.Now() > 3*sim.Millisecond {
				return
			}
			d1 := netsim.ProcID(rng.Intn(n))
			d2 := netsim.ProcID(rng.Intn(n))
			if int(d1) == pi || int(d2) == pi || d1 == d2 {
				return
			}
			seqs[pi]++
			id := scatterID{src: netsim.ProcID(pi), seq: seqs[pi]}
			err := cl.Procs[pi].SendReliable([]core.Message{
				{Dst: d1, Data: payload{id}, Size: 64},
				{Dst: d2, Data: payload{id}, Size: 64},
			})
			if err == nil {
				targets[id] = [2]netsim.ProcID{d1, d2}
			}
		})
	}

	// Kill host 5 mid-stream (its proc 5 is both a sender and receiver).
	killAt := eng.Now() + 1*sim.Millisecond
	eng.At(killAt, func() {
		cl.Hosts[5].Stop()
		net.G.KillNode(net.G.Host(5))
	})
	eng.RunFor(30 * sim.Millisecond)

	checked, partial := 0, 0
	for id, dsts := range targets {
		if id.src == 5 {
			continue // the failed sender's own outcomes are unknowable
		}
		m := delivered[id]
		for _, dst := range dsts {
			if dst == 5 {
				// The interesting case: one receiver is the failed proc.
				// The OTHER receiver must deliver only if the scattering
				// committed before the failure; either way no "partial at
				// correct receivers" arises with a single correct member,
				// but the sender must have a definite outcome:
				other := dsts[0]
				if other == 5 {
					other = dsts[1]
				}
				otherGot := m[other]
				sawFail := failedAt[id] > 0
				if !otherGot && !sawFail {
					t.Errorf("scattering %v: neither delivered at %d nor failure-reported", id, other)
				}
				checked++
				goto next
			}
		}
		// Both receivers correct: all-or-nothing.
		if len(m) == 1 {
			partial++
			t.Errorf("scattering %v delivered at only one of %v", id, dsts)
		}
		if len(m) == 0 && failedAt[id] == 0 {
			t.Errorf("scattering %v vanished without a failure report", id)
		}
		checked++
	next:
	}
	if checked < 100 {
		t.Fatalf("only %d scatterings checked", checked)
	}
	if partial > 0 {
		t.Fatalf("%d partial deliveries — restricted atomicity violated", partial)
	}
	if len(ctrl.Failures) == 0 {
		t.Fatal("controller never recorded the failure")
	}
	t.Logf("checked %d scatterings across kill of host 5; failures recorded: %d",
		checked, len(ctrl.Failures))
}
