// Package replication implements §2.2.2's 1-RTT replication on best-effort
// 1Pipe and the Ceph-style primary-backup chain it is compared against in
// §7.3.4.
//
// With 1Pipe, a client scatters a log entry directly to all replicas; the
// network serializes concurrent clients, so every replica appends the same
// sequence. Consistency is verified without extra round trips: each
// replica maintains a running checksum chain, returns it with its
// acknowledgment, and the client accepts the append once all checksums
// agree. Packet loss shows up as a per-(client,replica) sequence gap: the
// replica rejects, and the client retransmits from the first rejected
// entry.
//
// Deviation from the paper: §2.2.2 sums *message timestamps* of all
// clients into one checksum. A best-effort retransmission necessarily
// carries a new timestamp, so after any loss the replicas that applied the
// original and those that applied the retransmission could never agree
// again. This implementation chains a per-sender checksum over (sequence
// number, payload hash) instead: it certifies the same thing the client
// needs — every replica applied exactly its entries 0..seq, in order — and
// it reconverges deterministically after retransmission. Cross-sender
// interleaving is 1Pipe's own total-order guarantee; after best-effort
// loss recovery, interleavings may differ around the recovered entry, which
// the ClientConsistent check makes observable.
//
// The baseline is a primary-backup chain as in Ceph OSD: the client writes
// the primary, which writes its disk and then updates each backup in
// sequence — three disk writes and three RTTs end to end, versus one RTT
// plus one (parallel) disk write for 1Pipe.
package replication

import (
	"math/rand"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// Disk models an SSD write path as a FIFO station with jittered service
// time (Intel DC S3700-class, per the paper's Ceph experiment).
type Disk struct {
	busy   sim.Time
	mean   sim.Time
	jitter sim.Time
	rng    *rand.Rand
}

// NewDisk builds a disk with the given mean write latency and ± jitter.
func NewDisk(mean, jitter sim.Time, rng *rand.Rand) *Disk {
	return &Disk{mean: mean, jitter: jitter, rng: rng}
}

// Write schedules fn when the write completes.
func (d *Disk) Write(eng *sim.Engine, fn func()) {
	start := eng.Now()
	if d.busy > start {
		start = d.busy
	}
	svc := d.mean
	if d.jitter > 0 {
		svc += sim.Time(d.rng.Int63n(int64(2*d.jitter))) - d.jitter
	}
	d.busy = start + svc
	eng.At(d.busy, fn)
}

// Config parameterizes a replication deployment.
type Config struct {
	// DiskMean/DiskJitter model the replica write path; zero disables the
	// disk (pure in-memory log replication).
	DiskMean, DiskJitter sim.Time
	// RetryTimeout resolves lost replies.
	RetryTimeout sim.Time
	Seed         int64
}

// DefaultConfig returns an in-memory log replication setup.
func DefaultConfig() Config {
	return Config{RetryTimeout: 300 * sim.Microsecond, Seed: 1}
}

// CephConfig returns the §7.3.4 SSD-backed configuration.
func CephConfig() Config {
	c := DefaultConfig()
	c.DiskMean = 45 * sim.Microsecond
	c.DiskJitter = 18 * sim.Microsecond
	return c
}

// Stats is a run's measurement.
type Stats struct {
	Appends      uint64
	Retransmits  uint64
	Latency      stats.Sample // microseconds, client-observed
	ChecksumErrs uint64
}

// Entry is one replicated log record.
type Entry struct {
	Client netsim.ProcID
	Seq    uint64
	TS     sim.Time
	Data   any
}

// Group is a 1-RTT replication group over best-effort 1Pipe.
type Group struct {
	Cfg      Config
	Stats    Stats
	cl       *core.Cluster
	replicas []netsim.ProcID
	states   map[netsim.ProcID]*replicaState
	clients  map[netsim.ProcID]*clientState
}

type replicaState struct {
	g    *Group
	proc *core.Proc
	log  []Entry
	// Per-client checksum chain and its per-sequence history (the history
	// lets duplicates be re-acknowledged with the checksum the original
	// apply produced; a production implementation would prune it below
	// the acknowledged watermark).
	ck       map[netsim.ProcID]uint64
	ckAt     map[netsim.ProcID][]uint64
	expected map[netsim.ProcID]uint64 // per-client next sequence
	disk     *Disk
}

// chain mixes one entry into a per-client checksum.
func chain(prev, seq, payload uint64) uint64 {
	h := prev ^ (seq + 0x9e3779b97f4a7c15)
	h *= 1099511628211
	h ^= payload
	h *= 1099511628211
	return h
}

type clientState struct {
	g       *Group
	proc    *core.Proc
	nextSeq uint64
	// pending appends by sequence number.
	pending map[uint64]*appendOp
	// unacked entries kept for retransmission, in sequence order.
	window []Entry
}

type appendOp struct {
	entry     Entry
	started   sim.Time
	replies   int
	checksums map[netsim.ProcID]uint64
	done      func(ok bool)
	epoch     uint64
	resolved  bool
}

// messages
type appendMsg struct {
	entry Entry
}
type appendAck struct {
	client   netsim.ProcID
	seq      uint64
	checksum uint64
	ok       bool
	expected uint64
}

// NewGroup deploys a replication group: the given replica processes hold
// the log; any other process may append through a Client.
func NewGroup(cl *core.Cluster, replicas []netsim.ProcID, cfg Config) *Group {
	g := &Group{
		Cfg: cfg, cl: cl, replicas: replicas,
		states:  make(map[netsim.ProcID]*replicaState),
		clients: make(map[netsim.ProcID]*clientState),
	}
	for _, r := range replicas {
		rs := &replicaState{
			g:        g,
			proc:     cl.Procs[r],
			ck:       make(map[netsim.ProcID]uint64),
			ckAt:     make(map[netsim.ProcID][]uint64),
			expected: make(map[netsim.ProcID]uint64),
		}
		if cfg.DiskMean > 0 {
			rs.disk = NewDisk(cfg.DiskMean, cfg.DiskJitter, rand.New(rand.NewSource(cfg.Seed+int64(r))))
		}
		g.states[r] = rs
		rs.proc.OnDeliver = rs.onDeliver
	}
	return g
}

// Client returns the append handle for process p.
func (g *Group) Client(p netsim.ProcID) *Client {
	cs := g.clients[p]
	if cs == nil {
		cs = &clientState{g: g, proc: g.cl.Procs[p], pending: make(map[uint64]*appendOp)}
		g.clients[p] = cs
		cs.proc.OnRaw = cs.onRaw
	}
	return &Client{cs: cs}
}

// Client appends entries to the group.
type Client struct {
	cs *clientState
}

// Append replicates data to every replica; done is invoked with the
// outcome once all replicas acknowledged with matching checksums
// (normally one round trip).
func (c *Client) Append(data any, size int, done func(ok bool)) {
	cs := c.cs
	g := cs.g
	e := Entry{Client: cs.proc.ID, Seq: cs.nextSeq, Data: data}
	cs.nextSeq++
	op := &appendOp{
		entry: e, started: g.cl.Net.Eng.Now(),
		checksums: make(map[netsim.ProcID]uint64), done: done,
	}
	cs.pending[e.Seq] = op
	cs.window = append(cs.window, e)
	cs.sendEntry(e, size)
	cs.armTimer(op)
}

func (cs *clientState) sendEntry(e Entry, size int) {
	msgs := make([]core.Message, 0, len(cs.g.replicas))
	for _, r := range cs.g.replicas {
		msgs = append(msgs, core.Message{Dst: r, Data: appendMsg{entry: e}, Size: size})
	}
	// Best-effort on purpose: §2.2.2's 1-RTT replication carries its own
	// sequence numbers and client-driven retransmission, so the reliable
	// plane's 2PC would only add latency.
	cs.proc.SendOpts(msgs, core.SendOptions{})
}

func (cs *clientState) armTimer(op *appendOp) {
	if cs.g.Cfg.RetryTimeout <= 0 {
		return
	}
	op.epoch++
	epoch := op.epoch
	cs.g.cl.Net.Eng.After(cs.g.Cfg.RetryTimeout, func() {
		if op.resolved || op.epoch != epoch {
			return
		}
		// Replies lost or entries lost without a visible reject:
		// retransmit from this sequence onward.
		cs.retransmitFrom(op.entry.Seq)
		cs.armTimer(op)
	})
}

// retransmitFrom resends every unacknowledged entry at or after seq, in
// order, preserving the original sequence numbers.
func (cs *clientState) retransmitFrom(seq uint64) {
	for _, e := range cs.window {
		if e.Seq < seq {
			continue
		}
		if op := cs.pending[e.Seq]; op != nil && !op.resolved {
			cs.g.Stats.Retransmits++
			cs.sendEntry(e, 64)
		}
	}
}

// onDeliver appends 1Pipe-ordered entries at a replica.
func (rs *replicaState) onDeliver(d core.Delivery) {
	m, ok := d.Data.(appendMsg)
	if !ok {
		return
	}
	e := m.entry
	exp := rs.expected[e.Client]
	ack := appendAck{client: e.Client, seq: e.Seq, expected: exp}
	switch {
	case e.Seq < exp:
		// Duplicate of an applied entry: re-ack with the checksum its
		// original apply produced.
		ack.ok = true
		ack.checksum = rs.ckAt[e.Client][e.Seq]
	case e.Seq > exp:
		// Gap: an earlier entry from this client was lost. Reject; the
		// client retransmits from `expected` (§2.2.2).
		ack.ok = false
	default:
		e.TS = d.TS
		rs.log = append(rs.log, e)
		rs.ck[e.Client] = chain(rs.ck[e.Client], e.Seq, payloadHash(e.Data))
		rs.ckAt[e.Client] = append(rs.ckAt[e.Client], rs.ck[e.Client])
		rs.expected[e.Client] = e.Seq + 1
		ack.ok = true
		ack.checksum = rs.ck[e.Client]
	}
	reply := func() { rs.proc.SendRaw(d.Src, ack, 24) }
	if ack.ok && e.Seq == exp && rs.disk != nil {
		rs.disk.Write(rs.g.cl.Net.Eng, reply)
	} else {
		reply()
	}
}

// onRaw collects acknowledgments at the client.
func (cs *clientState) onRaw(src netsim.ProcID, data any) {
	ack, ok := data.(appendAck)
	if !ok || ack.client != cs.proc.ID {
		return
	}
	op := cs.pending[ack.seq]
	if op == nil || op.resolved {
		return
	}
	if !ack.ok {
		// Sequence gap at this replica: retransmit the missing range.
		cs.retransmitFrom(ack.expected)
		return
	}
	if _, seen := op.checksums[src]; seen {
		return
	}
	op.checksums[src] = ack.checksum
	op.replies++
	if op.replies < len(cs.g.replicas) {
		return
	}
	// All replicas acknowledged: verify checksum agreement.
	var first uint64
	same := true
	i := 0
	for _, ck := range op.checksums {
		if i == 0 {
			first = ck
		} else if ck != first {
			same = false
		}
		i++
	}
	op.resolved = true
	delete(cs.pending, ack.seq)
	cs.compactWindow()
	g := cs.g
	if !same {
		// Diverging logs (possible only around failures): surface to the
		// application's recovery protocol.
		g.Stats.ChecksumErrs++
		if op.done != nil {
			op.done(false)
		}
		return
	}
	g.Stats.Appends++
	g.Stats.Latency.Add(float64(g.cl.Net.Eng.Now()-op.started) / 1000)
	if op.done != nil {
		op.done(true)
	}
}

func (cs *clientState) compactWindow() {
	kept := cs.window[:0]
	for _, e := range cs.window {
		if _, still := cs.pending[e.Seq]; still {
			kept = append(kept, e)
		}
	}
	cs.window = kept
}

// payloadHash folds an entry payload into the checksum chain. Payloads in
// the simulation are arbitrary Go values; hash the ones we can, and fall
// back to a constant (the (client, seq) chain still certifies ordering).
func payloadHash(data any) uint64 {
	switch v := data.(type) {
	case int:
		return uint64(v) * 0x9e3779b97f4a7c15
	case uint64:
		return v * 0x9e3779b97f4a7c15
	case string:
		h := uint64(14695981039346656037)
		for i := 0; i < len(v); i++ {
			h = (h ^ uint64(v[i])) * 1099511628211
		}
		return h
	default:
		return 0x517cc1b727220a95
	}
}

// Log returns a replica's current log (tests and recovery).
func (g *Group) Log(r netsim.ProcID) []Entry { return g.states[r].log }

// ConsistentPrefix returns the length of the longest common log prefix
// across all replicas — the recovery protocol truncates to it.
func (g *Group) ConsistentPrefix() int {
	n := -1
	for _, r := range g.replicas {
		if l := len(g.states[r].log); n < 0 || l < n {
			n = l
		}
	}
	if n < 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		var ref Entry
		for j, r := range g.replicas {
			e := g.states[r].log[i]
			if j == 0 {
				ref = e
			} else if e.Client != ref.Client || e.Seq != ref.Seq {
				return i
			}
		}
	}
	return n
}

// ClientConsistent reports whether every replica applied every client's
// entries as the same gap-free sequence — the guarantee the per-client
// checksum certifies, which holds even after best-effort loss recovery.
func (g *Group) ClientConsistent() bool {
	perClient := make(map[netsim.ProcID]map[netsim.ProcID][]uint64) // client -> replica -> seqs
	for _, r := range g.replicas {
		for _, e := range g.states[r].log {
			m := perClient[e.Client]
			if m == nil {
				m = make(map[netsim.ProcID][]uint64)
				perClient[e.Client] = m
			}
			m[r] = append(m[r], e.Seq)
		}
	}
	for _, byReplica := range perClient {
		var ref []uint64
		first := true
		for _, seqs := range byReplica {
			for i, s := range seqs {
				if s != uint64(i) {
					return false // gap or reordering within a client
				}
			}
			if first {
				ref = seqs
				first = false
			} else if len(seqs) != len(ref) {
				return false
			}
		}
	}
	return true
}
