package replication

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func cluster(t *testing.T, mut func(*netsim.Config)) *core.Cluster {
	t.Helper()
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	if mut != nil {
		mut(&ncfg)
	}
	return core.Deploy(netsim.New(ncfg), core.DefaultConfig())
}

func TestSingleClientAppend(t *testing.T) {
	cl := cluster(t, nil)
	g := NewGroup(cl, []netsim.ProcID{5, 6, 7}, DefaultConfig())
	c := g.Client(0)
	okCount := 0
	cl.Net.Eng.At(100*sim.Microsecond, func() {
		for i := 0; i < 20; i++ {
			c.Append(i, 64, func(ok bool) {
				if ok {
					okCount++
				}
			})
		}
	})
	cl.Run(5 * sim.Millisecond)
	if okCount != 20 {
		t.Fatalf("acknowledged %d of 20 appends", okCount)
	}
	for _, r := range []netsim.ProcID{5, 6, 7} {
		if len(g.Log(r)) != 20 {
			t.Fatalf("replica %d has %d entries", r, len(g.Log(r)))
		}
	}
	if g.ConsistentPrefix() != 20 {
		t.Fatalf("consistent prefix %d, want 20", g.ConsistentPrefix())
	}
}

func TestConcurrentClientsConsistentOrder(t *testing.T) {
	cl := cluster(t, nil)
	reps := []netsim.ProcID{5, 6, 7}
	g := NewGroup(cl, reps, DefaultConfig())
	eng := cl.Net.Eng
	total := 0
	for _, p := range []int{0, 1, 2, 3} {
		c := g.Client(netsim.ProcID(p))
		p := p
		sim.NewTicker(eng, 2*sim.Microsecond, 0, func() {
			if eng.Now() > 300*sim.Microsecond {
				return
			}
			c.Append(p, 64, func(ok bool) {
				if ok {
					total++
				}
			})
		})
	}
	cl.Run(3 * sim.Millisecond)
	if total == 0 {
		t.Fatal("no appends succeeded")
	}
	if g.Stats.ChecksumErrs != 0 {
		t.Fatalf("%d checksum mismatches on a healthy network", g.Stats.ChecksumErrs)
	}
	// All replicas hold the identical interleaving of all clients.
	if n := g.ConsistentPrefix(); n != len(g.Log(5)) || len(g.Log(5)) != len(g.Log(6)) || len(g.Log(6)) != len(g.Log(7)) {
		t.Fatalf("replica logs diverge: prefix=%d lens=%d/%d/%d", n, len(g.Log(5)), len(g.Log(6)), len(g.Log(7)))
	}
}

func TestLossRecoveredByRetransmission(t *testing.T) {
	cl := cluster(t, func(c *netsim.Config) { c.LossRate = 0.01; c.Seed = 11 })
	reps := []netsim.ProcID{5, 6, 7}
	g := NewGroup(cl, reps, DefaultConfig())
	c := g.Client(0)
	acked := 0
	eng := cl.Net.Eng
	for i := 0; i < 200; i++ {
		i := i
		eng.At(sim.Time(100+i*2)*sim.Microsecond, func() {
			c.Append(i, 64, func(ok bool) {
				if ok {
					acked++
				}
			})
		})
	}
	cl.Run(20 * sim.Millisecond)
	if acked != 200 {
		t.Fatalf("acked %d of 200 under loss", acked)
	}
	if g.Stats.Retransmits == 0 {
		t.Fatal("expected retransmissions under 1% loss")
	}
	if !g.ClientConsistent() {
		t.Fatal("per-client log sequences diverge after loss recovery")
	}
	for _, r := range []netsim.ProcID{5, 6, 7} {
		if len(g.Log(r)) != 200 {
			t.Fatalf("replica %d holds %d entries, want 200", r, len(g.Log(r)))
		}
	}
}

func TestOneRTTLatency(t *testing.T) {
	cl := cluster(t, nil)
	g := NewGroup(cl, []netsim.ProcID{5, 6, 7}, DefaultConfig())
	c := g.Client(0)
	eng := cl.Net.Eng
	for i := 0; i < 30; i++ {
		at := sim.Time(100_000+i*20_000+i%7*433) * sim.Nanosecond
		eng.At(at, func() { c.Append("x", 64, nil) })
	}
	cl.Run(5 * sim.Millisecond)
	// One-way delivery (+ barrier wait) + reply: well under two RTTs of a
	// consensus round plus no sequencer hop.
	if m := g.Stats.Latency.Mean(); m < 2 || m > 20 {
		t.Fatalf("1-RTT replication latency %.1fus outside envelope", m)
	}
}

func TestCephComparison(t *testing.T) {
	// §7.3.4: 4KB random writes, 3 replicas, idle system. Paper: 160us ->
	// 58us (64% reduction).
	cl1 := cluster(t, nil)
	g1 := NewGroup(cl1, []netsim.ProcID{5, 6, 7}, CephConfig())
	c := g1.Client(0)
	eng1 := cl1.Net.Eng
	for i := 0; i < 50; i++ {
		eng1.At(sim.Time(100+i*400)*sim.Microsecond, func() { c.Append("obj", 4096, nil) })
	}
	cl1.Run(25 * sim.Millisecond)

	cl2 := cluster(t, nil)
	g2 := NewCephGroup(cl2, 5, []netsim.ProcID{6, 7}, CephConfig())
	eng2 := cl2.Net.Eng
	for i := 0; i < 50; i++ {
		eng2.At(sim.Time(100+i*400)*sim.Microsecond, func() { g2.Write(0, 4096, nil) })
	}
	cl2.Run(25 * sim.Millisecond)

	lp, lc := g1.Stats.Latency.Mean(), g2.Stats.Latency.Mean()
	if g1.Stats.Appends != 50 || g2.Stats.Appends != 50 {
		t.Fatalf("appends: 1pipe=%d ceph=%d", g1.Stats.Appends, g2.Stats.Appends)
	}
	if lc < 100 || lc > 250 {
		t.Fatalf("ceph-style latency %.1fus outside the paper's ~160us band", lc)
	}
	if lp < 30 || lp > 110 {
		t.Fatalf("1Pipe replicated-write latency %.1fus outside the paper's ~58us band", lp)
	}
	reduction := 1 - lp/lc
	if reduction < 0.4 {
		t.Fatalf("latency reduction %.0f%%, paper reports ~64%%", reduction*100)
	}
}

func TestDiskFIFOUnderLoad(t *testing.T) {
	eng := sim.NewEngine(1)
	d := NewDisk(10*sim.Microsecond, 0, nil)
	var done []sim.Time
	for i := 0; i < 5; i++ {
		d.Write(eng, func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	for i, at := range done {
		want := sim.Time(10*(i+1)) * sim.Microsecond
		if at != want {
			t.Fatalf("write %d completed at %v, want %v", i, at, want)
		}
	}
}
