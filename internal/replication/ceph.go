package replication

import (
	"math/rand"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// CephGroup is the §7.3.4 baseline: primary-backup replication where the
// client writes the primary and the primary updates each backup in
// sequence, every hop completing a disk write before acknowledging.
type CephGroup struct {
	Cfg      Config
	Stats    Stats
	cl       *core.Cluster
	primary  netsim.ProcID
	backups  []netsim.ProcID
	disks    map[netsim.ProcID]*Disk
	inflight map[uint64]*cephOp
	nextID   uint64
}

type cephOp struct {
	id      uint64
	client  netsim.ProcID
	started sim.Time
	done    func()
	// chain progress
	backupIdx int
}

type cephWrite struct {
	id   uint64
	from netsim.ProcID
}
type cephBackupWrite struct {
	id uint64
}
type cephBackupAck struct {
	id uint64
}
type cephAck struct {
	id uint64
}

// NewCephGroup deploys the baseline with the given primary and backups.
func NewCephGroup(cl *core.Cluster, primary netsim.ProcID, backups []netsim.ProcID, cfg Config) *CephGroup {
	g := &CephGroup{
		Cfg: cfg, cl: cl, primary: primary, backups: backups,
		disks:    make(map[netsim.ProcID]*Disk),
		inflight: make(map[uint64]*cephOp),
	}
	all := append([]netsim.ProcID{primary}, backups...)
	for _, r := range all {
		g.disks[r] = NewDisk(cfg.DiskMean, cfg.DiskJitter, rand.New(rand.NewSource(cfg.Seed+int64(r))))
		r := r
		cl.Procs[r].OnRaw = func(src netsim.ProcID, data any) { g.onRaw(r, src, data) }
	}
	return g
}

// Write performs one replicated object write from client p; done fires
// when the client receives the final acknowledgment.
func (g *CephGroup) Write(p netsim.ProcID, size int, done func()) {
	g.nextID++
	op := &cephOp{id: g.nextID, client: p, started: g.cl.Net.Eng.Now(), done: done}
	g.inflight[op.id] = op
	// The client process needs a reply handler.
	g.cl.Procs[p].OnRaw = func(src netsim.ProcID, data any) {
		if ack, ok := data.(cephAck); ok {
			g.complete(ack.id)
		}
	}
	g.cl.Procs[p].SendRaw(g.primary, cephWrite{id: op.id, from: p}, size)
}

func (g *CephGroup) onRaw(self, src netsim.ProcID, data any) {
	eng := g.cl.Net.Eng
	switch m := data.(type) {
	case cephWrite:
		// Primary: write local disk, then the backup chain in sequence.
		g.disks[self].Write(eng, func() {
			g.nextBackup(m.id)
		})
	case cephBackupWrite:
		g.disks[self].Write(eng, func() {
			g.cl.Procs[self].SendRaw(g.primary, cephBackupAck{id: m.id}, 16)
		})
	case cephBackupAck:
		g.nextBackup(m.id)
	}
}

// nextBackup advances the sequential backup chain; when exhausted, the
// primary acknowledges the client.
func (g *CephGroup) nextBackup(id uint64) {
	op := g.inflight[id]
	if op == nil {
		return
	}
	if op.backupIdx < len(g.backups) {
		b := g.backups[op.backupIdx]
		op.backupIdx++
		g.cl.Procs[g.primary].SendRaw(b, cephBackupWrite{id: id}, 4096)
		return
	}
	g.cl.Procs[g.primary].SendRaw(op.client, cephAck{id: id}, 16)
}

func (g *CephGroup) complete(id uint64) {
	op := g.inflight[id]
	if op == nil {
		return
	}
	delete(g.inflight, id)
	g.Stats.Appends++
	g.Stats.Latency.Add(float64(g.cl.Net.Eng.Now()-op.started) / 1000)
	if op.done != nil {
		op.done()
	}
}
