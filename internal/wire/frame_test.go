package wire

import (
	"bytes"
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

func mkFrame(entries []netsim.FrameEntry, span uint16) *netsim.Frame {
	f := netsim.GetFrame()
	f.Entries = append(f.Entries, entries...)
	f.Span = span
	return f
}

// TestFrameRoundTrip encodes a multi-message frame packet and checks the
// decoded frame reproduces every entry — timestamps, PSN offsets and payload
// bytes — including a span gap left by an aborted member.
func TestFrameRoundTrip(t *testing.T) {
	ref := sim.Time(5 * sim.Millisecond)
	f := mkFrame([]netsim.FrameEntry{
		{TS: ref + 10, PSNOff: 0, ConflictKey: 7, Data: []byte("alpha")},
		{TS: ref + 10, PSNOff: 1, ConflictKey: 7, Data: []byte{}},
		// PSNOff 2 missing: a member aborted between transmissions.
		{TS: ref + 30, PSNOff: 3, Data: []byte("gamma-longer-payload")},
	}, 4)
	defer netsim.PutFrame(f)
	pkt := &netsim.Packet{
		Kind: netsim.KindData, Src: 3, Dst: 9, MsgTS: ref + 10,
		PSN: 1000, Frame: true, Reliable: true, Payload: f,
	}
	buf := Encode(pkt, nil)

	dec, payload, err := Decode(buf, ref)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !dec.Frame {
		t.Fatal("frame flag lost")
	}
	got, err := ParseFramePayload(payload, ref)
	if err != nil {
		t.Fatalf("parse frame: %v", err)
	}
	defer netsim.PutFrame(got)
	if got.Span != f.Span || len(got.Entries) != len(f.Entries) {
		t.Fatalf("shape changed: span=%d entries=%d, want span=%d entries=%d",
			got.Span, len(got.Entries), f.Span, len(f.Entries))
	}
	for i := range f.Entries {
		w, g := &f.Entries[i], &got.Entries[i]
		if g.TS != w.TS || g.PSNOff != w.PSNOff || g.ConflictKey != w.ConflictKey {
			t.Fatalf("entry %d header changed: got ts=%v off=%d key=%d, want ts=%v off=%d key=%d",
				i, g.TS, g.PSNOff, g.ConflictKey, w.TS, w.PSNOff, w.ConflictKey)
		}
		want := w.Data.([]byte)
		var gotData []byte
		if g.Data != nil {
			gotData = g.Data.([]byte)
		}
		if !bytes.Equal(gotData, want) {
			t.Fatalf("entry %d payload changed: got %q want %q", i, gotData, want)
		}
	}
}

// TestFrameRejectsMalformed feeds ParseFramePayload structurally invalid
// bodies; each must return an error rather than a bogus frame or a panic.
func TestFrameRejectsMalformed(t *testing.T) {
	enc := func(entries []netsim.FrameEntry, span uint16) []byte {
		f := mkFrame(entries, span)
		defer netsim.PutFrame(f)
		b := make([]byte, framePayloadLen(f))
		putFramePayload(b, f)
		return b
	}
	ref := sim.Time(sim.Millisecond)
	cases := []struct {
		name string
		body []byte
	}{
		{"truncated head", []byte{0, 1}},
		{"zero entries", enc(nil, 1)},
		{"span below count", enc([]netsim.FrameEntry{
			{TS: ref, PSNOff: 0, Data: []byte("a")},
			{TS: ref, PSNOff: 1, Data: []byte("b")},
		}, 1)},
		{"descending ts", enc([]netsim.FrameEntry{
			{TS: ref + 100, PSNOff: 0},
			{TS: ref + 50, PSNOff: 1},
		}, 2)},
		{"duplicate psn offset", enc([]netsim.FrameEntry{
			{TS: ref, PSNOff: 1},
			{TS: ref, PSNOff: 1},
		}, 3)},
		{"offset outside span", enc([]netsim.FrameEntry{
			{TS: ref, PSNOff: 0},
			{TS: ref, PSNOff: 5},
		}, 2)},
	}
	for _, tc := range cases {
		if f, err := ParseFramePayload(tc.body, ref); err == nil {
			netsim.PutFrame(f)
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Truncated entry payload: declare more data bytes than present.
	good := enc([]netsim.FrameEntry{{TS: ref, PSNOff: 0, Data: []byte("abcdef")}}, 1)
	if f, err := ParseFramePayload(good[:len(good)-3], ref); err == nil {
		netsim.PutFrame(f)
		t.Error("truncated entry payload: accepted")
	}
	// Truncated entry header: cut inside the conflict-key field, leaving the
	// entry shorter than the wire framing.
	short := enc([]netsim.FrameEntry{{TS: ref, PSNOff: 0, ConflictKey: 9, Data: []byte("abcdef")}}, 1)
	if f, err := ParseFramePayload(short[:frameHeadLen+10], ref); err == nil {
		netsim.PutFrame(f)
		t.Error("truncated entry header: accepted")
	}
}

// FuzzParseFrame throws arbitrary bytes at the frame-body parser: it must
// never panic, and any body it accepts must re-encode and re-parse to an
// equivalent frame.
func FuzzParseFrame(f *testing.F) {
	seed := mkFrame([]netsim.FrameEntry{
		{TS: 1000, PSNOff: 0, ConflictKey: 3, Data: []byte("one")},
		{TS: 1001, PSNOff: 2, Data: []byte("two")},
	}, 3)
	b := make([]byte, framePayloadLen(seed))
	putFramePayload(b, seed)
	netsim.PutFrame(seed)
	f.Add(b)
	f.Add([]byte{})
	f.Add(make([]byte, frameHeadLen))

	f.Fuzz(func(t *testing.T, body []byte) {
		ref := sim.Time(0)
		fr, err := ParseFramePayload(body, ref)
		if err != nil {
			return
		}
		re := make([]byte, framePayloadLen(fr))
		putFramePayload(re, fr)
		fr2, err2 := ParseFramePayload(re, ref)
		if err2 != nil {
			t.Fatalf("re-parse failed: %v", err2)
		}
		if fr2.Span != fr.Span || len(fr2.Entries) != len(fr.Entries) {
			t.Fatal("frame shape changed across round trip")
		}
		for i := range fr.Entries {
			a, b := &fr.Entries[i], &fr2.Entries[i]
			if WrapTS(a.TS) != WrapTS(b.TS) || a.PSNOff != b.PSNOff || a.ConflictKey != b.ConflictKey {
				t.Fatalf("entry %d header changed across round trip", i)
			}
			ad, _ := a.Data.([]byte)
			bd, _ := b.Data.([]byte)
			if !bytes.Equal(ad, bd) {
				t.Fatalf("entry %d payload changed across round trip", i)
			}
		}
		netsim.PutFrame(fr2)
		netsim.PutFrame(fr)
	})
}
