package wire

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/race"
	"onepipe/internal/sim"
)

func benchPacket() *netsim.Packet {
	return &netsim.Packet{
		Kind: netsim.KindData, Src: 3, Dst: 9, MsgTS: 123456789,
		BarrierBE: 123456000, BarrierC: 123455000, PSN: 77, FragIdx: 1,
		EndOfMsg: true, Reliable: true, Size: 1024,
	}
}

func BenchmarkEncode(b *testing.B) {
	pkt := benchPacket()
	payload := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(pkt, payload)
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	pkt := benchPacket()
	payload := make([]byte, 512)
	buf := make([]byte, 0, HeaderLen+len(payload))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], pkt, payload)
	}
}

func BenchmarkDecode(b *testing.B) {
	buf := Encode(benchPacket(), make([]byte, 512))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf, 123456789); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	buf := Encode(benchPacket(), make([]byte, 512))
	var pkt netsim.Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInto(&pkt, buf, 123456789); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCodecAllocs pins the zero-allocation property of the buffer-reusing
// codec entry points that the udpnet send/receive loops depend on.
func TestCodecAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	pkt := benchPacket()
	payload := make([]byte, 512)
	buf := make([]byte, 0, HeaderLen+len(payload))
	if avg := testing.AllocsPerRun(1000, func() {
		buf = AppendEncode(buf[:0], pkt, payload)
	}); avg != 0 {
		t.Errorf("AppendEncode: %v allocs/op, want 0", avg)
	}
	var dst netsim.Packet
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := DecodeInto(&dst, buf, sim.Time(123456789)); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeInto: %v allocs/op, want 0", avg)
	}
}

// TestAppendEncodeRoundTrip checks AppendEncode against Encode byte-for-byte,
// including the append-to-existing-prefix contract.
func TestAppendEncodeRoundTrip(t *testing.T) {
	pkt := benchPacket()
	payload := []byte("hello 1pipe")
	want := Encode(pkt, payload)
	prefix := []byte{0xde, 0xad}
	got := AppendEncode(append([]byte(nil), prefix...), pkt, payload)
	if len(got) != len(prefix)+len(want) {
		t.Fatalf("appended length %d, want %d", len(got), len(prefix)+len(want))
	}
	if string(got[:2]) != string(prefix) {
		t.Fatal("prefix clobbered")
	}
	if string(got[2:]) != string(want) {
		t.Fatal("AppendEncode bytes differ from Encode")
	}
	var back netsim.Packet
	pl, err := DecodeInto(&back, got[2:], pkt.MsgTS)
	if err != nil {
		t.Fatal(err)
	}
	if string(pl) != string(payload) {
		t.Fatalf("payload %q, want %q", pl, payload)
	}
	if back.MsgTS != pkt.MsgTS || back.PSN != pkt.PSN || back.Src != pkt.Src ||
		back.Dst != pkt.Dst || back.Kind != pkt.Kind || !back.EndOfMsg || !back.Reliable {
		t.Fatalf("DecodeInto mismatch: %+v", back)
	}
}
