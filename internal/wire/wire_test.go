package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pkt := &netsim.Packet{
		Kind: netsim.KindData, Src: 7, Dst: 12,
		MsgTS: 123456789, BarrierBE: 123456000, BarrierC: 123450000,
		PSN: 42, FragIdx: 3, EndOfMsg: true, Reliable: true, ECN: true,
		ConflictKey: 0xDEADBEEF,
	}
	payload := []byte("hello 1pipe")
	buf := Encode(pkt, payload)
	got, gotPayload, err := Decode(buf, 123456800)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload %q", gotPayload)
	}
	if got.Kind != pkt.Kind || got.Src != pkt.Src || got.Dst != pkt.Dst ||
		got.MsgTS != pkt.MsgTS || got.BarrierBE != pkt.BarrierBE || got.BarrierC != pkt.BarrierC ||
		got.PSN != pkt.PSN || got.FragIdx != pkt.FragIdx ||
		got.EndOfMsg != pkt.EndOfMsg || got.Reliable != pkt.Reliable || got.ECN != pkt.ECN ||
		got.ConflictKey != pkt.ConflictKey {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, pkt)
	}
	if got.Size != len(buf) {
		t.Fatalf("size %d != %d", got.Size, len(buf))
	}
}

func TestDecodeShortAndBadOpcode(t *testing.T) {
	if _, _, err := Decode(make([]byte, HeaderLen-1), 0); err != ErrShort {
		t.Fatalf("short header: %v", err)
	}
	pkt := &netsim.Packet{Kind: netsim.KindData}
	buf := Encode(pkt, []byte("xx"))
	if _, _, err := Decode(buf[:len(buf)-1], 0); err != ErrShort {
		t.Fatalf("truncated payload: %v", err)
	}
	buf[24] = 0xFF
	if _, _, err := Decode(buf, 0); err == nil {
		t.Fatal("bad opcode accepted")
	}
}

func TestTSLessBasic(t *testing.T) {
	if !TSLess(1, 2) || TSLess(2, 1) || TSLess(5, 5) {
		t.Fatal("basic ordering wrong")
	}
	if !TSLessEq(5, 5) {
		t.Fatal("TSLessEq(5,5) = false")
	}
}

func TestTSLessAcrossWrap(t *testing.T) {
	// Just before the wrap vs just after: PAWS arithmetic must order them
	// correctly.
	a := tsMask - 10 // near the top
	b := uint64(5)   // wrapped
	if !TSLess(a, b) {
		t.Fatal("wrap-adjacent ordering failed")
	}
	if TSLess(b, a) {
		t.Fatal("reverse wrap ordering wrong")
	}
}

func TestUnwrapAroundWrap(t *testing.T) {
	// A real time just past one full wrap period.
	wrap := sim.Time(1) << TSBits
	real := wrap + 1000
	ref := wrap + 2000
	if got := UnwrapTS(WrapTS(real), ref); got != real {
		t.Fatalf("unwrap after wrap: got %d want %d", got, real)
	}
	// A timestamp slightly behind a reference that sits just past the wrap.
	real2 := wrap - 500
	if got := UnwrapTS(WrapTS(real2), ref); got != real2 {
		t.Fatalf("unwrap behind wrap: got %d want %d", got, real2)
	}
}

// Property: round trip preserves every header field, for arbitrary values.
func TestRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, src, dst uint32, ts, be, c uint64, psn, ckey uint32, frag uint16, flags uint8, payload []byte) bool {
		kind := netsim.Kind(kindRaw % 8)
		ref := sim.Time(ts & tsMask) // receiver clock near the message time
		pkt := &netsim.Packet{
			Kind: kind, Src: netsim.ProcID(src), Dst: netsim.ProcID(dst),
			MsgTS:     sim.Time(ts & tsMask),
			BarrierBE: sim.Time(be & tsMask),
			BarrierC:  sim.Time(c & tsMask),
			PSN:       psn, FragIdx: frag, ConflictKey: ckey,
			EndOfMsg: flags&1 != 0, Reliable: flags&2 != 0, ECN: flags&4 != 0,
		}
		if len(payload) > 2048 {
			payload = payload[:2048]
		}
		buf := Encode(pkt, payload)
		got, gotPayload, err := Decode(buf, ref)
		if err != nil {
			return false
		}
		if !bytes.Equal(gotPayload, payload) {
			return false
		}
		// Timestamps unwrap relative to ref: MsgTS is within half range of
		// ref by construction; barriers may not be — compare wrapped.
		return got.Kind == pkt.Kind && got.Src == pkt.Src && got.Dst == pkt.Dst &&
			WrapTS(got.MsgTS) == WrapTS(pkt.MsgTS) &&
			WrapTS(got.BarrierBE) == WrapTS(pkt.BarrierBE) &&
			WrapTS(got.BarrierC) == WrapTS(pkt.BarrierC) &&
			got.PSN == pkt.PSN && got.FragIdx == pkt.FragIdx &&
			got.ConflictKey == pkt.ConflictKey &&
			got.EndOfMsg == pkt.EndOfMsg && got.Reliable == pkt.Reliable && got.ECN == pkt.ECN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: TSLess is a strict total order on any pair within half range.
func TestTSLessAntisymmetryProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		a &= tsMask
		b &= tsMask
		if a == b {
			return !TSLess(a, b) && !TSLess(b, a)
		}
		// Exactly one direction holds (ties at half range resolve one way).
		return TSLess(a, b) != TSLess(b, a) || (b-a)&tsMask == halfRange
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary bytes.
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Decode panicked")
			}
		}()
		Decode(raw, 0)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
