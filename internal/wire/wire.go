// Package wire defines the binary packet format of 1Pipe as described in
// §6.1: every packet carries a 24-byte 1Pipe header — three 48-bit
// timestamps (message, best-effort barrier, commit barrier), a 32-bit PSN,
// an opcode, flags, and addressing — followed by the payload.
//
// Timestamps on the wire are 48-bit nanosecond counters that wrap about
// every 78 hours; comparisons use PAWS-style serial-number arithmetic
// (RFC 1323/7323), so ordering remains correct across the wrap as long as
// two live timestamps are within half the wrap period of each other.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// TSBits is the wire width of a 1Pipe timestamp.
const TSBits = 48

// tsMask keeps the low 48 bits.
const tsMask = (uint64(1) << TSBits) - 1

// halfRange is half the timestamp space, the PAWS comparison horizon
// (~39 hours of nanoseconds).
const halfRange = uint64(1) << (TSBits - 1)

// WrapTS folds a full simulator timestamp onto the 48-bit wire space.
func WrapTS(t sim.Time) uint64 { return uint64(t) & tsMask }

// TSLess compares two 48-bit wire timestamps with serial-number
// arithmetic: a < b iff the forward distance from a to b is less than half
// the space (PAWS, §6.1).
func TSLess(a, b uint64) bool {
	if a == b {
		return false
	}
	return (b-a)&tsMask < halfRange
}

// TSLessEq is TSLess or equal.
func TSLessEq(a, b uint64) bool { return a == b || TSLess(a, b) }

// UnwrapTS reconstructs a full timestamp from a 48-bit wire value, given a
// reference timestamp known to be within half the wrap range of the true
// value (the receiver's clock).
func UnwrapTS(wire uint64, ref sim.Time) sim.Time {
	refWire := uint64(ref) & tsMask
	base := uint64(ref) &^ tsMask
	diff := (wire - refWire) & tsMask
	if diff < halfRange {
		return sim.Time(base|refWire) + sim.Time(diff)
	}
	// wire is behind ref (or ref wrapped past it).
	back := (refWire - wire) & tsMask
	return sim.Time(base|refWire) - sim.Time(back)
}

// HeaderLen is the encoded header size: 3×6 (timestamps) + 4 (PSN) +
// 2 (FragIdx) + 1 (opcode) + 1 (flags) + 4+4 (src/dst) + 4 (conflict key)
// + 4 (payload len) = 42 bytes. (§6.1 counts the 24 bytes 1Pipe adds on
// top of UD addressing; this format carries addressing, the conflict key
// and length explicitly since it runs over plain UDP.)
const HeaderLen = 42

// Flag bits.
const (
	flagEndOfMsg = 1 << 0
	flagReliable = 1 << 1
	flagECN      = 1 << 2
	flagFrame    = 1 << 3
)

// frameHeadLen is the fixed prefix of a frame payload: a 16-bit entry count
// and a 16-bit PSN span.
const frameHeadLen = 4

// wireEntryLen is the per-entry framing on the wire: the simulator's
// FrameEntryBytes (48-bit TS, 16-bit PSN offset, 32-bit payload length)
// plus the 32-bit conflict key, which is deliberately kept out of the
// simulator constant (see netsim.FrameEntryBytes).
const wireEntryLen = netsim.FrameEntryBytes + 4

// ErrShort reports a truncated packet.
var ErrShort = errors.New("wire: short packet")

// ErrBadOpcode reports an unknown opcode.
var ErrBadOpcode = errors.New("wire: bad opcode")

// ErrBadFrame reports a structurally invalid multi-message frame payload.
var ErrBadFrame = errors.New("wire: bad frame payload")

func put48(b []byte, v uint64) {
	b[0] = byte(v >> 40)
	b[1] = byte(v >> 32)
	b[2] = byte(v >> 24)
	b[3] = byte(v >> 16)
	b[4] = byte(v >> 8)
	b[5] = byte(v)
}

func get48(b []byte) uint64 {
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

// Encode serializes a packet header plus payload bytes. The Payload field
// of the in-memory packet is not serialized (it holds Go values in the
// simulator); payload carries the application bytes for the UDP transport.
func Encode(pkt *netsim.Packet, payload []byte) []byte {
	return AppendEncode(nil, pkt, payload)
}

// AppendEncode serializes pkt into dst, reusing dst's capacity, and returns
// the extended slice. With a dst of capacity >= HeaderLen+len(payload) —
// typically a pooled send buffer sliced to dst[:0] — it does not allocate.
//
// A Frame packet with a nil payload serializes its *netsim.Frame Payload as
// a length-prefixed multi-payload frame body (entry Data values that are
// not []byte encode as zero-length payloads). A Frame packet with explicit
// payload bytes — a forwarder restamping barriers — passes them through
// opaquely.
func AppendEncode(dst []byte, pkt *netsim.Packet, payload []byte) []byte {
	var frame *netsim.Frame
	plen := len(payload)
	if pkt.Frame && payload == nil {
		frame, _ = pkt.Payload.(*netsim.Frame)
		plen = framePayloadLen(frame)
	}
	off := len(dst)
	n := off + HeaderLen + plen
	if cap(dst) < n {
		grown := make([]byte, n)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:n]
	}
	buf := dst[off:]
	put48(buf[0:], WrapTS(pkt.MsgTS))
	put48(buf[6:], WrapTS(pkt.BarrierBE))
	put48(buf[12:], WrapTS(pkt.BarrierC))
	binary.BigEndian.PutUint32(buf[18:], pkt.PSN)
	binary.BigEndian.PutUint16(buf[22:], pkt.FragIdx)
	buf[24] = byte(pkt.Kind)
	var flags byte
	if pkt.EndOfMsg {
		flags |= flagEndOfMsg
	}
	if pkt.Reliable {
		flags |= flagReliable
	}
	if pkt.ECN {
		flags |= flagECN
	}
	if pkt.Frame {
		flags |= flagFrame
	}
	buf[25] = flags
	binary.BigEndian.PutUint32(buf[26:], uint32(pkt.Src))
	binary.BigEndian.PutUint32(buf[30:], uint32(pkt.Dst))
	binary.BigEndian.PutUint32(buf[34:], pkt.ConflictKey)
	binary.BigEndian.PutUint32(buf[38:], uint32(plen))
	if frame != nil {
		putFramePayload(buf[HeaderLen:], frame)
	} else {
		copy(buf[HeaderLen:], payload)
	}
	return dst
}

// framePayloadLen is the encoded size of a frame body.
func framePayloadLen(f *netsim.Frame) int {
	if f == nil {
		return 0
	}
	n := frameHeadLen
	for i := range f.Entries {
		n += wireEntryLen
		if data, ok := f.Entries[i].Data.([]byte); ok {
			n += len(data)
		}
	}
	return n
}

func putFramePayload(b []byte, f *netsim.Frame) {
	if f == nil {
		return
	}
	binary.BigEndian.PutUint16(b[0:], uint16(len(f.Entries)))
	binary.BigEndian.PutUint16(b[2:], f.Span)
	off := frameHeadLen
	for i := range f.Entries {
		e := &f.Entries[i]
		data, _ := e.Data.([]byte)
		put48(b[off:], WrapTS(e.TS))
		binary.BigEndian.PutUint16(b[off+6:], e.PSNOff)
		binary.BigEndian.PutUint32(b[off+8:], e.ConflictKey)
		binary.BigEndian.PutUint32(b[off+12:], uint32(len(data)))
		copy(b[off+wireEntryLen:], data)
		off += wireEntryLen + len(data)
	}
}

// ParseFramePayload decodes a frame body (the payload bytes of a packet
// whose Frame flag is set) into a pooled *netsim.Frame. Entry Data slices
// alias payload; copy payload first if it will be reused. The frame is
// validated structurally: at least one entry, ascending entry timestamps,
// and a PSN span covering every entry.
func ParseFramePayload(payload []byte, ref sim.Time) (*netsim.Frame, error) {
	if len(payload) < frameHeadLen {
		return nil, ErrShort
	}
	count := int(binary.BigEndian.Uint16(payload[0:]))
	span := binary.BigEndian.Uint16(payload[2:])
	if count == 0 || int(span) < count {
		return nil, ErrBadFrame
	}
	f := netsim.GetFrame()
	off := frameHeadLen
	var prevTS sim.Time
	prevOff := -1
	for i := 0; i < count; i++ {
		if len(payload)-off < wireEntryLen {
			netsim.PutFrame(f)
			return nil, ErrShort
		}
		ts := UnwrapTS(get48(payload[off:]), ref)
		psnOff := binary.BigEndian.Uint16(payload[off+6:])
		ckey := binary.BigEndian.Uint32(payload[off+8:])
		dlen := int(binary.BigEndian.Uint32(payload[off+12:]))
		off += wireEntryLen
		if dlen < 0 || dlen > len(payload)-off {
			netsim.PutFrame(f)
			return nil, ErrShort
		}
		if (i > 0 && ts < prevTS) || int(psnOff) <= prevOff || psnOff >= span {
			netsim.PutFrame(f)
			return nil, ErrBadFrame
		}
		prevTS = ts
		prevOff = int(psnOff)
		var data any
		if dlen > 0 {
			data = payload[off : off+dlen]
		}
		f.Entries = append(f.Entries, netsim.FrameEntry{TS: ts, PSNOff: psnOff, Size: dlen, ConflictKey: ckey, Data: data})
		off += dlen
	}
	f.Span = span
	return f, nil
}

// Decode parses a packet. ref anchors 48-bit timestamps back onto the full
// time line (use the receiver's current clock). The returned payload
// aliases buf.
func Decode(buf []byte, ref sim.Time) (*netsim.Packet, []byte, error) {
	pkt := &netsim.Packet{}
	payload, err := DecodeInto(pkt, buf, ref)
	if err != nil {
		return nil, nil, err
	}
	return pkt, payload, nil
}

// DecodeInto parses buf into a caller-supplied packet — typically one from
// netsim.GetPacket — without allocating. Fields not present on the wire
// (Payload, SentAt, QueueWait) are zeroed. The returned payload aliases buf.
func DecodeInto(pkt *netsim.Packet, buf []byte, ref sim.Time) ([]byte, error) {
	if len(buf) < HeaderLen {
		return nil, ErrShort
	}
	kind := netsim.Kind(buf[24])
	if kind > netsim.KindCtrl {
		return nil, fmt.Errorf("%w: %d", ErrBadOpcode, buf[24])
	}
	plen := binary.BigEndian.Uint32(buf[38:])
	if len(buf) < HeaderLen+int(plen) {
		return nil, ErrShort
	}
	flags := buf[25]
	pkt.Kind = kind
	pkt.MsgTS = UnwrapTS(get48(buf[0:]), ref)
	pkt.BarrierBE = UnwrapTS(get48(buf[6:]), ref)
	pkt.BarrierC = UnwrapTS(get48(buf[12:]), ref)
	pkt.PSN = binary.BigEndian.Uint32(buf[18:])
	pkt.FragIdx = binary.BigEndian.Uint16(buf[22:])
	pkt.EndOfMsg = flags&flagEndOfMsg != 0
	pkt.Reliable = flags&flagReliable != 0
	pkt.ECN = flags&flagECN != 0
	pkt.Frame = flags&flagFrame != 0
	pkt.Src = netsim.ProcID(binary.BigEndian.Uint32(buf[26:]))
	pkt.Dst = netsim.ProcID(binary.BigEndian.Uint32(buf[30:]))
	pkt.ConflictKey = binary.BigEndian.Uint32(buf[34:])
	pkt.Size = HeaderLen + int(plen)
	pkt.Payload = nil
	pkt.SentAt = 0
	pkt.QueueWait = 0
	return buf[HeaderLen : HeaderLen+plen], nil
}
