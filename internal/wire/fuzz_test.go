package wire

import (
	"bytes"
	"testing"

	"onepipe/internal/netsim"
)

// FuzzDecode throws arbitrary bytes at the packet parser: it must never
// panic, and anything it accepts must re-encode to an equivalent packet.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(&netsim.Packet{Kind: netsim.KindData, Src: 1, Dst: 2, MsgTS: 1000, PSN: 7}, []byte("seed")))
	f.Add([]byte{})
	f.Add(make([]byte, HeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, payload, err := Decode(data, 1<<40)
		if err != nil {
			return
		}
		// Accepted packets must round-trip.
		re := Encode(pkt, payload)
		pkt2, payload2, err2 := Decode(re, 1<<40)
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatal("payload changed across round trip")
		}
		if pkt.Kind != pkt2.Kind || pkt.Src != pkt2.Src || pkt.Dst != pkt2.Dst ||
			pkt.PSN != pkt2.PSN || pkt.FragIdx != pkt2.FragIdx ||
			WrapTS(pkt.MsgTS) != WrapTS(pkt2.MsgTS) {
			t.Fatal("header changed across round trip")
		}
	})
}

// FuzzTSOrdering cross-checks PAWS comparison against exact arithmetic for
// timestamps within the valid half-range window.
func FuzzTSOrdering(f *testing.F) {
	f.Add(uint64(1), uint64(2))
	f.Add(uint64(0), uint64(1)<<47)
	f.Fuzz(func(t *testing.T, a, b uint64) {
		a &= tsMask
		// Constrain b within half range of a so the comparison is defined.
		delta := b % (halfRange - 1)
		b = (a + delta) & tsMask
		if delta == 0 {
			if TSLess(a, b) || TSLess(b, a) {
				t.Fatal("equal timestamps compared unequal")
			}
			return
		}
		if !TSLess(a, b) {
			t.Fatalf("a=%d should precede b=a+%d", a, delta)
		}
		if TSLess(b, a) {
			t.Fatal("comparison not antisymmetric")
		}
	})
}
