package wire_test

import (
	"bytes"
	"testing"

	"onepipe/internal/chaos"
	"onepipe/internal/wire"
)

// FuzzDecodeCaptured is FuzzDecode with a corpus harvested from a chaos run
// instead of hand-built constants: the seeds are real frames — beacons with
// live barrier state, recalls and recall ACKs from an abort, commit and NAK
// traffic under loss — so the fuzzer starts from every header shape the
// protocol actually produces. (External test package: chaos imports wire,
// so the seeding has to live outside package wire.)
func FuzzDecodeCaptured(f *testing.F) {
	for _, frame := range chaos.CaptureWirePackets(42, 4) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, payload, err := wire.Decode(data, 1<<40)
		if err != nil {
			return
		}
		re := wire.Encode(pkt, payload)
		pkt2, payload2, err2 := wire.Decode(re, 1<<40)
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if !bytes.Equal(payload, payload2) {
			t.Fatal("payload changed across round trip")
		}
		if pkt.Kind != pkt2.Kind || pkt.Src != pkt2.Src || pkt.Dst != pkt2.Dst ||
			pkt.PSN != pkt2.PSN || pkt.FragIdx != pkt2.FragIdx ||
			pkt.Reliable != pkt2.Reliable || pkt.EndOfMsg != pkt2.EndOfMsg ||
			wire.WrapTS(pkt.MsgTS) != wire.WrapTS(pkt2.MsgTS) {
			t.Fatal("header changed across round trip")
		}
	})
}

// FuzzParseFrameCaptured seeds the frame-body parser with the payload
// sections of real coalesced frames harvested from a chaos run — multi-entry
// bodies with live timestamps and PSN offsets, including spans widened by
// aborted members — then mutates from there. It must never panic, and
// accepted bodies must keep their structural invariants.
func FuzzParseFrameCaptured(f *testing.F) {
	for _, raw := range chaos.CaptureWirePackets(42, 8) {
		if len(raw) <= wire.HeaderLen || raw[25]&(1<<3) == 0 { // flags byte: frame bit
			continue
		}
		f.Add(raw[wire.HeaderLen:])
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := wire.ParseFramePayload(body, 1<<40)
		if err != nil {
			return
		}
		if len(fr.Entries) == 0 || int(fr.Span) < len(fr.Entries) {
			t.Fatalf("accepted frame violates invariants: %d entries, span %d", len(fr.Entries), fr.Span)
		}
		prev := -1
		for i := range fr.Entries {
			if int(fr.Entries[i].PSNOff) <= prev || fr.Entries[i].PSNOff >= fr.Span {
				t.Fatalf("accepted frame has bad PSN offset at entry %d", i)
			}
			prev = int(fr.Entries[i].PSNOff)
		}
	})
}

// TestCapturedCorpusCoversKinds asserts the harvest actually contains frames
// of several distinct kinds — a capture that only ever saw data packets
// would silently gut FuzzDecodeCaptured's seed diversity. It also requires
// at least one coalesced multi-message frame, the seed material for
// FuzzParseFrameCaptured.
func TestCapturedCorpusCoversKinds(t *testing.T) {
	frames := chaos.CaptureWirePackets(42, 4)
	if len(frames) < 8 {
		t.Fatalf("capture produced only %d frames", len(frames))
	}
	kinds := map[byte]bool{}
	coalesced := 0
	for _, fr := range frames {
		if len(fr) >= wire.HeaderLen {
			kinds[fr[24]] = true // opcode byte of the wire header
			if fr[25]&(1<<3) != 0 {
				coalesced++
			}
		}
	}
	if len(kinds) < 4 {
		t.Fatalf("capture covers only %d packet kinds, want >=4 (data/ack/beacon/commit/recall...)", len(kinds))
	}
	if coalesced == 0 {
		t.Fatal("capture contains no coalesced frame packets")
	}
}
