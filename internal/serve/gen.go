package serve

import "onepipe/internal/workload"

// nextOps draws session s's next request. Every draw comes from the
// session's own SplitMix64 stream; the Zipf table is shared and stateless
// (FromU), so a million sessions share one table.
func (t *Tier) nextOps(s *session) []workload.Op {
	if s.gen != nil {
		return s.gen.Next()
	}
	switch t.Cfg.Service {
	case Txn, SMRFabric, SMRRaft:
		if t.Cfg.Service == Txn {
			return t.txnMix(s)
		}
		// SMR commands reuse the KV request shape; replicas apply them to
		// the replicated machine.
		return t.kvOps(s)
	default:
		return t.kvOps(s)
	}
}

func (t *Tier) key(s *session) uint64 {
	if t.zipf != nil {
		return t.zipf.FromU(workload.SplitMixFloat(&s.rng))
	}
	return workload.SplitMix64(&s.rng) % t.Cfg.Keys
}

// valueSize draws a small-skewed write size (2–512 B) — the cheap stand-in
// for the ETC tail, kept rng-state-only for session scale.
func valueSize(s *session) int {
	return 2 + int(workload.SplitMix64(&s.rng)%511)
}

// kvOps emits a get/put/scan request: with probability ScanFrac one scan of
// ScanLen consecutive keys, otherwise OpsPerReq point ops, each a put with
// probability WriteFrac.
func (t *Tier) kvOps(s *session) []workload.Op {
	if t.Cfg.ScanFrac > 0 && workload.SplitMixFloat(&s.rng) < t.Cfg.ScanFrac {
		base := t.key(s)
		ops := make([]workload.Op, t.Cfg.ScanLen)
		for i := range ops {
			ops[i] = workload.Op{Kind: workload.OpRead, Key: (base + uint64(i)) % t.Cfg.Keys}
		}
		return ops
	}
	ops := make([]workload.Op, 0, t.Cfg.OpsPerReq)
	for len(ops) < t.Cfg.OpsPerReq {
		k := t.key(s)
		dup := false
		for _, op := range ops {
			if op.Key == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		op := workload.Op{Kind: workload.OpRead, Key: k}
		if workload.SplitMixFloat(&s.rng) < t.Cfg.WriteFrac {
			op.Kind = workload.OpWrite
			op.Value = valueSize(s)
		}
		ops = append(ops, op)
	}
	return ops
}

// txnMix emits the tpcc-style transaction mix (shapes scaled to the
// simulated keyspace: reads and writes across warehouse/district/stock
// keys stand in for the full relational rows).
func (t *Tier) txnMix(s *session) []workload.Op {
	u := workload.SplitMixFloat(&s.rng)
	var reads, writes int
	switch {
	case u < 0.45: // new-order: read stock, insert order lines
		reads, writes = 2, 6
	case u < 0.88: // payment: read customer, update balances
		reads, writes = 1, 3
	case u < 0.92: // order-status: read-only
		reads, writes = 4, 0
	case u < 0.96: // delivery: batch of updates
		reads, writes = 0, 8
	default: // stock-level: wide read
		reads, writes = 12, 0
	}
	ops := make([]workload.Op, 0, reads+writes)
	for i := 0; i < reads; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpRead, Key: t.key(s)})
	}
	for i := 0; i < writes; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpWrite, Key: t.key(s), Value: valueSize(s)})
	}
	return ops
}
