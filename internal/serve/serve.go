// Package serve is the repository's serving tier: a closed-loop
// client/service subsystem that drives sharded replicated services —
// a linearizable key-value store (get/put/scan), a tpcc-style transaction
// mix, and two state-machine-replication modes — entirely through the
// root Fabric API (Send with Reliable/Batched/Conflicts options).
//
// The client pool scales to ~10^6 simulated sessions: each session is a
// closed-loop client (at most one outstanding request) whose think times
// come from a per-session SplitMix64 stream (8 bytes of PRNG state, not a
// 5 KB *rand.Rand), so a million connected clients cost tens of megabytes.
// Latency is measured client-observed: the clock starts when the session
// decides to issue (before any backpressure retry or batching delay) and
// stops when the last reply part arrives, reported as p50/p99/p999 through
// internal/stats streaming histograms.
//
// Every timer the tier arms goes on the root engine, the same discipline
// the kvstore harness and the experiment source pump use, so
// lockstep-sharded runs (Config.Shards) reproduce the identical schedule —
// request/response logs are byte-identical at any shard count.
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"onepipe"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/workload"
)

// Service selects what the tier serves.
type Service uint8

const (
	// KV is the sharded linearizable key-value service: point get/put and
	// short scans, one scattering per request (best-effort for read-only,
	// reliable otherwise), owners applying in timestamp order.
	KV Service = iota
	// Txn is the tpcc-style transaction service: a fixed mix of
	// new-order / payment / order-status / delivery / stock-level shapes
	// over the same sharded ownership.
	Txn
	// SMRFabric replicates one state machine on R replicas with NO leader:
	// each command is a reliable scattering to all replicas and the
	// fabric's delivery order IS the log (§2.2.2).
	SMRFabric
	// SMRRaft is the baseline: the same state machine replicated by the
	// in-tree Raft core, whose RPCs ride best-effort fabric scatterings;
	// the leader sequences, commits on quorum, and replies.
	SMRRaft
)

func (s Service) String() string {
	switch s {
	case KV:
		return "kv"
	case Txn:
		return "txn"
	case SMRFabric:
		return "smr-fabric"
	case SMRRaft:
		return "smr-raft"
	}
	return "?"
}

// Config parameterizes a tier deployment.
type Config struct {
	Service Service
	// Clients is the number of closed-loop sessions across all frontends.
	Clients int
	// Servers is the shard-owner count for KV/Txn: processes [0,Servers)
	// own keys by key%Servers. When Servers equals the process count every
	// process is both owner and frontend (the kvstore topology); when
	// smaller, the remaining processes are pure frontends and elastic
	// joins add frontend capacity without resharding.
	Servers int
	// Replicas is the replication degree for the SMR services; processes
	// [0,Replicas) are replicas, the rest are frontends.
	Replicas int
	// Keys is the keyspace size; ZipfTheta skews key popularity (0 =
	// uniform).
	Keys      uint64
	ZipfTheta float64
	// OpsPerReq, WriteFrac, ScanFrac, ScanLen shape KV requests: each
	// request is OpsPerReq point ops (write w.p. WriteFrac), except that
	// with probability ScanFrac it is instead one scan of ScanLen
	// consecutive keys.
	OpsPerReq int
	WriteFrac float64
	ScanFrac  float64
	ScanLen   int
	// ThinkTime is the mean exponential think time between a response and
	// the session's next request; StartSpread staggers session first
	// requests over that span (default ThinkTime).
	ThinkTime   sim.Time
	StartSpread sim.Time
	// ServerOpCost models server CPU per KV operation (FIFO station).
	ServerOpCost sim.Time
	// BatchWindow, when nonzero, sends every request Batched(w);
	// Conflicts tags write requests with their first write key for
	// conflict-aware fabrics.
	BatchWindow sim.Time
	Conflicts   bool
	// RetryTimeout re-issues a request whose replies went missing (lost
	// best-effort reads under impairment/faults); 0 disables.
	RetryTimeout sim.Time
	// MaxRequests caps each session (0 = unbounded); used by tests that
	// run a fixed op list to completion.
	MaxRequests int
	// Txns overrides the per-session request generator (tests); ops still
	// bucket and route exactly like generated ones.
	Txns func(sess int) workload.TxnSource
	// RecordLog keeps a textual request/response log (determinism tests).
	RecordLog bool
	Seed      int64
}

// DefaultConfig returns the reference serving workload: a million-key
// Zipf-skewed KV with 2-op requests, 30% writes, a dash of scans.
func DefaultConfig() Config {
	return Config{
		Service:      KV,
		Keys:         1 << 20,
		ZipfTheta:    0.99,
		OpsPerReq:    2,
		WriteFrac:    0.3,
		ScanFrac:     0.05,
		ScanLen:      8,
		ThinkTime:    1 * sim.Millisecond,
		ServerOpCost: 100 * sim.Nanosecond,
		Seed:         1,
	}
}

// Result is one measurement window's client-observed outcome.
type Result struct {
	// Delivered counts requests completed inside the window; Issued counts
	// requests entering the fabric (including retries).
	Delivered int
	Issued    int
	// Latency percentiles and mean, microseconds, client-observed.
	P50, P99, P999, Mean float64
	// Window is the measured span.
	Window sim.Time
}

// ReqPerSec returns delivered requests per simulated second.
func (r Result) ReqPerSec() float64 {
	if r.Window == 0 {
		return 0
	}
	return float64(r.Delivered) / r.Window.Seconds()
}

// session is one closed-loop client: at most one outstanding request.
type session struct {
	fe      int32  // frontend proc hosting the session
	seq     uint32 // current request sequence
	pending int32  // outstanding reply parts
	stopped bool   // drained frontends stop reissuing
	rng     uint64 // SplitMix64 state
	start   sim.Time
	done    int
	retryEp uint32 // guards the loss-retry timer
	gen     workload.TxnSource
	ops     []workload.Op // current request
}

// reqMsg is one owner's share of a request scattering.
type reqMsg struct {
	Sess int32
	FE   int32
	Seq  uint32
	Ops  []workload.Op
}

// repMsg completes one owner's share back at the frontend.
type repMsg struct {
	Sess int32
	Seq  uint32
	N    uint16
}

// shard is one owner process's state: the data it owns plus a modeled CPU.
type shard struct {
	data    map[uint64]uint64 // key -> write version
	lastSeq map[int32]uint32  // per-session dedup cursor
	cpuBusy sim.Time
	applied uint64 // ops applied (reads + writes)
}

// Tier is a deployed serving tier over a running fabric.
type Tier struct {
	Cfg Config

	cl        *onepipe.Cluster
	eng       *sim.Engine
	sessions  []*session
	frontends []int
	shards    map[int]*shard // owner proc -> state
	zipf      *workload.Zipf
	smr       *smrState

	measuring bool
	hist      stats.Histogram
	delivered int
	issued    int
	winStart  sim.Time
	log       []byte
	started   bool
}

// New deploys the tier over an existing cluster. Sessions are created but
// idle until Start.
func New(cl *onepipe.Cluster, cfg Config) *Tier {
	if cfg.StartSpread == 0 {
		cfg.StartSpread = cfg.ThinkTime
	}
	if cfg.ScanLen <= 0 {
		cfg.ScanLen = 8
	}
	if cfg.OpsPerReq <= 0 {
		cfg.OpsPerReq = 1
	}
	n := cl.NumProcesses()
	t := &Tier{Cfg: cfg, cl: cl, eng: cl.Network().Eng, shards: make(map[int]*shard)}
	if cfg.ZipfTheta > 0 {
		// The shared table is draw-free after construction (sessions feed
		// it their own uniforms via FromU); the throwaway rand.Rand only
		// satisfies the constructor.
		t.zipf = workload.NewZipf(rand.New(rand.NewSource(1)), cfg.Keys, cfg.ZipfTheta)
	}
	switch cfg.Service {
	case KV, Txn:
		if cfg.Servers <= 0 || cfg.Servers > n {
			cfg.Servers = n
			t.Cfg.Servers = n
		}
		for p := 0; p < cfg.Servers; p++ {
			t.shards[p] = newShard()
		}
		if cfg.Servers < n {
			for p := cfg.Servers; p < n; p++ {
				t.frontends = append(t.frontends, p)
			}
		} else {
			for p := 0; p < n; p++ {
				t.frontends = append(t.frontends, p)
			}
		}
	case SMRFabric, SMRRaft:
		if cfg.Replicas <= 0 {
			cfg.Replicas = 3
			t.Cfg.Replicas = 3
		}
		for p := cfg.Replicas; p < n; p++ {
			t.frontends = append(t.frontends, p)
		}
		t.initSMR()
	}
	for p := 0; p < n; p++ {
		t.attach(p)
	}
	t.addSessions(t.frontends, cfg.Clients, 1)
	return t
}

func newShard() *shard {
	return &shard{data: make(map[uint64]uint64), lastSeq: make(map[int32]uint32)}
}

// attach registers the tier's dispatch on one process handle.
func (t *Tier) attach(p int) {
	proc := t.cl.Process(p)
	pi := p
	proc.OnDeliver(func(d onepipe.Delivery) { t.dispatch(pi, d) })
}

// addSessions spreads count new sessions round-robin over the given
// frontend procs, staggering their first requests over StartSpread
// starting at base.
func (t *Tier) addSessions(fes []int, count int, base sim.Time) {
	if count == 0 || len(fes) == 0 {
		return
	}
	first := len(t.sessions)
	for i := 0; i < count; i++ {
		id := first + i
		st := uint64(t.Cfg.Seed)*0x9e3779b97f4a7c15 + uint64(id)*0xd1b54a32d192ed03 + 0x2545f4914f6cdd1d
		s := &session{fe: int32(fes[i%len(fes)]), rng: st}
		if t.Cfg.Txns != nil {
			s.gen = t.Cfg.Txns(id)
		}
		t.sessions = append(t.sessions, s)
	}
	if t.started {
		t.startRange(first, len(t.sessions), base)
	}
}

// Start arms every session's first request.
func (t *Tier) Start() {
	if t.started {
		return
	}
	t.started = true
	t.startRange(0, len(t.sessions), 1)
}

func (t *Tier) startRange(lo, hi int, base sim.Time) {
	spread := t.Cfg.StartSpread
	n := hi - lo
	for i := lo; i < hi; i++ {
		id := i
		at := base + sim.Time(int64(i-lo)*int64(spread)/int64(n))
		t.eng.At(at, func() { t.issue(id) })
	}
}

// issue builds and sends session id's next request; the client-observed
// clock starts here, before any backpressure or batching delay.
func (t *Tier) issue(id int) {
	s := t.sessions[id]
	if s.stopped || (t.Cfg.MaxRequests > 0 && s.done >= t.Cfg.MaxRequests) {
		return
	}
	s.seq++
	s.start = t.eng.Now()
	s.ops = t.nextOps(s)
	t.send(id)
}

// send transmits the current request (also the retry path: same seq, same
// ops, same start time — latency includes every retry).
func (t *Tier) send(id int) {
	s := t.sessions[id]
	if t.smr != nil {
		t.smrSend(id)
		return
	}
	buckets := t.bucketOps(s.ops)
	msgs := make([]onepipe.Message, 0, len(buckets))
	write := false
	var wkey uint64
	for _, b := range buckets {
		size := 16 * len(b.ops)
		for _, op := range b.ops {
			size += op.Value
			if op.Kind == workload.OpWrite && !write {
				write = true
				wkey = op.Key
			}
		}
		msgs = append(msgs, onepipe.Message{
			Dst:  onepipe.ProcID(b.owner),
			Data: &reqMsg{Sess: int32(id), FE: s.fe, Seq: s.seq, Ops: b.ops},
			Size: size,
		})
	}
	s.pending = int32(len(msgs))
	opts := t.sendOpts(write, wkey)
	if err := t.cl.Process(int(s.fe)).Send(msgs, opts...); err != nil {
		// Backpressure / full buffer: hold the request and retry shortly;
		// the wait stays inside the client-observed latency. A closed
		// frontend (crashed or drained host) ends the session instead.
		if errors.Is(err, onepipe.ErrClosed) {
			s.stopped = true
			return
		}
		t.eng.After(2*sim.Microsecond, func() { t.send(id) })
		return
	}
	t.issued++
	t.armRetry(id)
}

// sendOpts maps the request class onto Fabric send options.
func (t *Tier) sendOpts(write bool, wkey uint64) []onepipe.SendOption {
	var opts []onepipe.SendOption
	if write {
		opts = append(opts, onepipe.Reliable())
	}
	if t.Cfg.BatchWindow > 0 {
		opts = append(opts, onepipe.Batched(t.Cfg.BatchWindow))
	}
	if t.Cfg.Conflicts && write {
		opts = append(opts, onepipe.Conflicts(uint32(wkey)|1))
	}
	return opts
}

// armRetry guards against lost best-effort parts (loss profiles, faults).
func (t *Tier) armRetry(id int) {
	if t.Cfg.RetryTimeout <= 0 {
		return
	}
	s := t.sessions[id]
	s.retryEp++
	ep, seq := s.retryEp, s.seq
	t.eng.After(t.Cfg.RetryTimeout, func() {
		if s.retryEp != ep || s.seq != seq || s.pending == 0 {
			return
		}
		t.send(id) // same seq: owners dedup, stale replies are dropped
	})
}

// opBucket groups ops by owner in first-seen order (deterministic emission).
type opBucket struct {
	owner int
	ops   []workload.Op
}

func (t *Tier) owner(key uint64) int { return int(key % uint64(t.Cfg.Servers)) }

func (t *Tier) bucketOps(ops []workload.Op) []opBucket {
	var buckets []opBucket
	for _, op := range ops {
		o := t.owner(op.Key)
		j := -1
		for i := range buckets {
			if buckets[i].owner == o {
				j = i
				break
			}
		}
		if j < 0 {
			j = len(buckets)
			buckets = append(buckets, opBucket{owner: o})
		}
		buckets[j].ops = append(buckets[j].ops, op)
	}
	return buckets
}

// dispatch routes one delivery by payload type: owner work or frontend
// completion (a process can be both).
func (t *Tier) dispatch(p int, d onepipe.Delivery) {
	switch m := d.Data.(type) {
	case *reqMsg:
		if t.smr != nil {
			t.smrRequest(p, m)
			return
		}
		t.serveReq(p, m)
	case *repMsg:
		t.complete(m)
	default:
		if t.smr != nil {
			t.smrDeliver(p, d)
		}
	}
}

// serveReq runs one owner's share through the CPU station, applies, and
// replies through the fabric.
func (t *Tier) serveReq(p int, m *reqMsg) {
	sh := t.shards[p]
	if sh == nil {
		return
	}
	dup := m.Seq <= sh.lastSeq[m.Sess]
	if !dup {
		sh.lastSeq[m.Sess] = m.Seq
	}
	work := len(m.Ops)
	if dup {
		work = 0
	}
	t.station(sh, work, func() {
		if !dup {
			for _, op := range m.Ops {
				sh.apply(op)
			}
		}
		t.reply(p, m)
	})
}

// station models server CPU as a FIFO: fn runs once nops clear it.
func (t *Tier) station(sh *shard, nops int, fn func()) {
	now := t.eng.Now()
	if sh.cpuBusy < now {
		sh.cpuBusy = now
	}
	sh.cpuBusy += sim.Time(nops) * t.Cfg.ServerOpCost
	t.eng.At(sh.cpuBusy, fn)
}

func (sh *shard) apply(op workload.Op) {
	if op.Kind == workload.OpWrite {
		sh.data[op.Key]++
	}
	sh.applied++
}

func (t *Tier) reply(p int, m *reqMsg) {
	msg := []onepipe.Message{{
		Dst:  onepipe.ProcID(m.FE),
		Data: &repMsg{Sess: m.Sess, Seq: m.Seq, N: uint16(len(m.Ops))},
		Size: 16,
	}}
	if err := t.cl.Process(p).Send(msg); err != nil {
		if errors.Is(err, onepipe.ErrClosed) {
			return
		}
		t.eng.After(2*sim.Microsecond, func() { t.reply(p, m) })
	}
}

// complete handles one reply part at the frontend; the last part closes
// the request, records client-observed latency, and schedules the next
// think.
func (t *Tier) complete(m *repMsg) {
	s := t.sessions[m.Sess]
	if m.Seq != s.seq || s.pending == 0 {
		return // stale reply from a superseded retry
	}
	s.pending--
	if s.pending > 0 {
		return
	}
	s.retryEp++ // cancel the loss-retry timer
	now := t.eng.Now()
	lat := now - s.start
	s.done++
	if t.measuring && !s.stopped {
		t.delivered++
		t.hist.Add(float64(lat) / 1000) // µs
	}
	if t.Cfg.RecordLog {
		t.log = append(t.log, fmt.Sprintf("s=%d q=%d at=%d lat=%d n=%d\n",
			m.Sess, m.Seq, now, lat, len(s.ops))...)
	}
	if s.stopped || (t.Cfg.MaxRequests > 0 && s.done >= t.Cfg.MaxRequests) {
		return
	}
	id := int(m.Sess)
	t.eng.After(workload.ExpDraw(&s.rng, t.Cfg.ThinkTime), func() { t.issue(id) })
}

// --- measurement windows ---

// StartMeasure opens a measurement window.
func (t *Tier) StartMeasure() {
	t.measuring = true
	t.delivered, t.issued = 0, 0
	t.hist.Reset()
	t.winStart = t.eng.Now()
}

// StopMeasure closes the window and returns its Result.
func (t *Tier) StopMeasure() Result {
	t.measuring = false
	return Result{
		Delivered: t.delivered,
		Issued:    t.issued,
		P50:       t.hist.Percentile(50),
		P99:       t.hist.Percentile(99),
		P999:      t.hist.Percentile(99.9),
		Mean:      t.hist.Mean(),
		Window:    t.eng.Now() - t.winStart,
	}
}

// RunLoad is the standard figure drive: start the pool, warm up, measure
// one window.
func (t *Tier) RunLoad(warmup, window sim.Time) Result {
	t.Start()
	t.cl.Run(warmup)
	t.StartMeasure()
	t.cl.Run(window)
	return t.StopMeasure()
}

// RunToCompletion drives until every session finished Cfg.MaxRequests (or
// limit elapses); it returns true on full completion.
func (t *Tier) RunToCompletion(limit sim.Time) bool {
	t.Start()
	deadline := t.eng.Now() + limit
	for t.eng.Now() < deadline {
		done := true
		for _, s := range t.sessions {
			if !s.stopped && s.done < t.Cfg.MaxRequests {
				done = false
				break
			}
		}
		if done {
			return true
		}
		t.cl.Run(20 * sim.Microsecond)
	}
	return false
}

// --- elasticity hooks ---

// AddFrontends attaches newly joined processes as frontends and grows the
// pool by count sessions on them (starting immediately, staggered).
func (t *Tier) AddFrontends(procs []int, count int) {
	for _, p := range procs {
		t.attach(p)
	}
	t.frontends = append(t.frontends, procs...)
	t.addSessions(procs, count, t.eng.Now()+1)
}

// StopFrontend quiesces every session on proc p (an operational drain:
// traffic stops first, then the host leaves the fabric). It returns how
// many sessions it stopped.
func (t *Tier) StopFrontend(p int) int {
	n := 0
	for _, s := range t.sessions {
		if int(s.fe) == p && !s.stopped {
			s.stopped = true
			n++
		}
	}
	return n
}

// Sessions returns the pool size; Completed sums finished requests.
func (t *Tier) Sessions() int { return len(t.sessions) }

// Completed returns total requests finished since Start.
func (t *Tier) Completed() int {
	n := 0
	for _, s := range t.sessions {
		n += s.done
	}
	return n
}

// Log returns the recorded request/response log (RecordLog).
func (t *Tier) Log() []byte { return t.log }

// StateDigest folds every shard's (owner, key, version) triples — sorted,
// so map order never leaks in — into one FNV-1a digest, plus total ops
// applied. Identical digests across shard counts / harnesses mean
// identical serving state.
func (t *Tier) StateDigest() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	owners := make([]int, 0, len(t.shards))
	for o := range t.shards {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		sh := t.shards[o]
		keys := make([]uint64, 0, len(sh.data))
		for k := range sh.data {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		mix(uint64(o))
		for _, k := range keys {
			mix(k)
			mix(sh.data[k])
		}
	}
	if t.smr != nil {
		for _, d := range t.smrDigests() {
			mix(d)
		}
	}
	return h
}

// AppliedOps sums ops applied across owners (reads + writes).
func (t *Tier) AppliedOps() uint64 {
	var n uint64
	for _, sh := range t.shards {
		n += sh.applied
	}
	return n
}
