package serve

import (
	"errors"
	"math/rand"

	"onepipe"
	"onepipe/internal/raft"
	"onepipe/internal/sim"
	"onepipe/internal/workload"
)

// smrState holds the replicated-service side of the tier: R replica
// processes running one state machine each, fed either by the fabric's
// total order directly (SMRFabric: the delivery order IS the log, no
// leader) or by the in-tree Raft core whose RPCs ride best-effort fabric
// scatterings (SMRRaft: the leader sequences and replies).
type smrState struct {
	replicas []int
	machines []*replicaSM
	nodes    []*raft.Node // SMRRaft only
}

// replicaSM is one replica's state machine: the replicated KV plus an
// order-sensitive digest over the command sequence it applied.
type replicaSM struct {
	data    map[uint64]uint64
	lastSeq map[int32]uint32
	cpuBusy sim.Time
	digest  uint64
	count   uint64
}

func (t *Tier) initSMR() {
	r := t.Cfg.Replicas
	st := &smrState{}
	for p := 0; p < r; p++ {
		st.replicas = append(st.replicas, p)
		st.machines = append(st.machines, &replicaSM{
			data:    make(map[uint64]uint64),
			lastSeq: make(map[int32]uint32),
		})
	}
	t.smr = st
	if t.Cfg.Service != SMRRaft {
		return
	}
	peers := make([]int, r)
	for i := range peers {
		peers[i] = i
	}
	// Serving-grade timers: the management-plane defaults (200us
	// heartbeat, ms elections) would leave the window leaderless.
	rcfg := raft.Config{
		HeartbeatInterval:  20 * sim.Microsecond,
		ElectionTimeoutMin: 150 * sim.Microsecond,
		ElectionTimeoutMax: 300 * sim.Microsecond,
	}
	for i := 0; i < r; i++ {
		i := i
		tr := transportFn(func(m raft.Message) {
			msg := []onepipe.Message{{
				Dst:  onepipe.ProcID(m.To),
				Data: m,
				Size: 64 + 32*len(m.Entries),
			}}
			_ = t.cl.Process(m.From).Send(msg)
		})
		rng := rand.New(rand.NewSource(t.Cfg.Seed + int64(i)*104729))
		node := raft.NewNode(i, peers, tr, t.eng, rng, rcfg,
			func(index int, cmd any) { t.raftApply(i, index, cmd) })
		st.nodes = append(st.nodes, node)
	}
}

// transportFn adapts a closure to raft.Transport.
type transportFn func(raft.Message)

func (f transportFn) Send(m raft.Message) { f(m) }

// smrSend issues session id's command. Fabric mode scatters it reliably to
// every replica in one position of the total order; Raft mode sends it to
// the current leader.
func (t *Tier) smrSend(id int) {
	s := t.sessions[id]
	size := 16 * len(s.ops)
	for _, op := range s.ops {
		size += op.Value
	}
	req := &reqMsg{Sess: int32(id), FE: s.fe, Seq: s.seq, Ops: s.ops}
	if t.Cfg.Service == SMRFabric {
		msgs := make([]onepipe.Message, 0, len(t.smr.replicas))
		for _, rp := range t.smr.replicas {
			msgs = append(msgs, onepipe.Message{Dst: onepipe.ProcID(rp), Data: req, Size: size})
		}
		s.pending = 1 // one reply, from the designated responder
		opts := append(t.sendOpts(false, 0), onepipe.Reliable())
		if err := t.cl.Process(int(s.fe)).Send(msgs, opts...); err != nil {
			if errors.Is(err, onepipe.ErrClosed) {
				s.stopped = true
				return
			}
			t.eng.After(2*sim.Microsecond, func() { t.send(id) })
			return
		}
		t.issued++
		t.armRetry(id)
		return
	}
	// Raft baseline: route to the leader; if the group is mid-election,
	// wait it out.
	lead := t.raftLeader()
	if lead < 0 {
		t.eng.After(50*sim.Microsecond, func() { t.send(id) })
		return
	}
	s.pending = 1
	msg := []onepipe.Message{{Dst: onepipe.ProcID(lead), Data: req, Size: size}}
	if err := t.cl.Process(int(s.fe)).Send(msg); err != nil {
		if errors.Is(err, onepipe.ErrClosed) {
			s.stopped = true
			return
		}
		t.eng.After(2*sim.Microsecond, func() { t.send(id) })
		return
	}
	t.issued++
	t.armRetry(id)
}

// raftLeader returns the current leader's replica index, or -1.
func (t *Tier) raftLeader() int {
	for i, n := range t.smr.nodes {
		if !n.Stopped() && n.Role() == raft.Leader {
			return i
		}
	}
	return -1
}

// WaitSMRReady advances time until the service can sequence commands
// (Raft: a leader exists; fabric mode is ready immediately).
func (t *Tier) WaitSMRReady(limit sim.Time) bool {
	if t.smr == nil || t.Cfg.Service != SMRRaft {
		return true
	}
	deadline := t.eng.Now() + limit
	for t.raftLeader() < 0 {
		if t.eng.Now() >= deadline {
			return false
		}
		t.cl.Run(10 * sim.Microsecond)
	}
	return true
}

// smrRequest handles a client command delivered at replica p.
func (t *Tier) smrRequest(p int, m *reqMsg) {
	if p >= len(t.smr.machines) {
		return
	}
	if t.Cfg.Service == SMRFabric {
		// The fabric already sequenced this command identically at every
		// replica: apply in delivery order through the CPU station.
		sm := t.smr.machines[p]
		dup := m.Seq <= sm.lastSeq[m.Sess]
		if !dup {
			sm.lastSeq[m.Sess] = m.Seq
		}
		work := len(m.Ops)
		if dup {
			work = 0
		}
		t.smrStation(sm, work, func() {
			if !dup {
				sm.applyCmd(m)
			}
			if int(m.Sess)%len(t.smr.machines) == p {
				t.reply(p, m)
			}
		})
		return
	}
	// Raft: only the leader sequences; followers forward.
	node := t.smr.nodes[p]
	if node.Role() == raft.Leader {
		if _, _, ok := node.Propose(m); ok {
			return
		}
	}
	lead := t.raftLeader()
	if lead < 0 || lead == p {
		// Leaderless (or raced): the client's retry timer re-drives it.
		return
	}
	size := 16 * len(m.Ops)
	_ = t.cl.Process(p).Send([]onepipe.Message{{Dst: onepipe.ProcID(lead), Data: m, Size: size}})
}

// raftApply is each node's committed-entry callback: every replica applies
// in log order; the leader answers the client.
func (t *Tier) raftApply(replica, index int, cmd any) {
	m, ok := cmd.(*reqMsg)
	if !ok {
		return
	}
	sm := t.smr.machines[replica]
	dup := m.Seq <= sm.lastSeq[m.Sess]
	if !dup {
		sm.lastSeq[m.Sess] = m.Seq
	}
	work := len(m.Ops)
	if dup {
		work = 0
	}
	leader := t.smr.nodes[replica].Role() == raft.Leader
	t.smrStation(sm, work, func() {
		if !dup {
			sm.applyCmd(m)
		}
		if leader {
			t.reply(replica, m)
		}
	})
}

// smrDeliver routes non-client payloads at a replica (Raft RPCs).
func (t *Tier) smrDeliver(p int, d onepipe.Delivery) {
	m, ok := d.Data.(raft.Message)
	if !ok || t.smr.nodes == nil || p >= len(t.smr.nodes) {
		return
	}
	t.smr.nodes[p].Handle(m)
}

// smrStation is the replica CPU analogue of Tier.station.
func (t *Tier) smrStation(sm *replicaSM, nops int, fn func()) {
	now := t.eng.Now()
	if sm.cpuBusy < now {
		sm.cpuBusy = now
	}
	sm.cpuBusy += sim.Time(nops) * t.Cfg.ServerOpCost
	t.eng.At(sm.cpuBusy, fn)
}

// applyCmd folds one command into the machine: KV effects plus an
// order-sensitive digest (value = 31*value + f(cmd)), so any cross-replica
// ordering difference diverges the digests.
func (sm *replicaSM) applyCmd(m *reqMsg) {
	sm.count++
	h := uint64(uint32(m.Sess))<<32 | uint64(m.Seq)
	for _, op := range m.Ops {
		if op.Kind == workload.OpWrite {
			sm.data[op.Key]++
		}
		h = h*1099511628211 + op.Key
	}
	sm.digest = sm.digest*31 + h
}

// smrDigests returns each replica's (digest, count) folded to one word —
// identical across correct replicas.
func (t *Tier) smrDigests() []uint64 {
	out := make([]uint64, 0, len(t.smr.machines))
	for _, sm := range t.smr.machines {
		out = append(out, sm.digest*2654435761+sm.count)
	}
	return out
}

// SMRApplied returns per-replica applied-command counts (agreement checks).
func (t *Tier) SMRApplied() []uint64 {
	if t.smr == nil {
		return nil
	}
	out := make([]uint64, 0, len(t.smr.machines))
	for _, sm := range t.smr.machines {
		out = append(out, sm.count)
	}
	return out
}

// SMRDigest returns replica r's order-sensitive state digest.
func (t *Tier) SMRDigest(r int) uint64 {
	return t.smr.machines[r].digest
}
