package serve

import (
	"bytes"
	"math/rand"
	"testing"

	"onepipe"
	"onepipe/internal/kvstore"
	"onepipe/internal/sim"
	"onepipe/internal/workload"
)

func testCluster(shards int) *onepipe.Cluster {
	cfg := onepipe.Defaults() // 2 pods, 8 hosts, 1 proc/host
	cfg.Shards = shards
	return onepipe.NewCluster(cfg)
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Clients = 64
	cfg.Keys = 1 << 12
	cfg.ThinkTime = 40 * sim.Microsecond
	cfg.Seed = 7
	return cfg
}

// TestKVClosedLoop checks the tier sustains a closed loop: requests
// complete, latency is recorded, server state advances.
func TestKVClosedLoop(t *testing.T) {
	tier := New(testCluster(0), smallCfg())
	res := tier.RunLoad(60*sim.Microsecond, 300*sim.Microsecond)
	if res.Delivered == 0 {
		t.Fatalf("no requests completed: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("broken percentiles: %+v", res)
	}
	if tier.AppliedOps() == 0 {
		t.Fatal("servers applied nothing")
	}
	if res.Issued == 0 || tier.Completed() < res.Delivered {
		t.Fatalf("accounting broken: %+v completed=%d", res, tier.Completed())
	}
}

// TestTxnMix smoke-checks the tpcc-style service.
func TestTxnMix(t *testing.T) {
	cfg := smallCfg()
	cfg.Service = Txn
	tier := New(testCluster(0), cfg)
	res := tier.RunLoad(60*sim.Microsecond, 300*sim.Microsecond)
	if res.Delivered == 0 || tier.AppliedOps() == 0 {
		t.Fatalf("txn service idle: %+v applied=%d", res, tier.AppliedOps())
	}
}

// TestShardDeterminism pins the acceptance criterion: client
// request/response logs are byte-identical across -shards 1/2/4 on the
// lockstep drive, and so are delivered counts and server state digests.
func TestShardDeterminism(t *testing.T) {
	type out struct {
		log       []byte
		digest    uint64
		delivered int
	}
	run := func(shards int) out {
		cfg := smallCfg()
		cfg.RecordLog = true
		tier := New(testCluster(shards), cfg)
		res := tier.RunLoad(60*sim.Microsecond, 300*sim.Microsecond)
		return out{log: tier.Log(), digest: tier.StateDigest(), delivered: res.Delivered}
	}
	base := run(1)
	if len(base.log) == 0 {
		t.Fatal("empty request/response log")
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if got.delivered != base.delivered {
			t.Fatalf("shards=%d delivered %d != %d", shards, got.delivered, base.delivered)
		}
		if got.digest != base.digest {
			t.Fatalf("shards=%d state digest %x != %x", shards, got.digest, base.digest)
		}
		if !bytes.Equal(got.log, base.log) {
			t.Fatalf("shards=%d request/response log differs (len %d vs %d)",
				shards, len(got.log), len(base.log))
		}
	}
}

// replayTxns feeds a fixed transaction list, then pads with read-only
// no-ops (reads never change versions, so the digest is unaffected).
type replayTxns struct {
	list [][]workload.Op
	i    int
}

func (r *replayTxns) Next() []workload.Op {
	if r.i < len(r.list) {
		ops := r.list[r.i]
		r.i++
		return ops
	}
	return []workload.Op{{Kind: workload.OpRead, Key: 0}}
}

// TestKVMatchesLegacyKVStore pins the serve tier's degenerate config —
// every proc both owner and frontend, one session per proc, pipeline depth
// one — against the legacy internal/kvstore harness: the same per-client
// transaction lists must leave byte-identical (owner, key, version) state
// in both.
func TestKVMatchesLegacyKVStore(t *testing.T) {
	const procs, perClient = 8, 6
	keys := uint64(1 << 10)
	lists := make([][][]workload.Op, procs)
	for c := range lists {
		rng := rand.New(rand.NewSource(int64(1000 + c)))
		gen := workload.NewTxnGen(rng, workload.NewUniform(rng, keys), 2, 0.5)
		for i := 0; i < perClient; i++ {
			lists[c] = append(lists[c], gen.Next())
		}
	}

	// Serving tier, run to completion.
	scfg := Config{
		Service:      KV,
		Clients:      procs,
		Keys:         keys,
		ThinkTime:    5 * sim.Microsecond,
		ServerOpCost: 300 * sim.Nanosecond,
		MaxRequests:  perClient,
		Seed:         1,
		Txns: func(sess int) workload.TxnSource {
			return &replayTxns{list: lists[sess]}
		},
	}
	tier := New(testCluster(0), scfg)
	if !tier.RunToCompletion(50 * sim.Millisecond) {
		t.Fatal("serve tier did not complete the fixed transaction lists")
	}
	if got := tier.Completed(); got != procs*perClient {
		t.Fatalf("serve completed %d requests, want %d", got, procs*perClient)
	}

	// Legacy harness over the same lists (pipeline depth 1).
	kcfg := kvstore.DefaultConfig()
	kcfg.Keys = keys
	kcfg.Outstanding = 1
	kcfg.Txns = func(client int, _ *rand.Rand) workload.TxnSource {
		return &replayTxns{list: lists[client]}
	}
	kcl := onepipe.NewCluster(onepipe.Defaults())
	st := kvstore.New(kcl.Core(), kvstore.Mode1Pipe, kcfg)
	st.Run(500*sim.Microsecond, 2*sim.Millisecond)

	if sd, kd := tier.StateDigest(), st.StateDigest(); sd != kd {
		t.Fatalf("serve state digest %x != legacy kvstore digest %x", sd, kd)
	}
}

// TestSMRFabricAgreement: with the fabric's delivery order as the log,
// every replica applies the identical command sequence.
func TestSMRFabricAgreement(t *testing.T) {
	cfg := smallCfg()
	cfg.Service = SMRFabric
	cfg.Replicas = 3
	cfg.Clients = 16
	cfg.MaxRequests = 5
	cfg.ThinkTime = 10 * sim.Microsecond
	tier := New(testCluster(0), cfg)
	if !tier.RunToCompletion(50 * sim.Millisecond) {
		t.Fatal("smr-fabric sessions did not complete")
	}
	counts := tier.SMRApplied()
	for r := 1; r < len(counts); r++ {
		if counts[r] != counts[0] {
			t.Fatalf("replica %d applied %d commands, replica 0 applied %d", r, counts[r], counts[0])
		}
		if tier.SMRDigest(r) != tier.SMRDigest(0) {
			t.Fatalf("replica %d state digest diverged", r)
		}
	}
	if counts[0] != uint64(cfg.Clients*cfg.MaxRequests) {
		t.Fatalf("applied %d commands, want %d", counts[0], cfg.Clients*cfg.MaxRequests)
	}
}

// TestSMRRaftAgreement: the Raft baseline reaches the same cross-replica
// agreement (commands applied in log order everywhere, leader replies).
func TestSMRRaftAgreement(t *testing.T) {
	cfg := smallCfg()
	cfg.Service = SMRRaft
	cfg.Replicas = 3
	cfg.Clients = 16
	cfg.MaxRequests = 5
	cfg.ThinkTime = 10 * sim.Microsecond
	tier := New(testCluster(0), cfg)
	if !tier.WaitSMRReady(5 * sim.Millisecond) {
		t.Fatal("raft group elected no leader")
	}
	if !tier.RunToCompletion(50 * sim.Millisecond) {
		t.Fatal("smr-raft sessions did not complete")
	}
	counts := tier.SMRApplied()
	want := uint64(cfg.Clients * cfg.MaxRequests)
	for r := range counts {
		if counts[r] != want {
			t.Fatalf("replica %d applied %d commands, want %d", r, counts[r], want)
		}
		if tier.SMRDigest(r) != tier.SMRDigest(0) {
			t.Fatalf("replica %d state digest diverged", r)
		}
	}
}

// TestFrontendCrashUnderLoad is the serve-mode fault scenario: killing a
// pure-frontend host mid-load stops its sessions but the rest of the tier
// keeps serving — and the whole faulted run replays deterministically.
func TestFrontendCrashUnderLoad(t *testing.T) {
	run := func() (int, int, uint64) {
		cfg := smallCfg()
		cfg.Servers = 4 // procs 0-3 own shards; hosts 4-7 are pure frontends
		cfg.Clients = 48
		cfg.RetryTimeout = 60 * sim.Microsecond
		cl := testCluster(0)
		tier := New(cl, cfg)
		tier.Start()
		cl.Run(100 * sim.Microsecond)
		cl.KillHost(6)
		tier.StartMeasure()
		cl.Run(300 * sim.Microsecond)
		res := tier.StopMeasure()
		return res.Delivered, tier.Completed(), tier.StateDigest()
	}
	d1, c1, g1 := run()
	if d1 == 0 {
		t.Fatal("tier stopped serving after a frontend crash")
	}
	d2, c2, g2 := run()
	if d1 != d2 || c1 != c2 || g1 != g2 {
		t.Fatalf("faulted run not deterministic: (%d,%d,%x) vs (%d,%d,%x)", d1, c1, g1, d2, c2, g2)
	}
}
