//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-regression tests can skip themselves: the detector's
// instrumentation adds allocations that testing.AllocsPerRun would count
// against the hot path.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
