package livenet

import (
	"sync"
	"testing"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

func TestLiveDelivery(t *testing.T) {
	n := New(DefaultConfig(4, 1))
	defer n.Stop()
	var mu sync.Mutex
	var got []any
	n.Do(func() {
		n.Proc(1).OnDeliver = func(d core.Delivery) {
			mu.Lock()
			got = append(got, d.Data)
			mu.Unlock()
		}
	})
	if err := n.Send(0, false, []core.Message{{Dst: 1, Data: "live", Size: 64}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(got) == 1
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "live" {
		t.Fatalf("got %v", got)
	}
}

func TestLiveTotalOrder(t *testing.T) {
	n := New(DefaultConfig(4, 1))
	defer n.Stop()
	var mu sync.Mutex
	logs := make([][]sim.Time, 4)
	n.Do(func() {
		for i := 0; i < 4; i++ {
			i := i
			n.Proc(i).OnDeliver = func(d core.Delivery) {
				mu.Lock()
				logs[i] = append(logs[i], d.TS)
				mu.Unlock()
			}
		}
	})
	// Concurrent senders from multiple goroutines.
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				var msgs []core.Message
				for q := 0; q < 4; q++ {
					if q != p {
						msgs = append(msgs, core.Message{Dst: netsim.ProcID(q), Size: 64})
					}
				}
				n.Send(p, false, msgs)
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for i, log := range logs {
		total += len(log)
		for j := 1; j < len(log); j++ {
			if log[j] < log[j-1] {
				t.Fatalf("proc %d delivered out of order at %d", i, j)
			}
		}
	}
	if total == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestLiveReliable(t *testing.T) {
	n := New(DefaultConfig(3, 1))
	defer n.Stop()
	var mu sync.Mutex
	delivered := 0
	n.Do(func() {
		for i := 1; i < 3; i++ {
			n.Proc(i).OnDeliver = func(d core.Delivery) {
				mu.Lock()
				delivered++
				mu.Unlock()
			}
		}
	})
	n.Send(0, true, []core.Message{{Dst: 1, Size: 64}, {Dst: 2, Size: 64}})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := delivered == 2
		mu.Unlock()
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("reliable scattering delivered %d of 2", delivered)
}
