// Package livenet runs the same lib1pipe state machines as the simulator,
// but in real time: hosts hang off a software switch that performs barrier
// aggregation (§4.1) over in-process links, and all protocol state is
// driven by one event-loop goroutine fed by channels and wall-clock
// timers. It exists to demonstrate that internal/core is genuinely
// substrate-independent — the examples and cmd/onepipe-demo run on it with
// real elapsed microseconds.
//
// The fabric is a single-switch star: every host connects to one software
// switch that keeps a barrier register per host link and relays the
// aggregated minimum, which is exactly the one-rack slice of the Clos
// model (deeper hierarchies compose the same aggregation step).
package livenet

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
)

// Config parameterizes the live fabric.
type Config struct {
	Hosts        int
	ProcsPerHost int
	// LinkDelay is the emulated one-way host-switch latency.
	LinkDelay time.Duration
	// BeaconInterval is T_beacon in wall-clock time.
	BeaconInterval time.Duration
	// LossRate drops forwarded data-plane packets at the switch (the
	// in-process links never lose on their own, so the retransmission
	// machinery is exercised by injection, as in udpnet).
	//
	// Deprecated: use Impair with a netsim.Impairment{Loss: rate}. When
	// both are set, the nonzero LossRate takes precedence over the
	// impairment's uniform Loss (its other components still apply).
	LossRate float64
	// Seed seeds the loss RNG; zero draws from the wall clock.
	Seed int64
	// Impair, when non-nil, degrades data-plane packets at the switch with
	// the full composable model (uniform loss, burst loss, jitter, extra
	// delay) — the live-fabric counterpart of netsim.Config.Impair. The
	// fabric has one switch, so one Impairment covers every path.
	Impair *netsim.Impairment
	// Endpoint overrides the lib1pipe configuration.
	Endpoint *core.Config
	// Trace installs a lifecycle tracer (internal/obs) on every host.
	Trace bool
	// DebugAddr, if non-empty, serves /debug/vars, /debug/pprof and the
	// live /debug/onepipe span breakdown on this address.
	DebugAddr string
}

// DefaultConfig returns a small fabric with millisecond-scale timing
// (coarse enough for wall-clock timers to be meaningful).
func DefaultConfig(hosts, procsPerHost int) Config {
	return Config{
		Hosts:          hosts,
		ProcsPerHost:   procsPerHost,
		LinkDelay:      200 * time.Microsecond,
		BeaconInterval: 1 * time.Millisecond,
	}
}

// Net is a running live fabric.
type Net struct {
	cfg  Config
	ecfg core.Config // resolved endpoint config, reused by runtime joins
	loop chan func()
	done chan struct{}
	wg   sync.WaitGroup
	start time.Time

	hosts []*core.Host
	procs []*core.Proc
	// drained marks hosts that have gracefully left: their uplink register
	// is excluded from aggregation and the switch drops traffic toward
	// them. Touched only on the loop.
	drained []bool

	// Switch state: per-host-uplink barrier registers.
	regBE, regC []sim.Time
	outBE, outC sim.Time
	rng         *rand.Rand // loss injection; touched only on the loop
	// imp applies Config.Impair (own RNG per the impairment determinism
	// contract; touched only on the loop).
	imp *netsim.ImpairState
	// lastFwd records, per downlink, when the switch last forwarded a data
	// packet: forwarded packets are restamped with the aggregated barrier,
	// so a recently-active downlink needs no standalone beacon (§4.2
	// piggybacking). Touched only on the loop.
	lastFwd []time.Time

	traces []*obs.Trace
	debug  *http.Server

	stopOnce sync.Once
}

// hostWire adapts one host to the loop: Now is wall-clock nanoseconds
// since fabric start (all hosts share one clock — perfectly synchronized,
// the degenerate case of the clock model).
type hostWire struct {
	n    *Net
	host int
}

func (w hostWire) Now() sim.Time { return sim.Time(time.Since(w.n.start)) }

func (w hostWire) After(d sim.Time, fn func()) {
	time.AfterFunc(time.Duration(d), func() { w.n.post(fn) })
}

func (w hostWire) Send(pkt *netsim.Packet) {
	// Host -> switch link with propagation delay.
	n := w.n
	host := w.host
	time.AfterFunc(n.cfg.LinkDelay, func() {
		n.post(func() { n.switchReceive(host, pkt) })
	})
}

// New starts the fabric: the loop goroutine, per-host lib1pipe runtimes,
// and the switch beacon ticker.
func New(cfg Config) *Net {
	if cfg.ProcsPerHost <= 0 {
		cfg.ProcsPerHost = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	n := &Net{
		cfg:   cfg,
		loop:  make(chan func(), 4096),
		done:  make(chan struct{}),
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
	}
	if cfg.Impair != nil && *cfg.Impair != (netsim.Impairment{}) {
		imp := *cfg.Impair
		if cfg.LossRate > 0 {
			imp.Loss = 0 // legacy knob wins the uniform component
		}
		n.imp = netsim.NewImpairState(&imp, seed, 0)
	}
	n.wg.Add(1)
	go n.run()

	ecfg := core.DefaultConfig()
	if cfg.Endpoint != nil {
		ecfg = *cfg.Endpoint
	}
	ecfg.BeaconInterval = sim.Time(cfg.BeaconInterval)
	ecfg.UseDataBarriers = true
	// Wall-clock timers are coarse: scale protocol timeouts with the link
	// delay.
	ecfg.RTO = 20 * sim.Time(cfg.LinkDelay)
	ecfg.SendFailTimeout = 100 * sim.Time(cfg.LinkDelay)

	n.ecfg = ecfg

	ready := make(chan struct{})
	n.post(func() {
		for h := 0; h < cfg.Hosts; h++ {
			n.addHost()
		}
		close(ready)
	})
	<-ready

	if cfg.DebugAddr != "" {
		if srv, err := obs.ServeDebug(cfg.DebugAddr, n.traceMap); err == nil {
			n.debug = srv
		}
	}

	// Switch beacon ticker: relay the aggregated barrier to every host.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		tick := time.NewTicker(cfg.BeaconInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				n.post(n.relayBeacons)
			case <-n.done:
				return
			}
		}
	}()
	return n
}

// run is the single goroutine that owns all protocol state.
func (n *Net) run() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.loop:
			fn()
		case <-n.done:
			// Drain what is already queued, then exit.
			for {
				select {
				case fn := <-n.loop:
					fn()
				default:
					return
				}
			}
		}
	}
}

func (n *Net) post(fn func()) {
	select {
	case n.loop <- fn:
	case <-n.done:
	}
}

// addHost creates host len(n.hosts) on the loop: lib1pipe runtime, stuck
// hook, procs, and a fresh uplink register pair seeded at the current
// aggregate (everything a live host emits from now on carries at least
// that barrier, so admitting the link can never regress the minimum).
func (n *Net) addHost() *core.Host {
	hi := len(n.hosts)
	be, c := n.aggregate()
	eff := be
	if c > eff {
		eff = c
	}
	n.regBE = append(n.regBE, eff)
	n.regC = append(n.regC, eff)
	n.lastFwd = append(n.lastFwd, time.Time{})
	n.drained = append(n.drained, false)
	host := core.NewHost(hi, hostWire{n: n, host: hi}, n.ecfg)
	if n.cfg.Trace {
		host.Obs = obs.NewTrace()
		n.traces = append(n.traces, host.Obs)
	}
	// All hosts share the wall clock, so the floor force is trivially
	// satisfied; setting it keeps the register promise independent of
	// that reasoning. The stuck hook is the degenerate controller: a
	// scattering stuck toward a drained host resolves as send-failure.
	host.SetFloor(n.Now())
	host.OnStuck = func(src, dst netsim.ProcID, ts sim.Time) {
		n.post(func() {
			dh := int(dst) / n.cfg.ProcsPerHost
			if dh >= 0 && dh < len(n.drained) && n.drained[dh] {
				host.ResolveUnreachable(dst, ts)
			}
		})
	}
	n.hosts = append(n.hosts, host)
	host.Start()
	for p := 0; p < n.cfg.ProcsPerHost; p++ {
		id := netsim.ProcID(hi*n.cfg.ProcsPerHost + p)
		n.procs = append(n.procs, host.AddProc(id))
	}
	return host
}

// Join attaches a new host to the running fabric and returns its index.
// Its procs occupy the next ProcsPerHost process IDs.
func (n *Net) Join() int {
	var hi int
	n.Do(func() { hi = len(n.hosts); n.addHost() })
	return hi
}

// Drain gracefully removes a host: sends are refused immediately, the
// send window flushes, then the host leaves aggregation and stops.
// Blocks until the drain completes. Peers' stuck sends toward the
// departed host resolve via send-failure.
func (n *Net) Drain(host int) error {
	errc := make(chan error, 1)
	fin := make(chan struct{})
	n.post(func() {
		if host < 0 || host >= len(n.hosts) {
			errc <- fmt.Errorf("livenet: no such host %d", host)
			close(fin)
			return
		}
		if n.drained[host] {
			errc <- fmt.Errorf("livenet: host %d already drained", host)
			close(fin)
			return
		}
		h := n.hosts[host]
		errc <- nil
		h.Drain(func() {
			n.drained[host] = true
			h.Stop()
			close(fin)
		})
	})
	if err := <-errc; err != nil {
		return err
	}
	select {
	case <-fin:
	case <-n.done:
	}
	return nil
}

// Drained reports whether a host has gracefully left.
func (n *Net) Drained(host int) bool {
	var d bool
	n.Do(func() { d = host >= 0 && host < len(n.drained) && n.drained[host] })
	return d
}

// switchReceive executes eq. 4.1 for a packet arriving on a host uplink
// and forwards it toward its destination host.
func (n *Net) switchReceive(fromHost int, pkt *netsim.Packet) {
	if n.drained[fromHost] {
		netsim.PutPacket(pkt) // straggler from a departed host
		return
	}
	if pkt.BarrierBE > n.regBE[fromHost] {
		n.regBE[fromHost] = pkt.BarrierBE
	}
	if pkt.BarrierC > n.regC[fromHost] {
		n.regC[fromHost] = pkt.BarrierC
	}
	switch pkt.Kind {
	case netsim.KindBeacon, netsim.KindCommit:
		netsim.PutPacket(pkt)
		return // consumed: registers updated
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		netsim.PutPacket(pkt)
		return // injected loss: barrier registers updated, packet gone
	}
	delay := n.cfg.LinkDelay
	if n.imp != nil {
		now := sim.Time(time.Since(n.start))
		if n.imp.Drop(now) {
			netsim.PutPacket(pkt)
			return // impairment loss: registers updated, packet gone
		}
		delay += time.Duration(n.imp.Delay(now))
	}
	be, c := n.aggregate()
	pkt.BarrierBE, pkt.BarrierC = be, c
	dstHost := int(pkt.Dst) / n.cfg.ProcsPerHost
	if dstHost < 0 || dstHost >= len(n.hosts) || n.drained[dstHost] {
		netsim.PutPacket(pkt)
		return
	}
	n.lastFwd[dstHost] = time.Now()
	time.AfterFunc(delay, func() {
		n.post(func() { n.hosts[dstHost].HandlePacket(pkt) })
	})
}

func (n *Net) aggregate() (be, c sim.Time) {
	first := true
	var minBE, minC sim.Time
	for i := 0; i < len(n.regBE); i++ {
		if n.drained[i] {
			continue // departed for good: its parked register must not cap the minimum
		}
		if first {
			minBE, minC = n.regBE[i], n.regC[i]
			first = false
			continue
		}
		if n.regBE[i] < minBE {
			minBE = n.regBE[i]
		}
		if n.regC[i] < minC {
			minC = n.regC[i]
		}
	}
	if !first {
		if minBE > n.outBE {
			n.outBE = minBE
		}
		if minC > n.outC {
			n.outC = minC
		}
	}
	return n.outBE, n.outC
}

// relayBeacons pushes the aggregated barrier to every host downlink whose
// recent traffic has not already carried it (beacon piggybacking, §4.2).
func (n *Net) relayBeacons() {
	be, c := n.aggregate()
	for h := range n.hosts {
		h := h
		if n.drained[h] {
			continue
		}
		if !n.hosts[h].Cfg.DisablePiggyback &&
			time.Since(n.lastFwd[h]) < n.cfg.BeaconInterval {
			continue
		}
		pkt := netsim.GetPacket()
		pkt.Kind, pkt.BarrierBE, pkt.BarrierC, pkt.Size = netsim.KindBeacon, be, c, netsim.BeaconBytes
		time.AfterFunc(n.cfg.LinkDelay, func() {
			n.post(func() { n.hosts[h].HandlePacket(pkt) })
		})
	}
}

// NumProcs returns the process count.
func (n *Net) NumProcs() int { return len(n.procs) }

// Now returns the fabric clock: wall-clock nanoseconds since start.
func (n *Net) Now() sim.Time { return sim.Time(time.Since(n.start)) }

// Traces returns the per-host lifecycle tracers (empty unless Config.Trace);
// feed them to obs.Merge for the fabric-wide breakdown.
func (n *Net) Traces() []*obs.Trace { return n.traces }

// DebugAddr returns the bound debug-server address, or "" when disabled.
func (n *Net) DebugAddr() string {
	if n.debug == nil {
		return ""
	}
	return n.debug.Addr
}

func (n *Net) traceMap() map[string]*obs.Trace {
	out := make(map[string]*obs.Trace)
	for i, t := range n.traces {
		out[fmt.Sprintf("host%d", i)] = t
	}
	return out
}

// Do runs fn on the fabric's event loop and waits for it — the only safe
// way to touch endpoint state from outside.
func (n *Net) Do(fn func()) {
	done := make(chan struct{})
	n.post(func() {
		fn()
		close(done)
	})
	select {
	case <-done:
	case <-n.done:
	}
}

// Proc returns process p's endpoint. Interact with it via Do, or from
// delivery callbacks (which already run on the loop).
func (n *Net) Proc(p int) *core.Proc { return n.procs[p] }

// Send issues a scattering from process p on the loop.
func (n *Net) Send(p int, reliable bool, msgs []core.Message) error {
	return n.SendOpts(p, msgs, core.SendOptions{Reliable: reliable})
}

// SendOpts issues a scattering with explicit options on the loop. Sends
// racing Stop return an error wrapping core.ErrClosed; a send that loses
// the race after its closure was already queued may conservatively report
// ErrClosed even though the (stopped) endpoint saw it.
func (n *Net) SendOpts(p int, msgs []core.Message, o core.SendOptions) error {
	res := make(chan error, 1)
	n.post(func() { res <- n.procs[p].SendOpts(msgs, o) })
	select {
	case err := <-res:
		return err
	case <-n.done:
		select {
		case err := <-res:
			return err
		default:
			return fmt.Errorf("livenet: fabric stopped: %w", core.ErrClosed)
		}
	}
}

// Stop shuts the fabric down.
func (n *Net) Stop() {
	n.stopOnce.Do(func() {
		if n.debug != nil {
			n.debug.Close()
		}
		n.Do(func() {
			for _, h := range n.hosts {
				h.Stop()
			}
		})
		close(n.done)
	})
	n.wg.Wait()
}
