package livenet

import (
	"sync"
	"testing"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// TestLiveReliableUnderImpairment exercises the composable impairment path
// on the in-process fabric: Gilbert-Elliott burst loss plus jitter and an
// extra-delay class at the switch must not break exactly-once delivery or
// timestamp order for reliable scatterings.
func TestLiveReliableUnderImpairment(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.Seed = 11
	cfg.Impair = &netsim.Impairment{
		GE:         netsim.BurstLoss(0.15, 3),
		Jitter:     sim.Time(50 * time.Microsecond),
		ExtraDelay: sim.Time(100 * time.Microsecond),
	}
	n := New(cfg)
	defer n.Stop()

	var mu sync.Mutex
	counts := make(map[byte]int)
	logs := make([][]sim.Time, 3)
	n.Do(func() {
		for i := 1; i < 3; i++ {
			i := i
			n.Proc(i).OnDeliver = func(d core.Delivery) {
				mu.Lock()
				counts[d.Data.([]byte)[0]]++
				logs[i] = append(logs[i], d.TS)
				mu.Unlock()
			}
		}
	})

	const rounds = 12
	for k := 0; k < rounds; k++ {
		if err := n.Send(0, true, []core.Message{
			{Dst: 1, Data: []byte{byte(k)}, Size: 1},
			{Dst: 2, Data: []byte{byte(k)}, Size: 1},
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(counts) == rounds
		if done {
			for _, c := range counts {
				if c != 2 {
					done = false
				}
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for k := 0; k < rounds; k++ {
		if counts[byte(k)] != 2 {
			t.Fatalf("round %d delivered %d of 2 members under impairment", k, counts[byte(k)])
		}
	}
	for i, log := range logs {
		for j := 1; j < len(log); j++ {
			if log[j] < log[j-1] {
				t.Fatalf("proc %d delivered out of timestamp order under impairment", i)
			}
		}
	}
}
