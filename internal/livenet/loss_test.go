package livenet

import (
	"sync"
	"testing"
	"time"

	"onepipe/internal/core"
	"onepipe/internal/sim"
)

// TestLiveReliableUnderLoss smoke-tests the live fabric's new loss
// injection: with a quarter of data-plane packets dropped at the switch,
// every reliable scattering must still be delivered exactly once per member
// and in timestamp order at each receiver.
func TestLiveReliableUnderLoss(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.LossRate = 0.25
	cfg.Seed = 7 // deterministic drop pattern run to run
	n := New(cfg)
	defer n.Stop()

	var mu sync.Mutex
	counts := make(map[byte]int)
	logs := make([][]sim.Time, 3)
	n.Do(func() {
		for i := 1; i < 3; i++ {
			i := i
			n.Proc(i).OnDeliver = func(d core.Delivery) {
				mu.Lock()
				counts[d.Data.([]byte)[0]]++
				logs[i] = append(logs[i], d.TS)
				mu.Unlock()
			}
		}
	})

	const rounds = 15
	for k := 0; k < rounds; k++ {
		if err := n.Send(0, true, []core.Message{
			{Dst: 1, Data: []byte{byte(k)}, Size: 1},
			{Dst: 2, Data: []byte{byte(k)}, Size: 1},
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(counts) == rounds
		if done {
			for _, c := range counts {
				if c != 2 {
					done = false
				}
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for k := 0; k < rounds; k++ {
		if counts[byte(k)] != 2 {
			t.Fatalf("round %d delivered %d of 2 members under loss", k, counts[byte(k)])
		}
	}
	for i, log := range logs {
		for j := 1; j < len(log); j++ {
			if log[j] < log[j-1] {
				t.Fatalf("proc %d delivered out of timestamp order under loss", i)
			}
		}
	}
}
