package kvstore

import (
	"onepipe/internal/netsim"
	"onepipe/internal/workload"
)

// FaRM phases (client side).
const (
	farmPhaseExecute  = 1 // read versions of the whole footprint
	farmPhaseLock     = 2 // lock the write set (with version check)
	farmPhaseValidate = 3 // re-read the read set
	farmPhaseCommit   = 4 // apply writes and unlock
)

// issueFaRM starts the FaRM OCC state machine for t. Read-only
// transactions finish after one versioned-read round trip; write
// transactions run lock / (validate) / commit+unlock, aborting on any
// conflict.
func (n *node) issueFaRM(t *txn) {
	t.versions = make(map[uint64]uint64)
	t.failed = false
	switch t.class {
	case RO, WR:
		t.phase = farmPhaseExecute
		n.farmReadRound(t, t.keySet(nil))
	case WO:
		// Blind writes skip the execute phase.
		t.phase = farmPhaseLock
		n.farmLockRound(t)
	}
	n.armRetry(t)
}

// keySet returns t's keys filtered by kind (nil = all).
func (t *txn) keySet(kind *workload.OpKind) []uint64 {
	var out []uint64
	for _, op := range t.ops {
		if kind == nil || op.Kind == *kind {
			out = append(out, op.Key)
		}
	}
	return out
}

func (t *txn) writeOps() []workload.Op {
	var out []workload.Op
	for _, op := range t.ops {
		if op.Kind == workload.OpWrite {
			out = append(out, op)
		}
	}
	return out
}

// farmReadRound issues one versioned-read round for the given keys.
func (n *node) farmReadRound(t *txn, keys []uint64) {
	buckets := n.st.bucketKeys(keys)
	t.pending = len(buckets)
	for _, b := range buckets {
		n.proc.SendRaw(b.owner, farmRead{t: t, keys: b.keys}, 16*len(b.keys))
	}
}

// farmLockRound locks the write set, checking versions recorded during
// execute (blind for write-only transactions).
func (n *node) farmLockRound(t *txn) {
	w := workload.OpWrite
	buckets := n.st.bucketKeys(t.keySet(&w))
	t.pending = len(buckets)
	blind := t.class == WO
	for _, b := range buckets {
		versions := make([]uint64, len(b.keys))
		if !blind {
			for i, k := range b.keys {
				versions[i] = t.versions[k]
			}
		}
		n.proc.SendRaw(b.owner, farmLock{t: t, keys: b.keys, versions: versions, blind: blind}, 24*len(b.keys))
	}
}

// farmCommitRound applies writes and unlocks (one message per owner).
func (n *node) farmCommitRound(t *txn) {
	buckets := n.st.bucketOps(t.writeOps())
	t.pending = len(buckets)
	for _, b := range buckets {
		size := 0
		for _, op := range b.ops {
			size += 16 + op.Value
		}
		n.proc.SendRaw(b.owner, farmCommit{t: t, ops: b.ops}, size)
	}
}

// farmAbort releases any locks and schedules a retry.
func (n *node) farmAbort(t *txn) {
	w := workload.OpWrite
	for _, b := range n.st.bucketKeys(t.keySet(&w)) {
		n.proc.SendRaw(b.owner, farmUnlock{t: t, keys: b.keys}, 8*len(b.keys))
	}
	n.retryLater(t)
}

// onFarmRead serves a versioned read.
func (n *node) onFarmRead(src netsim.ProcID, m farmRead) {
	n.serve(len(m.keys), func() {
		versions := make([]uint64, len(m.keys))
		locked := false
		for i, k := range m.keys {
			if e := n.data[k]; e != nil {
				versions[i] = e.version
				if e.lockedBy != nil && e.lockedBy != m.t {
					locked = true
				}
			}
		}
		n.proc.SendRaw(src, farmReadReply{t: m.t, keys: m.keys, versions: versions, locked: locked}, 16*len(m.keys))
	})
}

// onFarmLock attempts to lock all keys atomically at this owner.
func (n *node) onFarmLock(src netsim.ProcID, m farmLock) {
	n.serve(len(m.keys), func() {
		ok := true
		for i, k := range m.keys {
			e := n.data[k]
			if e == nil {
				e = &entry{}
				n.data[k] = e
			}
			if e.lockedBy != nil && e.lockedBy != m.t {
				ok = false
				break
			}
			if !m.blind && e.version != m.versions[i] {
				ok = false
				break
			}
		}
		if ok {
			for _, k := range m.keys {
				n.data[k].lockedBy = m.t
			}
		}
		n.proc.SendRaw(src, farmLockReply{t: m.t, ok: ok}, 8)
	})
}

// onFarmCommit applies the writes and releases the locks.
func (n *node) onFarmCommit(src netsim.ProcID, m farmCommit) {
	n.serve(len(m.ops), func() {
		for _, op := range m.ops {
			e := n.data[op.Key]
			if e == nil {
				e = &entry{}
				n.data[op.Key] = e
			}
			e.version++
			e.size = op.Value
			if e.lockedBy == m.t {
				e.lockedBy = nil
			}
		}
		n.proc.SendRaw(src, kvReply{t: m.t, n: len(m.ops)}, 8)
	})
}

// onFarmUnlock releases this transaction's locks (abort path).
func (n *node) onFarmUnlock(m farmUnlock) {
	n.serve(len(m.keys), func() {
		for _, k := range m.keys {
			if e := n.data[k]; e != nil && e.lockedBy == m.t {
				e.lockedBy = nil
			}
		}
	})
}

// onFarmClientReply advances the client-side OCC state machine.
func (n *node) onFarmClientReply(data any) {
	switch m := data.(type) {
	case farmReadReply:
		t := m.t
		if t.client != n {
			return
		}
		if m.locked {
			t.failed = true
		}
		switch t.phase {
		case farmPhaseExecute:
			for i, k := range m.keys {
				t.versions[k] = m.versions[i]
			}
		case farmPhaseValidate:
			for i, k := range m.keys {
				if t.versions[k] != m.versions[i] {
					t.failed = true
				}
			}
		}
		t.pending--
		if t.pending > 0 {
			return
		}
		switch {
		case t.failed:
			if t.phase == farmPhaseValidate {
				n.farmAbort(t)
			} else {
				n.retryLater(t)
			}
		case t.class == RO:
			n.finish(t, true)
		case t.phase == farmPhaseExecute:
			t.phase = farmPhaseLock
			n.farmLockRound(t)
		case t.phase == farmPhaseValidate:
			t.phase = farmPhaseCommit
			n.farmCommitRound(t)
		}
	case farmLockReply:
		t := m.t
		if t.client != n {
			return
		}
		if !m.ok {
			t.failed = true
		}
		t.pending--
		if t.pending > 0 {
			return
		}
		if t.failed {
			n.farmAbort(t)
			return
		}
		r := workload.OpRead
		readSet := t.keySet(&r)
		if t.class == WR && len(readSet) > 0 {
			t.phase = farmPhaseValidate
			t.failed = false
			n.farmReadRound(t, readSet)
		} else {
			t.phase = farmPhaseCommit
			n.farmCommitRound(t)
		}
	}
}
