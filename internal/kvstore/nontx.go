package kvstore

import (
	"onepipe/internal/netsim"
)

// issueNonTX dispatches operations as plain sharded RPCs with no ordering
// or atomicity — the hardware-limit upper bound of Figure 14.
func (n *node) issueNonTX(t *txn) {
	buckets := n.st.bucketOps(t.ops)
	t.pending = len(buckets)
	for _, b := range buckets {
		size := 16 * len(b.ops)
		for _, op := range b.ops {
			size += op.Value
		}
		n.proc.SendRaw(b.owner, nontxReq{t: t, ops: b.ops}, size)
	}
	n.armRetry(t)
}

// onNonTXReq applies the operations immediately (no concurrency control).
func (n *node) onNonTXReq(src netsim.ProcID, m nontxReq) {
	n.serve(len(m.ops), func() {
		for _, op := range m.ops {
			n.apply(op)
		}
		n.proc.SendRaw(src, kvReply{t: m.t, n: len(m.ops)}, 8)
	})
}
