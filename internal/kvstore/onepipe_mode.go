package kvstore

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/workload"
)

// issue1Pipe sends the whole transaction as one scattering: best-effort
// for read-only (§2.2.3: retryable), reliable otherwise. Owners process
// deliveries in timestamp order, so no locks are needed and no aborts
// occur.
func (n *node) issue1Pipe(t *txn) {
	buckets := n.st.bucketOps(t.ops)
	msgs := make([]core.Message, 0, len(buckets))
	for _, b := range buckets {
		size := 16 * len(b.ops)
		for _, op := range b.ops {
			size += op.Value
		}
		msgs = append(msgs, core.Message{Dst: b.owner, Data: kvReq{t: t, ops: b.ops}, Size: size})
	}
	t.pending = len(msgs)
	// Read-only transactions ride best-effort scatterings; writes need the
	// reliable plane's restricted failure atomicity.
	err := n.proc.SendOpts(msgs, core.SendOptions{Reliable: t.class != RO})
	if err != nil {
		// Send buffer full: back off and retry.
		n.retryLater(t)
		return
	}
	n.armRetry(t)
}

// onDeliver handles 1Pipe-ordered transaction operations at an owner.
func (n *node) onDeliver(d core.Delivery) {
	req, ok := d.Data.(kvReq)
	if !ok {
		return
	}
	n.applyAndReply(d.Src, req.t, req.ops)
}

// applyAndReply executes ops after the CPU station and replies raw.
func (n *node) applyAndReply(src netsim.ProcID, t *txn, ops []workload.Op) {
	if n.applied[t] {
		// Duplicate (replay after a lost reply): just re-reply.
		n.serve(0, func() {
			n.proc.SendRaw(src, kvReply{t: t, n: len(ops)}, 16)
		})
		return
	}
	n.applied[t] = true
	n.serve(len(ops), func() {
		for _, op := range ops {
			n.apply(op)
		}
		n.proc.SendRaw(src, kvReply{t: t, n: len(ops)}, 16)
	})
}

func (n *node) apply(op workload.Op) {
	e := n.data[op.Key]
	if e == nil {
		e = &entry{}
		n.data[op.Key] = e
	}
	if op.Kind == workload.OpWrite {
		e.version++
		e.size = op.Value
	}
}

// onRaw dispatches unordered RPCs (replies and FaRM/NonTX requests).
func (n *node) onRaw(src netsim.ProcID, data any) {
	switch m := data.(type) {
	case kvReply:
		t := m.t
		if t.client != n {
			return
		}
		t.pending--
		if t.pending == 0 {
			n.finish(t, true)
		}
	case replay:
		// 1Pipe replay: for best-effort ops, re-execute idempotently; for
		// reliable ones, only re-reply if already applied (delivery is
		// 1Pipe's job).
		t := m.t
		if t.class == RO || n.applied[t] {
			var ops []workload.Op
			for _, op := range t.ops {
				if n.st.owner(op.Key) == n.proc.ID {
					ops = append(ops, op)
				}
			}
			n.applyAndReply(src, t, ops)
		}
	case nontxReq:
		n.onNonTXReq(src, m)
	case farmRead:
		n.onFarmRead(src, m)
	case farmLock:
		n.onFarmLock(src, m)
	case farmCommit:
		n.onFarmCommit(src, m)
	case farmUnlock:
		n.onFarmUnlock(m)
	case farmReadReply, farmLockReply:
		n.onFarmClientReply(data)
	}
}
