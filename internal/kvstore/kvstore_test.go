package kvstore

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func deploy(t *testing.T, mode Mode, mut func(*Config)) *Store {
	t.Helper()
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 2)
	cl := core.Deploy(netsim.New(ncfg), core.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Keys = 1 << 16
	if mut != nil {
		mut(&cfg)
	}
	return New(cl, mode, cfg)
}

func TestOnePipeCommitsWithoutAborts(t *testing.T) {
	st := deploy(t, Mode1Pipe, nil)
	s := st.Run(200*sim.Microsecond, 500*sim.Microsecond)
	if s.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if s.Aborted != 0 {
		t.Fatalf("1Pipe aborted %d transactions", s.Aborted)
	}
	if s.LatRO.N() == 0 || s.LatWR.N()+s.LatWO.N() == 0 {
		t.Fatal("latency classes not populated")
	}
}

func TestOnePipeROFasterThanWR(t *testing.T) {
	st := deploy(t, Mode1Pipe, nil)
	s := st.Run(200*sim.Microsecond, 1*sim.Millisecond)
	if s.LatRO.Mean() >= s.LatWR.Mean() {
		t.Fatalf("RO latency %.1fus not below WR %.1fus (best-effort vs reliable)",
			s.LatRO.Mean(), s.LatWR.Mean())
	}
}

func TestFaRMCommitsUniform(t *testing.T) {
	st := deploy(t, ModeFaRM, nil)
	s := st.Run(200*sim.Microsecond, 500*sim.Microsecond)
	if s.Committed == 0 {
		t.Fatal("FaRM committed nothing")
	}
	// Uniform over 64k keys with 16 clients: contention is negligible.
	if s.AbortRate() > 0.05 {
		t.Fatalf("FaRM abort rate %.3f too high on uniform workload", s.AbortRate())
	}
}

func TestNonTXCommits(t *testing.T) {
	st := deploy(t, ModeNonTX, nil)
	s := st.Run(200*sim.Microsecond, 500*sim.Microsecond)
	if s.Committed == 0 {
		t.Fatal("NonTX committed nothing")
	}
	if s.Aborted != 0 {
		t.Fatalf("NonTX aborted %d", s.Aborted)
	}
}

func TestContentionOnePipeBeatsFaRM(t *testing.T) {
	// High write fraction on a tiny hot keyspace: FaRM's locks collide
	// constantly; 1Pipe is conflict-free (Fig. 14a YCSB shape).
	hot := func(c *Config) {
		c.Keys = 16
		c.WriteFrac = 0.8
	}
	sp := deploy(t, Mode1Pipe, hot).Run(200*sim.Microsecond, 1*sim.Millisecond)
	sf := deploy(t, ModeFaRM, hot).Run(200*sim.Microsecond, 1*sim.Millisecond)
	if sp.Committed == 0 || sf.Committed == 0 {
		t.Fatalf("commits: 1pipe=%d farm=%d", sp.Committed, sf.Committed)
	}
	if sf.AbortRate() < 0.1 {
		t.Fatalf("FaRM abort rate %.3f suspiciously low under contention", sf.AbortRate())
	}
	if float64(sp.Committed) < 1.5*float64(sf.Committed) {
		t.Fatalf("1Pipe (%d) did not clearly beat FaRM (%d) under contention",
			sp.Committed, sf.Committed)
	}
}

func TestOnePipeNearNonTX(t *testing.T) {
	// Paper: 1Pipe reaches ~90% of the non-transactional bound.
	sp := deploy(t, Mode1Pipe, nil).Run(200*sim.Microsecond, 1*sim.Millisecond)
	sn := deploy(t, ModeNonTX, nil).Run(200*sim.Microsecond, 1*sim.Millisecond)
	ratio := float64(sp.Committed) / float64(sn.Committed)
	if ratio < 0.5 || ratio > 1.2 {
		t.Fatalf("1Pipe/NonTX throughput ratio %.2f outside plausible band", ratio)
	}
}

func TestZipfSkewReducesThroughput(t *testing.T) {
	uni := deploy(t, Mode1Pipe, nil).Run(200*sim.Microsecond, 1*sim.Millisecond)
	zipf := deploy(t, Mode1Pipe, func(c *Config) { c.Zipf = true }).Run(200*sim.Microsecond, 1*sim.Millisecond)
	// Hot keys imbalance server load; throughput drops but stays healthy
	// (paper: YCSB reaches ~70% of uniform at scale).
	if zipf.Committed == 0 {
		t.Fatal("zipf committed nothing")
	}
	if float64(zipf.Committed) > 1.1*float64(uni.Committed) {
		t.Fatalf("zipf (%d) should not beat uniform (%d)", zipf.Committed, uni.Committed)
	}
}

func TestRecoveryUnderLoss(t *testing.T) {
	st := deploy(t, Mode1Pipe, nil)
	st.cl.Net.Cfg.LossRate = 0 // configured below via network cfg, keep simple
	s := st.Run(200*sim.Microsecond, 500*sim.Microsecond)
	if s.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	ncfg.LossRate = 0.001
	cl := core.Deploy(netsim.New(ncfg), core.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Keys = 1 << 16
	st := New(cl, Mode1Pipe, cfg)
	s := st.Run(200*sim.Microsecond, 2*sim.Millisecond)
	if s.Committed == 0 {
		t.Fatal("nothing committed under loss")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := deploy(t, Mode1Pipe, nil).Run(100*sim.Microsecond, 300*sim.Microsecond)
	b := deploy(t, Mode1Pipe, nil).Run(100*sim.Microsecond, 300*sim.Microsecond)
	if a.Committed != b.Committed || a.Aborted != b.Aborted {
		t.Fatalf("same-seed runs diverged: %d/%d vs %d/%d", a.Committed, a.Aborted, b.Committed, b.Aborted)
	}
}

func TestLargerTxnSizes(t *testing.T) {
	st := deploy(t, Mode1Pipe, func(c *Config) { c.OpsPerTxn = 16 })
	s := st.Run(200*sim.Microsecond, 500*sim.Microsecond)
	if s.Committed == 0 {
		t.Fatal("nothing committed with 16-op transactions")
	}
	if s.KVOps != s.Committed*16 {
		t.Fatalf("KVOps=%d, want committed*16=%d", s.KVOps, s.Committed*16)
	}
}
