// Package kvstore implements the distributed transactional key-value store
// of §7.3.1 in three flavors:
//
//   - Mode1Pipe: a transaction of independent KV operations is one 1Pipe
//     scattering (best-effort for read-only, reliable for read-write /
//     write-only). Every server processes operations in timestamp order,
//     so transactions are serializable with no locks and no aborts.
//   - ModeFaRM: the FaRM-style baseline — versioned one-sided reads for
//     read-only transactions, OCC with lock / validate / commit-unlock
//     two-phase commit for writes. Hot keys cause lock conflicts, aborts
//     and retries.
//   - ModeNonTX: the non-transactional upper bound (plain sharded
//     operations with no consistency).
//
// Each process is both a client (transaction initiator) and a server
// (shard owner by key hash); server CPU is modeled as a FIFO station with
// a per-operation cost.
package kvstore

import (
	"math/rand"
	"sort"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/workload"
)

// Mode selects the concurrency-control design.
type Mode uint8

const (
	// Mode1Pipe uses 1Pipe scatterings for transactions.
	Mode1Pipe Mode = iota
	// ModeFaRM uses FaRM-style OCC with two-phase commit.
	ModeFaRM
	// ModeNonTX is the non-transactional upper bound.
	ModeNonTX
)

func (m Mode) String() string {
	switch m {
	case Mode1Pipe:
		return "1Pipe"
	case ModeFaRM:
		return "FaRM"
	case ModeNonTX:
		return "NonTX"
	}
	return "?"
}

// Class is a transaction's read/write classification.
type Class uint8

const (
	// RO is read-only, WO write-only, WR mixed.
	RO Class = iota
	WO
	WR
)

// Config parameterizes a run.
type Config struct {
	// Keys is the keyspace size.
	Keys uint64
	// Zipf selects the YCSB-style skewed distribution (theta 0.99);
	// otherwise keys are uniform.
	Zipf bool
	// OpsPerTxn and WriteFrac shape transactions: each op is a write with
	// probability WriteFrac.
	OpsPerTxn int
	WriteFrac float64
	// ROFrac, when positive, forces that fraction of transactions to be
	// all-reads regardless of WriteFrac (the paper's "50% of TXNs are
	// read-only" and "95% RO" workloads).
	ROFrac float64
	// Outstanding is the closed-loop pipeline depth per client.
	Outstanding int
	// ServerOpCost is the modeled CPU time per KV operation.
	ServerOpCost sim.Time
	// RetryTimeout re-issues a transaction whose replies went missing.
	RetryTimeout sim.Time
	Seed         int64
	// Txns, when non-nil, overrides the per-client transaction source
	// (default: workload.NewTxnGen over the Zipf/Uniform keygen above,
	// sharing the client's RNG). The rng argument is the client's own
	// stream — the ROFrac draw stays on it either way.
	Txns func(client int, rng *rand.Rand) workload.TxnSource
}

// DefaultConfig mirrors the paper's workload defaults: 1M keys, 2 ops per
// transaction, randomly read or write.
func DefaultConfig() Config {
	return Config{
		Keys:      1 << 20,
		OpsPerTxn: 2,
		WriteFrac: 0.5,
		// Deep enough pipelining to saturate server CPU, so throughput
		// reflects per-transaction server work (1 round for 1Pipe, 3-4
		// for FaRM's OCC) rather than client-observed latency.
		Outstanding:  24,
		ServerOpCost: 300 * sim.Nanosecond,
		RetryTimeout: 300 * sim.Microsecond,
		Seed:         1,
	}
}

// Stats aggregates a measurement window.
type Stats struct {
	Committed uint64
	Aborted   uint64
	KVOps     uint64
	LatRO     stats.Sample
	LatWO     stats.Sample
	LatWR     stats.Sample
	Window    sim.Time
}

// TxnPerSecPerProc returns committed transactions per second per process.
func (s *Stats) TxnPerSecPerProc(procs int) float64 {
	if s.Window == 0 {
		return 0
	}
	return float64(s.Committed) / s.Window.Seconds() / float64(procs)
}

// OpsPerSec returns total KV operations per second.
func (s *Stats) OpsPerSec() float64 {
	if s.Window == 0 {
		return 0
	}
	return float64(s.KVOps) / s.Window.Seconds()
}

// AbortRate returns aborts per committed transaction.
func (s *Stats) AbortRate() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Aborted) / float64(s.Committed)
}

type entry struct {
	version  uint64
	size     int
	lockedBy *txn
}

// txn is one transaction's client-side state.
type txn struct {
	client  *node
	ops     []workload.Op
	class   Class
	started sim.Time
	pending int
	epoch   uint64 // guards the retry timer
	// FaRM state.
	phase    int
	versions map[uint64]uint64
	failed   bool
	retries  int
}

// Store is a deployed KVS over a 1Pipe cluster.
type Store struct {
	Mode  Mode
	Cfg   Config
	Stats Stats
	cl    *core.Cluster
	nodes []*node
	// measuring gates stats collection to the measurement window.
	measuring bool
}

type node struct {
	st      *Store
	proc    *core.Proc
	rng     *rand.Rand
	gen     workload.TxnSource
	data    map[uint64]*entry
	cpuBusy sim.Time
	applied map[*txn]bool
}

// request payloads (passed by reference inside the simulation).
type kvReq struct {
	t   *txn
	ops []workload.Op
}
type kvReply struct {
	t *txn
	n int
}
type farmRead struct {
	t    *txn
	keys []uint64
}
type farmReadReply struct {
	t        *txn
	keys     []uint64
	versions []uint64
	locked   bool
}
type farmLock struct {
	t        *txn
	keys     []uint64
	versions []uint64
	blind    bool
}
type farmLockReply struct {
	t  *txn
	ok bool
}
type farmCommit struct {
	t   *txn
	ops []workload.Op
}
type farmUnlock struct {
	t    *txn
	keys []uint64
}
type nontxReq struct {
	t   *txn
	ops []workload.Op
}
type replay struct {
	t *txn
}

// New deploys the store over an existing cluster.
func New(cl *core.Cluster, mode Mode, cfg Config) *Store {
	st := &Store{Mode: mode, Cfg: cfg, cl: cl}
	for i, p := range cl.Procs {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		var keys workload.KeyGen
		if cfg.Zipf {
			keys = workload.NewZipf(rng, cfg.Keys, 0.99)
		} else {
			keys = workload.NewUniform(rng, cfg.Keys)
		}
		var gen workload.TxnSource
		if cfg.Txns != nil {
			gen = cfg.Txns(i, rng)
		} else {
			gen = workload.NewTxnGen(rng, keys, cfg.OpsPerTxn, cfg.WriteFrac)
		}
		n := &node{
			st: st, proc: p, rng: rng,
			gen:     gen,
			data:    make(map[uint64]*entry),
			applied: make(map[*txn]bool),
		}
		st.nodes = append(st.nodes, n)
		p.OnDeliver = n.onDeliver
		p.OnRaw = n.onRaw
	}
	return st
}

// Run drives the closed-loop workload: warmup, then a measured window.
// It returns the stats for the window.
func (st *Store) Run(warmup, window sim.Time) *Stats {
	eng := st.eng()
	for _, n := range st.nodes {
		for i := 0; i < st.Cfg.Outstanding; i++ {
			n.startTxn()
		}
	}
	eng.RunFor(warmup)
	st.measuring = true
	st.Stats.Window = window
	eng.RunFor(window)
	st.measuring = false
	return &st.Stats
}

func (st *Store) eng() *sim.Engine { return st.cl.Net.Eng }

func (st *Store) owner(key uint64) netsim.ProcID {
	return netsim.ProcID(key % uint64(len(st.nodes)))
}

func classify(ops []workload.Op) Class {
	switch {
	case workload.ReadOnly(ops):
		return RO
	case workload.WriteOnly(ops):
		return WO
	default:
		return WR
	}
}

// serve models server CPU: fn runs after the op clears the FIFO station.
func (n *node) serve(nops int, fn func()) {
	eng := n.st.eng()
	now := eng.Now()
	start := now
	if n.cpuBusy > start {
		start = n.cpuBusy
	}
	n.cpuBusy = start + sim.Time(nops)*n.st.Cfg.ServerOpCost
	eng.At(n.cpuBusy, fn)
}

func (n *node) startTxn() {
	t := &txn{client: n, ops: n.gen.Next(), started: n.st.eng().Now()}
	if n.st.Cfg.ROFrac > 0 && n.rng.Float64() < n.st.Cfg.ROFrac {
		for i := range t.ops {
			t.ops[i].Kind = workload.OpRead
			t.ops[i].Value = 0
		}
	}
	t.class = classify(t.ops)
	n.issue(t)
}

func (n *node) issue(t *txn) {
	switch n.st.Mode {
	case Mode1Pipe:
		n.issue1Pipe(t)
	case ModeFaRM:
		n.issueFaRM(t)
	case ModeNonTX:
		n.issueNonTX(t)
	}
}

// finish completes a transaction and keeps the closed loop full.
func (n *node) finish(t *txn, committed bool) {
	t.epoch++ // cancel retry timer
	st := n.st
	if st.measuring {
		if committed {
			st.Stats.Committed++
			st.Stats.KVOps += uint64(len(t.ops))
			lat := float64(st.eng().Now()-t.started) / 1000
			switch t.class {
			case RO:
				st.Stats.LatRO.Add(lat)
			case WO:
				st.Stats.LatWO.Add(lat)
			case WR:
				st.Stats.LatWR.Add(lat)
			}
		} else {
			st.Stats.Aborted++
		}
	}
	n.startTxn()
}

// retryLater re-runs the same transaction after an abort (FaRM) with
// truncated binary backoff.
func (n *node) retryLater(t *txn) {
	if n.st.measuring {
		n.st.Stats.Aborted++
	}
	t.retries++
	t.epoch++
	back := sim.Time(1+n.rng.Intn(1<<uint(min(t.retries, 6)))) * sim.Microsecond
	n.st.eng().After(back, func() {
		t.phase = 0
		t.pending = 0
		t.failed = false
		t.versions = nil
		n.issue(t)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// armRetry guards against lost replies (raw RPCs are unacknowledged).
func (n *node) armRetry(t *txn) {
	if n.st.Cfg.RetryTimeout <= 0 {
		return
	}
	t.epoch++
	epoch := t.epoch
	n.st.eng().After(n.st.Cfg.RetryTimeout, func() {
		if t.epoch != epoch {
			return
		}
		n.recover(t)
	})
}

// recover re-solicits replies for a transaction stuck on packet loss.
func (n *node) recover(t *txn) {
	switch n.st.Mode {
	case Mode1Pipe:
		// Ask every involved owner to (re)apply or re-reply; 1Pipe's own
		// reliability covers the reliable class, so this mainly replays
		// lost best-effort ops and lost raw replies.
		for _, dst := range t.owners() {
			n.proc.SendRaw(dst, replay{t: t}, 32)
		}
		t.pending = len(t.owners())
		n.armRetry(t)
	default:
		// FaRM / NonTX: abort and rerun from scratch.
		n.retryLater(t)
	}
}

// StateDigest folds every owner's written (owner, key, version) triples —
// keys sorted, version-0 read-through entries skipped — into one FNV-1a
// digest. The serving tier computes the identical framing, so a
// degenerate-config serve run can be pinned byte-for-byte against this
// legacy harness.
func (st *Store) StateDigest() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for i, nd := range st.nodes {
		keys := make([]uint64, 0, len(nd.data))
		for k, e := range nd.data {
			if e.version > 0 {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		mix(uint64(i))
		for _, k := range keys {
			mix(k)
			mix(nd.data[k].version)
		}
	}
	return h
}

// opBucket groups a transaction's operations by owner, preserving
// first-seen order so message emission is deterministic.
type opBucket struct {
	owner netsim.ProcID
	ops   []workload.Op
}

func (st *Store) bucketOps(ops []workload.Op) []opBucket {
	var buckets []opBucket
	idx := make(map[netsim.ProcID]int)
	for _, op := range ops {
		o := st.owner(op.Key)
		j, ok := idx[o]
		if !ok {
			j = len(buckets)
			idx[o] = j
			buckets = append(buckets, opBucket{owner: o})
		}
		buckets[j].ops = append(buckets[j].ops, op)
	}
	return buckets
}

// keyBucket is the key-only analogue of opBucket.
type keyBucket struct {
	owner netsim.ProcID
	keys  []uint64
}

func (st *Store) bucketKeys(keys []uint64) []keyBucket {
	var buckets []keyBucket
	idx := make(map[netsim.ProcID]int)
	for _, k := range keys {
		o := st.owner(k)
		j, ok := idx[o]
		if !ok {
			j = len(buckets)
			idx[o] = j
			buckets = append(buckets, keyBucket{owner: o})
		}
		buckets[j].keys = append(buckets[j].keys, k)
	}
	return buckets
}

// owners returns the distinct owner set of t's operations.
func (t *txn) owners() []netsim.ProcID {
	var out []netsim.ProcID
	seen := make(map[netsim.ProcID]bool)
	for _, op := range t.ops {
		o := t.client.st.owner(op.Key)
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}
