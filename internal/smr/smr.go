// Package smr implements state machine replication over reliable 1Pipe
// (§2.2.2): every command is one scattering to all replicas, each replica
// applies commands in delivery order, and because 1Pipe delivery is a
// consistent total order, all replicas walk through identical state
// sequences — no leader, no consensus round per command.
//
// The package also ships the paper's example application: a replicated
// lock manager that solves distributed mutual exclusion the way Lamport's
// classic paper does — resources are granted in the total order the
// requests were made.
package smr

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// StateMachine consumes an ordered command stream.
type StateMachine interface {
	// Apply executes one command; ts is its position in the total order
	// and src the submitting process.
	Apply(ts sim.Time, src netsim.ProcID, cmd any)
}

// Group is a set of replicas fed by reliable scatterings.
type Group struct {
	cl       *core.Cluster
	replicas []netsim.ProcID
	sms      map[netsim.ProcID]StateMachine
	// Applied counts commands applied across replicas.
	Applied uint64
}

// NewGroup attaches a state machine factory to each replica process.
func NewGroup(cl *core.Cluster, replicas []netsim.ProcID, newSM func(r netsim.ProcID) StateMachine) *Group {
	g := &Group{cl: cl, replicas: replicas, sms: make(map[netsim.ProcID]StateMachine)}
	for _, r := range replicas {
		sm := newSM(r)
		g.sms[r] = sm
		proc := cl.Procs[r]
		proc.OnDeliver = func(d core.Delivery) {
			g.Applied++
			sm.Apply(d.TS, d.Src, d.Data)
		}
	}
	return g
}

// SM returns replica r's state machine.
func (g *Group) SM(r netsim.ProcID) StateMachine { return g.sms[r] }

// Submit broadcasts one command from process src to every replica as one
// reliable scattering. Restricted failure atomicity guarantees all correct
// replicas apply the same command sequence (§2.1).
func (g *Group) Submit(src netsim.ProcID, cmd any, size int) error {
	msgs := make([]core.Message, 0, len(g.replicas))
	for _, r := range g.replicas {
		msgs = append(msgs, core.Message{Dst: r, Data: cmd, Size: size})
	}
	return g.cl.Procs[src].SendOpts(msgs, core.SendOptions{Reliable: true})
}

// ----- Replicated lock manager (mutual exclusion, §2.2.2) -----

// LockCmd requests or releases a resource.
type LockCmd struct {
	Resource string
	Owner    netsim.ProcID
	Release  bool
}

// GrantEvent records one grant decision, for verifying cross-replica
// agreement.
type GrantEvent struct {
	Resource string
	Owner    netsim.ProcID
	TS       sim.Time
}

// LockManager is a replicated lock table: requests queue FIFO in total
// order; releases grant to the next waiter. Every replica computes the
// identical grant sequence.
type LockManager struct {
	holders map[string]netsim.ProcID
	waiters map[string][]netsim.ProcID
	// Grants is the grant log (identical on all correct replicas).
	Grants []GrantEvent
	// OnGrant, if set, observes each grant as it happens.
	OnGrant func(GrantEvent)
}

// NewLockManager builds an empty lock table.
func NewLockManager() *LockManager {
	return &LockManager{
		holders: make(map[string]netsim.ProcID),
		waiters: make(map[string][]netsim.ProcID),
	}
}

// Apply implements StateMachine.
func (lm *LockManager) Apply(ts sim.Time, src netsim.ProcID, cmd any) {
	c, ok := cmd.(LockCmd)
	if !ok {
		return
	}
	if c.Release {
		if lm.holders[c.Resource] != c.Owner {
			return // stale release
		}
		delete(lm.holders, c.Resource)
		if q := lm.waiters[c.Resource]; len(q) > 0 {
			next := q[0]
			lm.waiters[c.Resource] = q[1:]
			lm.grant(c.Resource, next, ts)
		}
		return
	}
	if _, held := lm.holders[c.Resource]; held {
		lm.waiters[c.Resource] = append(lm.waiters[c.Resource], c.Owner)
		return
	}
	lm.grant(c.Resource, c.Owner, ts)
}

func (lm *LockManager) grant(res string, owner netsim.ProcID, ts sim.Time) {
	lm.holders[res] = owner
	ev := GrantEvent{Resource: res, Owner: owner, TS: ts}
	lm.Grants = append(lm.Grants, ev)
	if lm.OnGrant != nil {
		lm.OnGrant(ev)
	}
}

// Holder returns the current holder of a resource.
func (lm *LockManager) Holder(res string) (netsim.ProcID, bool) {
	h, ok := lm.holders[res]
	return h, ok
}

// ----- Replicated counter (the minimal convergence check) -----

// Counter is a trivial state machine: it folds integer commands with a
// non-commutative operation, so any ordering difference across replicas
// becomes visible in the final value.
type Counter struct {
	Value int64
	Log   []int64
}

// Apply implements StateMachine: value = value*3 + cmd (non-commutative,
// non-associative fold).
func (c *Counter) Apply(ts sim.Time, src netsim.ProcID, cmd any) {
	v, ok := cmd.(int64)
	if !ok {
		return
	}
	c.Value = c.Value*3 + v
	c.Log = append(c.Log, v)
}
