package smr

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func cluster(t *testing.T, mut func(*netsim.Config)) *core.Cluster {
	t.Helper()
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	if mut != nil {
		mut(&cfg)
	}
	return core.Deploy(netsim.New(cfg), core.DefaultConfig())
}

func TestReplicasConverge(t *testing.T) {
	cl := cluster(t, nil)
	reps := []netsim.ProcID{5, 6, 7}
	g := NewGroup(cl, reps, func(netsim.ProcID) StateMachine { return &Counter{} })
	eng := cl.Net.Eng
	// Three concurrent clients submit non-commutative commands.
	for _, src := range []netsim.ProcID{0, 1, 2} {
		src := src
		sim.NewTicker(eng, 3*sim.Microsecond, 0, func() {
			if eng.Now() > 200*sim.Microsecond {
				return
			}
			g.Submit(src, int64(src)+1, 8)
		})
	}
	cl.Run(3 * sim.Millisecond)
	c5 := g.SM(5).(*Counter)
	c6 := g.SM(6).(*Counter)
	c7 := g.SM(7).(*Counter)
	if len(c5.Log) == 0 {
		t.Fatal("no commands applied")
	}
	if c5.Value != c6.Value || c6.Value != c7.Value {
		t.Fatalf("replica values diverge: %d %d %d", c5.Value, c6.Value, c7.Value)
	}
	if len(c5.Log) != len(c6.Log) || len(c6.Log) != len(c7.Log) {
		t.Fatalf("log lengths diverge: %d %d %d", len(c5.Log), len(c6.Log), len(c7.Log))
	}
}

func TestReplicasConvergeUnderLoss(t *testing.T) {
	cl := cluster(t, func(c *netsim.Config) { c.LossRate = 0.01; c.Seed = 5 })
	reps := []netsim.ProcID{5, 6, 7}
	g := NewGroup(cl, reps, func(netsim.ProcID) StateMachine { return &Counter{} })
	eng := cl.Net.Eng
	for i := 0; i < 100; i++ {
		i := i
		eng.At(sim.Time(50+i*3)*sim.Microsecond, func() {
			g.Submit(netsim.ProcID(i%3), int64(i), 8)
		})
	}
	cl.Run(20 * sim.Millisecond)
	c5 := g.SM(5).(*Counter)
	c6 := g.SM(6).(*Counter)
	c7 := g.SM(7).(*Counter)
	if len(c5.Log) != 100 {
		t.Fatalf("replica 5 applied %d of 100", len(c5.Log))
	}
	if c5.Value != c6.Value || c6.Value != c7.Value {
		t.Fatalf("replica values diverge under loss: %d %d %d", c5.Value, c6.Value, c7.Value)
	}
}

func TestLockManagerMutualExclusion(t *testing.T) {
	cl := cluster(t, nil)
	reps := []netsim.ProcID{5, 6, 7}
	g := NewGroup(cl, reps, func(netsim.ProcID) StateMachine { return NewLockManager() })
	eng := cl.Net.Eng

	// Clients 0..3 race for the same resource; each holds it briefly then
	// releases, driven by its own grant observation on replica 5.
	lm5 := g.SM(5).(*LockManager)
	lm5.OnGrant = func(ev GrantEvent) {
		owner := ev.Owner
		// Hold for 10us, then release.
		eng.After(10*sim.Microsecond, func() {
			g.Submit(owner, LockCmd{Resource: "R", Owner: owner, Release: true}, 8)
		})
	}
	for _, src := range []netsim.ProcID{0, 1, 2, 3} {
		src := src
		eng.At(sim.Time(50+int64(src)*2)*sim.Microsecond, func() {
			g.Submit(src, LockCmd{Resource: "R", Owner: src}, 8)
		})
	}
	cl.Run(5 * sim.Millisecond)

	if len(lm5.Grants) != 4 {
		t.Fatalf("granted %d times, want 4", len(lm5.Grants))
	}
	// All replicas computed the identical grant sequence.
	for _, r := range []netsim.ProcID{6, 7} {
		lm := g.SM(r).(*LockManager)
		if len(lm.Grants) != len(lm5.Grants) {
			t.Fatalf("replica %d grant count %d != %d", r, len(lm.Grants), len(lm5.Grants))
		}
		for i := range lm.Grants {
			if lm.Grants[i].Owner != lm5.Grants[i].Owner {
				t.Fatalf("replica %d grant %d to %d, replica 5 to %d",
					r, i, lm.Grants[i].Owner, lm5.Grants[i].Owner)
			}
		}
	}
	// Grants follow request order (Lamport's mutual exclusion property:
	// granted in the order requests were made — i.e., by timestamp).
	for i := 1; i < len(lm5.Grants); i++ {
		if lm5.Grants[i].TS < lm5.Grants[i-1].TS {
			t.Fatal("grants out of total order")
		}
	}
}

func TestLockManagerStaleReleaseIgnored(t *testing.T) {
	lm := NewLockManager()
	lm.Apply(1, 0, LockCmd{Resource: "R", Owner: 1})
	lm.Apply(2, 0, LockCmd{Resource: "R", Owner: 2})                // queued
	lm.Apply(3, 0, LockCmd{Resource: "R", Owner: 2, Release: true}) // not the holder
	if h, _ := lm.Holder("R"); h != 1 {
		t.Fatalf("stale release changed holder to %d", h)
	}
	lm.Apply(4, 0, LockCmd{Resource: "R", Owner: 1, Release: true})
	if h, _ := lm.Holder("R"); h != 2 {
		t.Fatalf("waiter not granted, holder %d", h)
	}
}
