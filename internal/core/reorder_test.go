package core

import (
	"math/rand"
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// mkPending builds a pending with a unique (ts, src, psn) key drawn from a
// small key space so heap ties on ts and (ts, src) are common.
func mkPending(rng *rand.Rand, psn uint32) *pending {
	return &pending{
		ts:   sim.Time(rng.Intn(64)),
		src:  netsim.ProcID(rng.Intn(8)),
		psn:  psn,
		size: 64 + rng.Intn(256),
	}
}

// TestReorderBufEquivalence is the hybrid-buffering correctness property:
// for any interleaving of pushes and pops, a reorderBuf at any cap
// (unbounded 0, degenerate 1, and up) pops the exact same sequence as the
// seed's raw deliveryHeap — spilling to the cold store is a memory placement
// decision, never an ordering one. The hot heap must also respect the cap
// at every step (invariant 14 at the unit level).
func TestReorderBufEquivalence(t *testing.T) {
	caps := []int{0, 1, 2, 8, 64}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		// One shared op script: true = push, false = pop (if non-empty).
		n := 50 + rng.Intn(200)
		ops := make([]bool, n)
		for i := range ops {
			ops[i] = rng.Intn(3) != 0 // pushes outnumber pops; drain at the end
		}
		// Materialize one pending per push, shared by every cap run so the
		// comparison is on identical inputs.
		var inputs []*pending
		for i, push := range ops {
			if push {
				inputs = append(inputs, mkPending(rng, uint32(i)))
			}
		}

		// Reference: the seed's raw deliveryHeap run through the same script.
		var ref []*pending
		{
			var h deliveryHeap
			next := 0
			for _, push := range ops {
				if push {
					pushPending(&h, inputs[next])
					next++
				} else if h.Len() > 0 {
					ref = append(ref, popPending(&h))
				}
			}
			for h.Len() > 0 {
				ref = append(ref, popPending(&h))
			}
		}
		for _, hotCap := range caps {
			b := &reorderBuf{}
			b.cap = hotCap
			var got []*pending
			next := 0
			for _, push := range ops {
				if push {
					b.push(inputs[next])
					next++
				} else if b.Len() > 0 {
					got = append(got, b.pop())
				}
				if hotCap > 0 && len(b.hot) > hotCap {
					t.Fatalf("trial %d cap %d: hot heap grew to %d", trial, hotCap, len(b.hot))
				}
				if top := b.top(); b.Len() > 0 && top == nil {
					t.Fatalf("trial %d cap %d: non-empty buffer has no top", trial, hotCap)
				}
			}
			for b.Len() > 0 {
				got = append(got, b.pop())
			}
			if len(got) != len(inputs) {
				t.Fatalf("trial %d cap %d: popped %d of %d", trial, hotCap, len(got), len(inputs))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("trial %d cap %d: pop %d = (%d,%d,%d), unbounded popped (%d,%d,%d)",
						trial, hotCap, i, got[i].ts, got[i].src, got[i].psn,
						ref[i].ts, ref[i].src, ref[i].psn)
				}
			}
		}
	}
}

// TestReorderBufFilterEquivalence extends the property across filter (the
// failure-discard path): after dropping an arbitrary predicate from both a
// capped and an unbounded buffer, the survivors must drain identically.
func TestReorderBufFilterEquivalence(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		var inputs []*pending
		for i := 0; i < 120; i++ {
			inputs = append(inputs, mkPending(rng, uint32(i)))
		}
		victim := netsim.ProcID(rng.Intn(8))
		drop := func(p *pending) bool { return p.src == victim }

		drain := func(hotCap int) []*pending {
			b := &reorderBuf{}
			b.cap = hotCap
			for _, p := range inputs {
				b.push(p)
			}
			b.filter(drop)
			var got []*pending
			for b.Len() > 0 {
				got = append(got, b.pop())
			}
			return got
		}
		ref := drain(0)
		for _, hotCap := range []int{1, 3, 16} {
			got := drain(hotCap)
			if len(got) != len(ref) {
				t.Fatalf("trial %d cap %d: %d survivors, want %d", trial, hotCap, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("trial %d cap %d: survivor %d differs", trial, hotCap, i)
				}
			}
		}
	}
}

// TestReorderBufHotPathAllocs pins the hot path at zero allocations: below
// the cap, push and pop touch only the pre-grown heap slice — the cold
// store must not be engaged, and nothing may escape.
func TestReorderBufHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc counting is meaningless under -short race harnesses")
	}
	const n = 64
	b := &reorderBuf{}
	b.cap = 256 // well above n: the spill path must never run
	ps := make([]*pending, n)
	for i := range ps {
		ps[i] = &pending{ts: sim.Time((i * 7) % 31), src: netsim.ProcID(i % 5), psn: uint32(i), size: 100}
	}
	// Pre-grow the heap slice: steady state reuses capacity.
	for _, p := range ps {
		b.push(p)
	}
	for b.Len() > 0 {
		b.pop()
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, p := range ps {
			if spilled := b.push(p); spilled {
				t.Fatal("push below cap spilled to cold store")
			}
		}
		for b.Len() > 0 {
			b.pop()
		}
	})
	if avg != 0 {
		t.Fatalf("hot push/pop path allocates %.1f per cycle, want 0", avg)
	}
}
