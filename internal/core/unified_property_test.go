package core

import (
	"math/rand"
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// propRec is one delivery with its plane, for the cross-class order checks.
type propRec struct {
	ts       sim.Time
	src      netsim.ProcID
	id       int64
	reliable bool
	conflict uint32
}

// runMixedWorkload deploys a small cluster in the given delivery mode, runs a
// seed-derived mix of best-effort and reliable scatterings, and returns the
// per-process delivery logs. Message IDs are globally unique so logs can be
// correlated across receivers.
func runMixedWorkload(t *testing.T, mode DeliveryMode, seed int64) [][]propRec {
	return runKeyedWorkload(t, mode, seed, nil)
}

// runKeyedWorkload is runMixedWorkload with a conflict-key assignment: keyFor
// maps each scattering's message ID to its ConflictKey. It is a pure function
// of the ID — no RNG draw — so two runs of the same seed in different modes
// (or with different assignments) consume identical randomness and submit
// identical traffic; only delivery differs. nil means untagged plain sends.
func runKeyedWorkload(t *testing.T, mode DeliveryMode, seed int64, keyFor func(id int64) uint32) [][]propRec {
	t.Helper()
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 1}, 2)
	cfg.Seed = seed
	cfg.Jitter = 500 * sim.Nanosecond
	ccfg := DefaultConfig()
	ccfg.Mode = mode
	cl := Deploy(netsim.New(cfg), ccfg)
	np := len(cl.Procs)
	logs := make([][]propRec, np)
	for i, p := range cl.Procs {
		i := i
		p.OnDeliver = func(d Delivery) {
			logs[i] = append(logs[i], propRec{ts: d.TS, src: d.Src, id: d.Data.(int64), reliable: d.Reliable, conflict: d.Conflict})
		}
	}

	rng := rand.New(rand.NewSource(seed))
	eng := cl.Net.Eng
	var nextID int64
	var loop func(pi int)
	loop = func(pi int) {
		if eng.Now() > 400*sim.Microsecond {
			return
		}
		var msgs []Message
		fan := 1 + rng.Intn(3)
		seen := map[netsim.ProcID]bool{netsim.ProcID(pi): true}
		id := nextID
		nextID++
		for len(msgs) < fan {
			dst := netsim.ProcID(rng.Intn(np))
			if seen[dst] {
				continue
			}
			seen[dst] = true
			msgs = append(msgs, Message{Dst: dst, Data: id, Size: 64})
		}
		reliable := rng.Intn(2) == 0
		if keyFor != nil {
			_ = cl.Proc(pi).SendOpts(msgs, SendOptions{Reliable: reliable, ConflictKey: keyFor(id)})
		} else if reliable {
			_ = cl.Proc(pi).SendReliable(msgs)
		} else {
			_ = cl.Proc(pi).Send(msgs)
		}
		eng.After(sim.Time(1+rng.Intn(4))*sim.Microsecond, func() { loop(pi) })
	}
	for pi := 0; pi < np; pi++ {
		pi := pi
		eng.After(sim.Time(rng.Intn(3000))*sim.Nanosecond, func() { loop(pi) })
	}
	cl.Run(900 * sim.Microsecond)
	return logs
}

func sortedByKey(l []propRec) (int, bool) {
	for j := 1; j < len(l); j++ {
		a, b := l[j-1], l[j]
		if b.ts < a.ts || (b.ts == a.ts && b.src < a.src) {
			return j, false
		}
	}
	return 0, true
}

// TestUnifiedCrossClassTotalOrder is the property test for DeliverUnified:
// across many seeds, every receiver's merged delivery log — best-effort and
// reliable interleaved — is strictly sorted by (ts, src), and any two
// receivers agree on the relative order of their common scatterings. This is
// the cross-class single total order of DESIGN deviation #4; DeliverSeparate
// promises it per plane only (see TestSeparatePerPlaneOrderOnly).
func TestUnifiedCrossClassTotalOrder(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		logs := runMixedWorkload(t, DeliverUnified, seed)
		total, crossClassPairs := 0, 0
		for pi, l := range logs {
			total += len(l)
			if j, ok := sortedByKey(l); !ok {
				t.Fatalf("seed %d proc %d: merged log out of order at %d: %v then %v",
					seed, pi, j, l[j-1], l[j])
			}
			for j := 1; j < len(l); j++ {
				if l[j-1].reliable != l[j].reliable {
					crossClassPairs++
				}
			}
		}
		if total == 0 {
			t.Fatalf("seed %d: no deliveries — workload wired wrong", seed)
		}
		if crossClassPairs == 0 {
			t.Fatalf("seed %d: no cross-class adjacency anywhere — test exercises nothing", seed)
		}
		// Pairwise agreement on common scatterings, across the merged logs.
		for a := 0; a < len(logs); a++ {
			idx := make(map[int64]int, len(logs[a]))
			for i, d := range logs[a] {
				idx[d.id] = i
			}
			for b := a + 1; b < len(logs); b++ {
				last := -1
				for _, d := range logs[b] {
					i, common := idx[d.id]
					if !common {
						continue
					}
					if i < last {
						t.Fatalf("seed %d: receivers %d and %d disagree on common scattering order", seed, a, b)
					}
					last = i
				}
			}
		}
	}
}

// TestSeparatePerPlaneOrderOnly pins DeliverSeparate's weaker contract: each
// plane's subsequence is totally ordered, while the merged cross-class log
// need not be (the planes advance on independent barriers). The test asserts
// the per-plane property on every seed and requires that at least one seed
// exhibits a cross-class inversion — otherwise the distinction between the
// modes has silently disappeared and DeliverUnified is no longer buying
// anything.
func TestSeparatePerPlaneOrderOnly(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	mergedInversions := 0
	for seed := int64(1); seed <= seeds; seed++ {
		logs := runMixedWorkload(t, DeliverSeparate, seed)
		for pi, l := range logs {
			var be, rel []propRec
			for _, d := range l {
				if d.reliable {
					rel = append(rel, d)
				} else {
					be = append(be, d)
				}
			}
			if j, ok := sortedByKey(be); !ok {
				t.Fatalf("seed %d proc %d: best-effort plane out of order at %d", seed, pi, j)
			}
			if j, ok := sortedByKey(rel); !ok {
				t.Fatalf("seed %d proc %d: reliable plane out of order at %d", seed, pi, j)
			}
			if _, ok := sortedByKey(l); !ok {
				mergedInversions++
			}
		}
	}
	if mergedInversions == 0 {
		t.Fatalf("no cross-class inversion in %d DeliverSeparate seeds — the mode distinction tests nothing", seeds)
	}
}

// TestUnifiedCrossQueueTieBreakPSN pins the unified-mode tie-break at its
// sharpest edge: best-effort and reliable entries from the SAME sender with
// the SAME timestamp, injected directly into the delivery queues so the
// collision is guaranteed rather than hoped for. The cross-queue choice in
// drainQueues must fall through to the PSN — the regression was comparing
// only (ts, src) and always preferring the best-effort queue on ties, which
// silently inverted the documented (ts, src, psn) total order whenever the
// reliable entry carried the lower PSN.
func TestUnifiedCrossQueueTieBreakPSN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = DeliverUnified
	w := &stubWire{}
	h := NewHost(0, w, cfg)
	proc := h.AddProc(0)
	var got []struct {
		ts       sim.Time
		src      netsim.ProcID
		reliable bool
	}
	proc.OnDeliver = func(d Delivery) {
		got = append(got, struct {
			ts       sim.Time
			src      netsim.ProcID
			reliable bool
		}{d.TS, d.Src, d.Reliable})
	}

	// Two colliding (ts, src) pairs with the plane-vs-PSN relation flipped:
	// at ts=10 the reliable entry has the lower PSN (must beat best-effort);
	// at ts=20 the best-effort entry has the lower PSN (must beat reliable).
	// An always-prefer-beQ tie-break delivers ts=10 backwards; a
	// prefer-relQ one delivers ts=20 backwards. Only the PSN compare
	// survives both.
	h.enqueuePending(10, 3, 0, 5, "be", 64, false, 0, 0)
	h.enqueuePending(10, 3, 0, 2, "rel", 64, true, 0, 0)
	h.enqueuePending(20, 3, 0, 1, "be", 64, false, 0, 0)
	h.enqueuePending(20, 3, 0, 7, "rel", 64, true, 0, 0)
	h.barrierBE = 100
	h.barrierC = 100
	h.drain()

	want := []struct {
		ts       sim.Time
		reliable bool
	}{{10, true}, {10, false}, {20, false}, {20, true}}
	if len(got) != len(want) {
		t.Fatalf("delivered %d of %d injected messages", len(got), len(want))
	}
	for i, g := range got {
		if g.ts != want[i].ts || g.reliable != want[i].reliable {
			t.Fatalf("delivery %d: ts=%d reliable=%v, want ts=%d reliable=%v — PSN tie-break lost",
				i, g.ts, g.reliable, want[i].ts, want[i].reliable)
		}
	}
}
