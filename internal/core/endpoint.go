package core

import (
	"errors"
	"fmt"

	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
)

// ErrSendBufferFull is returned when the credit wait queue is at capacity;
// the application should back off and retry (§6.1: "If the send buffer is
// full, the send API returns fail").
var ErrSendBufferFull = errors.New("onepipe: send buffer full")

// ErrNoMessages is returned for an empty scattering.
var ErrNoMessages = errors.New("onepipe: empty scattering")

// sendBufCap bounds the number of credit-blocked scatterings per host.
const sendBufCap = 65536

// HostStats counts per-host protocol events.
type HostStats struct {
	MsgsSent       uint64
	MsgsDelivered  uint64
	MsgsFailed     uint64
	PktsSent       uint64
	PktsRetx       uint64
	Naks           uint64
	DupPkts        uint64
	Commits        uint64
	Beacons        uint64
	Recalled       uint64
	StuckReports   uint64 // MaxRetx exhaustions escalated, deduplicated per (dst, ts)
	BufferedBytes  int64  // current reorder-buffer occupancy
	MaxBufferBytes int64
	BufferedMsgs   int64
}

// Host is the lib1pipe runtime for one machine (§6.1). All processes on
// the host share its clock, its uplink and its barrier state.
type Host struct {
	Cfg   Config
	ID    int
	Stats HostStats

	// Obs, if set, receives message-lifecycle span records (internal/obs).
	// Install it before traffic flows; a nil tracer costs the hot path one
	// predictable branch per record site.
	Obs *obs.Trace

	wire  Wire
	procs map[netsim.ProcID]*Proc

	// Timestamping.
	lastTS      sim.Time // last assigned message timestamp
	advertisedC sim.Time // commit floor most recently advertised
	// Send side.
	conns map[connKey]*conn
	waitQ []*scattering // credit-blocked, FIFO (held credits, §6.1)
	// outstanding holds launched reliable scatterings in ascending ts
	// order until fully ACKed or aborted; its head bounds the commit
	// floor (§5.1 Commit phase).
	outstanding []*scattering
	// Receive side.
	rconns      map[connKey]*rconn
	barrierBE   sim.Time
	barrierC    sim.Time
	beQ, relQ   deliveryHeap
	deliveredBE sim.Time
	deliveredC  sim.Time
	// Failure state.
	failedPeers map[netsim.ProcID]sim.Time // proc -> failure timestamp
	recallTomb  map[recallKey]bool
	recalls     map[recallKey]*recallState
	ackPending  map[ackKey]*ackPend
	failDone    func()
	failWait    int
	// stuckReported deduplicates OnStuck escalations: retransmission
	// exhaustion re-examines the same stall every RTO, and the data and
	// recall paths can stall on the same (dst, ts).
	stuckReported map[recallKey]bool

	// OnStuck, if set, is called when a reliable message or recall from
	// src exhausted MaxRetx retransmissions toward dst; the
	// controller-forwarding path (§5.2) hooks in here.
	OnStuck func(src, dst netsim.ProcID, ts sim.Time)

	beaconTimer    *timer
	lastUplinkSend sim.Time
	stopped        bool
	// reprProc identifies this host on substrates that key uplink barrier
	// registers by packet source (e.g. the UDP switch): beacons and
	// commit messages carry it as Src.
	reprProc netsim.ProcID
	hasRepr  bool
}

type recallKey struct {
	dst netsim.ProcID
	ts  sim.Time
}

type recallState struct {
	scat  *scattering
	timer *timer
	tries int
}

// NewHost creates the lib1pipe runtime for host id over the given wire.
// Call Start to begin beacon generation, then AddProc for each process.
func NewHost(id int, wire Wire, cfg Config) *Host {
	h := &Host{
		Cfg:         cfg.withDefaults(),
		ID:          id,
		wire:        wire,
		procs:       make(map[netsim.ProcID]*Proc),
		conns:       make(map[connKey]*conn),
		rconns:      make(map[connKey]*rconn),
		failedPeers:   make(map[netsim.ProcID]sim.Time),
		recallTomb:    make(map[recallKey]bool),
		recalls:       make(map[recallKey]*recallState),
		ackPending:    make(map[ackKey]*ackPend),
		stuckReported: make(map[recallKey]bool),
	}
	return h
}

// Start arms the host's uplink beacon generator (§4.2).
func (h *Host) Start() {
	if h.beaconTimer != nil {
		return
	}
	h.beaconTimer = newTimer(h.wire, h.beaconTick)
	h.beaconTimer.reset(h.Cfg.BeaconInterval)
}

// Stop halts beacon generation and timers; the host no longer participates.
func (h *Host) Stop() {
	h.stopped = true
	if h.beaconTimer != nil {
		h.beaconTimer.stop()
	}
	for _, c := range h.conns {
		if c.rto != nil {
			c.rto.stop()
		}
	}
	for _, r := range h.recalls {
		r.timer.stop()
	}
	for _, p := range h.ackPending {
		p.timer.stop()
	}
}

// beaconTick emits the host's periodic uplink beacon (§6.1: the polling
// thread generates periodic beacon packets). Beacons are unconditional:
// data packets between ticks carry the same floors, but the strict
// "deliver below barrier" rule needs a guaranteed emission whose floor
// exceeds the last data timestamp within one interval.
func (h *Host) beaconTick() {
	if h.stopped {
		return
	}
	h.sendBeacon()
	h.beaconTimer.reset(h.Cfg.BeaconInterval)
}

func (h *Host) sendBeacon() {
	h.Stats.Beacons++
	pkt := netsim.GetPacket()
	pkt.Kind, pkt.Src, pkt.Size = netsim.KindBeacon, h.reprProc, netsim.BeaconBytes
	h.emit(pkt)
}

// emit stamps the barrier fields every host packet carries and sends it.
func (h *Host) emit(pkt *netsim.Packet) {
	pkt.BarrierBE = h.tsFloor()
	pkt.BarrierC = h.commitAdvertise()
	h.lastUplinkSend = h.wire.Now()
	h.Stats.PktsSent++
	h.wire.Send(pkt)
}

// tsFloor is the host's best-effort barrier: no future message from this
// host will carry a timestamp below it.
func (h *Host) tsFloor() sim.Time {
	now := h.wire.Now()
	if h.lastTS > now {
		return h.lastTS
	}
	return now
}

// commitFloor is the largest T such that every reliable message from this
// host with timestamp <= T has been fully ACKed (§5.1).
func (h *Host) commitFloor() sim.Time {
	if len(h.outstanding) > 0 {
		return h.outstanding[0].ts - 1
	}
	return h.tsFloor()
}

// commitAdvertise returns the monotone commit floor and records it so that
// timestamp assignment stays strictly above it.
func (h *Host) commitAdvertise() sim.Time {
	if f := h.commitFloor(); f > h.advertisedC {
		h.advertisedC = f
	}
	return h.advertisedC
}

// nextTS assigns the timestamp for a scattering at egress time: the host
// clock, forced strictly increasing and strictly above the advertised
// commit floor (a receiver holding commit barrier T deliver everything
// <= T, so new messages must exceed T).
func (h *Host) nextTS() sim.Time {
	ts := h.wire.Now()
	if ts <= h.lastTS {
		ts = h.lastTS + 1
	}
	if ts <= h.advertisedC {
		ts = h.advertisedC + 1
	}
	h.lastTS = ts
	return ts
}

// Proc is one 1Pipe process endpoint (Table 1's API surface).
type Proc struct {
	ID   netsim.ProcID
	host *Host

	// OnDeliver receives messages in (timestamp, sender) total order.
	OnDeliver func(Delivery)
	// OnSendFail is the send-failure callback of Table 1.
	OnSendFail func(SendFailure)
	// OnProcFail is the process-failure callback of Table 1.
	OnProcFail func(proc netsim.ProcID, ts sim.Time)
	// OnRaw receives unordered raw RPCs sent with SendRaw.
	OnRaw func(src netsim.ProcID, data any)
}

// SendRaw transmits an unordered, unacknowledged message outside the 1Pipe
// total order — for RPC responses and other traffic that does not need
// ordering. Under loss it simply vanishes; callers needing reliability use
// their own timeouts.
func (p *Proc) SendRaw(dst netsim.ProcID, data any, size int) {
	if size <= 0 {
		size = 64
	}
	pkt := netsim.GetPacket()
	pkt.Kind, pkt.Src, pkt.Dst = netsim.KindCtrl, p.ID, dst
	pkt.Payload, pkt.Size = data, size+netsim.HeaderBytes
	p.host.emit(pkt)
}

// AddProc registers a process on this host.
func (h *Host) AddProc(id netsim.ProcID) *Proc {
	p := &Proc{ID: id, host: h}
	h.procs[id] = p
	if !h.hasRepr {
		h.reprProc = id
		h.hasRepr = true
	}
	return p
}

// Procs returns the number of local processes.
func (h *Host) Procs() int { return len(h.procs) }

// Timestamp returns the host's current 1Pipe timestamp
// (onepipe_get_timestamp).
func (p *Proc) Timestamp() sim.Time { return p.host.wire.Now() }

// Send issues a best-effort scattering (onepipe_unreliable_send): all
// messages share one timestamp; lost messages are reported through
// OnSendFail, never retransmitted.
func (p *Proc) Send(msgs []Message) error { return p.host.send(p, msgs, false) }

// SendReliable issues a reliable scattering (onepipe_reliable_send):
// delivery is guaranteed via 2PC unless a participant fails, in which case
// the whole scattering is recalled (restricted failure atomicity).
func (p *Proc) SendReliable(msgs []Message) error { return p.host.send(p, msgs, true) }

// reportStuck escalates a stalled (dst, ts) through OnStuck exactly once:
// every further exhaustion of the same stall — data retransmissions on a
// later RTO, or the recall path stalling on the same scattering — is
// counted by the first report.
func (h *Host) reportStuck(src, dst netsim.ProcID, ts sim.Time) {
	rk := recallKey{dst: dst, ts: ts}
	if h.stuckReported[rk] {
		return
	}
	h.stuckReported[rk] = true
	h.Stats.StuckReports++
	if h.OnStuck != nil {
		h.OnStuck(src, dst, ts)
	}
}

func (h *Host) send(p *Proc, msgs []Message, reliable bool) error {
	if len(msgs) == 0 {
		return ErrNoMessages
	}
	if h.stopped {
		return fmt.Errorf("onepipe: host %d stopped", h.ID)
	}
	if len(h.waitQ) >= sendBufCap {
		return ErrSendBufferFull
	}
	s := newScattering(p, msgs, reliable, h.Cfg.MTU)
	if h.Obs.On() {
		s.submitAt = h.wire.Now()
	}
	// Messages to processes already known failed cannot be sent.
	for i := range s.msgs {
		if _, dead := h.failedPeers[s.msgs[i].Dst]; dead {
			return fmt.Errorf("onepipe: destination %d failed", s.msgs[i].Dst)
		}
	}
	h.tryAcquire(s)
	if s.fullyReserved() {
		h.launch(s)
	} else {
		h.waitQ = append(h.waitQ, s)
	}
	return nil
}
