package core

import (
	"errors"
	"fmt"
	"sort"

	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// ErrSendBufferFull is returned when the credit wait queue is at capacity;
// the application should back off and retry (§6.1: "If the send buffer is
// full, the send API returns fail").
var ErrSendBufferFull = errors.New("onepipe: send buffer full")

// ErrNoMessages is returned for an empty scattering.
var ErrNoMessages = errors.New("onepipe: empty scattering")

// ErrClosed is returned for sends on a stopped host or a closed fabric.
var ErrClosed = errors.New("onepipe: closed")

// ErrBackpressure is the sentinel matched by errors.Is for
// *BackpressureError returns.
var ErrBackpressure = errors.New("onepipe: backpressure")

// BackpressureError is returned when a destination's doorbell/send queue
// is at Config.SendQueueCap: instead of growing the queue without bound
// the send is refused, carrying the earliest time the queue is expected
// to have drained enough to retry.
type BackpressureError struct {
	// Dst is the congested destination.
	Dst netsim.ProcID
	// RetryAt is the earliest-drain estimate: the congested connection's
	// pending doorbell flush if one is armed, otherwise one RTO from now.
	RetryAt sim.Time
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("onepipe: backpressure toward %d, retry at %v", e.Dst, e.RetryAt)
}

// Is makes errors.Is(err, ErrBackpressure) match.
func (e *BackpressureError) Is(target error) bool { return target == ErrBackpressure }

// sendBufCap bounds the number of credit-blocked scatterings per host.
const sendBufCap = 65536

// HostStats counts per-host protocol events.
type HostStats struct {
	MsgsSent          uint64
	MsgsDelivered     uint64
	MsgsFailed        uint64
	PktsSent          uint64
	PktsRetx          uint64
	Naks              uint64
	DupPkts           uint64
	Commits           uint64
	Beacons           uint64
	BeaconsSuppressed uint64 // beacon ticks elided because data carried the floor
	Recalled          uint64
	StuckReports      uint64 // MaxRetx exhaustions escalated, deduplicated per (dst, ts)
	FramesSent        uint64 // multi-message frames emitted (>= 2 live members)
	FrameMsgs         uint64 // messages carried inside multi-message frames
	Backpressure      uint64 // sends refused with ErrBackpressure
	DeliverBatches    uint64 // OnDeliverBatch invocations
	BufferedBytes     int64  // current reorder-buffer occupancy
	MaxBufferBytes    int64
	BufferedMsgs      int64
	// RelaxedDeliveries counts deliveries that bypassed the cross-class
	// total order: untagged messages under DeliverConflictAware.
	RelaxedDeliveries uint64
	// Hybrid reorder buffering and lazy connection lifecycle gauges.
	ReorderSpills   uint64 // entries that overflowed a hot heap into the cold store
	ReorderHotBytes int64  // current hot-heap occupancy across both planes, bytes
	ReorderHotMax   int64  // peak hot-heap occupancy of either plane, entries
	ConnsLive       int64  // current conn + rconn state objects
	ConnsEvicted    uint64 // idle conn/rconn evictions performed
}

// Host is the lib1pipe runtime for one machine (§6.1). All processes on
// the host share its clock, its uplink and its barrier state.
type Host struct {
	Cfg   Config
	ID    int
	Stats HostStats

	// Obs, if set, receives message-lifecycle span records (internal/obs).
	// Install it before traffic flows; a nil tracer costs the hot path one
	// predictable branch per record site.
	Obs *obs.Trace

	wire  Wire
	procs map[netsim.ProcID]*Proc

	// Timestamping.
	lastTS      sim.Time // last assigned message timestamp
	advertisedC sim.Time // commit floor most recently advertised
	// Send side.
	conns map[connKey]*conn
	waitQ []*scattering // credit-blocked, FIFO (held credits, §6.1)
	// holding maps connections with a doorbell-held partial frame to the
	// held head's timestamp; heldFloor caches the minimum so tsFloor can
	// clamp the advertised barrier below every held (already timestamped
	// but not yet emitted) message in O(1).
	holding   map[*conn]sim.Time
	heldFloor sim.Time
	// sendOcc / recvOcc record batch occupancy: messages per emitted
	// batchable unit and per delivery batch.
	sendOcc *stats.Histogram
	recvOcc *stats.Histogram
	// outstanding holds launched reliable scatterings in ascending ts
	// order until fully ACKed or aborted; its head bounds the commit
	// floor (§5.1 Commit phase).
	outstanding []*scattering
	// Receive side.
	rconns      map[connKey]*rconn
	barrierBE   sim.Time
	barrierC    sim.Time
	// beQ/relQ order the two reliability planes; rlxQ holds untagged
	// reliable traffic under DeliverConflictAware, drained by the commit
	// barrier alone (outside the cross-class order).
	beQ, relQ, rlxQ reorderBuf
	deliveredBE sim.Time
	deliveredC  sim.Time
	// Lazy connection lifecycle: evicted peers leave a tiny PSN cursor
	// behind (send-side next PSNs, receive-side consumed-prefix bases) so
	// the pair re-establishes mid-epoch without a handshake; evictTimer
	// drives the periodic idle sweep when Config.ConnIdleEvict is set.
	connMemo   map[connKey]connCursor
	rconnMemo  map[connKey][2]uint32
	evictTimer *timer
	// batchQ accumulates a contiguous run of below-barrier deliveries for
	// one process during drain; flushed through OnDeliverBatch. The slice
	// is reused across batches — receivers must not retain it.
	batchQ   []Delivery
	batchDst netsim.ProcID
	// Failure state.
	failedPeers map[netsim.ProcID]sim.Time // proc -> failure timestamp
	recallTomb  map[recallKey]bool
	recalls     map[recallKey]*recallState
	ackPending  map[ackKey]*ackPend
	failDone    func()
	failWait    int
	// stuckReported deduplicates OnStuck escalations: retransmission
	// exhaustion re-examines the same stall every RTO, and the data and
	// recall paths can stall on the same (dst, ts).
	stuckReported map[recallKey]bool

	// OnStuck, if set, is called when a reliable message or recall from
	// src exhausted MaxRetx retransmissions toward dst; the
	// controller-forwarding path (§5.2) hooks in here.
	OnStuck func(src, dst netsim.ProcID, ts sim.Time)

	beaconTimer    *timer
	lastUplinkSend sim.Time
	stopped        bool
	// draining refuses new sends while the window flushes — the first
	// phase of a graceful leave. Unlike stopped, timers keep running so
	// outstanding scatterings can complete and ACKs still flow.
	draining bool
	// reprProc identifies this host on substrates that key uplink barrier
	// registers by packet source (e.g. the UDP switch): beacons and
	// commit messages carry it as Src.
	reprProc netsim.ProcID
	hasRepr  bool
}

type recallKey struct {
	dst netsim.ProcID
	ts  sim.Time
}

type recallState struct {
	scat  *scattering
	timer *timer
	tries int
}

// NewHost creates the lib1pipe runtime for host id over the given wire.
// Call Start to begin beacon generation, then AddProc for each process.
func NewHost(id int, wire Wire, cfg Config) *Host {
	h := &Host{
		Cfg:         cfg.withDefaults(),
		ID:          id,
		wire:        wire,
		procs:       make(map[netsim.ProcID]*Proc),
		conns:       make(map[connKey]*conn),
		rconns:      make(map[connKey]*rconn),
		failedPeers:   make(map[netsim.ProcID]sim.Time),
		recallTomb:    make(map[recallKey]bool),
		recalls:       make(map[recallKey]*recallState),
		ackPending:    make(map[ackKey]*ackPend),
		stuckReported: make(map[recallKey]bool),
		connMemo:      make(map[connKey]connCursor),
		rconnMemo:     make(map[connKey][2]uint32),
		sendOcc:       new(stats.Histogram),
		recvOcc:       new(stats.Histogram),
	}
	h.beQ.cap = h.Cfg.ReorderHotCap
	h.relQ.cap = h.Cfg.ReorderHotCap
	h.rlxQ.cap = h.Cfg.ReorderHotCap
	return h
}

// SendOccupancy is the distribution of messages per emitted batchable
// unit (1 = a message that found no company within its batch window).
func (h *Host) SendOccupancy() *stats.Histogram { return h.sendOcc }

// RecvOccupancy is the distribution of deliveries per OnDeliverBatch
// invocation.
func (h *Host) RecvOccupancy() *stats.Histogram { return h.recvOcc }

// holdSet records that c is doorbell-holding a partial frame whose oldest
// member carries ts.
func (h *Host) holdSet(c *conn, ts sim.Time) {
	if h.holding == nil {
		h.holding = make(map[*conn]sim.Time)
	}
	if old, ok := h.holding[c]; ok && old == ts {
		return
	}
	h.holding[c] = ts
	h.recomputeHeldFloor()
}

// holdClear removes c from the held set.
func (h *Host) holdClear(c *conn) {
	if _, ok := h.holding[c]; !ok {
		return
	}
	delete(h.holding, c)
	h.recomputeHeldFloor()
}

func (h *Host) recomputeHeldFloor() {
	h.heldFloor = 0
	for _, ts := range h.holding {
		if h.heldFloor == 0 || ts < h.heldFloor {
			h.heldFloor = ts
		}
	}
}

// Start arms the host's uplink beacon generator (§4.2) and, when idle
// eviction is configured, the periodic connection sweep.
func (h *Host) Start() {
	if h.beaconTimer != nil {
		return
	}
	h.beaconTimer = newTimer(h.wire, h.beaconTick)
	h.beaconTimer.reset(h.Cfg.BeaconInterval)
	if h.Cfg.ConnIdleEvict > 0 {
		h.evictTimer = newTimer(h.wire, h.evictTick)
		h.evictTimer.reset(h.Cfg.ConnIdleEvict)
	}
}

func (h *Host) evictTick() {
	if h.stopped {
		return
	}
	h.evictIdle(h.wire.Now() - h.Cfg.ConnIdleEvict)
	h.evictTimer.reset(h.Cfg.ConnIdleEvict)
}

// evictIdle reclaims per-peer state last used at or before deadline. A
// send-side conn is evictable only when nothing references it: no in-flight
// or parked packets, an empty send queue, no reserved credits, no held
// frame, and no credit-blocked scattering pointing at it. A receive-side
// rconn is evictable only when both planes' assembly buffers are idle (no
// buffered fragments, no reception holes). Eviction leaves a PSN cursor in
// the memo maps so getConn/getRconn re-establish the pair mid-epoch with
// sequence spaces intact. Iteration is over sorted keys: eviction order is
// part of the deterministic replay contract.
func (h *Host) evictIdle(deadline sim.Time) {
	var referenced map[*conn]bool
	if len(h.waitQ) > 0 {
		referenced = make(map[*conn]bool)
		for _, s := range h.waitQ {
			for i := range s.credits {
				referenced[s.credits[i].conn] = true
			}
		}
	}
	for _, k := range sortedConnKeys(h.conns) {
		c := h.conns[k]
		if c.lastUse > deadline || referenced[c] || c.holding {
			continue
		}
		if c.inflight != 0 || c.reserved != 0 || len(c.sendQ) != 0 ||
			len(c.unacked[0]) != 0 || len(c.unacked[1]) != 0 || len(c.stuckPkts) != 0 {
			continue
		}
		c.rto.stop()
		c.doorbell.stop()
		h.connMemo[k] = connCursor{nextPSN: c.nextPSN}
		delete(h.conns, k)
		h.Stats.ConnsEvicted++
	}
	for _, k := range sortedConnKeys(h.rconns) {
		rc := h.rconns[k]
		if rc.lastUse > deadline || !rc.bufs[0].idle() || !rc.bufs[1].idle() {
			continue
		}
		h.rconnMemo[k] = [2]uint32{rc.bufs[0].doneBase, rc.bufs[1].doneBase}
		delete(h.rconns, k)
		h.Stats.ConnsEvicted++
	}
	h.Stats.ConnsLive = int64(len(h.conns) + len(h.rconns))
}

// sortedConnKeys returns m's keys in (src, dst) order — the deterministic
// iteration order every map walk with observable side effects must use.
func sortedConnKeys[V any](m map[connKey]V) []connKey {
	keys := make([]connKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	return keys
}

// SetFloor forces the host's timestamping state to at least t: the next
// message timestamp and the advertised commit floor both start above it.
// Live reconfiguration calls this on a joining host with the epoch T_join,
// honoring the promise its pre-seeded link registers already made — no
// message from this host may ever carry a timestamp at or below T_join.
func (h *Host) SetFloor(t sim.Time) {
	if t > h.lastTS {
		h.lastTS = t
	}
	if t > h.advertisedC {
		h.advertisedC = t
	}
}

// Drain begins a graceful leave: new sends are refused with ErrClosed, but
// beacons, retransmissions and ACKs keep running until every outstanding
// scattering, queued frame and recall has flushed. done fires once the
// window is empty; the caller then detaches the host from aggregation and
// calls Stop. Distinct from failure: no failure timestamp is assigned, no
// Recall is initiated and no OnStuck report is generated by the drain
// itself.
func (h *Host) Drain(done func()) {
	if h.stopped {
		done()
		return
	}
	h.draining = true
	var poll func()
	poll = func() {
		if h.stopped {
			return
		}
		// Send-side state only: receiver duties (ACK coalescing, held
		// deliveries) are continuously refilled by peers still sending and
		// run until Stop; a scattering the departing host never finished
		// acknowledging is recalled at its sender, which is the same
		// outcome an ignored ACK would produce.
		if len(h.outstanding) == 0 && len(h.waitQ) == 0 && len(h.holding) == 0 &&
			len(h.recalls) == 0 {
			done()
			return
		}
		h.wire.After(h.Cfg.BeaconInterval, poll)
	}
	poll()
}

// Draining reports whether a graceful leave is in progress.
func (h *Host) Draining() bool { return h.draining }

// Stop halts beacon generation and timers; the host no longer participates.
func (h *Host) Stop() {
	h.stopped = true
	if h.beaconTimer != nil {
		h.beaconTimer.stop()
	}
	if h.evictTimer != nil {
		h.evictTimer.stop()
	}
	for _, c := range h.conns {
		if c.rto != nil {
			c.rto.stop()
		}
		if c.doorbell != nil {
			c.doorbell.stop()
		}
	}
	for _, r := range h.recalls {
		r.timer.stop()
	}
	for _, p := range h.ackPending {
		p.timer.stop()
	}
}

// beaconTick emits the host's periodic uplink beacon (§6.1: the polling
// thread generates periodic beacon packets). When the uplink carried any
// emission within the last interval, that emission already advertised a
// floor at least as fresh as this tick would, so the standalone beacon is
// suppressed (beacon piggybacking); the strict "deliver below barrier"
// rule stays intact because an idle interval always ends with a real
// beacon whose floor exceeds the last data timestamp.
func (h *Host) beaconTick() {
	if h.stopped {
		return
	}
	if !h.Cfg.DisablePiggyback && h.lastUplinkSend > 0 &&
		h.wire.Now()-h.lastUplinkSend < h.Cfg.BeaconInterval {
		h.Stats.BeaconsSuppressed++
	} else {
		h.sendBeacon()
	}
	h.beaconTimer.reset(h.Cfg.BeaconInterval)
}

func (h *Host) sendBeacon() {
	h.Stats.Beacons++
	pkt := netsim.GetPacket()
	pkt.Kind, pkt.Src, pkt.Size = netsim.KindBeacon, h.reprProc, netsim.BeaconBytes
	h.emit(pkt)
}

// emit stamps the barrier fields every host packet carries and sends it.
func (h *Host) emit(pkt *netsim.Packet) {
	pkt.BarrierBE = h.tsFloor()
	pkt.BarrierC = h.commitAdvertise()
	h.lastUplinkSend = h.wire.Now()
	h.Stats.PktsSent++
	h.wire.Send(pkt)
}

// tsFloor is the host's best-effort barrier: no future message from this
// host will carry a timestamp below it. Doorbell-held messages are
// already timestamped but not yet on the wire, so while any connection
// holds a partial frame the floor is clamped below the oldest held
// timestamp — otherwise a beacon during the hold would break the barrier
// promise and the held messages would arrive "late" and be dropped.
func (h *Host) tsFloor() sim.Time {
	t := h.wire.Now()
	if h.lastTS > t {
		t = h.lastTS
	}
	if h.heldFloor > 0 && h.heldFloor-1 < t {
		t = h.heldFloor - 1
	}
	return t
}

// commitFloor is the largest T such that every reliable message from this
// host with timestamp <= T has been fully ACKed (§5.1).
func (h *Host) commitFloor() sim.Time {
	if len(h.outstanding) > 0 {
		return h.outstanding[0].ts - 1
	}
	return h.tsFloor()
}

// commitAdvertise returns the monotone commit floor and records it so that
// timestamp assignment stays strictly above it.
func (h *Host) commitAdvertise() sim.Time {
	if f := h.commitFloor(); f > h.advertisedC {
		h.advertisedC = f
	}
	return h.advertisedC
}

// nextTS assigns the timestamp for a scattering at egress time: the host
// clock, forced strictly increasing and strictly above the advertised
// commit floor (a receiver holding commit barrier T deliver everything
// <= T, so new messages must exceed T).
func (h *Host) nextTS() sim.Time {
	ts := h.wire.Now()
	if ts <= h.lastTS {
		ts = h.lastTS + 1
	}
	if ts <= h.advertisedC {
		ts = h.advertisedC + 1
	}
	h.lastTS = ts
	return ts
}

// Proc is one 1Pipe process endpoint (Table 1's API surface).
type Proc struct {
	ID   netsim.ProcID
	host *Host

	// OnDeliver receives messages in (timestamp, sender) total order.
	OnDeliver func(Delivery)
	// OnDeliverBatch, if set, takes precedence over OnDeliver and receives
	// contiguous below-barrier runs in one call — the delivery fast path.
	// The slice is reused by the runtime after the callback returns;
	// receivers that keep deliveries must copy them out.
	OnDeliverBatch func([]Delivery)
	// OnSendFail is the send-failure callback of Table 1.
	OnSendFail func(SendFailure)
	// OnProcFail is the process-failure callback of Table 1.
	OnProcFail func(proc netsim.ProcID, ts sim.Time)
	// OnRaw receives unordered raw RPCs sent with SendRaw.
	OnRaw func(src netsim.ProcID, data any)
}

// SendRaw transmits an unordered, unacknowledged message outside the 1Pipe
// total order — for RPC responses and other traffic that does not need
// ordering. Under loss it simply vanishes; callers needing reliability use
// their own timeouts.
func (p *Proc) SendRaw(dst netsim.ProcID, data any, size int) {
	if size <= 0 {
		size = 64
	}
	pkt := netsim.GetPacket()
	pkt.Kind, pkt.Src, pkt.Dst = netsim.KindCtrl, p.ID, dst
	pkt.Payload, pkt.Size = data, size+netsim.HeaderBytes
	p.host.emit(pkt)
}

// AddProc registers a process on this host.
func (h *Host) AddProc(id netsim.ProcID) *Proc {
	p := &Proc{ID: id, host: h}
	h.procs[id] = p
	if !h.hasRepr {
		h.reprProc = id
		h.hasRepr = true
	}
	return p
}

// Procs returns the number of local processes.
func (h *Host) Procs() int { return len(h.procs) }

// Timestamp returns the host's current 1Pipe timestamp
// (onepipe_get_timestamp).
func (p *Proc) Timestamp() sim.Time { return p.host.wire.Now() }

// Send issues a best-effort scattering (onepipe_unreliable_send): all
// messages share one timestamp; lost messages are reported through
// OnSendFail, never retransmitted.
func (p *Proc) Send(msgs []Message) error {
	return p.host.send(p, msgs, SendOptions{})
}

// SendReliable issues a reliable scattering (onepipe_reliable_send):
// delivery is guaranteed via 2PC unless a participant fails, in which case
// the whole scattering is recalled (restricted failure atomicity).
func (p *Proc) SendReliable(msgs []Message) error {
	return p.host.send(p, msgs, SendOptions{Reliable: true})
}

// SendOpts issues a scattering with explicit options — the unified send
// entry point behind the public API's Send(msgs, opts...).
func (p *Proc) SendOpts(msgs []Message, o SendOptions) error {
	return p.host.send(p, msgs, o)
}

// reportStuck escalates a stalled (dst, ts) through OnStuck exactly once:
// every further exhaustion of the same stall — data retransmissions on a
// later RTO, or the recall path stalling on the same scattering — is
// counted by the first report.
func (h *Host) reportStuck(src, dst netsim.ProcID, ts sim.Time) {
	rk := recallKey{dst: dst, ts: ts}
	if h.stuckReported[rk] {
		return
	}
	h.stuckReported[rk] = true
	h.Stats.StuckReports++
	if h.OnStuck != nil {
		h.OnStuck(src, dst, ts)
	}
}

func (h *Host) send(p *Proc, msgs []Message, o SendOptions) error {
	if len(msgs) == 0 {
		return ErrNoMessages
	}
	if h.stopped {
		return fmt.Errorf("onepipe: host %d stopped: %w", h.ID, ErrClosed)
	}
	if h.draining {
		return fmt.Errorf("onepipe: host %d draining: %w", h.ID, ErrClosed)
	}
	if len(h.waitQ) >= sendBufCap {
		return ErrSendBufferFull
	}
	s := newScattering(p, msgs, o.Reliable, h.Cfg.MTU)
	s.conflict = o.ConflictKey
	if win := h.batchWindow(o); win > 0 && s.totalPkts == len(s.msgs) &&
		(o.Reliable || !h.Cfg.DisableBEAck) {
		// Single-fragment messages with batching on: fragments may
		// coalesce into multi-message frames on their connections.
		s.batch = true
		s.batchWin = win
	}
	if h.Obs.On() {
		s.submitAt = h.wire.Now()
	}
	// Messages to processes already known failed cannot be sent.
	for i := range s.msgs {
		if _, dead := h.failedPeers[s.msgs[i].Dst]; dead {
			return fmt.Errorf("onepipe: destination %d failed", s.msgs[i].Dst)
		}
	}
	// Backpressure: refuse to grow a destination queue past SendQueueCap.
	// Checked before credits are acquired, so a refused send leaves no
	// state behind.
	for i := range s.credits {
		cr := &s.credits[i]
		if len(cr.conn.sendQ)+cr.needed > h.Cfg.SendQueueCap {
			h.Stats.Backpressure++
			retry := h.wire.Now() + h.Cfg.RTO
			if cr.conn.holding && cr.conn.doorbell.armed {
				retry = h.wire.Now() + h.Cfg.BatchWindow
			}
			return &BackpressureError{Dst: cr.conn.key.dst, RetryAt: retry}
		}
	}
	h.tryAcquire(s)
	if s.fullyReserved() {
		h.launch(s)
	} else {
		h.waitQ = append(h.waitQ, s)
	}
	return nil
}

// batchWindow resolves the effective doorbell window for one send.
func (h *Host) batchWindow(o SendOptions) sim.Time {
	if h.Cfg.DisableBatching || o.NoBatch {
		return 0
	}
	if o.BatchWindow > 0 {
		return o.BatchWindow
	}
	return h.Cfg.BatchWindow
}
