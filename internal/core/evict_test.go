package core

import (
	"math/rand"
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// runBurstyWorkload deploys a small cluster and drives two traffic bursts
// separated by a long silence — the shape that lets idle-connection eviction
// engage between bursts and forces re-establishment (with PSN continuity)
// when the second burst reuses the same process pairs. The entire schedule
// is derived from seed, so two runs differing only in evict are packet-for-
// packet comparable.
func runBurstyWorkload(t *testing.T, seed int64, evict sim.Time) ([][]propRec, *Cluster) {
	t.Helper()
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 1}, 2)
	cfg.Seed = seed
	cfg.Jitter = 500 * sim.Nanosecond
	ccfg := DefaultConfig()
	ccfg.ConnIdleEvict = evict
	cl := Deploy(netsim.New(cfg), ccfg)
	np := len(cl.Procs)
	logs := make([][]propRec, np)
	for i, p := range cl.Procs {
		i := i
		p.OnDeliver = func(d Delivery) {
			logs[i] = append(logs[i], propRec{ts: d.TS, src: d.Src, id: d.Data.(int64), reliable: d.Reliable})
		}
	}

	rng := rand.New(rand.NewSource(seed))
	eng := cl.Net.Eng
	var nextID int64
	send := func(pi int) {
		id := nextID
		nextID++
		dst := netsim.ProcID(rng.Intn(np))
		for int(dst) == pi {
			dst = netsim.ProcID(rng.Intn(np))
		}
		msgs := []Message{{Dst: dst, Data: id, Size: 64}}
		if rng.Intn(2) == 0 {
			_ = cl.Proc(pi).SendReliable(msgs)
		} else {
			_ = cl.Proc(pi).Send(msgs)
		}
	}
	// Burst 1: [0, 100µs). Silence: [100µs, 500µs) — several eviction
	// periods. Burst 2: [500µs, 600µs), reusing the same pairs.
	for burst, base := range []sim.Time{0, 500 * sim.Microsecond} {
		_ = burst
		for pi := 0; pi < np; pi++ {
			pi := pi
			for k := 0; k < 12; k++ {
				eng.After(base+sim.Time(rng.Intn(100_000))*sim.Nanosecond, func() { send(pi) })
			}
		}
	}
	cl.Run(1200 * sim.Microsecond)
	return logs, cl
}

// TestConnEvictionTransparent is the lazy-lifecycle acceptance test at the
// core level: with ConnIdleEvict armed, idle connections are actually
// reclaimed during the inter-burst silence, re-established connections
// resume PSN-continuously on the second burst (a reset PSN would surface as
// a duplicate drop or a reordering below), and the per-process delivery
// logs are identical to the eviction-off run — eviction is invisible to the
// application.
func TestConnEvictionTransparent(t *testing.T) {
	const seed = 77
	base, _ := runBurstyWorkload(t, seed, 0)
	got, cl := runBurstyWorkload(t, seed, 120*sim.Microsecond)

	ts := cl.TotalStats()
	if ts.ConnsEvicted == 0 {
		t.Fatal("no connection was evicted across the silence — lifecycle never engaged")
	}
	if ts.MsgsDelivered == 0 {
		t.Fatal("no deliveries at all")
	}
	for i := range base {
		if len(base[i]) != len(got[i]) {
			t.Fatalf("proc %d: %d deliveries with eviction, %d without", i, len(got[i]), len(base[i]))
		}
		for j := range base[i] {
			if base[i][j] != got[i][j] {
				t.Fatalf("proc %d delivery %d: %+v with eviction, %+v without — eviction is not transparent",
					i, j, got[i][j], base[i][j])
			}
		}
	}
	// The second burst must have re-established evicted connections: live
	// conns exist again (or were evicted again after the final drain, which
	// still proves the establish path ran post-eviction).
	if ts.ConnsLive == 0 && ts.ConnsEvicted == 0 {
		t.Fatal("no connection state at end of run")
	}
}

// TestConnEvictionAccounting pins the gauge arithmetic: every eviction
// decrements ConnsLive, every (re-)establishment increments it, and the
// final gauge equals the number of live conn/rconn entries actually held.
func TestConnEvictionAccounting(t *testing.T) {
	_, cl := runBurstyWorkload(t, 99, 120*sim.Microsecond)
	var live int64
	for _, h := range cl.Hosts {
		live += int64(len(h.conns) + len(h.rconns))
		if h.Stats.ConnsLive != int64(len(h.conns)+len(h.rconns)) {
			t.Fatalf("host %d: ConnsLive=%d but holds %d conns + %d rconns",
				h.ID, h.Stats.ConnsLive, len(h.conns), len(h.rconns))
		}
	}
	if got := cl.TotalStats().ConnsLive; got != live {
		t.Fatalf("TotalStats.ConnsLive=%d, hosts hold %d", got, live)
	}
}
