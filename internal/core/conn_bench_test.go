package core

import (
	"fmt"
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// discardWire is the minimal Wire for exercising conn in isolation: packets
// go straight back to the pool and timers never fire.
type discardWire struct {
	now sim.Time
}

func (w *discardWire) Send(pkt *netsim.Packet) { netsim.PutPacket(pkt) }
func (w *discardWire) Now() sim.Time           { return w.now }
func (w *discardWire) After(sim.Time, func())  {}

// BenchmarkRTORetransmit measures one RTO firing over a window of n unACKed
// reliable packets. The PSN-ordered relOrder walk replaced rebuilding and
// sorting the unacked key set on every firing; this pins the cost of the
// replacement at window sizes bracketing the default send window.
func BenchmarkRTORetransmit(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("window=%d", n), func(b *testing.B) {
			w := &discardWire{now: 1}
			h := NewHost(0, w, DefaultConfig())
			h.Cfg.MaxRetx = 0 // never park: keep the window stable across firings
			c := h.getConn(0, 1)
			s := &scattering{reliable: true, ts: 1, msgs: []Message{{Dst: 1, Size: 64}}}
			for i := 0; i < n; i++ {
				psn := c.nextPSN[1]
				c.nextPSN[1]++
				op := &outPkt{psn: psn, scat: s, endOfMsg: true, size: 64}
				c.unacked[1][psn] = op
				c.relOrder = append(c.relOrder, psn)
				c.inflight++
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.onRTO()
			}
		})
	}
}
