package core

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

func pushPending(h *deliveryHeap, p *pending) { heap.Push(h, p) }
func popPending(h *deliveryHeap) *pending     { return heap.Pop(h).(*pending) }

func mkFrag(psn uint32, fragIdx uint16, eom bool, msgTS sim.Time) *netsim.Packet {
	return &netsim.Packet{
		Kind: netsim.KindData, PSN: psn, FragIdx: fragIdx, EndOfMsg: eom,
		MsgTS: msgTS, Size: 100 + netsim.HeaderBytes,
	}
}

func TestAsmSingleFragment(t *testing.T) {
	a := newAsmBuf(false)
	last, size, ok := a.add(mkFrag(0, 0, true, 1))
	if !ok || last == nil || size != 100 {
		t.Fatalf("single fragment not complete: ok=%v size=%d", ok, size)
	}
	if !a.isDup(0) {
		t.Fatal("consumed PSN not recognized as duplicate")
	}
}

func TestAsmOutOfOrderFragments(t *testing.T) {
	a := newAsmBuf(false)
	// 3-fragment message arriving 2,0,1.
	if _, _, ok := a.add(mkFrag(2, 2, true, 5)); ok {
		t.Fatal("completed with missing fragments")
	}
	if _, _, ok := a.add(mkFrag(0, 0, false, 5)); ok {
		t.Fatal("completed with missing middle fragment")
	}
	last, size, ok := a.add(mkFrag(1, 1, false, 5))
	if !ok || size != 300 {
		t.Fatalf("3-fragment message: ok=%v size=%d", ok, size)
	}
	if !last.EndOfMsg {
		t.Fatal("carrier is not the end-of-message fragment")
	}
}

func TestAsmHoleDoesNotBlockLaterMessages(t *testing.T) {
	a := newAsmBuf(true)
	// PSN 0 lost forever; messages at PSN 1 and 2 must still complete.
	if _, _, ok := a.add(mkFrag(1, 0, true, 2)); !ok {
		t.Fatal("later message blocked by hole")
	}
	if _, _, ok := a.add(mkFrag(2, 0, true, 3)); !ok {
		t.Fatal("second later message blocked by hole")
	}
}

func TestAsmSkipConsumesWholeMessage(t *testing.T) {
	a := newAsmBuf(true)
	a.add(mkFrag(0, 0, false, 1)) // first fragment buffered
	a.skip(mkFrag(1, 1, false, 1))
	// Both positions consumed; the late EOM is a dup.
	if !a.isDup(0) || !a.isDup(1) {
		t.Fatal("skip did not consume buffered siblings")
	}
}

func TestAsmDoneCapForgetsOldHoles(t *testing.T) {
	a := newAsmBuf(true)
	// Leave a hole at 0, then complete many messages above it.
	for psn := uint32(1); psn <= asmDoneCap+100; psn++ {
		if _, _, ok := a.add(mkFrag(psn, 0, true, sim.Time(psn))); !ok {
			t.Fatalf("message at %d blocked", psn)
		}
	}
	if len(a.done) > asmDoneCap {
		t.Fatalf("done set grew to %d despite cap", len(a.done))
	}
	// The forgotten hole's late arrival registers as a duplicate.
	if !a.isDup(0) {
		t.Fatal("forgotten hole not treated as duplicate")
	}
}

// TestAsmCappedPathFreesStrandedFrags is the pool-leak regression for the
// capped force-advance: a partial message buffered below a reception hole
// (frag 0 of a 2-fragment message whose tail never arrives) is stranded when
// doneBase is forced past it by the done-set cap. The force-advance must
// drop AND free the fragment — before the fix it only advanced doneBase,
// so the fragment stayed in frags forever (unreachable: isDup reports its
// PSN consumed) and its pooled packet was never returned.
func TestAsmCappedPathFreesStrandedFrags(t *testing.T) {
	a := newAsmBuf(true)
	freed := 0
	a.free = func(*netsim.Packet) { freed++ }
	// Buffer the head of an incomplete message at PSN 0 (its EndOfMsg frag
	// is lost), leaving a reception hole that parks doneBase at 0.
	if _, _, ok := a.add(mkFrag(0, 0, false, 1)); ok {
		t.Fatal("incomplete message completed")
	}
	// Complete single-frag messages above it until the cap forces doneBase
	// across the hole. Each completion frees nothing itself (the final
	// fragment is returned to the caller), so every a.free call below is a
	// force-advance drop.
	for psn := uint32(1); psn <= asmDoneCap+100; psn++ {
		if _, _, ok := a.add(mkFrag(psn, 0, true, sim.Time(psn))); !ok {
			t.Fatalf("message at %d blocked", psn)
		}
	}
	if len(a.frags) != 0 {
		t.Fatalf("%d stranded fragment(s) survived the forced doneBase advance (pool leak)", len(a.frags))
	}
	if freed != 1 {
		t.Fatalf("stranded fragment freed %d times, want exactly 1 (pool balance)", freed)
	}
	if a.doneBase <= 0 || !a.isDup(0) {
		t.Fatalf("doneBase %d did not pass the dropped slot", a.doneBase)
	}
}

// Property: for any set of messages fragmented and delivered in any order,
// every message completes exactly once with its full size, regardless of
// interleaving.
func TestAsmReassemblyProperty(t *testing.T) {
	f := func(seed int64, sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 64 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := newAsmBuf(false)
		type frag struct {
			pkt  *netsim.Packet
			msg  int
			want int
		}
		var frags []frag
		psn := uint32(0)
		wants := make([]int, len(sizes))
		for m, s := range sizes {
			nf := int(s%5) + 1
			wants[m] = nf * 100
			for fIdx := 0; fIdx < nf; fIdx++ {
				frags = append(frags, frag{
					pkt: mkFrag(psn, uint16(fIdx), fIdx == nf-1, sim.Time(m+1)),
					msg: m, want: nf * 100,
				})
				psn++
			}
		}
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		completed := make(map[int]int)
		for _, fr := range frags {
			if last, size, ok := a.add(fr.pkt); ok {
				m := int(last.MsgTS) - 1
				completed[m] = size
			}
		}
		if len(completed) != len(sizes) {
			return false
		}
		for m, want := range wants {
			if completed[m] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: deliveryHeap pops in (ts, src, psn) order for arbitrary input.
func TestDeliveryHeapOrderProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) > 500 {
			raw = raw[:500]
		}
		var h deliveryHeap
		var want []*pending
		for _, r := range raw {
			p := &pending{
				ts:  sim.Time(r % 97),
				src: netsim.ProcID(r / 97 % 13),
				psn: r,
			}
			want = append(want, p)
			pushPending(&h, p)
		}
		sort.Slice(want, func(i, j int) bool {
			a, b := want[i], want[j]
			if a.ts != b.ts {
				return a.ts < b.ts
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.psn < b.psn
		})
		for _, w := range want {
			got := popPending(&h)
			if got.ts != w.ts || got.src != w.src || got.psn != w.psn {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapReinitAfterFilter(t *testing.T) {
	var h deliveryHeap
	for i := 20; i > 0; i-- {
		pushPending(&h, &pending{ts: sim.Time(i), src: 0, psn: uint32(i)})
	}
	// Filter out even timestamps in place (the discard path).
	kept := h[:0]
	for _, p := range h {
		if p.ts%2 == 1 {
			kept = append(kept, p)
		}
	}
	h = kept
	h.reinit()
	last := sim.Time(0)
	for h.Len() > 0 {
		p := popPending(&h)
		if p.ts < last {
			t.Fatal("heap order broken after reinit")
		}
		if p.ts%2 == 0 {
			t.Fatal("filtered element survived")
		}
		last = p.ts
	}
}
