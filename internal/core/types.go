// Package core implements lib1pipe, the end-host runtime of 1Pipe (§6.1).
//
// A Host owns every 1Pipe process on one machine: it assigns monotonic
// message timestamps, runs the send buffer with scattering credits and
// DCTCP-style congestion control, fragments messages into UD-style packets,
// tracks end-to-end ACKs, computes the commit floor of reliable 1Pipe's two
// phase commit, generates beacons on the idle uplink, and reorders received
// messages in a priority queue for barrier-gated delivery.
//
// The package is substrate-independent: all I/O goes through the Wire
// interface, so the same state machines run on the deterministic network
// simulator (internal/netsim) and the real-time emulator (internal/livenet).
package core

import (
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// Wire abstracts the host's attachment to the network and to time. Now
// must return the host's synchronized, monotonically non-decreasing clock.
type Wire interface {
	// Send injects a packet from this host into the network.
	Send(pkt *netsim.Packet)
	// Now returns the host clock in nanoseconds.
	Now() sim.Time
	// After schedules fn once, d nanoseconds from now.
	After(d sim.Time, fn func())
}

// Message is one element of a scattering: payload for one destination.
type Message struct {
	Dst  netsim.ProcID
	Data any
	// Size is the payload size in bytes used for fragmentation and
	// bandwidth accounting; zero is treated as 64.
	Size int
}

// Delivery is a message handed to the application, in (TS, Src) total
// order.
type Delivery struct {
	TS       sim.Time
	Src, Dst netsim.ProcID
	Data     any
	Reliable bool
	// Conflict is the sender-declared conflict key (DeliverConflictAware).
	// 0 = declared non-conflicting: delivered as soon as locally stable,
	// outside the cross-class total order.
	Conflict uint32
}

// SendFailure reports a message that will not be delivered: a best-effort
// message that was lost or NAKed, or a reliable message recalled because a
// receiver in its scattering failed (Table 1's send-fail callback).
type SendFailure struct {
	TS   sim.Time
	Dst  netsim.ProcID
	Data any
}

// DeliveryMode selects how the two reliability classes interleave at a
// receiver.
type DeliveryMode uint8

const (
	// DeliverSeparate treats best-effort and reliable 1Pipe as two
	// independent totally-ordered streams — the paper's default, giving
	// best-effort its 0.5 RTT + barrier-wait latency.
	DeliverSeparate DeliveryMode = iota
	// DeliverUnified gates every delivery on min(barrierBE, barrierC) so
	// the two classes form a single cross-class total order; best-effort
	// messages then pay commit-plane freshness when reliable traffic is
	// active.
	DeliverUnified
	// DeliverConflictAware relaxes DeliverUnified per Generic Multicast:
	// messages tagged with a nonzero SendOptions.ConflictKey keep the full
	// unified barrier wait (and are totally ordered against every other
	// tagged message, regardless of key value — a deliberately coarse
	// conflict relation, see DESIGN.md), while untagged (key 0) messages
	// deliver as soon as they are locally stable: best-effort immediately
	// on reassembly, reliable once the commit barrier covers them (so the
	// §5.2 recall window still protects atomicity). Untagged deliveries
	// never advance the total-order floors, so with every message tagged
	// the delivery log is byte-identical to DeliverUnified.
	DeliverConflictAware
)

// Config parameterizes lib1pipe on one host.
type Config struct {
	// MTU is the maximum payload bytes per packet.
	MTU int
	// RecvWindow is the per-connection receive buffer provision, in
	// packets; it caps the send window.
	RecvWindow int
	// InitCwnd and MaxCwnd bound the DCTCP congestion window (packets).
	InitCwnd, MaxCwnd float64
	// DCTCPGain is the g parameter of the DCTCP alpha EWMA.
	DCTCPGain float64
	// RTO is the reliable-service retransmission timeout.
	RTO sim.Time
	// MaxRetx bounds retransmissions before the sender escalates to the
	// controller (0 = unbounded).
	MaxRetx int
	// SendFailTimeout is how long a best-effort message may stay unACKed
	// before the send-failure callback fires (loss detection without
	// retransmission, §2.1).
	SendFailTimeout sim.Time
	// BeaconInterval is the host uplink beacon period (§4.2).
	BeaconInterval sim.Time
	// UseDataBarriers: with a programmable chip every received packet
	// carries valid barriers; with switch-CPU or host-delegate processing
	// only beacons do (§6.2.2).
	UseDataBarriers bool
	// Mode selects the delivery interleaving (see DeliveryMode).
	Mode DeliveryMode
	// DisableBEAck turns off best-effort ACK generation (halves packet
	// count when loss detection is not needed, e.g. throughput sweeps).
	DisableBEAck bool
	// AckFlush batches end-to-end ACKs: per sender, ACK PSNs accumulate
	// for up to AckFlush (or AckBatchMax entries) before one coalesced
	// ACK packet is emitted — the polling-thread batching that keeps ACK
	// packet rate off the NIC's critical path (§6.1). Zero disables
	// batching (one ACK per packet).
	AckFlush    sim.Time
	AckBatchMax int
	// DeliveryHoldback artificially lowers the effective barriers by the
	// given amount, inflating delivery latency and reorder-buffer
	// occupancy — the knob behind the paper's Fig. 11 overhead sweep.
	DeliveryHoldback sim.Time
	// BatchWindow is how long a partial multi-message frame waits for more
	// same-destination traffic before the doorbell flushes it (§6.1 send
	// batching). DisableBatching turns coalescing off entirely (one packet
	// per fragment, the pre-batching wire behavior).
	BatchWindow     sim.Time
	BatchBytes      int // frame payload budget; defaults to MTU
	DisableBatching bool
	// SendQueueCap bounds each connection's doorbell/send queue in
	// fragments; sends that would exceed it fail with ErrBackpressure.
	SendQueueCap int
	// DisablePiggyback restores unconditional beacon ticks instead of
	// suppressing beacons while data emissions already carry the floor.
	DisablePiggyback bool
	// ReorderHotCap bounds each delivery heap (per reliability plane) to
	// this many hot entries. Overflow spills to the per-host ordered cold
	// store and is refilled as the barriers advance, so hot reorder memory
	// stays O(cap) while delivery order is unchanged (hybrid buffering;
	// Almeida's bounded hot buffer + ordered spill). 0 = unbounded.
	ReorderHotCap int
	// ConnIdleEvict enables lazy connection lifecycle: per-peer send and
	// receive state idle for at least this long — and holding no in-flight,
	// queued, parked or partially reassembled data — is reclaimed, leaving
	// only a small PSN cursor behind so the connection re-establishes
	// safely mid-epoch on next use. 0 disables eviction (eager state for
	// the whole fabric, the historical behavior).
	ConnIdleEvict sim.Time
}

// DefaultConfig matches the paper's deployment parameters.
func DefaultConfig() Config {
	return Config{
		MTU:             1024,
		RecvWindow:      1024,
		InitCwnd:        64,
		MaxCwnd:         1024,
		DCTCPGain:       1.0 / 16.0,
		RTO:             20 * sim.Microsecond,
		MaxRetx:         64,
		SendFailTimeout: 100 * sim.Microsecond,
		BeaconInterval:  3 * sim.Microsecond,
		UseDataBarriers: true,
		Mode:            DeliverSeparate,
		AckFlush:        1 * sim.Microsecond,
		AckBatchMax:     32,
		BatchWindow:     1 * sim.Microsecond,
		BatchBytes:      1024,
		SendQueueCap:    65536,
	}
}

// SendOptions parameterizes one scattering; the zero value is a
// best-effort send with the host's default batching.
type SendOptions struct {
	// Reliable selects reliable 1Pipe (2PC, recall on failure) instead of
	// best-effort.
	Reliable bool
	// BatchWindow overrides Config.BatchWindow for this scattering when
	// positive.
	BatchWindow sim.Time
	// NoBatch exempts this scattering from frame coalescing.
	NoBatch bool
	// ConflictKey declares the scattering's conflict class for
	// DeliverConflictAware receivers. 0 (the default) declares it
	// non-conflicting; other modes ignore the key.
	ConflictKey uint32
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MTU <= 0 {
		c.MTU = d.MTU
	}
	if c.RecvWindow <= 0 {
		c.RecvWindow = d.RecvWindow
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = d.InitCwnd
	}
	if c.MaxCwnd <= 0 {
		c.MaxCwnd = d.MaxCwnd
	}
	if c.DCTCPGain <= 0 {
		c.DCTCPGain = d.DCTCPGain
	}
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.SendFailTimeout <= 0 {
		c.SendFailTimeout = d.SendFailTimeout
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = d.BeaconInterval
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = d.BatchWindow
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = c.MTU
	}
	if c.SendQueueCap <= 0 {
		c.SendQueueCap = d.SendQueueCap
	}
	return c
}

// timer is a light re-armable timer over Wire.After.
type timer struct {
	wire  Wire
	fn    func()
	epoch uint64
	armed bool
}

func newTimer(w Wire, fn func()) *timer { return &timer{wire: w, fn: fn} }

func (t *timer) reset(d sim.Time) {
	t.epoch++
	t.armed = true
	e := t.epoch
	t.wire.After(d, func() {
		if t.epoch != e || !t.armed {
			return
		}
		t.armed = false
		t.fn()
	})
}

func (t *timer) stop() {
	t.epoch++
	t.armed = false
}
