package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

func TestStoppedHostRejectsSends(t *testing.T) {
	cl := smallNet(t, 1, nil)
	cl.Run(50 * sim.Microsecond)
	cl.Hosts[0].Stop()
	if err := cl.Proc(0).Send([]Message{{Dst: 1, Size: 16}}); err == nil {
		t.Fatal("stopped host accepted a send")
	}
}

func TestStoppedHostIgnoresTraffic(t *testing.T) {
	cl := smallNet(t, 1, nil)
	delivered := 0
	cl.Procs[1].OnDeliver = func(Delivery) { delivered++ }
	cl.Run(50 * sim.Microsecond)
	cl.Hosts[1].Stop()
	cl.Proc(0).Send([]Message{{Dst: 1, Size: 16}})
	cl.Run(1 * sim.Millisecond)
	if delivered != 0 {
		t.Fatal("stopped host delivered")
	}
}

func TestBarriersExposed(t *testing.T) {
	cl := smallNet(t, 1, nil)
	cl.Run(500 * sim.Microsecond)
	be, c := cl.Hosts[0].Barriers()
	if be == 0 || c == 0 {
		t.Fatalf("barriers never advanced: %v %v", be, c)
	}
	if c > be {
		t.Fatalf("commit barrier %v ahead of best-effort %v", c, be)
	}
}

func TestSendToSelfProcOnSameHost(t *testing.T) {
	// Two procs on one host: a scattering to a sibling traverses the ToR
	// loopback and still obeys total order.
	cl := smallNet(t, 2, nil)
	var order []sim.Time
	cl.Procs[1].OnDeliver = func(d Delivery) { order = append(order, d.TS) }
	cl.Run(50 * sim.Microsecond)
	for i := 0; i < 10; i++ {
		cl.Proc(0).Send([]Message{{Dst: 1, Size: 16}}) // same host
		cl.Run(3 * sim.Microsecond)
	}
	cl.Run(500 * sim.Microsecond)
	if len(order) != 10 {
		t.Fatalf("delivered %d of 10 same-host messages", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatal("same-host deliveries out of order")
		}
	}
}

func TestSendFailureForUnattachedDestination(t *testing.T) {
	// Destination proc beyond the deployed range: packets route to a host
	// that drops them; best-effort reports failure after the timeout.
	cl := smallNet(t, 1, nil)
	fails := 0
	cl.Procs[0].OnSendFail = func(SendFailure) { fails++ }
	cl.Run(50 * sim.Microsecond)
	// Proc 6 exists but has no OnDeliver and never ACKs... it does ACK at
	// the transport level. Use a dst whose host index is out of range
	// instead: HostOfProc(40) = 40 which panics... so use a valid proc on
	// a killed host.
	cl.Net.G.KillNode(cl.Net.G.Host(3))
	cl.Proc(0).Send([]Message{{Dst: 3, Size: 16}})
	cl.Run(2 * sim.Millisecond)
	if fails != 1 {
		t.Fatalf("send failures = %d, want 1", fails)
	}
}

func TestReprProcStampsBeacons(t *testing.T) {
	// Beacons must carry a valid local proc as Src so Src-keyed substrates
	// attribute them to the right uplink.
	cl := smallNet(t, 2, nil)
	seen := make(map[netsim.ProcID]bool)
	cl.Net.AttachHost(1, func(p *netsim.Packet) {
		if p.Kind == netsim.KindBeacon {
			seen[p.Src] = true
		}
	})
	_ = seen // beacons to hosts come from switches (Src 0); check the host's own emissions instead
	h := cl.Hosts[3]
	if !h.hasRepr {
		t.Fatal("host has no representative proc")
	}
	if got := cl.Net.HostOfProc(h.reprProc); got != 3 {
		t.Fatalf("repr proc %d maps to host %d, want 3", h.reprProc, got)
	}
}
