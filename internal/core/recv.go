package core

import (
	"container/heap"

	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
)

// pending is one complete message waiting in the reorder buffer.
type pending struct {
	ts       sim.Time
	src, dst netsim.ProcID
	psn      uint32 // PSN of the last fragment; tie-break within (ts, src)
	data     any
	size     int
	reliable bool
	// conflict is the sender-declared conflict key (DeliverConflictAware);
	// 0 = declared non-conflicting.
	conflict uint32
	// enqAt is the reassembly-complete time, recorded only while tracing;
	// the enqueue → deliver gap is the barrier wait (obs.SpanBarrierWait).
	enqAt sim.Time
}

// deliveryHeap orders messages by (timestamp, sender, PSN) — the total
// order of §2.1 with ties broken by sender ID.
type deliveryHeap []*pending

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.psn < b.psn
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(*pending)) }
func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
func (h deliveryHeap) top() *pending { return h[0] }

// pendingLess is the (ts, src, psn) total-order key of §2.1 on two entries.
func pendingLess(a, b *pending) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.psn < b.psn
}

// coldRun is one sorted run of spilled entries, consumed from the head.
type coldRun struct {
	ents []*pending
	head int
}

// coldStore is the ordered spill half of hybrid reorder buffering: entries
// that overflow the hot heap are appended to sorted runs — O(1) while keys
// ascend, which is the common case since timestamps roughly increase — and
// the global minimum is found by scanning the run heads. Compared to the
// hot heap the cold store is flat slices with no per-entry heap movement,
// the stand-in for the paper-adjacent spill tier (Almeida's hybrid
// buffering): hot occupancy stays bounded by Config.ReorderHotCap while
// total buffering, and therefore delivery order, is unchanged.
type coldStore struct {
	runs []coldRun
	size int
}

func (c *coldStore) push(p *pending) {
	if n := len(c.runs); n > 0 {
		run := &c.runs[n-1]
		if !pendingLess(p, run.ents[len(run.ents)-1]) {
			run.ents = append(run.ents, p)
			c.size++
			return
		}
	}
	c.runs = append(c.runs, coldRun{ents: []*pending{p}})
	c.size++
}

// peekMin returns the smallest spilled entry, or nil when empty. Ties are
// impossible — (ts, src, psn) is unique per buffered message — so scanning
// run heads in index order is deterministic.
func (c *coldStore) peekMin() *pending {
	var best *pending
	for i := range c.runs {
		r := &c.runs[i]
		if e := r.ents[r.head]; best == nil || pendingLess(e, best) {
			best = e
		}
	}
	return best
}

func (c *coldStore) popMin() *pending {
	bi := -1
	var best *pending
	for i := range c.runs {
		r := &c.runs[i]
		if e := r.ents[r.head]; best == nil || pendingLess(e, best) {
			best, bi = e, i
		}
	}
	r := &c.runs[bi]
	r.ents[r.head] = nil
	r.head++
	c.size--
	if r.head == len(r.ents) {
		c.runs = append(c.runs[:bi], c.runs[bi+1:]...)
	}
	return best
}

// filter drops entries matching drop, preserving run order (a subsequence
// of a sorted run is sorted).
func (c *coldStore) filter(drop func(*pending) bool) {
	kept := c.runs[:0]
	c.size = 0
	for i := range c.runs {
		r := &c.runs[i]
		out := r.ents[:0]
		for _, e := range r.ents[r.head:] {
			if !drop(e) {
				out = append(out, e)
			}
		}
		if len(out) > 0 {
			kept = append(kept, coldRun{ents: out})
			c.size += len(out)
		}
	}
	c.runs = kept
}

// reorderBuf is one plane's reorder buffer: a hot delivery heap bounded by
// cap entries plus the ordered cold spill. The externally visible order —
// top/pop always yield the global (ts, src, psn) minimum — is identical to
// a single unbounded heap; only the residence of entries differs.
type reorderBuf struct {
	hot      deliveryHeap
	cold     coldStore
	cap      int // 0 = unbounded hot heap (no spill ever)
	hotBytes int64
}

// push buffers an entry, spilling when the hot heap is at cap. Reports
// whether the entry went cold (for the ReorderSpills counter).
func (b *reorderBuf) push(p *pending) bool {
	if b.cap > 0 && len(b.hot) >= b.cap {
		b.cold.push(p)
		return true
	}
	heap.Push(&b.hot, p)
	b.hotBytes += int64(p.size)
	return false
}

func (b *reorderBuf) Len() int { return len(b.hot) + b.cold.size }

// top returns the globally smallest buffered entry.
func (b *reorderBuf) top() *pending {
	var h *pending
	if len(b.hot) > 0 {
		h = b.hot.top()
	}
	c := b.cold.peekMin()
	if h == nil {
		return c
	}
	if c != nil && pendingLess(c, h) {
		return c
	}
	return h
}

// pop removes and returns the global minimum, then refills the hot heap
// from the cold store while capacity allows — the "refill as the barriers
// advance" half of hybrid buffering (pops happen only when a barrier
// advance uncovered the entry).
func (b *reorderBuf) pop() *pending {
	var p *pending
	c := b.cold.peekMin()
	if len(b.hot) == 0 || (c != nil && pendingLess(c, b.hot.top())) {
		p = b.cold.popMin()
	} else {
		p = heap.Pop(&b.hot).(*pending)
		b.hotBytes -= int64(p.size)
	}
	for b.cold.size > 0 && (b.cap == 0 || len(b.hot) < b.cap) {
		e := b.cold.popMin()
		heap.Push(&b.hot, e)
		b.hotBytes += int64(e.size)
	}
	return p
}

// filter drops buffered entries matching drop from both tiers (failure
// discard and recall tombstoning).
func (b *reorderBuf) filter(drop func(*pending) bool) {
	kept := b.hot[:0]
	for _, p := range b.hot {
		if drop(p) {
			b.hotBytes -= int64(p.size)
			continue
		}
		kept = append(kept, p)
	}
	b.hot = kept
	b.hot.reinit()
	b.cold.filter(drop)
}

// asmBuf reassembles one class's fragment stream for one (sender, local
// process) pair. Reassembly is keyed on (PSN - FragIdx), the message's
// first PSN, so holes left by lost best-effort packets never block later
// messages.
type asmBuf struct {
	doneBase uint32 // every PSN below this is consumed or skipped
	done     map[uint32]bool
	frags    map[uint32]*netsim.Packet
	capped   bool // best-effort: bound the done set by forcing doneBase forward
	// free, when set, releases consumed fragments back to the packet pool.
	// Production buffers (getRconn) wire it to netsim.PutPacket; unit tests
	// that drive the buffer with their own reusable packets leave it nil.
	free func(*netsim.Packet)
}

func newAsmBuf(capped bool) *asmBuf {
	return &asmBuf{done: make(map[uint32]bool), frags: make(map[uint32]*netsim.Packet), capped: capped}
}

// asmDoneCap bounds the done set of a best-effort assembly buffer: beyond
// it, permanently-lost PSN holes are forgotten (their late arrivals are
// treated as duplicates — acceptable for at-most-once traffic).
const asmDoneCap = 4096

func (a *asmBuf) isDup(psn uint32) bool {
	return psn < a.doneBase || a.done[psn] || a.frags[psn] != nil
}

func (a *asmBuf) markDone(psn uint32) {
	if psn < a.doneBase {
		return
	}
	a.done[psn] = true
	for a.done[a.doneBase] {
		delete(a.done, a.doneBase)
		a.doneBase++
	}
	if a.capped {
		for len(a.done) > asmDoneCap {
			// Force-advancing doneBase past a PSN that still holds a buffered
			// fragment would strand it forever: every later sibling arrival is
			// classified a duplicate, so the fragment is never consumed and
			// never returned to the pool. Drop and free it as the base passes.
			if f := a.frags[a.doneBase]; f != nil {
				delete(a.frags, a.doneBase)
				if a.free != nil {
					a.free(f)
				}
			}
			delete(a.done, a.doneBase)
			a.doneBase++
		}
	}
}

// idle reports whether the buffer holds no transient state — no buffered
// fragments and no reception holes — so its position is fully captured by
// doneBase alone and the buffer is safe to evict.
func (a *asmBuf) idle() bool { return len(a.frags) == 0 && len(a.done) == 0 }

// markDoneSpan consumes span consecutive PSNs starting at psn — a frame's
// whole sequence range, including members elided from the payload because
// their scattering aborted. Keeping the range contiguous is what lets
// doneBase advance without per-frame holes.
func (a *asmBuf) markDoneSpan(psn uint32, span uint16) {
	if span == 0 {
		span = 1
	}
	for i := uint32(0); i < uint32(span); i++ {
		a.markDone(psn + i)
	}
}

// add buffers a fragment and returns the carrier packet and total payload
// size when the fragment completed its message.
func (a *asmBuf) add(pkt *netsim.Packet) (last *netsim.Packet, size int, complete bool) {
	a.frags[pkt.PSN] = pkt
	start := pkt.PSN - uint32(pkt.FragIdx)
	j := start
	for {
		f, ok := a.frags[j]
		if !ok {
			return nil, 0, false
		}
		size += f.Size - netsim.HeaderBytes
		if f.EndOfMsg {
			last = f
			break
		}
		j++
	}
	for k := start; k <= j; k++ {
		f := a.frags[k]
		delete(a.frags, k)
		a.markDone(k)
		// Consumed non-final fragments are terminal here; the final fragment
		// is returned to the caller, which releases it after the payload
		// reference has been copied out.
		if a.free != nil && f != last {
			a.free(f)
		}
	}
	return last, size, true
}

// skip consumes a fragment position (and any buffered siblings of the same
// message) without delivering — used for ordering NAKs and recalls. The
// sweep must not stop at a reception hole below the skipped slot: a sibling
// buffered at or beyond the slot would otherwise survive its own
// consumption, linger unbounded, and let a late arrival in the hole
// "complete" a message whose slot was already skipped.
func (a *asmBuf) skip(pkt *netsim.Packet) {
	start := pkt.PSN - uint32(pkt.FragIdx)
	a.markDone(pkt.PSN)
	for j := start; ; j++ {
		f, ok := a.frags[j]
		if !ok {
			if j < pkt.PSN {
				continue // hole below the skipped slot: keep sweeping
			}
			break
		}
		delete(a.frags, j)
		a.markDone(j)
		if a.free != nil {
			a.free(f)
		}
		if f.EndOfMsg {
			break
		}
	}
}

// dropWhere removes buffered fragments matching pred (failure discard).
func (a *asmBuf) dropWhere(pred func(*netsim.Packet) bool) {
	for psn, f := range a.frags {
		if pred(f) {
			delete(a.frags, psn)
			a.markDone(psn)
			if a.free != nil {
				a.free(f)
			}
		}
	}
}

// rconn is receive-side state per (remote sender process, local process).
type rconn struct {
	key connKey
	// lastUse is the host clock at the last packet received on this pair;
	// the idle-eviction sweep reclaims receive state past Config.ConnIdleEvict.
	lastUse sim.Time
	bufs    [2]*asmBuf
}

func (h *Host) getRconn(src, dst netsim.ProcID) *rconn {
	k := connKey{src, dst}
	rc := h.rconns[k]
	if rc == nil {
		rc = &rconn{key: k}
		rc.bufs[0] = newAsmBuf(true)
		rc.bufs[1] = newAsmBuf(false)
		rc.bufs[0].free = netsim.PutPacket
		rc.bufs[1].free = netsim.PutPacket
		// Re-establishment after eviction: the retained PSN cursors restore
		// each plane's consumed-prefix position, so a retransmission of an
		// already-consumed packet is still classified duplicate and fresh
		// PSNs resume exactly where the evicted state left off.
		if cur, ok := h.rconnMemo[k]; ok {
			rc.bufs[0].doneBase = cur[0]
			rc.bufs[1].doneBase = cur[1]
			delete(h.rconnMemo, k)
		}
		h.rconns[k] = rc
		h.Stats.ConnsLive = int64(len(h.conns) + len(h.rconns))
	}
	if h.Cfg.ConnIdleEvict > 0 {
		rc.lastUse = h.wire.Now()
	}
	return rc
}

// HandlePacket is the host's network receive entry point; the substrate
// adapter (netsim or livenet) calls it for every packet delivered to the
// host, beacons included.
//
// HandlePacket takes ownership of pkt and releases it to the packet pool
// once consumed; data packets buffered for reassembly are released when the
// assembly buffer consumes them. Callers must not touch pkt afterwards.
func (h *Host) HandlePacket(pkt *netsim.Packet) {
	if h.stopped {
		netsim.PutPacket(pkt)
		return
	}
	switch pkt.Kind {
	case netsim.KindBeacon:
		h.updateBarriers(pkt.BarrierBE, pkt.BarrierC)
	case netsim.KindData:
		if h.Cfg.UseDataBarriers {
			h.updateBarriers(pkt.BarrierBE, pkt.BarrierC)
		}
		h.handleData(pkt) // takes ownership: pkt may be buffered
		return
	case netsim.KindAck:
		if h.Cfg.UseDataBarriers {
			h.updateBarriers(pkt.BarrierBE, pkt.BarrierC)
		}
		if c := h.conns[connKey{src: pkt.Dst, dst: pkt.Src}]; c != nil {
			if batch, ok := pkt.Payload.(ackBatch); ok {
				for i, psn := range batch.psns {
					c.onAck(pkt.Reliable, psn, batch.ecn[i])
				}
			} else {
				c.onAck(pkt.Reliable, pkt.PSN, pkt.ECN)
			}
		}
	case netsim.KindNak:
		h.handleNak(pkt)
	case netsim.KindRecall:
		h.handleRecall(pkt)
	case netsim.KindRecallAck:
		h.handleRecallAck(pkt)
	case netsim.KindCtrl:
		// Raw (unordered, unacknowledged) application RPC — the paper's
		// response messages that "do not need to be ordered by 1Pipe".
		if proc := h.procs[pkt.Dst]; proc != nil && proc.OnRaw != nil {
			proc.OnRaw(pkt.Src, pkt.Payload)
		}
	}
	netsim.PutPacket(pkt)
}

func (h *Host) updateBarriers(be, c sim.Time) {
	if hb := h.Cfg.DeliveryHoldback; hb > 0 {
		be -= hb
		c -= hb
	}
	changed := false
	if be > h.barrierBE {
		h.barrierBE = be
		changed = true
	}
	if c > h.barrierC {
		h.barrierC = c
		changed = true
	}
	if changed {
		h.drain()
	}
}

// Barriers exposes the host's current view of the two aggregated barriers.
func (h *Host) Barriers() (be, c sim.Time) { return h.barrierBE, h.barrierC }

func (h *Host) handleData(pkt *netsim.Packet) {
	if pkt.Frame {
		h.handleFrame(pkt)
		return
	}
	rc := h.getRconn(pkt.Src, pkt.Dst)
	buf := rc.bufs[cls(pkt.Reliable)]
	if buf.isDup(pkt.PSN) {
		h.Stats.DupPkts++
		h.ackPacket(pkt) // retransmission of a consumed packet: re-ACK
		netsim.PutPacket(pkt)
		return
	}
	// Ordering check: a best-effort packet whose message timestamp can no
	// longer be delivered in order is dropped with a NAK to the sender
	// (§4.1); a reliable packet at or below the delivered commit floor is
	// a duplicate of a committed message. Untagged conflict-aware traffic
	// is exempt from both: it delivers outside the total order, so it can
	// never be "too late", and the tagged-only delivered floors say nothing
	// about it (PSN dedup above already covers retransmissions).
	relaxed := h.relaxedKey(pkt.ConflictKey)
	if !relaxed && !pkt.Reliable && pkt.MsgTS < h.deliveredFloorBE() {
		h.Stats.Naks++
		nak := netsim.GetPacket()
		nak.Kind, nak.Src, nak.Dst = netsim.KindNak, pkt.Dst, pkt.Src
		nak.PSN, nak.MsgTS, nak.Size = pkt.PSN, pkt.MsgTS, netsim.BeaconBytes
		h.emit(nak)
		buf.skip(pkt)
		netsim.PutPacket(pkt)
		return
	}
	if !relaxed && pkt.Reliable && pkt.MsgTS <= h.deliveredC {
		h.Stats.DupPkts++
		h.ackPacket(pkt)
		buf.skip(pkt)
		netsim.PutPacket(pkt)
		return
	}
	h.ackPacket(pkt)
	last, size, complete := buf.add(pkt)
	if complete {
		// enqueueMsg copies the payload reference out of the final fragment;
		// the carrier packet itself is terminal here.
		h.enqueueMsg(last, size)
		netsim.PutPacket(last)
		h.drain()
	}
}

// handleFrame consumes a multi-message frame: one ACK, one dup check and
// one contiguous PSN-span consumption for the whole unit, then one reorder
// -buffer entry per live member with its own timestamp and reconstructed
// per-member PSN — so delivery order is identical to the unbatched wire.
func (h *Host) handleFrame(pkt *netsim.Packet) {
	f, ok := pkt.Payload.(*netsim.Frame)
	if !ok || len(f.Entries) == 0 {
		netsim.PutPacket(pkt)
		return
	}
	rc := h.getRconn(pkt.Src, pkt.Dst)
	buf := rc.bufs[cls(pkt.Reliable)]
	if buf.isDup(pkt.PSN) {
		h.Stats.DupPkts++
		h.ackPacket(pkt) // retransmission of a consumed frame: re-ACK
		netsim.PutPacket(pkt)
		return
	}
	// Ordering check (§4.1): entries ascend, so the frame's oldest member
	// decides whether the whole unit can still be delivered in order. The
	// sender fails every member of a NAKed frame. Under DeliverConflictAware
	// only tagged members are order-constrained, so the oldest *tagged*
	// member decides; untagged members share the frame's fate either way
	// (the same shared-fate rule a lost frame already imposes). With every
	// member tagged, the oldest tagged member IS Entries[0] — identical to
	// the unified decision.
	gate := 0
	if h.Cfg.Mode == DeliverConflictAware {
		gate = -1
		for i := range f.Entries {
			if f.Entries[i].ConflictKey != 0 {
				gate = i
				break
			}
		}
	}
	if !pkt.Reliable && gate >= 0 && f.Entries[gate].TS < h.deliveredFloorBE() {
		h.Stats.Naks++
		nak := netsim.GetPacket()
		nak.Kind, nak.Src, nak.Dst = netsim.KindNak, pkt.Dst, pkt.Src
		nak.PSN, nak.MsgTS, nak.Size = pkt.PSN, f.Entries[gate].TS, netsim.BeaconBytes
		h.emit(nak)
		buf.markDoneSpan(pkt.PSN, f.Span)
		netsim.PutPacket(pkt)
		return
	}
	h.ackPacket(pkt)
	buf.markDoneSpan(pkt.PSN, f.Span)
	enq := 0
	for i := range f.Entries {
		e := &f.Entries[i]
		if pkt.Reliable && e.TS <= h.deliveredC && !h.relaxedKey(e.ConflictKey) {
			h.Stats.DupPkts++ // retransmitted member of a committed frame
			continue
		}
		h.enqueuePending(e.TS, pkt.Src, pkt.Dst, pkt.PSN+uint32(e.PSNOff),
			e.Data, e.Size, pkt.Reliable, e.ConflictKey, pkt.QueueWait)
		enq++
	}
	netsim.PutPacket(pkt)
	if enq > 0 {
		h.drain()
	}
}

func (h *Host) deliveredFloorBE() sim.Time {
	if (h.Cfg.Mode == DeliverUnified || h.Cfg.Mode == DeliverConflictAware) &&
		h.deliveredC > h.deliveredBE {
		return h.deliveredC
	}
	return h.deliveredBE
}

// relaxedKey reports whether a message with the given conflict key is
// delivered outside the total order: DeliverConflictAware mode with an
// untagged (key 0) message. Tagged messages — and every message in the
// other modes — go through the ordinary ordered paths.
func (h *Host) relaxedKey(key uint32) bool {
	return h.Cfg.Mode == DeliverConflictAware && key == 0
}

// ackBatch is the payload of a coalesced ACK: per-PSN entries with their
// echoed ECN marks.
type ackBatch struct {
	psns []uint32
	ecn  []bool
}

// ackPend accumulates ACKs toward one sender/class until flushed.
type ackPend struct {
	batch ackBatch
	timer *timer
}

type ackKey struct {
	local, remote netsim.ProcID
	reliable      bool
}

func (h *Host) ackPacket(pkt *netsim.Packet) {
	if !pkt.Reliable && h.Cfg.DisableBEAck {
		return
	}
	if h.Cfg.AckFlush <= 0 {
		ack := netsim.GetPacket()
		ack.Kind, ack.Src, ack.Dst = netsim.KindAck, pkt.Dst, pkt.Src
		ack.PSN, ack.MsgTS, ack.ECN, ack.Reliable = pkt.PSN, pkt.MsgTS, pkt.ECN, pkt.Reliable
		ack.Size = netsim.BeaconBytes
		h.emit(ack)
		return
	}
	k := ackKey{local: pkt.Dst, remote: pkt.Src, reliable: pkt.Reliable}
	p := h.ackPending[k]
	if p == nil {
		p = &ackPend{}
		p.timer = newTimer(h.wire, func() { h.flushAcks(k) })
		h.ackPending[k] = p
	}
	if len(p.batch.psns) == 0 {
		p.timer.reset(h.Cfg.AckFlush)
	}
	p.batch.psns = append(p.batch.psns, pkt.PSN)
	p.batch.ecn = append(p.batch.ecn, pkt.ECN)
	if h.Cfg.AckBatchMax > 0 && len(p.batch.psns) >= h.Cfg.AckBatchMax {
		h.flushAcks(k)
	}
}

// flushAcks emits one coalesced ACK packet carrying every pending PSN.
func (h *Host) flushAcks(k ackKey) {
	p := h.ackPending[k]
	if p == nil || len(p.batch.psns) == 0 {
		return
	}
	batch := p.batch
	p.batch = ackBatch{}
	p.timer.stop()
	ack := netsim.GetPacket()
	ack.Kind, ack.Src, ack.Dst = netsim.KindAck, k.local, k.remote
	ack.PSN, ack.Reliable = batch.psns[0], k.reliable
	ack.Payload = batch
	ack.Size = netsim.HeaderBytes + 5*len(batch.psns)
	h.emit(ack)
}

func (h *Host) enqueueMsg(pkt *netsim.Packet, size int) {
	h.enqueuePending(pkt.MsgTS, pkt.Src, pkt.Dst, pkt.PSN, pkt.Payload,
		size, pkt.Reliable, pkt.ConflictKey, pkt.QueueWait)
}

func (h *Host) enqueuePending(ts sim.Time, src, dst netsim.ProcID, psn uint32,
	data any, size int, reliable bool, conflict uint32, queueWait sim.Time) {
	// Discard semantics of failure handling (§5.2): messages from a
	// failed process beyond its failure timestamp are never delivered,
	// and recalled scattering members are tombstoned. These bind the
	// relaxed (untagged conflict-aware) classes too: atomicity is not
	// traded away by relaxing order.
	if failTS, dead := h.failedPeers[src]; dead && ts > failTS {
		return
	}
	if h.recallTomb[recallKey{dst: src, ts: ts}] {
		return
	}
	p := &pending{
		ts: ts, src: src, dst: dst, psn: psn,
		data: data, size: size, reliable: reliable, conflict: conflict,
	}
	if h.Obs.On() {
		p.enqAt = h.wire.Now()
		// ts is the sender's launch timestamp; transit is measured
		// against this (skew-bounded) receiver clock.
		h.Obs.Rec(obs.SpanNetTransit, p.enqAt-p.ts)
		h.Obs.Rec(obs.SpanSwitchQueue, queueWait)
	}
	var q *reorderBuf
	switch {
	case h.relaxedKey(conflict) && !reliable:
		// Untagged best-effort under DeliverConflictAware: locally stable
		// the moment reassembly completes — deliver immediately, no barrier
		// wait, outside the total order (0.5 RTT, the Generic Multicast
		// fast path).
		h.deliverNow(p)
		return
	case h.relaxedKey(conflict):
		// Untagged reliable: buffered until the commit barrier covers it,
		// so the §5.2 recall window still guards failure atomicity, but
		// outside the cross-class order (its own queue, no floor updates).
		q = &h.rlxQ
	case reliable:
		q = &h.relQ
	default:
		q = &h.beQ
	}
	if q.push(p) {
		h.Stats.ReorderSpills++
	}
	h.Stats.ReorderHotBytes = h.beQ.hotBytes + h.relQ.hotBytes + h.rlxQ.hotBytes
	if hot := int64(len(q.hot)); hot > h.Stats.ReorderHotMax {
		h.Stats.ReorderHotMax = hot
	}
	h.Stats.BufferedMsgs++
	h.Stats.BufferedBytes += int64(size)
	if h.Stats.BufferedBytes > h.Stats.MaxBufferBytes {
		h.Stats.MaxBufferBytes = h.Stats.BufferedBytes
	}
}

// drain delivers every buffered message the barriers cover, in (ts, src)
// order. Best-effort delivery requires ts < barrierBE (strictly: equal
// timestamps may still arrive); reliable delivery requires ts <= barrierC
// (§5.1). Unified mode gates both classes on both barriers to produce one
// cross-class total order. Contiguous runs for one process accumulate into
// a delivery batch flushed through OnDeliverBatch at the end of the drain.
func (h *Host) drain() {
	h.drainQueues()
	h.Stats.ReorderHotBytes = h.beQ.hotBytes + h.relQ.hotBytes + h.rlxQ.hotBytes
	h.flushDeliveries()
}

func (h *Host) drainQueues() {
	switch h.Cfg.Mode {
	case DeliverSeparate:
		for h.beQ.Len() > 0 && h.beQ.top().ts < h.barrierBE {
			h.deliver(h.beQ.pop())
		}
		for h.relQ.Len() > 0 && h.relQ.top().ts <= h.barrierC {
			h.deliver(h.relQ.pop())
		}
	case DeliverUnified:
		h.drainMerged()
	case DeliverConflictAware:
		// Tagged traffic is exactly the unified merged stream (the queues
		// hold only tagged entries in this mode); untagged reliable drains
		// from its own queue once the commit barrier covers it, outside
		// the cross-class order.
		h.drainMerged()
		for h.rlxQ.Len() > 0 && h.rlxQ.top().ts <= h.barrierC {
			h.deliverRelaxed(h.rlxQ.pop())
		}
	}
}

// drainMerged delivers the single cross-class total order of DeliverUnified:
// both queues gated on min(barrierBE-1, barrierC), merged on the full
// (ts, src, psn) key.
func (h *Host) drainMerged() {
	eff := h.barrierBE - 1
	if h.barrierC < eff {
		eff = h.barrierC
	}
	for {
		var q *reorderBuf
		switch {
		case h.beQ.Len() == 0 && h.relQ.Len() == 0:
			return
		case h.beQ.Len() == 0:
			q = &h.relQ
		case h.relQ.Len() == 0:
			q = &h.beQ
		default:
			// Cross-queue tie-break on the full (ts, src, psn) key: when a
			// best-effort and a reliable entry from the same sender share a
			// timestamp, the PSN decides — always preferring one queue here
			// would violate the documented total order.
			if a, b := h.beQ.top(), h.relQ.top(); !pendingLess(b, a) {
				q = &h.beQ
			} else {
				q = &h.relQ
			}
		}
		if q.top().ts > eff {
			return
		}
		h.deliver(q.pop())
	}
}

func (h *Host) deliver(p *pending) {
	if p.reliable {
		if p.ts > h.deliveredC {
			h.deliveredC = p.ts
		}
	} else if p.ts > h.deliveredBE {
		h.deliveredBE = p.ts
	}
	if h.Cfg.Mode == DeliverUnified || h.Cfg.Mode == DeliverConflictAware {
		// One merged order: both floors advance together. Under conflict-
		// aware delivery only tagged entries reach this path, so the floors
		// track the tagged order exactly as unified tracks everything.
		if p.ts > h.deliveredBE {
			h.deliveredBE = p.ts
		}
		if p.ts > h.deliveredC {
			h.deliveredC = p.ts
		}
	}
	h.Stats.BufferedMsgs--
	h.Stats.BufferedBytes -= int64(p.size)
	h.Stats.MsgsDelivered++
	h.recObs(p)
	h.dispatch(p)
}

// deliverNow surfaces an untagged best-effort message the moment its
// reassembly completes (DeliverConflictAware fast path): no barrier wait,
// no buffered-stat charge (it was never buffered), and — critically — no
// delivered-floor update, so relaxed traffic can never NAK or reorder the
// tagged total order.
func (h *Host) deliverNow(p *pending) {
	h.Stats.MsgsDelivered++
	h.Stats.RelaxedDeliveries++
	h.recObs(p)
	h.dispatch(p)
}

// deliverRelaxed surfaces an untagged reliable message once the commit
// barrier covers it; like deliverNow it leaves the total-order floors alone.
func (h *Host) deliverRelaxed(p *pending) {
	h.Stats.BufferedMsgs--
	h.Stats.BufferedBytes -= int64(p.size)
	h.Stats.MsgsDelivered++
	h.Stats.RelaxedDeliveries++
	h.recObs(p)
	h.dispatch(p)
}

func (h *Host) recObs(p *pending) {
	if p.enqAt > 0 && h.Obs.On() {
		now := h.wire.Now()
		h.Obs.Rec(obs.SpanBarrierWait, now-p.enqAt)
		h.Obs.Rec(obs.SpanE2E, now-p.ts)
	}
}

// dispatch hands a delivery to its process callback, preserving the
// cross-process callback order on this host: anything batched for another
// process flushes before a delivery for this one is surfaced.
func (h *Host) dispatch(p *pending) {
	proc := h.procs[p.dst]
	if proc == nil {
		return
	}
	if len(h.batchQ) > 0 && h.batchDst != p.dst {
		h.flushDeliveries()
	}
	d := Delivery{TS: p.ts, Src: p.src, Dst: p.dst, Data: p.data,
		Reliable: p.reliable, Conflict: p.conflict}
	if proc.OnDeliverBatch != nil {
		h.batchDst = p.dst
		h.batchQ = append(h.batchQ, d)
		return
	}
	if proc.OnDeliver == nil {
		return
	}
	proc.OnDeliver(d)
}

// flushDeliveries hands the accumulated contiguous run to its process's
// OnDeliverBatch. The batch slice is reused afterwards; the no-retention
// rule is documented on OnDeliverBatch.
func (h *Host) flushDeliveries() {
	if len(h.batchQ) == 0 {
		return
	}
	proc := h.procs[h.batchDst]
	h.recvOcc.Add(float64(len(h.batchQ)))
	h.Stats.DeliverBatches++
	if proc != nil && proc.OnDeliverBatch != nil {
		proc.OnDeliverBatch(h.batchQ)
	}
	h.batchQ = h.batchQ[:0]
}

// handleNak reports a best-effort loss (ordering drop) back to the
// application immediately instead of waiting for the send-fail timeout.
func (h *Host) handleNak(pkt *netsim.Packet) {
	c := h.conns[connKey{src: pkt.Dst, dst: pkt.Src}]
	if c == nil {
		return
	}
	op, ok := c.unacked[0][pkt.PSN]
	if !ok {
		return
	}
	c.dropInflight(0, pkt.PSN)
	// A NAKed frame fails every live member: the receiver skipped the
	// whole PSN span.
	for m := op; m != nil; m = m.fnext {
		if m.scat.aborted || m.scat.done {
			continue
		}
		h.failMessage(m.scat, m.msgIdx)
	}
	h.grantCredits()
}
