package core

import (
	"container/heap"

	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
)

// pending is one complete message waiting in the reorder buffer.
type pending struct {
	ts       sim.Time
	src, dst netsim.ProcID
	psn      uint32 // PSN of the last fragment; tie-break within (ts, src)
	data     any
	size     int
	reliable bool
	// enqAt is the reassembly-complete time, recorded only while tracing;
	// the enqueue → deliver gap is the barrier wait (obs.SpanBarrierWait).
	enqAt sim.Time
}

// deliveryHeap orders messages by (timestamp, sender, PSN) — the total
// order of §2.1 with ties broken by sender ID.
type deliveryHeap []*pending

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.psn < b.psn
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(*pending)) }
func (h *deliveryHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
func (h deliveryHeap) top() *pending { return h[0] }

// asmBuf reassembles one class's fragment stream for one (sender, local
// process) pair. Reassembly is keyed on (PSN - FragIdx), the message's
// first PSN, so holes left by lost best-effort packets never block later
// messages.
type asmBuf struct {
	doneBase uint32 // every PSN below this is consumed or skipped
	done     map[uint32]bool
	frags    map[uint32]*netsim.Packet
	capped   bool // best-effort: bound the done set by forcing doneBase forward
	// free, when set, releases consumed fragments back to the packet pool.
	// Production buffers (getRconn) wire it to netsim.PutPacket; unit tests
	// that drive the buffer with their own reusable packets leave it nil.
	free func(*netsim.Packet)
}

func newAsmBuf(capped bool) *asmBuf {
	return &asmBuf{done: make(map[uint32]bool), frags: make(map[uint32]*netsim.Packet), capped: capped}
}

// asmDoneCap bounds the done set of a best-effort assembly buffer: beyond
// it, permanently-lost PSN holes are forgotten (their late arrivals are
// treated as duplicates — acceptable for at-most-once traffic).
const asmDoneCap = 4096

func (a *asmBuf) isDup(psn uint32) bool {
	return psn < a.doneBase || a.done[psn] || a.frags[psn] != nil
}

func (a *asmBuf) markDone(psn uint32) {
	if psn < a.doneBase {
		return
	}
	a.done[psn] = true
	for a.done[a.doneBase] {
		delete(a.done, a.doneBase)
		a.doneBase++
	}
	if a.capped {
		for len(a.done) > asmDoneCap {
			delete(a.done, a.doneBase)
			a.doneBase++
		}
	}
}

// markDoneSpan consumes span consecutive PSNs starting at psn — a frame's
// whole sequence range, including members elided from the payload because
// their scattering aborted. Keeping the range contiguous is what lets
// doneBase advance without per-frame holes.
func (a *asmBuf) markDoneSpan(psn uint32, span uint16) {
	if span == 0 {
		span = 1
	}
	for i := uint32(0); i < uint32(span); i++ {
		a.markDone(psn + i)
	}
}

// add buffers a fragment and returns the carrier packet and total payload
// size when the fragment completed its message.
func (a *asmBuf) add(pkt *netsim.Packet) (last *netsim.Packet, size int, complete bool) {
	a.frags[pkt.PSN] = pkt
	start := pkt.PSN - uint32(pkt.FragIdx)
	j := start
	for {
		f, ok := a.frags[j]
		if !ok {
			return nil, 0, false
		}
		size += f.Size - netsim.HeaderBytes
		if f.EndOfMsg {
			last = f
			break
		}
		j++
	}
	for k := start; k <= j; k++ {
		f := a.frags[k]
		delete(a.frags, k)
		a.markDone(k)
		// Consumed non-final fragments are terminal here; the final fragment
		// is returned to the caller, which releases it after the payload
		// reference has been copied out.
		if a.free != nil && f != last {
			a.free(f)
		}
	}
	return last, size, true
}

// skip consumes a fragment position (and any buffered siblings of the same
// message) without delivering — used for ordering NAKs and recalls. The
// sweep must not stop at a reception hole below the skipped slot: a sibling
// buffered at or beyond the slot would otherwise survive its own
// consumption, linger unbounded, and let a late arrival in the hole
// "complete" a message whose slot was already skipped.
func (a *asmBuf) skip(pkt *netsim.Packet) {
	start := pkt.PSN - uint32(pkt.FragIdx)
	a.markDone(pkt.PSN)
	for j := start; ; j++ {
		f, ok := a.frags[j]
		if !ok {
			if j < pkt.PSN {
				continue // hole below the skipped slot: keep sweeping
			}
			break
		}
		delete(a.frags, j)
		a.markDone(j)
		if a.free != nil {
			a.free(f)
		}
		if f.EndOfMsg {
			break
		}
	}
}

// dropWhere removes buffered fragments matching pred (failure discard).
func (a *asmBuf) dropWhere(pred func(*netsim.Packet) bool) {
	for psn, f := range a.frags {
		if pred(f) {
			delete(a.frags, psn)
			a.markDone(psn)
			if a.free != nil {
				a.free(f)
			}
		}
	}
}

// rconn is receive-side state per (remote sender process, local process).
type rconn struct {
	key  connKey
	bufs [2]*asmBuf
}

func (h *Host) getRconn(src, dst netsim.ProcID) *rconn {
	k := connKey{src, dst}
	rc := h.rconns[k]
	if rc == nil {
		rc = &rconn{key: k}
		rc.bufs[0] = newAsmBuf(true)
		rc.bufs[1] = newAsmBuf(false)
		rc.bufs[0].free = netsim.PutPacket
		rc.bufs[1].free = netsim.PutPacket
		h.rconns[k] = rc
	}
	return rc
}

// HandlePacket is the host's network receive entry point; the substrate
// adapter (netsim or livenet) calls it for every packet delivered to the
// host, beacons included.
//
// HandlePacket takes ownership of pkt and releases it to the packet pool
// once consumed; data packets buffered for reassembly are released when the
// assembly buffer consumes them. Callers must not touch pkt afterwards.
func (h *Host) HandlePacket(pkt *netsim.Packet) {
	if h.stopped {
		netsim.PutPacket(pkt)
		return
	}
	switch pkt.Kind {
	case netsim.KindBeacon:
		h.updateBarriers(pkt.BarrierBE, pkt.BarrierC)
	case netsim.KindData:
		if h.Cfg.UseDataBarriers {
			h.updateBarriers(pkt.BarrierBE, pkt.BarrierC)
		}
		h.handleData(pkt) // takes ownership: pkt may be buffered
		return
	case netsim.KindAck:
		if h.Cfg.UseDataBarriers {
			h.updateBarriers(pkt.BarrierBE, pkt.BarrierC)
		}
		if c := h.conns[connKey{src: pkt.Dst, dst: pkt.Src}]; c != nil {
			if batch, ok := pkt.Payload.(ackBatch); ok {
				for i, psn := range batch.psns {
					c.onAck(pkt.Reliable, psn, batch.ecn[i])
				}
			} else {
				c.onAck(pkt.Reliable, pkt.PSN, pkt.ECN)
			}
		}
	case netsim.KindNak:
		h.handleNak(pkt)
	case netsim.KindRecall:
		h.handleRecall(pkt)
	case netsim.KindRecallAck:
		h.handleRecallAck(pkt)
	case netsim.KindCtrl:
		// Raw (unordered, unacknowledged) application RPC — the paper's
		// response messages that "do not need to be ordered by 1Pipe".
		if proc := h.procs[pkt.Dst]; proc != nil && proc.OnRaw != nil {
			proc.OnRaw(pkt.Src, pkt.Payload)
		}
	}
	netsim.PutPacket(pkt)
}

func (h *Host) updateBarriers(be, c sim.Time) {
	if hb := h.Cfg.DeliveryHoldback; hb > 0 {
		be -= hb
		c -= hb
	}
	changed := false
	if be > h.barrierBE {
		h.barrierBE = be
		changed = true
	}
	if c > h.barrierC {
		h.barrierC = c
		changed = true
	}
	if changed {
		h.drain()
	}
}

// Barriers exposes the host's current view of the two aggregated barriers.
func (h *Host) Barriers() (be, c sim.Time) { return h.barrierBE, h.barrierC }

func (h *Host) handleData(pkt *netsim.Packet) {
	if pkt.Frame {
		h.handleFrame(pkt)
		return
	}
	rc := h.getRconn(pkt.Src, pkt.Dst)
	buf := rc.bufs[cls(pkt.Reliable)]
	if buf.isDup(pkt.PSN) {
		h.Stats.DupPkts++
		h.ackPacket(pkt) // retransmission of a consumed packet: re-ACK
		netsim.PutPacket(pkt)
		return
	}
	// Ordering check: a best-effort packet whose message timestamp can no
	// longer be delivered in order is dropped with a NAK to the sender
	// (§4.1); a reliable packet at or below the delivered commit floor is
	// a duplicate of a committed message.
	if !pkt.Reliable && pkt.MsgTS < h.deliveredFloorBE() {
		h.Stats.Naks++
		nak := netsim.GetPacket()
		nak.Kind, nak.Src, nak.Dst = netsim.KindNak, pkt.Dst, pkt.Src
		nak.PSN, nak.MsgTS, nak.Size = pkt.PSN, pkt.MsgTS, netsim.BeaconBytes
		h.emit(nak)
		buf.skip(pkt)
		netsim.PutPacket(pkt)
		return
	}
	if pkt.Reliable && pkt.MsgTS <= h.deliveredC {
		h.Stats.DupPkts++
		h.ackPacket(pkt)
		buf.skip(pkt)
		netsim.PutPacket(pkt)
		return
	}
	h.ackPacket(pkt)
	last, size, complete := buf.add(pkt)
	if complete {
		// enqueueMsg copies the payload reference out of the final fragment;
		// the carrier packet itself is terminal here.
		h.enqueueMsg(last, size)
		netsim.PutPacket(last)
		h.drain()
	}
}

// handleFrame consumes a multi-message frame: one ACK, one dup check and
// one contiguous PSN-span consumption for the whole unit, then one reorder
// -buffer entry per live member with its own timestamp and reconstructed
// per-member PSN — so delivery order is identical to the unbatched wire.
func (h *Host) handleFrame(pkt *netsim.Packet) {
	f, ok := pkt.Payload.(*netsim.Frame)
	if !ok || len(f.Entries) == 0 {
		netsim.PutPacket(pkt)
		return
	}
	rc := h.getRconn(pkt.Src, pkt.Dst)
	buf := rc.bufs[cls(pkt.Reliable)]
	if buf.isDup(pkt.PSN) {
		h.Stats.DupPkts++
		h.ackPacket(pkt) // retransmission of a consumed frame: re-ACK
		netsim.PutPacket(pkt)
		return
	}
	// Ordering check (§4.1): entries ascend, so the frame's oldest member
	// decides whether the whole unit can still be delivered in order. The
	// sender fails every member of a NAKed frame.
	if !pkt.Reliable && f.Entries[0].TS < h.deliveredFloorBE() {
		h.Stats.Naks++
		nak := netsim.GetPacket()
		nak.Kind, nak.Src, nak.Dst = netsim.KindNak, pkt.Dst, pkt.Src
		nak.PSN, nak.MsgTS, nak.Size = pkt.PSN, f.Entries[0].TS, netsim.BeaconBytes
		h.emit(nak)
		buf.markDoneSpan(pkt.PSN, f.Span)
		netsim.PutPacket(pkt)
		return
	}
	h.ackPacket(pkt)
	buf.markDoneSpan(pkt.PSN, f.Span)
	enq := 0
	for i := range f.Entries {
		e := &f.Entries[i]
		if pkt.Reliable && e.TS <= h.deliveredC {
			h.Stats.DupPkts++ // retransmitted member of a committed frame
			continue
		}
		h.enqueuePending(e.TS, pkt.Src, pkt.Dst, pkt.PSN+uint32(e.PSNOff),
			e.Data, e.Size, pkt.Reliable, pkt.QueueWait)
		enq++
	}
	netsim.PutPacket(pkt)
	if enq > 0 {
		h.drain()
	}
}

func (h *Host) deliveredFloorBE() sim.Time {
	if h.Cfg.Mode == DeliverUnified && h.deliveredC > h.deliveredBE {
		return h.deliveredC
	}
	return h.deliveredBE
}

// ackBatch is the payload of a coalesced ACK: per-PSN entries with their
// echoed ECN marks.
type ackBatch struct {
	psns []uint32
	ecn  []bool
}

// ackPend accumulates ACKs toward one sender/class until flushed.
type ackPend struct {
	batch ackBatch
	timer *timer
}

type ackKey struct {
	local, remote netsim.ProcID
	reliable      bool
}

func (h *Host) ackPacket(pkt *netsim.Packet) {
	if !pkt.Reliable && h.Cfg.DisableBEAck {
		return
	}
	if h.Cfg.AckFlush <= 0 {
		ack := netsim.GetPacket()
		ack.Kind, ack.Src, ack.Dst = netsim.KindAck, pkt.Dst, pkt.Src
		ack.PSN, ack.MsgTS, ack.ECN, ack.Reliable = pkt.PSN, pkt.MsgTS, pkt.ECN, pkt.Reliable
		ack.Size = netsim.BeaconBytes
		h.emit(ack)
		return
	}
	k := ackKey{local: pkt.Dst, remote: pkt.Src, reliable: pkt.Reliable}
	p := h.ackPending[k]
	if p == nil {
		p = &ackPend{}
		p.timer = newTimer(h.wire, func() { h.flushAcks(k) })
		h.ackPending[k] = p
	}
	if len(p.batch.psns) == 0 {
		p.timer.reset(h.Cfg.AckFlush)
	}
	p.batch.psns = append(p.batch.psns, pkt.PSN)
	p.batch.ecn = append(p.batch.ecn, pkt.ECN)
	if h.Cfg.AckBatchMax > 0 && len(p.batch.psns) >= h.Cfg.AckBatchMax {
		h.flushAcks(k)
	}
}

// flushAcks emits one coalesced ACK packet carrying every pending PSN.
func (h *Host) flushAcks(k ackKey) {
	p := h.ackPending[k]
	if p == nil || len(p.batch.psns) == 0 {
		return
	}
	batch := p.batch
	p.batch = ackBatch{}
	p.timer.stop()
	ack := netsim.GetPacket()
	ack.Kind, ack.Src, ack.Dst = netsim.KindAck, k.local, k.remote
	ack.PSN, ack.Reliable = batch.psns[0], k.reliable
	ack.Payload = batch
	ack.Size = netsim.HeaderBytes + 5*len(batch.psns)
	h.emit(ack)
}

func (h *Host) enqueueMsg(pkt *netsim.Packet, size int) {
	h.enqueuePending(pkt.MsgTS, pkt.Src, pkt.Dst, pkt.PSN, pkt.Payload,
		size, pkt.Reliable, pkt.QueueWait)
}

func (h *Host) enqueuePending(ts sim.Time, src, dst netsim.ProcID, psn uint32,
	data any, size int, reliable bool, queueWait sim.Time) {
	// Discard semantics of failure handling (§5.2): messages from a
	// failed process beyond its failure timestamp are never delivered,
	// and recalled scattering members are tombstoned.
	if failTS, dead := h.failedPeers[src]; dead && ts > failTS {
		return
	}
	if h.recallTomb[recallKey{dst: src, ts: ts}] {
		return
	}
	p := &pending{
		ts: ts, src: src, dst: dst, psn: psn,
		data: data, size: size, reliable: reliable,
	}
	if h.Obs.On() {
		p.enqAt = h.wire.Now()
		// ts is the sender's launch timestamp; transit is measured
		// against this (skew-bounded) receiver clock.
		h.Obs.Rec(obs.SpanNetTransit, p.enqAt-p.ts)
		h.Obs.Rec(obs.SpanSwitchQueue, queueWait)
	}
	if p.reliable {
		heap.Push(&h.relQ, p)
	} else {
		heap.Push(&h.beQ, p)
	}
	h.Stats.BufferedMsgs++
	h.Stats.BufferedBytes += int64(size)
	if h.Stats.BufferedBytes > h.Stats.MaxBufferBytes {
		h.Stats.MaxBufferBytes = h.Stats.BufferedBytes
	}
}

// drain delivers every buffered message the barriers cover, in (ts, src)
// order. Best-effort delivery requires ts < barrierBE (strictly: equal
// timestamps may still arrive); reliable delivery requires ts <= barrierC
// (§5.1). Unified mode gates both classes on both barriers to produce one
// cross-class total order. Contiguous runs for one process accumulate into
// a delivery batch flushed through OnDeliverBatch at the end of the drain.
func (h *Host) drain() {
	h.drainQueues()
	h.flushDeliveries()
}

func (h *Host) drainQueues() {
	switch h.Cfg.Mode {
	case DeliverSeparate:
		for h.beQ.Len() > 0 && h.beQ.top().ts < h.barrierBE {
			h.deliver(heap.Pop(&h.beQ).(*pending))
		}
		for h.relQ.Len() > 0 && h.relQ.top().ts <= h.barrierC {
			h.deliver(heap.Pop(&h.relQ).(*pending))
		}
	case DeliverUnified:
		eff := h.barrierBE - 1
		if h.barrierC < eff {
			eff = h.barrierC
		}
		for {
			var q *deliveryHeap
			switch {
			case h.beQ.Len() == 0 && h.relQ.Len() == 0:
				return
			case h.beQ.Len() == 0:
				q = &h.relQ
			case h.relQ.Len() == 0:
				q = &h.beQ
			default:
				a, b := h.beQ.top(), h.relQ.top()
				if a.ts < b.ts || (a.ts == b.ts && a.src <= b.src) {
					q = &h.beQ
				} else {
					q = &h.relQ
				}
			}
			if q.top().ts > eff {
				return
			}
			h.deliver(heap.Pop(q).(*pending))
		}
	}
}

func (h *Host) deliver(p *pending) {
	if p.reliable {
		if p.ts > h.deliveredC {
			h.deliveredC = p.ts
		}
	} else if p.ts > h.deliveredBE {
		h.deliveredBE = p.ts
	}
	if h.Cfg.Mode == DeliverUnified {
		if p.ts > h.deliveredBE {
			h.deliveredBE = p.ts
		}
		if p.ts > h.deliveredC {
			h.deliveredC = p.ts
		}
	}
	h.Stats.BufferedMsgs--
	h.Stats.BufferedBytes -= int64(p.size)
	h.Stats.MsgsDelivered++
	if p.enqAt > 0 && h.Obs.On() {
		now := h.wire.Now()
		h.Obs.Rec(obs.SpanBarrierWait, now-p.enqAt)
		h.Obs.Rec(obs.SpanE2E, now-p.ts)
	}
	proc := h.procs[p.dst]
	if proc == nil {
		return
	}
	// Preserve the cross-process callback order on this host: anything
	// batched for another process flushes before a delivery for this one
	// is surfaced.
	if len(h.batchQ) > 0 && h.batchDst != p.dst {
		h.flushDeliveries()
	}
	d := Delivery{TS: p.ts, Src: p.src, Dst: p.dst, Data: p.data, Reliable: p.reliable}
	if proc.OnDeliverBatch != nil {
		h.batchDst = p.dst
		h.batchQ = append(h.batchQ, d)
		return
	}
	if proc.OnDeliver == nil {
		return
	}
	proc.OnDeliver(d)
}

// flushDeliveries hands the accumulated contiguous run to its process's
// OnDeliverBatch. The batch slice is reused afterwards; the no-retention
// rule is documented on OnDeliverBatch.
func (h *Host) flushDeliveries() {
	if len(h.batchQ) == 0 {
		return
	}
	proc := h.procs[h.batchDst]
	h.recvOcc.Add(float64(len(h.batchQ)))
	h.Stats.DeliverBatches++
	if proc != nil && proc.OnDeliverBatch != nil {
		proc.OnDeliverBatch(h.batchQ)
	}
	h.batchQ = h.batchQ[:0]
}

// handleNak reports a best-effort loss (ordering drop) back to the
// application immediately instead of waiting for the send-fail timeout.
func (h *Host) handleNak(pkt *netsim.Packet) {
	c := h.conns[connKey{src: pkt.Dst, dst: pkt.Src}]
	if c == nil {
		return
	}
	op, ok := c.unacked[0][pkt.PSN]
	if !ok {
		return
	}
	c.dropInflight(0, pkt.PSN)
	// A NAKed frame fails every live member: the receiver skipped the
	// whole PSN span.
	for m := op; m != nil; m = m.fnext {
		if m.scat.aborted || m.scat.done {
			continue
		}
		h.failMessage(m.scat, m.msgIdx)
	}
	h.grantCredits()
}
