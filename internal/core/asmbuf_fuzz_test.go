package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// FuzzAsmBufReorder drives the receive-side reassembly/reorder buffer with
// an arbitrary interleaving of fragment arrivals, duplicates and ordering
// skips, checking the properties HandlePacket relies on:
//
//   - a message completes at most once, and only with its true last
//     fragment and exact payload size (at-most-once, §4.1 dedup);
//   - a message none of whose positions were skipped, all of whose
//     fragments arrived, always completes (no lost-wakeup in the hole
//     bookkeeping);
//   - once any position of a message is skipped before completion, the
//     message can never complete (skip is how NAK'd/recalled slots are
//     consumed — resurrecting one would deliver recalled data);
//   - doneBase only moves forward, and consumed positions stay duplicates.
func FuzzAsmBufReorder(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, true)
	f.Add([]byte{0x40, 0x01, 0xc3, 0x87, 0x22, 0xff, 0x00, 0x91}, false)
	f.Fuzz(func(t *testing.T, script []byte, reliable bool) {
		if len(script) == 0 {
			return
		}
		// Fragment universe: 10 messages with 1..3 fragments each, fragment
		// counts drawn from the script so the fuzzer controls message shape.
		const msgCount = 10
		type frag struct {
			pkt *netsim.Packet
			msg int
		}
		var frags []frag
		fragsOf := make([][]uint32, msgCount)
		psn := uint32(0)
		for m := 0; m < msgCount; m++ {
			n := 1 + int(script[m%len(script)])%3
			for j := 0; j < n; j++ {
				frags = append(frags, frag{
					msg: m,
					pkt: &netsim.Packet{
						PSN: psn, FragIdx: uint16(j), EndOfMsg: j == n-1,
						MsgTS: sim.Time(m + 1),
						Size:  netsim.HeaderBytes + 100 + m,
					},
				})
				fragsOf[m] = append(fragsOf[m], psn)
				psn++
			}
		}

		a := newAsmBuf(!reliable)
		completed := make([]bool, msgCount)
		skipped := make([]bool, msgCount)
		accepted := make([]int, msgCount)
		prevBase := a.doneBase
		for _, b := range script {
			fr := frags[int(b&0x3f)%len(frags)]
			if b>>6 == 3 {
				// Ordering skip: consume the slot without delivering.
				if !completed[fr.msg] {
					skipped[fr.msg] = true
				}
				a.skip(fr.pkt)
			} else if !a.isDup(fr.pkt.PSN) {
				accepted[fr.msg]++
				last, size, complete := a.add(fr.pkt)
				if complete {
					if completed[fr.msg] {
						t.Fatalf("message %d completed twice", fr.msg)
					}
					if skipped[fr.msg] {
						t.Fatalf("message %d completed after one of its slots was skipped", fr.msg)
					}
					completed[fr.msg] = true
					if !last.EndOfMsg || last.PSN != fragsOf[fr.msg][len(fragsOf[fr.msg])-1] {
						t.Fatalf("message %d completed by wrong fragment psn=%d", fr.msg, last.PSN)
					}
					wantSize := len(fragsOf[fr.msg]) * (100 + fr.msg)
					if size != wantSize {
						t.Fatalf("message %d size %d, want %d", fr.msg, size, wantSize)
					}
					for _, p := range fragsOf[fr.msg] {
						if !a.isDup(p) {
							t.Fatalf("message %d completed but psn %d not marked consumed", fr.msg, p)
						}
					}
				}
			}
			if a.doneBase < prevBase {
				t.Fatalf("doneBase moved backward: %d -> %d", prevBase, a.doneBase)
			}
			prevBase = a.doneBase
		}
		for m := 0; m < msgCount; m++ {
			if !skipped[m] && accepted[m] == len(fragsOf[m]) && !completed[m] {
				t.Fatalf("message %d fully received (%d fragments, never skipped) yet never completed",
					m, accepted[m])
			}
		}
	})
}
