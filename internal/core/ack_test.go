package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

func TestAckBatchingReducesAckPackets(t *testing.T) {
	run := func(flush sim.Time) (acks, delivered uint64) {
		cl := smallNet(t, 1, nil)
		for i := range cl.Hosts {
			cl.Hosts[i].Cfg.AckFlush = flush
			// Frame coalescing would collapse the 200 sends into a handful
			// of multi-message frames (one ACK each), hiding the ACK-side
			// batching this test isolates.
			cl.Hosts[i].Cfg.DisableBatching = true
		}
		cl.Procs[1].OnDeliver = func(Delivery) {}
		eng := cl.Net.Eng
		eng.At(50*sim.Microsecond, func() {
			for i := 0; i < 200; i++ {
				cl.Proc(0).SendReliable([]Message{{Dst: 1, Size: 64}})
			}
		})
		cl.Run(5 * sim.Millisecond)
		return cl.Net.Stats.PktsByKind[netsim.KindAck], cl.Hosts[1].Stats.MsgsDelivered
	}
	acksBatched, d1 := run(1 * sim.Microsecond)
	acksPer, d2 := run(0)
	if d1 != 200 || d2 != 200 {
		t.Fatalf("delivered %d/%d, want 200/200", d1, d2)
	}
	if acksPer < 200 {
		t.Fatalf("per-packet mode sent only %d acks", acksPer)
	}
	if acksBatched*4 > acksPer {
		t.Fatalf("batching barely helped: %d vs %d ack packets", acksBatched, acksPer)
	}
}

func TestAckBatchFlushesOnTimerWhenIdle(t *testing.T) {
	// A single message must still be ACKed (and committed) promptly even
	// though the batch never fills.
	cl := smallNet(t, 1, nil)
	var at sim.Time
	cl.Procs[1].OnDeliver = func(Delivery) { at = cl.Net.Eng.Now() }
	var sent sim.Time
	cl.Net.Eng.At(100*sim.Microsecond, func() {
		sent = cl.Net.Eng.Now()
		cl.Proc(0).SendReliable([]Message{{Dst: 1, Size: 64}})
	})
	cl.Run(2 * sim.Millisecond)
	if at == 0 {
		t.Fatal("single reliable message never delivered under batching")
	}
	if at-sent > 20*sim.Microsecond {
		t.Fatalf("lone reliable message took %v (batching stalled the ACK?)", at-sent)
	}
}

func TestECNEchoSurvivesBatching(t *testing.T) {
	cl := smallNet(t, 1, func(c *netsim.Config) {
		c.ECNThreshold = 500 * sim.Nanosecond
	})
	cl.Procs[1].OnDeliver = func(Delivery) {}
	eng := cl.Net.Eng
	for _, src := range []int{0, 2, 3} {
		src := src
		sim.NewTicker(eng, 150*sim.Nanosecond, 0, func() {
			if eng.Now() > 800*sim.Microsecond {
				return
			}
			cl.Procs[src].SendReliable([]Message{{Dst: 1, Size: 4096}})
		})
	}
	cl.Run(2 * sim.Millisecond)
	c := cl.Hosts[0].conns[connKey{src: 0, dst: 1}]
	if c == nil || c.alpha == 0 {
		t.Fatal("DCTCP never saw ECN marks through batched ACKs")
	}
}
