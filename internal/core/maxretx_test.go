package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// twoHostCluster deploys a minimal 1Pipe fabric with a bounded, fixed send
// window so MaxRetx exhaustion is easy to provoke.
func twoHostCluster(hosts int, maxRetx int) *Cluster {
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: hosts, SpinesPerPod: 1, Cores: 1}, 1)
	ccfg := DefaultConfig()
	ccfg.InitCwnd = 4
	ccfg.MaxCwnd = 4
	ccfg.MaxRetx = maxRetx
	// These tests assert per-packet window-slot accounting; frame
	// coalescing would merge the probe scatterings into one slot.
	ccfg.DisableBatching = true
	return Deploy(netsim.New(cfg), ccfg)
}

func TestMaxRetxRestoresWindowSlots(t *testing.T) {
	// A black-holed destination must not wedge the send window: packets
	// that exhaust MaxRetx give their slots back, so scatterings queued
	// behind them still launch. Before the fix the first window's worth of
	// packets sat in unacked[1] forever and the other half never launched.
	cl := twoHostCluster(2, 2)
	type stuckKey struct {
		dst netsim.ProcID
		ts  sim.Time
	}
	reports := make(map[stuckKey]int)
	cl.Hosts[0].OnStuck = func(src, dst netsim.ProcID, ts sim.Time) {
		reports[stuckKey{dst, ts}]++
	}
	const total = 8 // window is 4: half must wait for freed slots
	cl.Net.Eng.At(50*sim.Microsecond, func() {
		cl.Net.G.KillNode(cl.Net.G.Host(1))
		for i := 0; i < total; i++ {
			if err := cl.Procs[0].SendReliable([]Message{{Dst: 1, Size: 64}}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	cl.Run(100 * sim.Millisecond)

	h := cl.Hosts[0]
	c := h.conns[connKey{src: 0, dst: 1}]
	if c == nil {
		t.Fatal("no connection state")
	}
	// Every scattering has a distinct timestamp, so full escalation means
	// one report per scattering — and the dedup means exactly one.
	if len(reports) != total {
		t.Fatalf("OnStuck covered %d scatterings, want %d (queued sends never launched?)", len(reports), total)
	}
	for k, n := range reports {
		if n != 1 {
			t.Errorf("OnStuck fired %d times for (dst=%d, ts=%v), want exactly 1", n, k.dst, k.ts)
		}
	}
	if h.Stats.StuckReports != total {
		t.Errorf("StuckReports=%d, want %d", h.Stats.StuckReports, total)
	}
	// The window must be fully restored.
	if c.inflight != 0 || c.reserved != 0 {
		t.Errorf("window leaked: inflight=%d reserved=%d", c.inflight, c.reserved)
	}
	if got, want := c.available(), c.window(); got != want {
		t.Errorf("available()=%d, want full window %d", got, want)
	}
	if len(c.unacked[1]) != 0 {
		t.Errorf("%d packets still in unacked[1] after exhaustion", len(c.unacked[1]))
	}
	if len(c.stuckPkts) != total {
		t.Errorf("%d packets parked, want %d", len(c.stuckPkts), total)
	}
	// Fresh traffic on other connections is unaffected; the same connection
	// accepts and launches new scatterings into the restored window.
	sentBefore := h.Stats.MsgsSent
	if err := cl.Procs[0].SendReliable([]Message{{Dst: 1, Size: 64}}); err != nil {
		t.Fatalf("post-exhaustion send: %v", err)
	}
	cl.Run(sim.Millisecond)
	if h.Stats.MsgsSent != sentBefore+1 {
		t.Errorf("post-exhaustion scattering never launched: MsgsSent %d -> %d", sentBefore, h.Stats.MsgsSent)
	}
}

func TestMaxRetxStuckPacketCompletedByLateAck(t *testing.T) {
	// A parked packet stays ACK-completable: §5.2 Controller Forwarding
	// relays it out of band and the forwarded ACK must finish the
	// scattering and release the commit floor.
	cl := twoHostCluster(2, 2)
	cl.Hosts[0].OnStuck = func(netsim.ProcID, netsim.ProcID, sim.Time) {}
	cl.Net.Eng.At(50*sim.Microsecond, func() {
		cl.Net.G.KillNode(cl.Net.G.Host(1))
		cl.Procs[0].SendReliable([]Message{{Dst: 1, Size: 64}})
	})
	cl.Run(50 * sim.Millisecond)

	h := cl.Hosts[0]
	c := h.conns[connKey{src: 0, dst: 1}]
	if c == nil || len(c.stuckPkts) != 1 {
		t.Fatalf("expected exactly one parked packet, conn=%v", c)
	}
	if len(h.outstanding) != 1 {
		t.Fatalf("scattering should still block the commit floor, outstanding=%d", len(h.outstanding))
	}
	// The parked packet must be visible to Controller Forwarding.
	if pkts := h.PendingTo(0, 1); len(pkts) != 1 {
		t.Fatalf("PendingTo sees %d packets, want 1", len(pkts))
	}
	var psn uint32
	for p := range c.stuckPkts {
		psn = p
	}
	// Deliver the (controller-relayed) ACK.
	h.HandlePacket(&netsim.Packet{Kind: netsim.KindAck, Src: 1, Dst: 0, Reliable: true, PSN: psn})
	cl.Run(sim.Millisecond)
	if len(c.stuckPkts) != 0 {
		t.Error("parked packet not cleared by late ACK")
	}
	if len(h.outstanding) != 0 {
		t.Error("scattering still blocks the commit floor after late ACK")
	}
	if c.inflight != 0 {
		t.Errorf("inflight=%d after late ACK, want 0 (slot was already freed at parking)", c.inflight)
	}
}

func TestRecallMaxRetxCleansUp(t *testing.T) {
	// A recall whose receiver never answers must stop blocking the commit
	// floor and the failure-completion callback once MaxRetx is exhausted.
	// Before the fix the recall stayed registered, recallsPending never hit
	// zero, and ApplyFailure's done callback never fired.
	cl := twoHostCluster(3, 3)
	type stuckKey struct {
		dst netsim.ProcID
		ts  sim.Time
	}
	reports := make(map[stuckKey]int)
	cl.Hosts[0].OnStuck = func(src, dst netsim.ProcID, ts sim.Time) {
		reports[stuckKey{dst, ts}]++
	}
	doneFired := false
	eng := cl.Net.Eng
	eng.At(50*sim.Microsecond, func() {
		// Both receivers go dark: host 2 is declared failed by the
		// controller; host 1 is merely unreachable, so the recall sent to
		// it during the abort can never be acknowledged.
		cl.Net.G.KillNode(cl.Net.G.Host(1))
		cl.Net.G.KillNode(cl.Net.G.Host(2))
		cl.Procs[0].SendReliable([]Message{{Dst: 1, Size: 64}, {Dst: 2, Size: 64}})
	})
	eng.At(100*sim.Microsecond, func() {
		cl.Hosts[0].ApplyFailure(map[netsim.ProcID]sim.Time{2: eng.Now()}, func() { doneFired = true })
	})
	cl.Run(100 * sim.Millisecond)

	h := cl.Hosts[0]
	if !doneFired {
		t.Error("ApplyFailure completion never fired (recall state leaked)")
	}
	if len(h.recalls) != 0 {
		t.Errorf("%d recalls still registered after exhaustion", len(h.recalls))
	}
	if h.failWait != 0 {
		t.Errorf("failWait=%d, want 0", h.failWait)
	}
	if len(h.outstanding) != 0 {
		t.Errorf("aborted scattering still blocks the commit floor, outstanding=%d", len(h.outstanding))
	}
	for k, n := range reports {
		if n != 1 {
			t.Errorf("OnStuck fired %d times for (dst=%d, ts=%v), want exactly 1", n, k.dst, k.ts)
		}
	}
	if h.Stats.StuckReports == 0 {
		t.Error("recall exhaustion never escalated via OnStuck")
	}
}
