package core

import (
	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
)

type connKey struct {
	src, dst netsim.ProcID
}

// cls maps a reliability class to its PSN-space index: best-effort and
// reliable traffic use independent sequence spaces so a lost (never
// retransmitted) best-effort packet cannot wedge reliable reassembly.
func cls(reliable bool) int {
	if reliable {
		return 1
	}
	return 0
}

// outPkt is an in-flight packet awaiting its end-to-end ACK.
type outPkt struct {
	psn      uint32
	msgIdx   int // index into the scattering's message list
	frag     int // fragment index within the message
	endOfMsg bool
	size     int
	scat     *scattering
	retx     int
	// fnext links the members of a multi-message frame behind the head:
	// a frame occupies one window slot, one unacked entry (the head's PSN)
	// and one ACK, and member PSNs are consecutive from the head's. Chains
	// are immutable once emitted; aborted members stay linked (their PSN is
	// part of the frame's span) but are skipped when the wire packet is
	// rebuilt.
	fnext *outPkt
}

// connCursor is the residue of an evicted send-side connection: the next
// PSN of each plane, retained so a re-established conn continues the same
// sequence spaces the receiver's consumed-prefix tracking expects.
type connCursor struct {
	nextPSN [2]uint32
}

// conn is the send-side state for one (source process, destination process)
// pair: PSN spaces, in-flight accounting, DCTCP congestion control and the
// retransmission timer of reliable 1Pipe.
type conn struct {
	key     connKey
	host    *Host
	nextPSN [2]uint32
	// lastUse is the host clock at the last send-side activity (scattering
	// construction or ACK); the idle-eviction sweep compares it against
	// Config.ConnIdleEvict.
	lastUse sim.Time
	unacked [2]map[uint32]*outPkt
	// stuckPkts parks reliable packets that exhausted MaxRetx: their
	// window slots are freed and they are never retransmitted by the RTO,
	// but they stay visible to PendingTo so §5.2 Controller Forwarding can
	// still relay them, and a late (or controller-relayed) ACK completes
	// them via onAck.
	stuckPkts map[uint32]*outPkt
	// sendQ holds launched-but-untransmitted fragments: a scattering
	// larger than the window streams out as ACKs free space.
	sendQ []*outPkt
	// relOrder tracks reliable PSNs in transmission (= ascending PSN)
	// order, so the RTO retransmits in PSN order without sorting the
	// unacked map on every firing. Entries acked, dropped or parked out of
	// unacked[1] go stale in place and are compacted out lazily; relStale
	// counts them so compaction cost stays amortized O(1) per removal.
	relOrder []uint32
	relStale int
	// inflight + reserved are charged against min(cwnd, rwnd).
	inflight int
	reserved int
	rwnd     int
	// DCTCP state (§6.1: "Congestion control follows DCTCP").
	cwnd      float64
	alpha     float64
	ackTotal  int
	ackECN    int
	windowEnd [2]uint32
	rto       *timer
	// doorbell fires Config.BatchWindow after a partial frame started
	// waiting for more same-destination messages; holding is set while the
	// queue head is deliberately delayed (the host's barrier floor is
	// clamped below the held timestamp meanwhile), and flushAll forces
	// every queued batchable fragment out once the doorbell has rung, even
	// if emission is interleaved with window waits.
	doorbell *timer
	holding  bool
	flushAll bool
}

func (h *Host) getConn(src, dst netsim.ProcID) *conn {
	k := connKey{src, dst}
	c := h.conns[k]
	if c == nil {
		c = &conn{
			key:  k,
			host: h,
			rwnd: h.Cfg.RecvWindow,
			cwnd: h.Cfg.InitCwnd,
		}
		c.unacked[0] = make(map[uint32]*outPkt)
		c.unacked[1] = make(map[uint32]*outPkt)
		c.rto = newTimer(h.wire, c.onRTO)
		c.doorbell = newTimer(h.wire, c.onDoorbell)
		// Re-establishment after idle eviction: resume the evicted PSN
		// spaces so the receiver's duplicate detection stays coherent.
		if cur, ok := h.connMemo[k]; ok {
			c.nextPSN = cur.nextPSN
			c.windowEnd = cur.nextPSN
			delete(h.connMemo, k)
		}
		h.conns[k] = c
		h.Stats.ConnsLive = int64(len(h.conns) + len(h.rconns))
	}
	if h.Cfg.ConnIdleEvict > 0 {
		c.lastUse = h.wire.Now()
	}
	return c
}

// window is the send window: min(receive window, congestion window).
func (c *conn) window() int {
	w := int(c.cwnd)
	if c.rwnd < w {
		w = c.rwnd
	}
	return w
}

func (c *conn) available() int {
	a := c.window() - c.inflight - c.reserved
	if a < 0 {
		return 0
	}
	return a
}

// onAck processes one end-to-end ACK.
func (c *conn) onAck(reliable bool, psn uint32, ecn bool) {
	if c.host.Cfg.ConnIdleEvict > 0 {
		c.lastUse = c.host.wire.Now()
	}
	k := cls(reliable)
	op, ok := c.unacked[k][psn]
	if !ok {
		// A late or controller-relayed ACK can complete a packet that
		// exhausted MaxRetx; its window slot was freed when it was parked,
		// so only scattering completion accounting remains.
		if reliable {
			if op, stuck := c.stuckPkts[psn]; stuck {
				delete(c.stuckPkts, psn)
				for m := op; m != nil; m = m.fnext {
					c.host.onPacketAcked(m)
				}
				c.host.grantCredits()
			}
		}
		return // duplicate ACK
	}
	delete(c.unacked[k], psn)
	if k == 1 {
		c.relRemoved()
	}
	c.inflight--
	c.dctcpAck(k, psn, ecn)
	if len(c.unacked[1]) == 0 {
		c.rto.stop()
	}
	// One ACK completes the whole frame: every chained member was carried
	// (or spanned) by the acknowledged packet.
	for m := op; m != nil; m = m.fnext {
		c.host.onPacketAcked(m)
	}
	c.pump()
	c.host.grantCredits()
}

// pump transmits queued fragments while window space is available,
// coalescing runs of adjacent batchable fragments into multi-message
// frames (§6.1 send batching).
func (c *conn) pump() { c.emitQueued(false) }

// maxFrameEntries bounds a frame's member count independently of
// Config.BatchBytes so the 16-bit span/offset fields cannot overflow.
const maxFrameEntries = 512

// emitQueued drains the send queue within the window. A run of batchable
// same-class fragments at the head either fills a frame (BatchBytes) and
// goes out immediately, or — unless force is set — stays queued with the
// doorbell timer armed, waiting up to the batch window for more
// same-destination traffic to coalesce with.
func (c *conn) emitQueued(force bool) {
	if c.flushAll {
		force = true
	}
	held := false
	for c.inflight < c.window() && len(c.sendQ) > 0 {
		op := c.sendQ[0]
		if op.scat.aborted {
			c.sendQ = c.sendQ[1:]
			continue
		}
		if !op.scat.batch {
			c.sendQ = c.sendQ[1:]
			c.emitRun(op)
			continue
		}
		n, full := c.collectRun()
		if !full && !force {
			held = true
			break
		}
		run := c.sendQ[:n]
		for i := 0; i < n-1; i++ {
			run[i].fnext = run[i+1]
		}
		c.sendQ = c.sendQ[n:]
		c.emitRun(op)
	}
	if len(c.sendQ) == 0 {
		c.flushAll = false
	}
	c.updateHold(held)
}

// collectRun measures the batchable run at the head of the send queue:
// how many fragments coalesce into the next frame, and whether the frame
// is full — by bytes, by entry count, or because a non-coalescible
// fragment follows it (waiting longer could not grow it).
func (c *conn) collectRun() (n int, full bool) {
	head := c.sendQ[0]
	k := cls(head.scat.reliable)
	budget := c.host.Cfg.BatchBytes
	bytes := head.size + netsim.FrameEntryBytes
	n = 1
	for n < len(c.sendQ) {
		op := c.sendQ[n]
		if !op.scat.batch || cls(op.scat.reliable) != k {
			return n, true
		}
		if n >= maxFrameEntries {
			return n, true
		}
		if op.scat.aborted {
			// Rides along inside the frame's PSN span without payload.
			n++
			continue
		}
		nb := bytes + op.size + netsim.FrameEntryBytes
		if nb > budget {
			return n, true
		}
		bytes = nb
		n++
	}
	return n, bytes >= budget || n >= maxFrameEntries
}

// emitRun transmits one window unit: a single fragment or a frame chain
// headed by head (fnext-linked). The head's PSN indexes the unacked map;
// the whole chain completes on its single ACK.
func (c *conn) emitRun(head *outPkt) {
	h := c.host
	k := cls(head.scat.reliable)
	c.unacked[k][head.psn] = head
	if k == 1 {
		c.relOrder = append(c.relOrder, head.psn)
	}
	c.inflight++
	if h.Obs.On() {
		now := h.wire.Now()
		for m := head; m != nil; m = m.fnext {
			if !m.scat.aborted {
				h.Obs.Rec(obs.SpanXmitWait, now-m.scat.ts)
			}
		}
	}
	if head.scat.batch {
		live := 0
		for m := head; m != nil; m = m.fnext {
			if !m.scat.aborted {
				live++
			}
		}
		h.sendOcc.Add(float64(live))
		if live > 1 {
			h.Stats.FramesSent++
			h.Stats.FrameMsgs += uint64(live)
		}
	}
	h.emit(c.buildUnit(head))
	if head.scat.reliable && !c.rto.armed {
		c.rto.reset(h.Cfg.RTO)
	}
}

// onDoorbell flushes a held partial frame when the batch window expires.
// flushAll stays sticky until the queue drains so fragments blocked on
// window space go out as soon as slots free, instead of re-waiting.
func (c *conn) onDoorbell() {
	if c.host.stopped {
		return
	}
	c.flushAll = true
	c.emitQueued(true)
}

// updateHold reconciles the doorbell timer and the host's held-timestamp
// floor with whether the queue head is (still) deliberately delayed.
func (c *conn) updateHold(held bool) {
	h := c.host
	if held {
		head := c.sendQ[0]
		if !c.holding {
			c.holding = true
			c.doorbell.reset(head.scat.batchWin)
		}
		h.holdSet(c, head.scat.ts)
	} else if c.holding {
		c.holding = false
		c.doorbell.stop()
		h.holdClear(c)
	}
}

// dctcpAck runs the DCTCP window update: additive increase per ACK, and a
// multiplicative decrease by alpha/2 once per window where alpha is the
// EWMA of the ECN-marked fraction.
func (c *conn) dctcpAck(k int, psn uint32, ecn bool) {
	c.ackTotal++
	if ecn {
		c.ackECN++
	}
	if psn >= c.windowEnd[k] {
		frac := float64(c.ackECN) / float64(c.ackTotal)
		g := c.host.Cfg.DCTCPGain
		c.alpha = (1-g)*c.alpha + g*frac
		if c.ackECN > 0 {
			c.cwnd = c.cwnd * (1 - c.alpha/2)
			if c.cwnd < 1 {
				c.cwnd = 1
			}
		}
		c.ackTotal, c.ackECN = 0, 0
		c.windowEnd[0] = c.nextPSN[0]
		c.windowEnd[1] = c.nextPSN[1]
	}
	if c.cwnd < c.host.Cfg.MaxCwnd {
		c.cwnd += 1 / c.cwnd
	}
}

// onRTO retransmits every unACKed reliable packet (§5.1 Prepare phase loss
// recovery) in PSN order. Best-effort packets are never retransmitted;
// they expire via the send-failure timeout instead.
func (c *conn) onRTO() {
	h := c.host
	if h.stopped {
		return
	}
	// relOrder already lists the unACKed PSNs in ascending order (PSNs are
	// assigned and transmitted monotonically); the walk compacts stale
	// entries in place instead of rebuilding and sorting the key set.
	kept := c.relOrder[:0]
	rearm := false
	exhausted := false
	for _, psn := range c.relOrder {
		op, ok := c.unacked[1][psn]
		if !ok {
			continue // stale: acked, dropped or parked since queued
		}
		op.retx++
		if h.Cfg.MaxRetx > 0 && op.retx > h.Cfg.MaxRetx {
			// Retransmission budget exhausted: report the stall (once per
			// (dst, ts)), free the window slot, and park the packet where
			// Controller Forwarding can still find it. Leaving it in
			// unacked would charge its inflight slot forever — wedging the
			// window — and re-fire OnStuck on every later RTO. A frame
			// parks as a whole chain and stalls every live member.
			delete(c.unacked[1], psn)
			c.inflight--
			if c.stuckPkts == nil {
				c.stuckPkts = make(map[uint32]*outPkt)
			}
			c.stuckPkts[psn] = op
			for m := op; m != nil; m = m.fnext {
				if !m.scat.aborted {
					h.reportStuck(c.key.src, c.key.dst, m.scat.ts)
				}
			}
			exhausted = true
			continue
		}
		pkt := c.buildUnit(op)
		if pkt == nil {
			// Every frame member was aborted since the last transmission.
			delete(c.unacked[1], psn)
			c.inflight--
			exhausted = true
			continue
		}
		kept = append(kept, psn)
		h.Stats.PktsRetx++
		h.emit(pkt)
		rearm = true
	}
	c.relOrder = kept
	c.relStale = 0
	if rearm {
		c.rto.reset(h.Cfg.RTO * sim.Time(1+min(4, c.minRetx())))
	}
	if exhausted {
		// The freed slots can admit queued fragments and credit-blocked
		// scatterings immediately.
		c.pump()
		h.grantCredits()
	}
}

func (c *conn) minRetx() int {
	m := 1 << 30
	for _, op := range c.unacked[1] {
		if op.retx < m {
			m = op.retx
		}
	}
	if m == 1<<30 {
		return 0
	}
	return m
}

// buildPacket materializes the wire packet for an in-flight entry; used for
// both first transmission and retransmission (barrier fields are stamped at
// emit time).
func (c *conn) buildPacket(op *outPkt, psn uint32) *netsim.Packet {
	s := op.scat
	m := &s.msgs[op.msgIdx]
	pkt := netsim.GetPacket()
	pkt.Kind = netsim.KindData
	pkt.Src = c.key.src
	pkt.Dst = c.key.dst
	pkt.MsgTS = s.ts
	pkt.Reliable = s.reliable
	pkt.ConflictKey = s.conflict
	pkt.PSN = psn
	pkt.FragIdx = uint16(op.frag)
	pkt.EndOfMsg = op.endOfMsg
	pkt.Size = op.size + netsim.HeaderBytes
	if op.endOfMsg {
		pkt.Payload = m.Data
	}
	return pkt
}

// buildUnit materializes the wire packet for a window unit: buildPacket
// for a single fragment, or a multi-message frame for a chain. Each
// transmission builds a fresh frame so aborted members drop out of the
// payload while their PSNs stay covered by the span. Returns nil when no
// live member remains.
func (c *conn) buildUnit(head *outPkt) *netsim.Packet {
	if head.fnext == nil {
		return c.buildPacket(head, head.psn)
	}
	f := netsim.GetFrame()
	last := head
	size := 0
	for m := head; m != nil; m = m.fnext {
		last = m
		if m.scat.aborted {
			continue
		}
		f.Entries = append(f.Entries, netsim.FrameEntry{
			TS:          m.scat.ts,
			PSNOff:      uint16(m.psn - head.psn),
			Size:        m.size,
			ConflictKey: m.scat.conflict,
			Data:        m.scat.msgs[m.msgIdx].Data,
		})
		size += m.size + netsim.FrameEntryBytes
	}
	if len(f.Entries) == 0 {
		netsim.PutFrame(f)
		return nil
	}
	f.Span = uint16(last.psn - head.psn + 1)
	pkt := netsim.GetPacket()
	pkt.Kind = netsim.KindData
	pkt.Src = c.key.src
	pkt.Dst = c.key.dst
	pkt.MsgTS = f.Entries[0].TS
	pkt.Reliable = head.scat.reliable
	pkt.ConflictKey = f.Entries[0].ConflictKey
	pkt.PSN = head.psn
	pkt.EndOfMsg = true
	pkt.Frame = true
	pkt.Payload = f
	pkt.Size = size + netsim.HeaderBytes
	return pkt
}

// dropInflight abandons an un-ACKed packet (destination failed, scattering
// aborted, or best-effort timeout), freeing its window slot.
func (c *conn) dropInflight(k int, psn uint32) {
	if _, ok := c.unacked[k][psn]; !ok {
		return
	}
	delete(c.unacked[k], psn)
	if k == 1 {
		c.relRemoved()
	}
	c.inflight--
	if len(c.unacked[1]) == 0 {
		c.rto.stop()
	}
}

// relRemoved notes that a reliable PSN left unacked[1] outside the RTO walk
// and compacts relOrder once stale entries dominate it, keeping the slice
// bounded by the in-flight window between RTO firings.
func (c *conn) relRemoved() {
	c.relStale++
	if c.relStale > 64 && c.relStale*2 > len(c.relOrder) {
		kept := c.relOrder[:0]
		for _, psn := range c.relOrder {
			if _, ok := c.unacked[1][psn]; ok {
				kept = append(kept, psn)
			}
		}
		c.relOrder = kept
		c.relStale = 0
	}
}

// dropScattering abandons all of s's un-ACKed packets on this conn (its
// queued fragments are skipped by the pump via s.aborted) and refills the
// freed window from the send queue. A frame is dropped only once every
// chained member's scattering has aborted; until then it stays in flight
// carrying the surviving members.
func (c *conn) dropScattering(s *scattering) {
	for k := 0; k < 2; k++ {
		for psn, op := range c.unacked[k] {
			if chainDead(op, s) {
				c.dropInflight(k, psn)
			}
		}
	}
	// Parked (MaxRetx-exhausted) packets of an aborted scattering will
	// never be wanted again, not even by Controller Forwarding.
	for psn, op := range c.stuckPkts {
		if chainDead(op, s) {
			delete(c.stuckPkts, psn)
		}
	}
	c.pump()
}

// chainDead reports whether the unit headed by op involves s and no
// longer carries any live member (s is treated as aborted: callers drop
// it before or while marking it so).
func chainDead(op *outPkt, s *scattering) bool {
	touches := false
	for m := op; m != nil; m = m.fnext {
		if m.scat == s {
			touches = true
		} else if !m.scat.aborted {
			return false
		}
	}
	return touches
}

// scattering is a group of messages sharing one timestamp (§2.1).
type scattering struct {
	owner    *Proc
	reliable bool
	msgs     []Message
	ts       sim.Time
	// conflict is the sender-declared conflict key; every packet and frame
	// entry of the scattering carries it (DeliverConflictAware).
	conflict uint32
	launched bool
	aborted  bool
	done     bool
	// batch marks the scattering's fragments as coalescible into
	// multi-message frames (every message single-fragment, batching
	// enabled); batchWin is the doorbell window its fragments may wait for
	// company.
	batch    bool
	batchWin sim.Time
	// submitAt is the Send call time, recorded only while tracing; the
	// submit → launch gap is the credit wait (obs.SpanCreditWait).
	submitAt sim.Time

	// fragsPerMsg[i] is the packet count of msgs[i].
	fragsPerMsg []int
	totalPkts   int
	// Credit reservation state, per destination connection, in first-use
	// order (ordered for deterministic partial-credit acquisition).
	credits []credit
	// ACK tracking.
	unackedPkts int
	// failTimer drives best-effort loss detection.
	failTimer *timer
	// ackedMsg[i] counts ACKed packets of msgs[i] (for per-message
	// send-failure reporting).
	ackedMsg []int
	// recallsPending counts outstanding recall ACKs during abort.
	recallsPending int
}

// credit tracks one connection's share of a scattering's window demand.
type credit struct {
	conn     *conn
	needed   int
	reserved int
}

func newScattering(p *Proc, msgs []Message, reliable bool, mtu int) *scattering {
	s := &scattering{
		owner:       p,
		reliable:    reliable,
		msgs:        msgs,
		fragsPerMsg: make([]int, len(msgs)),
		ackedMsg:    make([]int, len(msgs)),
	}
	idx := make(map[*conn]int)
	for i := range msgs {
		size := msgs[i].Size
		if size <= 0 {
			size = 64
		}
		frags := (size + mtu - 1) / mtu
		s.fragsPerMsg[i] = frags
		s.totalPkts += frags
		c := p.host.getConn(p.ID, msgs[i].Dst)
		j, ok := idx[c]
		if !ok {
			j = len(s.credits)
			idx[c] = j
			s.credits = append(s.credits, credit{conn: c})
		}
		s.credits[j].needed += frags
	}
	s.unackedPkts = s.totalPkts
	return s
}

// needEff is the launch requirement on one connection: the full demand,
// capped at the window — a message larger than the window can never hold
// more credits than the window, so it launches once it owns a whole
// window's worth and streams the rest via the send queue.
func (cr *credit) needEff() int {
	w := cr.conn.window()
	if w < 1 {
		w = 1
	}
	if cr.needed < w {
		return cr.needed
	}
	return w
}

func (s *scattering) fullyReserved() bool {
	for i := range s.credits {
		if s.credits[i].reserved < s.credits[i].needEff() {
			return false
		}
	}
	return true
}

// tryAcquire reserves as many window credits as available for s, holding
// partial reservations (the paper's anti-livelock rule: a large scattering
// keeps its credits while waiting, §6.1).
func (h *Host) tryAcquire(s *scattering) {
	for i := range s.credits {
		cr := &s.credits[i]
		missing := cr.needEff() - cr.reserved
		if missing <= 0 {
			continue
		}
		take := cr.conn.available()
		if take > missing {
			take = missing
		}
		if take > 0 {
			cr.conn.reserved += take
			cr.reserved += take
		}
	}
}

// grantCredits re-scans the wait queue in FIFO order after window space was
// freed, launching scatterings that became fully reserved.
func (h *Host) grantCredits() {
	if len(h.waitQ) == 0 {
		return
	}
	remaining := h.waitQ[:0]
	for _, s := range h.waitQ {
		if s.aborted {
			h.releaseReservations(s)
			continue
		}
		h.tryAcquire(s)
		if s.fullyReserved() {
			h.launch(s)
		} else {
			remaining = append(remaining, s)
		}
	}
	h.waitQ = remaining
}

func (h *Host) releaseReservations(s *scattering) {
	for i := range s.credits {
		s.credits[i].conn.reserved -= s.credits[i].reserved
		s.credits[i].reserved = 0
	}
}

// launch stamps the scattering with the egress timestamp and transmits all
// fragments of all messages (§6.1: the timestamp is attached when the
// scattering leaves the send buffer, so the host clock remains a valid
// barrier floor).
func (h *Host) launch(s *scattering) {
	s.ts = h.nextTS()
	s.launched = true
	if s.submitAt > 0 {
		h.Obs.Rec(obs.SpanCreditWait, s.ts-s.submitAt)
	}
	h.releaseReservations(s)
	if s.reliable {
		// Joining the outstanding list MUST precede any emission: the
		// packets below carry the commit floor, and this scattering is
		// uncommitted until all its ACKs arrive.
		h.outstanding = append(h.outstanding, s)
	}
	k := cls(s.reliable)
	mtu := h.Cfg.MTU
	for i := range s.msgs {
		m := &s.msgs[i]
		c := h.getConn(s.owner.ID, m.Dst)
		size := m.Size
		if size <= 0 {
			size = 64
		}
		for f := 0; f < s.fragsPerMsg[i]; f++ {
			fragSize := mtu
			if f == s.fragsPerMsg[i]-1 {
				fragSize = size - f*mtu
			}
			psn := c.nextPSN[k]
			c.nextPSN[k]++
			op := &outPkt{
				psn: psn, msgIdx: i, frag: f,
				endOfMsg: f == s.fragsPerMsg[i]-1,
				size:     fragSize, scat: s,
			}
			track := s.reliable || !h.Cfg.DisableBEAck
			if track {
				// Queue; the pump transmits within the window, streaming
				// oversized scatterings as ACKs return.
				c.sendQ = append(c.sendQ, op)
			} else {
				s.unackedPkts-- // fire-and-forget
				h.emit(c.buildPacket(op, psn))
			}
		}
		h.Stats.MsgsSent++
	}
	for i := range s.credits {
		s.credits[i].conn.pump() // ordered: deterministic emission
	}
	if !s.reliable && !h.Cfg.DisableBEAck {
		s.failTimer = newTimer(h.wire, func() { h.beSendTimeout(s) })
		s.failTimer.reset(h.Cfg.SendFailTimeout)
	}
}

// onPacketAcked updates scattering completion state after an ACK.
func (h *Host) onPacketAcked(op *outPkt) {
	s := op.scat
	s.unackedPkts--
	s.ackedMsg[op.msgIdx]++
	if s.unackedPkts > 0 || s.done || s.aborted {
		return
	}
	s.done = true
	if h.Obs.On() {
		h.Obs.Rec(obs.SpanAckWait, h.wire.Now()-s.ts)
	}
	if s.reliable {
		h.reapOutstanding()
	} else if s.failTimer != nil {
		s.failTimer.stop()
	}
}

// reapOutstanding pops completed scatterings off the head of the
// outstanding list and advertises the advanced commit floor with an
// explicit commit message to the neighbor switch (§5.1 Commit phase).
// Every host emission already carries the floor, so under load the
// explicit commit packet is elided: the next data packet or beacon
// propagates the advance within a fraction of the beacon interval.
func (h *Host) reapOutstanding() {
	advanced := false
	for len(h.outstanding) > 0 && h.outstanding[0].done {
		h.outstanding = h.outstanding[1:]
		advanced = true
	}
	if !advanced {
		return
	}
	if h.wire.Now()-h.lastUplinkSend < h.Cfg.BeaconInterval/4 {
		return // a very recent emission (or an imminent one) carries it
	}
	h.sendCommit()
}

func (h *Host) sendCommit() {
	h.Stats.Commits++
	pkt := netsim.GetPacket()
	pkt.Kind, pkt.Src, pkt.Size = netsim.KindCommit, h.reprProc, netsim.BeaconBytes
	h.emit(pkt)
}

// beSendTimeout fires the best-effort loss-detection timer: every message
// with un-ACKed packets is reported failed (§2.1: detection without
// retransmission).
func (h *Host) beSendTimeout(s *scattering) {
	if h.stopped || s.done || s.aborted {
		return
	}
	s.aborted = true
	for i := range s.msgs {
		if s.ackedMsg[i] < s.fragsPerMsg[i] {
			h.failMessage(s, i)
		}
	}
	// Free the window slots of the lost packets.
	for i := range s.credits {
		s.credits[i].conn.dropScattering(s)
	}
	h.grantCredits()
}

func (h *Host) failMessage(s *scattering, msgIdx int) {
	h.Stats.MsgsFailed++
	m := &s.msgs[msgIdx]
	if s.owner.OnSendFail != nil {
		s.owner.OnSendFail(SendFailure{TS: s.ts, Dst: m.Dst, Data: m.Data})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
