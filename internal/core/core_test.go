package core

import (
	"fmt"
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func smallNet(t *testing.T, procsPerHost int, mut func(*netsim.Config)) *Cluster {
	t.Helper()
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, procsPerHost)
	if mut != nil {
		mut(&cfg)
	}
	return Deploy(netsim.New(cfg), DefaultConfig())
}

type rec struct {
	ts  sim.Time
	src netsim.ProcID
	d   any
}

// collect installs a recorder on every proc and returns the per-proc logs.
func collect(cl *Cluster) []*[]rec {
	logs := make([]*[]rec, len(cl.Procs))
	for i, p := range cl.Procs {
		log := &[]rec{}
		logs[i] = log
		p.OnDeliver = func(d Delivery) {
			*log = append(*log, rec{d.TS, d.Src, d.Data})
		}
	}
	return logs
}

func TestBestEffortUnicastDelivery(t *testing.T) {
	cl := smallNet(t, 1, nil)
	logs := collect(cl)
	cl.Run(50 * sim.Microsecond)
	if err := cl.Proc(0).Send([]Message{{Dst: 5, Data: "hi", Size: 64}}); err != nil {
		t.Fatal(err)
	}
	cl.Run(200 * sim.Microsecond)
	if len(*logs[5]) != 1 || (*logs[5])[0].d != "hi" {
		t.Fatalf("proc 5 log = %v", *logs[5])
	}
}

func TestScatteringSharesTimestamp(t *testing.T) {
	cl := smallNet(t, 1, nil)
	logs := collect(cl)
	cl.Run(50 * sim.Microsecond)
	var msgs []Message
	for dst := 1; dst < 8; dst++ {
		msgs = append(msgs, Message{Dst: netsim.ProcID(dst), Data: dst, Size: 64})
	}
	if err := cl.Proc(0).Send(msgs); err != nil {
		t.Fatal(err)
	}
	cl.Run(200 * sim.Microsecond)
	var ts sim.Time
	for dst := 1; dst < 8; dst++ {
		l := *logs[dst]
		if len(l) != 1 {
			t.Fatalf("proc %d got %d msgs", dst, len(l))
		}
		if ts == 0 {
			ts = l[0].ts
		} else if l[0].ts != ts {
			t.Fatalf("scattering timestamps differ: %v vs %v", l[0].ts, ts)
		}
	}
}

// checkTotalOrder verifies each log is strictly sorted by (ts, src) — the
// global total order — and that no message is duplicated.
func checkTotalOrder(t *testing.T, logs []*[]rec) {
	t.Helper()
	for i, lp := range logs {
		l := *lp
		for j := 1; j < len(l); j++ {
			a, b := l[j-1], l[j]
			if b.ts < a.ts || (b.ts == a.ts && b.src < a.src) {
				t.Fatalf("proc %d: order violation at %d: (%v,%d) then (%v,%d)", i, j, a.ts, a.src, b.ts, b.src)
			}
		}
	}
}

func TestTotalOrderManySenders(t *testing.T) {
	cl := smallNet(t, 2, nil)
	logs := collect(cl)
	np := len(cl.Procs)
	eng := cl.Net.Eng
	rng := eng.Rand()
	sent := 0
	for p := 0; p < np; p++ {
		p := p
		sim.NewTicker(eng, 700*sim.Nanosecond, 0, func() {
			if eng.Now() > 300*sim.Microsecond {
				return
			}
			dst := netsim.ProcID(rng.Intn(np))
			if cl.Proc(p).Send([]Message{{Dst: dst, Data: sent, Size: 64}}) == nil {
				sent++
			}
		})
	}
	cl.Run(800 * sim.Microsecond)
	checkTotalOrder(t, logs)
	total := 0
	for _, lp := range logs {
		total += len(*lp)
	}
	if total == 0 || total < sent*9/10 {
		t.Fatalf("delivered %d of %d", total, sent)
	}
}

func TestCausality(t *testing.T) {
	// When a receiver delivers timestamp T, its own host clock must
	// already exceed T (§2.1 causality property).
	cl := smallNet(t, 1, nil)
	for i, p := range cl.Procs {
		i := i
		p.OnDeliver = func(d Delivery) {
			if now := cl.Procs[i].Timestamp(); now <= d.TS {
				t.Errorf("proc %d delivered ts=%v but clock=%v", i, d.TS, now)
			}
		}
	}
	eng := cl.Net.Eng
	for p := 0; p < len(cl.Procs); p++ {
		p := p
		sim.NewTicker(eng, 1*sim.Microsecond, 0, func() {
			if eng.Now() > 200*sim.Microsecond {
				return
			}
			dst := netsim.ProcID((p + 3) % len(cl.Procs))
			cl.Proc(p).Send([]Message{{Dst: dst, Size: 64}})
		})
	}
	cl.Run(400 * sim.Microsecond)
}

func TestReliableDeliveryUnderLoss(t *testing.T) {
	cl := smallNet(t, 1, func(c *netsim.Config) { c.LossRate = 0.02; c.Seed = 42 })
	logs := collect(cl)
	cl.Run(50 * sim.Microsecond)
	const rounds = 60
	eng := cl.Net.Eng
	sent := 0
	for r := 0; r < rounds; r++ {
		r := r
		eng.At(sim.Time(50+r*5)*sim.Microsecond, func() {
			src := r % len(cl.Procs)
			dst := netsim.ProcID((r + 1) % len(cl.Procs))
			if cl.Proc(src).SendReliable([]Message{{Dst: dst, Data: r, Size: 64}}) == nil {
				sent++
			}
		})
	}
	cl.Run(5 * sim.Millisecond)
	got := 0
	for _, lp := range logs {
		got += len(*lp)
	}
	if got != sent {
		t.Fatalf("reliable delivered %d of %d under loss", got, sent)
	}
	checkTotalOrder(t, logs)
	if cl.TotalStats().PktsRetx == 0 {
		t.Fatal("expected retransmissions under 2% loss")
	}
}

func TestReliableNoDuplicates(t *testing.T) {
	cl := smallNet(t, 1, func(c *netsim.Config) { c.LossRate = 0.05; c.Seed = 7 })
	seen := make(map[int]int)
	for _, p := range cl.Procs {
		p.OnDeliver = func(d Delivery) { seen[d.Data.(int)]++ }
	}
	cl.Run(50 * sim.Microsecond)
	eng := cl.Net.Eng
	for i := 0; i < 100; i++ {
		i := i
		eng.At(sim.Time(50+i*3)*sim.Microsecond, func() {
			cl.Proc(i % 4).SendReliable([]Message{{Dst: netsim.ProcID(4 + i%4), Data: i, Size: 64}})
		})
	}
	cl.Run(10 * sim.Millisecond)
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("message %d delivered %d times", k, n)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("delivered %d of 100", len(seen))
	}
}

func TestBestEffortLossReportedNotRetransmitted(t *testing.T) {
	cl := smallNet(t, 1, func(c *netsim.Config) { c.LossRate = 0.10; c.Seed = 9 })
	delivered := make(map[int]bool)
	failed := make(map[int]bool)
	for _, p := range cl.Procs {
		p.OnDeliver = func(d Delivery) { delivered[d.Data.(int)] = true }
		p.OnSendFail = func(f SendFailure) { failed[f.Data.(int)] = true }
	}
	cl.Run(50 * sim.Microsecond)
	eng := cl.Net.Eng
	const n = 300
	for i := 0; i < n; i++ {
		i := i
		eng.At(sim.Time(50+i)*sim.Microsecond, func() {
			cl.Proc(i % 4).Send([]Message{{Dst: netsim.ProcID(4 + i%4), Data: i, Size: 64}})
		})
	}
	cl.Run(10 * sim.Millisecond)
	if len(failed) == 0 {
		t.Fatal("no send failures reported at 10% loss")
	}
	if cl.TotalStats().PktsRetx != 0 {
		t.Fatal("best-effort traffic must not be retransmitted")
	}
	for i := 0; i < n; i++ {
		if !delivered[i] && !failed[i] {
			t.Fatalf("message %d neither delivered nor failed", i)
		}
		if delivered[i] && failed[i] {
			// Possible only if the ACK was lost: the sender reports
			// failure though the receiver delivered. Allowed by
			// at-most-once semantics; tolerate.
			continue
		}
	}
}

func TestBELatencyNearBeaconHalfInterval(t *testing.T) {
	cl := smallNet(t, 1, nil)
	var lat []sim.Time
	var sentAt sim.Time
	cl.Procs[1].OnDeliver = func(d Delivery) {
		lat = append(lat, cl.Net.Eng.Now()-sentAt)
	}
	eng := cl.Net.Eng
	for i := 0; i < 50; i++ {
		// Steps decorrelated from the 3us beacon phase.
		at := sim.Time(100_000+i*20_000+i%7*433) * sim.Nanosecond
		eng.At(at, func() {
			sentAt = eng.Now()
			cl.Proc(0).Send([]Message{{Dst: 1, Size: 64}}) // same rack
		})
	}
	cl.Run(2 * sim.Millisecond)
	if len(lat) != 50 {
		t.Fatalf("delivered %d of 50", len(lat))
	}
	var sum sim.Time
	for _, l := range lat {
		sum += l
	}
	avg := sum / sim.Time(len(lat))
	// Base one-way ~1us + beacon-wave wait (~2-6us) + clock skew.
	if avg < 1*sim.Microsecond || avg > 11*sim.Microsecond {
		t.Fatalf("intra-rack BE delivery latency %v outside expected envelope", avg)
	}
}

func TestReliableLatencyAddsRTT(t *testing.T) {
	// Cross-pod (5 switch hops): the prepare+ACK round trip (~7us)
	// dominates the beacon-tick quantization, exposing the paper's
	// "reliable = best-effort + 1 RTT" shape. Intra-rack, where the RTT
	// is below the mean beacon wait, the eager commit message can erase
	// (or even invert) the gap — see EXPERIMENTS.md.
	measure := func(reliable bool) sim.Time {
		cl := smallNet(t, 1, nil)
		var total sim.Time
		var n int
		var sentAt sim.Time
		cl.Procs[7].OnDeliver = func(d Delivery) {
			total += cl.Net.Eng.Now() - sentAt
			n++
		}
		eng := cl.Net.Eng
		for i := 0; i < 30; i++ {
			// Phases decorrelated from the beacon interval so the
			// prepare+ACK round trip is actually exposed.
			at := sim.Time(100_000+i*30_000+i%9*347) * sim.Nanosecond
			eng.At(at, func() {
				sentAt = eng.Now()
				m := []Message{{Dst: 7, Size: 64}}
				if reliable {
					cl.Proc(0).SendReliable(m)
				} else {
					cl.Proc(0).Send(m)
				}
			})
		}
		cl.Run(2 * sim.Millisecond)
		if n == 0 {
			t.Fatal("nothing delivered")
		}
		return total / sim.Time(n)
	}
	be, rel := measure(false), measure(true)
	if rel <= be {
		t.Fatalf("reliable latency %v not above best-effort %v", rel, be)
	}
	if rel-be > 10*sim.Microsecond {
		t.Fatalf("reliable adds %v, expected roughly one RTT (~2-4us)", rel-be)
	}
}

func TestReliableNotDeliveredBeforeCommit(t *testing.T) {
	// Suppress ACKs by killing the receiver's uplink... simpler: use a
	// huge RTO and drop all ACKs via 100% loss after the prepare arrives.
	// Instead verify via ordering: delivery must not happen before the
	// sender could have received the ACK (>= 1 full RTT after send).
	cl := smallNet(t, 1, nil)
	var deliveredAt sim.Time
	cl.Procs[7].OnDeliver = func(d Delivery) { deliveredAt = cl.Net.Eng.Now() }
	var sentAt sim.Time
	cl.Net.Eng.At(100*sim.Microsecond, func() {
		sentAt = cl.Net.Eng.Now()
		cl.Proc(0).SendReliable([]Message{{Dst: 7, Size: 64}}) // cross pod
	})
	cl.Run(1 * sim.Millisecond)
	if deliveredAt == 0 {
		t.Fatal("not delivered")
	}
	// Cross-pod one-way is ~3.4us; a full prepare+ACK RTT is ~6.8us.
	if deliveredAt-sentAt < 6*sim.Microsecond {
		t.Fatalf("reliable delivered after %v, before 2PC could complete", deliveredAt-sentAt)
	}
}

func TestFragmentationLargeMessage(t *testing.T) {
	cl := smallNet(t, 1, nil)
	var got any
	cl.Procs[7].OnDeliver = func(d Delivery) { got = d.Data }
	payload := make([]byte, 10_000)
	payload[9999] = 42
	cl.Net.Eng.At(100*sim.Microsecond, func() {
		if err := cl.Proc(0).SendReliable([]Message{{Dst: 7, Data: payload, Size: len(payload)}}); err != nil {
			t.Error(err)
		}
	})
	cl.Run(1 * sim.Millisecond)
	b, ok := got.([]byte)
	if !ok || len(b) != 10_000 || b[9999] != 42 {
		t.Fatalf("large message corrupted: %T", got)
	}
	// 10 KB at 1 KB MTU = 10 data packets.
	if s := cl.TotalStats(); s.PktsRetx != 0 && s.MsgsDelivered != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFlowControlBacklogDrains(t *testing.T) {
	cl := smallNet(t, 1, nil)
	delivered := 0
	cl.Procs[1].OnDeliver = func(d Delivery) { delivered++ }
	cl.Net.Eng.At(100*sim.Microsecond, func() {
		// Burst far beyond the initial cwnd of 64.
		for i := 0; i < 2000; i++ {
			if err := cl.Proc(0).SendReliable([]Message{{Dst: 1, Size: 512}}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	cl.Run(20 * sim.Millisecond)
	if delivered != 2000 {
		t.Fatalf("delivered %d of 2000 under flow control", delivered)
	}
}

func TestSendBufferFullReturnsError(t *testing.T) {
	cl := smallNet(t, 1, nil)
	cl.Run(50 * sim.Microsecond)
	var err error
	for i := 0; i < sendBufCap+100; i++ {
		if err = cl.Proc(0).SendReliable([]Message{{Dst: 1, Size: 1024}}); err != nil {
			break
		}
	}
	if err != ErrSendBufferFull {
		t.Fatalf("err = %v, want ErrSendBufferFull", err)
	}
}

func TestEmptyScatteringRejected(t *testing.T) {
	cl := smallNet(t, 1, nil)
	if err := cl.Proc(0).Send(nil); err != ErrNoMessages {
		t.Fatalf("err = %v", err)
	}
}

func TestUnifiedModeCrossClassOrder(t *testing.T) {
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	ccfg := DefaultConfig()
	ccfg.Mode = DeliverUnified
	cl := Deploy(netsim.New(cfg), ccfg)
	logs := collect(cl)
	eng := cl.Net.Eng
	rng := eng.Rand()
	for p := 0; p < len(cl.Procs); p++ {
		p := p
		sim.NewTicker(eng, 2*sim.Microsecond, 0, func() {
			if eng.Now() > 300*sim.Microsecond {
				return
			}
			dst := netsim.ProcID(rng.Intn(len(cl.Procs)))
			m := []Message{{Dst: dst, Data: p, Size: 64}}
			if rng.Intn(2) == 0 {
				cl.Proc(p).Send(m)
			} else {
				cl.Proc(p).SendReliable(m)
			}
		})
	}
	cl.Run(2 * sim.Millisecond)
	// In unified mode the single log per proc must be (ts,src)-sorted
	// across both classes.
	checkTotalOrder(t, logs)
	total := 0
	for _, lp := range logs {
		total += len(*lp)
	}
	if total == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestRestrictedAtomicityOnReceiverFailure(t *testing.T) {
	// Scattering {dead, alive}: if the dead receiver never ACKed, the
	// alive receiver must not deliver (all-or-nothing, §5.2 Recall).
	cl := smallNet(t, 1, func(c *netsim.Config) { c.ControllerManagedCommit = true })
	deliveredAtAlive := false
	cl.Procs[2].OnDeliver = func(d Delivery) { deliveredAtAlive = true }
	eng := cl.Net.Eng
	// Kill host 1 before the send so its prepare is never ACKed.
	eng.At(90*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(1)) })
	eng.At(100*sim.Microsecond, func() {
		cl.Proc(0).SendReliable([]Message{
			{Dst: 1, Data: "to-dead", Size: 64},
			{Dst: 2, Data: "to-alive", Size: 64},
		})
	})
	// The controller (simulated here by hand) broadcasts the failure.
	var failTS sim.Time
	eng.At(200*sim.Microsecond, func() {
		failTS = 95 * sim.Microsecond // before the scattering's ts
		fail := map[netsim.ProcID]sim.Time{1: failTS}
		for hi, h := range cl.Hosts {
			if hi == 1 {
				continue
			}
			h.ApplyFailure(fail, func() {})
		}
	})
	cl.Run(5 * sim.Millisecond)
	if deliveredAtAlive {
		t.Fatal("atomicity violated: alive receiver delivered half a dead scattering")
	}
	// The sender must have reported both messages failed.
	fails := cl.Hosts[0].Stats.MsgsFailed
	if fails != 2 {
		t.Fatalf("sender reported %d failures, want 2", fails)
	}
	if cl.Hosts[0].Stats.Recalled != 1 {
		t.Fatalf("recalled = %d, want 1", cl.Hosts[0].Stats.Recalled)
	}
}

func TestCommitFloorStallsUntilRecallComplete(t *testing.T) {
	cl := smallNet(t, 1, func(c *netsim.Config) { c.ControllerManagedCommit = true })
	eng := cl.Net.Eng
	eng.At(90*sim.Microsecond, func() { cl.Net.G.KillNode(cl.Net.G.Host(1)) })
	var scatTS sim.Time
	eng.At(100*sim.Microsecond, func() {
		cl.Proc(0).SendReliable([]Message{{Dst: 1, Size: 64}, {Dst: 2, Size: 64}})
		scatTS = cl.Hosts[0].outstanding[0].ts
	})
	cl.Run(300 * sim.Microsecond)
	// Before ApplyFailure, the sender's commit floor is stuck below the
	// aborted scattering.
	if f := cl.Hosts[0].commitFloor(); f >= scatTS {
		t.Fatalf("commit floor %v advanced past un-ACKed scattering ts %v", f, scatTS)
	}
	fail := map[netsim.ProcID]sim.Time{1: 95 * sim.Microsecond}
	recallDone := false
	cl.Hosts[0].ApplyFailure(fail, func() { recallDone = true })
	for hi, h := range cl.Hosts {
		if hi != 0 && hi != 1 {
			h.ApplyFailure(fail, func() {})
		}
	}
	cl.Run(2 * sim.Millisecond)
	if !recallDone {
		t.Fatal("recall completion callback never fired")
	}
	if f := cl.Hosts[0].commitFloor(); f < scatTS {
		t.Fatalf("commit floor %v did not advance after recall", f)
	}
}

func TestBufferStatsTracked(t *testing.T) {
	cl := smallNet(t, 1, nil)
	cl.Net.Eng.At(100*sim.Microsecond, func() {
		for i := 0; i < 50; i++ {
			cl.Proc(0).Send([]Message{{Dst: 7, Size: 1024}})
		}
	})
	cl.Run(2 * sim.Millisecond)
	s := cl.Hosts[7].Stats
	if s.MaxBufferBytes == 0 {
		t.Fatal("reorder buffer max occupancy not tracked")
	}
	if s.BufferedBytes != 0 || s.BufferedMsgs != 0 {
		t.Fatalf("buffer not drained: %d bytes, %d msgs", s.BufferedBytes, s.BufferedMsgs)
	}
}

// Property-style sweep: across seeds and modes, random mixed traffic keeps
// the total order and exactly-once (reliable) invariants.
func TestInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, mode := range []netsim.Mode{netsim.ModeChip, netsim.ModeHostDelegate} {
			seed, mode := seed, mode
			t.Run(fmt.Sprintf("seed%d-%s", seed, mode), func(t *testing.T) {
				cl := smallNet(t, 1, func(c *netsim.Config) {
					c.Seed = seed
					c.Mode = mode
					c.LossRate = 0.01
				})
				// DeliverSeparate gives each class its own total order;
				// record the two streams separately.
				np := len(cl.Procs)
				beLogs := make([]*[]rec, np)
				relLogs := make([]*[]rec, np)
				reliableSeen := make(map[int]int)
				for i, p := range cl.Procs {
					be, rel := &[]rec{}, &[]rec{}
					beLogs[i], relLogs[i] = be, rel
					p.OnDeliver = func(d Delivery) {
						if d.Reliable {
							*rel = append(*rel, rec{d.TS, d.Src, d.Data})
							reliableSeen[d.Data.(int)]++
						} else {
							*be = append(*be, rec{d.TS, d.Src, d.Data})
						}
					}
				}
				eng := cl.Net.Eng
				rng := eng.Rand()
				id := 0
				sentReliable := make(map[int]bool)
				for p := 0; p < len(cl.Procs); p++ {
					p := p
					sim.NewTicker(eng, 3*sim.Microsecond, 0, func() {
						if eng.Now() > 200*sim.Microsecond {
							return
						}
						id++
						dst := netsim.ProcID(rng.Intn(len(cl.Procs)))
						if rng.Intn(2) == 0 {
							if cl.Proc(p).SendReliable([]Message{{Dst: dst, Data: id, Size: 200}}) == nil {
								sentReliable[id] = true
							}
						} else {
							cl.Proc(p).Send([]Message{{Dst: dst, Data: id, Size: 200}})
						}
					})
				}
				cl.Run(10 * sim.Millisecond)
				checkTotalOrder(t, beLogs)
				checkTotalOrder(t, relLogs)
				for id := range sentReliable {
					if reliableSeen[id] != 1 {
						t.Fatalf("reliable msg %d delivered %d times", id, reliableSeen[id])
					}
				}
			})
		}
	}
}
