package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// TestConflictAwareDegeneratesToUnified is the spine of the conflict-aware
// mode: with EVERY message tagged (any nonzero key), DeliverConflictAware
// must degenerate to DeliverUnified exactly — same seed, same workload, and
// per-host delivery logs identical element by element. The key assignment is
// a pure function of the message ID, so both runs consume the same
// randomness; any divergence means tagged traffic took a code path unified
// traffic would not (e.g. a floor the relaxed machinery forgot to advance).
func TestConflictAwareDegeneratesToUnified(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 5
	}
	allTagged := func(id int64) uint32 { return 1 + uint32(id%7) }
	for seed := int64(1); seed <= seeds; seed++ {
		uni := runKeyedWorkload(t, DeliverUnified, seed, allTagged)
		ca := runKeyedWorkload(t, DeliverConflictAware, seed, allTagged)
		if len(uni) != len(ca) {
			t.Fatalf("seed %d: process count differs (%d vs %d)", seed, len(uni), len(ca))
		}
		total := 0
		for pi := range uni {
			if len(uni[pi]) != len(ca[pi]) {
				t.Fatalf("seed %d proc %d: log length %d (unified) vs %d (conflict-aware)",
					seed, pi, len(uni[pi]), len(ca[pi]))
			}
			total += len(uni[pi])
			for j := range uni[pi] {
				if uni[pi][j] != ca[pi][j] {
					t.Fatalf("seed %d proc %d entry %d: unified %+v vs conflict-aware %+v",
						seed, pi, j, uni[pi][j], ca[pi][j])
				}
			}
		}
		if total == 0 {
			t.Fatalf("seed %d: no deliveries — degeneracy vacuous", seed)
		}
	}
}

// TestConflictPairOrdering is the positive property of the relaxation: with
// a random mix of tagged and untagged scatterings under DeliverConflictAware,
// (a) any two deliveries sharing a nonzero conflict key appear in (ts, src)
// order at every receiver, (b) every pair of receivers agrees on the
// relative order of their common same-key scatterings, and (c) at least one
// untagged pair is actually delivered out of the global order somewhere —
// otherwise the relaxation bought nothing and the test is vacuous.
func TestConflictPairOrdering(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	// Roughly a third untagged, the rest spread over four conflict classes.
	keyFor := func(id int64) uint32 {
		if id%3 == 0 {
			return 0
		}
		return 1 + uint32(id%4)
	}
	samekeyPairs, untaggedInversions := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		logs := runKeyedWorkload(t, DeliverConflictAware, seed, keyFor)
		keyed := make([]map[uint32][]propRec, len(logs))
		for pi, l := range logs {
			// (a) per-receiver same-key subsequences sorted by (ts, src).
			keyed[pi] = map[uint32][]propRec{}
			for _, d := range l {
				if want := keyFor(d.id); d.conflict != want {
					t.Fatalf("seed %d proc %d: id=%d delivered with key %d, tagged %d",
						seed, pi, d.id, d.conflict, want)
				}
				if d.conflict != 0 {
					keyed[pi][d.conflict] = append(keyed[pi][d.conflict], d)
				}
			}
			for key, sub := range keyed[pi] {
				samekeyPairs += len(sub) * (len(sub) - 1) / 2
				if j, ok := sortedByKey(sub); !ok {
					t.Fatalf("seed %d proc %d key %d: conflicting pair out of order at %d: %v then %v",
						seed, pi, key, j, sub[j-1], sub[j])
				}
			}
			// (c) count untagged deliveries breaking the merged (ts, src)
			// order — the latency the relaxation actually harvested.
			for j := 1; j < len(l); j++ {
				a, b := l[j-1], l[j]
				if (b.ts < a.ts || (b.ts == a.ts && b.src < a.src)) && (a.conflict == 0 || b.conflict == 0) {
					untaggedInversions++
				}
			}
		}
		// (b) cross-receiver agreement per key.
		for a := 0; a < len(keyed); a++ {
			for key, sa := range keyed[a] {
				idx := make(map[int64]int, len(sa))
				for i, d := range sa {
					idx[d.id] = i
				}
				for b := a + 1; b < len(keyed); b++ {
					last := -1
					for _, d := range keyed[b][key] {
						i, common := idx[d.id]
						if !common {
							continue
						}
						if i < last {
							t.Fatalf("seed %d: receivers %d and %d disagree on key %d order", seed, a, b, key)
						}
						last = i
					}
				}
			}
		}
	}
	if samekeyPairs == 0 {
		t.Fatalf("no same-key delivery pair in %d seeds — conflict ordering tested nothing", seeds)
	}
	if untaggedInversions == 0 {
		t.Fatalf("no untagged delivery left the global order in %d seeds — the relaxation is inert", seeds)
	}
}

// TestConflictAwareUntaggedNoOrder is the negative control in the style of
// TestSeparatePerPlaneOrderOnly: with NOTHING tagged, DeliverConflictAware
// promises no cross-message order at all — at least one receiver's merged
// log must exhibit an inversion across the seeds (otherwise untagged traffic
// is secretly still paying the barrier wait), while at-most-once delivery
// must survive unconditionally.
func TestConflictAwareUntaggedNoOrder(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	untagged := func(int64) uint32 { return 0 }
	inversions := 0
	for seed := int64(1); seed <= seeds; seed++ {
		logs := runKeyedWorkload(t, DeliverConflictAware, seed, untagged)
		total := 0
		for pi, l := range logs {
			total += len(l)
			seen := make(map[int64]bool, len(l))
			for _, d := range l {
				if seen[d.id] {
					t.Fatalf("seed %d proc %d: id=%d delivered twice", seed, pi, d.id)
				}
				seen[d.id] = true
			}
			if _, ok := sortedByKey(l); !ok {
				inversions++
			}
		}
		if total == 0 {
			t.Fatalf("seed %d: no deliveries", seed)
		}
	}
	if inversions == 0 {
		t.Fatalf("no merged-order inversion in %d untagged conflict-aware seeds — relaxed delivery never fired", seeds)
	}
}

// TestConflictAwareRelaxedLatency pins the latency claim behind the mode: on
// an otherwise idle cluster, an untagged best-effort message delivers
// strictly earlier than the same message tagged (the tagged one waits for
// the barriers to cover its timestamp; the untagged one delivers on
// reassembly, the paper's 0.5 RTT floor).
func TestConflictAwareRelaxedLatency(t *testing.T) {
	oneShot := func(key uint32) sim.Time {
		cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1}, 1)
		cfg.Seed = 1
		ccfg := DefaultConfig()
		ccfg.Mode = DeliverConflictAware
		cl := Deploy(netsim.New(cfg), ccfg)
		eng := cl.Net.Eng
		sent := 10 * sim.Microsecond
		var latency sim.Time = -1
		cl.Procs[3].OnDeliver = func(d Delivery) {
			if latency < 0 {
				latency = eng.Now() - sent
			}
		}
		eng.At(sent, func() {
			if err := cl.Proc(0).SendOpts([]Message{{Dst: 3, Data: int64(1), Size: 64}}, SendOptions{ConflictKey: key}); err != nil {
				t.Errorf("key=%d: send failed: %v", key, err)
			}
		})
		cl.Run(300 * sim.Microsecond)
		if latency < 0 {
			t.Fatalf("key=%d: message never delivered", key)
		}
		return latency
	}
	relaxed := oneShot(0)
	tagged := oneShot(9)
	if relaxed >= tagged {
		t.Fatalf("untagged latency %v not below tagged latency %v — relaxation inert", relaxed, tagged)
	}
}
