package core

import (
	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// simWire adapts one simulated host's network attachment to the Wire
// interface.
type simWire struct {
	n    *netsim.Network
	host int
}

func (w simWire) Send(pkt *netsim.Packet)     { w.n.SendFromHost(w.host, pkt) }
func (w simWire) Now() sim.Time               { return w.n.Clocks[w.host].Now() }
func (w simWire) After(d sim.Time, fn func()) { w.n.Eng.After(d, fn) }

// Cluster is a fully deployed 1Pipe fabric on the network simulator: one
// lib1pipe Host per simulated machine and one Proc per process.
type Cluster struct {
	Net   *netsim.Network
	Hosts []*Host
	Procs []*Proc

	// cfg is the resolved endpoint configuration Deploy used, retained so
	// hosts joined at runtime get identical settings.
	cfg Config
}

// Deploy attaches a lib1pipe runtime to every host of the simulated
// network and registers every process. The endpoint configuration is
// derived from the network's incarnation mode (data packets carry valid
// barriers only with the programmable chip) and beacon interval.
func Deploy(n *netsim.Network, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	cfg.UseDataBarriers = n.Cfg.Mode == netsim.ModeChip
	cfg.BeaconInterval = n.Cfg.BeaconInterval
	cl := &Cluster{Net: n, cfg: cfg}
	for hi := 0; hi < len(n.G.Hosts); hi++ {
		h := NewHost(hi, simWire{n: n, host: hi}, cfg)
		n.AttachHost(hi, h.HandlePacket)
		h.Start()
		cl.Hosts = append(cl.Hosts, h)
	}
	for p := 0; p < n.NumProcs(); p++ {
		proc := cl.Hosts[n.HostOfProc(netsim.ProcID(p))].AddProc(netsim.ProcID(p))
		cl.Procs = append(cl.Procs, proc)
	}
	return cl
}

// Proc returns process p's endpoint.
func (cl *Cluster) Proc(p int) *Proc { return cl.Procs[p] }

// AddHost attaches a lib1pipe runtime to host hi of an already-running
// fabric (the network must have grown its state first) and registers its
// process block. floor is the join epoch T_join: the host's clock reads
// and timestamps are forced above it before the first beacon, so nothing
// this host ever emits can fall below what its pre-seeded link registers
// promised. Returns the new host; its procs append to cl.Procs in ID
// order.
func (cl *Cluster) AddHost(hi int, floor sim.Time) *Host {
	n := cl.Net
	n.Clocks[hi].AdvanceTo(floor)
	h := NewHost(hi, simWire{n: n, host: hi}, cl.cfg)
	h.SetFloor(floor)
	n.AttachHost(hi, h.HandlePacket)
	h.Start()
	cl.Hosts = append(cl.Hosts, h)
	pph := n.Cfg.ProcsPerHost
	for p := hi * pph; p < (hi+1)*pph; p++ {
		cl.Procs = append(cl.Procs, h.AddProc(netsim.ProcID(p)))
	}
	return h
}

// EnableTracing installs a fresh lifecycle tracer on every host and returns
// them (index == host index) for obs.Merge after the run. Call before
// traffic flows; hosts deployed without it pay only the nil-check branch.
func (cl *Cluster) EnableTracing() []*obs.Trace {
	out := make([]*obs.Trace, len(cl.Hosts))
	for i, h := range cl.Hosts {
		if h.Obs == nil {
			h.Obs = obs.NewTrace()
		}
		out[i] = h.Obs
	}
	return out
}

// Run advances the simulation by d, dispatching through the network so
// sharded simulations drive every shard engine.
func (cl *Cluster) Run(d sim.Time) { cl.Net.RunFor(d) }

// TotalStats sums the per-host statistics.
func (cl *Cluster) TotalStats() HostStats {
	var t HostStats
	for _, h := range cl.Hosts {
		t.MsgsSent += h.Stats.MsgsSent
		t.MsgsDelivered += h.Stats.MsgsDelivered
		t.MsgsFailed += h.Stats.MsgsFailed
		t.PktsSent += h.Stats.PktsSent
		t.PktsRetx += h.Stats.PktsRetx
		t.Naks += h.Stats.Naks
		t.DupPkts += h.Stats.DupPkts
		t.Commits += h.Stats.Commits
		t.Beacons += h.Stats.Beacons
		t.Recalled += h.Stats.Recalled
		t.StuckReports += h.Stats.StuckReports
		t.BeaconsSuppressed += h.Stats.BeaconsSuppressed
		t.FramesSent += h.Stats.FramesSent
		t.FrameMsgs += h.Stats.FrameMsgs
		t.Backpressure += h.Stats.Backpressure
		t.DeliverBatches += h.Stats.DeliverBatches
		t.ReorderSpills += h.Stats.ReorderSpills
		t.RelaxedDeliveries += h.Stats.RelaxedDeliveries
		t.ConnsLive += h.Stats.ConnsLive
		t.ConnsEvicted += h.Stats.ConnsEvicted
		if h.Stats.MaxBufferBytes > t.MaxBufferBytes {
			t.MaxBufferBytes = h.Stats.MaxBufferBytes
		}
		if h.Stats.ReorderHotBytes > t.ReorderHotBytes {
			t.ReorderHotBytes = h.Stats.ReorderHotBytes
		}
		if h.Stats.ReorderHotMax > t.ReorderHotMax {
			t.ReorderHotMax = h.Stats.ReorderHotMax
		}
	}
	return t
}

// Occupancy merges the per-host batch-occupancy histograms: send-side frame
// sizes (messages per emitted frame, batched traffic only) and receive-side
// delivery-batch sizes. The returned histograms are fresh copies.
func (cl *Cluster) Occupancy() (send, recv *stats.Histogram) {
	send, recv = &stats.Histogram{}, &stats.Histogram{}
	for _, h := range cl.Hosts {
		send.Merge(h.SendOccupancy())
		recv.Merge(h.RecvOccupancy())
	}
	return send, recv
}
