package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func TestDCTCPReducesWindowUnderECN(t *testing.T) {
	// Saturate one receiver from two senders with a low ECN threshold;
	// the senders' congestion windows must come down from InitCwnd.
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: 4, SpinesPerPod: 1, Cores: 1}, 1)
	cfg.ECNThreshold = 1 * sim.Microsecond
	cl := Deploy(netsim.New(cfg), DefaultConfig())
	cl.Procs[3].OnDeliver = func(Delivery) {}
	eng := cl.Net.Eng
	for _, src := range []int{0, 1} {
		src := src
		sim.NewTicker(eng, 300*sim.Nanosecond, 0, func() {
			cl.Procs[src].Send([]Message{{Dst: 3, Size: 4096}})
		})
	}
	cl.Run(3 * sim.Millisecond)
	c := cl.Hosts[0].conns[connKey{src: 0, dst: 3}]
	if c == nil {
		t.Fatal("no connection state")
	}
	if c.alpha == 0 {
		t.Fatal("DCTCP alpha never updated despite ECN marks")
	}
	if c.cwnd >= cl.Hosts[0].Cfg.InitCwnd {
		t.Fatalf("cwnd %.1f did not decrease from initial %.1f under congestion",
			c.cwnd, cl.Hosts[0].Cfg.InitCwnd)
	}
	if cl.Net.Stats.ECNMarks == 0 {
		t.Fatal("no ECN marks recorded")
	}
}

func TestWindowNeverOverCommitted(t *testing.T) {
	// inflight + reserved must never exceed min(cwnd, rwnd) while a burst
	// drains through flow control.
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1}, 1)
	ccfg := DefaultConfig()
	ccfg.InitCwnd = 8
	ccfg.MaxCwnd = 8
	cl := Deploy(netsim.New(cfg), ccfg)
	cl.Procs[1].OnDeliver = func(Delivery) {}
	eng := cl.Net.Eng
	eng.At(50*sim.Microsecond, func() {
		for i := 0; i < 200; i++ {
			cl.Procs[0].SendReliable([]Message{{Dst: 1, Size: 256}})
		}
	})
	check := sim.NewTicker(eng, sim.Microsecond, 0, func() {
		c := cl.Hosts[0].conns[connKey{src: 0, dst: 1}]
		if c == nil {
			return
		}
		if c.inflight+c.reserved > c.window()+1 {
			t.Errorf("window overcommitted: inflight=%d reserved=%d window=%d",
				c.inflight, c.reserved, c.window())
		}
		if c.inflight < 0 || c.reserved < 0 {
			t.Errorf("negative accounting: inflight=%d reserved=%d", c.inflight, c.reserved)
		}
	})
	cl.Run(5 * sim.Millisecond)
	check.Stop()
	if got := cl.Hosts[1].Stats.MsgsDelivered; got != 200 {
		t.Fatalf("delivered %d of 200", got)
	}
}

func TestLargeScatteringEventuallyLaunches(t *testing.T) {
	// Anti-livelock (§6.1): a scattering larger than the free window must
	// hold partial credits and launch once enough ACKs free space, even
	// while small scatterings keep arriving.
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: 3, SpinesPerPod: 1, Cores: 1}, 1)
	ccfg := DefaultConfig()
	ccfg.InitCwnd = 4
	ccfg.MaxCwnd = 4
	cl := Deploy(netsim.New(cfg), ccfg)
	bigDone := false
	small := 0
	cl.Procs[1].OnDeliver = func(d Delivery) {
		if d.Data == "big" {
			bigDone = true
		} else {
			small++
		}
	}
	cl.Procs[2].OnDeliver = func(Delivery) {}
	eng := cl.Net.Eng
	eng.At(50*sim.Microsecond, func() {
		// A 16-packet message against a 4-packet window.
		cl.Procs[0].SendReliable([]Message{{Dst: 1, Data: "big", Size: 16 * 1024}})
	})
	// Competing small traffic on the same connection, continuously.
	sim.NewTicker(eng, 2*sim.Microsecond, 0, func() {
		if eng.Now() < 50*sim.Microsecond || eng.Now() > 2*sim.Millisecond {
			return
		}
		cl.Procs[0].SendReliable([]Message{{Dst: 1, Data: "s", Size: 64}})
	})
	cl.Run(5 * sim.Millisecond)
	if !bigDone {
		t.Fatal("large scattering starved (livelock)")
	}
	if small == 0 {
		t.Fatal("small traffic never flowed")
	}
}

func TestRetransmissionStopsAfterAck(t *testing.T) {
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1}, 1)
	cfg.LossRate = 0.3
	cfg.Seed = 13
	cl := Deploy(netsim.New(cfg), DefaultConfig())
	cl.Procs[1].OnDeliver = func(Delivery) {}
	cl.Net.Eng.At(50*sim.Microsecond, func() {
		cl.Procs[0].SendReliable([]Message{{Dst: 1, Size: 64}})
	})
	cl.Run(10 * sim.Millisecond)
	retxAt10ms := cl.Hosts[0].Stats.PktsRetx
	cl.Run(10 * sim.Millisecond)
	if cl.Hosts[0].Stats.PktsRetx != retxAt10ms {
		t.Fatal("retransmissions continued after the message was ACKed")
	}
	if cl.Hosts[0].Stats.MsgsDelivered+cl.Hosts[1].Stats.MsgsDelivered != 1 {
		t.Fatal("message not delivered")
	}
}

func TestRTOBackoffBounded(t *testing.T) {
	// Destination permanently black-holed (node killed without controller):
	// retransmissions must stop at MaxRetx and escalate via OnStuck.
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1}, 1)
	ccfg := DefaultConfig()
	ccfg.MaxRetx = 5
	cl := Deploy(netsim.New(cfg), ccfg)
	stuck := 0
	cl.Hosts[0].OnStuck = func(src, dst netsim.ProcID, ts sim.Time) { stuck++ }
	cl.Net.Eng.At(50*sim.Microsecond, func() {
		cl.Net.G.KillNode(cl.Net.G.Host(1))
		cl.Procs[0].SendReliable([]Message{{Dst: 1, Size: 64}})
	})
	cl.Run(50 * sim.Millisecond)
	if cl.Hosts[0].Stats.PktsRetx > uint64(ccfg.MaxRetx) {
		t.Fatalf("retransmitted %d times, cap %d", cl.Hosts[0].Stats.PktsRetx, ccfg.MaxRetx)
	}
	if stuck == 0 {
		t.Fatal("OnStuck escalation never fired")
	}
}
