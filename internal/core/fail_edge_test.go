package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// smallNetWith is smallNet with a mutated core config — the fail-edge tests
// shrink MaxRetx so recall exhaustion happens inside a test-sized run.
func smallNetWith(t *testing.T, mut func(*Config)) *Cluster {
	t.Helper()
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	ccfg := DefaultConfig()
	if mut != nil {
		mut(&ccfg)
	}
	return Deploy(netsim.New(cfg), ccfg)
}

// TestLateRecallAckAfterMaxRetx pins the §5.2 abort path in which the recall
// itself gives up: destination dead, recall ACKs never return, resendRecall
// exhausts MaxRetx, reports OnStuck, and finishRecall releases the
// scattering and the ApplyFailure completion. A RecallAck or a controller
// ResolveRecall arriving AFTER that release must be a strict no-op — the
// recall state is gone, and the completion callback must not fire twice.
func TestLateRecallAckAfterMaxRetx(t *testing.T) {
	cl := smallNetWith(t, func(c *Config) { c.MaxRetx = 4 })
	h0 := cl.Hosts[0]
	g := cl.Net.G
	cl.Run(50 * sim.Microsecond)

	// Kill proc 5's host: data to it blackholes, so the scattering can
	// never commit and a failure round must recall the live member.
	deadHost := cl.Net.HostOfProc(5)
	g.KillNode(g.Host(deadHost))
	cl.Hosts[deadHost].Stop()
	if err := cl.Proc(0).SendReliable([]Message{
		{Dst: 3, Data: "m", Size: 64},
		{Dst: 5, Data: "m", Size: 64},
	}); err != nil {
		t.Fatal(err)
	}
	scatTS := h0.outstanding[0].ts

	// Sever host 0's receive path before the failure notification, so the
	// recall to proc 3 is sent and re-sent but its ACKs never arrive.
	for _, lid := range g.In[g.Host(0)] {
		g.KillLink(lid)
	}

	dones := 0
	h0.ApplyFailure(map[netsim.ProcID]sim.Time{5: scatTS}, func() { dones++ })
	if h0.Stats.Recalled != 1 {
		t.Fatalf("Recalled=%d, want 1", h0.Stats.Recalled)
	}
	// 4 retries x 20us RTO plus slack: the recall exhausts and finishes.
	cl.Run(500 * sim.Microsecond)
	if dones != 1 {
		t.Fatalf("ApplyFailure completion fired %d times, want exactly 1", dones)
	}
	if h0.Stats.StuckReports == 0 {
		t.Fatal("recall exhaustion did not report OnStuck")
	}
	if len(h0.recalls) != 0 {
		t.Fatalf("recall state leaked: %d entries", len(h0.recalls))
	}
	if len(h0.outstanding) != 0 {
		t.Fatalf("aborted scattering still outstanding (%d) — commit floor parked", len(h0.outstanding))
	}

	// The receiver's RecallAck finally limps in, long after finishRecall.
	h0.HandlePacket(&netsim.Packet{Kind: netsim.KindRecallAck, Src: 3, Dst: 0, MsgTS: scatTS})
	// And the controller resolves the same recall redundantly.
	h0.ResolveRecall(3, scatTS)
	cl.Run(50 * sim.Microsecond)

	if dones != 1 {
		t.Fatalf("late RecallAck/ResolveRecall re-fired completion: dones=%d", dones)
	}
	if h0.failWait != 0 {
		t.Fatalf("failWait=%d after late ack, want 0 (underflow corrupts the next failure round)", h0.failWait)
	}
}

// TestAbortRacesLateDataAck pins the recall-vs-ACK race: a reliable
// scattering is aborted (co-destination failed) while the ACK for the member
// already delivered to the correct destination is still in flight. The late
// ACK must not resurrect the dropped window state or complete the aborted
// scattering a second time; the commit floor must still be released exactly
// once via the recall path.
func TestAbortRacesLateDataAck(t *testing.T) {
	cl := smallNetWith(t, func(c *Config) { c.MaxRetx = 4 })
	h0 := cl.Hosts[0]
	g := cl.Net.G
	cl.Run(50 * sim.Microsecond)

	deadHost := cl.Net.HostOfProc(5)
	g.KillNode(g.Host(deadHost))
	cl.Hosts[deadHost].Stop()
	if err := cl.Proc(0).SendReliable([]Message{
		{Dst: 3, Data: "m", Size: 64},
		{Dst: 5, Data: "m", Size: 64},
	}); err != nil {
		t.Fatal(err)
	}
	scatTS := h0.outstanding[0].ts

	// Let the data reach proc 3 (it ACKs), but abort before running the
	// network long enough for the ACK to travel back: ApplyFailure drops
	// the un-ACKed window entry, THEN the ACK arrives.
	dones := 0
	h0.ApplyFailure(map[netsim.ProcID]sim.Time{5: scatTS}, func() { dones++ })

	// The first reliable data packet to proc 3 carried PSN 0 on a fresh
	// connection; inject its ACK directly — the exact late-arrival race.
	h0.HandlePacket(&netsim.Packet{Kind: netsim.KindAck, Src: 3, Dst: 0, PSN: 0, Reliable: true, MsgTS: scatTS})

	cl.Run(500 * sim.Microsecond)
	if dones != 1 {
		t.Fatalf("completion fired %d times, want exactly 1", dones)
	}
	if len(h0.outstanding) != 0 {
		t.Fatalf("aborted scattering still outstanding — late ACK resurrected it")
	}
	if h0.Stats.Recalled != 1 {
		t.Fatalf("Recalled=%d, want 1", h0.Stats.Recalled)
	}
	// The commit floor must be clear of the aborted timestamp.
	if f := h0.commitFloor(); f < scatTS {
		t.Fatalf("commit floor %v still parked below aborted scattering ts %v", f, scatTS)
	}
}

// TestSecondFailureSkipsAbortedScattering pins the overlapping-failure path:
// two failure rounds hit the same scattering (both destinations fail, one
// per round). recallAffected must skip the already-aborted scattering in
// round two (no double abort, no second recall), and ApplyFailure must
// compose the two completions — round two arriving while round one's recall
// is still pending must not clobber round one's callback (with sharded
// controllers two shards can broadcast to the same host concurrently, and a
// dropped completion wedges that shard's round forever).
func TestSecondFailureSkipsAbortedScattering(t *testing.T) {
	cl := smallNetWith(t, func(c *Config) { c.MaxRetx = 4 })
	h0 := cl.Hosts[0]
	g := cl.Net.G
	cl.Run(50 * sim.Microsecond)

	for _, p := range []netsim.ProcID{3, 5} {
		hi := cl.Net.HostOfProc(p)
		g.KillNode(g.Host(hi))
		cl.Hosts[hi].Stop()
	}
	if err := cl.Proc(0).SendReliable([]Message{
		{Dst: 3, Data: "m", Size: 64},
		{Dst: 5, Data: "m", Size: 64},
	}); err != nil {
		t.Fatal(err)
	}
	scatTS := h0.outstanding[0].ts

	done1, done2 := 0, 0
	h0.ApplyFailure(map[netsim.ProcID]sim.Time{5: scatTS}, func() { done1++ })
	if h0.Stats.Recalled != 1 {
		t.Fatalf("Recalled=%d after round one, want 1", h0.Stats.Recalled)
	}
	// Round two declares the other destination while round one's recall to
	// proc 3 is still pending. The scattering is already aborted, so round
	// two issues no new recall; its completion chains behind round one's
	// outstanding wait instead of firing early (or worse, clobbering it).
	h0.ApplyFailure(map[netsim.ProcID]sim.Time{3: scatTS}, func() { done2++ })
	if done1 != 0 || done2 != 0 {
		t.Fatalf("completions fired early: done1=%d done2=%d, want 0 and 0 while the recall is pending", done1, done2)
	}
	if h0.Stats.Recalled != 1 {
		t.Fatalf("Recalled=%d after round two, want still 1", h0.Stats.Recalled)
	}

	cl.Run(500 * sim.Microsecond)
	if done1 != 1 || done2 != 1 {
		t.Fatalf("completions fired done1=%d done2=%d, want 1 and 1", done1, done2)
	}
	if len(h0.outstanding) != 0 {
		t.Fatal("scattering never released")
	}
}
