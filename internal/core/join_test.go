package core

import (
	"testing"

	"onepipe/internal/sim"
)

// TestLateJoiningHost exercises §4.2's "addition of new hosts": a host
// whose 1Pipe runtime starts long after the rest of the cluster first
// appears as a dead uplink (removed from aggregation), then rejoins. The
// switch's monotonic-output clamp must prevent any barrier regression, and
// traffic from the latecomer must flow and stay ordered.
func TestLateJoiningHost(t *testing.T) {
	cl := smallNet(t, 1, nil)
	// Stop host 0's runtime before anything happens: no beacons from it.
	cl.Hosts[0].Stop()

	var barrier sim.Time
	regressions := 0
	var deliveries []sim.Time
	cl.Procs[5].OnDeliver = func(d Delivery) { deliveries = append(deliveries, d.TS) }
	// Track barrier monotonicity at host 5 through the core runtime's view.
	check := sim.NewTicker(cl.Net.Eng, 5*sim.Microsecond, 0, func() {
		be, _ := cl.Hosts[5].Barriers()
		if be < barrier {
			regressions++
		}
		barrier = be
	})
	defer check.Stop()

	// The cluster runs without host 0 long enough for the dead-link
	// scanner to remove it and barriers to advance.
	cl.Run(500 * sim.Microsecond)
	before := barrier
	if before == 0 {
		t.Fatal("barrier never advanced without the latecomer")
	}

	// Host 0 joins: a fresh runtime on the same (synchronized) clock.
	h0 := NewHost(0, simWire{n: cl.Net, host: 0}, cl.Hosts[0].Cfg)
	cl.Net.AttachHost(0, h0.HandlePacket)
	h0.Start()
	p0 := h0.AddProc(0)
	cl.Run(200 * sim.Microsecond)
	if err := p0.SendReliable([]Message{{Dst: 5, Size: 64}}); err != nil {
		t.Fatal(err)
	}
	cl.Run(2 * sim.Millisecond)

	if regressions != 0 {
		t.Fatalf("%d barrier regressions across the join", regressions)
	}
	if len(deliveries) != 1 {
		t.Fatalf("latecomer's message delivered %d times", len(deliveries))
	}
	if deliveries[0] <= before {
		t.Fatal("latecomer's timestamp below the pre-join barrier (clock sync violated)")
	}
}
