package core

import (
	"sort"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// ApplyFailure executes the Discard, Recall and Callback steps of §5.2 on
// this host after the controller broadcast a failure notification: failed
// maps each failed process to its failure timestamp. done is invoked once
// every recall issued by this host has been acknowledged — the host's
// completion message back to the controller.
func (h *Host) ApplyFailure(failed map[netsim.ProcID]sim.Time, done func()) {
	for p, ts := range failed {
		if old, ok := h.failedPeers[p]; !ok || ts < old {
			h.failedPeers[p] = ts
		}
	}

	// Discard: drop received-but-undelivered messages from failed
	// processes with timestamps beyond their failure timestamp.
	h.discardFrom(failed)

	// Recall: abort in-flight scatterings with a failed destination. A
	// previous round's recalls may still be pending (sharded controllers
	// broadcast concurrently, §6.1): completions compose rather than
	// clobber, and failWait keeps counting the union — overwriting it
	// would drop the earlier round's completion and wedge that shard's
	// broadcast forever.
	if prev := h.failDone; prev != nil {
		h.failDone = func() { prev(); done() }
	} else {
		h.failDone = done
	}
	h.recallAffected(failed)

	// Callback: notify every local process of each failure. Both maps are
	// walked in sorted key order — an application that acts on the callback
	// makes its order part of the deterministic replay contract, and ranging
	// over the maps directly would let Go's map-iteration randomization leak
	// into the event stream on multi-process failures.
	for _, fp := range sortedProcIDs(failed) {
		fts := failed[fp]
		for _, pid := range sortedProcIDs(h.procs) {
			if proc := h.procs[pid]; proc.OnProcFail != nil {
				proc.OnProcFail(fp, fts)
			}
		}
	}
	h.checkFailDone()
}

// sortedProcIDs returns m's keys in ascending order (see ApplyFailure: map
// walks with observable side effects must be deterministic).
func sortedProcIDs[V any](m map[netsim.ProcID]V) []netsim.ProcID {
	ids := make([]netsim.ProcID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (h *Host) discardFrom(failed map[netsim.ProcID]sim.Time) {
	drop := func(p *pending) bool {
		if fts, dead := failed[p.src]; dead && p.ts > fts {
			h.Stats.BufferedMsgs--
			h.Stats.BufferedBytes -= int64(p.size)
			return true
		}
		return false
	}
	h.beQ.filter(drop)
	h.relQ.filter(drop)
	h.rlxQ.filter(drop)
	h.Stats.ReorderHotBytes = h.beQ.hotBytes + h.relQ.hotBytes + h.rlxQ.hotBytes
	// Partial reassembly state from failed processes is dropped wholesale:
	// no further fragments will arrive.
	for key, rc := range h.rconns {
		fts, dead := failed[key.src]
		if !dead {
			continue
		}
		for _, buf := range rc.bufs {
			buf.dropWhere(func(p *netsim.Packet) bool { return p.MsgTS > fts })
		}
	}
}

func (dh *deliveryHeap) reinit() {
	// Restore heap order after in-place filtering.
	h := *dh
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func siftDown(h deliveryHeap, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h.Less(l, small) {
			small = l
		}
		if r < len(h) && h.Less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.Swap(i, small)
		i = small
	}
}

// recallAffected aborts every launched-but-uncommitted reliable scattering
// that includes a failed destination: messages to correct receivers are
// recalled (all-or-nothing delivery, §5.2), messages to the failed
// destination are reported via the send-failure callback, and waiting
// best-effort traffic to failed destinations is failed eagerly.
func (h *Host) recallAffected(failed map[netsim.ProcID]sim.Time) {
	for _, s := range h.outstanding {
		if s.done || s.aborted {
			continue
		}
		hit := false
		for i := range s.msgs {
			if _, dead := failed[s.msgs[i].Dst]; dead {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		h.abortScattering(s)
	}
	// Credit-blocked scatterings with failed destinations cannot launch.
	remaining := h.waitQ[:0]
	for _, s := range h.waitQ {
		hit := false
		for i := range s.msgs {
			if _, dead := failed[s.msgs[i].Dst]; dead {
				hit = true
				break
			}
		}
		if !hit {
			remaining = append(remaining, s)
			continue
		}
		s.aborted = true
		h.releaseReservations(s)
		for i := range s.msgs {
			h.failMessage(s, i)
		}
	}
	h.waitQ = remaining
	// Un-ACKed packets addressed to failed processes will never be ACKed:
	// free their window slots so unrelated traffic keeps flowing. Both the
	// conn map and each unacked map are walked in sorted order: the
	// failMessage calls below surface OnSendFail to the application, so
	// their order is part of the deterministic replay contract (the recall
	// -ACK path at the bottom of this file sorts for the same reason).
	for _, key := range sortedConnKeys(h.conns) {
		if _, dead := failed[key.dst]; !dead {
			continue
		}
		c := h.conns[key]
		for k := 0; k < 2; k++ {
			for _, psn := range sortedPSNs(c.unacked[k]) {
				op := c.unacked[k][psn]
				c.dropInflight(k, psn)
				// A frame chain carries several scatterings in one slot; each
				// live best-effort member fails individually.
				for m := op; m != nil; m = m.fnext {
					if !m.scat.reliable && !m.scat.aborted {
						m.scat.aborted = true
						for i := range m.scat.msgs {
							if m.scat.ackedMsg[i] < m.scat.fragsPerMsg[i] {
								h.failMessage(m.scat, i)
							}
						}
					}
				}
			}
		}
		// Parked (MaxRetx-exhausted) packets toward the failed process are
		// equally unACKable; their scatterings were aborted above.
		c.stuckPkts = nil
	}
	h.grantCredits()
}

func sortedPSNs(m map[uint32]*outPkt) []uint32 {
	psns := make([]uint32, 0, len(m))
	for psn := range m {
		psns = append(psns, psn)
	}
	sort.Slice(psns, func(i, j int) bool { return psns[i] < psns[j] })
	return psns
}

// abortScattering recalls a reliable scattering: correct receivers are told
// to discard it, and once all recall ACKs arrive the scattering stops
// blocking the commit floor.
func (h *Host) abortScattering(s *scattering) {
	h.abortScatteringExcept(s, netsim.ProcID(-1))
}

// abortScatteringExcept is abortScattering with one destination exempted
// from the recall round-trip: the controller resolving an unreachable
// receiver has already recorded its tombstone durably, so sending it a
// recall could only stall for another MaxRetx round.
func (h *Host) abortScatteringExcept(s *scattering, noRecall netsim.ProcID) {
	s.aborted = true
	h.Stats.Recalled++
	for i := range s.msgs {
		dst := s.msgs[i].Dst
		h.failMessage(s, i)
		if dst == noRecall {
			continue
		}
		if _, dead := h.failedPeers[dst]; dead {
			continue
		}
		rk := recallKey{dst: dst, ts: s.ts}
		if _, exists := h.recalls[rk]; exists {
			continue
		}
		s.recallsPending++
		h.failWait++
		rs := &recallState{scat: s}
		rs.timer = newTimer(h.wire, func() { h.resendRecall(rk, rs) })
		h.recalls[rk] = rs
		h.sendRecall(s.owner.ID, rk)
		rs.timer.reset(h.Cfg.RTO)
	}
	// Drop un-ACKed packets of this scattering to stop retransmission.
	for i := range s.credits {
		s.credits[i].conn.dropScattering(s)
	}
	if s.recallsPending == 0 {
		s.done = true
		h.reapOutstanding()
	}
}

func (h *Host) sendRecall(src netsim.ProcID, rk recallKey) {
	pkt := netsim.GetPacket()
	pkt.Kind, pkt.Src, pkt.Dst = netsim.KindRecall, src, rk.dst
	pkt.MsgTS, pkt.Size = rk.ts, netsim.BeaconBytes
	h.emit(pkt)
}

func (h *Host) resendRecall(rk recallKey, rs *recallState) {
	if h.stopped {
		return
	}
	rs.tries++
	if h.Cfg.MaxRetx > 0 && rs.tries > h.Cfg.MaxRetx {
		// Final report, then clean up as if resolved: leaving the recall
		// registered would hold recallsPending nonzero forever, so the
		// aborting scattering never goes done, reapOutstanding stalls the
		// commit floor, and ApplyFailure's completion never fires. The
		// escalation (durable recall record or forwarding) is the
		// controller's job once OnStuck has been reported.
		h.reportStuck(rs.scat.owner.ID, rk.dst, rk.ts)
		h.finishRecall(rk, rs)
		return
	}
	h.sendRecall(rs.scat.owner.ID, rk)
	rs.timer.reset(h.Cfg.RTO)
}

// finishRecall resolves one outstanding recall — acknowledged, controller-
// resolved, or abandoned after MaxRetx — releasing the aborting scattering
// and the failure-completion wait.
func (h *Host) finishRecall(rk recallKey, rs *recallState) {
	rs.timer.stop()
	delete(h.recalls, rk)
	rs.scat.recallsPending--
	if rs.scat.recallsPending == 0 {
		rs.scat.done = true
		h.reapOutstanding()
	}
	h.failWait--
	h.checkFailDone()
}

// handleRecall executes the receiver side of Recall: discard the scattering
// member identified by (sender, timestamp) and acknowledge.
func (h *Host) handleRecall(pkt *netsim.Packet) {
	h.ApplyRecallTombstone(pkt.Src, pkt.MsgTS)
	ack := netsim.GetPacket()
	ack.Kind, ack.Src, ack.Dst = netsim.KindRecallAck, pkt.Dst, pkt.Src
	ack.MsgTS, ack.Size = pkt.MsgTS, netsim.BeaconBytes
	h.emit(ack)
}

// ApplyRecallTombstone discards the scattering member (sender, ts) without
// acknowledging — used directly by the controller during receiver recovery.
func (h *Host) ApplyRecallTombstone(sender netsim.ProcID, ts sim.Time) {
	rk := recallKey{dst: sender, ts: ts}
	if !h.recallTomb[rk] {
		h.recallTomb[rk] = true
		h.removeBuffered(sender, ts)
	}
}

func (h *Host) removeBuffered(src netsim.ProcID, ts sim.Time) {
	drop := func(p *pending) bool {
		if p.src == src && p.ts == ts {
			h.Stats.BufferedMsgs--
			h.Stats.BufferedBytes -= int64(p.size)
			return true
		}
		return false
	}
	h.relQ.filter(drop)
	// Untagged reliable members of a recalled scattering sit in rlxQ under
	// DeliverConflictAware; the recall covers them too (§5.2 atomicity).
	h.rlxQ.filter(drop)
	h.Stats.ReorderHotBytes = h.beQ.hotBytes + h.relQ.hotBytes + h.rlxQ.hotBytes
	// Buffered fragments of the recalled message are consumed unseen.
	for key, rc := range h.rconns {
		if key.src != src {
			continue
		}
		rc.bufs[1].dropWhere(func(p *netsim.Packet) bool { return p.MsgTS == ts })
	}
}

// PendingTo rebuilds the wire packets of every un-ACKed reliable message
// from src to dst — the payload of §5.2's Controller Forwarding when the
// network path between the pair has failed but both remain controller-
// reachable.
func (h *Host) PendingTo(src, dst netsim.ProcID) []*netsim.Packet {
	c := h.conns[connKey{src: src, dst: dst}]
	if c == nil {
		return nil
	}
	var out []*netsim.Packet
	for _, op := range c.unacked[1] {
		if pkt := c.buildUnit(op); pkt != nil {
			out = append(out, pkt)
		}
	}
	// Packets parked after MaxRetx exhaustion are exactly the ones the
	// controller is being asked to forward. buildUnit skips aborted chain
	// members and returns nil for fully aborted chains.
	for _, op := range c.stuckPkts {
		if pkt := c.buildUnit(op); pkt != nil {
			out = append(out, pkt)
		}
	}
	for _, op := range c.sendQ {
		if op.scat.reliable && !op.scat.aborted {
			out = append(out, c.buildPacket(op, op.psn))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PSN < out[j].PSN })
	return out
}

// ResolveRecall completes a recall whose receiver is unreachable: the
// controller has durably recorded the undeliverable recall (so a recovered
// receiver will discard consistently) and releases the sender (§5.2
// Controller Forwarding).
func (h *Host) ResolveRecall(dst netsim.ProcID, ts sim.Time) {
	rk := recallKey{dst: dst, ts: ts}
	rs, ok := h.recalls[rk]
	if !ok {
		return
	}
	h.finishRecall(rk, rs)
}

// ResolveUnreachable releases the sender of a scattering stuck toward an
// unreachable — typically drained — destination after the controller has
// durably recorded the recall tombstone. If the stall had already
// escalated to an active recall this is ResolveRecall; otherwise the
// still-outstanding scattering is aborted here: every other receiver is
// recalled normally, no recall is sent to dst itself, and the sender
// observes the ordinary send-failure callbacks. Without this, a data
// packet that exhausted MaxRetx toward a departed host would park its
// scattering on the commit floor forever.
func (h *Host) ResolveUnreachable(dst netsim.ProcID, ts sim.Time) {
	rk := recallKey{dst: dst, ts: ts}
	if rs, ok := h.recalls[rk]; ok {
		h.finishRecall(rk, rs)
		return
	}
	for _, s := range h.outstanding {
		if s.ts != ts || s.done || s.aborted {
			continue
		}
		hit := false
		for i := range s.msgs {
			if s.msgs[i].Dst == dst {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		h.abortScatteringExcept(s, dst)
		return
	}
}

func (h *Host) handleRecallAck(pkt *netsim.Packet) {
	rk := recallKey{dst: pkt.Src, ts: pkt.MsgTS}
	rs, ok := h.recalls[rk]
	if !ok {
		return
	}
	h.finishRecall(rk, rs)
}

func (h *Host) checkFailDone() {
	if h.failWait == 0 && h.failDone != nil {
		done := h.failDone
		h.failDone = nil
		done()
	}
}
