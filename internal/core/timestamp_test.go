package core

import (
	"testing"
	"testing/quick"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// stubWire drives a Host without any network: sends are recorded, time is
// advanced manually.
type stubWire struct {
	now    sim.Time
	sent   []*netsim.Packet
	timers []stubTimer
}

type stubTimer struct {
	at sim.Time
	fn func()
}

func (w *stubWire) Send(p *netsim.Packet) { w.sent = append(w.sent, p) }
func (w *stubWire) Now() sim.Time         { return w.now }
func (w *stubWire) After(d sim.Time, fn func()) {
	w.timers = append(w.timers, stubTimer{at: w.now + d, fn: fn})
}

// advance runs due timers in order.
func (w *stubWire) advance(to sim.Time) {
	for {
		best := -1
		for i, t := range w.timers {
			if t.at <= to && (best < 0 || t.at < w.timers[best].at) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		t := w.timers[best]
		w.timers = append(w.timers[:best], w.timers[best+1:]...)
		w.now = t.at
		t.fn()
	}
	w.now = to
}

func stubHost() (*Host, *stubWire) {
	w := &stubWire{}
	h := NewHost(0, w, DefaultConfig())
	h.AddProc(0)
	return h, w
}

// Property: timestamps assigned by nextTS are strictly increasing and
// strictly above every previously advertised commit floor, for any
// interleaving of clock advances and floor advertisements.
func TestTimestampAssignmentProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		h, w := stubHost()
		lastTS := sim.Time(-1)
		maxAdvertised := sim.Time(-1)
		for _, s := range steps {
			switch s % 3 {
			case 0:
				w.now += sim.Time(s) * 10
			case 1:
				adv := h.commitAdvertise()
				if adv < maxAdvertised {
					return false // advertised floor regressed
				}
				maxAdvertised = adv
			case 2:
				ts := h.nextTS()
				if ts <= lastTS {
					return false
				}
				if ts <= maxAdvertised {
					return false // assignment at or below a promise
				}
				lastTS = ts
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTsFloorCoversLastAssignment(t *testing.T) {
	h, w := stubHost()
	w.now = 100
	ts := h.nextTS()
	// Clock did not advance: the floor must still cover the assignment.
	if f := h.tsFloor(); f < ts {
		t.Fatalf("floor %v below last assigned %v", f, ts)
	}
	w.now = 200
	if f := h.tsFloor(); f != 200 {
		t.Fatalf("floor %v, want clock 200", f)
	}
}

func TestCommitFloorTracksOutstandingHead(t *testing.T) {
	h, w := stubHost()
	w.now = 1000
	if err := h.procs[0].SendReliable([]Message{{Dst: 1, Size: 16}}); err != nil {
		t.Fatal(err)
	}
	ts := h.outstanding[0].ts
	if f := h.commitFloor(); f != ts-1 {
		t.Fatalf("commit floor %v, want head ts-1 = %v", f, ts-1)
	}
	// Second scattering doesn't move the floor (head unchanged).
	w.now = 2000
	h.procs[0].SendReliable([]Message{{Dst: 1, Size: 16}})
	if f := h.commitFloor(); f != ts-1 {
		t.Fatalf("commit floor %v moved despite outstanding head", f)
	}
}

func TestEmitStampsMonotonicBarriers(t *testing.T) {
	h, w := stubHost()
	var lastBE, lastC sim.Time
	for i := 0; i < 100; i++ {
		w.now += sim.Time(i%7) * 100
		h.emit(&netsim.Packet{Kind: netsim.KindBeacon, Size: netsim.BeaconBytes})
		p := w.sent[len(w.sent)-1]
		if p.BarrierBE < lastBE || p.BarrierC < lastC {
			t.Fatalf("emitted barriers regressed at %d", i)
		}
		if p.BarrierC > p.BarrierBE {
			t.Fatalf("commit floor %v above BE floor %v", p.BarrierC, p.BarrierBE)
		}
		lastBE, lastC = p.BarrierBE, p.BarrierC
	}
}
