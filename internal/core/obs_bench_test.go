package core

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// benchSendPath drives the full send → deliver pipeline on a two-host
// simulated fabric, one reliable scattering per iteration. Comparing the
// traced and untraced variants bounds the hot-path cost of the
// observability hooks (the ISSUE's ≤2% budget for tracing disabled).
func benchSendPath(b *testing.B, traced bool) {
	cfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1}, 1)
	cl := Deploy(netsim.New(cfg), DefaultConfig())
	if traced {
		cl.EnableTracing()
	}
	cl.Procs[1].OnDeliver = func(Delivery) {}
	cl.Run(50 * sim.Microsecond) // settle beacons
	msg := []Message{{Dst: 1, Size: 256}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Procs[0].SendReliable(msg); err != nil {
			b.Fatal(err)
		}
		cl.Run(2 * sim.Microsecond)
	}
}

func BenchmarkSendPathTracingDisabled(b *testing.B) { benchSendPath(b, false) }
func BenchmarkSendPathTracingEnabled(b *testing.B)  { benchSendPath(b, true) }

// sink defeats dead-code elimination in BenchmarkObsBranch.
var sink bool

// BenchmarkObsBranch isolates the per-record-site cost when no tracer is
// installed: the single predictable branch of Trace.On.
func BenchmarkObsBranch(b *testing.B) {
	var tr *obs.Trace
	for i := 0; i < b.N; i++ {
		sink = tr.On()
	}
}
