package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"onepipe/internal/sim"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	if tr.On() {
		t.Fatal("nil trace reports On")
	}
	tr.Rec(SpanE2E, 5) // must not panic
	tr.SetArmed(true)
	tr.Reset()
	if snap := tr.Snapshot(); snap[SpanE2E].N() != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

func TestTraceRecordAndMerge(t *testing.T) {
	a, b := NewTrace(), NewTrace()
	a.Rec(SpanE2E, 1000)
	a.Rec(SpanE2E, 2000)
	b.Rec(SpanE2E, 3000)
	b.Rec(SpanAckWait, 500)
	m := Merge(a, nil, b)
	if n := m[SpanE2E].N(); n != 3 {
		t.Fatalf("merged e2e count %d, want 3", n)
	}
	if n := m[SpanAckWait].N(); n != 1 {
		t.Fatalf("merged ack-wait count %d, want 1", n)
	}
	sums := Summarize(m)
	if len(sums) != 2 {
		t.Fatalf("Summarize returned %d spans, want 2 non-empty", len(sums))
	}
}

func TestTraceDisarm(t *testing.T) {
	tr := NewTrace()
	tr.SetArmed(false)
	tr.Rec(SpanE2E, 1000)
	snap := tr.Snapshot()
	if snap[SpanE2E].N() != 0 {
		t.Fatal("disarmed trace recorded")
	}
	tr.SetArmed(true)
	tr.Rec(SpanE2E, 1000)
	snap = tr.Snapshot()
	if snap[SpanE2E].N() != 1 {
		t.Fatal("re-armed trace did not record")
	}
}

func TestServeDebugOnepipeEndpoint(t *testing.T) {
	tr := NewTrace()
	tr.Rec(SpanE2E, 1500)
	srv, err := ServeDebug("127.0.0.1:0", func() map[string]*Trace {
		return map[string]*Trace{"host0": tr}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/onepipe")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out map[string][]SpanSummary
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if len(out["host0"]) != 1 || out["host0"][0].Span != "e2e" {
		t.Fatalf("unexpected breakdown: %s", body)
	}
	// The standard debug pages must be mounted too.
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		r, err := http.Get("http://" + srv.Addr + path)
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v (status %v)", path, err, r)
		}
		r.Body.Close()
	}
}

// BenchmarkRecNil measures the disabled-tracing cost: one nil check.
func BenchmarkRecNil(b *testing.B) {
	var tr *Trace
	for i := 0; i < b.N; i++ {
		tr.Rec(SpanE2E, sim.Time(i))
	}
}

func BenchmarkRecArmed(b *testing.B) {
	tr := NewTrace()
	for i := 0; i < b.N; i++ {
		tr.Rec(SpanE2E, sim.Time(i))
	}
}
