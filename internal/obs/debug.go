package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP debug server on addr for the real-network
// substrates (udpnet, livenet): /debug/vars serves the process expvars,
// /debug/pprof the usual profiles, and /debug/onepipe the per-stage
// latency breakdown of the supplied tracers as JSON. traces is re-invoked
// on every request, so the view is live.
//
// The returned server is already serving; the caller owns Close. addr may
// use port 0 to let the kernel pick (the bound address is in
// Server.Addr after return).
func ServeDebug(addr string, traces func() map[string]*Trace) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/onepipe", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string][]SpanSummary)
		if traces != nil {
			for name, t := range traces() {
				out[name] = Summarize(t.Snapshot())
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}
