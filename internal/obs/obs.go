// Package obs is the message-lifecycle observability layer: it decomposes
// the paper's end-to-end delivery latency (§7.2, Figs. 9/10) into the
// stages a message actually passes through —
//
//	submit → credit-acquired/launched → emitted → per-hop switch forward
//	       → received/reassembled → barrier-released → delivered
//
// — as cheap timestamped span records aggregated into bounded-memory
// streaming histograms (stats.Histogram), so million-message runs never
// hold individual samples.
//
// Tracing is nil-safe and compiled-out-cheap: every hook is a method on
// *Trace that returns immediately on a nil receiver, so an uninstrumented
// host pays exactly one predictable branch per potential record site
// (verified by BenchmarkSendPathTracing in internal/core). An installed
// Trace can additionally be paused at runtime through an atomic flag
// without tearing the pointer out from under concurrent substrates.
package obs

import (
	"sync"
	"sync/atomic"

	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// Span identifies one measured segment of the message lifecycle (or, for
// the Switch* gauges, a periodically sampled in-network quantity).
type Span uint8

const (
	// SpanCreditWait is submit → launch: time a scattering spends blocked
	// in the send buffer waiting for window credits (§6.1).
	SpanCreditWait Span = iota
	// SpanXmitWait is launch → packet emission: time a fragment waits in
	// the send queue for window space (streaming of oversized scatterings).
	SpanXmitWait
	// SpanAckWait is launch → final end-to-end ACK of the scattering,
	// measured at the sender. For reliable traffic this is the Prepare
	// phase of the 2PC and lower-bounds the commit wait (§5.1).
	SpanAckWait
	// SpanNetTransit is launch (the message timestamp) → message fully
	// reassembled at the receiver: propagation + queueing + reassembly,
	// measured against the receiver clock (skew-bounded).
	SpanNetTransit
	// SpanSwitchQueue is the egress queueing delay accumulated across every
	// switch hop of the packet's path (netsim substrate only).
	SpanSwitchQueue
	// SpanBarrierWait is reassembled → barrier release: time a complete
	// message waits in the reorder buffer for the delivery barrier — the
	// component the paper's Fig. 9 decomposition attributes to beacon
	// interval and clock skew.
	SpanBarrierWait
	// SpanE2E is launch → delivery at the receiver.
	SpanE2E
	// SpanSwitchLagBE and SpanSwitchLagC sample how far a switch's
	// aggregated best-effort / commit barrier output trails the true
	// clock (per-switch barrier-lag gauge).
	SpanSwitchLagBE
	SpanSwitchLagC
	// SpanSwitchQDepth samples per-link egress backlog (ns of serialization
	// already committed ahead of a new arrival).
	SpanSwitchQDepth

	// NumSpans bounds the span enum.
	NumSpans
)

var spanNames = [NumSpans]string{
	"credit-wait",
	"xmit-wait",
	"ack-wait",
	"net-transit",
	"switch-queueing",
	"barrier-wait",
	"e2e",
	"switch-lag-be",
	"switch-lag-c",
	"switch-qdepth",
}

func (s Span) String() string {
	if int(s) < len(spanNames) {
		return spanNames[s]
	}
	return "?"
}

// Trace aggregates per-span latency histograms for one host (or one
// network). All durations are recorded in nanoseconds.
//
// A nil *Trace is valid and records nothing.
type Trace struct {
	armed atomic.Bool
	mu    sync.Mutex
	hists [NumSpans]stats.Histogram
}

// NewTrace returns an armed tracer.
func NewTrace() *Trace {
	t := &Trace{}
	t.armed.Store(true)
	return t
}

// On reports whether recording is active; hot paths use it to skip clock
// reads. Nil-safe.
func (t *Trace) On() bool { return t != nil && t.armed.Load() }

// SetArmed pauses or resumes recording without detaching the tracer.
func (t *Trace) SetArmed(on bool) {
	if t != nil {
		t.armed.Store(on)
	}
}

// Rec records one span duration. Nil-safe; negative durations (cross-host
// clock skew) clamp to zero inside the histogram.
func (t *Trace) Rec(s Span, d sim.Time) {
	if t == nil || !t.armed.Load() {
		return
	}
	t.mu.Lock()
	t.hists[s].Add(float64(d))
	t.mu.Unlock()
}

// Snapshot copies the current histograms.
func (t *Trace) Snapshot() [NumSpans]stats.Histogram {
	if t == nil {
		return [NumSpans]stats.Histogram{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hists
}

// Reset clears all histograms (e.g. after warmup).
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.hists {
		t.hists[i].Reset()
	}
	t.mu.Unlock()
}

// Merge aggregates any number of tracers into one histogram set, skipping
// nils — the cluster-wide view the breakdown table prints.
func Merge(traces ...*Trace) [NumSpans]stats.Histogram {
	var out [NumSpans]stats.Histogram
	for _, t := range traces {
		if t == nil {
			continue
		}
		snap := t.Snapshot()
		for i := range snap {
			out[i].Merge(&snap[i])
		}
	}
	return out
}

// SpanSummary is the exported per-span digest (microseconds), the unit the
// paper's figures use.
type SpanSummary struct {
	Span  string  `json:"span"`
	Count uint64  `json:"count"`
	MeanU float64 `json:"mean_us"`
	P50U  float64 `json:"p50_us"`
	P95U  float64 `json:"p95_us"`
	P99U  float64 `json:"p99_us"`
	MaxU  float64 `json:"max_us"`
}

// Summarize digests a histogram set into per-span microsecond summaries,
// omitting empty spans.
func Summarize(hists [NumSpans]stats.Histogram) []SpanSummary {
	const us = float64(sim.Microsecond)
	var out []SpanSummary
	for i := range hists {
		h := &hists[i]
		if h.N() == 0 {
			continue
		}
		out = append(out, SpanSummary{
			Span:  Span(i).String(),
			Count: h.N(),
			MeanU: h.Mean() / us,
			P50U:  h.Percentile(50) / us,
			P95U:  h.Percentile(95) / us,
			P99U:  h.Percentile(99) / us,
			MaxU:  h.Max() / us,
		})
	}
	return out
}
