package hashtable

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func deploy(t *testing.T, d Design, mix OpMix, replicas int) *Table {
	t.Helper()
	// 32 procs: 16 clients + 16 servers. The latency-sensitive data
	// structure runs with a 1 us beacon interval (the paper's Fig. 13
	// shows the overhead stays negligible), which keeps the barrier wait
	// close to the path delay.
	ncfg := netsim.DefaultConfig(topology.Testbed(), 1)
	ncfg.BeaconInterval = 1 * sim.Microsecond
	cl := core.Deploy(netsim.New(ncfg), core.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Replicas = replicas
	return New(cl, d, mix, cfg)
}

func run(tb *Table) *Stats {
	return tb.Run(200*sim.Microsecond, 1*sim.Millisecond)
}

func TestAllVariantsMakeProgress(t *testing.T) {
	for _, d := range []Design{DesignOnePipe, DesignBase} {
		for _, mix := range []OpMix{MixInsert, MixLookup} {
			s := run(deploy(t, d, mix, 1))
			if s.Ops == 0 {
				t.Fatalf("%s/%d made no progress", d, mix)
			}
		}
	}
}

func TestOnePipeInsertBeatsFencedBaseline(t *testing.T) {
	// Fig. 16: removing the write-write fence improves insert throughput
	// (paper: 1.9x unreplicated).
	sp := run(deploy(t, DesignOnePipe, MixInsert, 1))
	sb := run(deploy(t, DesignBase, MixInsert, 1))
	ratio := float64(sp.Ops) / float64(sb.Ops)
	if ratio < 1.2 {
		t.Fatalf("1Pipe/base insert ratio %.2f, want fence removal to win", ratio)
	}
}

func TestReplicatedLookupScalesOnlyWithOnePipe(t *testing.T) {
	// Fig. 16: with 1Pipe all replicas serve lookups; leader-follower
	// lookups stay leader-bound.
	p1 := run(deploy(t, DesignOnePipe, MixLookup, 1))
	p3 := run(deploy(t, DesignOnePipe, MixLookup, 3))
	b1 := run(deploy(t, DesignBase, MixLookup, 1))
	b3 := run(deploy(t, DesignBase, MixLookup, 3))
	if float64(p3.Ops) < 0.9*float64(p1.Ops) {
		t.Fatalf("1Pipe lookup dropped with replicas: %d -> %d", p1.Ops, p3.Ops)
	}
	if float64(b3.Ops) > 1.3*float64(b1.Ops) {
		t.Fatalf("leader-follower lookups scaled with replicas (%d -> %d)?", b1.Ops, b3.Ops)
	}
}

func TestReplicatedInsertGapWidens(t *testing.T) {
	// Paper: with 3 replicas, 1Pipe insert throughput is 3.4x baseline
	// (leader CPU replication becomes the bottleneck).
	p3 := run(deploy(t, DesignOnePipe, MixInsert, 3))
	b3 := run(deploy(t, DesignBase, MixInsert, 3))
	p1 := run(deploy(t, DesignOnePipe, MixInsert, 1))
	b1 := run(deploy(t, DesignBase, MixInsert, 1))
	gap1 := float64(p1.Ops) / float64(b1.Ops)
	gap3 := float64(p3.Ops) / float64(b3.Ops)
	if gap3 <= gap1 {
		t.Fatalf("replication should widen the 1Pipe advantage: %.2fx -> %.2fx", gap1, gap3)
	}
}

func TestLookupLatencyOnePipeSlightlyHigher(t *testing.T) {
	// The ordering delay makes 1Pipe lookups a bit slower than raw
	// one-sided reads (paper: ~10% throughput cost).
	sp := run(deploy(t, DesignOnePipe, MixLookup, 1))
	sb := run(deploy(t, DesignBase, MixLookup, 1))
	if sp.Latency.Mean() <= sb.Latency.Mean() {
		t.Fatalf("1Pipe lookup latency %.2fus should exceed baseline %.2fus (reorder wait)",
			sp.Latency.Mean(), sb.Latency.Mean())
	}
}
