// Package hashtable implements the §7.3.3 remote data structure: a
// distributed hash table whose buckets hold linked lists of KV pairs,
// accessed by clients with one-sided read/write/CAS operations.
//
// An insert writes the KV pair and then updates the bucket head pointer —
// a write-after-write hazard. The baseline client must fence between the
// two (wait a full RTT); the 1Pipe client puts both writes in one
// scattering, because total order makes the fence unnecessary (§2.2.1).
// With replication, 1Pipe scatters writes to all replicas and lets every
// replica serve lookups, while the leader-follower baseline funnels both
// writes and (for serializability) lookups through the leader.
package hashtable

import (
	"math/rand"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/workload"
)

// Design selects the access protocol.
type Design uint8

const (
	// DesignOnePipe orders all operations with 1Pipe timestamps.
	DesignOnePipe Design = iota
	// DesignBase uses fenced one-sided ops with leader-follower
	// replication.
	DesignBase
)

func (d Design) String() string {
	if d == DesignOnePipe {
		return "1Pipe"
	}
	return "base"
}

// OpMix selects the measured workload.
type OpMix uint8

const (
	// MixInsert measures inserts only; MixLookup lookups only.
	MixInsert OpMix = iota
	MixLookup
)

// Config parameterizes a run.
type Config struct {
	// Clients and Shards partition the process space: processes
	// [0,Clients) are clients; servers follow.
	Clients, Shards int
	// Replicas per shard.
	Replicas int
	// Buckets per shard.
	Buckets uint64
	// Outstanding is the closed-loop depth per client.
	Outstanding int
	// NICOpCost models the server-side cost of serving a one-sided
	// operation (NIC processing, no CPU involvement).
	NICOpCost sim.Time
	// LeaderCPUCost models the leader's software replication cost per op.
	LeaderCPUCost sim.Time
	Seed          int64
}

// DefaultConfig mirrors the paper: 16 shards, 16 clients.
func DefaultConfig() Config {
	return Config{
		Clients: 16, Shards: 16, Replicas: 1,
		Buckets: 1 << 16,
		// Moderate pipelining keeps lookups latency-bound (the fence
		// removal is a latency win for inserts) while the serving cost
		// makes replicated-write amplification visible. See EXPERIMENTS.md
		// for how these regimes map onto Fig. 16's claims.
		Outstanding:   8,
		NICOpCost:     300 * sim.Nanosecond,
		LeaderCPUCost: 2 * sim.Microsecond,
		Seed:          1,
	}
}

// Stats is one run's measurement.
type Stats struct {
	Ops     uint64
	Latency stats.Sample
	Window  sim.Time
}

// OpsPerClientPerSec returns per-client throughput.
func (s *Stats) OpsPerClientPerSec(clients int) float64 {
	if s.Window == 0 {
		return 0
	}
	return float64(s.Ops) / s.Window.Seconds() / float64(clients)
}

// Table is a deployed hash table benchmark.
type Table struct {
	Design Design
	Mix    OpMix
	Cfg    Config
	Stats  Stats
	cl     *core.Cluster
	nodes  []*node
	// replicaProcs[s] lists shard s's replica processes, leader first.
	replicaProcs [][]netsim.ProcID
	measuring    bool
}

type node struct {
	tb      *Table
	proc    *core.Proc
	rng     *rand.Rand
	keys    *workload.Uniform
	nicBusy sim.Time
	cpuBusy sim.Time
	// Bucket state: head pointer version per bucket, on servers.
	heads map[uint64]uint64
	rr    int // round-robin replica selector for lookups
}

// op is one client operation's state.
type op struct {
	client  *node
	insert  bool
	shard   int
	bucket  uint64
	started sim.Time
	stage   int
	pending int
}

// Message payloads.
type writeKV struct {
	o      *op
	bucket uint64
}
type casPtr struct {
	o      *op
	bucket uint64
}
type readReq struct {
	o      *op
	bucket uint64
}
type reply struct {
	o *op
}
type replicate struct {
	bucket uint64
}

// New deploys the benchmark. The cluster must have at least
// Clients + Shards*Replicas processes.
func New(cl *core.Cluster, design Design, mix OpMix, cfg Config) *Table {
	tb := &Table{Design: design, Mix: mix, Cfg: cfg, cl: cl}
	np := len(cl.Procs)
	for s := 0; s < cfg.Shards; s++ {
		set := make([]netsim.ProcID, 0, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			set = append(set, netsim.ProcID(cfg.Clients+(s+r*cfg.Shards)%(np-cfg.Clients)))
		}
		tb.replicaProcs = append(tb.replicaProcs, set)
	}
	for i, p := range cl.Procs {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*31337))
		n := &node{
			tb: tb, proc: p, rng: rng,
			keys:  workload.NewUniform(rng, cfg.Buckets*uint64(cfg.Shards)),
			heads: make(map[uint64]uint64),
		}
		tb.nodes = append(tb.nodes, n)
		p.OnDeliver = n.onDeliver
		p.OnRaw = n.onRaw
	}
	return tb
}

// Run drives the closed loop and returns window stats.
func (tb *Table) Run(warmup, window sim.Time) *Stats {
	eng := tb.cl.Net.Eng
	for c := 0; c < tb.Cfg.Clients; c++ {
		for i := 0; i < tb.Cfg.Outstanding; i++ {
			tb.nodes[c].startOp()
		}
	}
	eng.RunFor(warmup)
	tb.measuring = true
	tb.Stats.Window = window
	eng.RunFor(window)
	tb.measuring = false
	return &tb.Stats
}

func (n *node) startOp() {
	key := n.keys.Next()
	o := &op{
		client:  n,
		insert:  n.tb.Mix == MixInsert,
		shard:   int(key % uint64(n.tb.Cfg.Shards)),
		bucket:  key,
		started: n.tb.cl.Net.Eng.Now(),
	}
	n.issue(o)
}

func (n *node) issue(o *op) {
	if n.tb.Design == DesignOnePipe {
		if o.insert {
			n.insertOnePipe(o)
		} else {
			n.lookupOnePipe(o)
		}
	} else {
		if o.insert {
			n.insertBase(o)
		} else {
			n.lookupBase(o)
		}
	}
}

func (n *node) finish(o *op) {
	tb := n.tb
	if tb.measuring {
		tb.Stats.Ops++
		tb.Stats.Latency.Add(float64(tb.cl.Net.Eng.Now()-o.started) / 1000)
	}
	n.startOp()
}

// serveNIC models a one-sided operation (no server CPU).
func (n *node) serveNIC(fn func()) {
	eng := n.tb.cl.Net.Eng
	start := eng.Now()
	if n.nicBusy > start {
		start = n.nicBusy
	}
	n.nicBusy = start + n.tb.Cfg.NICOpCost
	eng.At(n.nicBusy, fn)
}

// serveCPU models leader software processing.
func (n *node) serveCPU(cost sim.Time, fn func()) {
	eng := n.tb.cl.Net.Eng
	start := eng.Now()
	if n.cpuBusy > start {
		start = n.cpuBusy
	}
	n.cpuBusy = start + cost
	eng.At(n.cpuBusy, fn)
}

// ----- 1Pipe design -----

// insertOnePipe sends the KV write and the pointer update in ONE
// best-effort scattering to every replica: total order removes the fence,
// and all replicas apply the same sequence.
func (n *node) insertOnePipe(o *op) {
	reps := n.tb.replicaProcs[o.shard]
	msgs := make([]core.Message, 0, 2*len(reps))
	for _, r := range reps {
		msgs = append(msgs,
			core.Message{Dst: r, Data: writeKV{o: o, bucket: o.bucket}, Size: 64},
			core.Message{Dst: r, Data: casPtr{o: o, bucket: o.bucket}, Size: 32},
		)
	}
	o.pending = 2 * len(reps)
	if n.proc.Send(msgs) != nil {
		n.tb.cl.Net.Eng.After(5*sim.Microsecond, func() { n.issue(o) })
	}
}

// lookupOnePipe reads the bucket pointer then the KV pair, each a
// 1Pipe-ordered read served by ANY replica (all replicas hold the same
// ordered state).
func (n *node) lookupOnePipe(o *op) {
	reps := n.tb.replicaProcs[o.shard]
	n.rr++
	target := reps[n.rr%len(reps)]
	o.pending = 1
	if n.proc.Send([]core.Message{{Dst: target, Data: readReq{o: o, bucket: o.bucket}, Size: 32}}) != nil {
		n.tb.cl.Net.Eng.After(5*sim.Microsecond, func() { n.issue(o) })
	}
}

// onDeliver serves 1Pipe-ordered operations at replicas.
func (n *node) onDeliver(d core.Delivery) {
	switch m := d.Data.(type) {
	case writeKV:
		n.serveNIC(func() {
			n.heads[m.bucket] = n.heads[m.bucket] // slot write (modeled)
			n.proc.SendRaw(d.Src, reply{o: m.o}, 8)
		})
	case casPtr:
		n.serveNIC(func() {
			n.heads[m.bucket]++
			n.proc.SendRaw(d.Src, reply{o: m.o}, 8)
		})
	case readReq:
		n.serveNIC(func() {
			_ = n.heads[m.bucket]
			n.proc.SendRaw(d.Src, reply{o: m.o}, 8)
		})
	}
}

// ----- baseline design -----

// insertBase fences: write the KV pair to the leader, wait for the
// completion, then update the pointer; the leader replicates in software.
func (n *node) insertBase(o *op) {
	o.stage = 1
	leader := n.tb.replicaProcs[o.shard][0]
	n.proc.SendRaw(leader, writeKV{o: o, bucket: o.bucket}, 64)
}

// lookupBase reads pointer then KV at the leader only (followers cannot
// serve serializable reads under leader-follower replication).
func (n *node) lookupBase(o *op) {
	o.stage = 1
	leader := n.tb.replicaProcs[o.shard][0]
	n.proc.SendRaw(leader, readReq{o: o, bucket: o.bucket}, 32)
}

// onRaw handles baseline server ops and all client-side replies.
func (n *node) onRaw(src netsim.ProcID, data any) {
	switch m := data.(type) {
	case writeKV:
		n.baseServeWrite(src, m.o, m.bucket)
	case casPtr:
		n.baseServeWrite(src, m.o, m.bucket)
	case readReq:
		n.serveNIC(func() {
			_ = n.heads[m.bucket]
			n.proc.SendRaw(src, reply{o: m.o}, 8)
		})
	case replicate:
		n.serveNIC(func() { n.heads[m.bucket]++ })
	case reply:
		n.clientReply(m.o)
	}
}

// baseServeWrite applies a write at the leader and replicates to
// followers in software before acknowledging.
func (n *node) baseServeWrite(src netsim.ProcID, o *op, bucket uint64) {
	reps := n.tb.replicaProcs[o.shard]
	cost := n.tb.Cfg.NICOpCost
	if len(reps) > 1 {
		// Leader CPU copies the update to each follower.
		cost = n.tb.Cfg.LeaderCPUCost * sim.Time(len(reps)-1)
	}
	n.serveCPU(cost, func() {
		n.heads[bucket]++
		for _, f := range reps[1:] {
			n.proc.SendRaw(f, replicate{bucket: bucket}, 64)
		}
		n.proc.SendRaw(src, reply{o: o}, 8)
	})
}

// clientReply advances a client operation.
func (n *node) clientReply(o *op) {
	if o.client != n {
		return
	}
	switch n.tb.Design {
	case DesignOnePipe:
		o.pending--
		if o.pending > 0 {
			return
		}
		if !o.insert && o.stage == 0 {
			// Second dependent read: the KV pair itself.
			o.stage = 1
			reps := n.tb.replicaProcs[o.shard]
			n.rr++
			target := reps[n.rr%len(reps)]
			o.pending = 1
			n.proc.Send([]core.Message{{Dst: target, Data: readReq{o: o, bucket: o.bucket}, Size: 32}})
			return
		}
		n.finish(o)
	case DesignBase:
		if o.insert {
			if o.stage == 1 {
				// Fence passed: now the pointer update.
				o.stage = 2
				leader := n.tb.replicaProcs[o.shard][0]
				n.proc.SendRaw(leader, casPtr{o: o, bucket: o.bucket}, 32)
				return
			}
			n.finish(o)
		} else {
			if o.stage == 1 {
				o.stage = 2
				leader := n.tb.replicaProcs[o.shard][0]
				n.proc.SendRaw(leader, readReq{o: o, bucket: o.bucket}, 32)
				return
			}
			n.finish(o)
		}
	}
}
