// Package netsim simulates the 1Pipe data center network: FIFO links with
// bandwidth, propagation delay, ECN marking and corruption loss; switches
// with per-input-link barrier registers executing the hierarchical
// aggregation of equation 4.1; beacon generation on idle links; and
// decentralized dead-link detection.
//
// The package deliberately separates the two planes of the paper: the data
// plane forwards packets unmodified along ECMP up-down paths, while the
// "control plane" is just the two barrier fields (best-effort and commit)
// that switches rewrite in flight.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"onepipe/internal/sim"
)

// ProcID identifies a process. Processes are numbered 0..NumProcs-1 and
// mapped onto hosts round-robin blocks of Config.ProcsPerHost.
type ProcID int32

// Kind is the packet opcode.
type Kind uint8

const (
	// KindData carries (a fragment of) an application message.
	KindData Kind = iota
	// KindAck is the end-to-end acknowledgment of a data packet.
	KindAck
	// KindNak reports an unrecoverable ordering drop or a PSN gap to the
	// sender.
	KindNak
	// KindBeacon is a hop-by-hop barrier carrier generated on idle links
	// (§4.2); it has no payload and is consumed by the next hop.
	KindBeacon
	// KindCommit is a reliable-1Pipe commit message: it carries the
	// sender's commit barrier to its neighbor switch and is consumed
	// there (§5.1).
	KindCommit
	// KindRecall asks a receiver to discard buffered messages of an
	// aborted scattering (§5.2).
	KindRecall
	// KindRecallAck acknowledges a recall.
	KindRecallAck
	// KindCtrl is controller <-> host coordination traffic.
	KindCtrl
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindNak:
		return "nak"
	case KindBeacon:
		return "beacon"
	case KindCommit:
		return "commit"
	case KindRecall:
		return "recall"
	case KindRecallAck:
		return "recallack"
	case KindCtrl:
		return "ctrl"
	}
	return "?"
}

// HeaderBytes is the 1Pipe header overhead per packet: three 48-bit
// timestamps (message, best-effort barrier, commit barrier), a PSN, an
// opcode and an end-of-message flag (§6.1).
const HeaderBytes = 24

// BeaconBytes is the wire size of a beacon packet: 1Pipe header plus
// minimal UDP/IP/Ethernet framing.
const BeaconBytes = HeaderBytes + 42

// Packet is the unit the network forwards. The simulator passes a single
// *Packet instance along the path, rewriting its barrier fields the way a
// programmable switch rewrites header fields.
type Packet struct {
	Kind     Kind
	Src, Dst ProcID

	// MsgTS is the message timestamp assigned by the sender host clock;
	// all packets of one scattering share it. Immutable in flight.
	MsgTS sim.Time
	// BarrierBE is the best-effort barrier: a lower bound on the message
	// timestamp of any future packet arriving on the same link. Rewritten
	// by every chip-mode switch.
	BarrierBE sim.Time
	// BarrierC is the commit barrier of reliable 1Pipe, aggregated from
	// KindCommit messages only.
	BarrierC sim.Time

	// Reliable marks reliable-1Pipe traffic (delivered by commit barrier
	// after 2PC) as opposed to best-effort traffic (delivered by the BE
	// barrier, never retransmitted).
	Reliable bool
	// ConflictKey is the sender-declared conflict class of the message
	// (DeliverConflictAware). 0 means declared non-conflicting: the
	// receiver may deliver the message as soon as it is locally stable,
	// outside the cross-class total order. Nonzero keys keep the full
	// barrier wait. Ignored by the other delivery modes.
	ConflictKey uint32
	// PSN is the per-(src,dst,class) packet sequence number used for loss
	// detection and defragmentation.
	PSN uint32
	// FragIdx is the fragment's index within its message, so reassembly
	// can locate the message's first PSN (PSN - FragIdx) without relying
	// on global PSN contiguity — a lost best-effort packet must not block
	// later messages.
	FragIdx uint16
	// EndOfMsg marks the final fragment of a message.
	EndOfMsg bool
	// Size is the wire size in bytes, including HeaderBytes.
	Size int
	// ECN is set by a switch when the egress queue exceeds the marking
	// threshold; DCTCP congestion control reads it from the UD header.
	ECN bool

	// Payload carries the application message by reference; the simulator
	// never inspects it. For Frame packets it holds a *Frame.
	Payload any

	// Frame marks a multi-message data frame: Payload is a *Frame whose
	// entries each carry their own message timestamp (§6.1 send batching).
	// MsgTS then holds the first (smallest) entry timestamp so barrier
	// promises keep referring to the oldest message in the packet, and PSN
	// holds the first of Frame.Span consecutive sequence numbers.
	Frame bool

	// SentAt is the true (simulation) time the packet left the sender,
	// for latency accounting.
	SentAt sim.Time
	// QueueWait accumulates the time this packet spent queued behind other
	// traffic on every link along its path. Simulator-side accounting only;
	// it is not part of the wire format and never crosses a real NIC.
	QueueWait sim.Time

	// pooled guards against double-release; see PutPacket. It is flipped
	// with atomic compare-and-swap so the guard stays sound when shards
	// release packets concurrently (a plain uint32 rather than
	// atomic.Uint32 so the PutPacket struct reset stays a plain copy).
	pooled uint32
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s %d->%d ts=%v be=%v c=%v psn=%d", p.Kind, p.Src, p.Dst, p.MsgTS, p.BarrierBE, p.BarrierC, p.PSN)
}

// FrameEntryBytes is the per-entry overhead inside a frame payload used for
// simulator byte accounting: a 48-bit message timestamp, a 16-bit PSN
// offset and a 32-bit payload length. The real wire codec
// (internal/wire) additionally carries each entry's 32-bit conflict key;
// that delta is wire-local and deliberately kept out of this constant so
// the simulator's batching decisions (and hence the chaos goldens) are
// independent of the conflict extension.
const FrameEntryBytes = 12

// FrameEntry is one message inside a multi-message frame. Entries are
// ordered by ascending TS (the sender's emission order).
type FrameEntry struct {
	// TS is the entry's message timestamp; unlike single-message packets,
	// each frame member keeps its own.
	TS sim.Time
	// PSNOff is the entry's sequence-number offset from the packet's PSN:
	// the member's own PSN is pkt.PSN + PSNOff. Offsets are strictly
	// ascending and below Span; gaps mark members aborted between
	// transmissions.
	PSNOff uint16
	// Size is the application payload size in bytes (excluding the
	// FrameEntryBytes framing overhead).
	Size int
	// ConflictKey is the member's conflict class (see Packet.ConflictKey);
	// every member of one scattering shares its scattering's key.
	ConflictKey uint32
	// Data carries the application message by reference. Over a real wire
	// it must be a []byte.
	Data any
}

// Frame is the payload of a multi-message data packet: several same-
// destination, same-class messages coalesced by the sender's doorbell queue
// into one wire frame.
type Frame struct {
	// Entries holds the member messages in ascending-TS order. Aborted
	// members are omitted but still counted in Span.
	Entries []FrameEntry
	// Span is the number of consecutive PSNs the frame covers, starting at
	// the packet's PSN. It can exceed len(Entries) when members were
	// aborted between transmissions; the receiver marks the whole span
	// received either way.
	Span uint16

	pooled bool
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns an empty Frame from the free list. Ownership follows the
// packet that carries it: PutPacket releases an attached frame.
func GetFrame() *Frame {
	f := framePool.Get().(*Frame)
	f.pooled = false
	return f
}

// PutFrame resets f (keeping entry capacity) and returns it to the free
// list. Double release panics, mirroring PutPacket.
func PutFrame(f *Frame) {
	if f.pooled {
		panic("netsim: PutFrame called twice on the same frame")
	}
	for i := range f.Entries {
		f.Entries[i].Data = nil
	}
	f.Entries = f.Entries[:0]
	f.Span = 0
	f.pooled = true
	framePool.Put(f)
}

// pktPool recycles Packet structs across the send and receive hot paths.
// See docs/performance.md for the ownership rules.
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// GetPacket returns a zeroed Packet from the free list.
//
// Ownership: a packet handed to a Wire.Send / Network.SendFromHost takes
// the network as owner; the terminal consumer — the switch for beacons and
// commits, the drop site for lost packets, core's receive path for
// host-delivered packets — releases it with PutPacket. Code that constructs
// packets with plain literals keeps working: such packets simply join the
// pool on their first release.
//
// Cross-shard handoff (parallel sharded simulation): exactly one shard
// owns a packet at any instant. The owning shard is the one executing the
// packet's current event — transmit runs on the egress shard, which
// schedules the arrival through the window-barrier outbox; from that point
// the ingress shard owns the packet and the sender shard must not touch it
// again. The barrier's happens-before edge publishes the packet's fields;
// sync.Pool is itself concurrency-safe, and the atomic double-free guard
// below keeps the twice-released diagnostic sound even if two shards race
// on a buggy release.
func GetPacket() *Packet {
	p := pktPool.Get().(*Packet)
	atomic.StoreUint32(&p.pooled, 0)
	return p
}

// PutPacket resets p and returns it to the free list. Releasing the same
// packet twice is an ownership bug that would silently alias two in-flight
// packets; it panics instead — the pooled flag is claimed with a CAS so
// concurrent double release from two shards panics on one of them rather
// than corrupting the pool.
func PutPacket(p *Packet) {
	if !atomic.CompareAndSwapUint32(&p.pooled, 0, 1) {
		panic("netsim: PutPacket called twice on the same packet")
	}
	if f, ok := p.Payload.(*Frame); ok {
		PutFrame(f)
	}
	*p = Packet{pooled: 1}
	pktPool.Put(p)
}

// Mode selects the in-network processing incarnation (§6.2).
type Mode uint8

const (
	// ModeChip models a programmable switching chip: barriers are
	// aggregated and rewritten on every forwarded packet with no extra
	// delay.
	ModeChip Mode = iota
	// ModeSwitchCPU models aggregation on the switch CPU: data packets
	// are forwarded unmodified; barriers propagate only in periodic
	// beacons that cost CPU processing delay at every hop.
	ModeSwitchCPU
	// ModeHostDelegate models delegating switch processing to a
	// representative end host: like ModeSwitchCPU but each hop adds the
	// switch-to-host RTT plus host processing delay.
	ModeHostDelegate
)

func (m Mode) String() string {
	switch m {
	case ModeChip:
		return "chip"
	case ModeSwitchCPU:
		return "switchcpu"
	case ModeHostDelegate:
		return "hostdelegate"
	}
	return "?"
}
