package netsim

import (
	"testing"

	"onepipe/internal/sim"
)

func runInv(t *testing.T, loss float64, jitter sim.Time, flowECMP bool, skew bool) int {
	cfg := smallCfg()
	cfg.LossRate = loss
	cfg.Jitter = jitter
	cfg.FlowECMP = flowECMP
	if skew {
		cfg.Clock = DefaultConfig(cfg.Topo, 1).Clock
	}
	n := testNet(t, cfg)
	nh := len(n.G.Hosts)
	maxBarrier := make([]sim.Time, nh)
	viol := 0
	for h := 0; h < nh; h++ {
		h := h
		n.AttachHost(h, func(p *Packet) {
			if p.Kind == KindData && p.MsgTS < maxBarrier[h] {
				viol++
			}
			if p.BarrierBE > maxBarrier[h] {
				maxBarrier[h] = p.BarrierBE
			}
		})
	}
	for h := 0; h < nh; h++ {
		h := h
		sim.NewTicker(n.Eng, 500*sim.Nanosecond, 0, func() {
			ts := n.Clocks[h].Now()
			dst := ProcID(n.Eng.Rand().Intn(nh))
			n.SendFromHost(h, &Packet{Kind: KindData, Src: ProcID(h), Dst: dst,
				MsgTS: ts, BarrierBE: ts, BarrierC: ts, Size: 128})
		})
	}
	n.Eng.RunUntil(2 * sim.Millisecond)
	return viol
}

// TestBarrierInvariantSweep checks the per-link barrier promise across the
// jitter / loss / ECMP / clock-skew configuration space. The jittered
// cases caught a real bug during development: non-uniform logical-switch
// pipeline latency let later-stamped packets overtake earlier ones.
func TestBarrierInvariantSweep(t *testing.T) {
	cases := []struct {
		name   string
		loss   float64
		jitter sim.Time
		flow   bool
		skew   bool
	}{
		{"jitter-spray", 0, 2000, false, false},
		{"jitter-flow", 0, 2000, true, false},
		{"loss-skew", 1e-3, 0, false, true},
		{"jitter-spray-skew", 0, 2000, false, true},
		{"everything", 1e-3, 3000, false, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if v := runInv(t, tc.loss, tc.jitter, tc.flow, tc.skew); v != 0 {
				t.Fatalf("%d barrier-invariant violations", v)
			}
		})
	}
}
