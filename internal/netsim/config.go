package netsim

import (
	"onepipe/internal/clock"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Config parameterizes the network simulation. Zero values are filled with
// defaults calibrated to the paper's testbed (100 Gbps RoCEv2, 1–2 μs
// intra-rack RTT, 3 μs beacon interval).
type Config struct {
	Topo         topology.ClosConfig
	ProcsPerHost int
	Mode         Mode
	Clock        clock.Config
	Seed         int64

	// BeaconInterval is T_beacon of §4.2; the paper's deployment uses 3 μs.
	BeaconInterval sim.Time
	// DeadLinkBeacons is the number of silent beacon intervals after which
	// a switch declares an input link dead and removes it from barrier
	// aggregation (the paper uses 10).
	DeadLinkBeacons int
	// DisableBeacons turns off all beacon generation (baselines that do
	// not use barrier aggregation).
	DisableBeacons bool
	// DisableEventRelay reverts beacon propagation to the paper's literal
	// per-link idle ticker (no relay-on-advance): each hop then adds up
	// to a full beacon interval of barrier lag. Kept as an ablation knob
	// — see DESIGN.md deviation #1.
	DisableEventRelay bool

	// HostGbps is the host-link rate; FabricGbps is the per-host rate the
	// fabric provisions (fabric links are full-bisection trunks sized
	// from it — §7.1's "no oversubscription"). Oversub (>= 1) divides
	// above-ToR capacity, modeling an oversubscribed core (Fig. 12b).
	HostGbps, FabricGbps float64
	Oversub              float64

	// Propagation delays per link class and per-device processing delays.
	PropHost, PropTorSpine, PropSpineCore, PropLoopback sim.Time
	// SwitchFwdDelay is the pipeline latency of one LOGICAL switch (a
	// physical switch is two logical halves and charges it twice for
	// turnaround traffic).
	SwitchFwdDelay sim.Time
	// HostDelay is NIC+stack processing charged on both send and receive.
	HostDelay sim.Time
	// CPUBeaconDelay is the extra beacon processing delay per hop in
	// ModeSwitchCPU; HostDelegateDelay is its ModeHostDelegate equivalent
	// (switch-host RTT plus host processing, ~2 μs per §7.2).
	CPUBeaconDelay    sim.Time
	HostDelegateDelay sim.Time

	// ECNThreshold marks packets whose egress queueing delay exceeds it
	// (DCTCP-style). QueueLimit tail-drops beyond it; 0 means lossless
	// (PFC semantics).
	ECNThreshold sim.Time
	QueueLimit   sim.Time

	// LossRate is the per-link packet corruption probability.
	//
	// Deprecated: use Impair (netsim.UniformLoss(rate) is the exact
	// equivalent — same RNG stream, same draws). LossRate remains the
	// runtime fault-injection override: when nonzero it takes precedence
	// over any profile's uniform Loss, which is how chaos loss bursts
	// temporarily raise the rate over a profile baseline.
	LossRate float64
	// Jitter adds uniform [0, Jitter) of per-packet delay variation on
	// every link (switch processing variance), clamped so per-link FIFO
	// order is preserved. Zero keeps links perfectly deterministic.
	//
	// Deprecated: use Impair (netsim.UniformJitter(j) is the exact
	// equivalent). When nonzero it takes precedence over any profile's
	// Jitter field.
	Jitter sim.Time
	// Impair attaches a composable impairment profile — jitter,
	// reordering, Gilbert-Elliott burst loss, duty-cycle loss, WAN RTT
	// classes — per link, per link class, or fabric-wide. See the
	// Impairment type for the determinism contract (uniform Loss/Jitter
	// replay the legacy knobs' shard-RNG draws exactly; everything else
	// uses a per-link RNG seeded from Seed and the link ID).
	Impair *Profile
	// ControllerManagedCommit keeps a dead link inside commit-plane
	// aggregation until the controller's Resume step explicitly removes
	// it (ResumeCommitPlane); the best-effort plane always recovers
	// decentralized. Reliable-1Pipe deployments set this.
	ControllerManagedCommit bool
	// FlowECMP selects flow-hash path selection instead of the default
	// per-packet spraying.
	FlowECMP bool

	// Shards splits the simulation into per-pod shard engines (see
	// internal/sim.ShardedEngine and topology.ShardMap). 0 or 1 keeps the
	// classic single engine; chaos goldens and every existing experiment
	// run there. With Shards > 1 and Parallel false the shards execute in
	// deterministic lockstep — byte-identical event order to a single
	// engine, used to prove digest equivalence across shard counts.
	Shards int
	// Parallel runs the shards on concurrent goroutines synchronized by
	// conservative lookahead windows (the spine–core propagation delay
	// under the pod cut). Runs are deterministic for a fixed shard count.
	// Parallel mode is for fault-free, partitioned-randomness workloads
	// (the scale figure): runtime fault injection, live reconfiguration,
	// the controller and EnableObs all mutate cross-shard state and must
	// stay on the single-engine or lockstep drive.
	Parallel bool

	// NonuniformPipeline reintroduces the pre-fix bug of DESIGN deviation
	// #8: loopback-entered packets skip the logical switch's forwarding
	// pipeline, so a freshly-stamped turnaround packet can overtake an
	// earlier-stamped packet onto the same egress and break the per-link
	// barrier promise. Exists only so the chaos harness can prove it
	// detects the breakage; never set it in real experiments.
	NonuniformPipeline bool
}

// DefaultConfig returns the testbed-calibrated configuration for the given
// topology and process count.
func DefaultConfig(topo topology.ClosConfig, procsPerHost int) Config {
	return Config{
		Topo:              topo,
		ProcsPerHost:      procsPerHost,
		Mode:              ModeChip,
		Clock:             clock.DefaultConfig(),
		Seed:              1,
		BeaconInterval:    3 * sim.Microsecond,
		DeadLinkBeacons:   10,
		HostGbps:          100,
		FabricGbps:        100,
		Oversub:           1,
		PropHost:          200 * sim.Nanosecond,
		PropTorSpine:      300 * sim.Nanosecond,
		PropSpineCore:     400 * sim.Nanosecond,
		PropLoopback:      20 * sim.Nanosecond,
		SwitchFwdDelay:    150 * sim.Nanosecond,
		HostDelay:         300 * sim.Nanosecond,
		CPUBeaconDelay:    5 * sim.Microsecond,
		HostDelegateDelay: 2 * sim.Microsecond,
		ECNThreshold:      7 * sim.Microsecond,
		QueueLimit:        0,
		LossRate:          0,
	}
}

// NumProcs returns the total process count.
func (c Config) NumProcs() int { return c.Topo.NumHosts() * c.ProcsPerHost }

// PropOf returns the one-way propagation delay of a link class.
func (c *Config) PropOf(k topology.LinkKind) sim.Time {
	switch k {
	case topology.LinkHostUp, topology.LinkTorHostDown:
		return c.PropHost
	case topology.LinkTorSpineUp, topology.LinkSpineTorDown:
		return c.PropTorSpine
	case topology.LinkSpineCoreUp, topology.LinkCoreSpineDown:
		return c.PropSpineCore
	case topology.LinkLoopback:
		return c.PropLoopback
	}
	return 0
}

// MinCrossShardLatency returns the conservative lookahead bound for the
// given shard cut: the smallest propagation delay over links whose
// endpoints live on different shards. Under the pod cut this is the
// spine–core delay. ok is false when no link crosses (single shard).
func (c *Config) MinCrossShardLatency(g *topology.Graph, m topology.ShardMap) (sim.Time, bool) {
	min, ok := g.MinCrossShardLatency(m, func(k topology.LinkKind) int64 { return int64(c.PropOf(k)) })
	return sim.Time(min), ok
}
