package netsim

import (
	"math/rand"

	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Impairment describes the degradations a link applies to packets crossing
// it. The zero value impairs nothing; each field composes independently with
// the others, so a profile can mix, say, jitter with Gilbert-Elliott burst
// loss and a WAN delay class on the same link.
//
// Determinism contract: every random decision an Impairment makes is drawn
// from one of two deterministic streams. The uniform Loss and Jitter fields
// reproduce the legacy Config.LossRate/Config.Jitter draws exactly — they
// consume the engine-shard RNG (seeded from Config.Seed) at the very same
// code points the legacy knobs did, so a profile expressing only those two
// fields replays a legacy run byte-for-byte. All other fields (GE, Duty,
// ReorderRate, ExtraDelay's reorder draw) consume a dedicated per-link RNG
// seeded from Config.Seed XOR a salt derived from the link ID, and consume
// nothing at all when unset — links without those fields configured draw
// zero values from it, so enabling an advanced impairment on one link never
// perturbs any other link's stream. Two runs with equal Config.Seed, equal
// topology and equal profiles are therefore identical, shard count
// notwithstanding (lockstep drive).
type Impairment struct {
	// Loss is a uniform per-packet corruption probability, equivalent to
	// the deprecated Config.LossRate. When Config.LossRate is nonzero it
	// takes precedence over this field (that is what lets chaos fault
	// injection raise the rate at runtime over a profile baseline).
	Loss float64
	// Jitter adds the legacy Config.Jitter delay-variation pattern:
	// uniform [0, Jitter/3] per packet plus an occasional (5%) long tail
	// of up to 4×Jitter, FIFO-clamped so the link never reorders. When
	// Config.Jitter is nonzero it takes precedence over this field.
	Jitter sim.Time
	// ExtraDelay adds a constant one-way delay — an RTT class. A WAN or
	// cross-datacenter link is modeled by ExtraDelay = RTT/2. Constant
	// per link, it preserves FIFO order.
	ExtraDelay sim.Time
	// ReorderRate is the probability a packet is held back by an extra
	// uniform (0, ReorderDelay] that deliberately escapes the FIFO clamp:
	// later packets may overtake it. This models a non-FIFO link and
	// therefore breaks the §4.1 per-link ordering assumption 1Pipe's
	// barrier algebra rests on — useful for studying how the stack
	// degrades, but not part of any validated-fabric profile.
	ReorderRate  float64
	ReorderDelay sim.Time
	// GE enables a Gilbert-Elliott two-state burst-loss chain.
	GE *GEParams
	// Duty enables periodic duty-cycle loss windows.
	Duty *DutyCycle
}

// GEParams parameterizes the Gilbert-Elliott burst-loss model: a two-state
// Markov chain stepped once per packet. Mean burst length is 1/PBadGood
// packets; the stationary bad-state probability is
// PGoodBad/(PGoodBad+PBadGood), so with LossBad=1, LossGood=0 the long-run
// average loss rate is that same ratio.
type GEParams struct {
	PGoodBad float64 // per-packet P(good → bad)
	PBadGood float64 // per-packet P(bad → good)
	LossGood float64 // drop probability in the good state (default 0)
	LossBad  float64 // drop probability in the bad state (0 means 1)
}

// BurstLoss builds GEParams achieving a long-run average loss rate avgLoss
// with mean loss-burst length meanBurst packets (LossBad=1, LossGood=0).
func BurstLoss(avgLoss, meanBurst float64) *GEParams {
	if meanBurst < 1 {
		meanBurst = 1
	}
	pbg := 1 / meanBurst
	pgb := avgLoss * pbg / (1 - avgLoss)
	return &GEParams{PGoodBad: pgb, PBadGood: pbg, LossBad: 1}
}

// DutyCycle drops packets at Rate during periodic On windows separated by
// clean Off windows — a square-wave outage pattern (e.g. a flapping optic).
// Rate 0 means 1 (total loss during the window). Window position is derived
// from simulated/wall time, so it needs no per-packet state.
type DutyCycle struct {
	On, Off sim.Time
	Rate    float64
}

// Profile attaches Impairments to a fabric: per individual link, per link
// class, or as a default for every link (loopbacks included — exclude them
// with a ByKind entry holding a zero Impairment if that is not wanted).
// Resolution is most-specific-wins: ByLink, then ByKind, then Default.
type Profile struct {
	Default *Impairment
	ByKind  map[topology.LinkKind]*Impairment
	ByLink  map[topology.LinkID]*Impairment
}

// For resolves the impairment for one link; nil means unimpaired.
func (p *Profile) For(id topology.LinkID, kind topology.LinkKind) *Impairment {
	if p == nil {
		return nil
	}
	if imp, ok := p.ByLink[id]; ok {
		return imp
	}
	if imp, ok := p.ByKind[kind]; ok {
		return imp
	}
	return p.Default
}

// UniformLoss is the profile equivalent of the deprecated Config.LossRate.
func UniformLoss(rate float64) *Profile {
	return &Profile{Default: &Impairment{Loss: rate}}
}

// UniformJitter is the profile equivalent of the deprecated Config.Jitter.
func UniformJitter(j sim.Time) *Profile {
	return &Profile{Default: &Impairment{Jitter: j}}
}

// Uniform applies one impairment to every link.
func Uniform(imp Impairment) *Profile {
	return &Profile{Default: &imp}
}

// WAN returns an RTT-class impairment for cross-site links: a constant
// one-way delay of rtt/2.
func WAN(rtt sim.Time) *Impairment {
	return &Impairment{ExtraDelay: rtt / 2}
}

// impairSalt derives the per-link RNG seed from the fabric seed. Same
// golden-ratio mix as shardSalt, keyed by link instead of shard.
func impairSalt(seed int64, id topology.LinkID) int64 {
	return seed ^ int64((uint64(id)+1)*0xd1342543de82ef95)
}

// ImpairState is the runtime state of one link's Impairment: the dedicated
// per-link RNG and the Gilbert-Elliott chain position. netsim keeps one per
// impaired link (egress-owned: only transmit, which runs on the source
// shard, touches it). Live fabrics (udpnet, livenet) use the exported
// Drop/Delay methods, which apply the whole impairment from this one RNG —
// they have no shared-shard stream to preserve.
type ImpairState struct {
	Imp *Impairment
	rng *rand.Rand
	bad bool // Gilbert-Elliott chain state
}

// NewImpairState builds runtime state for imp, seeding the per-link RNG
// from the fabric seed and the link identity per the determinism contract.
func NewImpairState(imp *Impairment, seed int64, id topology.LinkID) *ImpairState {
	return &ImpairState{Imp: imp, rng: rand.New(rand.NewSource(impairSalt(seed, id)))}
}

// dropBurst applies the stateful loss models (Gilbert-Elliott, duty-cycle)
// only — the uniform Loss field is drawn elsewhere (from the shared shard
// RNG inside netsim, or by Drop below on live fabrics). Draws nothing when
// neither model is configured.
func (s *ImpairState) dropBurst(now sim.Time) bool {
	if ge := s.Imp.GE; ge != nil {
		if s.bad {
			if s.rng.Float64() < ge.PBadGood {
				s.bad = false
			}
		} else if ge.PGoodBad > 0 && s.rng.Float64() < ge.PGoodBad {
			s.bad = true
		}
		p := ge.LossGood
		if s.bad {
			p = ge.LossBad
			if p == 0 {
				p = 1
			}
		}
		if p >= 1 {
			return true
		}
		if p > 0 && s.rng.Float64() < p {
			return true
		}
	}
	if d := s.Imp.Duty; d != nil && d.On > 0 {
		if sim.Time(int64(now)%int64(d.On+d.Off)) < d.On {
			r := d.Rate
			if r == 0 {
				r = 1
			}
			if r >= 1 || s.rng.Float64() < r {
				return true
			}
		}
	}
	return false
}

// reorderExtra returns the FIFO-escaping delay for this packet (0 if the
// packet is not reordered). Draws only when ReorderRate is set.
func (s *ImpairState) reorderExtra() sim.Time {
	rr := s.Imp.ReorderRate
	if rr <= 0 || s.rng.Float64() >= rr {
		return 0
	}
	if d := s.Imp.ReorderDelay; d > 0 {
		return sim.Time(1 + s.rng.Int63n(int64(d)))
	}
	return 0
}

// Drop decides whether to drop a packet, applying the full impairment
// (uniform Loss plus the burst models) from the per-link RNG. Used by live
// fabrics; netsim draws the uniform component from the shard RNG instead.
func (s *ImpairState) Drop(now sim.Time) bool {
	if s.Imp.Loss > 0 && s.rng.Float64() < s.Imp.Loss {
		return true
	}
	return s.dropBurst(now)
}

// Delay returns the extra one-way delay for a packet on a live fabric:
// constant ExtraDelay, plain uniform [0, Jitter) jitter, and — with
// probability ReorderRate — the reorder hold-back. Live links deliver
// through independent timers, so any jitter can already reorder; the
// distinction the simulator preserves (FIFO-clamped jitter vs escaping
// reorder) collapses here into one extra delay.
func (s *ImpairState) Delay(now sim.Time) sim.Time {
	extra := s.Imp.ExtraDelay
	if j := s.Imp.Jitter; j > 0 {
		extra += sim.Time(s.rng.Int63n(int64(j)))
	}
	extra += s.reorderExtra()
	return extra
}
