package netsim

import (
	"testing"

	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// TestFullBisectionFabric verifies the §7.1 "no oversubscription"
// calibration: with every host blasting line-rate traffic to a cross-pod
// peer, fabric queues stay bounded (no growing backlog), which is only
// possible if trunk capacity matches host capacity.
func TestFullBisectionFabric(t *testing.T) {
	cfg := DefaultConfig(topology.Testbed(), 1)
	n := testNet(t, cfg)
	nh := len(n.G.Hosts)
	var lastLat sim.Time
	received := 0
	for h := 0; h < nh; h++ {
		h := h
		n.AttachHost(h, func(p *Packet) {
			if p.Kind == KindData {
				received++
				lastLat = n.Eng.Now() - p.SentAt
			}
		})
	}
	// Every host sends 88B packets at ~90% of line rate to a fixed
	// cross-pod peer (maximal core load).
	for h := 0; h < nh; h++ {
		h := h
		dst := ProcID((h + nh/2) % nh)
		sim.NewTicker(n.Eng, 8*sim.Nanosecond, sim.Time(h*131)*sim.Nanosecond, func() {
			ts := n.Clocks[h].Now()
			n.SendFromHost(h, &Packet{Kind: KindData, Src: ProcID(h), Dst: dst,
				MsgTS: ts, BarrierBE: ts, Size: 88})
		})
	}
	n.Eng.RunUntil(120 * sim.Microsecond)
	if received == 0 {
		t.Fatal("nothing received")
	}
	// With full bisection the end-to-end latency stays near the base path
	// delay even at ~90% load; an oversubscribed core would show hundreds
	// of microseconds of queueing by now.
	if lastLat > 40*sim.Microsecond {
		t.Fatalf("steady-state latency %v indicates fabric oversubscription", lastLat)
	}
}

// TestOversubKnobShrinksTrunks checks that the Fig. 12b knob actually
// reduces fabric capacity.
func TestOversubKnobShrinksTrunks(t *testing.T) {
	base := New(DefaultConfig(topology.Testbed(), 1))
	cfgO := DefaultConfig(topology.Testbed(), 1)
	cfgO.Oversub = 4
	over := New(cfgO)
	var torUp topology.LinkID = -1
	for _, l := range base.G.Links {
		if l.Kind == topology.LinkTorSpineUp {
			torUp = l.ID
			break
		}
	}
	b := base.bandwidthOf(topology.LinkTorSpineUp)
	o := over.bandwidthOf(topology.LinkTorSpineUp)
	if o*3.9 > b {
		t.Fatalf("oversub 4 trunk %.1f not ~4x below %.1f", o, b)
	}
	_ = torUp
	// Host links are not affected by the oversubscription knob.
	if base.bandwidthOf(topology.LinkHostUp) != over.bandwidthOf(topology.LinkHostUp) {
		t.Fatal("oversub knob touched host links")
	}
}
