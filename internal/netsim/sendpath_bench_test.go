package netsim

import (
	"testing"

	"onepipe/internal/race"
	"onepipe/internal/topology"
)

// sendPathNet builds a small quiescent fabric (no beacons, no scanners) so
// the engine drains completely after each injected packet: what remains is
// exactly the per-packet data-plane path — host delay, per-hop transmit and
// receive events, ECMP routing, final host delivery.
func sendPathNet() (*Network, *int) {
	cfg := DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	cfg.Clock.MaxOffset = 0
	cfg.Clock.MaxDriftPPM = 0
	cfg.DisableBeacons = true
	n := New(cfg)
	delivered := new(int)
	n.AttachHost(7, func(p *Packet) {
		*delivered++
		PutPacket(p)
	})
	return n, delivered
}

func sendOne(n *Network) {
	pkt := GetPacket()
	pkt.Kind, pkt.Src, pkt.Dst = KindData, 0, 7
	pkt.Size = 1024 + HeaderBytes
	pkt.MsgTS = n.Eng.Now()
	n.SendFromHost(0, pkt)
	n.Eng.Run()
}

// BenchmarkSendPath measures one best-effort packet traversing the full
// simulated path (host 0 -> ToR -> spine/core -> ToR -> host 7), all hops
// included, pool-recycled end to end.
func BenchmarkSendPath(b *testing.B) {
	n, delivered := sendPathNet()
	sendOne(n) // warm the route and the event heap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendOne(n)
	}
	b.StopTimer()
	if *delivered != b.N+1 {
		b.Fatalf("delivered %d, want %d", *delivered, b.N+1)
	}
}

// TestSendPathAllocs pins the steady-state zero-allocation property of the
// simulated data plane: packet structs come from the pool, every hop is
// scheduled through the engine's capture-free At2 path, and delivery
// releases the packet. One allocation per packet here costs millions per
// figure regeneration.
func TestSendPathAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	n, delivered := sendPathNet()
	for i := 0; i < 256; i++ {
		sendOne(n) // grow the event heap, link state and pools to steady state
	}
	if avg := testing.AllocsPerRun(500, func() { sendOne(n) }); avg != 0 {
		t.Errorf("send path: %v allocs/op, want 0", avg)
	}
	if *delivered == 0 {
		t.Fatal("no packets delivered")
	}
}
