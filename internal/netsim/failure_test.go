package netsim

import (
	"testing"

	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func TestCommitPlaneGatedUntilResume(t *testing.T) {
	cfg := smallCfg()
	cfg.ControllerManagedCommit = true
	n := testNet(t, cfg)
	var barrierC sim.Time
	n.AttachHost(7, func(p *Packet) {
		if p.BarrierC > barrierC {
			barrierC = p.BarrierC
		}
	})
	n.Eng.RunUntil(300 * sim.Microsecond)
	n.G.KillNode(n.G.Host(0))
	n.Eng.RunUntil(600 * sim.Microsecond)
	// BE scanner removed the link, but the commit plane must still be
	// gated by the dead link's last register.
	gated := n.CommitGatedLinks()
	if len(gated) == 0 {
		t.Fatal("no commit-gated links after host death")
	}
	stuck := barrierC
	if stuck > 320*sim.Microsecond {
		t.Fatalf("commit barrier %v advanced past the failure", stuck)
	}
	for _, lid := range gated {
		n.ResumeCommitPlane(lid)
	}
	n.Eng.RunUntil(900 * sim.Microsecond)
	if barrierC <= stuck {
		t.Fatalf("commit barrier did not advance after Resume: %v", barrierC)
	}
	if len(n.CommitGatedLinks()) != 0 {
		t.Fatal("gated links remain after Resume")
	}
}

func TestBEPlaneRecoversWithoutController(t *testing.T) {
	cfg := smallCfg() // ControllerManagedCommit = false
	n := testNet(t, cfg)
	var barrierC sim.Time
	n.AttachHost(7, func(p *Packet) {
		if p.BarrierC > barrierC {
			barrierC = p.BarrierC
		}
	})
	n.Eng.RunUntil(300 * sim.Microsecond)
	n.G.KillNode(n.G.Host(0))
	n.Eng.RunUntil(800 * sim.Microsecond)
	// Decentralized mode: both planes resume after the scanner timeout.
	if lag := 800*sim.Microsecond - barrierC; lag > 10*cfg.BeaconInterval {
		t.Fatalf("commit barrier lag %v without controller gating", lag)
	}
	if len(n.CommitGatedLinks()) != 0 {
		t.Fatal("links stayed commit-gated in decentralized mode")
	}
}

func TestLinkRegistersExposed(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	n.Eng.RunUntil(100 * sim.Microsecond)
	uplink := n.G.Out[n.G.Host(0)][0]
	be, c := n.LinkRegisters(uplink)
	if be == 0 || c == 0 {
		t.Fatalf("uplink registers never advanced: be=%v c=%v", be, c)
	}
	if be < 90*sim.Microsecond {
		t.Fatalf("uplink BE register %v too stale", be)
	}
}

func TestNodeBarrierMonotoneAcrossLinkChurn(t *testing.T) {
	// Kill and revive a host link; the downstream switch's published
	// barrier must never decrease (§4.2 suspension rule).
	cfg := smallCfg()
	n := testNet(t, cfg)
	tor := n.G.Links[n.G.Out[n.G.Host(0)][0]].To
	var lastBE, lastC sim.Time
	check := sim.NewTicker(n.Eng, sim.Microsecond, 0, func() {
		be, c := n.NodeBarriers(tor)
		if be < lastBE || c < lastC {
			t.Errorf("switch barrier regressed: be %v->%v c %v->%v", lastBE, be, lastC, c)
		}
		lastBE, lastC = be, c
	})
	defer check.Stop()
	n.Eng.RunUntil(200 * sim.Microsecond)
	n.G.KillNode(n.G.Host(0))
	n.Eng.RunUntil(500 * sim.Microsecond)
	n.G.Revive()
	n.Eng.RunUntil(900 * sim.Microsecond)
}

func TestStatsAccounting(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	n.AttachHost(1, func(*Packet) {})
	n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: 1, MsgTS: 1, BarrierBE: 1, Size: 128})
	n.Eng.RunUntil(200 * sim.Microsecond)
	if n.Stats.PktsByKind[KindData] == 0 {
		t.Fatal("data packets not counted")
	}
	if n.Stats.BytesByKind[KindData] == 0 {
		t.Fatal("data bytes not counted")
	}
	if n.Stats.Delivered == 0 {
		t.Fatal("deliveries not counted")
	}
}

func TestDisableBeacons(t *testing.T) {
	cfg := DefaultConfig(topology.Testbed(), 1)
	cfg.DisableBeacons = true
	n := New(cfg)
	n.Eng.RunUntil(1 * sim.Millisecond)
	if n.Stats.PktsByKind[KindBeacon] != 0 {
		t.Fatalf("%d beacons sent with beacons disabled", n.Stats.PktsByKind[KindBeacon])
	}
}
