package netsim

import (
	"testing"

	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func TestCommitPlaneGatedUntilResume(t *testing.T) {
	cfg := smallCfg()
	cfg.ControllerManagedCommit = true
	n := testNet(t, cfg)
	var barrierC sim.Time
	n.AttachHost(7, func(p *Packet) {
		if p.BarrierC > barrierC {
			barrierC = p.BarrierC
		}
	})
	n.Eng.RunUntil(300 * sim.Microsecond)
	n.G.KillNode(n.G.Host(0))
	n.Eng.RunUntil(600 * sim.Microsecond)
	// BE scanner removed the link, but the commit plane must still be
	// gated by the dead link's last register.
	gated := n.CommitGatedLinks()
	if len(gated) == 0 {
		t.Fatal("no commit-gated links after host death")
	}
	stuck := barrierC
	if stuck > 320*sim.Microsecond {
		t.Fatalf("commit barrier %v advanced past the failure", stuck)
	}
	for _, lid := range gated {
		n.ResumeCommitPlane(lid)
	}
	n.Eng.RunUntil(900 * sim.Microsecond)
	if barrierC <= stuck {
		t.Fatalf("commit barrier did not advance after Resume: %v", barrierC)
	}
	if len(n.CommitGatedLinks()) != 0 {
		t.Fatal("gated links remain after Resume")
	}
}

func TestBEPlaneRecoversWithoutController(t *testing.T) {
	cfg := smallCfg() // ControllerManagedCommit = false
	n := testNet(t, cfg)
	var barrierC sim.Time
	n.AttachHost(7, func(p *Packet) {
		if p.BarrierC > barrierC {
			barrierC = p.BarrierC
		}
	})
	n.Eng.RunUntil(300 * sim.Microsecond)
	n.G.KillNode(n.G.Host(0))
	n.Eng.RunUntil(800 * sim.Microsecond)
	// Decentralized mode: both planes resume after the scanner timeout.
	if lag := 800*sim.Microsecond - barrierC; lag > 10*cfg.BeaconInterval {
		t.Fatalf("commit barrier lag %v without controller gating", lag)
	}
	if len(n.CommitGatedLinks()) != 0 {
		t.Fatal("links stayed commit-gated in decentralized mode")
	}
}

func TestLinkRegistersExposed(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	n.Eng.RunUntil(100 * sim.Microsecond)
	uplink := n.G.Out[n.G.Host(0)][0]
	be, c := n.LinkRegisters(uplink)
	if be == 0 || c == 0 {
		t.Fatalf("uplink registers never advanced: be=%v c=%v", be, c)
	}
	if be < 90*sim.Microsecond {
		t.Fatalf("uplink BE register %v too stale", be)
	}
}

func TestNodeBarrierMonotoneAcrossLinkChurn(t *testing.T) {
	// Kill and revive a host link; the downstream switch's published
	// barrier must never decrease (§4.2 suspension rule).
	cfg := smallCfg()
	n := testNet(t, cfg)
	tor := n.G.Links[n.G.Out[n.G.Host(0)][0]].To
	var lastBE, lastC sim.Time
	check := sim.NewTicker(n.Eng, sim.Microsecond, 0, func() {
		be, c := n.NodeBarriers(tor)
		if be < lastBE || c < lastC {
			t.Errorf("switch barrier regressed: be %v->%v c %v->%v", lastBE, be, lastC, c)
		}
		lastBE, lastC = be, c
	})
	defer check.Stop()
	n.Eng.RunUntil(200 * sim.Microsecond)
	n.G.KillNode(n.G.Host(0))
	n.Eng.RunUntil(500 * sim.Microsecond)
	n.G.Revive()
	n.Eng.RunUntil(900 * sim.Microsecond)
}

func TestStatsAccounting(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	n.AttachHost(1, func(*Packet) {})
	n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: 1, MsgTS: 1, BarrierBE: 1, Size: 128})
	n.Eng.RunUntil(200 * sim.Microsecond)
	if n.Stats.PktsByKind[KindData] == 0 {
		t.Fatal("data packets not counted")
	}
	if n.Stats.BytesByKind[KindData] == 0 {
		t.Fatal("data bytes not counted")
	}
	if n.Stats.Delivered == 0 {
		t.Fatal("deliveries not counted")
	}
}

func TestDisableBeacons(t *testing.T) {
	cfg := DefaultConfig(topology.Testbed(), 1)
	cfg.DisableBeacons = true
	n := New(cfg)
	n.Eng.RunUntil(1 * sim.Millisecond)
	if n.Stats.PktsByKind[KindBeacon] != 0 {
		t.Fatalf("%d beacons sent with beacons disabled", n.Stats.PktsByKind[KindBeacon])
	}
}

// TestDrainedLinkNotReportedDead is the graceful-leave regression test: a
// drained link goes silent by design, and the dead-link scanner must never
// turn that silence — or straggler beacons still in flight — into a false
// failure report to the controller.
func TestDrainedLinkNotReportedDead(t *testing.T) {
	cfg := smallCfg()
	cfg.ControllerManagedCommit = true
	n := testNet(t, cfg)
	reports := map[topology.LinkID]int{}
	n.OnLinkDead = func(l topology.Link, _ sim.Time) { reports[l.ID]++ }
	var barrier sim.Time
	regressions := 0
	n.AttachHost(7, func(p *Packet) {
		if p.BarrierBE < barrier {
			regressions++
		}
		if p.BarrierBE > barrier {
			barrier = p.BarrierBE
		}
	})
	n.Eng.RunUntil(300 * sim.Microsecond)
	host := n.G.Host(0)
	var drained []topology.LinkID
	for _, lid := range n.G.Out[host] {
		drained = append(drained, lid)
	}
	for _, lid := range n.G.In[host] {
		drained = append(drained, lid)
	}
	n.G.DrainNode(host)
	for _, lid := range drained {
		n.DrainLink(lid)
	}
	// testNet's beacon ticker for host 0 keeps firing: those stragglers
	// arrive on a drained link and must not resurrect it.
	n.Eng.RunUntil(1500 * sim.Microsecond)
	for _, lid := range drained {
		if c := reports[lid]; c != 0 {
			t.Fatalf("drained link %d got %d dead-link reports", lid, c)
		}
		if !n.LinkDrained(lid) {
			t.Fatalf("link %d lost its drain mark", lid)
		}
	}
	if len(n.CommitGatedLinks()) != 0 {
		t.Fatalf("drain left commit-gated links: %v", n.CommitGatedLinks())
	}
	if regressions != 0 {
		t.Fatalf("%d barrier regressions at a live host after drain", regressions)
	}
	if barrier < 1200*sim.Microsecond {
		t.Fatalf("barrier stalled at %v after drain — drained registers still aggregated", barrier)
	}
	// Contrast: an actual death on the same fabric still gets reported.
	n.G.KillNode(n.G.Host(1))
	n.Eng.RunUntil(2500 * sim.Microsecond)
	killed := n.G.Out[n.G.Host(1)][0]
	if reports[killed] == 0 {
		t.Fatal("killed host's uplink never reported dead — scanner over-suppressed")
	}
}

// TestGrowAndAdmitHost exercises runtime growth end to end at the netsim
// layer: topology AddHost + Grow mid-traffic (pointer stability of
// scheduled events), two-phase admit with register seeding at the join
// epoch, and delivery to the joined host without any barrier regression
// at incumbents.
func TestGrowAndAdmitHost(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	var barrier sim.Time
	regressions := 0
	n.AttachHost(7, func(p *Packet) {
		if p.BarrierBE < barrier {
			regressions++
		}
		if p.BarrierBE > barrier {
			barrier = p.BarrierBE
		}
	})
	reports := 0
	n.OnLinkDead = func(topology.Link, sim.Time) { reports++ }
	n.Eng.RunUntil(300 * sim.Microsecond)

	id, links, err := n.G.AddHost(0, 0)
	if err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	n.G.DrainNode(id) // prepare: invisible to routing until activate
	added := n.Grow()
	if len(added) != len(links) {
		t.Fatalf("Grow added %d links, want %d", len(added), len(links))
	}
	hi := n.G.HostIndex(id)
	if hi != 8 {
		t.Fatalf("HostIndex = %d, want 8", hi)
	}
	if n.NumProcs() != 9*cfg.ProcsPerHost {
		t.Fatalf("NumProcs = %d after growth", n.NumProcs())
	}
	// Prepared-but-unadmitted links sit outside aggregation and the
	// scanner: running here must neither stall barriers nor raise reports.
	n.Eng.RunUntil(900 * sim.Microsecond)
	if reports != 0 {
		t.Fatalf("%d dead-link reports from unadmitted links", reports)
	}
	if barrier < 600*sim.Microsecond {
		t.Fatalf("barrier stalled at %v with prepared links", barrier)
	}

	// Activate: seed at the join epoch, force the clock, beacon, deliver.
	tj := n.MaxBarrier() + 2*sim.Microsecond
	n.Clocks[hi].AdvanceTo(tj)
	n.G.UndrainNode(id)
	for _, lid := range links {
		n.AdmitLink(lid, tj, tj)
	}
	var got []*Packet
	n.AttachHost(hi, func(p *Packet) {
		if p.Kind == KindData {
			got = append(got, p)
		}
	})
	sim.NewTicker(n.Eng, cfg.BeaconInterval, 0, func() {
		now := n.Clocks[hi].Now()
		n.SendFromHost(hi, &Packet{Kind: KindBeacon, BarrierBE: now, BarrierC: now, Size: BeaconBytes})
	})
	n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: ProcID(hi * cfg.ProcsPerHost), MsgTS: tj, BarrierBE: tj, Size: 128, Payload: "welcome"})
	n.Eng.RunUntil(1600 * sim.Microsecond)
	if len(got) != 1 {
		t.Fatalf("joined host received %d data packets, want 1", len(got))
	}
	if regressions != 0 {
		t.Fatalf("%d barrier regressions at incumbent after admit", regressions)
	}
	if barrier < 1300*sim.Microsecond {
		t.Fatalf("barrier stalled at %v after admit", barrier)
	}
	if reports != 0 {
		t.Fatalf("%d dead-link reports during a clean join", reports)
	}
}
