package netsim

import (
	"testing"

	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// testNet builds a small network where every host beacons its clock on its
// uplink each beacon interval, the way lib1pipe's polling thread does.
func testNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n := New(cfg)
	for h := 0; h < len(n.G.Hosts); h++ {
		h := h
		sim.NewTicker(n.Eng, cfg.BeaconInterval, 0, func() {
			now := n.Clocks[h].Now()
			n.SendFromHost(h, &Packet{Kind: KindBeacon, BarrierBE: now, BarrierC: now, Size: BeaconBytes})
		})
	}
	return n
}

func smallCfg() Config {
	cfg := DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 1)
	cfg.Clock.MaxOffset = 0 // perfect clocks unless a test opts in
	cfg.Clock.MaxDriftPPM = 0
	return cfg
}

func TestDataDelivered(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	var got []*Packet
	n.AttachHost(7, func(p *Packet) {
		if p.Kind == KindData {
			got = append(got, p)
		}
	})
	pkt := &Packet{Kind: KindData, Src: 0, Dst: 7, MsgTS: 100, BarrierBE: 100, Size: 128, Payload: "hello"}
	n.SendFromHost(0, pkt)
	n.Eng.RunFor(100 * sim.Microsecond)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if got[0].Payload != "hello" || got[0].MsgTS != 100 {
		t.Fatalf("wrong packet delivered: %v", got[0])
	}
}

func TestCrossPodLatencyHigherThanIntraRack(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	var at [32]sim.Time
	for _, h := range []int{1, 2, 7} { // same rack, same pod, cross pod
		h := h
		n.AttachHost(h, func(p *Packet) {
			if p.Kind == KindData {
				at[h] = n.Eng.Now() - p.SentAt
			}
		})
	}
	for _, h := range []int{1, 2, 7} {
		n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: ProcID(h), MsgTS: 1, BarrierBE: 1, Size: 128})
	}
	n.Eng.RunFor(100 * sim.Microsecond)
	if !(at[1] < at[2] && at[2] < at[7]) {
		t.Fatalf("latency ordering wrong: rack=%v pod=%v xpod=%v", at[1], at[2], at[7])
	}
	if at[1] < 1*sim.Microsecond || at[1] > 3*sim.Microsecond {
		t.Fatalf("intra-rack one-way latency %v outside calibrated 1-3us", at[1])
	}
}

// The core barrier invariant: once a host has seen barrier B on its
// downlink, no later-arriving data packet carries a message timestamp < B.
func TestBarrierInvariant(t *testing.T) {
	for _, mode := range []Mode{ModeChip, ModeSwitchCPU, ModeHostDelegate} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := smallCfg()
			cfg.Mode = mode
			cfg.Clock = DefaultConfig(cfg.Topo, 1).Clock // realistic skew
			cfg.LossRate = 1e-3
			cfg.Jitter = 2 * sim.Microsecond // FIFO-clamped delay variance
			n := testNet(t, cfg)
			nh := len(n.G.Hosts)
			maxBarrier := make([]sim.Time, nh)
			for h := 0; h < nh; h++ {
				h := h
				n.AttachHost(h, func(p *Packet) {
					if p.Kind == KindData && p.MsgTS < maxBarrier[h] {
						t.Errorf("host %d: data ts=%v below seen barrier %v", h, p.MsgTS, maxBarrier[h])
					}
					// Only the chip incarnation rewrites data barriers;
					// with switch-CPU or host-delegate processing the
					// receiver honors beacon barriers alone (§6.2.2).
					if p.Kind == KindBeacon || mode == ModeChip {
						if p.BarrierBE > maxBarrier[h] {
							maxBarrier[h] = p.BarrierBE
						}
					}
				})
			}
			// Every host streams data to random destinations.
			for h := 0; h < nh; h++ {
				h := h
				sim.NewTicker(n.Eng, 500*sim.Nanosecond, 0, func() {
					ts := n.Clocks[h].Now()
					dst := ProcID(n.Eng.Rand().Intn(nh))
					n.SendFromHost(h, &Packet{Kind: KindData, Src: ProcID(h), Dst: dst,
						MsgTS: ts, BarrierBE: ts, BarrierC: ts, Size: 128})
				})
			}
			n.Eng.RunUntil(2 * sim.Millisecond)
			for h := 0; h < nh; h++ {
				if maxBarrier[h] == 0 {
					t.Errorf("host %d: barrier never advanced", h)
				}
			}
		})
	}
}

func TestBarrierAdvancesWhenIdle(t *testing.T) {
	// With no data traffic at all, beacons alone must advance every host's
	// barrier to within a few beacon intervals of now.
	cfg := smallCfg()
	n := testNet(t, cfg)
	nh := len(n.G.Hosts)
	maxBarrier := make([]sim.Time, nh)
	for h := 0; h < nh; h++ {
		h := h
		n.AttachHost(h, func(p *Packet) {
			if p.BarrierBE > maxBarrier[h] {
				maxBarrier[h] = p.BarrierBE
			}
		})
	}
	n.Eng.RunUntil(1 * sim.Millisecond)
	for h := 0; h < nh; h++ {
		lag := 1*sim.Millisecond - maxBarrier[h]
		if lag > 8*cfg.BeaconInterval {
			t.Errorf("host %d: idle barrier lags by %v", h, lag)
		}
	}
}

func TestOutOfOrderArrivalsWithSpraying(t *testing.T) {
	// §4.1 motivation: with multiple senders to one receiver, a large
	// fraction of arrivals are out of timestamp order (the paper measured
	// 57% with 8 senders).
	cfg := DefaultConfig(topology.Testbed(), 1)
	n := testNet(t, cfg)
	var total, ooo int
	var lastTS sim.Time
	n.AttachHost(31, func(p *Packet) {
		if p.Kind != KindData {
			return
		}
		total++
		if p.MsgTS < lastTS {
			ooo++
		} else {
			lastTS = p.MsgTS
		}
	})
	for h := 0; h < 8; h++ {
		h := h
		sim.NewTicker(n.Eng, 200*sim.Nanosecond, 0, func() {
			ts := n.Clocks[h].Now()
			n.SendFromHost(h, &Packet{Kind: KindData, Src: ProcID(h), Dst: 31,
				MsgTS: ts, BarrierBE: ts, Size: 1024})
		})
	}
	n.Eng.RunUntil(2 * sim.Millisecond)
	if total == 0 {
		t.Fatal("no deliveries")
	}
	frac := float64(ooo) / float64(total)
	if frac < 0.05 {
		t.Errorf("out-of-order fraction %.2f suspiciously low for concurrent senders", frac)
	}
}

func TestLossRateDropsPackets(t *testing.T) {
	cfg := smallCfg()
	cfg.LossRate = 0.5
	n := testNet(t, cfg)
	delivered := 0
	n.AttachHost(1, func(p *Packet) {
		if p.Kind == KindData {
			delivered++
		}
	})
	const sent = 500
	for i := 0; i < sent; i++ {
		i := i
		n.Eng.At(sim.Time(i)*sim.Microsecond, func() {
			n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: 1, MsgTS: sim.Time(i), BarrierBE: sim.Time(i), Size: 128})
		})
	}
	n.Eng.RunUntil(600 * sim.Microsecond)
	// Intra-rack path has 3 links; survival (1-0.5)^3 = 12.5%.
	if delivered == 0 || delivered > sent/3 {
		t.Fatalf("delivered %d/%d with 50%% per-link loss", delivered, sent)
	}
	if n.Stats.CorruptDrop == 0 {
		t.Fatal("no corruption drops recorded")
	}
}

func TestECNMarkingUnderCongestion(t *testing.T) {
	cfg := smallCfg()
	cfg.ECNThreshold = 1 * sim.Microsecond
	n := testNet(t, cfg)
	marked := 0
	n.AttachHost(1, func(p *Packet) {
		if p.Kind == KindData && p.ECN {
			marked++
		}
	})
	// Two hosts blast the same destination's downlink.
	for _, src := range []int{0, 2} {
		src := src
		sim.NewTicker(n.Eng, 100*sim.Nanosecond, 0, func() {
			ts := n.Clocks[src].Now()
			n.SendFromHost(src, &Packet{Kind: KindData, Src: ProcID(src), Dst: 1,
				MsgTS: ts, BarrierBE: ts, Size: 4096})
		})
	}
	n.Eng.RunUntil(2 * sim.Millisecond)
	if marked == 0 {
		t.Fatal("no ECN marks under 2:1 incast")
	}
}

func TestQueueLimitTailDrops(t *testing.T) {
	cfg := smallCfg()
	cfg.QueueLimit = 2 * sim.Microsecond
	n := testNet(t, cfg)
	for _, src := range []int{0, 2} {
		src := src
		sim.NewTicker(n.Eng, 100*sim.Nanosecond, 0, func() {
			ts := n.Clocks[src].Now()
			n.SendFromHost(src, &Packet{Kind: KindData, Src: ProcID(src), Dst: 1,
				MsgTS: ts, BarrierBE: ts, Size: 4096})
		})
	}
	n.Eng.RunUntil(2 * sim.Millisecond)
	if n.Stats.QueueDrop == 0 {
		t.Fatal("no tail drops with tiny queue limit")
	}
}

func TestDeadLinkDetectedAndBarrierResumes(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	var deadLinks []topology.Link
	n.OnLinkDead = func(l topology.Link, lastC sim.Time) { deadLinks = append(deadLinks, l) }
	var barrier sim.Time
	n.AttachHost(1, func(p *Packet) {
		if p.BarrierBE > barrier {
			barrier = p.BarrierBE
		}
	})
	n.Eng.RunUntil(500 * sim.Microsecond)
	// Kill host 0: its uplink goes silent; barrier at host 1 must stall for
	// the dead-link timeout, then resume.
	n.G.KillNode(n.G.Host(0))
	n.Eng.RunUntil(520 * sim.Microsecond)
	stalled := barrier
	n.Eng.RunUntil(540 * sim.Microsecond) // beyond 30us timeout
	if len(deadLinks) == 0 {
		t.Fatal("dead link never detected")
	}
	n.Eng.RunUntil(800 * sim.Microsecond)
	if barrier <= stalled {
		t.Fatalf("barrier did not resume after dead-link removal: %v -> %v", stalled, barrier)
	}
	lag := 800*sim.Microsecond - barrier
	if lag > 10*cfg.BeaconInterval {
		t.Fatalf("barrier lag %v after recovery too high", lag)
	}
}

func TestOversubSlowsFabric(t *testing.T) {
	measure := func(oversub float64) sim.Time {
		cfg := smallCfg()
		cfg.Oversub = oversub
		n := testNet(t, cfg)
		var last sim.Time
		n.AttachHost(7, func(p *Packet) {
			if p.Kind == KindData {
				last = n.Eng.Now() - p.SentAt
			}
		})
		// Saturate host 0 -> host 7 (cross-pod) with big packets.
		sim.NewTicker(n.Eng, 150*sim.Nanosecond, 0, func() {
			ts := n.Clocks[0].Now()
			n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: 7, MsgTS: ts, BarrierBE: ts, Size: 4096})
		})
		n.Eng.RunUntil(1 * sim.Millisecond)
		return last
	}
	if a, b := measure(1), measure(6); b <= a {
		t.Fatalf("6:1 oversubscription latency %v not above 1:1 latency %v", b, a)
	}
}

func TestBeaconOverheadFraction(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	n.Eng.RunUntil(5 * sim.Millisecond)
	if n.Stats.PktsByKind[KindBeacon] == 0 {
		t.Fatal("no beacons sent")
	}
	if f := n.Stats.BeaconBandwidthFraction(); f != 1 {
		t.Fatalf("idle network beacon fraction = %v, want 1 (only beacons)", f)
	}
}

func TestModeCPUDataNotRestamped(t *testing.T) {
	cfg := smallCfg()
	cfg.Mode = ModeSwitchCPU
	n := testNet(t, cfg)
	var got *Packet
	n.AttachHost(7, func(p *Packet) {
		if p.Kind == KindData {
			got = p
		}
	})
	n.Eng.RunUntil(200 * sim.Microsecond) // let barriers advance well past 5
	n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: 7, MsgTS: 5, BarrierBE: 5, Size: 128})
	n.Eng.RunUntil(300 * sim.Microsecond)
	if got == nil {
		t.Fatal("not delivered")
	}
	if got.BarrierBE != 5 {
		t.Fatalf("switch-CPU mode rewrote data barrier to %v", got.BarrierBE)
	}
}

func TestModeChipRestampsData(t *testing.T) {
	cfg := smallCfg()
	n := testNet(t, cfg)
	var got *Packet
	n.AttachHost(7, func(p *Packet) {
		if p.Kind == KindData {
			got = p
		}
	})
	n.Eng.RunUntil(200 * sim.Microsecond)
	n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: 7, MsgTS: 5, BarrierBE: 5, Size: 128})
	n.Eng.RunUntil(300 * sim.Microsecond)
	if got == nil {
		t.Fatal("not delivered")
	}
	if got.BarrierBE <= 5 {
		t.Fatalf("chip mode did not advance data barrier: %v", got.BarrierBE)
	}
}

func TestProcMapping(t *testing.T) {
	cfg := smallCfg()
	cfg.ProcsPerHost = 4
	n := New(cfg)
	if n.NumProcs() != len(n.G.Hosts)*4 {
		t.Fatalf("NumProcs = %d", n.NumProcs())
	}
	if n.HostOfProc(0) != 0 || n.HostOfProc(3) != 0 || n.HostOfProc(4) != 1 {
		t.Fatal("HostOfProc mapping wrong")
	}
	if n.ClockOfProc(5) != n.Clocks[1] {
		t.Fatal("ClockOfProc mapping wrong")
	}
}

func TestFlowECMPIsStable(t *testing.T) {
	cfg := smallCfg()
	cfg.FlowECMP = true
	n := testNet(t, cfg)
	// With flow ECMP, packets of one flow arrive in order even with equal
	// timestamps under load (single path, FIFO links).
	var lastPSN uint32
	violations := 0
	n.AttachHost(7, func(p *Packet) {
		if p.Kind != KindData {
			return
		}
		if p.PSN < lastPSN {
			violations++
		}
		lastPSN = p.PSN
	})
	psn := uint32(0)
	sim.NewTicker(n.Eng, 200*sim.Nanosecond, 0, func() {
		psn++
		ts := n.Clocks[0].Now()
		n.SendFromHost(0, &Packet{Kind: KindData, Src: 0, Dst: 7, MsgTS: ts, BarrierBE: ts, PSN: psn, Size: 1024})
	})
	n.Eng.RunUntil(1 * sim.Millisecond)
	if violations != 0 {
		t.Fatalf("%d PSN reorderings on a single flow with flow-ECMP", violations)
	}
}
