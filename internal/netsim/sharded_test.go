package netsim

import (
	"sort"
	"testing"

	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// deliveryRec is one host-level packet arrival, as observed by the attach
// callback: who sent it, its sequence number, and the engine time it was
// handed to the host.
type deliveryRec struct {
	src ProcID
	psn uint32
	at  sim.Time
}

// runShardedWorkload drives a deterministic, rng-free packet workload
// (flow ECMP, no loss, no jitter) for 200 μs on a 32-host 4-pod fabric and
// returns every host's delivery log sorted by (time, src, psn). The seed
// varies the traffic pattern, not the physics: strides and phases are
// derived from it arithmetically so the same seed produces the same offered
// load at any shard count.
func runShardedWorkload(t *testing.T, seed int64, shards int, parallel bool) [][]deliveryRec {
	t.Helper()
	topo := topology.ClosConfig{Pods: 4, RacksPerPod: 2, HostsPerRack: 4, SpinesPerPod: 2, Cores: 4}
	cfg := DefaultConfig(topo, 1)
	cfg.Seed = seed
	cfg.FlowECMP = true
	cfg.Shards = shards
	cfg.Parallel = parallel
	n := New(cfg)
	defer n.Close()

	hosts := len(n.G.Hosts)
	logs := make([][]deliveryRec, hosts)
	for hi := 0; hi < hosts; hi++ {
		hi := hi
		eng := n.HostEngine(hi)
		n.AttachHost(hi, func(pkt *Packet) {
			if pkt.Kind == KindData {
				logs[hi] = append(logs[hi], deliveryRec{pkt.Src, pkt.PSN, eng.Now()})
			}
			PutPacket(pkt)
		})
	}
	stride := 1 + int(seed%7)
	for hi := 0; hi < hosts; hi++ {
		hi := hi
		eng := n.HostEngine(hi)
		k := 0
		var send func()
		send = func() {
			dst := (hi + stride + (k*53)%(hosts-1)) % hosts
			if dst == hi {
				dst = (dst + 1) % hosts
			}
			pkt := GetPacket()
			pkt.Kind = KindData
			pkt.Src = ProcID(hi)
			pkt.Dst = ProcID(dst)
			pkt.PSN = uint32(k)
			pkt.EndOfMsg = true
			pkt.Size = 256 + HeaderBytes
			n.SendFromHost(hi, pkt)
			k++
			eng.After(sim.Time(1500+100*((hi+k)%5))*sim.Nanosecond, send)
		}
		eng.After(sim.Time(10+hi*37%500)*sim.Nanosecond, send)
	}
	n.RunFor(200 * sim.Microsecond)
	for hi := range logs {
		l := logs[hi]
		sort.Slice(l, func(i, j int) bool {
			if l[i].at != l[j].at {
				return l[i].at < l[j].at
			}
			if l[i].src != l[j].src {
				return l[i].src < l[j].src
			}
			return l[i].psn < l[j].psn
		})
	}
	return logs
}

// TestParallelShardsMatchSingleEngine checks the parallel conservative-
// lookahead drive end to end through the network layer: for an rng-free
// workload, every host's delivery log (source, PSN, arrival time) under
// parallel 2- and 4-shard execution is element-identical to the classic
// single-engine run. Arrival times — not just contents — must agree: the
// lookahead windows may reorder execution of independent events but can
// never move a packet in virtual time.
func TestParallelShardsMatchSingleEngine(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89} {
		base := runShardedWorkload(t, seed, 1, false)
		for _, shards := range []int{2, 4} {
			got := runShardedWorkload(t, seed, shards, true)
			for hi := range base {
				if len(got[hi]) != len(base[hi]) {
					t.Fatalf("seed %d shards=%d host %d: %d deliveries, want %d",
						seed, shards, hi, len(got[hi]), len(base[hi]))
				}
				for j := range base[hi] {
					if got[hi][j] != base[hi][j] {
						t.Fatalf("seed %d shards=%d host %d rec %d: %+v, want %+v",
							seed, shards, hi, j, got[hi][j], base[hi][j])
					}
				}
			}
		}
	}
}

// TestParallelDeterministicNetwork checks run-to-run determinism of the
// parallel drive at a fixed shard count (the weaker property that holds
// even for workloads whose per-shard rng streams differ from the single
// engine's).
func TestParallelDeterministicNetwork(t *testing.T) {
	a := runShardedWorkload(t, 7, 4, true)
	b := runShardedWorkload(t, 7, 4, true)
	for hi := range a {
		if len(a[hi]) != len(b[hi]) {
			t.Fatalf("host %d: %d vs %d deliveries across runs", hi, len(a[hi]), len(b[hi]))
		}
		for j := range a[hi] {
			if a[hi][j] != b[hi][j] {
				t.Fatalf("host %d rec %d: %+v vs %+v across runs", hi, j, a[hi][j], b[hi][j])
			}
		}
	}
}
