package netsim

import (
	"fmt"
	"math/rand"

	"onepipe/internal/clock"
	"onepipe/internal/obs"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Stats counts network-level events for the overhead experiments.
type Stats struct {
	PktsByKind  [8]uint64
	BytesByKind [8]uint64
	CorruptDrop uint64
	QueueDrop   uint64
	DeadDrop    uint64 // dropped on dead links/nodes
	ECNMarks    uint64
	Delivered   uint64
}

// Add accumulates o into s (per-shard stats merging).
func (s *Stats) Add(o *Stats) {
	for i := range s.PktsByKind {
		s.PktsByKind[i] += o.PktsByKind[i]
		s.BytesByKind[i] += o.BytesByKind[i]
	}
	s.CorruptDrop += o.CorruptDrop
	s.QueueDrop += o.QueueDrop
	s.DeadDrop += o.DeadDrop
	s.ECNMarks += o.ECNMarks
	s.Delivered += o.Delivered
}

// BeaconBandwidthFraction returns the fraction of total bytes that were
// beacons (Fig. 13b).
func (s *Stats) BeaconBandwidthFraction() float64 {
	var total uint64
	for _, b := range s.BytesByKind {
		total += b
	}
	if total == 0 {
		return 0
	}
	return float64(s.BytesByKind[KindBeacon]) / float64(total)
}

type linkState struct {
	id   topology.LinkID
	kind topology.LinkKind
	from topology.NodeID
	to   topology.NodeID
	bpns float64 // bytes per nanosecond; 0 = infinite
	prop sim.Time
	// src owns the egress half of the link state (busy, lastTx*,
	// lastArrival, beacon relay fields): every transmit/beacon event for
	// this link runs on src's engine. dst owns the ingress half (reg*,
	// lastRx, alive*, drained): receive events run on dst's engine. The
	// only cross-shard handoff is the transmit->receive edge, whose delay
	// is at least the link propagation — which bounds the lookahead. With
	// one shard both point at the same state and nothing changes.
	src, dst *shardState
	busy sim.Time // egress busy-until
	last sim.Time // last transmit completion (idle detection)
	// imp is the resolved impairment state for this link (nil when the
	// profile leaves it clean). Egress-owned: only transmit touches it.
	imp *ImpairState
	// lastTxBE/C track the freshest barriers already carried on this link
	// (by stamped data in chip mode, or by earlier beacons), so a beacon
	// adding no information is suppressed — the §4.2 "beacons on idle
	// links" rule generalized to sporadically-busy links.
	lastTxBE sim.Time
	lastTxC  sim.Time
	// lastArrival enforces FIFO under jitter.
	lastArrival sim.Time
	// Beacon relay state for the egress side. pendBE/pendC hold the
	// barriers captured at relay-trigger time until the beacon fires
	// (beaconPending serializes the two-step relay per link).
	beaconPending bool
	lastBeaconTx  sim.Time
	pendBE        sim.Time
	pendC         sim.Time
	// Receiver-side per-input-link state (the switch registers of §4.1).
	regBE  sim.Time
	regC   sim.Time
	lastRx sim.Time
	// alive gates the best-effort plane: the decentralized dead-link
	// scanner clears it (§4.2). aliveC gates the commit plane: when the
	// commit plane is controller-managed, it stays true until the
	// controller's Resume step so that Discard/Recall complete before
	// commit barriers advance past the failure timestamp (§5.2).
	alive  bool
	aliveC bool
	// excludedC marks a link the controller has removed from commit
	// aggregation for good: packet arrivals must not resurrect it. Needed
	// for a failed-but-running host (e.g. dead downlink only) that keeps
	// transmitting — its parked commit floor would otherwise cap the
	// cluster-wide barrier forever (§5.2: a failed process's links leave
	// the aggregation tree).
	excludedC bool
	// drained marks a link gracefully removed from (or not yet admitted
	// to) aggregation by live reconfiguration. Unlike death, the dead-link
	// scanner must never report it, and straggler packet arrivals must not
	// resurrect it — a drain is a membership change, not a failure.
	drained bool
}

type nodeState struct {
	id  topology.NodeID
	in  []topology.LinkID
	out []topology.LinkID
	// outBE/outC are the node's monotonic barrier outputs; clamping them
	// non-decreasing implements the §4.2 rule that a switch suspends
	// updates when a (re)added link's barrier lags.
	outBE sim.Time
	outC  sim.Time
	// lastRelayBE/C record the barriers most recently relayed in beacons,
	// so a relay is scheduled only when aggregation actually advanced.
	lastRelayBE sim.Time
	lastRelayC  sim.Time
}

// shardState is the per-shard execution context: the shard's engine plus
// everything the per-packet hot path touches that must not be shared
// between concurrently executing shards. A single-engine network has
// exactly one, pointing at the Network's own Eng/Stats/rng — the classic
// code path, unchanged. In lockstep sharding all shardStates share one rng
// (the global event order makes the draws identical to a single engine);
// in parallel sharding each shard gets its own stream derived from the
// root seed.
type shardState struct {
	eng   *sim.Engine
	stats *Stats
	rng   *rand.Rand
	// hopsBuf is this shard's ECMP candidate scratch; it never escapes
	// one receive call.
	hopsBuf []topology.LinkID
	// ingress lists the links whose receive side this shard owns; the
	// per-shard dead-link scanner (parallel mode) walks it.
	ingress []*linkState
}

// Network is the simulated data center network.
type Network struct {
	Eng    *sim.Engine
	G      *topology.Graph
	Cfg    Config
	Clocks []*clock.Clock // one per host
	Stats  Stats

	// Sharded operation (Cfg.Shards > 1): sh drives the shard group,
	// shardMap is the pod cut, shards the per-shard contexts, and nodeSh
	// maps every node to its owner. With one shard sh is nil and shards
	// holds a single context aliasing Eng/Stats/rng.
	sh       *sim.ShardedEngine
	shardMap topology.ShardMap
	shards   []*shardState
	nodeSh   []*shardState

	// links and nodes hold pointers, not values: scheduled events and
	// beacon-ticker closures capture *linkState/*nodeState, and Grow
	// appends at runtime — a value slice would invalidate every captured
	// pointer on reallocation.
	links []*linkState
	nodes []*nodeState
	// hostRx receives every packet (including beacons) delivered to a host.
	hostRx []func(*Packet)
	rng    *rand.Rand

	// OnLinkDead, if set, is invoked when a switch's dead-link scanner
	// removes an input link — the controller's failure Detect signal.
	OnLinkDead func(l topology.Link, lastCommit sim.Time)

	// Obs, when armed by EnableObs, receives per-switch barrier-lag and
	// egress-queue-depth gauge samples.
	Obs *obs.Trace

	tickers []*sim.Ticker

	// Capture-free event callbacks for the per-packet hops, allocated once
	// so the hot path schedules through Engine.At2 without a closure per
	// packet.
	transmitFn     func(a, b any)
	receiveFn      func(a, b any)
	deliverFn      func(a, b any)
	relayTriggerFn func(a, b any)
	relayFireFn    func(a, b any)
}

// New builds the network, its clocks and its beacon machinery.
func New(cfg Config) *Network {
	if cfg.ProcsPerHost <= 0 {
		cfg.ProcsPerHost = 1
	}
	if cfg.Oversub < 1 {
		cfg.Oversub = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	g := topology.NewClos(cfg.Topo)
	m := g.PodShards(cfg.Shards)
	if cfg.Shards > 1 {
		if _, ok := cfg.MinCrossShardLatency(g, m); !ok {
			// Degenerate cut (e.g. one pod): every node landed on shard 0,
			// so extra shards would idle. Fall back to a single engine.
			cfg.Shards = 1
			m = g.PodShards(1)
		}
	}
	n := &Network{G: g, Cfg: cfg, shardMap: m,
		rng:    rand.New(rand.NewSource(cfg.Seed + 7919)),
		hostRx: make([]func(*Packet), len(g.Hosts)),
	}
	if cfg.Shards == 1 {
		n.Eng = sim.NewEngine(cfg.Seed)
	} else {
		la, _ := cfg.MinCrossShardLatency(g, m)
		n.sh = sim.NewShardedEngine(cfg.Seed, cfg.Shards, la, cfg.Parallel)
		n.Eng = n.sh.Shard(0)
	}
	n.shards = make([]*shardState, cfg.Shards)
	for i := range n.shards {
		s := &shardState{rng: n.rng}
		if n.sh == nil {
			s.eng, s.stats = n.Eng, &n.Stats
		} else {
			s.eng = n.sh.Shard(i)
			s.stats = new(Stats)
			if cfg.Parallel {
				// Parallel shards draw loss/jitter/ECMP from their own
				// streams; lockstep shards share the root stream, whose
				// draws happen in single-engine order.
				s.rng = rand.New(rand.NewSource(shardSalt(cfg.Seed+7919, i)))
			}
		}
		n.shards[i] = s
	}
	n.nodeSh = make([]*shardState, len(g.Nodes))
	for i := range g.Nodes {
		n.nodeSh[i] = n.shards[m.Of(topology.NodeID(i))]
	}
	n.transmitFn = func(a, b any) { n.transmit(a.(*linkState), b.(*Packet)) }
	n.receiveFn = func(a, b any) { n.receive(a.(*linkState), b.(*Packet)) }
	n.deliverFn = func(a, b any) { a.(func(*Packet))(b.(*Packet)) }
	n.relayTriggerFn = func(a, b any) {
		node, ls := a.(*nodeState), b.(*linkState)
		ls.pendBE, ls.pendC = n.nodeBarriers(node)
		ls.src.eng.After2(n.beaconProcDelay(), n.relayFireFn, node, ls)
	}
	n.relayFireFn = func(a, b any) {
		ls := b.(*linkState)
		n.fireBeacon(a.(*nodeState), ls, ls.pendBE, ls.pendC)
	}
	for i := 0; i < len(g.Hosts); i++ {
		n.Clocks = append(n.Clocks, n.newHostClock(i))
	}
	n.links = make([]*linkState, len(g.Links))
	for i, l := range g.Links {
		ls := n.newLinkState(l)
		ls.alive = true
		ls.aliveC = true
		n.links[i] = ls
	}
	n.nodes = make([]*nodeState, len(g.Nodes))
	for i := range g.Nodes {
		n.nodes[i] = &nodeState{id: topology.NodeID(i), in: g.In[i], out: g.Out[i]}
	}
	if !cfg.DisableBeacons {
		n.startSwitchBeacons()
	}
	n.startDeadLinkScanner()
	return n
}

// shardSalt derives shard i's seed for an auxiliary stream.
func shardSalt(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	return seed ^ int64(uint64(i)*0x9e3779b97f4a7c15)
}

// newHostClock builds host hi's clock on its owning shard's engine. The
// construction-time offset/drift draws always come from the root engine's
// stream — in that order they are identical at every shard count — and in
// parallel mode the clock is then re-seeded with a per-host stream so
// runtime resyncs stay off the shared source.
func (n *Network) newHostClock(hi int) *clock.Clock {
	sh := n.nodeSh[n.G.Host(hi)]
	c := clock.New(sh.eng, n.Eng.Rand(), n.Cfg.Clock)
	if n.sh != nil && n.Cfg.Parallel {
		c.Reseed(rand.New(rand.NewSource(shardSalt(n.Cfg.Seed+104729, hi+1))))
	}
	return c
}

func (n *Network) newLinkState(l topology.Link) *linkState {
	ls := &linkState{
		id: l.ID, kind: l.Kind, from: l.From, to: l.To,
		prop: n.propOf(l.Kind),
		bpns: n.bandwidthOf(l.Kind),
		src:  n.nodeSh[l.From],
		dst:  n.nodeSh[l.To],
	}
	if imp := n.Cfg.Impair.For(l.ID, l.Kind); imp != nil && *imp != (Impairment{}) {
		ls.imp = NewImpairState(imp, n.Cfg.Seed, l.ID)
	}
	ls.dst.ingress = append(ls.dst.ingress, ls)
	return ls
}

func (n *Network) propOf(k topology.LinkKind) sim.Time { return n.Cfg.PropOf(k) }

func (n *Network) bandwidthOf(k topology.LinkKind) float64 {
	const bytesPerNsPerGbps = 1.0 / 8.0
	topo := n.Cfg.Topo
	switch k {
	case topology.LinkHostUp, topology.LinkTorHostDown:
		return n.Cfg.HostGbps * bytesPerNsPerGbps
	case topology.LinkLoopback:
		return 0 // infinite: virtual link inside the chip
	case topology.LinkTorSpineUp, topology.LinkSpineTorDown:
		// Full-bisection trunk (§7.1: "no oversubscription"): each ToR's
		// aggregate uplink capacity equals its host-facing capacity,
		// split across the pod's spines. Oversub shrinks it.
		trunk := n.Cfg.FabricGbps * float64(topo.HostsPerRack) / float64(topo.SpinesPerPod)
		return trunk * bytesPerNsPerGbps / n.Cfg.Oversub
	default: // spine <-> core
		trunk := n.Cfg.FabricGbps * float64(topo.RacksPerPod*topo.HostsPerRack) / float64(topo.Cores)
		return trunk * bytesPerNsPerGbps / n.Cfg.Oversub
	}
}

// NumProcs returns the total number of processes.
func (n *Network) NumProcs() int { return len(n.G.Hosts) * n.Cfg.ProcsPerHost }

// HostOfProc maps a process to its host index.
func (n *Network) HostOfProc(p ProcID) int { return int(p) / n.Cfg.ProcsPerHost }

// ClockOfProc returns the host clock a process stamps messages with.
func (n *Network) ClockOfProc(p ProcID) *clock.Clock { return n.Clocks[n.HostOfProc(p)] }

// AttachHost registers the receive callback for a host. Every packet
// destined to any process on the host — including beacons arriving on its
// ToR downlink — is delivered to rx.
func (n *Network) AttachHost(host int, rx func(*Packet)) { n.hostRx[host] = rx }

// uplink returns the host's single uplink.
func (n *Network) uplink(host int) *linkState {
	out := n.G.Out[n.G.Host(host)]
	return n.links[out[0]]
}

// SendFromHost injects a packet from a host into the network, charging host
// processing delay then the uplink. Beacon and commit packets go to the ToR
// (Dst ignored); data goes toward Dst's host. In sharded operation the call
// must come from the host's own shard (HostEngine); the uplink's egress is
// on the same shard under the pod cut.
func (n *Network) SendFromHost(host int, pkt *Packet) {
	up := n.uplink(host)
	pkt.SentAt = up.src.eng.Now()
	up.src.eng.After2(n.Cfg.HostDelay, n.transmitFn, up, pkt)
}

// HostEngine returns the engine of the shard owning host hi. Workloads
// driving a sharded network must schedule each host's events here.
func (n *Network) HostEngine(hi int) *sim.Engine { return n.nodeSh[n.G.Host(hi)].eng }

// SendFromProc is SendFromHost keyed by source process.
func (n *Network) SendFromProc(p ProcID, pkt *Packet) {
	n.SendFromHost(n.HostOfProc(p), pkt)
}

// transmit places a packet on a link's egress queue. It always executes on
// the shard owning the link's egress (l.src); the scheduled arrival is the
// one cross-shard handoff of the packet's life at this hop.
func (n *Network) transmit(l *linkState, pkt *Packet) {
	sh := l.src
	if n.G.LinkDead(l.id) {
		sh.stats.DeadDrop++
		PutPacket(pkt)
		return
	}
	now := sh.eng.Now()
	start := now
	if l.busy > start {
		start = l.busy
	}
	qdelay := start - now
	if n.Cfg.QueueLimit > 0 && qdelay > n.Cfg.QueueLimit {
		sh.stats.QueueDrop++
		PutPacket(pkt)
		return
	}
	pkt.QueueWait += qdelay
	if n.Cfg.ECNThreshold > 0 && qdelay > n.Cfg.ECNThreshold {
		pkt.ECN = true
		sh.stats.ECNMarks++
	}
	ser := sim.Time(0)
	if l.bpns > 0 {
		ser = sim.Time(float64(pkt.Size) / l.bpns)
	}
	l.busy = start + ser
	l.last = l.busy
	if pkt.Kind == KindBeacon || pkt.Kind == KindCommit || n.Cfg.Mode == ModeChip {
		if pkt.BarrierBE > l.lastTxBE {
			l.lastTxBE = pkt.BarrierBE
		}
		if pkt.BarrierC > l.lastTxC {
			l.lastTxC = pkt.BarrierC
		}
	}
	sh.stats.PktsByKind[pkt.Kind]++
	sh.stats.BytesByKind[pkt.Kind] += uint64(pkt.Size)
	// Uniform corruption: the legacy global knob when set (runtime fault
	// injection mutates it), otherwise the link profile's Loss. Either way
	// the draw comes from the shared shard RNG at this exact point, so a
	// profile-expressed LossRate replays a legacy run byte-for-byte.
	loss := n.Cfg.LossRate
	if loss == 0 && l.imp != nil {
		loss = l.imp.Imp.Loss
	}
	if loss > 0 && sh.rng.Float64() < loss {
		sh.stats.CorruptDrop++
		PutPacket(pkt) // corrupted in flight; bandwidth already consumed
		return
	}
	// Stateful loss models (Gilbert-Elliott bursts, duty-cycle windows)
	// draw from the per-link RNG — and draw nothing when unconfigured.
	if l.imp != nil && l.imp.dropBurst(now) {
		sh.stats.CorruptDrop++
		PutPacket(pkt)
		return
	}
	arrive := l.busy + l.prop
	j := n.Cfg.Jitter
	if j == 0 && l.imp != nil {
		j = l.imp.Imp.Jitter
	}
	if j > 0 {
		// Bursty delay variance: mostly a small wiggle, occasionally a
		// straggler several times the nominal jitter (transient queueing
		// behind a burst) — the delay asymmetry that makes multi-path
		// ordering hazards real (§2.2.1).
		extra := sim.Time(sh.rng.Int63n(int64(j)/3 + 1))
		if sh.rng.Intn(20) == 0 {
			extra += sim.Time(sh.rng.Int63n(int64(j) * 4))
		}
		arrive += extra
		// FIFO clamp: a jittered packet never overtakes its predecessor
		// on the same link (the barrier invariant rests on this).
		if arrive < l.lastArrival {
			arrive = l.lastArrival
		}
		l.lastArrival = arrive
	}
	if l.imp != nil {
		// ExtraDelay (RTT class) is constant per link and added after the
		// clamp: it shifts every arrival equally, preserving FIFO. The
		// reorder hold-back deliberately skips the clamp — it models a
		// non-FIFO link — and must not drag later packets via lastArrival.
		arrive += l.imp.Imp.ExtraDelay
		arrive += l.imp.reorderExtra()
	}
	// Ownership handoff: from here the packet belongs to the receive-side
	// shard. Cross-shard arrivals ride the window-barrier outbox; arrive is
	// at least l.prop >= lookahead in the future, which is what makes the
	// conservative window sound.
	sh.eng.At2On(l.dst.eng, arrive, n.receiveFn, l, pkt)
}

// receive handles packet arrival at the downstream end of a link. It
// executes on the shard owning the link's ingress (l.dst), which under the
// pod cut also owns the downstream node's registers, barriers and egress
// links — forwarding stays shard-local.
func (n *Network) receive(l *linkState, pkt *Packet) {
	sh := l.dst
	if n.G.NodeDead(l.to) {
		sh.stats.DeadDrop++
		PutPacket(pkt)
		return
	}
	now := sh.eng.Now()
	if !l.drained {
		l.lastRx = now
		l.alive = true
		if !l.excludedC {
			l.aliveC = true
		}
		// Update the per-input-link barrier registers (§4.1). With a
		// programmable chip every packet carries per-link-valid barriers
		// (rewritten each hop). With switch-CPU or host-delegate processing
		// the chip forwards data untouched, so data barriers are only valid
		// on the first (host) link — the host stamps every emission in
		// software, and with beacon piggybacking a busy uplink's standalone
		// beacons are suppressed in favor of exactly those stamps, so the
		// ToR must honor them or a continuously-loaded host's floor never
		// propagates and delivery stalls fabric-wide. Deeper links advance
		// from beacons and commit messages alone, matching §6.2.2. A
		// drained link skips all of this: straggler arrivals must not
		// re-admit it to aggregation, and its registers are pinned at
		// DrainedRegister.
		if pkt.Kind == KindBeacon || pkt.Kind == KindCommit || n.Cfg.Mode == ModeChip ||
			l.kind == topology.LinkHostUp {
			if pkt.BarrierBE > l.regBE {
				l.regBE = pkt.BarrierBE
			}
			if pkt.BarrierC > l.regC {
				l.regC = pkt.BarrierC
			}
		}
	}

	dst := n.G.Node(l.to)
	if dst.Kind == topology.KindHost {
		sh.stats.Delivered++
		host := n.G.HostIndex(l.to)
		if rx := n.hostRx[host]; rx != nil {
			// Ownership transfers to the host layer: core's receive path
			// releases the packet once it is terminally consumed.
			sh.eng.After2(n.Cfg.HostDelay, n.deliverFn, rx, pkt)
		} else {
			PutPacket(pkt)
		}
		return
	}

	// Aggregation advanced? Relay updated barriers downstream. With
	// synchronized beacon phases all inputs update near-simultaneously, so
	// this fires about once per interval per node and keeps the idle
	// barrier lag near one beacon interval end to end rather than one
	// interval per hop.
	node := n.nodes[l.to]
	be, c := n.nodeBarriers(node)
	if !n.Cfg.DisableBeacons && !n.Cfg.DisableEventRelay && (be > node.lastRelayBE || c > node.lastRelayC) {
		n.scheduleRelays(node)
	}

	switch pkt.Kind {
	case KindBeacon, KindCommit:
		// Hop-by-hop: consumed here; the barrier they carried now lives in
		// the input-link registers and will propagate via this switch's
		// own egress stamping and beacons.
		PutPacket(pkt)
		return
	}

	// Forward toward the destination host. The chip incarnation stamps
	// the aggregated barriers here, at the fixed-latency pipeline's entry:
	// every packet of this logical switch passes one uniform pipeline, so
	// stamp order equals wire order on every egress — the property the
	// per-link barrier promise rests on.
	if n.Cfg.Mode == ModeChip {
		pkt.BarrierBE, pkt.BarrierC = be, c
	}
	dstHost := n.G.Host(n.HostOfProc(pkt.Dst))
	sh.hopsBuf = n.G.AppendNextHops(sh.hopsBuf[:0], l.to, dstHost)
	hops := sh.hopsBuf
	if len(hops) == 0 {
		sh.stats.DeadDrop++
		PutPacket(pkt)
		return
	}
	var out topology.LinkID
	if len(hops) == 1 {
		out = hops[0]
	} else if n.Cfg.FlowECMP {
		h := uint32(pkt.Src)*2654435761 + uint32(pkt.Dst)*40503
		out = hops[h%uint32(len(hops))]
	} else {
		out = hops[sh.rng.Intn(len(hops))]
	}
	// A uniform pipeline latency per logical switch: a physical switch is
	// two logical halves (Fig. 3), each charging half the physical
	// forwarding delay. Uniformity — including for loopback-entered
	// packets — is load-bearing: different in-switch latencies would let
	// a later-stamped packet overtake an earlier one onto the same
	// egress, breaking barrier monotonicity on the link.
	fwd := n.Cfg.SwitchFwdDelay
	if n.Cfg.NonuniformPipeline && l.kind == topology.LinkLoopback {
		fwd = 0 // chaos-harness self-test: the pre-fix nonuniform pipeline
	}
	// The chosen egress leaves this node, whose shard we are on: the
	// forwarding hop never crosses shards.
	sh.eng.After2(fwd, n.transmitFn, n.links[out], pkt)
}

// nodeBarriers computes the per-plane min over live input links, clamped
// non-decreasing.
func (n *Network) nodeBarriers(node *nodeState) (be, c sim.Time) {
	firstBE, firstC := true, true
	var minBE, minC sim.Time
	for _, lid := range node.in {
		l := n.links[lid]
		// Best-effort plane: a link removed by the scanner or dead in the
		// topology stops contributing. Commit plane: the last register of
		// a dead link keeps gating the min until the controller's Resume
		// step clears aliveC — otherwise commit barriers could pass the
		// failure timestamp before Discard/Recall complete (§5.2).
		if l.alive && !n.G.LinkDead(lid) {
			if firstBE || l.regBE < minBE {
				minBE = l.regBE
				firstBE = false
			}
		}
		if l.aliveC {
			if firstC || l.regC < minC {
				minC = l.regC
				firstC = false
			}
		}
	}
	if !firstBE && minBE > node.outBE {
		node.outBE = minBE
	}
	if !firstC && minC > node.outC {
		node.outC = minC
	}
	return node.outBE, node.outC
}

// NodeBarriers exposes a switch's current aggregated barriers (used by the
// controller to read last-commit state during failure handling).
func (n *Network) NodeBarriers(id topology.NodeID) (be, c sim.Time) {
	return n.nodeBarriers(n.nodes[id])
}

// LinkRegisters exposes an input link's barrier registers.
func (n *Network) LinkRegisters(id topology.LinkID) (be, c sim.Time) {
	return n.links[id].regBE, n.links[id].regC
}

// beaconProcDelay is the per-hop cost of generating a barrier beacon in the
// current incarnation: a pipeline pass for the chip, CPU processing for the
// switch CPU, and a switch-host round trip plus host processing for the
// delegate (§6.2).
func (n *Network) beaconProcDelay() sim.Time {
	switch n.Cfg.Mode {
	case ModeSwitchCPU:
		return n.Cfg.CPUBeaconDelay
	case ModeHostDelegate:
		return n.Cfg.HostDelegateDelay
	default:
		return n.Cfg.SwitchFwdDelay
	}
}

// scheduleRelays arms a beacon on every egress link of a switch whose
// aggregated barrier advanced, rate-limited to one beacon per link per
// interval. Each relay is a two-step event: at trigger time the barrier
// stamp is captured — the same instant data packets passing through would
// be stamped — and the beacon enters the egress queue one processing delay
// later, so a beacon can never overtake a data packet whose timestamp its
// barrier does not cover. A rate-limit deferral moves the trigger itself,
// so the stamp is always fresh at capture.
func (n *Network) scheduleRelays(node *nodeState) {
	for _, lid := range node.out {
		n.armRelay(node, n.links[lid])
	}
}

func (n *Network) armRelay(node *nodeState, ls *linkState) {
	if ls.beaconPending || ls.drained || n.G.LinkDead(ls.id) {
		return
	}
	ls.beaconPending = true
	proc := n.beaconProcDelay()
	trigger := ls.src.eng.Now()
	if earliest := ls.lastBeaconTx + n.Cfg.BeaconInterval - proc; earliest > trigger {
		trigger = earliest
	}
	// Two allocation-free steps: the trigger captures the barrier stamp
	// into ls.pendBE/pendC (beaconPending serializes access), the fire
	// step emits it one processing delay later. Relays stay on the shard
	// owning the node (= the egress links' shard under the pod cut).
	ls.src.eng.At2(trigger, n.relayTriggerFn, node, ls)
}

// fireBeacon emits a beacon carrying barriers captured at trigger time on
// one egress link. In chip mode a link that recently carried stamped
// traffic needs no beacon (§4.2: beacons are for idle links only).
func (n *Network) fireBeacon(node *nodeState, ls *linkState, be, c sim.Time) {
	ls.beaconPending = false
	if ls.drained || n.G.LinkDead(ls.id) || n.G.NodeDead(node.id) {
		return
	}
	now := ls.src.eng.Now()
	if node.lastRelayBE < be {
		node.lastRelayBE = be
	}
	if node.lastRelayC < c {
		node.lastRelayC = c
	}
	if be <= ls.lastTxBE && c <= ls.lastTxC {
		return // traffic on this link already carried these barriers
	}
	ls.lastBeaconTx = now
	pkt := GetPacket()
	pkt.Kind, pkt.BarrierBE, pkt.BarrierC, pkt.Size = KindBeacon, be, c, BeaconBytes
	n.transmit(ls, pkt)
}

// startSwitchBeacons arms the fallback ticker per switch egress link: if no
// beacon (or, for the chip, no stamped traffic) was sent for a full
// interval, one is generated. The event-driven relay path above carries the
// common case; the ticker guarantees liveness after beacon loss or when
// upstream barriers stall.
func (n *Network) startSwitchBeacons() {
	for _, ls := range n.links {
		if n.G.Node(ls.from).Kind == topology.KindHost {
			continue // host beacons are generated by the attached 1Pipe endpoint
		}
		n.armSwitchBeaconTicker(ls)
	}
}

// armSwitchBeaconTicker arms the fallback beacon ticker of one switch
// egress link; Grow calls it for links appended at runtime.
func (n *Network) armSwitchBeaconTicker(ls *linkState) {
	node := n.nodes[ls.from]
	tk := sim.NewTicker(ls.src.eng, n.Cfg.BeaconInterval, 0, func() {
		if n.G.NodeDead(ls.from) {
			return
		}
		// Pure liveness fallback: stay out of the way of the
		// event-driven relay wave, which self-clocks at one beacon
		// per interval — competing with it would steal its
		// rate-limit slot and add a full interval of barrier lag.
		// (With event relays ablated away, the ticker IS the relay
		// and runs every interval, as the paper describes.)
		holdoff := 2 * n.Cfg.BeaconInterval
		if n.Cfg.DisableEventRelay {
			holdoff = n.Cfg.BeaconInterval
		}
		if ls.src.eng.Now()-ls.lastBeaconTx < holdoff {
			return
		}
		n.armRelay(node, ls)
	})
	n.tickers = append(n.tickers, tk)
}

// startDeadLinkScanner arms the per-switch input-link timeout (§4.2):
// after DeadLinkBeacons silent intervals an input link is removed from
// aggregation and the controller hook is notified once.
func (n *Network) startDeadLinkScanner() {
	if n.Cfg.DeadLinkBeacons <= 0 || n.Cfg.DisableBeacons {
		return
	}
	if n.sh != nil && n.Cfg.Parallel {
		// Parallel shards must not read other shards' ingress state: each
		// shard scans only the links it owns the receive side of. (The
		// single global scanner below would race; in lockstep it is kept
		// precisely because its one-event scan order matches the classic
		// engine event for event.)
		for _, sh := range n.shards {
			sh := sh
			tk := sim.NewTicker(sh.eng, n.Cfg.BeaconInterval, 0, func() {
				n.scanLinks(sh.eng.Now(), sh.ingress)
			})
			n.tickers = append(n.tickers, tk)
		}
		return
	}
	tk := sim.NewTicker(n.Eng, n.Cfg.BeaconInterval, 0, func() {
		n.scanLinks(n.Eng.Now(), n.links)
	})
	n.tickers = append(n.tickers, tk)
}

// scanLinks is one dead-link scan pass (§4.2): after DeadLinkBeacons silent
// intervals an input link is removed from aggregation and reported once.
func (n *Network) scanLinks(now sim.Time, links []*linkState) {
	timeout := sim.Time(n.Cfg.DeadLinkBeacons) * n.Cfg.BeaconInterval
	for _, l := range links {
		// Host-terminating links are scanned too: §4.2's detection runs
		// in lib1pipe's polling thread as much as in switches, and a
		// host whose downlink went silent must be reported so the
		// controller can fail it (it will never deliver again). A
		// drained link is silent by design — graceful departure must
		// never masquerade as a failure, so it is skipped before the
		// timeout check rather than relying on alive alone (a straggler
		// cannot resurrect it either; receive checks drained too).
		if l.drained || !l.alive {
			continue
		}
		if now-l.lastRx > timeout {
			l.alive = false
			if !n.Cfg.ControllerManagedCommit {
				l.aliveC = false
			}
			// Removing the slowest input usually advances the min:
			// relay the unblocked barrier immediately (§4.2).
			n.scheduleRelays(n.nodes[l.to])
			if n.OnLinkDead != nil {
				n.OnLinkDead(n.G.Link(l.id), l.regC)
			}
		}
	}
}

// EnableObs arms a sampler that records, every interval, how far each
// switch's aggregated barriers trail the true simulation clock
// (SpanSwitchLagBE/C — the in-network contribution to delivery latency)
// and the current queueing backlog of every switch egress link
// (SpanSwitchQDepth). Host nodes are skipped: their barrier state lives in
// the core endpoint, not in the fabric. Returns the trace for merging into
// experiment reports.
//
// The sampler reads every switch's state from one ticker, so it is only
// valid on single-engine and lockstep networks; it panics on a parallel
// one rather than race on cross-shard reads.
func (n *Network) EnableObs(interval sim.Time) *obs.Trace {
	if n.sh != nil && n.Cfg.Parallel {
		panic("netsim: EnableObs is not supported on a parallel sharded network")
	}
	if n.Obs != nil {
		return n.Obs
	}
	if interval <= 0 {
		interval = n.Cfg.BeaconInterval
	}
	n.Obs = obs.NewTrace()
	tk := sim.NewTicker(n.Eng, interval, 0, func() {
		now := n.Eng.Now()
		for _, node := range n.nodes {
			if n.G.Node(node.id).Kind == topology.KindHost || n.G.NodeDead(node.id) || n.G.NodeDrained(node.id) {
				continue
			}
			n.Obs.Rec(obs.SpanSwitchLagBE, now-node.outBE)
			n.Obs.Rec(obs.SpanSwitchLagC, now-node.outC)
			for _, lid := range node.out {
				l := n.links[lid]
				depth := l.busy - now
				if depth < 0 {
					depth = 0
				}
				n.Obs.Rec(obs.SpanSwitchQDepth, depth)
			}
		}
	})
	n.tickers = append(n.tickers, tk)
	return n.Obs
}

// CommitGatedLinks lists input links that the best-effort scanner has
// removed but that still gate the commit plane, awaiting the controller's
// Resume step.
func (n *Network) CommitGatedLinks() []topology.LinkID {
	var out []topology.LinkID
	for _, l := range n.links {
		if !l.alive && l.aliveC {
			out = append(out, l.id)
		}
	}
	return out
}

// ResumeCommitPlane removes a dead input link from commit-plane aggregation.
// The controller calls this in its Resume step, after every correct process
// has finished Discard, Recall and its failure callbacks (§5.2).
func (n *Network) ResumeCommitPlane(id topology.LinkID) {
	l := n.links[id]
	l.aliveC = false
	n.scheduleRelays(n.nodes[l.to])
}

// ExcludeCommitPlane permanently removes a link from commit-plane
// aggregation: unlike ResumeCommitPlane, later packet arrivals do not
// re-admit it. The controller calls this for the remaining live links of a
// process it has declared failed — a failed host that can still transmit
// (only its receive path died) would otherwise keep a parked commit floor
// in the aggregation and cap the cluster-wide barrier (§5.2).
func (n *Network) ExcludeCommitPlane(id topology.LinkID) {
	l := n.links[id]
	l.excludedC = true
	l.aliveC = false
	n.scheduleRelays(n.nodes[l.to])
}

// DrainedRegister is the sentinel the registers of a drained link are
// raised to: any aggregation that accidentally included it could only
// advance the minimum, never regress it. MaxBarrier skips it.
const DrainedRegister = sim.Time(1) << 62

// Grow extends the simulator's state to cover nodes and links appended to
// the topology since construction (or the previous Grow). New links start
// drained — invisible to aggregation, beacons and the dead-link scanner —
// until AdmitLink seeds their registers and admits them (two-phase
// prepare/activate). New hosts get a clock and an empty receive hook.
// Adjacency views of existing nodes are refreshed, since topology growth
// may have reallocated the underlying slices. Returns the new link IDs.
func (n *Network) Grow() []topology.LinkID {
	g := n.G
	now := n.Eng.Now()
	n.shardMap.Grow(g)
	for i := len(n.nodes); i < len(g.Nodes); i++ {
		n.nodes = append(n.nodes, &nodeState{id: topology.NodeID(i)})
		n.nodeSh = append(n.nodeSh, n.shards[n.shardMap.Of(topology.NodeID(i))])
	}
	for hi := len(n.Clocks); hi < len(g.Hosts); hi++ {
		n.Clocks = append(n.Clocks, n.newHostClock(hi))
		n.hostRx = append(n.hostRx, nil)
	}
	var added []topology.LinkID
	for i := len(n.links); i < len(g.Links); i++ {
		ls := n.newLinkState(g.Links[i])
		ls.drained = true
		ls.lastRx = now
		n.links = append(n.links, ls)
		added = append(added, ls.id)
	}
	for i, node := range n.nodes {
		node.in, node.out = g.In[i], g.Out[i]
	}
	// Ticker arming needs the refreshed adjacency in place.
	if !n.Cfg.DisableBeacons {
		for _, lid := range added {
			ls := n.links[lid]
			if g.Node(ls.from).Kind != topology.KindHost {
				n.armSwitchBeaconTicker(ls)
			}
		}
	}
	return added
}

// AdmitLink seeds an input link's §4.1 registers and admits it to barrier
// aggregation — the activate step of a two-phase join. Callers derive the
// seed from the join epoch T_join; AdmitLink additionally clamps it to the
// downstream node's current aggregated output, so admitting a link can
// never hold the minimum below where it already advanced.
func (n *Network) AdmitLink(id topology.LinkID, seedBE, seedC sim.Time) {
	l := n.links[id]
	node := n.nodes[l.to]
	if node.outBE > seedBE {
		seedBE = node.outBE
	}
	if node.outC > seedC {
		seedC = node.outC
	}
	if seedBE > l.regBE {
		l.regBE = seedBE
	}
	if seedC > l.regC {
		l.regC = seedC
	}
	l.drained = false
	l.excludedC = false
	l.alive = true
	l.aliveC = true
	l.lastRx = n.Eng.Now()
	if n.G.Node(l.to).Kind != topology.KindHost {
		n.scheduleRelays(node)
	}
}

// DrainLink gracefully removes an input link from aggregation: registers
// are raised to DrainedRegister and the drained flag keeps both the
// dead-link scanner and straggler packet arrivals from ever treating the
// ensuing silence as a failure — no OnLinkDead report, no failure
// timestamp, no Recall.
func (n *Network) DrainLink(id topology.LinkID) {
	l := n.links[id]
	l.drained = true
	l.alive = false
	l.aliveC = false
	l.excludedC = true
	l.regBE, l.regC = DrainedRegister, DrainedRegister
	if n.G.Node(l.to).Kind != topology.KindHost {
		// Removing an input can only advance the min: relay it.
		n.scheduleRelays(n.nodes[l.to])
	}
}

// LinkDrained reports whether a link is currently drained (or grown but
// not yet admitted).
func (n *Network) LinkDrained(id topology.LinkID) bool { return n.links[id].drained }

// MaxBarrier returns the largest barrier value present anywhere in the
// fabric — input-link registers, in-flight egress stamps and aggregated
// switch outputs on both planes, drained links excluded. Join epochs are
// chosen above it plus a skew bound covering ahead-running host clocks.
func (n *Network) MaxBarrier() sim.Time {
	var max sim.Time
	for _, l := range n.links {
		if l.drained {
			continue
		}
		for _, t := range [4]sim.Time{l.regBE, l.regC, l.lastTxBE, l.lastTxC} {
			if t > max {
				max = t
			}
		}
	}
	for _, node := range n.nodes {
		if node.outBE > max {
			max = node.outBE
		}
		if node.outC > max {
			max = node.outC
		}
	}
	return max
}

// Sharded reports the shard group driving the network, or nil for the
// classic single engine.
func (n *Network) Sharded() *sim.ShardedEngine { return n.sh }

// ShardCount returns the number of shard engines (1 for the classic
// single-engine network; may be lower than Cfg asked for if the cut was
// degenerate).
func (n *Network) ShardCount() int { return len(n.shards) }

// Now returns the completed virtual time of the simulation.
func (n *Network) Now() sim.Time {
	if n.sh != nil {
		return n.sh.Now()
	}
	return n.Eng.Now()
}

// RunFor advances the simulation by d, through the shard group when the
// network is sharded. Callers must use this (or RunUntil) instead of
// driving Eng directly so sharded networks execute all shards.
func (n *Network) RunFor(d sim.Time) {
	if n.sh != nil {
		n.sh.RunFor(d)
		return
	}
	n.Eng.RunFor(d)
}

// RunUntil advances the simulation to the absolute time deadline.
func (n *Network) RunUntil(deadline sim.Time) {
	if n.sh != nil {
		n.sh.RunUntil(deadline)
		return
	}
	n.Eng.RunUntil(deadline)
}

// DrainEvents empties every event queue, returning the count of live
// events that never executed (Engine.Drain aggregated over shards).
func (n *Network) DrainEvents() int {
	if n.sh != nil {
		return n.sh.Drain()
	}
	return n.Eng.Drain()
}

// TotalStats merges the per-shard network statistics. On a single-engine
// network it is exactly the Stats field.
func (n *Network) TotalStats() Stats {
	if n.sh == nil {
		return n.Stats
	}
	t := n.Stats
	for _, sh := range n.shards {
		t.Add(sh.stats)
	}
	return t
}

// ExecutedEvents returns the total number of events executed so far,
// summed over shards.
func (n *Network) ExecutedEvents() uint64 {
	if n.sh != nil {
		return n.sh.ExecutedTotal()
	}
	return n.Eng.Executed
}

// Stop halts all periodic activity so the event queue can drain.
func (n *Network) Stop() {
	for _, tk := range n.tickers {
		tk.Stop()
	}
	n.tickers = nil
}

// Close releases the shard worker goroutines of a parallel network. The
// network cannot run afterwards. A no-op for single-engine and lockstep
// networks.
func (n *Network) Close() {
	if n.sh != nil {
		n.sh.Close()
	}
}

// String summarizes the network for logs.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{hosts=%d procs=%d mode=%s beacon=%v}",
		len(n.G.Hosts), n.NumProcs(), n.Cfg.Mode, n.Cfg.BeaconInterval)
}
