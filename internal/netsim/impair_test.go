package netsim

import (
	"math"
	"testing"

	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// TestGEStatistics drives the Gilbert-Elliott chain over many packets and
// checks the empirical average loss and mean burst length against the
// analytic values (avg = PGB/(PGB+PBG), mean burst = 1/PBG).
func TestGEStatistics(t *testing.T) {
	const (
		avgLoss   = 0.05
		meanBurst = 8.0
		packets   = 400000
	)
	st := NewImpairState(&Impairment{GE: BurstLoss(avgLoss, meanBurst)}, 42, 7)
	drops, bursts, cur := 0, 0, 0
	for i := 0; i < packets; i++ {
		if st.dropBurst(0) {
			drops++
			cur++
		} else if cur > 0 {
			bursts++
			cur = 0
		}
	}
	if cur > 0 {
		bursts++
	}
	emp := float64(drops) / packets
	if math.Abs(emp-avgLoss) > 0.2*avgLoss {
		t.Errorf("empirical loss %.4f, want %.4f ±20%%", emp, avgLoss)
	}
	empBurst := float64(drops) / float64(bursts)
	if math.Abs(empBurst-meanBurst) > 0.15*meanBurst {
		t.Errorf("empirical mean burst %.2f, want %.2f ±15%%", empBurst, meanBurst)
	}
}

// TestGEDrawsNothingWhenUnset: a link whose impairment has no stateful loss
// model must not consume the per-link RNG on the drop path (the determinism
// contract: enabling GE on one link never perturbs another link's stream).
func TestGEDrawsNothingWhenUnset(t *testing.T) {
	st := NewImpairState(&Impairment{ExtraDelay: sim.Microsecond}, 1, 3)
	before := st.rng.Int63()
	st2 := NewImpairState(&Impairment{ExtraDelay: sim.Microsecond}, 1, 3)
	for i := 0; i < 100; i++ {
		if st2.dropBurst(sim.Time(i)) {
			t.Fatal("unexpected drop")
		}
		if st2.reorderExtra() != 0 {
			t.Fatal("unexpected reorder")
		}
	}
	if got := st2.rng.Int63(); got != before {
		t.Errorf("drop/reorder path consumed RNG draws with no stateful model configured")
	}
}

// TestDutyCycleWindows: duty-cycle loss drops everything inside On windows
// and nothing outside them when Rate defaults to 1.
func TestDutyCycleWindows(t *testing.T) {
	st := NewImpairState(&Impairment{
		Duty: &DutyCycle{On: 10 * sim.Microsecond, Off: 90 * sim.Microsecond},
	}, 9, 1)
	period := 100 * sim.Microsecond
	for cycle := 0; cycle < 3; cycle++ {
		base := sim.Time(cycle) * period
		if !st.dropBurst(base + 5*sim.Microsecond) {
			t.Errorf("cycle %d: packet inside On window survived", cycle)
		}
		if st.dropBurst(base + 50*sim.Microsecond) {
			t.Errorf("cycle %d: packet inside Off window dropped", cycle)
		}
	}
}

// TestProfileResolution checks most-specific-wins: ByLink over ByKind over
// Default, and that a nil profile resolves to nil everywhere.
func TestProfileResolution(t *testing.T) {
	var nilP *Profile
	if nilP.For(1, topology.LinkHostUp) != nil {
		t.Fatal("nil profile must resolve nil")
	}
	def := &Impairment{Loss: 0.1}
	kind := &Impairment{Loss: 0.2}
	link := &Impairment{Loss: 0.3}
	p := &Profile{
		Default: def,
		ByKind:  map[topology.LinkKind]*Impairment{topology.LinkHostUp: kind},
		ByLink:  map[topology.LinkID]*Impairment{7: link},
	}
	if got := p.For(7, topology.LinkHostUp); got != link {
		t.Errorf("ByLink should win, got %+v", got)
	}
	if got := p.For(8, topology.LinkHostUp); got != kind {
		t.Errorf("ByKind should win, got %+v", got)
	}
	if got := p.For(8, topology.LinkLoopback); got != def {
		t.Errorf("Default should apply, got %+v", got)
	}
}

// TestBurstLossDerivation: the convenience constructor must hit the asked-for
// stationary loss rate and burst length analytically.
func TestBurstLossDerivation(t *testing.T) {
	ge := BurstLoss(0.02, 5)
	pi := ge.PGoodBad / (ge.PGoodBad + ge.PBadGood)
	if math.Abs(pi-0.02) > 1e-12 {
		t.Errorf("stationary bad prob %.6f, want 0.02", pi)
	}
	if math.Abs(1/ge.PBadGood-5) > 1e-12 {
		t.Errorf("mean burst %.3f, want 5", 1/ge.PBadGood)
	}
}

// TestUniformLossProfileMatchesLegacy runs the same small fabric workload
// with Cfg.LossRate and with the equivalent UniformLoss profile and demands
// identical drop counts — the draw-for-draw compatibility the deprecation
// note promises.
func TestUniformLossProfileMatchesLegacy(t *testing.T) {
	run := func(mut func(*Config)) uint64 {
		topo := topology.ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1}
		cfg := DefaultConfig(topo, 1)
		cfg.Seed = 77
		mut(&cfg)
		n := New(cfg)
		for i := 0; i < 400; i++ {
			src := ProcID(i % 4)
			n.SendFromProc(src, &Packet{Kind: KindData, Src: src, Dst: ProcID((i + 1) % 4), Size: 256})
			n.Eng.RunFor(500 * sim.Nanosecond)
		}
		n.Eng.RunFor(100 * sim.Microsecond)
		return n.Stats.CorruptDrop
	}
	legacyDrops := run(func(c *Config) { c.LossRate = 0.08; c.Jitter = 300 * sim.Nanosecond })
	profileDrops := run(func(c *Config) {
		c.Impair = &Profile{Default: &Impairment{Loss: 0.08, Jitter: 300 * sim.Nanosecond}}
	})
	if legacyDrops == 0 {
		t.Fatal("legacy run dropped nothing; workload too small")
	}
	if legacyDrops != profileDrops {
		t.Errorf("drops differ: legacy %d, profile %d", legacyDrops, profileDrops)
	}
}
