// Package clock models PTP-style synchronized host clocks.
//
// 1Pipe stamps every message with its host's monotonic clock and relies on
// clock synchronization only for performance: skew delays barrier
// advancement by up to the skew but never violates correctness (§4.1). This
// model captures exactly that: each host clock has an offset from true
// (simulation) time and a drift rate, re-disciplined every sync interval,
// and its reads are forced non-decreasing.
package clock

import (
	"math/rand"

	"onepipe/internal/sim"
)

// Config parameterizes the clock fleet. The defaults reproduce the paper's
// testbed: PTP sync every 125 ms with 0.3 μs average skew and 1.0 μs at the
// 95th percentile (§7.1).
type Config struct {
	// SyncInterval is the period between clock disciplines.
	SyncInterval sim.Time
	// MaxOffset bounds the residual offset right after a sync.
	MaxOffset sim.Time
	// MaxDriftPPM bounds the oscillator drift rate in parts per million.
	MaxDriftPPM float64
}

// DefaultConfig returns the testbed clock parameters.
func DefaultConfig() Config {
	return Config{
		SyncInterval: 125 * sim.Millisecond,
		MaxOffset:    600 * sim.Nanosecond, // uniform ±0.6us -> mean |skew| 0.3us
		MaxDriftPPM:  2,
	}
}

// Perfect returns a configuration with zero skew and drift, useful for
// isolating protocol latency from clock error in experiments.
func Perfect() Config {
	return Config{SyncInterval: 125 * sim.Millisecond}
}

// Clock is one host's synchronized monotonic clock.
type Clock struct {
	eng      *sim.Engine
	cfg      Config
	rng      *rand.Rand
	offset   float64 // ns offset from true time at last sync
	driftPPM float64
	syncedAt sim.Time // true time of last sync
	lastRead sim.Time // enforces monotonic non-decreasing reads
}

// New creates a clock with randomized initial offset and drift.
func New(eng *sim.Engine, rng *rand.Rand, cfg Config) *Clock {
	c := &Clock{eng: eng, cfg: cfg, rng: rng}
	c.resync()
	return c
}

func (c *Clock) resync() {
	if c.cfg.MaxOffset > 0 {
		c.offset = (c.rng.Float64()*2 - 1) * float64(c.cfg.MaxOffset)
	} else {
		c.offset = 0
	}
	if c.cfg.MaxDriftPPM > 0 {
		c.driftPPM = (c.rng.Float64()*2 - 1) * c.cfg.MaxDriftPPM
	} else {
		c.driftPPM = 0
	}
	c.syncedAt = c.eng.Now()
}

// Now returns the host's current timestamp in nanoseconds. Reads are
// non-decreasing even across a backwards discipline step, matching the
// paper's requirement that host timestamps are monotonic.
func (c *Clock) Now() sim.Time {
	trueNow := c.eng.Now()
	if c.cfg.SyncInterval > 0 && trueNow-c.syncedAt >= c.cfg.SyncInterval {
		c.resync()
	}
	elapsed := float64(trueNow - c.syncedAt)
	t := trueNow + sim.Time(c.offset+elapsed*c.driftPPM/1e6)
	if t < c.lastRead {
		t = c.lastRead
	}
	c.lastRead = t
	return t
}

// Reseed replaces the clock's random source. The parallel sharded simulator
// uses it to give each host clock a stream derived from the root seed and
// the host index: the construction-time draws already happened on the
// shared stream (identically at every shard count), but runtime resyncs on
// a shard goroutine must not touch a source shared across shards.
func (c *Clock) Reseed(rng *rand.Rand) { c.rng = rng }

// AdvanceTo forces all subsequent reads to be at least t. Live
// reconfiguration uses it to push a joining host's clock above the join
// epoch T_join: the host's first timestamps must not fall below the value
// its pre-seeded link registers already promised to the fabric.
func (c *Clock) AdvanceTo(t sim.Time) {
	if t > c.lastRead {
		c.lastRead = t
	}
}

// Skew returns the clock's current deviation from true time; experiments
// use it to report measured skew distributions.
func (c *Clock) Skew() sim.Time {
	return c.Now() - c.eng.Now()
}
