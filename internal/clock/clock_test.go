package clock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

func TestPerfectClockTracksSimTime(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, eng.Rand(), Perfect())
	for _, at := range []sim.Time{0, 100, 5000, 1e9} {
		eng.RunUntil(at)
		if got := c.Now(); got != at {
			t.Fatalf("perfect clock at %v reads %v", at, got)
		}
	}
}

func TestClockMonotonic(t *testing.T) {
	eng := sim.NewEngine(2)
	c := New(eng, eng.Rand(), DefaultConfig())
	last := sim.Time(-1)
	for i := 0; i < 10000; i++ {
		eng.RunFor(sim.Time(eng.Rand().Intn(100000)))
		now := c.Now()
		if now < last {
			t.Fatalf("clock went backwards: %v -> %v", last, now)
		}
		last = now
	}
}

func TestClockMonotonicAcrossResync(t *testing.T) {
	// Force large offsets so resyncs would step backwards without the clamp.
	eng := sim.NewEngine(3)
	cfg := Config{SyncInterval: 1 * sim.Millisecond, MaxOffset: 100 * sim.Microsecond}
	c := New(eng, eng.Rand(), cfg)
	last := sim.Time(-1)
	for i := 0; i < 5000; i++ {
		eng.RunFor(100 * sim.Microsecond)
		now := c.Now()
		if now < last {
			t.Fatalf("clock went backwards across resync: %v -> %v", last, now)
		}
		last = now
	}
}

func TestSkewBounded(t *testing.T) {
	eng := sim.NewEngine(4)
	cfg := DefaultConfig()
	var sample stats.Sample
	clocks := make([]*Clock, 32)
	for i := range clocks {
		clocks[i] = New(eng, eng.Rand(), cfg)
	}
	for i := 0; i < 200; i++ {
		eng.RunFor(10 * sim.Millisecond)
		for _, c := range clocks {
			sk := float64(c.Skew())
			if sk < 0 {
				sk = -sk
			}
			sample.Add(sk / 1000) // us
		}
	}
	// Offset uniform ±0.6us plus sub-us drift: mean |skew| should be near
	// 0.3us and never beyond ~1.5us.
	if m := sample.Mean(); m < 0.1 || m > 0.6 {
		t.Fatalf("mean |skew| = %.3f us, want ~0.3", m)
	}
	if mx := sample.Max(); mx > 1.5 {
		t.Fatalf("max |skew| = %.3f us, too large", mx)
	}
}

func TestDriftAccumulatesBetweenSyncs(t *testing.T) {
	eng := sim.NewEngine(5)
	cfg := Config{SyncInterval: sim.Second, MaxOffset: 0, MaxDriftPPM: 100}
	c := New(eng, eng.Rand(), cfg)
	eng.RunUntil(sim.Second / 2)
	sk := c.Skew()
	if sk == 0 {
		t.Fatal("expected nonzero drift accumulation")
	}
	// 100 ppm over 0.5s is at most 50us.
	if sk > 50*sim.Microsecond || sk < -50*sim.Microsecond {
		t.Fatalf("skew %v exceeds drift bound", sk)
	}
}

// Property: reads are monotonic for any sequence of time advances and any
// clock configuration.
func TestMonotonicProperty(t *testing.T) {
	f := func(seed int64, steps []uint16, maxOffUs, syncMs uint8) bool {
		eng := sim.NewEngine(seed)
		cfg := Config{
			SyncInterval: sim.Time(syncMs%50+1) * sim.Millisecond,
			MaxOffset:    sim.Time(maxOffUs) * sim.Microsecond,
			MaxDriftPPM:  float64(maxOffUs % 10),
		}
		c := New(eng, rand.New(rand.NewSource(seed)), cfg)
		last := sim.Time(-1)
		for _, s := range steps {
			eng.RunFor(sim.Time(s) * sim.Microsecond)
			now := c.Now()
			if now < last {
				return false
			}
			last = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
