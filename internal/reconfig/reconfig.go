// Package reconfig implements epoch-based live reconfiguration of a
// running 1Pipe fabric: host join/leave and switch add/drain without
// stopping traffic and without ever regressing any receiver's delivered
// barrier.
//
// Every membership change is an epoch, durably decided through the
// Raft-backed controller before the fabric is touched (when a controller
// is attached). Joins are two-phase: the grown topology is prepared
// invisible to routing and barrier aggregation, then activated atomically
// once the epoch commits. The activation seeds every new input-link
// register so the aggregated minimum can only move forward:
//
//   - A link leaving the joining host is seeded at the effective join
//     epoch eff = max(T_join, downstream aggregated outputs), and the
//     host's clock and timestamp floor are forced above eff first — the
//     host can never emit below what its register promised.
//   - Any other new link is seeded at its upstream node's current
//     aggregated output: min-aggregation along the routing DAG is
//     monotone, so everything the upstream node emits later carries at
//     least that barrier.
//
// Drains are the graceful dual of §5.2 failure handling, sharing none of
// its machinery: the departing component flushes its send window, its
// registers are raised to the drained sentinel and removed from
// aggregation, and routing stops using it. No failure timestamp is
// assigned, no Recall is initiated, no OnStuck report fires. In-flight
// sends toward a departed host resolve through the ordinary send-failure
// path. A host dying mid-join is resolved by the existing §5.2 pipeline:
// the Raft-recorded epoch pins its registers at T_join, so its failure
// timestamp can never precede the epoch.
package reconfig

import (
	"fmt"

	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// Config tunes the reconfiguration engine.
type Config struct {
	// SkewBound is added to the observed fabric maximum barrier when
	// choosing a join epoch, covering host clocks running ahead of the
	// registers. Zero selects 2*clock.MaxOffset + 2us.
	SkewBound sim.Time
	// SettleDelay separates derouting a draining switch from detaching
	// its links, letting in-flight packets clear the old paths. Zero
	// selects two beacon intervals.
	SettleDelay sim.Time
}

// Engine drives live reconfiguration of one simulated fabric.
type Engine struct {
	Net  *netsim.Network
	Cl   *core.Cluster
	Ctrl *controller.Controller // optional; nil skips durable epochs
	Cfg  Config

	// Log records every epoch this engine decided, in order, including
	// runs without an attached controller.
	Log []controller.EpochRecord

	// Epoch activations must apply in decision order even though each one
	// learns of its commit from an independent poller: two overlapping
	// joins activated out of order would append hosts to the cluster out
	// of index order. next is the last Seq applied; ready parks callbacks
	// whose predecessors have not committed yet.
	next  int
	ready map[int]func()
}

// New builds an engine over a deployed cluster. ctrl may be nil (e.g. in
// microbenchmarks); epochs are then applied without durable replication.
func New(net *netsim.Network, cl *core.Cluster, ctrl *controller.Controller, cfg Config) *Engine {
	if cfg.SkewBound == 0 {
		cfg.SkewBound = 2*net.Cfg.Clock.MaxOffset + 2*sim.Microsecond
	}
	if cfg.SettleDelay == 0 {
		cfg.SettleDelay = 2 * net.Cfg.BeaconInterval
	}
	return &Engine{Net: net, Cl: cl, Ctrl: ctrl, Cfg: cfg}
}

// propose records the epoch durably (through the controller's Raft store
// when present) and runs then once committed — in Seq order, even when a
// later epoch's commit poller reports first.
func (e *Engine) propose(rec controller.EpochRecord, then func()) {
	rec.Seq = len(e.Log) + 1
	e.Log = append(e.Log, rec)
	rec.At = e.Net.Eng.Now()
	run := func() { e.applyInOrder(rec.Seq, then) }
	if e.Ctrl != nil {
		e.Ctrl.ProposeEpoch(rec, run)
		return
	}
	run()
}

// applyInOrder parks an activation until every earlier epoch has applied,
// then drains the ready queue in sequence.
func (e *Engine) applyInOrder(seq int, then func()) {
	if e.ready == nil {
		e.ready = make(map[int]func())
	}
	e.ready[seq] = then
	for {
		f, ok := e.ready[e.next+1]
		if !ok {
			return
		}
		e.next++
		delete(e.ready, e.next)
		f()
	}
}

// JoinHost attaches a new host under the given pod and rack of a running
// fabric. The host index is returned synchronously; done fires — on the
// simulation event loop — once the epoch has committed and the host is
// activated, carrying the live endpoint and the effective join epoch
// (every timestamp the host ever emits exceeds it; every register of its
// links was seeded at least to it).
func (e *Engine) JoinHost(pod, rack int, done func(h *core.Host, eff sim.Time)) (int, error) {
	g := e.Net.G
	id, links, err := g.AddHost(pod, rack)
	if err != nil {
		return -1, err
	}
	hi := g.HostIndex(id)
	// Prepare: invisible to routing until activation. Grown link state
	// starts drained — excluded from aggregation, beacons and the
	// dead-link scanner.
	g.DrainNode(id)
	e.Net.Grow()

	tj := e.Net.MaxBarrier() + e.Cfg.SkewBound
	rec := controller.EpochRecord{Op: controller.EpochJoinHost, Host: hi, TJoin: tj}
	e.propose(rec, func() {
		// Activate. The effective floor is computed BEFORE the host's
		// clock is forced: AdmitLink clamps a seed up to the downstream
		// node's current aggregated output, and the host floor must match
		// the post-clamp register value or the host could emit a
		// timestamp inside (tj, out) in violation of the register's
		// promise.
		eff := tj
		for _, lid := range links {
			l := g.Link(lid)
			if l.From != id {
				continue
			}
			if be, c := e.Net.NodeBarriers(l.To); be > eff || c > eff {
				eff = max(eff, max(be, c))
			}
		}
		h := e.Cl.AddHost(hi, eff)
		for _, lid := range links {
			l := g.Link(lid)
			if l.From == id {
				e.Net.AdmitLink(lid, eff, eff)
			} else {
				be, c := e.Net.NodeBarriers(l.From)
				e.Net.AdmitLink(lid, be, c)
			}
		}
		g.UndrainNode(id)
		if e.Ctrl != nil {
			e.Ctrl.AttachHost(h)
		}
		if done != nil {
			done(h, eff)
		}
	})
	return hi, nil
}

// DrainHost gracefully removes a host: new sends are refused immediately,
// the send window flushes (beacons, retransmissions and ACKs keep
// running), then the epoch commits, the host leaves routing and barrier
// aggregation, and the endpoint stops. done fires after the host is fully
// detached. Peers' in-flight sends toward it resolve via send-failure.
func (e *Engine) DrainHost(hi int, done func()) error {
	g := e.Net.G
	if hi < 0 || hi >= len(e.Cl.Hosts) {
		return fmt.Errorf("reconfig: no such host %d", hi)
	}
	id := g.Host(hi)
	if g.NodeDead(id) || g.NodeDrained(id) {
		return fmt.Errorf("reconfig: host %d already dead or drained", hi)
	}
	h := e.Cl.Hosts[hi]
	if h.Draining() {
		return fmt.Errorf("reconfig: host %d already draining", hi)
	}
	h.Drain(func() {
		rec := controller.EpochRecord{Op: controller.EpochDrainHost, Host: hi}
		e.propose(rec, func() {
			g.DrainNode(id)
			// Outputs first: pinning the host's uplink register removes
			// its floor from the ToR's aggregation without ever letting a
			// recompute relay the sentinel onward (the receiving links
			// ignore drained inputs).
			for _, lid := range g.Out[id] {
				e.Net.DrainLink(lid)
			}
			for _, lid := range g.In[id] {
				e.Net.DrainLink(lid)
			}
			h.Stop()
			if done != nil {
				done()
			}
		})
	})
	return nil
}

// DrainSwitch gracefully removes a physical switch (both logical halves).
// Routing is updated first; after a settle delay for in-flight packets,
// the switch's links leave barrier aggregation. Draining a switch that
// would disconnect any pair of live hosts is rejected. done fires after
// the links are detached.
func (e *Engine) DrainSwitch(phys int, done func()) error {
	g := e.Net.G
	var halves []topology.NodeID
	for _, nd := range g.Nodes {
		if nd.Phys == phys && nd.Kind != topology.KindHost {
			halves = append(halves, nd.ID)
		}
	}
	if len(halves) == 0 {
		return fmt.Errorf("reconfig: no switch with phys %d", phys)
	}
	for _, id := range halves {
		if g.NodeDead(id) || g.NodeDrained(id) {
			return fmt.Errorf("reconfig: switch phys %d already dead or drained", phys)
		}
	}
	// Deroute tentatively, then verify the remaining fabric still connects
	// every pair of live hosts.
	for _, id := range halves {
		g.DrainNode(id)
	}
	if err := e.liveHostsConnected(); err != nil {
		for _, id := range halves {
			g.UndrainNode(id)
		}
		return fmt.Errorf("reconfig: draining switch phys %d would partition: %w", phys, err)
	}
	rec := controller.EpochRecord{Op: controller.EpochDrainSwitch, Phys: phys}
	e.propose(rec, func() {
		e.Net.Eng.After(e.Cfg.SettleDelay, func() {
			// Outputs strictly before inputs: pinning a switch's own
			// input registers at the sentinel recomputes its aggregate to
			// the sentinel, and a still-live output link would relay that
			// poisoned barrier into the fabric.
			for _, id := range halves {
				for _, lid := range g.Out[id] {
					e.Net.DrainLink(lid)
				}
			}
			for _, id := range halves {
				for _, lid := range g.In[id] {
					e.Net.DrainLink(lid)
				}
			}
			if done != nil {
				done()
			}
		})
	})
	return nil
}

// AddSwitch grows the given pod's spine set by one physical switch. The
// new links are prepared drained, the epoch commits, then the switch's
// input registers are seeded from its neighbors' current outputs and its
// output links admitted (their registers clamp to the downstream
// aggregates), and finally ECMP routing starts using it. done fires after
// activation with the new physical switch index.
func (e *Engine) AddSwitch(pod int, done func(phys int)) error {
	g := e.Net.G
	up, down, links, err := g.AddSpine(pod)
	if err != nil {
		return err
	}
	phys := g.Node(up).Phys
	g.DrainNode(up)
	g.DrainNode(down)
	e.Net.Grow()
	rec := controller.EpochRecord{Op: controller.EpochAddSwitch, Phys: phys}
	e.propose(rec, func() {
		// Inputs before outputs: seeding the switch's ingress registers
		// from live upstream aggregates gives it a current view, so the
		// clamped egress registers stall the neighbors' minima for at
		// most one relay hop.
		for _, lid := range links {
			l := g.Link(lid)
			if l.To == up || l.To == down {
				be, c := e.Net.NodeBarriers(l.From)
				e.Net.AdmitLink(lid, be, c)
			}
		}
		for _, lid := range links {
			l := g.Link(lid)
			if l.From == up || l.From == down {
				e.Net.AdmitLink(lid, 0, 0)
			}
		}
		g.UndrainNode(up)
		g.UndrainNode(down)
		if done != nil {
			done(phys)
		}
	})
	return nil
}

// liveHostsConnected verifies every pair of live (not dead, not drained)
// hosts remains mutually reachable over live routing.
func (e *Engine) liveHostsConnected() error {
	g := e.Net.G
	var live []topology.NodeID
	for _, id := range g.Hosts {
		if !g.NodeDead(id) && !g.NodeDrained(id) {
			live = append(live, id)
		}
	}
	for _, a := range live {
		for _, b := range live {
			if a != b && !g.Reachable(a, b) {
				return fmt.Errorf("%s unreachable from %s", g.Node(b).Name, g.Node(a).Name)
			}
		}
	}
	return nil
}
