package reconfig

import (
	"testing"

	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func smallClos() topology.ClosConfig {
	return topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}
}

type msgID struct {
	src netsim.ProcID
	seq int
}

// harness runs continuous scatterings among a mutable set of live procs
// while recording every delivery and send failure, and asserting the
// per-receiver (TS, Src) total order never regresses.
type harness struct {
	t    *testing.T
	cl   *core.Cluster
	eng  *sim.Engine
	seqs map[netsim.ProcID]int

	active []netsim.ProcID // scattering targets

	deliveries map[netsim.ProcID][]core.Delivery
	failures   map[netsim.ProcID]int // keyed by destination proc
	lastTS     map[netsim.ProcID]core.Delivery
}

func newHarness(t *testing.T, cl *core.Cluster) *harness {
	h := &harness{
		t: t, cl: cl, eng: cl.Net.Eng,
		seqs:       make(map[netsim.ProcID]int),
		deliveries: make(map[netsim.ProcID][]core.Delivery),
		failures:   make(map[netsim.ProcID]int),
		lastTS:     make(map[netsim.ProcID]core.Delivery),
	}
	for _, p := range cl.Procs {
		h.watch(p)
		h.active = append(h.active, p.ID)
	}
	return h
}

func (h *harness) watch(p *core.Proc) {
	pid := p.ID
	p.OnDeliver = func(d core.Delivery) {
		if last, ok := h.lastTS[pid]; ok {
			if d.TS < last.TS || (d.TS == last.TS && d.Src < last.Src) {
				h.t.Errorf("proc %d: delivery order regressed: (%d,%d) after (%d,%d)",
					pid, d.TS, d.Src, last.TS, last.Src)
			}
		}
		h.lastTS[pid] = d
		h.deliveries[pid] = append(h.deliveries[pid], d)
	}
	p.OnSendFail = func(f core.SendFailure) { h.failures[f.Dst]++ }
}

// startSender arms a periodic reliable scattering from p to two random
// active targets until the deadline.
func (h *harness) startSender(p *core.Proc, period, until sim.Time) {
	rng := h.eng.Rand()
	sim.NewTicker(h.eng, period, sim.Time(int(p.ID)*97)*sim.Nanosecond, func() {
		if h.eng.Now() > until {
			return
		}
		d1 := h.active[rng.Intn(len(h.active))]
		d2 := h.active[rng.Intn(len(h.active))]
		if d1 == p.ID || d2 == p.ID || d1 == d2 {
			return
		}
		h.seqs[p.ID]++
		id := msgID{src: p.ID, seq: h.seqs[p.ID]}
		_ = p.SendReliable([]core.Message{
			{Dst: d1, Data: id, Size: 64},
			{Dst: d2, Data: id, Size: 64},
		})
	})
}

func deploy(t *testing.T, topo topology.ClosConfig) (*netsim.Network, *core.Cluster, *controller.Controller) {
	cfg := netsim.DefaultConfig(topo, 1)
	cfg.ControllerManagedCommit = true
	net := netsim.New(cfg)
	cl := core.Deploy(net, core.DefaultConfig())
	ctrl := controller.New(net, cl, controller.DefaultConfig())
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		t.Fatal("no controller leader")
	}
	return net, cl, ctrl
}

// TestJoinDrainLive runs the full elastic lifecycle on a loaded fabric:
// a host joins mid-traffic, an incumbent host drains, a spine drains, and
// a spine is added — with no failure record, no delivery-order regression
// at any receiver, and the joiner observing a clean suffix of the total
// order (every delivery above the effective join epoch).
func TestJoinDrainLive(t *testing.T) {
	net, cl, ctrl := deploy(t, smallClos())
	eng := net.Eng
	h := newHarness(t, cl)
	until := 12 * sim.Millisecond
	for _, p := range cl.Procs {
		h.startSender(p, 20*sim.Microsecond, until)
	}
	eng.RunFor(1 * sim.Millisecond)

	// Join a new host under pod 0, rack 0.
	e := New(net, cl, ctrl, Config{})
	var joinEff sim.Time
	var joined *core.Proc
	hi, err := e.JoinHost(0, 0, func(host *core.Host, eff sim.Time) {
		joinEff = eff
		joined = cl.Procs[len(cl.Procs)-1]
		h.watch(joined)
		h.active = append(h.active, joined.ID)
		h.startSender(joined, 20*sim.Microsecond, until)
	})
	if err != nil {
		t.Fatalf("JoinHost: %v", err)
	}
	if hi != len(net.G.Hosts)-1 {
		t.Fatalf("join host index = %d, want %d", hi, len(net.G.Hosts)-1)
	}
	eng.RunFor(2 * sim.Millisecond)
	if joined == nil {
		t.Fatal("join never activated")
	}
	joinedID := joined.ID

	// Drain incumbent host 2 (keep its proc in the target set: sends
	// toward a departed host must resolve via send-failure, not hang).
	var drainDoneAt sim.Time
	if err := e.DrainHost(2, func() { drainDoneAt = eng.Now() }); err != nil {
		t.Fatalf("DrainHost: %v", err)
	}
	eng.RunFor(2 * sim.Millisecond)
	if drainDoneAt == 0 {
		t.Fatal("host drain never completed")
	}
	if !cl.Hosts[2].Draining() {
		t.Fatal("host 2 not marked draining")
	}
	preDrainDeliveries := len(h.deliveries[2])

	// Drain pod 0's second spine, then grow pod 1's spine set.
	spinePhys := net.G.Node(net.G.SpineUps(0)[1]).Phys
	var switchDrained, switchAdded bool
	if err := e.DrainSwitch(spinePhys, func() { switchDrained = true }); err != nil {
		t.Fatalf("DrainSwitch: %v", err)
	}
	eng.RunFor(1 * sim.Millisecond)
	if err := e.AddSwitch(1, func(phys int) { switchAdded = true }); err != nil {
		t.Fatalf("AddSwitch: %v", err)
	}
	markDeliveries := 0
	for _, ds := range h.deliveries {
		markDeliveries += len(ds)
	}
	eng.RunFor(until - eng.Now() + 5*sim.Millisecond)

	if !switchDrained || !switchAdded {
		t.Fatalf("switch reconfig incomplete: drained=%v added=%v", switchDrained, switchAdded)
	}
	if len(ctrl.Failures) != 0 {
		t.Fatalf("graceful reconfiguration produced %d failure records", len(ctrl.Failures))
	}
	if got := len(e.Log); got != 4 {
		t.Fatalf("epoch log has %d records, want 4", got)
	}
	if len(ctrl.Epochs) != 4 {
		t.Fatalf("controller replicated %d epochs, want 4", len(ctrl.Epochs))
	}

	// The joiner delivers only a suffix of the total order: nothing at or
	// below the effective join epoch.
	jd := h.deliveries[joinedID]
	if len(jd) == 0 {
		t.Fatal("joined host delivered nothing")
	}
	for _, d := range jd {
		if d.TS <= joinEff {
			t.Fatalf("joiner delivered TS %d <= join epoch %d", d.TS, joinEff)
		}
	}
	// The joiner's own messages reach incumbents, all above the epoch.
	fromJoiner := 0
	for pid, ds := range h.deliveries {
		if pid == joinedID {
			continue
		}
		for _, d := range ds {
			if d.Src == joinedID {
				fromJoiner++
				if d.TS <= joinEff {
					t.Fatalf("incumbent %d delivered joiner msg at TS %d <= epoch %d", pid, d.TS, joinEff)
				}
			}
		}
	}
	if fromJoiner == 0 {
		t.Fatal("no message from the joined host was delivered")
	}
	// Suffix consistency: on the messages both saw, the joiner's order is
	// exactly an incumbent's order.
	common := make(map[msgID]int) // joiner's position
	for i, d := range jd {
		common[d.Data.(msgID)] = i
	}
	prev := -1
	for _, d := range h.deliveries[0] {
		if pos, ok := common[d.Data.(msgID)]; ok {
			if pos <= prev {
				t.Fatalf("joiner order diverges from incumbent at %v", d.Data)
			}
			prev = pos
		}
	}

	// The departed host stopped delivering at drain completion, and
	// sends toward it fail instead of hanging.
	if got := len(h.deliveries[2]); got != preDrainDeliveries {
		t.Errorf("drained host delivered %d messages after drain completed", got-preDrainDeliveries)
	}
	if h.failures[2] == 0 {
		t.Error("no send-failure reported for sends toward the drained host")
	}
	// The fabric kept delivering after every reconfiguration.
	post := 0
	for _, ds := range h.deliveries {
		post += len(ds)
	}
	if post <= markDeliveries {
		t.Fatal("no deliveries after switch reconfiguration")
	}
}

// TestDrainSwitchRejectsPartition verifies the engine refuses a drain
// that would disconnect live hosts (the only spine of a pod).
func TestDrainSwitchRejectsPartition(t *testing.T) {
	topo := smallClos()
	topo.SpinesPerPod = 1
	net, cl, ctrl := deploy(t, topo)
	e := New(net, cl, ctrl, Config{})
	phys := net.G.Node(net.G.SpineUps(0)[0]).Phys
	if err := e.DrainSwitch(phys, nil); err == nil {
		t.Fatal("draining the only spine of a pod was not rejected")
	}
	if net.G.NodeDrained(net.G.SpineUps(0)[0]) {
		t.Fatal("rejected drain left the spine derouted")
	}
	if len(e.Log) != 0 {
		t.Fatal("rejected drain recorded an epoch")
	}
}

// TestJoinedHostDiesResolvedByFailurePath kills a freshly joined host and
// checks the ordinary §5.2 pipeline cleans it up, with a failure
// timestamp that can never precede the Raft-recorded join epoch.
func TestJoinedHostDiesResolvedByFailurePath(t *testing.T) {
	net, cl, ctrl := deploy(t, smallClos())
	eng := net.Eng
	h := newHarness(t, cl)
	until := 10 * sim.Millisecond
	for _, p := range cl.Procs {
		h.startSender(p, 20*sim.Microsecond, until)
	}
	eng.RunFor(1 * sim.Millisecond)

	e := New(net, cl, ctrl, Config{})
	var eff sim.Time
	var joinedHost *core.Host
	hi, err := e.JoinHost(1, 1, func(host *core.Host, ef sim.Time) {
		joinedHost, eff = host, ef
		p := cl.Procs[len(cl.Procs)-1]
		h.watch(p)
		h.active = append(h.active, p.ID)
		h.startSender(p, 20*sim.Microsecond, until)
	})
	if err != nil {
		t.Fatalf("JoinHost: %v", err)
	}
	eng.RunFor(2 * sim.Millisecond)
	if joinedHost == nil {
		t.Fatal("join never activated")
	}

	// Die young: crash the joined host with traffic in flight.
	joinedHost.Stop()
	net.G.KillNode(net.G.Host(hi))
	eng.RunFor(10 * sim.Millisecond)

	if len(ctrl.Failures) == 0 {
		t.Fatal("controller never recorded the joined host's failure")
	}
	found := false
	for _, rec := range ctrl.Failures {
		for p, fts := range rec.Procs {
			if net.HostOfProc(p) == hi {
				found = true
				if fts < eff {
					t.Fatalf("failure timestamp %d precedes join epoch %d", fts, eff)
				}
			}
		}
	}
	if !found {
		t.Fatal("no failure record covers the joined host's proc")
	}
}
