package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestMeanAndStddev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if !approx(s.Mean(), 5) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if !approx(s.Stddev(), 2) {
		t.Fatalf("stddev = %v, want 2", s.Stddev())
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); !approx(got, 1) {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); !approx(got, 100) {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 0.01 {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := s.Percentile(95); got < 94 || got > 97 {
		t.Fatalf("p95 = %v out of range", got)
	}
}

func TestMinMaxAfterSortAndBefore(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 9, 3} {
		s.Add(x)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	s.Percentile(50) // forces sort
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("after sort min/max = %v/%v", s.Min(), s.Max())
	}
	s.Add(0)
	if s.Min() != 0 {
		t.Fatalf("min after post-sort Add = %v, want 0", s.Min())
	}
}

// Property: percentile is monotone in p and bounded by [min, max].
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		pa, pb := s.Percentile(a), s.Percentile(b)
		return pa <= pb+1e-9 && pa >= s.Min()-1e-9 && pb <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: median of a sorted odd-length sample equals its middle element.
func TestMedianExactOddProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw)%2 == 0 {
			raw = append(raw, 0)
		}
		var s Sample
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
			s.Add(float64(r))
		}
		sort.Float64s(vals)
		return approx(s.Median(), vals[len(vals)/2])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
