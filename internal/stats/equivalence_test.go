package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestSampleHistogramPercentileEquivalence cross-checks the two percentile
// implementations the experiments use: Sample (exact, sorted, linearly
// interpolated) and Histogram (streaming HDR-style log-linear buckets,
// ~3% quantization error with 5 sub-bucket bits). On dense data the two
// must agree at p50/p99/p999 within the histogram's resolution — a
// divergence beyond that means one of them is mis-ranking.
func TestSampleHistogramPercentileEquivalence(t *testing.T) {
	dists := []struct {
		name string
		draw func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return 1 + r.Float64()*9999 }},
		{"exponential", func(r *rand.Rand) float64 { return 100 * r.ExpFloat64() }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(5 + r.NormFloat64()) }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(10) == 0 {
				return 5000 + r.Float64()*1000
			}
			return 10 + r.Float64()*50
		}},
	}
	const n = 200_000
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			var s Sample
			var h Histogram
			for i := 0; i < n; i++ {
				v := d.draw(r)
				s.Add(v)
				h.Add(v)
			}
			for _, p := range []float64{50, 99, 99.9} {
				exact := s.Percentile(p)
				approx := h.Percentile(p)
				if exact <= 0 {
					t.Fatalf("p%v: exact percentile %v not positive", p, exact)
				}
				if rel := math.Abs(approx-exact) / exact; rel > 0.05 {
					t.Errorf("p%v: histogram %.4g vs sample %.4g (relative error %.1f%% > 5%%)",
						p, approx, exact, rel*100)
				}
			}
		})
	}
}
