// Package stats provides the small set of summary statistics the experiment
// harness reports: mean, standard deviation, and percentiles, matching the
// error bars (5th/95th percentile) used in the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the population standard deviation, or 0 for fewer than two
// observations.
func (s *Sample) Stddev() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if s.sorted {
		return s.xs[0]
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if s.sorted {
		return s.xs[len(s.xs)-1]
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary formats mean with p5/p95 error bounds, the format used for the
// paper's latency figures.
func (s *Sample) Summary() string {
	return fmt.Sprintf("%.2f [p5 %.2f, p95 %.2f]", s.Mean(), s.Percentile(5), s.Percentile(95))
}
