package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram is a bounded-memory streaming histogram with log-linear
// buckets (HDR-style): non-negative values are grouped by their power-of-
// two octave, each octave split into histSub linear sub-buckets, so the
// relative quantization error is at most 1/histSub (~3%) across the full
// int64 range. Memory is a fixed ~15 KB regardless of how many samples
// are recorded, which is what lets million-message runs keep per-stage
// latency distributions without holding every observation (contrast with
// Sample, which stores all points for exact percentiles).
//
// The zero value is ready to use. Histogram is not goroutine-safe; callers
// that share one across goroutines must synchronize (obs.Trace does).
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave
	// Octaves above the linear region: value bit-lengths histSubBits+1..64.
	histBuckets = histSub * (64 - histSubBits + 1)
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(u uint64) int {
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	return (exp-histSubBits+1)*histSub + int((u>>(exp-histSubBits))&(histSub-1))
}

// bucketValue returns the representative (midpoint) value of a bucket.
func bucketValue(b int) float64 {
	q, r := b/histSub, b%histSub
	if q == 0 {
		return float64(r) + 0.5
	}
	lo := uint64(histSub+r) << (q - 1)
	width := uint64(1) << (q - 1)
	return float64(lo) + float64(width)/2
}

// Add records one observation. Negative values clamp to zero (latency
// spans can go slightly negative under clock skew between hosts).
func (h *Histogram) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	if h.n == 0 || x < h.min {
		h.min = x
	}
	if h.n == 0 || x > h.max {
		h.max = x
	}
	h.n++
	h.sum += x
	u := uint64(x)
	if x > math.MaxInt64 {
		u = math.MaxInt64
	}
	h.counts[bucketOf(u)]++
}

// N reports the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the exact arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest recorded value (exact).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest recorded value (exact).
func (h *Histogram) Max() float64 { return h.max }

// Percentile returns the p-th percentile (p in [0,100]) to within the
// bucket quantization, or 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketValue(b)
			// Clamp to the exact extremes so p1/p99 of tiny samples do not
			// escape [min, max] through quantization.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// Reset clears the histogram for reuse.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary formats mean with p5/p95 bounds, mirroring Sample.Summary.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("%.2f [p5 %.2f, p95 %.2f]", h.Mean(), h.Percentile(5), h.Percentile(95))
}
