package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's representative value must map back to the same bucket,
	// and bucket boundaries must be monotone.
	prev := -1.0
	for b := 0; b < histBuckets; b++ {
		v := bucketValue(b)
		if v <= prev {
			t.Fatalf("bucket %d value %g not increasing past %g", b, v, prev)
		}
		prev = v
		if got := bucketOf(uint64(v)); got != b {
			t.Fatalf("bucket %d value %g round-trips to bucket %d", b, v, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	var s Sample
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		// Log-uniform latencies spanning ns..ms, the range the tracer sees.
		x := math.Exp(rng.Float64() * math.Log(2e6))
		h.Add(x)
		s.Add(x)
	}
	for _, p := range []float64{5, 50, 95, 99} {
		exact := s.Percentile(p)
		approx := h.Percentile(p)
		// Quantization bound: 1/histSub relative in the log region, ±1
		// absolute in the small linear region (values are nanoseconds in
		// practice, so the linear region is noise).
		if math.Abs(approx-exact) > 1 && math.Abs(approx-exact)/exact > 0.05 {
			t.Fatalf("p%g: exact %.1f approx %.1f", p, exact, approx)
		}
	}
	if err := math.Abs(h.Mean()-s.Mean()) / s.Mean(); err > 1e-9 {
		t.Fatalf("mean drifted: %g vs %g", h.Mean(), s.Mean())
	}
	if h.Min() != s.Min() || h.Max() != s.Max() {
		t.Fatalf("min/max not exact: %g/%g vs %g/%g", h.Min(), h.Max(), s.Min(), s.Max())
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(-5) // clamps to 0
	h.Add(math.NaN())
	if h.N() != 2 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative/NaN clamp failed: n=%d min=%g max=%g", h.N(), h.Min(), h.Max())
	}
	h.Reset()
	h.Add(7)
	if h.Percentile(0) != 7 || h.Percentile(100) != 7 || h.Percentile(50) != 7 {
		t.Fatalf("single-sample percentiles: %g %g %g", h.Percentile(0), h.Percentile(50), h.Percentile(100))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 1000; i++ {
		x := float64(i * i)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	a.Merge(nil)
	if a.N() != all.N() || a.Mean() != all.Mean() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merge lost observations")
	}
	if a.Percentile(95) != all.Percentile(95) {
		t.Fatalf("merged p95 %g != direct %g", a.Percentile(95), all.Percentile(95))
	}
}
