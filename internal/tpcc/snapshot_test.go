package tpcc

import (
	"testing"

	"onepipe/internal/sim"
)

// comparable reports whether two version vectors are ordered (one
// dominates the other component-wise) — the consistency property of
// snapshot reads over a total order.
func comparableVec(a, b []uint64) bool {
	le, ge := true, true
	for i := range a {
		if a[i] > b[i] {
			le = false
		}
		if a[i] < b[i] {
			ge = false
		}
	}
	return le || ge
}

func runSnapshots(t *testing.T, mode Mode) [][]uint64 {
	t.Helper()
	b := deploy(t, mode, 2, nil)
	b.Cfg.SnapshotFrac = 0.3
	var snaps [][]uint64
	b.OnSnapshot = func(v []uint64) { snaps = append(snaps, v) }
	b.Run(300*sim.Microsecond, 2*sim.Millisecond)
	return snaps
}

func TestSnapshotReadsConsistentUnderOnePipe(t *testing.T) {
	snaps := runSnapshots(t, Mode1Pipe)
	if len(snaps) < 50 {
		t.Fatalf("only %d snapshots completed", len(snaps))
	}
	// Every pair of snapshot vectors must be comparable: the total order
	// serializes snapshots against all Payment writes, so no snapshot can
	// see warehouse A ahead of another snapshot while seeing B behind it.
	bad := 0
	for i := 0; i < len(snaps); i++ {
		for j := i + 1; j < len(snaps); j++ {
			if !comparableVec(snaps[i], snaps[j]) {
				bad++
			}
		}
	}
	if bad != 0 {
		t.Fatalf("%d incomparable snapshot pairs under 1Pipe (must be 0)", bad)
	}
}

func TestSnapshotReadsTornUnderNonTX(t *testing.T) {
	snaps := runSnapshots(t, ModeNonTX)
	if len(snaps) < 50 {
		t.Fatalf("only %d snapshots completed", len(snaps))
	}
	bad := 0
	for i := 0; i < len(snaps); i++ {
		for j := i + 1; j < len(snaps); j++ {
			if !comparableVec(snaps[i], snaps[j]) {
				bad++
			}
		}
	}
	if bad == 0 {
		t.Skip("no torn snapshot observed under NonTX this run (possible but unlikely)")
	}
	t.Logf("NonTX: %d incomparable snapshot pairs out of %d snapshots", bad, len(snaps))
}

func TestSnapshotFracZeroUnchanged(t *testing.T) {
	b := deploy(t, Mode1Pipe, 2, nil)
	called := false
	b.OnSnapshot = func([]uint64) { called = true }
	b.Run(200*sim.Microsecond, 500*sim.Microsecond)
	if called {
		t.Fatal("snapshots generated with SnapshotFrac=0")
	}
}
