package tpcc

import (
	"testing"

	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

func deploy(t *testing.T, mode Mode, procsPerHost int, mut func(*netsim.Config)) *Bench {
	t.Helper()
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, procsPerHost)
	if mut != nil {
		mut(&ncfg)
	}
	cl := core.Deploy(netsim.New(ncfg), core.DefaultConfig())
	return New(cl, mode, DefaultConfig())
}

func TestAllModesCommit(t *testing.T) {
	for _, mode := range []Mode{Mode1Pipe, ModeLock, ModeOCC, ModeNonTX} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			b := deploy(t, mode, 2, nil)
			s := b.Run(300*sim.Microsecond, 1*sim.Millisecond)
			if s.Committed == 0 {
				t.Fatalf("%s committed nothing", mode)
			}
			if s.Latency.N() == 0 {
				t.Fatal("no latency samples")
			}
		})
	}
}

func TestOnePipeNoAborts(t *testing.T) {
	b := deploy(t, Mode1Pipe, 2, nil)
	s := b.Run(300*sim.Microsecond, 1*sim.Millisecond)
	if s.Aborted != 0 {
		t.Fatalf("1Pipe aborted %d transactions", s.Aborted)
	}
}

func TestOnePipeBeatsLockAndOCCUnderContention(t *testing.T) {
	// 16 clients against 4 warehouses: every Payment writes a hot
	// warehouse row, so 2PL serializes and OCC aborts (Fig. 15a shape).
	run := func(mode Mode) *Stats {
		b := deploy(t, mode, 2, nil)
		return b.Run(300*sim.Microsecond, 2*sim.Millisecond)
	}
	sp := run(Mode1Pipe)
	sl := run(ModeLock)
	so := run(ModeOCC)
	if sp.Committed == 0 || sl.Committed == 0 || so.Committed == 0 {
		t.Fatalf("commits: 1pipe=%d lock=%d occ=%d", sp.Committed, sl.Committed, so.Committed)
	}
	if float64(sp.Committed) < 1.3*float64(sl.Committed) {
		t.Fatalf("1Pipe (%d) did not beat Lock (%d)", sp.Committed, sl.Committed)
	}
	if float64(sp.Committed) < 1.3*float64(so.Committed) {
		t.Fatalf("1Pipe (%d) did not beat OCC (%d)", sp.Committed, so.Committed)
	}
}

func TestOnePipeNearNonTX(t *testing.T) {
	sp := deploy(t, Mode1Pipe, 2, nil).Run(300*sim.Microsecond, 2*sim.Millisecond)
	sn := deploy(t, ModeNonTX, 2, nil).Run(300*sim.Microsecond, 2*sim.Millisecond)
	ratio := float64(sp.Committed) / float64(sn.Committed)
	// Paper: 71% of the non-transactional baseline. Replication to 3
	// replicas vs NonTX's single async primary makes some gap inherent.
	if ratio < 0.25 || ratio > 1.2 {
		t.Fatalf("1Pipe/NonTX ratio %.2f outside plausible band", ratio)
	}
}

func TestLossResilience(t *testing.T) {
	// Fig. 15b: packet loss barely dents 1Pipe's throughput because new
	// transactions flow while lost packets retransmit.
	clean := deploy(t, Mode1Pipe, 2, nil).Run(300*sim.Microsecond, 2*sim.Millisecond)
	lossy := deploy(t, Mode1Pipe, 2, func(c *netsim.Config) { c.LossRate = 1e-3 }).
		Run(300*sim.Microsecond, 2*sim.Millisecond)
	if lossy.Committed == 0 {
		t.Fatal("nothing committed under loss")
	}
	if float64(lossy.Committed) < 0.5*float64(clean.Committed) {
		t.Fatalf("1e-3 loss cut throughput from %d to %d", clean.Committed, lossy.Committed)
	}
}

func TestLockWaitersFIFOProgress(t *testing.T) {
	// Under heavy contention every lock request must eventually be
	// granted (no lost waiters): committed count keeps growing.
	b := deploy(t, ModeLock, 2, nil)
	s1 := b.Run(300*sim.Microsecond, 1*sim.Millisecond)
	c1 := s1.Committed
	b.cl.Net.Eng.RunFor(1 * sim.Millisecond)
	b.measuring = true
	b.cl.Net.Eng.RunFor(1 * sim.Millisecond)
	b.measuring = false
	if b.Stats.Committed <= c1 {
		t.Fatal("lock mode stopped committing (lost waiter?)")
	}
}

func TestReplicaFailureRecovery(t *testing.T) {
	// §7.3.2: a replica host fails; 1Pipe detects and removes it, affected
	// transactions retry, and throughput continues.
	ncfg := netsim.DefaultConfig(topology.ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2}, 2)
	ncfg.ControllerManagedCommit = true
	net := netsim.New(ncfg)
	cl := core.Deploy(net, core.DefaultConfig())
	ctrl := controller.New(net, cl, controller.DefaultConfig())
	if ctrl.Raft.WaitLeader(50*sim.Millisecond) == nil {
		t.Fatal("no controller leader")
	}
	b := New(cl, Mode1Pipe, DefaultConfig())
	eng := net.Eng

	// Warm up, then kill host 1 (procs 2 and 3 — replicas of some shards).
	b.Run(300*sim.Microsecond, 500*sim.Microsecond)
	before := b.Stats.Committed
	eng.At(eng.Now()+100*sim.Microsecond, func() {
		cl.Hosts[1].Stop()
		net.G.KillNode(net.G.Host(1))
	})
	eng.RunFor(3 * sim.Millisecond) // detection + recovery
	b.measuring = true
	eng.RunFor(2 * sim.Millisecond)
	b.measuring = false
	if b.Stats.Committed <= before {
		t.Fatal("no commits after replica failure")
	}
	// The failed procs must be out of every replica set.
	for w, set := range b.replicaSets {
		for _, r := range set {
			if r == 2 || r == 3 {
				t.Fatalf("failed replica still in shard %d set %v", w, set)
			}
		}
	}
	if ctrl.RecoveryTime.N() == 0 {
		t.Fatal("controller recorded no recovery")
	}
}

func TestDeterministicTPCC(t *testing.T) {
	a := deploy(t, Mode1Pipe, 2, nil).Run(200*sim.Microsecond, 500*sim.Microsecond)
	b := deploy(t, Mode1Pipe, 2, nil).Run(200*sim.Microsecond, 500*sim.Microsecond)
	if a.Committed != b.Committed {
		t.Fatalf("same-seed TPC-C diverged: %d vs %d", a.Committed, b.Committed)
	}
}
