package tpcc

import (
	"sort"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/workload"
)

// Message payloads.
type cmdMsg struct {
	t   *txn
	ops []workload.Op
}
type cmdReply struct{ t *txn }

// snapReq reads one warehouse's hot-row version for a snapshot.
type snapReq struct {
	t     *txn
	shard int
	key   uint64
}
type snapReply struct {
	t       *txn
	shard   int
	version uint64
}

type lockReq struct {
	t    *txn
	keys []uint64
}
type lockGranted struct{ t *txn }

type execReq struct {
	t      *txn
	ops    []workload.Op
	unlock []uint64
	async  bool // NonTX: do not wait for backups
	shard  int
}
type replReq struct {
	t     *txn
	ops   []workload.Op
	shard int
	from  netsim.ProcID
}
type replAck struct {
	t     *txn
	shard int
}

type occRead struct {
	t    *txn
	keys []uint64
}
type occReadReply struct {
	t        *txn
	keys     []uint64
	versions []uint64
	locked   bool
}
type occLock struct {
	t        *txn
	keys     []uint64
	versions []uint64
}
type occLockReply struct {
	t  *txn
	ok bool
}
type occUnlock struct {
	t    *txn
	keys []uint64
}

// primary returns the current primary of a shard.
func (b *Bench) primary(shard int) netsim.ProcID { return b.replicaSets[shard][0] }

// ----- 1Pipe (Eris-style) -----

// issue1Pipe sends the transaction to every replica of every involved
// shard in one reliable scattering: the 1Pipe timestamp is the transaction
// sequence number, so replicas apply in a consistent order and the
// transaction commits in one round trip.
func (n *node) issue1Pipe(t *txn) {
	if t.kind == txSnapshot {
		// Best-effort scattering to one replica per shard: total order
		// serializes the snapshot against all writes, giving a
		// consistent cut in one round trip (the read-only DAO of
		// §2.2.3 extended to snapshots).
		var msgs []core.Message
		t.pending = len(t.shards)
		t.snapshot = make([]uint64, n.b.Cfg.Warehouses)
		for _, so := range t.shards {
			msgs = append(msgs, core.Message{
				Dst:  n.b.primary(so.Shard),
				Data: snapReq{t: t, shard: so.Shard, key: so.Ops[0].Key},
				Size: 16,
			})
		}
		if err := n.proc.Send(msgs); err != nil {
			n.retryLater(t)
			return
		}
		n.armRetry(t)
		return
	}
	var msgs []core.Message
	for _, so := range t.shards {
		size := 32 * len(so.Ops)
		for _, r := range n.b.replicaSets[so.Shard] {
			msgs = append(msgs, core.Message{Dst: r, Data: cmdMsg{t: t, ops: so.Ops}, Size: size})
		}
	}
	if len(msgs) == 0 {
		n.finish(t, true)
		return
	}
	t.pending = len(msgs)
	if err := n.proc.SendOpts(msgs, core.SendOptions{Reliable: true}); err != nil {
		// A replica failed since generation: replica sets were already
		// pruned by the failure callback; retry.
		n.retryLater(t)
		return
	}
	n.armRetry(t)
}

// onDeliver applies 1Pipe-ordered transaction commands at replicas.
func (n *node) onDeliver(d core.Delivery) {
	switch m := d.Data.(type) {
	case snapReq:
		n.serve(1, func() {
			var v uint64
			if r := n.data[m.key]; r != nil {
				v = r.version
			}
			n.proc.SendRaw(d.Src, snapReply{t: m.t, shard: m.shard, version: v}, 16)
		})
	case cmdMsg:
		if n.applied[m.t] {
			n.proc.SendRaw(d.Src, cmdReply{t: m.t}, 8)
			return
		}
		n.applied[m.t] = true
		n.serve(len(m.ops), func() {
			n.applyOps(m.ops)
			n.proc.SendRaw(d.Src, cmdReply{t: m.t}, 8)
		})
	}
}

// ----- Lock (2PL + primary-backup) -----

// issueLock acquires exclusive locks shard by shard in ascending shard
// order (deadlock freedom), then executes and replicates.
func (n *node) issueLock(t *txn) {
	sort.Slice(t.shards, func(i, j int) bool { return t.shards[i].Shard < t.shards[j].Shard })
	t.phase = 1
	t.lockIdx = 0
	n.lockNextShard(t)
	n.armRetry(t)
}

func (n *node) lockNextShard(t *txn) {
	if t.lockIdx >= len(t.shards) {
		// All locks held: execute + replicate on every shard.
		t.phase = 2
		t.pending = len(t.shards)
		for _, so := range t.shards {
			n.proc.SendRaw(n.b.primary(so.Shard), execReq{
				t: t, ops: so.Ops, unlock: opKeys(so.Ops), shard: so.Shard,
			}, 32*len(so.Ops))
		}
		return
	}
	so := t.shards[t.lockIdx]
	n.proc.SendRaw(n.b.primary(so.Shard), lockReq{t: t, keys: opKeys(so.Ops)}, 16*len(so.Ops))
}

func opKeys(ops []workload.Op) []uint64 {
	keys := make([]uint64, len(ops))
	for i, op := range ops {
		keys[i] = op.Key
	}
	return keys
}

// onLockReq grants all-or-waits: if every key is free the whole set locks;
// otherwise the request queues FIFO on the first busy key.
func (n *node) onLockReq(src netsim.ProcID, m lockReq) {
	n.serve(len(m.keys), func() { n.tryGrant(&lockWait{t: m.t, src: src, keys: m.keys}) })
}

func (n *node) tryGrant(w *lockWait) {
	for _, k := range w.keys {
		r := n.rec(k)
		if r.lockedBy != nil && r.lockedBy != w.t {
			n.waiters[k] = append(n.waiters[k], w)
			return
		}
	}
	for _, k := range w.keys {
		n.rec(k).lockedBy = w.t
	}
	n.proc.SendRaw(w.src, lockGranted{t: w.t}, 8)
}

func (n *node) rec(k uint64) *record {
	r := n.data[k]
	if r == nil {
		r = &record{}
		n.data[k] = r
	}
	return r
}

// unlockKeys releases locks and re-attempts waiting acquisitions.
func (n *node) unlockKeys(t *txn, keys []uint64) {
	var retry []*lockWait
	for _, k := range keys {
		r := n.rec(k)
		if r.lockedBy == t {
			r.lockedBy = nil
		}
		if ws := n.waiters[k]; len(ws) > 0 {
			retry = append(retry, ws...)
			delete(n.waiters, k)
		}
	}
	for _, w := range retry {
		n.tryGrant(w)
	}
}

// onExecReq applies at the primary, replicates to backups, and (unless
// async) replies after all backups acknowledge.
func (n *node) onExecReq(src netsim.ProcID, m execReq) {
	n.serve(len(m.ops), func() {
		n.applyOps(m.ops)
		backups := n.b.replicaSets[m.shard][1:]
		if m.async || len(backups) == 0 {
			n.unlockKeys(m.t, m.unlock)
			n.proc.SendRaw(src, cmdReply{t: m.t}, 8)
			for _, bk := range backups {
				n.proc.SendRaw(bk, replReq{t: m.t, ops: m.ops, shard: m.shard, from: n.proc.ID}, 32*len(m.ops))
			}
			return
		}
		st := &replState{src: src, t: m.t, unlock: m.unlock, waiting: len(backups)}
		n.replWait[m.t] = st
		for _, bk := range backups {
			n.proc.SendRaw(bk, replReq{t: m.t, ops: m.ops, shard: m.shard, from: n.proc.ID}, 32*len(m.ops))
		}
	})
}

func (n *node) onReplReq(m replReq) {
	n.serve(len(m.ops), func() {
		n.applyOps(m.ops)
		n.proc.SendRaw(m.from, replAck{t: m.t, shard: m.shard}, 8)
	})
}

func (n *node) onReplAck(m replAck) {
	st := n.replWait[m.t]
	if st == nil {
		return
	}
	st.waiting--
	if st.waiting > 0 {
		return
	}
	delete(n.replWait, m.t)
	n.unlockKeys(st.t, st.unlock)
	n.proc.SendRaw(st.src, cmdReply{t: st.t}, 8)
}

// ----- OCC -----

const (
	occPhaseRead     = 1
	occPhaseLock     = 2
	occPhaseValidate = 3
	occPhaseCommit   = 4
)

func (n *node) issueOCC(t *txn) {
	t.versions = make(map[uint64]uint64)
	t.phase = occPhaseRead
	t.pending = len(t.shards)
	for _, so := range t.shards {
		n.proc.SendRaw(n.b.primary(so.Shard), occRead{t: t, keys: opKeys(so.Ops)}, 16*len(so.Ops))
	}
	n.armRetry(t)
}

func (n *node) occWriteKeys(t *txn) [][]uint64 {
	sets := make([][]uint64, len(t.shards))
	for i, so := range t.shards {
		for _, op := range so.Ops {
			if op.Kind == workload.OpWrite {
				sets[i] = append(sets[i], op.Key)
			}
		}
	}
	return sets
}

func (n *node) occAbort(t *txn) {
	for i, so := range t.shards {
		keys := n.occWriteKeys(t)[i]
		if len(keys) > 0 {
			n.proc.SendRaw(n.b.primary(so.Shard), occUnlock{t: t, keys: keys}, 8*len(keys))
		}
	}
	n.retryLater(t)
}

func (n *node) onOccRead(src netsim.ProcID, m occRead) {
	n.serve(len(m.keys), func() {
		versions := make([]uint64, len(m.keys))
		locked := false
		for i, k := range m.keys {
			if r := n.data[k]; r != nil {
				versions[i] = r.version
				if r.lockedBy != nil && r.lockedBy != m.t {
					locked = true
				}
			}
		}
		n.proc.SendRaw(src, occReadReply{t: m.t, keys: m.keys, versions: versions, locked: locked}, 16*len(m.keys))
	})
}

func (n *node) onOccLock(src netsim.ProcID, m occLock) {
	n.serve(len(m.keys), func() {
		ok := true
		for i, k := range m.keys {
			r := n.rec(k)
			if (r.lockedBy != nil && r.lockedBy != m.t) || r.version != m.versions[i] {
				ok = false
				break
			}
		}
		if ok {
			for _, k := range m.keys {
				n.rec(k).lockedBy = m.t
			}
		}
		n.proc.SendRaw(src, occLockReply{t: m.t, ok: ok}, 8)
	})
}

func (n *node) onOccUnlock(m occUnlock) {
	n.serve(len(m.keys), func() { n.unlockKeys(m.t, m.keys) })
}

// ----- NonTX -----

func (n *node) issueNonTX(t *txn) {
	if t.kind == txSnapshot {
		t.pending = len(t.shards)
		t.snapshot = make([]uint64, n.b.Cfg.Warehouses)
		for _, so := range t.shards {
			n.proc.SendRaw(n.b.primary(so.Shard), snapReq{t: t, shard: so.Shard, key: so.Ops[0].Key}, 16)
		}
		n.armRetry(t)
		return
	}
	t.pending = len(t.shards)
	for _, so := range t.shards {
		n.proc.SendRaw(n.b.primary(so.Shard), execReq{
			t: t, ops: so.Ops, async: true, shard: so.Shard,
		}, 32*len(so.Ops))
	}
	n.armRetry(t)
}

// ----- client-side reply dispatch -----

func (n *node) onRaw(src netsim.ProcID, data any) {
	switch m := data.(type) {
	case snapReq:
		// NonTX snapshots read without ordering.
		n.serve(1, func() {
			var v uint64
			if r := n.data[m.key]; r != nil {
				v = r.version
			}
			n.proc.SendRaw(src, snapReply{t: m.t, shard: m.shard, version: v}, 16)
		})
	case snapReply:
		t := m.t
		if t.client != n || t.snapshot == nil {
			return
		}
		t.snapshot[m.shard] = m.version
		t.pending--
		if t.pending == 0 {
			if n.b.OnSnapshot != nil {
				n.b.OnSnapshot(append([]uint64(nil), t.snapshot...))
			}
			n.finish(t, true)
		}
	case cmdReply:
		t := m.t
		if t.client != n {
			return
		}
		t.pending--
		if t.pending == 0 {
			n.finish(t, true)
		}
	case lockReq:
		n.onLockReq(src, m)
	case lockGranted:
		t := m.t
		if t.client != n || t.phase != 1 {
			return
		}
		t.lockIdx++
		n.lockNextShard(t)
	case execReq:
		n.onExecReq(src, m)
	case replReq:
		n.onReplReq(m)
	case replAck:
		n.onReplAck(m)
	case occRead:
		n.onOccRead(src, m)
	case occLock:
		n.onOccLock(src, m)
	case occUnlock:
		n.onOccUnlock(m)
	case occReadReply:
		n.onOccReadReply(m)
	case occLockReply:
		n.onOccLockReply(m)
	}
}

func (n *node) onOccReadReply(m occReadReply) {
	t := m.t
	if t.client != n {
		return
	}
	if m.locked {
		t.failed = true
	}
	switch t.phase {
	case occPhaseRead:
		for i, k := range m.keys {
			t.versions[k] = m.versions[i]
		}
	case occPhaseValidate:
		for i, k := range m.keys {
			if t.versions[k] != m.versions[i] {
				t.failed = true
			}
		}
	default:
		return
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	if t.failed {
		if t.phase == occPhaseValidate {
			n.occAbort(t)
		} else {
			n.retryLater(t)
		}
		return
	}
	if t.phase == occPhaseRead {
		// Lock the write sets.
		t.phase = occPhaseLock
		sets := n.occWriteKeys(t)
		t.pending = 0
		for i, so := range t.shards {
			if len(sets[i]) == 0 {
				continue
			}
			t.pending++
			versions := make([]uint64, len(sets[i]))
			for j, k := range sets[i] {
				versions[j] = t.versions[k]
			}
			n.proc.SendRaw(n.b.primary(so.Shard), occLock{t: t, keys: sets[i], versions: versions}, 24*len(sets[i]))
		}
		if t.pending == 0 { // read-only: done after version read
			n.finish(t, true)
		}
		return
	}
	// Validate passed: commit.
	n.occCommit(t)
}

func (n *node) onOccLockReply(m occLockReply) {
	t := m.t
	if t.client != n || t.phase != occPhaseLock {
		return
	}
	if !m.ok {
		t.failed = true
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	if t.failed {
		n.occAbort(t)
		return
	}
	// Validate the read set (keys not written).
	readKeys := n.occReadOnlyKeys(t)
	if len(readKeys) == 0 {
		n.occCommit(t)
		return
	}
	t.phase = occPhaseValidate
	t.failed = false
	t.pending = 0
	for i, so := range t.shards {
		if len(readKeys[i]) == 0 {
			continue
		}
		t.pending++
		n.proc.SendRaw(n.b.primary(so.Shard), occRead{t: t, keys: readKeys[i]}, 16*len(readKeys[i]))
	}
	if t.pending == 0 {
		n.occCommit(t)
	}
}

func (n *node) occReadOnlyKeys(t *txn) [][]uint64 {
	sets := make([][]uint64, len(t.shards))
	any := false
	for i, so := range t.shards {
		for _, op := range so.Ops {
			if op.Kind == workload.OpRead {
				sets[i] = append(sets[i], op.Key)
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return sets
}

func (n *node) occCommit(t *txn) {
	t.phase = occPhaseCommit
	t.pending = 0
	sets := n.occWriteKeys(t)
	for i, so := range t.shards {
		var writes []workload.Op
		for _, op := range so.Ops {
			if op.Kind == workload.OpWrite {
				writes = append(writes, op)
			}
		}
		if len(writes) == 0 {
			continue
		}
		t.pending++
		n.proc.SendRaw(n.b.primary(so.Shard), execReq{
			t: t, ops: writes, unlock: sets[i], shard: so.Shard,
		}, 32*len(writes))
	}
	if t.pending == 0 {
		n.finish(t, true)
	}
}
