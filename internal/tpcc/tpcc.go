// Package tpcc implements the §7.3.2 benchmark: the two most frequent
// TPC-C transactions (New-Order and Payment), which are *independent*
// transactions — the input of each shard does not depend on other shards'
// output — over replicated in-memory warehouses.
//
// Four designs are compared, as in Figure 15:
//
//   - Mode1Pipe: the Eris-style design with the central sequencer replaced
//     by 1Pipe timestamps — one reliable scattering carries the
//     transaction to every replica of every involved shard; replicas apply
//     in timestamp order; one round trip, no locks, no aborts.
//   - ModeLock: two-phase locking at shard primaries (in shard order, with
//     FIFO lock waiting) followed by primary-backup replication.
//   - ModeOCC: optimistic concurrency control: versioned reads, lock,
//     validate, commit+replicate; conflicts abort and retry.
//   - ModeNonTX: no concurrency control (upper bound).
//
// Payment writes its warehouse's hot row and New-Order reads it, so the 4
// warehouse rows are the contention points that make 2PL and OCC collapse
// at scale while 1Pipe keeps scaling.
package tpcc

import (
	"math/rand"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/stats"
	"onepipe/internal/workload"
)

// Mode selects the concurrency-control design.
type Mode uint8

const (
	// Mode1Pipe is the Eris-with-timestamps design.
	Mode1Pipe Mode = iota
	// ModeLock is two-phase locking with primary-backup replication.
	ModeLock
	// ModeOCC is optimistic concurrency control with replication.
	ModeOCC
	// ModeNonTX applies operations with no concurrency control.
	ModeNonTX
)

func (m Mode) String() string {
	switch m {
	case Mode1Pipe:
		return "1Pipe"
	case ModeLock:
		return "Lock"
	case ModeOCC:
		return "OCC"
	case ModeNonTX:
		return "NonTX"
	}
	return "?"
}

// Record-key layout inside a warehouse shard (canonical constants live
// with the generator in internal/workload).
const (
	keyWarehouseRow = workload.TPCCWarehouseRow // the hot row
)

// Config parameterizes a run.
type Config struct {
	// Warehouses is the shard count (the paper uses 4).
	Warehouses int
	// Replicas per shard (the paper uses 3).
	Replicas int
	// Outstanding is the closed-loop depth per client.
	Outstanding int
	// SnapshotFrac makes that fraction of transactions read-only
	// snapshots across all warehouses (0 reproduces Fig. 15 exactly).
	SnapshotFrac float64
	// ServerOpCost models CPU time per record operation.
	ServerOpCost sim.Time
	// RetryTimeout re-issues transactions with lost replies.
	RetryTimeout sim.Time
	Seed         int64
	// Txns, when non-nil, overrides the per-client transaction source
	// (default: workload.NewTPCCGen sharing the client's RNG, which
	// reproduces the historical mix draw-for-draw). The rng argument is
	// the client's own stream — a source may share it or ignore it.
	Txns func(client int, rng *rand.Rand) workload.ShardTxnSource
}

// DefaultConfig mirrors the paper: 4 warehouses, 3 replicas.
func DefaultConfig() Config {
	return Config{
		Warehouses:   4,
		Replicas:     3,
		Outstanding:  4,
		ServerOpCost: 300 * sim.Nanosecond,
		RetryTimeout: 500 * sim.Microsecond,
		Seed:         1,
	}
}

// Stats aggregates a measurement window.
type Stats struct {
	Committed uint64
	Aborted   uint64
	Latency   stats.Sample
	Window    sim.Time
}

// TxnPerSec returns total committed transactions per second.
func (s *Stats) TxnPerSec() float64 {
	if s.Window == 0 {
		return 0
	}
	return float64(s.Committed) / s.Window.Seconds()
}

// txKind is the transaction type.
type txKind uint8

const (
	txNewOrder txKind = iota
	txPayment
	// txSnapshot is a read-only snapshot transaction (§7.3.2): one
	// best-effort scattering reads a consistent cut across every
	// warehouse, serialized by its 1Pipe timestamp.
	txSnapshot
)

// shardOps is one transaction's operations against one warehouse shard.
type shardOps = workload.ShardOps

type txn struct {
	client  *node
	kind    txKind
	shards  []shardOps
	started sim.Time
	pending int
	epoch   uint64
	retries int
	// Lock/OCC state.
	phase    int
	lockIdx  int
	versions map[uint64]uint64
	failed   bool
	// snapshot collects per-warehouse versions for txSnapshot.
	snapshot []uint64
}

// Bench is a deployed TPC-C benchmark.
type Bench struct {
	Mode  Mode
	Cfg   Config
	Stats Stats
	cl    *core.Cluster
	nodes []*node
	// replicaSets[w] lists the replica procs of warehouse w (primary
	// first). Failed replicas are removed at runtime.
	replicaSets [][]netsim.ProcID
	measuring   bool
	// OnSnapshot observes each completed snapshot's per-warehouse version
	// vector (tests use it to check cut consistency).
	OnSnapshot func(versions []uint64)
}

type node struct {
	b       *Bench
	proc    *core.Proc
	rng *rand.Rand
	gen workload.ShardTxnSource
	// defGen, when the default generator is in use, lets genTxn track
	// runtime Cfg.SnapshotFrac mutations (benchmarks set it post-New).
	defGen *workload.TPCCGen
	data    map[uint64]*record
	cpuBusy sim.Time
	applied map[*txn]bool
	// Lock state (primaries only): FIFO waiters per record key, and
	// replication-completion state per in-flight execute.
	waiters  map[uint64][]*lockWait
	replWait map[*txn]*replState
}

type replState struct {
	src     netsim.ProcID
	t       *txn
	unlock  []uint64
	waiting int
}

type record struct {
	version  uint64
	lockedBy *txn
}

type lockWait struct {
	t    *txn
	src  netsim.ProcID
	keys []uint64
}

// New deploys the benchmark over a cluster.
func New(cl *core.Cluster, mode Mode, cfg Config) *Bench {
	b := &Bench{Mode: mode, Cfg: cfg, cl: cl}
	np := len(cl.Procs)
	for w := 0; w < cfg.Warehouses; w++ {
		set := make([]netsim.ProcID, 0, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			set = append(set, netsim.ProcID((w*cfg.Replicas+r)%np))
		}
		b.replicaSets = append(b.replicaSets, set)
	}
	for i, p := range cl.Procs {
		n := &node{
			b: b, proc: p,
			rng:      rand.New(rand.NewSource(cfg.Seed + int64(i)*104729)),
			data:     make(map[uint64]*record),
			applied:  make(map[*txn]bool),
			waiters:  make(map[uint64][]*lockWait),
			replWait: make(map[*txn]*replState),
		}
		if cfg.Txns != nil {
			n.gen = cfg.Txns(i, n.rng)
		} else {
			// Sharing the node's rng keeps generator draws interleaved
			// with retry-backoff draws exactly as they always were.
			n.defGen = workload.NewTPCCGen(n.rng, cfg.Warehouses, cfg.SnapshotFrac)
			n.gen = n.defGen
		}
		b.nodes = append(b.nodes, n)
		p.OnDeliver = n.onDeliver
		p.OnRaw = n.onRaw
		p.OnProcFail = func(failed netsim.ProcID, ts sim.Time) { b.removeReplica(failed) }
	}
	return b
}

// removeReplica drops a failed process from every replica set.
func (b *Bench) removeReplica(failed netsim.ProcID) {
	for w := range b.replicaSets {
		set := b.replicaSets[w][:0]
		for _, r := range b.replicaSets[w] {
			if r != failed {
				set = append(set, r)
			}
		}
		b.replicaSets[w] = set
	}
}

// Run drives the closed loop: warmup then a measured window.
func (b *Bench) Run(warmup, window sim.Time) *Stats {
	eng := b.cl.Net.Eng
	for _, n := range b.nodes {
		for i := 0; i < b.Cfg.Outstanding; i++ {
			n.startTxn()
		}
	}
	eng.RunFor(warmup)
	b.measuring = true
	b.Stats.Window = window
	eng.RunFor(window)
	b.measuring = false
	return &b.Stats
}

func (n *node) key(w, local int) uint64 { return workload.TPCCKey(w, local) }

// genTxn pulls the next transaction from the node's ShardTxnSource
// (workload.TPCCGen by default — New-Order/Payment split evenly, plus
// read-only snapshots at SnapshotFrac) and classifies its kind from the op
// shape: all-reads is a snapshot, a write to the hot warehouse row is a
// Payment, anything else is a New-Order.
func (n *node) genTxn() *txn {
	t := &txn{client: n, started: n.b.cl.Net.Eng.Now()}
	if n.defGen != nil {
		n.defGen.SetSnapshotFrac(n.b.Cfg.SnapshotFrac)
	}
	t.shards = n.gen.Next()
	t.kind = classify(t.shards)
	return t
}

func classify(shards []shardOps) txKind {
	allRead := true
	for _, s := range shards {
		for _, op := range s.Ops {
			if op.Kind != workload.OpRead {
				allRead = false
			}
			if op.Kind == workload.OpWrite && op.Key&0xffffffff == keyWarehouseRow {
				return txPayment
			}
		}
	}
	if allRead {
		return txSnapshot
	}
	return txNewOrder
}

func (n *node) startTxn() { n.issue(n.genTxn()) }

func (n *node) issue(t *txn) {
	switch n.b.Mode {
	case Mode1Pipe:
		n.issue1Pipe(t)
	case ModeLock:
		n.issueLock(t)
	case ModeOCC:
		n.issueOCC(t)
	case ModeNonTX:
		n.issueNonTX(t)
	}
}

func (n *node) finish(t *txn, committed bool) {
	t.epoch++
	b := n.b
	if b.measuring {
		if committed {
			b.Stats.Committed++
			b.Stats.Latency.Add(float64(b.cl.Net.Eng.Now()-t.started) / 1000)
		} else {
			b.Stats.Aborted++
		}
	}
	n.startTxn()
}

func (n *node) retryLater(t *txn) {
	if n.b.measuring {
		n.b.Stats.Aborted++
	}
	t.retries++
	t.epoch++
	back := sim.Time(1+n.rng.Intn(1<<uint(min(t.retries, 6)))) * sim.Microsecond
	n.b.cl.Net.Eng.After(back, func() {
		t.phase, t.pending, t.lockIdx = 0, 0, 0
		t.failed = false
		t.versions = nil
		t.started = n.b.cl.Net.Eng.Now() // latency counts the retry only
		n.issue(t)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (n *node) armRetry(t *txn) {
	if n.b.Cfg.RetryTimeout <= 0 {
		return
	}
	t.epoch++
	epoch := t.epoch
	n.b.cl.Net.Eng.After(n.b.Cfg.RetryTimeout, func() {
		if t.epoch != epoch {
			return
		}
		n.retryLater(t)
	})
}

// serve models server CPU.
func (n *node) serve(nops int, fn func()) {
	eng := n.b.cl.Net.Eng
	start := eng.Now()
	if n.cpuBusy > start {
		start = n.cpuBusy
	}
	n.cpuBusy = start + sim.Time(nops)*n.b.Cfg.ServerOpCost
	eng.At(n.cpuBusy, fn)
}

func (n *node) applyOps(ops []workload.Op) {
	for _, op := range ops {
		r := n.data[op.Key]
		if r == nil {
			r = &record{}
			n.data[op.Key] = r
		}
		if op.Kind == workload.OpWrite {
			r.version++
		}
	}
}
