// Package raft implements a compact Raft consensus core (leader election,
// log replication, commitment) sufficient to back 1Pipe's replicated
// network controller (§5.2: "The controller itself is replicated using
// Paxos or Raft, so it is highly available").
//
// The implementation is single-threaded and event-driven: it exchanges
// messages through a Transport and takes time from a scheduler, so it runs
// deterministically on the simulation engine.
package raft

import (
	"fmt"
	"math/rand"

	"onepipe/internal/sim"
)

// Role is a node's current Raft role.
type Role uint8

const (
	// Follower accepts entries from the current leader.
	Follower Role = iota
	// Candidate is soliciting votes.
	Candidate
	// Leader replicates its log to followers.
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return "?"
}

// Entry is one replicated log entry.
type Entry struct {
	Term int
	Cmd  any
}

// Message is the union of Raft RPCs (requests and replies are messages, so
// the whole protocol is asynchronous).
type Message struct {
	From, To int
	Term     int

	Kind MsgKind
	// RequestVote fields.
	LastLogIndex, LastLogTerm int
	Granted                   bool
	// AppendEntries fields.
	PrevLogIndex, PrevLogTerm int
	Entries                   []Entry
	LeaderCommit              int
	Success                   bool
	MatchIndex                int
}

// MsgKind discriminates the RPC type.
type MsgKind uint8

const (
	// MsgVoteReq solicits a vote.
	MsgVoteReq MsgKind = iota
	// MsgVoteResp answers a vote solicitation.
	MsgVoteResp
	// MsgAppendReq replicates entries (or heartbeats when empty).
	MsgAppendReq
	// MsgAppendResp acknowledges replication.
	MsgAppendResp
)

// Transport delivers messages between Raft nodes (the controller's
// management network).
type Transport interface {
	Send(msg Message)
}

// Scheduler provides timers; the simulation engine satisfies it.
type Scheduler interface {
	After(d sim.Time, fn func())
	Now() sim.Time
}

// Config tunes the protocol timers.
type Config struct {
	// HeartbeatInterval is the leader's AppendEntries cadence.
	HeartbeatInterval sim.Time
	// ElectionTimeoutMin/Max bound the randomized follower timeout.
	ElectionTimeoutMin, ElectionTimeoutMax sim.Time
}

// DefaultConfig returns timers suitable for an intra-datacenter management
// network (RTT tens of microseconds).
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval:  200 * sim.Microsecond,
		ElectionTimeoutMin: 1 * sim.Millisecond,
		ElectionTimeoutMax: 2 * sim.Millisecond,
	}
}

// Node is one Raft replica.
type Node struct {
	ID    int
	peers []int
	cfg   Config
	tr    Transport
	sched Scheduler
	rng   *rand.Rand

	role        Role
	currentTerm int
	votedFor    int // -1 when none
	log         []Entry
	commitIndex int
	lastApplied int

	votes      map[int]bool
	nextIndex  map[int]int
	matchIndex map[int]int

	// apply is invoked in log order for every committed entry.
	apply func(index int, cmd any)
	// onLeader, if set, fires when this node becomes leader.
	onLeader func()

	electionEpoch  uint64
	heartbeatEpoch uint64
	stopped        bool
}

// NewNode creates a replica. peers lists ALL node IDs including id. apply
// receives committed commands in order.
func NewNode(id int, peers []int, tr Transport, sched Scheduler, rng *rand.Rand, cfg Config, apply func(index int, cmd any)) *Node {
	n := &Node{
		ID: id, peers: peers, cfg: cfg, tr: tr, sched: sched, rng: rng,
		votedFor: -1, apply: apply,
		nextIndex:  make(map[int]int),
		matchIndex: make(map[int]int),
	}
	n.resetElectionTimer()
	return n
}

// SetOnLeader registers a leadership callback.
func (n *Node) SetOnLeader(fn func()) { n.onLeader = fn }

// Role returns the node's current role.
func (n *Node) Role() Role { return n.role }

// Term returns the node's current term.
func (n *Node) Term() int { return n.currentTerm }

// CommitIndex returns the highest committed log index (1-based; 0 = none).
func (n *Node) CommitIndex() int { return n.commitIndex }

// Log returns a copy of the log (tests and recovery).
func (n *Node) Log() []Entry { return append([]Entry(nil), n.log...) }

// Stop halts the node (crash).
func (n *Node) Stop() { n.stopped = true }

// Restart revives a stopped node as a follower, keeping its durable state
// (term, vote, log).
func (n *Node) Restart() {
	n.stopped = false
	n.role = Follower
	n.resetElectionTimer()
}

// Stopped reports whether the node is crashed.
func (n *Node) Stopped() bool { return n.stopped }

// Propose appends a command to the leader's log. It returns the assigned
// index (1-based) and term, or ok=false if this node is not the leader.
func (n *Node) Propose(cmd any) (index, term int, ok bool) {
	if n.stopped || n.role != Leader {
		return 0, 0, false
	}
	n.log = append(n.log, Entry{Term: n.currentTerm, Cmd: cmd})
	idx := len(n.log)
	n.matchIndex[n.ID] = idx
	n.broadcastAppend()
	return idx, n.currentTerm, true
}

func (n *Node) lastLogIndex() int { return len(n.log) }
func (n *Node) lastLogTerm() int {
	if len(n.log) == 0 {
		return 0
	}
	return n.log[len(n.log)-1].Term
}

func (n *Node) resetElectionTimer() {
	n.electionEpoch++
	epoch := n.electionEpoch
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin + sim.Time(n.rng.Int63n(int64(span)+1))
	n.sched.After(d, func() {
		if n.stopped || n.electionEpoch != epoch || n.role == Leader {
			return
		}
		n.startElection()
	})
}

func (n *Node) startElection() {
	n.role = Candidate
	n.currentTerm++
	n.votedFor = n.ID
	n.votes = map[int]bool{n.ID: true}
	n.resetElectionTimer()
	for _, p := range n.peers {
		if p == n.ID {
			continue
		}
		n.tr.Send(Message{
			From: n.ID, To: p, Term: n.currentTerm, Kind: MsgVoteReq,
			LastLogIndex: n.lastLogIndex(), LastLogTerm: n.lastLogTerm(),
		})
	}
	if n.hasQuorum(len(n.votes)) { // single-node cluster
		n.becomeLeader()
	}
}

func (n *Node) hasQuorum(k int) bool { return 2*k > len(n.peers) }

func (n *Node) becomeLeader() {
	n.role = Leader
	for _, p := range n.peers {
		n.nextIndex[p] = n.lastLogIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.ID] = n.lastLogIndex()
	n.heartbeat()
	if n.onLeader != nil {
		n.onLeader()
	}
}

func (n *Node) heartbeat() {
	if n.stopped || n.role != Leader {
		return
	}
	n.broadcastAppend()
	n.heartbeatEpoch++
	epoch := n.heartbeatEpoch
	n.sched.After(n.cfg.HeartbeatInterval, func() {
		if n.heartbeatEpoch != epoch {
			return
		}
		n.heartbeat()
	})
}

func (n *Node) broadcastAppend() {
	for _, p := range n.peers {
		if p == n.ID {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to int) {
	next := n.nextIndex[to]
	if next < 1 {
		next = 1
	}
	prevIdx := next - 1
	prevTerm := 0
	if prevIdx >= 1 && prevIdx <= len(n.log) {
		prevTerm = n.log[prevIdx-1].Term
	}
	var entries []Entry
	if next <= len(n.log) {
		entries = append(entries, n.log[next-1:]...)
	}
	n.tr.Send(Message{
		From: n.ID, To: to, Term: n.currentTerm, Kind: MsgAppendReq,
		PrevLogIndex: prevIdx, PrevLogTerm: prevTerm,
		Entries: entries, LeaderCommit: n.commitIndex,
	})
}

// Handle processes one incoming message; the transport calls it on
// delivery.
func (n *Node) Handle(m Message) {
	if n.stopped {
		return
	}
	if m.Term > n.currentTerm {
		n.currentTerm = m.Term
		n.votedFor = -1
		if n.role != Follower {
			n.role = Follower
			n.resetElectionTimer()
		}
	}
	switch m.Kind {
	case MsgVoteReq:
		n.onVoteReq(m)
	case MsgVoteResp:
		n.onVoteResp(m)
	case MsgAppendReq:
		n.onAppendReq(m)
	case MsgAppendResp:
		n.onAppendResp(m)
	}
}

func (n *Node) onVoteReq(m Message) {
	grant := false
	if m.Term >= n.currentTerm && (n.votedFor == -1 || n.votedFor == m.From) {
		upToDate := m.LastLogTerm > n.lastLogTerm() ||
			(m.LastLogTerm == n.lastLogTerm() && m.LastLogIndex >= n.lastLogIndex())
		if upToDate {
			grant = true
			n.votedFor = m.From
			n.resetElectionTimer()
		}
	}
	n.tr.Send(Message{From: n.ID, To: m.From, Term: n.currentTerm, Kind: MsgVoteResp, Granted: grant})
}

func (n *Node) onVoteResp(m Message) {
	if n.role != Candidate || m.Term != n.currentTerm || !m.Granted {
		return
	}
	n.votes[m.From] = true
	if n.hasQuorum(len(n.votes)) {
		n.becomeLeader()
	}
}

func (n *Node) onAppendReq(m Message) {
	if m.Term < n.currentTerm {
		n.tr.Send(Message{From: n.ID, To: m.From, Term: n.currentTerm, Kind: MsgAppendResp, Success: false})
		return
	}
	// Valid leader for this term.
	if n.role != Follower {
		n.role = Follower
	}
	n.resetElectionTimer()
	// Log consistency check.
	if m.PrevLogIndex > len(n.log) ||
		(m.PrevLogIndex >= 1 && n.log[m.PrevLogIndex-1].Term != m.PrevLogTerm) {
		n.tr.Send(Message{From: n.ID, To: m.From, Term: n.currentTerm, Kind: MsgAppendResp, Success: false})
		return
	}
	// Append, truncating conflicts.
	for i, e := range m.Entries {
		idx := m.PrevLogIndex + 1 + i
		if idx <= len(n.log) {
			if n.log[idx-1].Term != e.Term {
				n.log = n.log[:idx-1]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	if m.LeaderCommit > n.commitIndex {
		ci := m.LeaderCommit
		if last := m.PrevLogIndex + len(m.Entries); ci > last {
			ci = last
		}
		if ci > n.commitIndex {
			n.commitIndex = ci
			n.applyCommitted()
		}
	}
	n.tr.Send(Message{
		From: n.ID, To: m.From, Term: n.currentTerm, Kind: MsgAppendResp,
		Success: true, MatchIndex: m.PrevLogIndex + len(m.Entries),
	})
}

func (n *Node) onAppendResp(m Message) {
	if n.role != Leader || m.Term != n.currentTerm {
		return
	}
	if !m.Success {
		if n.nextIndex[m.From] > 1 {
			n.nextIndex[m.From]--
		}
		n.sendAppend(m.From)
		return
	}
	if m.MatchIndex > n.matchIndex[m.From] {
		n.matchIndex[m.From] = m.MatchIndex
		n.nextIndex[m.From] = m.MatchIndex + 1
	}
	// Advance commitIndex: the highest index replicated on a quorum with
	// an entry from the current term.
	for idx := len(n.log); idx > n.commitIndex; idx-- {
		if n.log[idx-1].Term != n.currentTerm {
			break
		}
		count := 0
		for _, p := range n.peers {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if n.hasQuorum(count) {
			n.commitIndex = idx
			n.applyCommitted()
			break
		}
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		if n.apply != nil {
			n.apply(n.lastApplied, n.log[n.lastApplied-1].Cmd)
		}
	}
}

// String summarizes the node for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("raft%d{%s t=%d log=%d commit=%d}", n.ID, n.role, n.currentTerm, len(n.log), n.commitIndex)
}
