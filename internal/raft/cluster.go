package raft

import (
	"math/rand"

	"onepipe/internal/sim"
)

// Cluster wires N Raft nodes over a simulated management network with a
// configurable per-message delay and loss rate — the test and deployment
// harness for the replicated controller.
type Cluster struct {
	Eng   *sim.Engine
	Nodes []*Node
	// Delay is the one-way message latency; Jitter adds U(0,Jitter).
	Delay, Jitter sim.Time
	// Loss is the per-message drop probability.
	Loss float64
	// Partitioned[i][j] blocks i->j delivery.
	partitioned map[[2]int]bool
	rng         *rand.Rand
}

type clusterTransport struct {
	c  *Cluster
	id int
}

func (t clusterTransport) Send(m Message) { t.c.route(m) }

// NewCluster builds n nodes applying commands via apply(nodeID, index, cmd).
func NewCluster(eng *sim.Engine, n int, cfg Config, apply func(node, index int, cmd any)) *Cluster {
	c := &Cluster{
		Eng:         eng,
		Delay:       20 * sim.Microsecond,
		Jitter:      10 * sim.Microsecond,
		partitioned: make(map[[2]int]bool),
		rng:         rand.New(rand.NewSource(12345)),
	}
	peers := make([]int, n)
	for i := range peers {
		peers[i] = i
	}
	for i := 0; i < n; i++ {
		i := i
		var ap func(index int, cmd any)
		if apply != nil {
			ap = func(index int, cmd any) { apply(i, index, cmd) }
		}
		node := NewNode(i, peers, clusterTransport{c: c, id: i},
			engineSched{eng}, rand.New(rand.NewSource(int64(1000+i))), cfg, ap)
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

type engineSched struct{ eng *sim.Engine }

func (s engineSched) After(d sim.Time, fn func()) { s.eng.After(d, fn) }
func (s engineSched) Now() sim.Time               { return s.eng.Now() }

func (c *Cluster) route(m Message) {
	if m.To < 0 || m.To >= len(c.Nodes) {
		return
	}
	if c.partitioned[[2]int{m.From, m.To}] {
		return
	}
	if c.Loss > 0 && c.rng.Float64() < c.Loss {
		return
	}
	d := c.Delay
	if c.Jitter > 0 {
		d += sim.Time(c.rng.Int63n(int64(c.Jitter)))
	}
	node := c.Nodes[m.To]
	c.Eng.After(d, func() { node.Handle(m) })
}

// Partition blocks traffic between the two groups (both directions).
func (c *Cluster) Partition(a, b []int) {
	for _, i := range a {
		for _, j := range b {
			c.partitioned[[2]int{i, j}] = true
			c.partitioned[[2]int{j, i}] = true
		}
	}
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.partitioned = make(map[[2]int]bool) }

// Leader returns the current leader among live nodes, or nil.
func (c *Cluster) Leader() *Node {
	for _, n := range c.Nodes {
		if !n.Stopped() && n.Role() == Leader {
			return n
		}
	}
	return nil
}

// WaitLeader runs the simulation until a leader exists or the deadline
// passes; it returns the leader or nil.
func (c *Cluster) WaitLeader(deadline sim.Time) *Node {
	for c.Eng.Now() < deadline {
		if l := c.Leader(); l != nil {
			return l
		}
		c.Eng.RunFor(100 * sim.Microsecond)
	}
	return c.Leader()
}
