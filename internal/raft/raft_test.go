package raft

import (
	"fmt"
	"testing"

	"onepipe/internal/sim"
)

func newTestCluster(n int, apply func(node, index int, cmd any)) (*sim.Engine, *Cluster) {
	eng := sim.NewEngine(1)
	c := NewCluster(eng, n, DefaultConfig(), apply)
	return eng, c
}

func TestLeaderElection(t *testing.T) {
	eng, c := newTestCluster(3, nil)
	l := c.WaitLeader(50 * sim.Millisecond)
	if l == nil {
		t.Fatal("no leader elected")
	}
	// Exactly one leader.
	eng.RunFor(5 * sim.Millisecond)
	leaders := 0
	for _, n := range c.Nodes {
		if n.Role() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders", leaders)
	}
}

func TestLogReplicationAndApply(t *testing.T) {
	applied := make(map[int][]any)
	eng, c := newTestCluster(3, func(node, index int, cmd any) {
		applied[node] = append(applied[node], cmd)
	})
	l := c.WaitLeader(50 * sim.Millisecond)
	if l == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 10; i++ {
		if _, _, ok := l.Propose(fmt.Sprintf("cmd%d", i)); !ok {
			t.Fatal("propose rejected by leader")
		}
	}
	eng.RunFor(10 * sim.Millisecond)
	for node, cmds := range applied {
		if len(cmds) != 10 {
			t.Fatalf("node %d applied %d commands", node, len(cmds))
		}
		for i, cmd := range cmds {
			if cmd != fmt.Sprintf("cmd%d", i) {
				t.Fatalf("node %d applied %v at %d", node, cmd, i)
			}
		}
	}
	if len(applied) != 3 {
		t.Fatalf("only %d nodes applied", len(applied))
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	_, c := newTestCluster(3, nil)
	l := c.WaitLeader(50 * sim.Millisecond)
	for _, n := range c.Nodes {
		if n != l {
			if _, _, ok := n.Propose("x"); ok {
				t.Fatal("follower accepted proposal")
			}
		}
	}
}

func TestReElectionAfterLeaderCrash(t *testing.T) {
	eng, c := newTestCluster(5, nil)
	l1 := c.WaitLeader(50 * sim.Millisecond)
	if l1 == nil {
		t.Fatal("no leader")
	}
	l1.Stop()
	eng.RunFor(10 * sim.Millisecond)
	l2 := c.WaitLeader(eng.Now() + 50*sim.Millisecond)
	if l2 == nil || l2 == l1 {
		t.Fatal("no new leader after crash")
	}
	if l2.Term() <= l1.Term() {
		t.Fatalf("new leader term %d not above old %d", l2.Term(), l1.Term())
	}
}

func TestCommittedEntriesSurviveLeaderCrash(t *testing.T) {
	applied := make(map[int][]any)
	eng, c := newTestCluster(5, func(node, index int, cmd any) {
		applied[node] = append(applied[node], cmd)
	})
	l1 := c.WaitLeader(50 * sim.Millisecond)
	l1.Propose("durable")
	eng.RunFor(10 * sim.Millisecond)
	l1.Stop()
	l2 := c.WaitLeader(eng.Now() + 50*sim.Millisecond)
	if l2 == nil {
		t.Fatal("no new leader")
	}
	l2.Propose("after-crash")
	eng.RunFor(20 * sim.Millisecond)
	for node, cmds := range applied {
		if c.Nodes[node].Stopped() {
			continue
		}
		if len(cmds) != 2 || cmds[0] != "durable" || cmds[1] != "after-crash" {
			t.Fatalf("node %d applied %v", node, cmds)
		}
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	applied := make(map[int]int)
	eng, c := newTestCluster(5, func(node, index int, cmd any) { applied[node]++ })
	l := c.WaitLeader(50 * sim.Millisecond)
	// Partition the leader with one other node (minority side).
	minority := []int{l.ID, (l.ID + 1) % 5}
	var majority []int
	for i := 0; i < 5; i++ {
		if i != minority[0] && i != minority[1] {
			majority = append(majority, i)
		}
	}
	c.Partition(minority, majority)
	l.Propose("lost")
	eng.RunFor(20 * sim.Millisecond)
	if applied[majority[0]] != 0 {
		t.Fatal("majority applied an uncommittable entry")
	}
	// The majority side elects a fresh leader and can commit.
	var l2 *Node
	for _, i := range majority {
		if c.Nodes[i].Role() == Leader {
			l2 = c.Nodes[i]
		}
	}
	if l2 == nil {
		t.Fatal("majority did not elect a leader")
	}
	l2.Propose("win")
	eng.RunFor(20 * sim.Millisecond)
	for _, i := range majority {
		if applied[i] != 1 {
			t.Fatalf("majority node %d applied %d", i, applied[i])
		}
	}
	// Heal: the old leader steps down and converges (the "lost" entry is
	// overwritten).
	c.Heal()
	eng.RunFor(50 * sim.Millisecond)
	if c.Nodes[l.ID].Role() == Leader && c.Nodes[l.ID].Term() <= l2.Term() {
		t.Fatal("stale leader did not step down")
	}
	for _, i := range minority {
		if applied[i] != 1 {
			t.Fatalf("healed node %d applied %d", i, applied[i])
		}
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	applied := make(map[int]int)
	eng, c := newTestCluster(3, func(node, index int, cmd any) { applied[node]++ })
	c.Loss = 0.2
	l := c.WaitLeader(200 * sim.Millisecond)
	if l == nil {
		t.Fatal("no leader under 20% loss")
	}
	committed := 0
	for i := 0; i < 20; i++ {
		if l.Stopped() || l.Role() != Leader {
			l = c.WaitLeader(eng.Now() + 100*sim.Millisecond)
			if l == nil {
				t.Fatal("lost leadership permanently")
			}
		}
		if _, _, ok := l.Propose(i); ok {
			committed++
		}
		eng.RunFor(5 * sim.Millisecond)
	}
	eng.RunFor(200 * sim.Millisecond)
	if applied[l.ID] == 0 {
		t.Fatal("nothing committed under loss")
	}
}

// Safety property: all applied sequences are prefix-consistent across nodes.
func TestAppliedPrefixConsistency(t *testing.T) {
	seqs := make(map[int][]any)
	eng, c := newTestCluster(5, func(node, index int, cmd any) {
		seqs[node] = append(seqs[node], cmd)
	})
	c.Loss = 0.1
	rng := eng.Rand()
	for round := 0; round < 30; round++ {
		if l := c.Leader(); l != nil {
			l.Propose(round)
		}
		// Random crash/restart churn.
		if round%7 == 3 {
			victim := c.Nodes[rng.Intn(5)]
			if !victim.Stopped() {
				victim.Stop()
				eng.After(8*sim.Millisecond, victim.Restart)
			}
		}
		eng.RunFor(3 * sim.Millisecond)
	}
	eng.RunFor(100 * sim.Millisecond)
	// Prefix consistency.
	var longest []any
	for _, s := range seqs {
		if len(s) > len(longest) {
			longest = s
		}
	}
	for node, s := range seqs {
		for i := range s {
			if s[i] != longest[i] {
				t.Fatalf("node %d diverges at %d: %v vs %v", node, i, s[i], longest[i])
			}
		}
	}
}
