package workload

import (
	"bytes"
	"strings"
	"testing"

	"onepipe/internal/sim"
)

// drain pulls up to n intents.
func drain(s Source, n int) []Intent {
	var out []Intent
	for len(out) < n {
		it, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out
}

// TestRoundRobinSchedule pins the broadcast source against the historical
// ticker loop: first fire at phase+gap, destinations cycling and skipping
// self, time-nondecreasing across the stream.
func TestRoundRobinSchedule(t *testing.T) {
	const n, gap = 4, sim.Time(1000)
	its := drain(NewRoundRobin(n, gap, 64, false), 4*n)
	// Process 0's first three sends: to 1, 2, 3 at gap, 2*gap, 3*gap.
	want := []struct {
		src, dst int
		at       sim.Time
	}{
		{0, 1, 1000}, {1, 2, 1250}, {2, 3, 1500}, {3, 0, 1750},
		{0, 2, 2000}, {1, 3, 2250}, {2, 0, 2500}, {3, 1, 2750},
		{0, 3, 3000}, {1, 0, 3250}, {2, 1, 3500}, {3, 2, 3750},
		{0, 1, 4000}, {1, 2, 4250}, {2, 3, 4500}, {3, 0, 4750},
	}
	for i, w := range want {
		it := its[i]
		if it.Src != w.src || it.Dsts[0] != w.dst || it.At != w.at {
			t.Fatalf("intent %d: got src=%d dst=%d at=%d, want src=%d dst=%d at=%d",
				i, it.Src, it.Dsts[0], it.At, w.src, w.dst, w.at)
		}
	}
}

// TestSyntheticDeterminism: equal seeds emit identical streams; the stream
// is time-nondecreasing, self-sends never happen, and the diurnal ramp
// actually modulates density.
func TestSyntheticDeterminism(t *testing.T) {
	mk := func() *Synthetic {
		return NewSynthetic(SyntheticConfig{
			Procs: 16, MeanGap: 500, Fanout: 2, Size: ETCSize,
			ZipfTheta: 0.99, ReliableFrac: 0.3, Seed: 7,
			Rate: Diurnal(200*sim.Microsecond, 0.5, 2),
			Stop: 400 * sim.Microsecond,
		})
	}
	a, b := drain(mk(), 100000), drain(mk(), 100000)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths differ or empty: %d vs %d", len(a), len(b))
	}
	var last sim.Time
	for i := range a {
		if a[i].At != b[i].At || a[i].Src != b[i].Src || a[i].Size != b[i].Size ||
			len(a[i].Dsts) != len(b[i].Dsts) || a[i].Opts != b[i].Opts {
			t.Fatalf("intent %d differs between equal-seed streams", i)
		}
		if a[i].At < last {
			t.Fatalf("intent %d: time went backwards", i)
		}
		last = a[i].At
		for _, d := range a[i].Dsts {
			if d == a[i].Src {
				t.Fatalf("intent %d: self-send", i)
			}
		}
	}
}

// TestZipfSkewsDestinations: with heavy skew the hottest destination must
// receive far more than its uniform share.
func TestZipfSkewsDestinations(t *testing.T) {
	s := NewSynthetic(SyntheticConfig{Procs: 32, MeanGap: 100, ZipfTheta: 0.99, Seed: 3})
	counts := make([]int, 32)
	for i := 0; i < 20000; i++ {
		it, _ := s.Next()
		counts[it.Dsts[0]]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*20000/32 {
		t.Errorf("hottest destination got %d of 20000; want heavy skew (>3x uniform share)", max)
	}
}

// TestIncastBursts: every period exactly Fanin senders hit the victim at
// one instant, none of them the victim itself.
func TestIncastBursts(t *testing.T) {
	in := NewIncast(16, 5, 8, 50*sim.Microsecond, 128, 0, 300*sim.Microsecond)
	byAt := map[sim.Time]int{}
	for {
		it, ok := in.Next()
		if !ok {
			break
		}
		if it.Dsts[0] != 5 {
			t.Fatalf("intent to %d, want victim 5", it.Dsts[0])
		}
		if it.Src == 5 {
			t.Fatal("victim sends to itself")
		}
		byAt[it.At]++
	}
	if len(byAt) != 5 {
		t.Fatalf("got %d bursts, want 5", len(byAt))
	}
	for at, n := range byAt {
		if n != 8 {
			t.Errorf("burst at %d has %d senders, want 8", at, n)
		}
	}
}

// TestMergeOrders: merged streams come out time-sorted with deterministic
// tie-breaks.
func TestMergeOrders(t *testing.T) {
	a := NewIncast(8, 0, 2, 1000, 64, 0, 10000)
	b := NewIncast(8, 1, 3, 700, 64, 0, 10000)
	m := Merge(a, b)
	var last sim.Time
	n := 0
	for {
		it, ok := m.Next()
		if !ok {
			break
		}
		if it.At < last {
			t.Fatalf("merge emitted time %d after %d", it.At, last)
		}
		last = it.At
		n++
	}
	if n != 9*2+14*3 {
		t.Errorf("merged %d intents, want %d", n, 9*2+14*3)
	}
}

// TestTraceRoundTrip is the record→replay determinism test: a composite
// source recorded to the text format and replayed must yield the identical
// intent stream, field for field.
func TestTraceRoundTrip(t *testing.T) {
	mk := func() Source {
		return Merge(
			NewSynthetic(SyntheticConfig{
				Procs: 12, MeanGap: 800, Fanout: 2, Size: ETCSize,
				ZipfTheta: 0.99, ReliableFrac: 0.4, Seed: 11,
				Stop: 200 * sim.Microsecond,
			}),
			NewIncast(12, 3, 6, 40*sim.Microsecond, 256, 0, 200*sim.Microsecond),
		)
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	orig := drain(Record(mk(), tw), 1<<30)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != len(orig) {
		t.Fatalf("recorded %d, drained %d", tw.Count(), len(orig))
	}
	rp, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := drain(rp, 1<<30)
	if len(replayed) != len(orig) {
		t.Fatalf("replayed %d intents, want %d", len(replayed), len(orig))
	}
	for i := range orig {
		a, b := orig[i], replayed[i]
		if a.At != b.At || a.Src != b.Src || a.Size != b.Size || a.Key != b.Key || a.Opts != b.Opts {
			t.Fatalf("intent %d differs after round trip: %+v vs %+v", i, a, b)
		}
		if len(a.Dsts) != len(b.Dsts) {
			t.Fatalf("intent %d: dst count differs", i)
		}
		for j := range a.Dsts {
			if a.Dsts[j] != b.Dsts[j] {
				t.Fatalf("intent %d: dst %d differs", i, j)
			}
		}
	}
}

// TestTraceParseErrors: malformed traces are rejected with line context.
func TestTraceParseErrors(t *testing.T) {
	cases := []string{
		"1000 0 1 64",                              // missing header
		TraceHeader + "\nxx 0 1 64",                // bad time
		TraceHeader + "\n1000 0 1 64 frob",         // unknown option
		TraceHeader + "\n2000 0 1 64\n1000 0 1 64", // time goes backwards
	}
	for i, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: parse accepted malformed trace", i)
		}
	}
}

// TestTraceOptionsRoundTrip covers every optional field in one line.
func TestTraceOptionsRoundTrip(t *testing.T) {
	in := Intent{At: 12345, Src: 2, Dsts: []int{4, 7, 9}, Size: 4096, Key: 99,
		Opts: SendOpts{Reliable: true, ConflictKey: 17, Unbatched: true}}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Write(in); err != nil {
		t.Fatal(err)
	}
	tw.Flush()
	its, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := its[0]
	if got.At != in.At || got.Src != in.Src || got.Key != in.Key || got.Opts != in.Opts ||
		len(got.Dsts) != 3 || got.Dsts[2] != 9 {
		t.Fatalf("round trip mangled intent: %+v vs %+v", got, in)
	}
}
