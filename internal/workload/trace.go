package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"onepipe/internal/sim"
)

// The trace format is one line per intent:
//
//	<t_ns> <src> <dst[,dst...]> <size> [key=K] [rel] [conflict=N] [nobatch]
//
// preceded by a "# onepipe-trace v1" header; later '#' lines and blank
// lines are ignored. Times are absolute nanoseconds, nondecreasing. The
// format round-trips every Intent field, so Record followed by Replay
// reproduces any source exactly — the workload-portability contract that
// lets one trace drive netsim, udpnet, and external tooling identically.

// TraceHeader is the magic first line of a trace file.
const TraceHeader = "# onepipe-trace v1"

// TraceWriter streams intents to a trace file.
type TraceWriter struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewTraceWriter writes the header and returns the writer.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{w: bufio.NewWriter(w)}
	_, tw.err = fmt.Fprintln(tw.w, TraceHeader)
	return tw
}

// Write appends one intent.
func (tw *TraceWriter) Write(it Intent) error {
	if tw.err != nil {
		return tw.err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d %d ", int64(it.At), it.Src)
	for i, d := range it.Dsts {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(d))
	}
	fmt.Fprintf(&sb, " %d", it.Size)
	if it.Key != 0 {
		fmt.Fprintf(&sb, " key=%d", it.Key)
	}
	if it.Opts.Reliable {
		sb.WriteString(" rel")
	}
	if it.Opts.ConflictKey != 0 {
		fmt.Fprintf(&sb, " conflict=%d", it.Opts.ConflictKey)
	}
	if it.Opts.Unbatched {
		sb.WriteString(" nobatch")
	}
	_, tw.err = fmt.Fprintln(tw.w, sb.String())
	tw.n++
	return tw.err
}

// Count returns the number of intents written.
func (tw *TraceWriter) Count() int { return tw.n }

// Flush flushes the underlying buffer.
func (tw *TraceWriter) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// ParseTrace reads a whole trace into memory.
func ParseTrace(r io.Reader) ([]Intent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out []Intent
	lineno := 0
	seenHeader := false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !seenHeader {
				if line != TraceHeader {
					return nil, fmt.Errorf("trace line 1: bad header %q", line)
				}
				seenHeader = true
			}
			continue
		}
		if !seenHeader {
			return nil, fmt.Errorf("trace line %d: missing %q header", lineno, TraceHeader)
		}
		it, err := parseIntent(line)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %v", lineno, err)
		}
		if len(out) > 0 && it.At < out[len(out)-1].At {
			return nil, fmt.Errorf("trace line %d: time goes backwards (%d < %d)",
				lineno, it.At, out[len(out)-1].At)
		}
		out = append(out, it)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseIntent(line string) (Intent, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Intent{}, fmt.Errorf("want at least 4 fields, got %d", len(f))
	}
	t, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return Intent{}, fmt.Errorf("bad time %q", f[0])
	}
	src, err := strconv.Atoi(f[1])
	if err != nil {
		return Intent{}, fmt.Errorf("bad src %q", f[1])
	}
	var dsts []int
	for _, s := range strings.Split(f[2], ",") {
		d, err := strconv.Atoi(s)
		if err != nil {
			return Intent{}, fmt.Errorf("bad dst %q", s)
		}
		dsts = append(dsts, d)
	}
	size, err := strconv.Atoi(f[3])
	if err != nil {
		return Intent{}, fmt.Errorf("bad size %q", f[3])
	}
	it := Intent{At: sim.Time(t), Src: src, Dsts: dsts, Size: size}
	for _, opt := range f[4:] {
		switch {
		case opt == "rel":
			it.Opts.Reliable = true
		case opt == "nobatch":
			it.Opts.Unbatched = true
		case strings.HasPrefix(opt, "key="):
			k, err := strconv.ParseUint(opt[4:], 10, 64)
			if err != nil {
				return Intent{}, fmt.Errorf("bad key %q", opt)
			}
			it.Key = k
		case strings.HasPrefix(opt, "conflict="):
			c, err := strconv.ParseUint(opt[9:], 10, 32)
			if err != nil {
				return Intent{}, fmt.Errorf("bad conflict %q", opt)
			}
			it.Opts.ConflictKey = uint32(c)
		default:
			return Intent{}, fmt.Errorf("unknown option %q", opt)
		}
	}
	return it, nil
}

// Replay turns a parsed trace back into a Source.
type Replay struct {
	its []Intent
	i   int
}

// NewReplay builds a source replaying its verbatim.
func NewReplay(its []Intent) *Replay { return &Replay{its: its} }

// ReadTrace parses r and returns a replay source.
func ReadTrace(r io.Reader) (*Replay, error) {
	its, err := ParseTrace(r)
	if err != nil {
		return nil, err
	}
	return NewReplay(its), nil
}

// Next replays the next recorded intent.
func (r *Replay) Next() (Intent, bool) {
	if r.i >= len(r.its) {
		return Intent{}, false
	}
	it := r.its[r.i]
	r.i++
	return it, true
}

// Recorder tees a source into a TraceWriter: every intent pulled through it
// is also written to the trace. Close the loop with Replay to prove the
// round trip (record→replay determinism).
type Recorder struct {
	src Source
	tw  *TraceWriter
}

// Record wraps src so its stream is dumped to tw as it is consumed.
func Record(src Source, tw *TraceWriter) *Recorder { return &Recorder{src: src, tw: tw} }

// Next forwards from the wrapped source, recording.
func (r *Recorder) Next() (Intent, bool) {
	it, ok := r.src.Next()
	if ok {
		r.tw.Write(it)
	}
	return it, ok
}
