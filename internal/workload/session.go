package workload

import (
	"math"

	"onepipe/internal/sim"
)

// SplitMix64 advances a one-word PRNG state and returns the next 64-bit
// output (Steele et al., "Fast Splittable Pseudorandom Number Generators").
// One uint64 of state per stream is what makes million-session closed-loop
// client pools affordable: a *rand.Rand costs ~5 KB each, a SplitMix64
// session costs 8 bytes. Streams seeded with distinct values are
// statistically independent for simulation purposes.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitMixFloat returns a uniform float64 in [0,1) from a SplitMix64 state.
func SplitMixFloat(state *uint64) float64 {
	return float64(SplitMix64(state)>>11) / (1 << 53)
}

// ExpDraw returns an exponentially distributed duration with the given mean
// from a SplitMix64 state — the think-time model for closed-loop clients.
// The draw is clamped to [1ns, 20*mean] so a single tail sample cannot park
// a session beyond the experiment window.
func ExpDraw(state *uint64, mean sim.Time) sim.Time {
	u := SplitMixFloat(state)
	d := sim.Time(-float64(mean) * math.Log(1-u))
	if d < 1 {
		d = 1
	}
	if max := 20 * mean; d > max {
		d = max
	}
	return d
}
