// Package workload generates traffic. The Source interface (source.go) is
// the unified abstraction: a deterministic, seedable stream of timestamped
// send intents, with round-robin broadcast, skewed/heavy-tailed synthetic,
// incast-burst and trace-replay implementations plus a recorder dumping any
// run back to the text trace format (trace.go, docs/workloads.md). The
// key and value-size generators below (uniform keys, YCSB-style Zipfian
// keys with hot spots, Facebook ETC value sizes, §7.3.1) feed both the
// transaction sources (TxnSource) and the Source implementations as
// adapters.
package workload

import (
	"math"
	"math/rand"
)

// KeyGen produces 64-bit keys.
type KeyGen interface {
	Next() uint64
}

// Uniform draws keys uniformly from [0, N).
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

// NewUniform returns a uniform generator over n keys.
func NewUniform(rng *rand.Rand, n uint64) *Uniform { return &Uniform{rng: rng, n: n} }

// Next returns the next key.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// Zipf draws keys from a Zipfian distribution (YCSB uses theta = 0.99),
// producing the hot keys that make contention experiments interesting.
// Implementation: Gray et al.'s rejection-free inverse transform as used by
// YCSB's ZipfianGenerator.
type Zipf struct {
	rng                   *rand.Rand
	n                     uint64
	theta                 float64
	alpha, zetan, eta     float64
	halfPowTheta, zeta2th float64
}

// NewZipf returns a Zipfian generator over n keys with parameter theta.
func NewZipf(rng *rand.Rand, n uint64, theta float64) *Zipf {
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2th = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.halfPowTheta = 1 + math.Pow(0.5, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2th/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Exact for small n; integral approximation for large n keeps
	// construction O(1)-ish.
	if n <= 10000 {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	small := zeta(10000, theta)
	// ∫ x^-theta dx from 10000 to n.
	return small + (math.Pow(float64(n), 1-theta)-math.Pow(10000, 1-theta))/(1-theta)
}

// Next returns the next key; key 0 is the hottest.
func (z *Zipf) Next() uint64 { return z.FromU(z.rng.Float64()) }

// FromU maps one uniform draw u in [0,1) to a Zipfian key — the inverse
// transform behind Next, exposed so callers with their own (cheaper) PRNG
// state can share one Zipf table across millions of sessions.
func (z *Zipf) FromU(u float64) uint64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// ETCValueSize draws a value size from a simplified Facebook ETC pool
// distribution: mostly tiny values with a heavy tail (Atikoglu et al.,
// SIGMETRICS'12).
func ETCValueSize(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.40:
		return 2 + rng.Intn(9) // tiny: 2-10 B
	case u < 0.90:
		return 16 + rng.Intn(496) // small: 16-512 B
	case u < 0.99:
		return 512 + rng.Intn(3584) // medium: 0.5-4 KB
	default:
		return 4096 + rng.Intn(60*1024) // tail: 4-64 KB
	}
}

// OpKind is a key-value operation type.
type OpKind uint8

const (
	// OpRead reads one key.
	OpRead OpKind = iota
	// OpWrite writes one key.
	OpWrite
)

// Op is one key-value operation in a transaction.
type Op struct {
	Kind  OpKind
	Key   uint64
	Value int // value size in bytes for writes
}

// TxnGen generates transactions of independent KV operations.
type TxnGen struct {
	rng       *rand.Rand
	keys      KeyGen
	opsPerTxn int
	writeFrac float64
}

// NewTxnGen builds a transaction generator: opsPerTxn operations, each a
// write with probability writeFrac.
func NewTxnGen(rng *rand.Rand, keys KeyGen, opsPerTxn int, writeFrac float64) *TxnGen {
	return &TxnGen{rng: rng, keys: keys, opsPerTxn: opsPerTxn, writeFrac: writeFrac}
}

// Next produces one transaction; keys within a transaction are distinct.
func (g *TxnGen) Next() []Op {
	ops := make([]Op, 0, g.opsPerTxn)
	seen := make(map[uint64]bool, g.opsPerTxn)
	for len(ops) < g.opsPerTxn {
		k := g.keys.Next()
		if seen[k] {
			continue
		}
		seen[k] = true
		op := Op{Kind: OpRead, Key: k}
		if g.rng.Float64() < g.writeFrac {
			op.Kind = OpWrite
			op.Value = ETCValueSize(g.rng)
		}
		ops = append(ops, op)
	}
	return ops
}

// ReadOnly reports whether every operation is a read.
func ReadOnly(ops []Op) bool {
	for _, op := range ops {
		if op.Kind == OpWrite {
			return false
		}
	}
	return true
}

// WriteOnly reports whether every operation is a write.
func WriteOnly(ops []Op) bool {
	for _, op := range ops {
		if op.Kind == OpRead {
			return false
		}
	}
	return true
}
