package workload

import "math/rand"

// ShardOps is one transaction's operations against one shard.
type ShardOps struct {
	Shard int
	Ops   []Op
}

// ShardTxnSource streams sharded transactions (TPC-C style); TPCCGen is the
// canonical implementation. The tpcc benchmark accepts any ShardTxnSource.
type ShardTxnSource interface {
	Next() []ShardOps
}

// TPC-C record-key layout inside a warehouse shard (the local half of
// TPCCKey). The warehouse row is the hot contention point: Payment writes
// it, New-Order reads it.
const (
	TPCCWarehouseRow = 0      // the hot row
	TPCCDistrictBase = 1      // 10 districts
	TPCCCustomerBase = 100    // 3000 customers
	TPCCStockBase    = 10_000 // 100k stock items
	TPCCOrderBase    = 200_000
)

// TPCCKey packs a warehouse and a local record id into one key.
func TPCCKey(w int, local int) uint64 { return uint64(w)<<32 | uint64(local) }

// TPCCGen generates the two most frequent TPC-C transactions (New-Order and
// Payment, split evenly — the 90% of TPC-C the paper benchmarks, §7.3.2) —
// or, with probability SnapshotFrac, a read-only snapshot touching every
// warehouse. The RNG is caller-owned: a benchmark node that interleaves
// other draws (retry backoff) on the same stream keeps its historical draw
// order by sharing the RNG with the generator.
type TPCCGen struct {
	rng          *rand.Rand
	warehouses   int
	snapshotFrac float64
}

// NewTPCCGen builds the generator.
func NewTPCCGen(rng *rand.Rand, warehouses int, snapshotFrac float64) *TPCCGen {
	return &TPCCGen{rng: rng, warehouses: warehouses, snapshotFrac: snapshotFrac}
}

// SetSnapshotFrac adjusts the snapshot mix on the fly (benchmarks tune it
// between construction and the run). Draw order is unaffected: the frac
// gates a draw only while nonzero, exactly as at construction time.
func (g *TPCCGen) SetSnapshotFrac(f float64) { g.snapshotFrac = f }

// Next draws one transaction. A snapshot is all-reads across every
// warehouse; Payment is recognizable as the only kind that writes the
// warehouse row (local key TPCCWarehouseRow).
func (g *TPCCGen) Next() []ShardOps {
	if g.snapshotFrac > 0 && g.rng.Float64() < g.snapshotFrac {
		shards := make([]ShardOps, 0, g.warehouses)
		for w := 0; w < g.warehouses; w++ {
			shards = append(shards, ShardOps{Shard: w, Ops: []Op{
				{Kind: OpRead, Key: TPCCKey(w, TPCCWarehouseRow)},
			}})
		}
		return shards
	}
	w := g.rng.Intn(g.warehouses)
	d := g.rng.Intn(10)
	if g.rng.Intn(2) == 0 {
		// New-Order: read the hot row, write district + order, 5-15 stock
		// item writes, 1% touching a remote warehouse.
		ops := []Op{
			{Kind: OpRead, Key: TPCCKey(w, TPCCWarehouseRow)},
			{Kind: OpWrite, Key: TPCCKey(w, TPCCDistrictBase+d), Value: 16},
			{Kind: OpWrite, Key: TPCCKey(w, TPCCOrderBase+g.rng.Intn(1<<20)), Value: 64},
		}
		items := 5 + g.rng.Intn(11)
		remote := -1
		if g.rng.Intn(100) == 0 && g.warehouses > 1 {
			remote = (w + 1 + g.rng.Intn(g.warehouses-1)) % g.warehouses
		}
		var remoteOps []Op
		for i := 0; i < items; i++ {
			item := g.rng.Intn(100_000)
			if remote >= 0 && i == 0 {
				remoteOps = append(remoteOps, Op{Kind: OpWrite, Key: TPCCKey(remote, TPCCStockBase+item), Value: 16})
				continue
			}
			ops = append(ops, Op{Kind: OpWrite, Key: TPCCKey(w, TPCCStockBase+item), Value: 16})
		}
		shards := []ShardOps{{Shard: w, Ops: ops}}
		if len(remoteOps) > 0 {
			shards = append(shards, ShardOps{Shard: remote, Ops: remoteOps})
		}
		return shards
	}
	// Payment: write the hot warehouse row, a district and a customer.
	c := g.rng.Intn(3000)
	return []ShardOps{{Shard: w, Ops: []Op{
		{Kind: OpWrite, Key: TPCCKey(w, TPCCWarehouseRow), Value: 8}, // hot row
		{Kind: OpWrite, Key: TPCCKey(w, TPCCDistrictBase+d), Value: 8},
		{Kind: OpWrite, Key: TPCCKey(w, TPCCCustomerBase+c), Value: 16},
	}}}
}
