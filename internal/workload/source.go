package workload

import (
	"container/heap"
	"math"
	"math/rand"

	"onepipe/internal/sim"
)

// SendOpts carries the per-intent delivery options a driver maps onto the
// fabric's send options (Reliable(), Conflicts(key), Unbatched()).
type SendOpts struct {
	Reliable    bool
	ConflictKey uint32
	Unbatched   bool
}

// Intent is one timestamped send: at time At, process Src scatters Size
// bytes to Dsts. Key carries application addressing (e.g. a KV key) for
// workloads that need it; drivers that don't can ignore it.
type Intent struct {
	At   sim.Time
	Src  int
	Dsts []int
	Size int
	Key  uint64
	Opts SendOpts
}

// Source is a deterministic, seedable stream of send intents in
// nondecreasing At order. Next returns ok=false when the stream is
// exhausted (unbounded sources never are; drivers stop pulling when the
// experiment window closes). Determinism contract: a Source derives every
// draw from the RNG(s) it was constructed with — two sources built with
// equal parameters and equal seeds emit identical streams, and a recorded
// trace (see Record/Replay) replays any source exactly.
type Source interface {
	Next() (Intent, bool)
}

// --- Round-robin broadcast (the Fig. 8 pattern) ---

// RoundRobin emits the paper's §7.2 all-to-all pattern: every process sends
// fixed-size messages round-robin to all peers at a fixed per-process rate,
// phase-staggered so process i's sends lead process i+1's within each gap.
// Entirely rng-free: the schedule is a pure function of (procs, gap, size).
type RoundRobin struct {
	procs int
	gap   sim.Time
	size  int
	rel   bool
	round int64
	pi    int
	next  []int // per-process round-robin destination cursor
}

// NewRoundRobin builds the broadcast source. gap is the per-process send
// interval (1/rate); rel marks every intent reliable.
func NewRoundRobin(procs int, gap sim.Time, size int, rel bool) *RoundRobin {
	next := make([]int, procs)
	for i := range next {
		next[i] = i + 1
	}
	return &RoundRobin{procs: procs, gap: gap, size: size, rel: rel, next: next}
}

// Next emits intents in (round, process) order; within one round process
// phases are pi*gap/procs, all below gap, so time order holds globally.
func (r *RoundRobin) Next() (Intent, bool) {
	pi, round := r.pi, r.round
	r.pi++
	if r.pi == r.procs {
		r.pi = 0
		r.round++
	}
	dst := r.next[pi] % r.procs
	if dst == pi {
		r.next[pi]++
		dst = r.next[pi] % r.procs
	}
	r.next[pi]++
	phase := sim.Time(int64(pi) * int64(r.gap) / int64(r.procs))
	// The first tick of a phase-staggered ticker fires at phase+gap (a
	// ticker never fires at its arming instant), so round 0 lands there.
	at := phase + sim.Time(round+1)*r.gap
	return Intent{At: at, Src: pi, Dsts: []int{dst}, Size: r.size,
		Opts: SendOpts{Reliable: r.rel}}, true
}

// --- Fixed periodic stream (background-load tickers as a Source) ---

// FixedStream emits one fixed scattering every Gap, first at Phase+Gap —
// exactly the schedule of a phase-staggered background-load ticker (a
// ticker never fires at its arming instant), but as a Source so it can be
// merged, limited, recorded, and replayed. Entirely rng-free.
type FixedStream struct {
	src   int
	dsts  []int
	gap   sim.Time
	phase sim.Time
	size  int
	opts  SendOpts
	k     int64
}

// NewFixedStream builds the periodic source: src scatters size bytes to
// dsts every gap, offset by phase.
func NewFixedStream(src int, dsts []int, gap, phase sim.Time, size int, opts SendOpts) *FixedStream {
	return &FixedStream{src: src, dsts: append([]int(nil), dsts...), gap: gap,
		phase: phase, size: size, opts: opts}
}

// Next emits the k-th tick at phase + k*gap (k >= 1); the stream is
// unbounded — wrap it in Limit to stop it.
func (f *FixedStream) Next() (Intent, bool) {
	f.k++
	return Intent{At: f.phase + sim.Time(f.k)*f.gap, Src: f.src,
		Dsts: f.dsts, Size: f.size, Opts: f.opts}, true
}

// --- Synthetic aggregate stream ---

// RateFn scales a Synthetic source's instantaneous rate at time t (1 =
// nominal). Used for diurnal ramps; nil means constant rate.
type RateFn func(t sim.Time) float64

// Diurnal returns a sinusoidal rate ramp oscillating between lo and hi with
// the given period — a day compressed into a simulation window.
func Diurnal(period sim.Time, lo, hi float64) RateFn {
	mid, amp := (lo+hi)/2, (hi-lo)/2
	return func(t sim.Time) float64 {
		return mid + amp*math.Sin(2*math.Pi*float64(t)/float64(period))
	}
}

// Ramp returns a linear rate ramp from lo at start to hi at end (clamped
// outside the interval).
func Ramp(start, end sim.Time, lo, hi float64) RateFn {
	return func(t sim.Time) float64 {
		switch {
		case t <= start:
			return lo
		case t >= end:
			return hi
		default:
			return lo + (hi-lo)*float64(t-start)/float64(end-start)
		}
	}
}

// SizeDist draws message sizes. ETCSize is the heavy-tailed adapter over the
// package's existing ETC value-size distribution.
type SizeDist func(rng *rand.Rand) int

// FixedSize returns a degenerate size distribution.
func FixedSize(n int) SizeDist { return func(*rand.Rand) int { return n } }

// ETCSize is the heavy-tailed ETC distribution as a SizeDist.
var ETCSize SizeDist = ETCValueSize

// SyntheticConfig parameterizes a Synthetic source.
type SyntheticConfig struct {
	Procs int
	// MeanGap is the mean inter-intent gap of the aggregate stream
	// (exponential arrivals across all processes combined).
	MeanGap sim.Time
	// Fanout is the destination count per intent (default 1).
	Fanout int
	// Size draws the message size (default FixedSize(64)).
	Size SizeDist
	// ZipfTheta, when nonzero, skews destination popularity Zipfian with
	// this parameter (process 0 hottest); zero picks uniformly.
	ZipfTheta float64
	// Rate modulates the arrival rate over time (nil = constant).
	Rate RateFn
	// ReliableFrac is the probability an intent is sent reliable.
	ReliableFrac float64
	// Start/Stop bound the stream; Stop 0 means unbounded.
	Start, Stop sim.Time
	Seed        int64
}

// Synthetic is an rng-driven aggregate source: exponential arrivals, skewed
// destination popularity, heavy-tailed sizes, and a time-varying rate.
type Synthetic struct {
	cfg  SyntheticConfig
	rng  *rand.Rand
	zipf *Zipf
	now  sim.Time
	dsts []int
}

// NewSynthetic builds the source; all randomness derives from cfg.Seed.
func NewSynthetic(cfg SyntheticConfig) *Synthetic {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 1
	}
	if cfg.Size == nil {
		cfg.Size = FixedSize(64)
	}
	s := &Synthetic{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), now: cfg.Start}
	if cfg.ZipfTheta > 0 {
		s.zipf = NewZipf(s.rng, uint64(cfg.Procs), cfg.ZipfTheta)
	}
	return s
}

// Next draws the next intent.
func (s *Synthetic) Next() (Intent, bool) {
	rate := 1.0
	if s.cfg.Rate != nil {
		rate = s.cfg.Rate(s.now)
		if rate <= 0 {
			rate = 1e-3
		}
	}
	gap := float64(s.cfg.MeanGap) / rate * s.rng.ExpFloat64()
	s.now += sim.Time(gap) + 1
	if s.cfg.Stop > 0 && s.now >= s.cfg.Stop {
		return Intent{}, false
	}
	src := s.rng.Intn(s.cfg.Procs)
	s.dsts = s.dsts[:0]
	for len(s.dsts) < s.cfg.Fanout {
		var d int
		if s.zipf != nil {
			d = int(s.zipf.Next())
		} else {
			d = s.rng.Intn(s.cfg.Procs)
		}
		if d == src {
			d = (d + 1) % s.cfg.Procs
		}
		dup := false
		for _, e := range s.dsts {
			if e == d {
				dup = true
			}
		}
		if dup {
			continue
		}
		s.dsts = append(s.dsts, d)
	}
	it := Intent{At: s.now, Src: src, Dsts: append([]int(nil), s.dsts...),
		Size: s.cfg.Size(s.rng)}
	if s.cfg.ReliableFrac > 0 && s.rng.Float64() < s.cfg.ReliableFrac {
		it.Opts.Reliable = true
	}
	return it, true
}

// --- Incast bursts ---

// Incast emits periodic fan-in bursts: every Period, Fanin distinct senders
// (rotating through the process space) each send one Size-byte message to
// Victim at the same instant — the pattern that stresses receiver reorder
// memory and tail latency.
type Incast struct {
	Procs, Victim, Fanin int
	Period               sim.Time
	Size                 int
	Start, Stop          sim.Time
	burst                int64
	i                    int
}

// NewIncast builds the burst source.
func NewIncast(procs, victim, fanin int, period sim.Time, size int, start, stop sim.Time) *Incast {
	return &Incast{Procs: procs, Victim: victim, Fanin: fanin, Period: period,
		Size: size, Start: start, Stop: stop}
}

// Next emits the burst members in sender order, then advances the period.
func (in *Incast) Next() (Intent, bool) {
	at := in.Start + sim.Time(in.burst+1)*in.Period
	if in.Stop > 0 && at >= in.Stop {
		return Intent{}, false
	}
	// Rotate the sender set burst to burst so no fixed host pays the cost.
	src := (in.Victim + 1 + in.i + int(in.burst)*in.Fanin) % in.Procs
	if src == in.Victim {
		src = (src + 1) % in.Procs
	}
	in.i++
	if in.i == in.Fanin {
		in.i = 0
		in.burst++
	}
	return Intent{At: at, Src: src, Dsts: []int{in.Victim}, Size: in.Size}, true
}

// --- Merge ---

type mergeItem struct {
	it  Intent
	src int
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].it.At != h[j].it.At {
		return h[i].it.At < h[j].it.At
	}
	return h[i].src < h[j].src // deterministic tie-break: source index
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Merged interleaves several sources into one time-ordered stream (ties
// break by constructor order, deterministically).
type Merged struct {
	srcs []Source
	h    mergeHeap
	init bool
}

// Merge combines sources into one stream.
func Merge(srcs ...Source) *Merged { return &Merged{srcs: srcs} }

// Next returns the earliest pending intent across all member sources.
func (m *Merged) Next() (Intent, bool) {
	if !m.init {
		m.init = true
		for i, s := range m.srcs {
			if it, ok := s.Next(); ok {
				m.h = append(m.h, mergeItem{it, i})
			}
		}
		heap.Init(&m.h)
	}
	if len(m.h) == 0 {
		return Intent{}, false
	}
	top := m.h[0]
	if it, ok := m.srcs[top.src].Next(); ok {
		m.h[0] = mergeItem{it, top.src}
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return top.it, true
}

// --- Limit ---

// Limited truncates a source at a stop time.
type Limited struct {
	src  Source
	stop sim.Time
}

// Limit stops the stream at the first intent with At >= stop.
func Limit(src Source, stop sim.Time) *Limited { return &Limited{src: src, stop: stop} }

// Next forwards until the stop time.
func (l *Limited) Next() (Intent, bool) {
	it, ok := l.src.Next()
	if !ok || it.At >= l.stop {
		return Intent{}, false
	}
	return it, true
}

// --- Transactions ---

// TxnSource is a stream of KV transactions; TxnGen is the canonical
// implementation. kvstore accepts any TxnSource, which is how alternative
// key/size distributions or trace-derived transaction mixes plug in.
type TxnSource interface {
	Next() []Op
}
