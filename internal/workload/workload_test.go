package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := NewUniform(rng, 100)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		k := u.Next()
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform generator covered only %d/100 keys", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 1_000_000, 0.99)
	counts := make(map[uint64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		k := z.Next()
		if k >= 1_000_000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// YCSB theta=0.99 over 1M keys: the hottest key gets a few percent of
	// all accesses.
	if frac := float64(counts[0]) / n; frac < 0.02 || frac > 0.20 {
		t.Fatalf("hottest-key fraction %.3f outside Zipfian expectation", frac)
	}
	// Top-10 keys dominate far beyond uniform share.
	top10 := 0
	for k := uint64(0); k < 10; k++ {
		top10 += counts[k]
	}
	if frac := float64(top10) / n; frac < 0.10 {
		t.Fatalf("top-10 fraction %.3f not skewed", frac)
	}
}

func TestZipfSmallN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 4, 0.99)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[3] {
		t.Fatalf("zipf over 4 keys not skewed: %v", counts)
	}
}

func TestETCValueSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		v := ETCValueSize(rng)
		if v < 2 || v > 64*1024+4096 {
			t.Fatalf("value size %d out of range", v)
		}
		if v <= 512 {
			small++
		}
		if v >= 4096 {
			large++
		}
	}
	if small < 8000 {
		t.Fatalf("ETC distribution not small-dominated: %d/10000", small)
	}
	if large == 0 {
		t.Fatal("ETC distribution has no tail")
	}
}

func TestTxnGenDistinctKeysAndWriteFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewTxnGen(rng, NewUniform(rng, 1000), 8, 0.5)
	writes, total := 0, 0
	for i := 0; i < 1000; i++ {
		ops := g.Next()
		if len(ops) != 8 {
			t.Fatalf("txn size %d", len(ops))
		}
		seen := make(map[uint64]bool)
		for _, op := range ops {
			if seen[op.Key] {
				t.Fatal("duplicate key in txn")
			}
			seen[op.Key] = true
			total++
			if op.Kind == OpWrite {
				writes++
				if op.Value <= 0 {
					t.Fatal("write without value size")
				}
			}
		}
	}
	frac := float64(writes) / float64(total)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("write fraction %.3f, want ~0.5", frac)
	}
}

func TestReadOnlyWriteOnly(t *testing.T) {
	ro := []Op{{Kind: OpRead}, {Kind: OpRead}}
	wo := []Op{{Kind: OpWrite}, {Kind: OpWrite}}
	rw := []Op{{Kind: OpRead}, {Kind: OpWrite}}
	if !ReadOnly(ro) || ReadOnly(rw) || ReadOnly(wo) {
		t.Fatal("ReadOnly misclassified")
	}
	if !WriteOnly(wo) || WriteOnly(rw) || WriteOnly(ro) {
		t.Fatal("WriteOnly misclassified")
	}
}

// Property: Zipf keys are always within range for arbitrary sizes.
func TestZipfRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint32) bool {
		n := uint64(nRaw%100000) + 2
		rng := rand.New(rand.NewSource(seed))
		z := NewZipf(rng, n, 0.99)
		for i := 0; i < 200; i++ {
			if z.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
