package chaos

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"onepipe/internal/sim"
)

var (
	seedCount = flag.Int("seeds", 8, "number of random seeds TestChaos sweeps")
	seedBase  = flag.Int64("seed-base", 1, "first seed of the sweep")
	replay    = flag.Int64("chaos.seed", -1, "seed for TestChaosReplay (from a failure report)")
)

// failSeed handles one failing seed: minimize the fault schedule, render the
// replayable report, persist it if CHAOS_ARTIFACT_DIR is set (the nightly CI
// job uploads that directory), and fail the test.
func failSeed(t *testing.T, p Plan, vios []Violation) {
	t.Helper()
	min, minVios, runs := Minimize(p)
	rep := Report(p, vios, min, minVios)
	t.Logf("minimizer spent %d verification runs", runs)
	if dir := os.Getenv("CHAOS_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			path := filepath.Join(dir, fmt.Sprintf("seed-%d.txt", p.Seed))
			if err := os.WriteFile(path, []byte(rep), 0o644); err != nil {
				t.Logf("chaos: writing artifact %s: %v", path, err)
			} else {
				t.Logf("chaos: failure report saved to %s", path)
			}
		}
	}
	t.Fatalf("%s", rep)
}

// runSeed executes one seed twice — once for the invariant checkers, once to
// assert the run is deterministically replayable (byte-identical delivery
// logs AND failure-callback log; Go randomizes map iteration per run, so a
// single process catches unsorted-map drift) — and returns the first result.
func runSeed(t *testing.T, p Plan) *Result {
	t.Helper()
	r := Run(p)
	if r2 := Run(p); r.FullDigest() != r2.FullDigest() {
		t.Fatalf("seed %d is not deterministic: full digest %s != %s (replay would be unfaithful)",
			p.Seed, r.FullDigest()[:16], r2.FullDigest()[:16])
	}
	return r
}

// TestChaos is the harness entry point: it sweeps -seeds random seeds, each
// deriving a topology, workload and fault schedule, and validates every
// invariant in the catalog against the delivery logs. A failure prints a
// replayable seed plus the minimized fault schedule.
func TestChaos(t *testing.T) {
	if testing.Short() {
		*seedCount = 3
	}
	for s := *seedBase; s < *seedBase+int64(*seedCount); s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			t.Parallel()
			p := NewPlan(s)
			r := runSeed(t, p)
			if r.TotalDeliveries() == 0 {
				t.Fatalf("seed %d: no deliveries at all (plan: %s) — harness wired wrong", s, p.String())
			}
			if vios := Check(r); len(vios) > 0 {
				failSeed(t, p, vios)
			}
		})
	}
}

// TestChaosReplay re-executes a single seed from a failure report with full
// diagnostics: go test ./internal/chaos -run TestChaosReplay -chaos.seed=N -v
func TestChaosReplay(t *testing.T) {
	if *replay < 0 {
		t.Skip("no -chaos.seed given; use the seed from a TestChaos failure report")
	}
	p := NewPlan(*replay)
	t.Logf("plan: %s", p.String())
	for _, f := range p.Faults {
		t.Logf("fault: %s", f)
	}
	r := runSeed(t, p)
	t.Logf("deliveries=%d sends=%d forwarded=%d recalled=%d stuck=%d",
		r.TotalDeliveries(), len(r.Sends), r.ForwardedMsgs, r.Stats.Recalled, r.Stats.StuckReports)
	for _, rec := range r.Failures {
		t.Logf("controller failure record: procs=%v", rec.Procs)
	}
	if vios := Check(r); len(vios) > 0 {
		failSeed(t, p, vios)
	}
}

// TestChaosCatchesBrokenPipeline is the harness's own detection self-test:
// it re-arms DESIGN deviation #8 (loopback-entered packets skip the logical
// switch's forwarding pipeline, so a freshly stamped turnaround packet can
// overtake an older one and break the per-link barrier promise) and requires
// the invariant checkers to notice within the default seed budget.
func TestChaosCatchesBrokenPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("broken-pipeline sweep is not -short material")
	}
	budget := *seedCount
	if budget < 8 {
		budget = 8
	}
	for s := *seedBase; s < *seedBase+int64(budget); s++ {
		p := NewPlan(s)
		p.NonuniformPipeline = true
		// The historical bug needed bursty delay jitter to manifest (DESIGN
		// deviation #8: "under bursty delay jitter this violated the
		// per-link barrier promise"), so the self-test pins the plans to the
		// jittered regime rather than waiting for the seed stream to draw it.
		p.Jitter = 2 * sim.Microsecond
		r := Run(p)
		vios := Check(r)
		if len(vios) == 0 {
			continue
		}
		min, minVios, _ := Minimize(p)
		t.Logf("broken pipeline caught at seed %d:\n%s", s, Report(p, vios, min, minVios))
		if len(minVios) == 0 {
			t.Errorf("minimized plan no longer fails — minimizer is unsound")
		}
		return
	}
	t.Fatalf("nonuniform-pipeline regression went undetected across %d seeds — harness has lost its teeth", budget)
}
