// Package chaos is a randomized, fully deterministic cluster torture
// harness in the FoundationDB simulation-testing tradition. One seed
// derives a random Clos topology, a mixed best-effort/reliable workload,
// and a timed fault schedule (loss bursts, link/switch/host failures,
// partitions with controller forwarding, clock skew, beacon loss), all
// executed on internal/netsim + internal/core + internal/controller. A
// checker layer then validates the paper's delivery invariants from the
// global delivery logs; see checker.go for the catalog and docs/testing.md
// for the workflow (seed replay, schedule minimization, CI).
package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"onepipe/internal/clock"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind uint8

const (
	// FaultLossBurst raises the uniform per-link corruption rate for a
	// window — packet loss, and (since beacons are packets too) beacon loss.
	FaultLossBurst FaultKind = iota
	// FaultLinkDown permanently kills one directed fabric or host link.
	FaultLinkDown
	// FaultHostCrash fail-stops a host: its node dies in the topology and
	// its lib1pipe runtime halts.
	FaultHostCrash
	// FaultSwitchCrash fail-stops a physical switch (both logical halves).
	FaultSwitchCrash
	// FaultPartition cuts one pod off the core layer for a window, then
	// heals the cut. Both sides stay controller-reachable, so stuck senders
	// escalate into §5.2 Controller Forwarding.
	FaultPartition
)

func (k FaultKind) String() string {
	switch k {
	case FaultLossBurst:
		return "loss-burst"
	case FaultLinkDown:
		return "link-down"
	case FaultHostCrash:
		return "host-crash"
	case FaultSwitchCrash:
		return "switch-crash"
	case FaultPartition:
		return "partition"
	}
	return "?"
}

// Fault is one scheduled fault. Every fault is self-contained: windowed
// faults (loss bursts, partitions) carry their own end time, so the
// minimizer can drop any subset and the rest still replays identically.
type Fault struct {
	At   sim.Time
	Kind FaultKind
	// Dur is the window length for FaultLossBurst and FaultPartition.
	Dur sim.Time
	// Rate is the burst loss probability for FaultLossBurst.
	Rate float64
	// Host is the target host index for FaultHostCrash.
	Host int
	// Link is the target link for FaultLinkDown.
	Link topology.LinkID
	// Phys is the physical switch index for FaultSwitchCrash.
	Phys int
	// Pod is the pod cut off by FaultPartition.
	Pod int
}

func (f Fault) String() string {
	switch f.Kind {
	case FaultLossBurst:
		return fmt.Sprintf("@%v %s rate=%.2f dur=%v", f.At, f.Kind, f.Rate, f.Dur)
	case FaultLinkDown:
		return fmt.Sprintf("@%v %s link=%d", f.At, f.Kind, f.Link)
	case FaultHostCrash:
		return fmt.Sprintf("@%v %s host=%d", f.At, f.Kind, f.Host)
	case FaultSwitchCrash:
		return fmt.Sprintf("@%v %s phys=%d", f.At, f.Kind, f.Phys)
	case FaultPartition:
		return fmt.Sprintf("@%v %s pod=%d dur=%v", f.At, f.Kind, f.Pod, f.Dur)
	}
	return fmt.Sprintf("@%v ?", f.At)
}

// JoinEvent schedules an epoch-based live host join (internal/reconfig) at
// an absolute run time: a fresh host is attached under the given rack, its
// processes appear at the tail of the process space, and — once the join
// epoch commits — they start running the same recorded workload as the
// incumbents.
type JoinEvent struct {
	At   sim.Time
	Pod  int
	Rack int
}

// DrainEvent schedules a graceful departure: a host (by index) or, with
// Switch set, a physical switch (by Phys). Unlike the fault schedule these
// are decisions, not failures — no failure record, recall, or callback may
// result, which the drain checkers enforce.
type DrainEvent struct {
	At     sim.Time
	Host   int
	Phys   int
	Switch bool
}

// Workload parameterizes the seed-derived traffic mix.
type Workload struct {
	// Interval is the mean per-process send period.
	Interval sim.Time
	// Stop is when senders fall silent, leaving the tail of the run for
	// retransmission, failure handling and barrier drain.
	Stop sim.Time
	// MaxFanout bounds scattering width (1 = unicast only).
	MaxFanout int
	// ReliableFrac is the probability a scattering uses the reliable plane.
	ReliableFrac float64
	// MsgBytes is the payload size of each scattering member.
	MsgBytes int
}

// Plan is everything one run needs, fully derived from a single seed. The
// fault schedule is materialized up front (not drawn during the run), so a
// subset of it — as produced by the minimizer — replays byte-identically.
type Plan struct {
	Seed         int64
	Topo         topology.ClosConfig
	ProcsPerHost int
	Mode         core.DeliveryMode
	BaseLoss     float64
	Jitter       sim.Time
	FlowECMP     bool
	SkewedClocks bool
	MaxRetx      int
	RunFor       sim.Time
	Workload     Workload
	Faults       []Fault

	// BatchWindow, when nonzero, overrides the endpoints' sender-side
	// coalescing window (0 keeps the core default). Seed derivation never
	// sets it, so existing golden digests are unaffected; the wire-capture
	// harness widens it to harvest multi-message frames.
	BatchWindow sim.Time

	// ReorderHotCap and ConnIdleEvict arm the bounded-memory machinery on
	// every endpoint: the hot reorder-heap cap (entries per plane; spill to
	// the cold store beyond it) and the idle connection-eviction period.
	// Like BatchWindow these are crafted-scenario knobs seed derivation
	// never sets, so existing golden digests are unaffected.
	ReorderHotCap int
	ConnIdleEvict sim.Time

	// NonuniformPipeline arms the DESIGN deviation #8 regression knob in
	// netsim — used only by the harness's own detection self-test.
	NonuniformPipeline bool

	// ConflictRate is the probability a workload scattering is tagged with a
	// nonzero conflict key (drawn from a dedicated RNG stream, so the base
	// workload is unchanged). Meaningful with Mode DeliverConflictAware;
	// crafted-scenario knob, seed derivation never sets it, so existing
	// golden digests are unaffected.
	ConflictRate float64

	// Joins and Drains schedule live membership changes (epoch-based
	// reconfiguration). Seed derivation never sets them — like BatchWindow
	// they are crafted-scenario knobs, so existing golden digests are
	// unaffected.
	Joins  []JoinEvent
	Drains []DrainEvent

	// Impair attaches a composable link-impairment profile
	// (netsim.Config.Impair): Gilbert-Elliott burst loss, duty-cycle
	// loss, reorder, RTT classes, or profile-expressed uniform loss/
	// jitter. Like BatchWindow it is a crafted-scenario knob seed
	// derivation never sets, so existing golden digests are unaffected.
	// A profile expressing only uniform Loss/Jitter (with BaseLoss and
	// Jitter left zero) replays the legacy knobs' digests byte-for-byte
	// — TestLegacyKnobsViaProfileGoldenDigests pins that.
	Impair *netsim.Profile

	// Shards splits the network simulation into per-pod shard engines
	// driven in deterministic lockstep (netsim.Config.Shards): the event
	// order — and therefore every digest — is provably identical to the
	// single-engine run, which TestShardedDigestEquivalence pins. Like
	// BatchWindow this is a crafted-scenario knob seed derivation never
	// sets, so existing golden digests are unaffected.
	Shards int
}

// quiesce is the post-workload tail left for every outstanding scattering
// to resolve: MaxRetx*RTO retransmission, dead-link detection, controller
// aggregation + Raft + broadcast, and a second MaxRetx*RTO for the recalls
// issued during the abort, with generous headroom.
const quiesce = 5 * sim.Millisecond

// NewPlan derives a complete plan from one seed. All randomness is consumed
// here, before the run starts; Run adds none of its own beyond the seeded
// engine and netsim RNGs.
func NewPlan(seed int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Seed: seed}

	// (a) Random Clos topology: 4..24 hosts, one to three tiers exercised.
	p.Topo = topology.ClosConfig{
		Pods:         1 + rng.Intn(2),
		RacksPerPod:  1 + rng.Intn(2),
		HostsPerRack: 2 + rng.Intn(3),
		SpinesPerPod: 1 + rng.Intn(2),
		Cores:        1 + rng.Intn(2),
	}
	p.ProcsPerHost = 1 + rng.Intn(2)

	p.Mode = core.DeliverSeparate
	if rng.Intn(2) == 0 {
		p.Mode = core.DeliverUnified
	}
	p.BaseLoss = []float64{0, 0, 0.002, 0.01}[rng.Intn(4)]
	p.Jitter = []sim.Time{0, 200 * sim.Nanosecond, 2 * sim.Microsecond}[rng.Intn(3)]
	p.FlowECMP = rng.Intn(3) == 0 // mostly per-packet spraying: the hard case
	p.SkewedClocks = rng.Intn(2) == 0
	p.MaxRetx = 10
	p.RunFor = 9 * sim.Millisecond

	// (b) Workload mix.
	p.Workload = Workload{
		Interval:     sim.Time(3+rng.Intn(6)) * sim.Microsecond,
		Stop:         p.RunFor - quiesce,
		MaxFanout:    1 + rng.Intn(3),
		ReliableFrac: 0.3 + 0.4*rng.Float64(),
		MsgBytes:     64 + rng.Intn(512),
	}

	// (c) Fault schedule. Destructive faults are budgeted against a scratch
	// graph so the cluster never loses its majority: at most a third of the
	// hosts may end up crashed or disconnected.
	p.Faults = derivedFaults(rng, p)
	return p
}

// derivedFaults draws 1..5 faults inside the workload window, keeping at
// least two thirds of the hosts alive and connected.
func derivedFaults(rng *rand.Rand, p Plan) []Fault {
	scratch := topology.NewClos(p.Topo)
	hosts := p.Topo.NumHosts()
	downBudget := hosts / 3
	down := 0
	countDown := func() int {
		n := 0
		for hi := 0; hi < hosts; hi++ {
			if !hostConnected(scratch, scratch.Host(hi)) {
				n++
			}
		}
		return n
	}

	n := 1 + rng.Intn(5)
	var faults []Fault
	// Faults land in the middle of the workload window so traffic exists
	// both before and after each one.
	window := p.Workload.Stop - sim.Millisecond
	for i := 0; i < n; i++ {
		at := 500*sim.Microsecond + sim.Time(rng.Int63n(int64(window)))
		switch k := rng.Intn(6); k {
		case 0, 1: // loss bursts are the most common fault
			faults = append(faults, Fault{
				At: at, Kind: FaultLossBurst,
				Dur:  sim.Time(100+rng.Intn(900)) * sim.Microsecond,
				Rate: 0.02 + 0.2*rng.Float64(),
			})
		case 2:
			lid := topology.LinkID(rng.Intn(len(scratch.Links)))
			if scratch.Link(lid).Kind == topology.LinkLoopback {
				continue // loopbacks are virtual; killing one is not a cable fault
			}
			scratch.KillLink(lid)
			if countDown() > downBudget {
				scratch.ReviveLink(lid)
				continue
			}
			faults = append(faults, Fault{At: at, Kind: FaultLinkDown, Link: lid})
		case 3:
			hi := rng.Intn(hosts)
			if scratch.NodeDead(scratch.Host(hi)) || down+1 > downBudget {
				continue
			}
			scratch.KillNode(scratch.Host(hi))
			if countDown() > downBudget {
				scratch.ReviveNode(scratch.Host(hi))
				continue
			}
			faults = append(faults, Fault{At: at, Kind: FaultHostCrash, Host: hi})
		case 4:
			// Kill a random non-host physical switch.
			sw := scratch.Nodes[len(scratch.Hosts)+rng.Intn(len(scratch.Nodes)-len(scratch.Hosts))]
			marked := markPhys(scratch, sw.Phys, true)
			if countDown() > downBudget {
				markPhysOff(scratch, marked)
				continue
			}
			faults = append(faults, Fault{At: at, Kind: FaultSwitchCrash, Phys: sw.Phys})
		case 5:
			if p.Topo.Pods < 2 {
				continue
			}
			// Cutting a pod from the cores must leave it merely partitioned,
			// not disconnected: hostConnected only checks host uplinks, so
			// this never trips the budget.
			faults = append(faults, Fault{
				At: at, Kind: FaultPartition,
				Pod: rng.Intn(p.Topo.Pods),
				Dur: sim.Time(500+rng.Intn(1500)) * sim.Microsecond,
			})
		}
		down = countDown()
	}
	return faults
}

func markPhys(g *topology.Graph, phys int, dead bool) []topology.NodeID {
	var marked []topology.NodeID
	for i := range g.Nodes {
		if g.Nodes[i].Phys == phys && !g.NodeDead(g.Nodes[i].ID) {
			g.KillNode(g.Nodes[i].ID)
			marked = append(marked, g.Nodes[i].ID)
		}
	}
	return marked
}

func markPhysOff(g *topology.Graph, marked []topology.NodeID) {
	for _, id := range marked {
		g.ReviveNode(id)
	}
}

// hostConnected mirrors the controller's liveness rule: a host is connected
// iff it is alive and has a live uplink AND a live downlink into the fabric
// (a host that cannot receive will never deliver again and is failed in the
// §5.2 sense).
func hostConnected(g *topology.Graph, host topology.NodeID) bool {
	if g.NodeDead(host) {
		return false
	}
	up := false
	for _, lid := range g.Out[host] {
		if !g.LinkDead(lid) && !g.NodeDead(g.Link(lid).To) {
			up = true
			break
		}
	}
	if !up {
		return false
	}
	for _, lid := range g.In[host] {
		if !g.LinkDead(lid) && !g.NodeDead(g.Link(lid).From) {
			return true
		}
	}
	return false
}

// HasPartition reports whether the schedule contains a partition window —
// the paper's caveat case in which ordering across the cut is only local
// and forwarded scatterings are exempt from strict atomicity (§5.2).
func (p *Plan) HasPartition() bool {
	for _, f := range p.Faults {
		if f.Kind == FaultPartition {
			return true
		}
	}
	return false
}

// NetConfig materializes the netsim configuration for this plan.
func (p *Plan) NetConfig() netsim.Config {
	cfg := netsim.DefaultConfig(p.Topo, p.ProcsPerHost)
	cfg.Seed = p.Seed
	cfg.LossRate = p.BaseLoss
	cfg.Jitter = p.Jitter
	cfg.Impair = p.Impair
	cfg.FlowECMP = p.FlowECMP
	cfg.ControllerManagedCommit = true
	cfg.NonuniformPipeline = p.NonuniformPipeline
	cfg.Shards = p.Shards // lockstep only: chaos shares RNG streams across shards
	if p.SkewedClocks {
		cfg.Clock = clock.Config{
			SyncInterval: 10 * sim.Millisecond,
			MaxOffset:    2 * sim.Microsecond,
			MaxDriftPPM:  50,
		}
	} else {
		cfg.Clock = clock.Perfect()
	}
	return cfg
}

// CoreConfig materializes the endpoint configuration for this plan.
func (p *Plan) CoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Mode = p.Mode
	cfg.MaxRetx = p.MaxRetx
	if p.BatchWindow != 0 {
		cfg.BatchWindow = p.BatchWindow
	}
	cfg.ReorderHotCap = p.ReorderHotCap
	cfg.ConnIdleEvict = p.ConnIdleEvict
	return cfg
}

// String renders a replay-oriented one-line summary.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d topo=%+v pph=%d mode=%d loss=%.3f jitter=%v ecmp=%v skew=%v faults=%d",
		p.Seed, p.Topo, p.ProcsPerHost, p.Mode, p.BaseLoss, p.Jitter, p.FlowECMP, p.SkewedClocks, len(p.Faults))
	return b.String()
}
