package chaos

import (
	"fmt"
	"strings"
)

// Minimize greedily shrinks a failing plan's fault schedule: each fault is
// tentatively removed and stays removed if the plan still fails any
// invariant. Because plans are deterministic, every candidate is a faithful
// replay; the result is a locally-minimal schedule (removing any single
// remaining fault makes the failure vanish). A plan whose failure needs no
// faults at all — a config-level bug, e.g. a broken switch pipeline —
// minimizes to an empty schedule. Returns the minimized plan, the
// violations it still produces, and the number of verification runs spent.
func Minimize(p Plan) (Plan, []Violation, int) {
	runs := 0
	vios := Check(Run(p))
	runs++
	if len(vios) == 0 {
		return p, nil, runs
	}
	faults := p.Faults
	for i := 0; i < len(faults); {
		cand := p
		cand.Faults = make([]Fault, 0, len(faults)-1)
		cand.Faults = append(cand.Faults, faults[:i]...)
		cand.Faults = append(cand.Faults, faults[i+1:]...)
		cv := Check(Run(cand))
		runs++
		if len(cv) > 0 {
			faults, vios = cand.Faults, cv
		} else {
			i++
		}
	}
	p.Faults = faults
	return p, vios, runs
}

// Report renders a replayable failure report: the seed, the violations, the
// minimized fault schedule, and the exact command that reproduces the run.
func Report(p Plan, vios []Violation, min Plan, minVios []Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: seed %d violated %d invariant(s)\n", p.Seed, len(vios))
	fmt.Fprintf(&b, "  plan: %s\n", p.String())
	for _, v := range vios {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	fmt.Fprintf(&b, "  minimized fault schedule (%d of %d faults):\n", len(min.Faults), len(p.Faults))
	if len(min.Faults) == 0 {
		fmt.Fprintf(&b, "    (empty — failure reproduces with no injected faults; config-level bug)\n")
	}
	for _, f := range min.Faults {
		fmt.Fprintf(&b, "    %s\n", f)
	}
	for _, v := range minVios {
		fmt.Fprintf(&b, "  minimized still fails: %s\n", v)
	}
	fmt.Fprintf(&b, "  replay: go test ./internal/chaos -run TestChaosReplay -chaos.seed=%d -v\n", p.Seed)
	return b.String()
}
