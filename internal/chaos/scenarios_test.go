package chaos

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// craftedPlan is the common base for the directed scenarios below: a fixed
// two-pod topology and a reliable-heavy workload, so the failure machinery
// (abort, recall, forwarding) is guaranteed to have in-flight scatterings to
// chew on when the scripted fault lands. Unlike NewPlan output the schedule
// is hand-written, which is exactly the point — these tests pin specific
// §5.2 paths rather than waiting for the seed stream to draw them.
func craftedPlan(seed int64, faults ...Fault) Plan {
	return Plan{
		Seed:         seed,
		Topo:         topology.ClosConfig{Pods: 2, RacksPerPod: 1, HostsPerRack: 3, SpinesPerPod: 1, Cores: 2},
		ProcsPerHost: 1,
		Mode:         core.DeliverSeparate,
		MaxRetx:      6,
		RunFor:       9 * sim.Millisecond,
		Workload: Workload{
			Interval:     4 * sim.Microsecond,
			Stop:         4 * sim.Millisecond,
			MaxFanout:    3,
			ReliableFrac: 0.8,
			MsgBytes:     128,
		},
		Faults: faults,
	}
}

// TestScenarioHostCrashRecall drives the §5.2 abort path through the chaos
// fault injector: a host fail-stops mid-workload, the controller detects and
// broadcasts the failure, and surviving senders must recall the live members
// of every scattering that included the dead host — with the full invariant
// catalog (restricted atomicity included) holding on the result.
func TestScenarioHostCrashRecall(t *testing.T) {
	p := craftedPlan(7, Fault{At: 1500 * sim.Microsecond, Kind: FaultHostCrash, Host: 2})
	r := runSeed(t, p)
	if vios := Check(r); len(vios) > 0 {
		failSeed(t, p, vios)
	}
	if len(r.Failures) == 0 {
		t.Fatal("host crash produced no controller failure record")
	}
	crashed := false
	for _, rec := range r.Failures {
		for pid := range rec.Procs {
			if int(pid) == 2 {
				crashed = true
			}
		}
	}
	if !crashed {
		t.Fatalf("failure records %v never declared the crashed host's proc", r.Failures)
	}
	if r.Stats.Recalled == 0 {
		t.Fatal("no scattering was recalled — the abort path never ran")
	}
	if len(r.SendFails) == 0 {
		t.Fatal("no send-failure callback fired for the crashed destination")
	}
}

// TestScenarioRecallExhaustion layers a partition under the crash so some
// recalls themselves cannot complete: host 3 (pod 1) fail-stops while pod 0
// is cut off from the core layer, so a pod-1 sender aborting a scattering
// that spanned both pods sends its recall to a live-but-unreachable pod-0
// member. The recall retransmits into the void, exhausts MaxRetx, and must
// resolve via OnStuck escalation instead of wedging the failure round (the
// resendRecall → reportStuck → finishRecall path pinned unit-level in
// core's TestLateRecallAckAfterMaxRetx).
func TestScenarioRecallExhaustion(t *testing.T) {
	p := craftedPlan(11,
		Fault{At: 1400 * sim.Microsecond, Kind: FaultPartition, Pod: 0, Dur: 1500 * sim.Microsecond},
		Fault{At: 1500 * sim.Microsecond, Kind: FaultHostCrash, Host: 3},
	)
	r := runSeed(t, p)
	if vios := Check(r); len(vios) > 0 {
		failSeed(t, p, vios)
	}
	if r.Stats.Recalled == 0 {
		t.Fatal("no scattering was recalled")
	}
	if r.Stats.StuckReports == 0 {
		t.Fatal("no OnStuck report — exhaustion path never ran")
	}
	// The run must still drain: every failure round completed, nothing
	// outstanding, or the commit floor would be parked and atomicity
	// checks above would have tripped on the silence.
	if r.TotalDeliveries() == 0 {
		t.Fatal("no deliveries at all")
	}
}

// TestScenarioPartitionForwarding cuts one pod off the core layer for a
// window. Both sides stay controller-reachable, so stuck cross-pod senders
// must escalate into §5.2 Controller Forwarding, and forwarded scatterings
// are delivered under the partition caveat without tripping any checker.
func TestScenarioPartitionForwarding(t *testing.T) {
	p := craftedPlan(3, Fault{
		At: 1200 * sim.Microsecond, Kind: FaultPartition,
		Pod: 0, Dur: 1500 * sim.Microsecond,
	})
	r := runSeed(t, p)
	if vios := Check(r); len(vios) > 0 {
		failSeed(t, p, vios)
	}
	if r.Stats.StuckReports == 0 {
		t.Fatal("partition produced no OnStuck reports — escalation never triggered")
	}
	if r.ForwardedMsgs == 0 {
		t.Fatal("partition produced no controller-forwarded messages (§5.2 Controller Forwarding)")
	}
	if len(r.Forwarded) == 0 {
		t.Fatal("no scattering was marked forwarded — checker exemptions untested")
	}
}

// TestScenarioConflictAwareCrashRecall mixes conflict-aware delivery with
// the §5.2 failure machinery: half the workload is tagged, a host fail-stops
// mid-workload under a loss burst, and the surviving senders recall live
// scattering members — some of which sit untagged in the relaxed queue and
// must be discarded by the recall exactly like ordered ones. A graceful
// drain rides along so invariant 15 also sees a membership departure. The
// run must be deterministic (replay digest equal), uphold the full invariant
// catalog including conflict-pair-order, and actually exercise both the
// relaxed delivery path and the recall path.
func TestScenarioConflictAwareCrashRecall(t *testing.T) {
	p := craftedPlan(13,
		Fault{At: 1100 * sim.Microsecond, Kind: FaultLossBurst, Dur: 600 * sim.Microsecond, Rate: 0.15},
		Fault{At: 1500 * sim.Microsecond, Kind: FaultHostCrash, Host: 2},
	)
	p.Mode = core.DeliverConflictAware
	p.ConflictRate = 0.5
	p.Drains = []DrainEvent{{At: 2400 * sim.Microsecond, Host: 4}}
	r := runSeed(t, p)
	if vios := Check(r); len(vios) > 0 {
		failSeed(t, p, vios)
	}
	if r.Stats.RelaxedDeliveries == 0 {
		t.Fatal("no relaxed deliveries — untagged traffic never left the total order")
	}
	if r.Stats.Recalled == 0 {
		t.Fatal("no scattering was recalled — the abort path never ran")
	}
	tagged, untagged := 0, 0
	for _, log := range r.Deliveries {
		for _, d := range log {
			if d.Conflict != 0 {
				tagged++
			} else {
				untagged++
			}
		}
	}
	if tagged == 0 || untagged == 0 {
		t.Fatalf("one-sided mix (tagged=%d untagged=%d) — conflict rate wired wrong", tagged, untagged)
	}
}

// TestScenarioConflictAwareDegeneracy is the degeneracy spine at cluster
// scale and under faults: with EVERY scattering tagged (ConflictRate 1), a
// conflict-aware run of a crafted crash schedule must produce a delivery-log
// digest byte-identical to the same plan under DeliverUnified — the relaxed
// machinery must be invisible when the conflict relation is total.
func TestScenarioConflictAwareDegeneracy(t *testing.T) {
	mk := func(mode core.DeliveryMode) Plan {
		p := craftedPlan(17, Fault{At: 1500 * sim.Microsecond, Kind: FaultHostCrash, Host: 4})
		p.Mode = mode
		p.ConflictRate = 1
		return p
	}
	ca := Run(mk(core.DeliverConflictAware))
	uni := Run(mk(core.DeliverUnified))
	if vios := Check(ca); len(vios) > 0 {
		failSeed(t, mk(core.DeliverConflictAware), vios)
	}
	if ca.Digest() != uni.Digest() {
		t.Fatalf("all-tagged conflict-aware digest %s != unified digest %s — degeneracy broken",
			ca.Digest()[:16], uni.Digest()[:16])
	}
	if ca.TotalDeliveries() == 0 {
		t.Fatal("no deliveries — degeneracy vacuous")
	}
}

// TestScenarioConflictCheckerSensitivity is invariant 15's negative control:
// corrupting a conflict-aware run's log — two same-key deliveries swapped at
// one receiver — must trip conflict-pair-order.
func TestScenarioConflictCheckerSensitivity(t *testing.T) {
	p := craftedPlan(19)
	p.Mode = core.DeliverConflictAware
	p.ConflictRate = 0.7
	r := Run(p)
	if vios := Check(r); len(vios) > 0 {
		t.Fatalf("clean run already fails: %v", vios)
	}
	swapped := false
outer:
	for _, log := range r.Deliveries {
		byKey := map[uint32][]int{}
		for i, d := range log {
			if d.Conflict == 0 {
				continue
			}
			byKey[d.Conflict] = append(byKey[d.Conflict], i)
			if idx := byKey[d.Conflict]; len(idx) >= 2 {
				a, b := idx[len(idx)-2], idx[len(idx)-1]
				log[a], log[b] = log[b], log[a]
				swapped = true
				break outer
			}
		}
	}
	if !swapped {
		t.Fatal("no same-key pair to corrupt — scenario exercises nothing")
	}
	hit := false
	for _, v := range Check(r) {
		if v.Invariant == "conflict-pair-order" {
			hit = true
		}
	}
	if !hit {
		t.Fatal("swapped same-key pair did not trip conflict-pair-order — checker is blind")
	}
}

// TestScenarioCheckerSensitivity is the checkers' own negative control: a
// corrupted delivery log (one receiver's entries swapped, one duplicated,
// one delivered below the announced barrier) must trip the corresponding
// invariants. Guards against the catalog silently checking nothing.
func TestScenarioCheckerSensitivity(t *testing.T) {
	p := craftedPlan(5)
	r := Run(p)
	if vios := Check(r); len(vios) > 0 {
		t.Fatalf("clean run already fails: %v", vios)
	}
	var victim int
	for pi, log := range r.Deliveries {
		if len(log) >= 4 {
			victim = pi
			break
		}
	}
	log := r.Deliveries[victim]
	log[0], log[1] = log[1], log[0]        // local-order
	log[2] = log[3]                        // at-most-once
	log[len(log)-1].BarBE = 0              // barrier-gate
	log[len(log)-1].BarC = 0               //
	log[len(log)-1].ClockAt = 0            // causality
	want := map[string]bool{"local-order": false, "at-most-once": false, "barrier-gate": false, "causality": false}
	for _, v := range Check(r) {
		if _, ok := want[v.Invariant]; ok {
			want[v.Invariant] = true
		}
	}
	for inv, hit := range want {
		if !hit {
			t.Errorf("corrupted log did not trip %s — checker is blind", inv)
		}
	}
}
