package chaos

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math/rand"

	"onepipe/internal/controller"
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/reconfig"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// MsgID identifies one scattering across the whole run: the sending process
// plus a per-process sequence number. It rides in every message payload so
// the checkers can correlate send records with delivery logs.
type MsgID struct {
	Src netsim.ProcID
	Seq int32
}

// DeliveryRec is one entry of a receiver's delivery log, annotated with the
// receiver-local state the checkers need: its clock and its announced
// barriers at the instant of delivery.
type DeliveryRec struct {
	TS       sim.Time
	Src      netsim.ProcID
	ID       MsgID
	Reliable bool
	ClockAt  sim.Time
	BarBE    sim.Time
	BarC     sim.Time
	// Conflict is the delivered message's conflict key (annotation for the
	// conflict-pair checker; deliberately NOT hashed by Digest, so tagging
	// an existing plan cannot move its golden digest through this field).
	Conflict uint32
}

// SendRec is one submitted scattering.
type SendRec struct {
	ID       MsgID
	Src      netsim.ProcID
	Dsts     []netsim.ProcID
	Reliable bool
	// At is the sender's clock at submission — used to place the
	// scattering relative to partition windows.
	At sim.Time
	// Refused is set when the send API returned an error (destination
	// already known failed, host stopped); refused sends carry no
	// delivery obligation.
	Refused bool
	// Conflict is the conflict key the scattering was tagged with (0 when
	// untagged or when the plan's ConflictRate is zero).
	Conflict uint32
}

// Window is a half-open fault interval [Start, End).
type Window struct {
	Start, End sim.Time
}

// WireSuspect is a §4.1 barrier-promise breach observed on a host downlink:
// a data packet whose message timestamp lies below a barrier the link had
// already carried. The checker classifies suspects post-run — in-flight
// traffic of failed, aborted or controller-forwarded scatterings crosses a
// barrier jump legitimately; anything else means a switch let a
// later-stamped packet overtake an earlier one (DESIGN deviation #8).
type WireSuspect struct {
	Host     int
	Src      netsim.ProcID
	ID       MsgID
	TS       sim.Time
	Barrier  sim.Time
	Reliable bool
	At       sim.Time
}

// Result is everything a run produced, ready for the checker layer.
type Result struct {
	Plan       Plan
	Deliveries [][]DeliveryRec // indexed by receiver process
	Sends      []SendRec
	// SendFails collects the scattering members reported through
	// OnSendFail, as a set keyed by scattering and destination.
	SendFails map[MsgID]map[netsim.ProcID]bool
	// Callbacks is the ordered log of application-visible failure
	// callbacks (OnProcFail, OnSendFail) across all processes. An
	// application may act on these, so their invocation order is part of
	// the replay contract; FullDigest hashes this log so nondeterministic
	// map iteration in the callback paths shows up as digest drift.
	Callbacks []CallbackRec
	// ProcFailSeen records, per observer process, the failure
	// notifications (Callback step) it received.
	ProcFailSeen map[netsim.ProcID]map[netsim.ProcID]sim.Time
	// Failures is the controller's replicated failure log.
	Failures []controller.FailureRecord
	// CorrectProc marks processes on hosts that neither crashed nor ended
	// the run disconnected from the fabric.
	CorrectProc []bool
	// Partitions lists the partition fault windows of the schedule.
	Partitions []Window
	// Forwarded marks scatterings the controller relayed (§5.2 Controller
	// Forwarding) — deliveries of these are only locally ordered.
	Forwarded map[MsgID]bool
	// PathOK[a][b] reports whether, in the end-of-run topology, a live
	// fabric path from proc a's host to proc b's host exists. A severed
	// pair means traffic between them ran (or is still pending) on the
	// controller's management network, under the partition caveat.
	PathOK [][]bool
	// WireSuspects are candidate per-link barrier-promise breaches seen on
	// host downlinks (chip mode only); see WireSuspect.
	WireSuspects []WireSuspect

	// Joined records every host activated through a scheduled JoinEvent,
	// with its processes and the effective join epoch (every timestamp
	// those processes ever emit exceeds it).
	Joined []JoinInfo
	// DrainedLogLen snapshots each gracefully departed process's delivery
	// log length at the instant its drain completed; the drain-silence
	// checker requires the final log to be exactly that long.
	DrainedLogLen map[netsim.ProcID]int
	// DrainedAt is each drained process's departure time.
	DrainedAt map[netsim.ProcID]sim.Time
	// DrainedSwitches lists physical switches that completed a graceful
	// drain.
	DrainedSwitches []int
	// Epochs is the controller's replicated reconfiguration-epoch log.
	Epochs []controller.EpochRecord

	ForwardedMsgs uint64
	Stats         core.HostStats
	NetStats      netsim.Stats
}

// CallbackRec is one application-visible failure callback, recorded in
// invocation order. Kind 0 = OnProcFail (Observer told Proc failed at TS);
// Kind 1 = OnSendFail (Observer's scattering ID toward Proc reported lost).
type CallbackRec struct {
	Kind     uint8
	Observer netsim.ProcID
	Proc     netsim.ProcID
	TS       sim.Time
	ID       MsgID
}

// JoinInfo describes one mid-run host join.
type JoinInfo struct {
	Host  int
	Procs []netsim.ProcID
	// TJoin is the effective join epoch the activation settled on.
	TJoin sim.Time
	// At is the activation time (epoch committed, host live).
	At sim.Time
}

// Run executes a plan to completion and returns the recorded logs. A given
// plan always produces byte-identical delivery logs (see Digest); TestChaos
// asserts this on every seed.
func Run(p Plan) *Result { return runWith(p, nil) }

// runWith is Run plus an optional packet tap observing every packet
// delivered to any host (used to harvest wire-format fuzz seeds).
func runWith(p Plan, tap func(*netsim.Packet)) *Result {
	net := netsim.New(p.NetConfig())
	cl := core.Deploy(net, p.CoreConfig())
	ctrl := controller.New(net, cl, controller.DefaultConfig())
	eng := net.Eng

	nprocs := net.NumProcs()
	pph := net.Cfg.ProcsPerHost
	// The log arrays are pre-sized to the post-join process count so the
	// recorder closures installed at activation index into stable slices;
	// with no scheduled joins this is exactly the historical sizing, and the
	// digest is unchanged.
	finalProcs := nprocs + len(p.Joins)*pph
	res := &Result{
		Plan:          p,
		Deliveries:    make([][]DeliveryRec, finalProcs),
		SendFails:     make(map[MsgID]map[netsim.ProcID]bool),
		ProcFailSeen:  make(map[netsim.ProcID]map[netsim.ProcID]sim.Time),
		CorrectProc:   make([]bool, finalProcs),
		Forwarded:     make(map[MsgID]bool),
		DrainedLogLen: make(map[netsim.ProcID]int),
		DrainedAt:     make(map[netsim.ProcID]sim.Time),
	}
	ctrl.OnForward = func(pkt *netsim.Packet) {
		if id, ok := pkt.Payload.(MsgID); ok {
			res.Forwarded[id] = true
		}
	}

	// Wire-level §4.1 probe on every host downlink: barriers carried by a
	// link promise that no later message timestamp falls below them. A
	// stamp-order/wire-order inversion inside a switch shows up here long
	// before it happens to line up into an end-to-end misdelivery — this is
	// the chaos-harness port of netsim's TestBarrierInvariantSweep check.
	// Only chip mode rewrites data barriers in flight, so only chip mode
	// makes the per-packet registers meaningful.
	chip := net.Cfg.Mode == netsim.ModeChip
	maxBE := make([]sim.Time, len(cl.Hosts)+len(p.Joins))
	maxC := make([]sim.Time, len(cl.Hosts)+len(p.Joins))
	attachProbe := func(hi int) {
		rx := cl.Hosts[hi].HandlePacket
		net.AttachHost(hi, func(pkt *netsim.Packet) {
			if tap != nil {
				tap(pkt)
			}
			if chip {
				if pkt.Kind == netsim.KindData && len(res.WireSuspects) < 256 {
					bar := maxBE[hi]
					if pkt.Reliable {
						bar = maxC[hi]
					}
					if pkt.MsgTS < bar {
						id, _ := pkt.Payload.(MsgID)
						res.WireSuspects = append(res.WireSuspects, WireSuspect{
							Host: hi, Src: pkt.Src, ID: id, TS: pkt.MsgTS,
							Barrier: bar, Reliable: pkt.Reliable, At: eng.Now(),
						})
					}
				}
				if pkt.BarrierBE > maxBE[hi] {
					maxBE[hi] = pkt.BarrierBE
				}
				if pkt.BarrierC > maxC[hi] {
					maxC[hi] = pkt.BarrierC
				}
			}
			rx(pkt)
		})
	}
	for hi := range cl.Hosts {
		attachProbe(hi)
	}

	// Recorders. OnDeliver appends to the per-process log; the annotations
	// (clock, barriers) are all deterministic functions of the event order.
	installRecorders := func(i int) {
		proc := cl.Procs[i]
		host := cl.Hosts[net.HostOfProc(proc.ID)]
		proc.OnDeliver = func(d core.Delivery) {
			be, c := host.Barriers()
			res.Deliveries[i] = append(res.Deliveries[i], DeliveryRec{
				TS: d.TS, Src: d.Src, ID: d.Data.(MsgID), Reliable: d.Reliable,
				ClockAt: proc.Timestamp(), BarBE: be, BarC: c,
				Conflict: d.Conflict,
			})
		}
		proc.OnSendFail = func(sf core.SendFailure) {
			id, ok := sf.Data.(MsgID)
			if !ok {
				return
			}
			res.Callbacks = append(res.Callbacks, CallbackRec{
				Kind: 1, Observer: proc.ID, Proc: sf.Dst, TS: sf.TS, ID: id,
			})
			set := res.SendFails[id]
			if set == nil {
				set = make(map[netsim.ProcID]bool)
				res.SendFails[id] = set
			}
			set[sf.Dst] = true
		}
		proc.OnProcFail = func(fp netsim.ProcID, ts sim.Time) {
			res.Callbacks = append(res.Callbacks, CallbackRec{
				Kind: 0, Observer: proc.ID, Proc: fp, TS: ts,
			})
			m := res.ProcFailSeen[proc.ID]
			if m == nil {
				m = make(map[netsim.ProcID]sim.Time)
				res.ProcFailSeen[proc.ID] = m
			}
			if old, ok := m[fp]; !ok || ts < old {
				m[fp] = ts
			}
		}
	}
	for i := 0; i < nprocs; i++ {
		installRecorders(i)
	}

	// Workload: every process runs an independent send loop off one shared,
	// seed-derived RNG. Draw order is fixed by the deterministic event
	// order, so the traffic replays exactly. curProcs is the currently
	// deployed process count — it grows at join activations, widening the
	// destination draw to the new tail.
	wrng := rand.New(rand.NewSource(p.Seed ^ 0x6a09e667f3bcc908))
	seqs := make([]int32, finalProcs)
	curProcs := nprocs
	var loop func(pi int)
	loop = func(pi int) {
		if eng.Now() >= p.Workload.Stop {
			return
		}
		proc := cl.Procs[pi]
		fan := 1 + wrng.Intn(p.Workload.MaxFanout)
		if fan > curProcs-1 {
			fan = curProcs - 1
		}
		var msgs []core.Message
		seen := map[netsim.ProcID]bool{proc.ID: true}
		id := MsgID{Src: proc.ID, Seq: seqs[pi]}
		for len(msgs) < fan {
			dst := netsim.ProcID(wrng.Intn(curProcs))
			if seen[dst] {
				continue
			}
			seen[dst] = true
			msgs = append(msgs, core.Message{Dst: dst, Data: id, Size: p.Workload.MsgBytes})
		}
		reliable := wrng.Float64() < p.Workload.ReliableFrac
		// The conflict draw happens only on plans that opt in, so the RNG
		// stream — and with it every existing golden digest — is untouched
		// when ConflictRate is zero.
		var ckey uint32
		if p.ConflictRate > 0 && wrng.Float64() < p.ConflictRate {
			ckey = 1 + uint32(wrng.Intn(4))
		}
		rec := SendRec{ID: id, Src: proc.ID, Reliable: reliable, At: proc.Timestamp(), Conflict: ckey}
		for _, m := range msgs {
			rec.Dsts = append(rec.Dsts, m.Dst)
		}
		// ConflictKey 0 means "no conflict group", so the unified options
		// path is behavior-identical to the old Send/SendReliable split.
		err := proc.SendOpts(msgs, core.SendOptions{Reliable: reliable, ConflictKey: ckey})
		if err != nil {
			rec.Refused = true
		} else {
			seqs[pi]++
		}
		res.Sends = append(res.Sends, rec)
		gap := p.Workload.Interval/2 + sim.Time(wrng.Int63n(int64(p.Workload.Interval)))
		eng.After(gap, func() { loop(pi) })
	}
	for pi := 0; pi < nprocs; pi++ {
		pi := pi
		// Stagger starts across one interval.
		eng.After(sim.Time(wrng.Int63n(int64(p.Workload.Interval)))+sim.Microsecond, func() { loop(pi) })
	}

	// Membership executor: scheduled joins and graceful drains run through
	// the epoch-based reconfiguration engine, sharing the controller's Raft
	// log with the failure pipeline. A joined host gets the wire probe, the
	// recorders and a workload loop of its own at activation; a drained
	// host's log length is frozen for the drain-silence checker.
	departed := make(map[int]bool)
	if len(p.Joins) > 0 || len(p.Drains) > 0 {
		reconf := reconfig.New(net, cl, ctrl, reconfig.Config{})
		for _, j := range p.Joins {
			j := j
			eng.At(j.At, func() {
				// An invalid placement is a plan-authoring error; it simply
				// never shows up in res.Joined.
				_, _ = reconf.JoinHost(j.Pod, j.Rack, func(_ *core.Host, eff sim.Time) {
					hi := len(cl.Hosts) - 1 // AddHost appended just before this callback
					attachProbe(hi)
					info := JoinInfo{Host: hi, TJoin: eff, At: eng.Now()}
					for pi := hi * pph; pi < (hi+1)*pph; pi++ {
						info.Procs = append(info.Procs, netsim.ProcID(pi))
						installRecorders(pi)
					}
					curProcs = len(cl.Procs)
					res.Joined = append(res.Joined, info)
					for _, pid := range info.Procs {
						pi := int(pid)
						eng.After(sim.Time(wrng.Int63n(int64(p.Workload.Interval)))+sim.Microsecond, func() { loop(pi) })
					}
				})
			})
		}
		for _, d := range p.Drains {
			d := d
			if d.Switch {
				eng.At(d.At, func() {
					_ = reconf.DrainSwitch(d.Phys, func() {
						res.DrainedSwitches = append(res.DrainedSwitches, d.Phys)
					})
				})
				continue
			}
			eng.At(d.At, func() {
				_ = reconf.DrainHost(d.Host, func() {
					departed[d.Host] = true
					for pi := d.Host * pph; pi < (d.Host+1)*pph; pi++ {
						pid := netsim.ProcID(pi)
						res.DrainedLogLen[pid] = len(res.Deliveries[pi])
						res.DrainedAt[pid] = eng.Now()
					}
				})
			})
		}
	}

	// Fault executor: every fault is armed at an absolute engine time.
	// Loss bursts restore the LossRate the network was built with (equal
	// to p.BaseLoss for legacy plans, so goldens are unchanged) rather
	// than p.BaseLoss itself: a plan expressing its baseline through
	// p.Impair has BaseLoss 0, and restoring 0 is what lets the profile's
	// uniform loss take over again after the burst window.
	baseLoss := net.Cfg.LossRate
	crashed := make(map[int]bool)
	for _, f := range p.Faults {
		f := f
		switch f.Kind {
		case FaultLossBurst:
			eng.At(f.At, func() { net.Cfg.LossRate = f.Rate })
			eng.At(f.At+f.Dur, func() { net.Cfg.LossRate = baseLoss })
		case FaultLinkDown:
			eng.At(f.At, func() { net.G.KillLink(f.Link) })
		case FaultHostCrash:
			crashed[f.Host] = true
			eng.At(f.At, func() {
				net.G.KillNode(net.G.Host(f.Host))
				cl.Hosts[f.Host].Stop()
			})
		case FaultSwitchCrash:
			eng.At(f.At, func() { net.G.KillPhys(f.Phys) })
		case FaultPartition:
			res.Partitions = append(res.Partitions, Window{Start: f.At, End: f.At + f.Dur})
			cut := partitionLinks(net.G, f.Pod)
			eng.At(f.At, func() {
				for _, lid := range cut {
					net.G.KillLink(lid)
				}
			})
			eng.At(f.At+f.Dur, func() {
				for _, lid := range cut {
					net.G.ReviveLink(lid)
				}
			})
		}
	}

	cl.Run(p.RunFor)

	// Post-run classification and state harvest. Gracefully departed hosts
	// are not correct in the delivery-obligation sense — like a crashed
	// host, in-flight scatterings toward them resolve via send-failure —
	// but unlike a crash this must happen without any failure record,
	// which checkDrains enforces separately.
	for pi := 0; pi < net.NumProcs(); pi++ {
		hi := net.HostOfProc(netsim.ProcID(pi))
		res.CorrectProc[pi] = !crashed[hi] && !departed[hi] && hostConnected(net.G, net.G.Host(hi))
	}
	res.PathOK = procReachability(net)
	res.Failures = ctrl.Failures
	res.Epochs = ctrl.Epochs
	res.ForwardedMsgs = ctrl.ForwardedMsgs
	res.Stats = cl.TotalStats()
	res.NetStats = net.TotalStats()
	net.Stop()
	return res
}

// procReachability BFSes the end-of-run graph over live links and nodes and
// maps host-level reachability onto process pairs.
func procReachability(net *netsim.Network) [][]bool {
	g := net.G
	nprocs := net.NumProcs()
	hostReach := make(map[topology.NodeID]map[topology.NodeID]bool)
	for hi := 0; hi < len(g.Hosts); hi++ {
		from := g.Host(hi)
		seen := map[topology.NodeID]bool{from: true}
		if g.NodeDead(from) {
			hostReach[from] = seen
			continue
		}
		queue := []topology.NodeID{from}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, lid := range g.Out[cur] {
				if g.LinkDead(lid) {
					continue
				}
				to := g.Link(lid).To
				if !seen[to] && !g.NodeDead(to) {
					seen[to] = true
					queue = append(queue, to)
				}
			}
		}
		hostReach[from] = seen
	}
	ok := make([][]bool, nprocs)
	for a := 0; a < nprocs; a++ {
		ok[a] = make([]bool, nprocs)
		ha := g.Host(net.HostOfProc(netsim.ProcID(a)))
		for b := 0; b < nprocs; b++ {
			hb := g.Host(net.HostOfProc(netsim.ProcID(b)))
			ok[a][b] = hostReach[ha][hb]
		}
	}
	return ok
}

// partitionLinks returns both directions of the pod<->core cut.
func partitionLinks(g *topology.Graph, pod int) []topology.LinkID {
	var cut []topology.LinkID
	for _, l := range g.Links {
		switch l.Kind {
		case topology.LinkSpineCoreUp:
			if g.Node(l.From).Pod == pod {
				cut = append(cut, l.ID)
			}
		case topology.LinkCoreSpineDown:
			if g.Node(l.To).Pod == pod {
				cut = append(cut, l.ID)
			}
		}
	}
	return cut
}

// Digest hashes the complete delivery logs — order, annotations and all.
// Two runs of the same plan must produce the same digest; TestChaos treats
// any difference as a determinism (replayability) bug in the stack.
func (r *Result) Digest() string {
	h := sha256.New()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for pi, log := range r.Deliveries {
		w(int64(pi))
		w(int64(len(log)))
		for _, d := range log {
			w(int64(d.TS))
			w(int64(d.Src))
			w(int64(d.ID.Src))
			w(int64(d.ID.Seq))
			if d.Reliable {
				w(1)
			} else {
				w(0)
			}
			w(int64(d.ClockAt))
			w(int64(d.BarBE))
			w(int64(d.BarC))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FullDigest extends Digest with the ordered failure-callback log: two runs
// of one plan must invoke OnProcFail/OnSendFail on the same processes in
// the same order with the same arguments, or an application acting on the
// callbacks would diverge on replay. This is the digest the determinism CI
// job pins across processes (fresh Go map hash seed each run), guarding the
// sorted-iteration fixes in core's failure paths.
func (r *Result) FullDigest() string {
	h := sha256.New()
	h.Write([]byte(r.Digest()))
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	w(int64(len(r.Callbacks)))
	for _, c := range r.Callbacks {
		w(int64(c.Kind))
		w(int64(c.Observer))
		w(int64(c.Proc))
		w(int64(c.TS))
		w(int64(c.ID.Src))
		w(int64(c.ID.Seq))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TotalDeliveries counts delivered messages across all receivers.
func (r *Result) TotalDeliveries() int {
	n := 0
	for _, log := range r.Deliveries {
		n += len(log)
	}
	return n
}
