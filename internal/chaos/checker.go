package chaos

import (
	"fmt"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
)

// Violation is one failed invariant, named after the checker that found it.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Partition exemption guards: a scattering submitted inside
// [Start-partGuardBefore, End+partGuardAfter) of any partition window is
// exempt from the cross-receiver and atomicity checks — during a partition
// the paper only promises local order for forwarded traffic (§5.2
// Controller Forwarding caveat). Everything else (at-most-once, causality,
// barrier gating, per-receiver sortedness) is enforced unconditionally.
const (
	partGuardBefore = 1 * sim.Millisecond
	partGuardAfter  = 5 * sim.Millisecond / 2
)

// Check validates every invariant against a run's logs and returns all
// violations found (empty = the run upheld the paper's guarantees).
//
// Invariant catalog (see docs/testing.md for the paper citations):
//  1. local-order     — each receiver's log is strictly sorted by (ts, src);
//                       per plane under DeliverSeparate, across both planes
//                       under DeliverUnified (§2.1, DESIGN deviation #4).
//  2. pairwise-order  — any two receivers deliver their common messages in
//                       the same relative order (§2.1 total order).
//  3. causality       — a message timestamped T is delivered only once the
//                       receiver's clock passed T (§2.1, §3).
//  4. at-most-once    — no receiver delivers the same scattering member
//                       twice (§4.1 dedup + §5.1 commit dedup).
//  5. atomicity       — a reliable scattering from a correct sender is
//                       delivered at all of its correct destinations or at
//                       none, and in the latter case the sender got a
//                       send-failure callback (§5.1/§5.2 restricted
//                       failure atomicity).
//  6. barrier-gate    — every delivery was covered by the barrier the
//                       receiver had announced at that instant (§4.1).
//  7. discard-floor   — no reliable message from a failed process is
//                       delivered beyond its failure timestamp (§5.2
//                       Discard).
//  8. wire-barrier    — on every host downlink, no data packet's message
//                       timestamp falls below a barrier the link already
//                       carried (the §4.1 per-link barrier promise; chip
//                       mode only). Catches in-switch stamp/wire-order
//                       inversions directly.
//  9. epoch-barrier   — no receiver's announced barrier pair ever
//                       regresses across its delivery log; membership
//                       epochs (join/drain/switch add) must leave the
//                       aggregated minimum monotone.
// 10. join-epoch      — every message a mid-run joined process sent
//                       carries a timestamp at or above its effective join
//                       epoch, at every receiver (the activation's
//                       register-seeding promise).
// 11. join-suffix     — a joined receiver's log agrees with every
//                       incumbent on the relative order of their common
//                       scatterings: the joiner delivers a suffix of the
//                       same total order, never an interleaving of its own.
// 12. drain-silence   — a gracefully drained process delivers nothing
//                       after its drain completed.
// 13. drain-no-failure — a graceful drain is a decision, not a failure: no
//                       controller failure record may name a drained
//                       process unless the fault schedule also crashed it.
// 14. hot-buffer-bound — when the plan caps the hot reorder heap
//                       (ReorderHotCap > 0), no host's peak hot occupancy
//                       may exceed the cap: overflow must spill to the
//                       cold store, never grow the heap (bounded receiver
//                       memory).
// 15. conflict-pair-order — under DeliverConflictAware, any two deliveries
//                       carrying the same nonzero conflict key appear in
//                       (ts, src) order at every receiver, and every pair
//                       of receivers agrees on the relative order of their
//                       common same-key scatterings (the Generic Multicast
//                       contract: declared-conflicting messages keep the
//                       total order even though untagged traffic is
//                       relaxed). The implementation orders ALL tagged
//                       messages mutually — a coarser relation — so this
//                       checks the declared relation it subsumes.
func Check(r *Result) []Violation {
	var out []Violation
	add := func(inv, format string, args ...any) {
		if len(out) < 64 { // cap: one broken invariant can fire thousands of times
			out = append(out, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
		}
	}

	sendAt := make(map[MsgID]sim.Time, len(r.Sends))
	sendRec := make(map[MsgID]*SendRec, len(r.Sends))
	for i := range r.Sends {
		s := &r.Sends[i]
		if s.Refused {
			continue
		}
		if _, ok := sendRec[s.ID]; !ok {
			sendRec[s.ID] = s
			sendAt[s.ID] = s.At
		}
	}
	exempt := func(id MsgID) bool {
		if r.Forwarded[id] {
			// Controller Forwarding relayed (part of) this scattering: the
			// §5.2 caveat applies regardless of which fault severed the path.
			return true
		}
		if len(r.Partitions) == 0 {
			return false
		}
		at, ok := sendAt[id]
		if !ok {
			return true // unknown provenance: don't guess
		}
		for _, w := range r.Partitions {
			if at >= w.Start-partGuardBefore && at < w.End+partGuardAfter {
				return true
			}
		}
		return false
	}

	checkLocalOrder(r, add)
	checkPairwiseOrder(r, exempt, add)
	checkCausalityAndGate(r, add)
	checkAtMostOnce(r, add)
	checkAtomicity(r, sendRec, exempt, add)
	checkDiscardFloor(r, add)
	checkWire(r, exempt, add)
	checkEpochBarriers(r, add)
	checkJoinEpoch(r, add)
	checkJoinSuffix(r, exempt, add)
	checkDrains(r, add)
	checkHotBufferBound(r, add)
	checkConflictPairs(r, exempt, add)
	return out
}

// checkConflictPairs enforces invariant 15: per receiver, the subsequence
// of deliveries sharing one nonzero conflict key is sorted by the global
// (ts, src) key, and any two receivers order their common same-key
// scatterings identically. Forwarded and partition-window scatterings are
// exempt from the cross-receiver half, exactly as in pairwise-order (§5.2
// Controller Forwarding is only locally ordered).
func checkConflictPairs(r *Result, exempt func(MsgID) bool, add func(string, string, ...any)) {
	if r.Plan.Mode != core.DeliverConflictAware {
		return
	}
	subseq := func(log []DeliveryRec) map[uint32][]DeliveryRec {
		m := make(map[uint32][]DeliveryRec)
		for _, d := range log {
			if d.Conflict != 0 {
				m[d.Conflict] = append(m[d.Conflict], d)
			}
		}
		return m
	}
	keyed := make([]map[uint32][]DeliveryRec, len(r.Deliveries))
	for pi, log := range r.Deliveries {
		keyed[pi] = subseq(log)
		for key, sub := range keyed[pi] {
			for i := 1; i < len(sub); i++ {
				if keyLess(sub[i], sub[i-1]) {
					add("conflict-pair-order",
						"receiver %d: conflicting (key=%d) %v/src=%d (id=%v) delivered after %v/src=%d",
						pi, key, sub[i].TS, sub[i].Src, sub[i].ID, sub[i-1].TS, sub[i-1].Src)
				}
			}
		}
	}
	for a := 0; a < len(keyed); a++ {
		for key, sa := range keyed[a] {
			idx := make(map[MsgID]int, len(sa))
			for i, d := range sa {
				idx[d.ID] = i
			}
			for b := a + 1; b < len(keyed); b++ {
				last, lastID := -1, MsgID{}
				for _, d := range keyed[b][key] {
					i, common := idx[d.ID]
					if !common || exempt(d.ID) {
						continue
					}
					if i < last {
						add("conflict-pair-order",
							"receivers %d and %d disagree on key=%d: %v before %v at one, after at the other",
							a, b, key, d.ID, lastID)
						break
					}
					last, lastID = i, d.ID
				}
			}
		}
	}
}

// checkHotBufferBound asserts the bounded-memory contract of hybrid reorder
// buffering: with ReorderHotCap set, the delivery heaps never held more than
// the cap on any host — every overflow went to the cold spill store. The
// core reports the peak via Stats.ReorderHotMax (max over hosts of the
// larger per-plane heap).
func checkHotBufferBound(r *Result, add func(string, string, ...any)) {
	hotCap := r.Plan.ReorderHotCap
	if hotCap <= 0 {
		return
	}
	if r.Stats.ReorderHotMax > int64(hotCap) {
		add("hot-buffer-bound", "peak hot reorder occupancy %d exceeds ReorderHotCap %d",
			r.Stats.ReorderHotMax, hotCap)
	}
}

// checkEpochBarriers asserts every receiver's announced barrier pair is
// non-decreasing along its delivery log. The netsim clamps each node's
// aggregate, but a reconfiguration that seeded a new link's register too
// low — or resurrected a drained one — would surface here as a regression
// of the barrier a host had already announced.
func checkEpochBarriers(r *Result, add func(string, string, ...any)) {
	for pi, log := range r.Deliveries {
		for i := 1; i < len(log); i++ {
			a, b := log[i-1], log[i]
			if b.BarBE < a.BarBE || b.BarC < a.BarC {
				add("epoch-barrier",
					"receiver %d: announced barrier regressed (be %v->%v, c %v->%v) at delivery %v",
					pi, a.BarBE, b.BarBE, a.BarC, b.BarC, b.ID)
			}
		}
	}
}

// checkJoinEpoch asserts the activation promise of every mid-run join:
// the joining host's clock and timestamp floor were forced above the
// effective epoch before its uplink register was admitted, so nothing it
// ever sent may carry a timestamp below that epoch — at any receiver.
func checkJoinEpoch(r *Result, add func(string, string, ...any)) {
	if len(r.Joined) == 0 {
		return
	}
	epoch := make(map[netsim.ProcID]sim.Time)
	for _, ji := range r.Joined {
		for _, pid := range ji.Procs {
			epoch[pid] = ji.TJoin
		}
	}
	for pi, log := range r.Deliveries {
		for _, d := range log {
			if tj, joined := epoch[d.Src]; joined && d.TS < tj {
				add("join-epoch",
					"receiver %d delivered ts=%v from joined proc %d below its join epoch %v (id=%v)",
					pi, d.TS, d.Src, tj, d.ID)
			}
		}
	}
}

// checkJoinSuffix asserts a joined receiver shares the incumbents' total
// order: for every other process, the scatterings delivered at both must
// appear in the same relative order. This is pairwise-order focused on the
// joiners — the property the paper's epoch argument owes a host that was
// not there when the order started.
func checkJoinSuffix(r *Result, exempt func(MsgID) bool, add func(string, string, ...any)) {
	for _, ji := range r.Joined {
		for _, pid := range ji.Procs {
			for _, sj := range classStreams(r.Plan.Mode, r.Deliveries[pid]) {
				idx := make(map[MsgID]int, len(sj))
				for i, d := range sj {
					idx[d.ID] = i
				}
				for other := range r.Deliveries {
					if netsim.ProcID(other) == pid {
						continue
					}
					for _, so := range classStreams(r.Plan.Mode, r.Deliveries[other]) {
						last, lastID := -1, MsgID{}
						for _, d := range so {
							i, common := idx[d.ID]
							if !common || exempt(d.ID) {
								continue
							}
							if i < last {
								add("join-suffix",
									"joined proc %d and incumbent %d disagree: %v before %v at one, after at the other",
									pid, other, d.ID, lastID)
								break
							}
							last, lastID = i, d.ID
						}
					}
				}
			}
		}
	}
}

// checkDrains asserts the two graceful-departure properties: a drained
// process's delivery log is frozen at the instant its drain completed, and
// no controller failure record names it (a drain is a decision, not a
// §5.2 failure) unless the fault schedule independently crashed its host.
func checkDrains(r *Result, add func(string, string, ...any)) {
	if len(r.DrainedLogLen) == 0 {
		return
	}
	for pid, frozen := range r.DrainedLogLen {
		if got := len(r.Deliveries[pid]); got != frozen {
			add("drain-silence",
				"drained proc %d delivered %d messages after its drain completed at %v",
				pid, got-frozen, r.DrainedAt[pid])
		}
	}
	crashedHost := make(map[int]bool)
	for _, f := range r.Plan.Faults {
		if f.Kind == FaultHostCrash {
			crashedHost[f.Host] = true
		}
	}
	pph := r.Plan.ProcsPerHost
	for _, rec := range r.Failures {
		for p := range rec.Procs {
			if _, drained := r.DrainedLogLen[p]; drained && !crashedHost[int(p)/pph] {
				add("drain-no-failure",
					"controller failure record names gracefully drained proc %d (fts=%v)",
					p, rec.Procs[p])
			}
		}
	}
}

// checkWire classifies the run's wire-level barrier-promise suspects. A
// suspect is a genuine violation only for live traffic under normal
// ordering: in-flight packets of failed processes cross the post-Resume
// barrier jump legitimately, aborted (recalled) scatterings may have a
// straggler retransmission below the commit barrier their sender already
// released, and controller-forwarded traffic bypasses the fabric's
// stamping entirely (§5.2).
func checkWire(r *Result, exempt func(MsgID) bool, add func(string, string, ...any)) {
	for _, s := range r.WireSuspects {
		if int(s.Src) < len(r.CorrectProc) && !r.CorrectProc[s.Src] {
			continue
		}
		if exempt(s.ID) || len(r.SendFails[s.ID]) > 0 {
			continue
		}
		plane := "best-effort"
		if s.Reliable {
			plane = "reliable"
		}
		add("wire-barrier", "host %d @%v: %s data ts=%v from proc %d arrived after the link carried barrier %v (id=%v)",
			s.Host, s.At, plane, s.TS, s.Src, s.Barrier, s.ID)
	}
}

// key is the global total-order key: timestamps first, sender ID as the
// tie-break (§2.1). Within one receiver log the pair is unique per
// scattering, since a sender never reuses a timestamp.
func keyLess(a, b DeliveryRec) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.Src < b.Src
}

func keyEq(a, b DeliveryRec) bool { return a.TS == b.TS && a.Src == b.Src }

// classStreams splits a log the way the delivery mode defines order: one
// merged stream under DeliverUnified; under DeliverConflictAware one merged
// stream of the tagged (nonzero-key) deliveries — untagged messages opted
// out of the cross-class order and carry no ordering obligation; one stream
// per plane otherwise.
func classStreams(mode core.DeliveryMode, log []DeliveryRec) [][]DeliveryRec {
	switch mode {
	case core.DeliverUnified:
		return [][]DeliveryRec{log}
	case core.DeliverConflictAware:
		var tagged []DeliveryRec
		for _, d := range log {
			if d.Conflict != 0 {
				tagged = append(tagged, d)
			}
		}
		return [][]DeliveryRec{tagged}
	}
	var be, rel []DeliveryRec
	for _, d := range log {
		if d.Reliable {
			rel = append(rel, d)
		} else {
			be = append(be, d)
		}
	}
	return [][]DeliveryRec{be, rel}
}

func checkLocalOrder(r *Result, add func(string, string, ...any)) {
	for pi, log := range r.Deliveries {
		for si, stream := range classStreams(r.Plan.Mode, log) {
			for i := 1; i < len(stream); i++ {
				a, b := stream[i-1], stream[i]
				if keyLess(b, a) || (keyEq(a, b) && a.ID != b.ID) {
					add("local-order",
						"receiver %d stream %d: %v/src=%d (id=%v) delivered after %v/src=%d",
						pi, si, b.TS, b.Src, b.ID, a.TS, a.Src)
				}
			}
		}
	}
}

func checkPairwiseOrder(r *Result, exempt func(MsgID) bool, add func(string, string, ...any)) {
	n := len(r.Deliveries)
	for a := 0; a < n; a++ {
		for _, sa := range classStreams(r.Plan.Mode, r.Deliveries[a]) {
			idx := make(map[MsgID]int, len(sa))
			for i, d := range sa {
				idx[d.ID] = i
			}
			for b := a + 1; b < n; b++ {
				for _, sb := range classStreams(r.Plan.Mode, r.Deliveries[b]) {
					last, lastID := -1, MsgID{}
					for _, d := range sb {
						i, common := idx[d.ID]
						if !common || exempt(d.ID) {
							continue
						}
						if i < last {
							add("pairwise-order",
								"receivers %d and %d disagree: %v before %v at one, after at the other",
								a, b, d.ID, lastID)
							break
						}
						last, lastID = i, d.ID
					}
				}
			}
		}
	}
}

func checkCausalityAndGate(r *Result, add func(string, string, ...any)) {
	unified := r.Plan.Mode == core.DeliverUnified
	ca := r.Plan.Mode == core.DeliverConflictAware
	for pi, log := range r.Deliveries {
		for _, d := range log {
			if ca && d.Conflict == 0 && !d.Reliable {
				// Untagged best-effort under DeliverConflictAware delivers
				// immediately on reassembly — before the barrier covers it,
				// and (under clock skew) possibly before the receiver's clock
				// passes its timestamp. That is the declared relaxation.
				continue
			}
			if d.ClockAt < d.TS {
				add("causality", "receiver %d delivered ts=%v with local clock %v (id=%v)",
					pi, d.TS, d.ClockAt, d.ID)
			}
			switch {
			case ca && d.Conflict == 0:
				// Untagged reliable: gated by the commit barrier alone (the
				// §5.2 recall window), outside the cross-class order.
				if d.TS > d.BarC {
					add("barrier-gate", "receiver %d: relaxed reliable delivery ts=%v above commit barrier %v (id=%v)",
						pi, d.TS, d.BarC, d.ID)
				}
			case unified || ca:
				if d.TS > d.BarBE-1 || d.TS > d.BarC {
					add("barrier-gate", "receiver %d: unified delivery ts=%v above barriers (be=%v c=%v, id=%v)",
						pi, d.TS, d.BarBE, d.BarC, d.ID)
				}
			case d.Reliable:
				if d.TS > d.BarC {
					add("barrier-gate", "receiver %d: reliable delivery ts=%v above commit barrier %v (id=%v)",
						pi, d.TS, d.BarC, d.ID)
				}
			default:
				if d.TS >= d.BarBE {
					add("barrier-gate", "receiver %d: best-effort delivery ts=%v at/above barrier %v (id=%v)",
						pi, d.TS, d.BarBE, d.ID)
				}
			}
		}
	}
}

func checkAtMostOnce(r *Result, add func(string, string, ...any)) {
	for pi, log := range r.Deliveries {
		seen := make(map[MsgID]bool, len(log))
		for _, d := range log {
			if seen[d.ID] {
				add("at-most-once", "receiver %d delivered %v twice", pi, d.ID)
			}
			seen[d.ID] = true
		}
	}
}

func checkAtomicity(r *Result, sends map[MsgID]*SendRec, exempt func(MsgID) bool, add func(string, string, ...any)) {
	delivered := make(map[MsgID]map[netsim.ProcID]bool)
	for pi, log := range r.Deliveries {
		for _, d := range log {
			set := delivered[d.ID]
			if set == nil {
				set = make(map[netsim.ProcID]bool)
				delivered[d.ID] = set
			}
			set[netsim.ProcID(pi)] = true
		}
	}
	for id, s := range sends {
		if !s.Reliable || !r.CorrectProc[s.Src] || exempt(id) {
			continue
		}
		// A destination severed from the sender in the end-of-run fabric is
		// Controller Forwarding territory: delivery may still be pending on
		// the management network when the run ends, and the scattering's
		// atomicity is restricted exactly as during a partition (§5.2).
		severed := false
		for _, dst := range s.Dsts {
			if !r.PathOK[s.Src][dst] {
				severed = true
			}
		}
		if severed {
			continue
		}
		var correct, got []netsim.ProcID
		for _, dst := range s.Dsts {
			if !r.CorrectProc[dst] {
				continue // §5.2 caveat: a failed receiver may miss the scattering
			}
			correct = append(correct, dst)
			if delivered[id][dst] {
				got = append(got, dst)
			}
		}
		if len(correct) == 0 {
			continue
		}
		failedSet := r.SendFails[id]
		switch {
		case len(got) == 0:
			if len(failedSet) == 0 {
				add("atomicity", "reliable %v (src=%d, dsts=%v) neither delivered nor failure-reported",
					id, s.Src, s.Dsts)
			}
		case len(got) < len(correct):
			add("atomicity", "reliable %v partially delivered: %v of correct set %v", id, got, correct)
		default:
			for _, dst := range correct {
				if failedSet[dst] {
					add("atomicity", "reliable %v delivered at %d yet failure-reported for it", id, dst)
				}
			}
		}
	}
}

func checkDiscardFloor(r *Result, add func(string, string, ...any)) {
	fts := make(map[netsim.ProcID]sim.Time)
	for _, rec := range r.Failures {
		for p, t := range rec.Procs {
			if old, ok := fts[p]; !ok || t < old {
				fts[p] = t
			}
		}
	}
	if len(fts) == 0 {
		return
	}
	for pi, log := range r.Deliveries {
		if !r.CorrectProc[netsim.ProcID(pi)] {
			continue // §5.2 Discard binds correct processes only; a failed
			// host may keep delivering co-located traffic to itself
		}
		for _, d := range log {
			if !d.Reliable || r.Forwarded[d.ID] {
				// Controller Forwarding bypasses commit-barrier gating, so
				// the fts derivation ("nothing above the last commit barrier
				// was delivered") does not cover forwarded traffic (§5.2).
				continue
			}
			if t, failed := fts[d.Src]; failed && d.TS > t {
				add("discard-floor", "receiver %d delivered reliable ts=%v from failed proc %d (fts=%v)",
					pi, d.TS, d.Src, t)
			}
		}
	}
}
