package chaos

import (
	"testing"

	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// elasticPlan is a crafted membership-churn scenario: two hosts join the
// running fabric at different times, one incumbent gracefully drains, a
// spine switch drains, and a host crash lands in the middle of it all so
// the §5.2 failure pipeline and the epoch pipeline interleave on the same
// Raft log. SpinesPerPod is 2 so the spine drain reroutes instead of
// partitioning.
func elasticPlan(seed int64) Plan {
	p := Plan{
		Seed:         seed,
		Topo:         topology.ClosConfig{Pods: 2, RacksPerPod: 1, HostsPerRack: 3, SpinesPerPod: 2, Cores: 2},
		ProcsPerHost: 1,
		Mode:         core.DeliverSeparate,
		MaxRetx:      6,
		RunFor:       9 * sim.Millisecond,
		Workload: Workload{
			Interval:     4 * sim.Microsecond,
			Stop:         4 * sim.Millisecond,
			MaxFanout:    3,
			ReliableFrac: 0.8,
			MsgBytes:     128,
		},
		Faults: []Fault{{At: 2800 * sim.Microsecond, Kind: FaultHostCrash, Host: 1}},
		Joins: []JoinEvent{
			{At: 1000 * sim.Microsecond, Pod: 0, Rack: 0},
			{At: 1600 * sim.Microsecond, Pod: 1, Rack: 0},
		},
	}
	scratch := topology.NewClos(p.Topo)
	spine := scratch.Node(scratch.SpineUps(0)[1]).Phys
	p.Drains = []DrainEvent{
		{At: 2200 * sim.Microsecond, Host: 4},
		{At: 3200 * sim.Microsecond, Switch: true, Phys: spine},
	}
	return p
}

// TestChaosElastic runs interleaved joins, drains, a switch drain and an
// injected crash under the full invariant catalog — including the epoch
// checkers — and asserts the run is deterministically replayable (runSeed
// executes every plan twice and compares digests).
func TestChaosElastic(t *testing.T) {
	p := elasticPlan(23)
	r := runSeed(t, p)
	if vios := Check(r); len(vios) > 0 {
		failSeed(t, p, vios)
	}

	if len(r.Joined) != 2 {
		t.Fatalf("joins activated: %d, want 2 (%+v)", len(r.Joined), r.Joined)
	}
	fromJoined := 0
	joinedProcs := make(map[netsim.ProcID]bool)
	for _, ji := range r.Joined {
		for _, pid := range ji.Procs {
			joinedProcs[pid] = true
			if len(r.Deliveries[pid]) == 0 {
				t.Errorf("joined proc %d (host %d) delivered nothing", pid, ji.Host)
			}
		}
	}
	for _, log := range r.Deliveries {
		for _, d := range log {
			if joinedProcs[d.Src] {
				fromJoined++
			}
		}
	}
	if fromJoined == 0 {
		t.Fatal("no incumbent delivered anything sent by a joined host")
	}

	if len(r.DrainedLogLen) != 1 {
		t.Fatalf("drained procs recorded: %d, want 1", len(r.DrainedLogLen))
	}
	if len(r.DrainedSwitches) != 1 {
		t.Fatalf("drained switches recorded: %v, want one entry", r.DrainedSwitches)
	}
	if len(r.Epochs) != 4 {
		t.Fatalf("controller epoch log has %d records, want 4: %+v", len(r.Epochs), r.Epochs)
	}
	crashRecorded := false
	for _, rec := range r.Failures {
		for pid := range rec.Procs {
			if pid == 1 {
				crashRecorded = true
			}
		}
	}
	if !crashRecorded {
		t.Fatalf("injected crash of host 1 missing from failure records %+v", r.Failures)
	}
}
