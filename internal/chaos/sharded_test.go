package chaos

import "testing"

// TestShardedDigestEquivalence pins the tentpole determinism claim of the
// sharded engine: driving the golden chaos seeds on 2 and 4 lockstep shard
// engines produces FullDigests byte-identical to the single-engine run
// (whose digests TestGoldenSeedDigests pins). The lockstep drive shares
// one clock and one sequence counter across shards, so the global event
// order — and with it every delivery and callback — is the same by
// construction; this test is the end-to-end proof through the full stack
// (per-shard heaps, link ownership split, cross-shard handoff points).
func TestShardedDigestEquivalence(t *testing.T) {
	for _, seed := range []int64{42, 20260805} {
		base := Run(NewPlan(seed))
		want := base.FullDigest()
		for _, shards := range []int{2, 4} {
			p := NewPlan(seed)
			p.Shards = shards
			r := Run(p)
			if got := r.FullDigest(); got != want {
				t.Errorf("seed %d shards=%d: FullDigest %s, want %s", seed, shards, got, want)
			}
			if got, want := r.TotalDeliveries(), base.TotalDeliveries(); got != want {
				t.Errorf("seed %d shards=%d: %d deliveries, want %d", seed, shards, got, want)
			}
		}
	}
}

// TestShardedDeliveryLogEquivalence is the breadth property: across 20
// seeds, the per-process delivery logs of a sharded lockstep run are
// element-identical to the single-engine run — not merely digest-equal,
// so a mismatch reports the first diverging record.
func TestShardedDeliveryLogEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("20-seed sweep")
	}
	for i := 0; i < 20; i++ {
		seed := int64(9000 + i*31)
		base := Run(NewPlan(seed))
		p := NewPlan(seed)
		p.Shards = 2 + 2*(i%2) // alternate 2 and 4 shards
		r := Run(p)
		if len(r.Deliveries) != len(base.Deliveries) {
			t.Fatalf("seed %d: %d procs, want %d", seed, len(r.Deliveries), len(base.Deliveries))
		}
		for pi := range base.Deliveries {
			a, b := base.Deliveries[pi], r.Deliveries[pi]
			if len(a) != len(b) {
				t.Fatalf("seed %d shards=%d proc %d: %d deliveries, want %d", seed, p.Shards, pi, len(b), len(a))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("seed %d shards=%d proc %d delivery %d: %+v, want %+v", seed, p.Shards, pi, j, b[j], a[j])
				}
			}
		}
		if got, want := r.FullDigest(), base.FullDigest(); got != want {
			t.Fatalf("seed %d shards=%d: FullDigest %s, want %s", seed, p.Shards, got, want)
		}
	}
}
