package chaos

import "testing"

// TestGoldenSeedDigests pins the delivery-log digest of two chaos seeds.
// The digest hashes every delivery (timestamp, sender, message id, barrier
// annotations) in order, so it is sensitive to any change in event ordering
// anywhere in the stack: the event-queue implementation, packet pooling,
// retransmission order, barrier propagation. A legitimate protocol change
// may move these values — update them only after confirming the diff is an
// intended behavioral change, not a lost tie-break (see docs/performance.md).
func TestGoldenSeedDigests(t *testing.T) {
	golden := []struct {
		seed       int64
		digest     string
		deliveries int
	}{
		{42, "cdcbe7c10bb58a9069bcb920a912ee35ce64d3f1131efedd9294462d8a3167e4", 11802},
		{20260805, "3da61f0a1878f7f996eb8598c88fe20deef324a570dd1a14a909ce075793a60f", 24993},
	}
	for _, g := range golden {
		r := Run(NewPlan(g.seed))
		if got := r.Digest(); got != g.digest {
			t.Errorf("seed %d: digest %s, want %s", g.seed, got, g.digest)
		}
		if got := r.TotalDeliveries(); got != g.deliveries {
			t.Errorf("seed %d: %d deliveries, want %d", g.seed, got, g.deliveries)
		}
	}
}
