package chaos

import "testing"

// TestGoldenSeedDigests pins the delivery-log digest of two chaos seeds.
// The digest hashes every delivery (timestamp, sender, message id, barrier
// annotations) in order, so it is sensitive to any change in event ordering
// anywhere in the stack: the event-queue implementation, packet pooling,
// retransmission order, barrier propagation. A legitimate protocol change
// may move these values — update them only after confirming the diff is an
// intended behavioral change, not a lost tie-break (see docs/performance.md).
func TestGoldenSeedDigests(t *testing.T) {
	golden := []struct {
		seed       int64
		digest     string
		deliveries int
	}{
		// Regenerated when send-side frame coalescing landed: frames share
		// fate under loss (one drop fails every member), so a handful of
		// deliveries under fault schedules move or disappear. Confirmed
		// bit-identical across repeated runs before pinning.
		{42, "7dd84620e944b40119c7e37aa8f2e1318ebb641d7e2181dd4b4300c70afd460e", 11793},
		{20260805, "37bc8b4a49a5ca408fbff46279c5d74c42661018f736ad339a3ee85f8ba335f2", 24980},
	}
	for _, g := range golden {
		r := Run(NewPlan(g.seed))
		if got := r.Digest(); got != g.digest {
			t.Errorf("seed %d: digest %s, want %s", g.seed, got, g.digest)
		}
		if got := r.TotalDeliveries(); got != g.deliveries {
			t.Errorf("seed %d: %d deliveries, want %d", g.seed, got, g.deliveries)
		}
	}
}
