package chaos

import (
	"testing"

	"onepipe/internal/sim"
)

// twoFailurePlan is the crafted schedule behind the two-simultaneous-failure
// golden digest: two hosts in different pods fail-stop at the same instant,
// so one controller failure round carries two processes and every surviving
// sender walks both its conn map and its unacked sets for recalls in a
// single ApplyFailure pass. Before the sorted-iteration fixes in
// core/fail.go, the OnProcFail fan-out and recall emission order depended on
// Go map iteration order and this schedule's FullDigest drifted across
// processes.
func twoFailurePlan() Plan {
	return craftedPlan(13,
		Fault{At: 1500 * sim.Microsecond, Kind: FaultHostCrash, Host: 1},
		Fault{At: 1500 * sim.Microsecond, Kind: FaultHostCrash, Host: 4},
	)
}

// TestScenarioTwoSimultaneousFailures drives §5.2 with two hosts crashing at
// the same instant: the failure round must name both, recalls must run, and
// the full invariant catalog must hold — deterministically (runSeed compares
// FullDigest, which includes the failure-callback order).
func TestScenarioTwoSimultaneousFailures(t *testing.T) {
	p := twoFailurePlan()
	r := runSeed(t, p)
	if vios := Check(r); len(vios) > 0 {
		failSeed(t, p, vios)
	}
	dead := map[int]bool{}
	for _, rec := range r.Failures {
		for pid := range rec.Procs {
			dead[int(pid)] = true
		}
	}
	if !dead[1] || !dead[4] {
		t.Fatalf("failure records %v did not declare both crashed hosts' procs", r.Failures)
	}
	if r.Stats.Recalled == 0 {
		t.Fatal("no scattering was recalled — the abort path never ran")
	}
	if len(r.Callbacks) == 0 {
		t.Fatal("no failure callbacks recorded — FullDigest has nothing to pin")
	}
}

// TestGoldenTwoFailureFullDigest pins the FullDigest of the crafted
// two-simultaneous-failure schedule. Unlike the seed goldens this digest
// also covers the ordered OnProcFail/OnSendFail callback log, so it is the
// regression tripwire for map-iteration nondeterminism in the failure paths
// (ApplyFailure's callback fan-out, recallAffected's conn/unacked walks).
// The CI determinism job re-runs this test in several fresh processes —
// each with a different Go map hash seed — and fails on any drift.
func TestGoldenTwoFailureFullDigest(t *testing.T) {
	// Confirmed bit-identical across repeated runs in separate processes
	// before pinning.
	const want = "86dd9e44ecacc224d50072abc42454353abcacf592be30bc77ceb024559372b0"
	r := Run(twoFailurePlan())
	if got := r.FullDigest(); got != want {
		t.Errorf("two-failure schedule: full digest %s, want %s", got, want)
	}
}

// TestScenarioHotBufferBound arms the hybrid reorder buffer under loss: with
// ReorderHotCap set low enough that overflow actually spills, the delivery
// log must be byte-identical to the unbounded run (spilling is a memory
// placement decision, never an ordering one), the peak hot occupancy must
// respect the cap (invariant 14), and the full catalog must hold.
func TestScenarioHotBufferBound(t *testing.T) {
	burst := Fault{At: 1200 * sim.Microsecond, Kind: FaultLossBurst, Dur: 800 * sim.Microsecond, Rate: 0.12}
	base := craftedPlan(17, burst)
	capped := craftedPlan(17, burst)
	capped.ReorderHotCap = 4

	rBase := Run(base)
	rCap := runSeed(t, capped)
	if vios := Check(rCap); len(vios) > 0 {
		failSeed(t, capped, vios)
	}
	if rCap.Stats.ReorderSpills == 0 {
		t.Fatalf("cap=4 produced no spills (hot max %d) — the cold store never engaged; lower the cap",
			rCap.Stats.ReorderHotMax)
	}
	if rCap.Stats.ReorderHotMax > 4 {
		t.Fatalf("peak hot occupancy %d exceeds cap 4", rCap.Stats.ReorderHotMax)
	}
	if rBase.Digest() != rCap.Digest() {
		t.Fatalf("capped delivery log diverged from unbounded: %s != %s (spilling changed ordering)",
			rCap.Digest()[:16], rBase.Digest()[:16])
	}
}

// TestScenarioEvictionUnderFailure runs the lazy-connection lifecycle
// against the §5.2 machinery: idle eviction armed with a short period, a
// loss burst and a host crash mid-workload. Evictions must actually happen,
// re-established connections must resume PSN-continuously (any replayed or
// misnumbered packet would trip at-most-once or local-order), and the
// delivery log must be byte-identical to the eviction-off run — eviction
// reclaims memory, it never changes what the application sees.
func TestScenarioEvictionUnderFailure(t *testing.T) {
	faults := []Fault{
		{At: 1200 * sim.Microsecond, Kind: FaultLossBurst, Dur: 600 * sim.Microsecond, Rate: 0.1},
		{At: 2000 * sim.Microsecond, Kind: FaultHostCrash, Host: 2},
	}
	base := craftedPlan(19, faults...)
	evict := craftedPlan(19, faults...)
	evict.ConnIdleEvict = 80 * sim.Microsecond

	rBase := Run(base)
	rEv := runSeed(t, evict)
	if vios := Check(rEv); len(vios) > 0 {
		failSeed(t, evict, vios)
	}
	if rEv.Stats.ConnsEvicted == 0 {
		t.Fatal("no connection was ever evicted — the lifecycle never engaged; shorten ConnIdleEvict")
	}
	if rBase.Digest() != rEv.Digest() {
		t.Fatalf("eviction changed the delivery log: %s != %s", rEv.Digest()[:16], rBase.Digest()[:16])
	}
}

// TestScenarioHotBoundCheckerSensitivity is invariant 14's negative control:
// a run whose reported peak hot occupancy exceeds the plan's cap must trip
// hot-buffer-bound. Guards against the checker silently checking nothing.
func TestScenarioHotBoundCheckerSensitivity(t *testing.T) {
	p := craftedPlan(23)
	p.ReorderHotCap = 8
	r := Run(p)
	if vios := Check(r); len(vios) > 0 {
		t.Fatalf("clean run already fails: %v", vios)
	}
	r.Stats.ReorderHotMax = 9
	hit := false
	for _, v := range Check(r) {
		if v.Invariant == "hot-buffer-bound" {
			hit = true
		}
	}
	if !hit {
		t.Error("over-cap hot occupancy did not trip hot-buffer-bound — checker is blind")
	}
}
