package chaos

import (
	"testing"

	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/topology"
)

// TestLegacyKnobsViaProfileGoldenDigests re-runs the pinned golden seeds
// with every legacy knob (BaseLoss → netsim LossRate, Jitter) expressed
// through the Impairment profile API instead, and demands the exact
// pre-redesign digests. This is the redesign's compatibility proof: the
// profile's uniform Loss/Jitter consume the shared shard RNG at the same
// code points the legacy fields did, so the runs are byte-identical.
func TestLegacyKnobsViaProfileGoldenDigests(t *testing.T) {
	golden := []struct {
		seed       int64
		digest     string
		deliveries int
	}{
		{42, "7dd84620e944b40119c7e37aa8f2e1318ebb641d7e2181dd4b4300c70afd460e", 11793},
		{20260805, "37bc8b4a49a5ca408fbff46279c5d74c42661018f736ad339a3ee85f8ba335f2", 24980},
	}
	for _, g := range golden {
		p := NewPlan(g.seed)
		p.Impair = &netsim.Profile{Default: &netsim.Impairment{Loss: p.BaseLoss, Jitter: p.Jitter}}
		p.BaseLoss, p.Jitter = 0, 0
		r := Run(p)
		if got := r.Digest(); got != g.digest {
			t.Errorf("seed %d via profile: digest %s, want %s", g.seed, got, g.digest)
		}
		if got := r.TotalDeliveries(); got != g.deliveries {
			t.Errorf("seed %d via profile: %d deliveries, want %d", g.seed, got, g.deliveries)
		}
	}
}

// TestProfileExpressedKnobsFullEquivalence pins the stronger property on a
// crafted plan where loss and jitter are both guaranteed nonzero (the golden
// seeds draw theirs, so either may be zero): the legacy-knob run and the
// profile-expressed run must agree on the FULL digest — delivery logs and
// callback logs both.
func TestProfileExpressedKnobsFullEquivalence(t *testing.T) {
	legacy := craftedPlan(1311,
		Fault{At: 1500 * sim.Microsecond, Kind: FaultHostCrash, Host: 4})
	legacy.BaseLoss = 0.008
	legacy.Jitter = 400 * sim.Nanosecond

	profiled := legacy
	profiled.Impair = &netsim.Profile{Default: &netsim.Impairment{
		Loss: legacy.BaseLoss, Jitter: legacy.Jitter}}
	profiled.BaseLoss, profiled.Jitter = 0, 0

	a, b := Run(legacy), Run(profiled)
	if a.FullDigest() != b.FullDigest() {
		t.Fatalf("legacy vs profile full digests differ: %s != %s",
			a.FullDigest()[:16], b.FullDigest()[:16])
	}
	if a.TotalDeliveries() == 0 {
		t.Fatal("no deliveries; equivalence vacuous")
	}
}

// TestScenarioBurstLossProfileUnderCrash runs a Gilbert-Elliott burst-loss
// profile (host links only) concurrently with a loss-burst fault and a host
// crash: the §5.2 failure path under correlated loss. runSeed replays the
// plan twice and demands full-digest equality — the per-link impairment RNG
// is part of the determinism contract — and the whole invariant catalog
// must hold on the result.
func TestScenarioBurstLossProfileUnderCrash(t *testing.T) {
	p := craftedPlan(2026,
		Fault{At: 1200 * sim.Microsecond, Kind: FaultLossBurst, Rate: 0.15, Dur: 400 * sim.Microsecond},
		Fault{At: 2000 * sim.Microsecond, Kind: FaultHostCrash, Host: 1})
	p.Impair = &netsim.Profile{
		Default: &netsim.Impairment{Jitter: 200 * sim.Nanosecond},
		ByKind: map[topology.LinkKind]*netsim.Impairment{
			topology.LinkHostUp:      {GE: netsim.BurstLoss(0.01, 6), Jitter: 200 * sim.Nanosecond},
			topology.LinkTorHostDown: {GE: netsim.BurstLoss(0.01, 6), Jitter: 200 * sim.Nanosecond},
		},
	}
	r := runSeed(t, p)
	if vios := Check(r); len(vios) > 0 {
		for _, v := range vios {
			t.Errorf("invariant violated: %v", v)
		}
	}
	if r.TotalDeliveries() == 0 {
		t.Fatal("no deliveries under burst-loss profile")
	}
}
