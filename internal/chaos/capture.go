package chaos

import (
	"onepipe/internal/core"
	"onepipe/internal/netsim"
	"onepipe/internal/sim"
	"onepipe/internal/wire"
)

// CaptureWirePackets runs a short, fault-heavy plan and returns encoded
// wire-format frames of the packets delivered to hosts — beacons carrying
// live barriers, recalls and recall ACKs from the abort path, commit
// messages, coalesced ACKs and commit-eliding data packets. The wire fuzz
// corpus seeds itself from these (satisfying "headers captured from chaos
// runs" with real protocol state rather than hand-built constants).
func CaptureWirePackets(seed int64, perKind int) [][]byte {
	p := NewPlan(seed)
	// Force the interesting machinery regardless of what the seed drew:
	// a crash produces recalls, loss produces retransmissions and NAKs.
	p.Topo.Pods, p.Topo.RacksPerPod, p.Topo.HostsPerRack = 1, 2, 3
	p.Topo.SpinesPerPod, p.Topo.Cores = 1, 1
	p.RunFor = 4 * sim.Millisecond
	p.Workload.Stop = p.RunFor - 2*sim.Millisecond
	p.Workload.ReliableFrac = 0.7
	p.Workload.MaxFanout = 3 // multi-member scatterings, so aborts issue recalls
	p.BaseLoss = 0.02
	p.Jitter = 2 * sim.Microsecond // stragglers below the floor draw NAKs
	p.Faults = []Fault{
		{At: 800 * sim.Microsecond, Kind: FaultHostCrash, Host: p.Topo.NumHosts() - 1},
		{At: 1200 * sim.Microsecond, Kind: FaultLossBurst, Dur: 500 * sim.Microsecond, Rate: 0.2},
	}
	// Widen the coalescing window well past the send interval so same-conn
	// scatterings merge and the corpus contains genuine multi-message frames.
	p.BatchWindow = 20 * sim.Microsecond
	// Tag about half the workload with conflict keys under conflict-aware
	// delivery, so the corpus carries nonzero ConflictKey headers and frames
	// mixing tagged and untagged entries.
	p.Mode = core.DeliverConflictAware
	p.ConflictRate = 0.5

	counts := make(map[netsim.Kind]int)
	frames := 0
	var out [][]byte
	runWith(p, func(pkt *netsim.Packet) {
		// Frame-flagged data packets get their own quota: they are rarer
		// than plain data packets and would otherwise be crowded out.
		if pkt.Frame {
			if frames >= perKind {
				return
			}
			frames++
		} else {
			if counts[pkt.Kind] >= perKind {
				return
			}
			counts[pkt.Kind]++
		}
		out = append(out, wire.Encode(pkt, nil))
	})
	return out
}
