package topology

import "testing"

func TestAddHostGrowsRack(t *testing.T) {
	g := NewClos(ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 2})
	before := len(g.Hosts)
	id, links, err := g.AddHost(1, 0)
	if err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	if len(g.Hosts) != before+1 || g.Hosts[before] != id {
		t.Fatalf("host list not grown: %v", g.Hosts)
	}
	if g.HostIndex(id) != before {
		t.Fatalf("HostIndex(%d) = %d, want %d", id, g.HostIndex(id), before)
	}
	if len(links) != 2 {
		t.Fatalf("want uplink+downlink, got %v", links)
	}
	if g.Links[links[0]].Kind != LinkHostUp || g.Links[links[1]].Kind != LinkTorHostDown {
		t.Fatalf("wrong link kinds: %v %v", g.Links[links[0]].Kind, g.Links[links[1]].Kind)
	}
	// The joined host must be routable from and to every incumbent.
	for _, h := range g.Hosts[:before] {
		if !g.Reachable(h, id) || !g.Reachable(id, h) {
			t.Fatalf("joined host %d not mutually reachable with %d", id, h)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after AddHost: %v", err)
	}
}

func TestAddHostRejectsBadTargets(t *testing.T) {
	g := NewClos(ClosConfig{Pods: 1, RacksPerPod: 1, HostsPerRack: 1, SpinesPerPod: 1, Cores: 1})
	if _, _, err := g.AddHost(0, 5); err == nil {
		t.Fatal("AddHost accepted a nonexistent rack")
	}
	if _, _, err := g.AddHost(3, 0); err == nil {
		t.Fatal("AddHost accepted a nonexistent pod")
	}
	g.KillPhys(g.Nodes[g.torUp[0][0]].Phys)
	if _, _, err := g.AddHost(0, 0); err == nil {
		t.Fatal("AddHost accepted a dead ToR")
	}
}

func TestAddSpineGrowsPod(t *testing.T) {
	g := NewClos(ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 1, Cores: 2})
	up, down, links, err := g.AddSpine(0)
	if err != nil {
		t.Fatalf("AddSpine: %v", err)
	}
	if len(g.SpineUps(0)) != 2 {
		t.Fatalf("pod 0 spine count = %d, want 2", len(g.SpineUps(0)))
	}
	if g.PeerHalf(up) != down || g.PeerHalf(down) != up {
		t.Fatal("spine halves not peered")
	}
	// loopback + 2 racks * 2 + 2 cores * 2
	if want := 1 + 2*len(g.torUp[0]) + 2*len(g.cores); len(links) != want {
		t.Fatalf("new link count = %d, want %d", len(links), want)
	}
	// Cross-pod ECMP from pod 0 must now include the new spine.
	src := g.Hosts[0] // pod 0
	hops := g.NextHops(g.torUp[0][0], g.Hosts[len(g.Hosts)-1])
	found := false
	for _, lid := range hops {
		if g.Links[lid].To == up {
			found = true
		}
	}
	if !found {
		t.Fatalf("ECMP from ToR does not use the new spine (hops %v, src %d)", hops, src)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after AddSpine: %v", err)
	}
}

func TestValidateRejectsCorruptedEdits(t *testing.T) {
	mk := func() *Graph {
		return NewClos(ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1})
	}

	t.Run("cycle", func(t *testing.T) {
		g := mk()
		// A down->up link at the same ToR closes a loop with the loopback.
		g.addLink(g.torDown[0][0], g.torUp[0][0], LinkTorSpineUp)
		if err := g.Validate(); err == nil {
			t.Fatal("Validate accepted a cyclic switch graph")
		}
	})
	t.Run("dangling-endpoint", func(t *testing.T) {
		g := mk()
		g.Links = append(g.Links, Link{ID: LinkID(len(g.Links)), From: 0, To: NodeID(len(g.Nodes) + 7)})
		g.linkDead = append(g.linkDead, false)
		if err := g.Validate(); err == nil {
			t.Fatal("Validate accepted an out-of-range endpoint")
		}
	})
	t.Run("unindexed-link", func(t *testing.T) {
		g := mk()
		// Appending the record without adjacency entries must be caught.
		g.Links = append(g.Links, Link{ID: LinkID(len(g.Links)), From: g.torUp[0][0], To: g.torDown[0][0], Kind: LinkLoopback})
		g.linkDead = append(g.linkDead, false)
		if err := g.Validate(); err == nil {
			t.Fatal("Validate accepted a link missing from Out/In")
		}
	})
	t.Run("orphan-host", func(t *testing.T) {
		g := mk()
		// A host node with no links is unroutable.
		g.addNode(KindHost, "orphan", g.nextPhys, 0, 0)
		if err := g.Validate(); err == nil {
			t.Fatal("Validate accepted a host with no uplink/downlink")
		}
	})
	t.Run("side-table-skew", func(t *testing.T) {
		g := mk()
		g.nodeDead = g.nodeDead[:len(g.nodeDead)-1]
		if err := g.Validate(); err == nil {
			t.Fatal("Validate accepted skewed side tables")
		}
	})
}

func TestDrainNodeHidesFromRoutingNotFailure(t *testing.T) {
	g := NewClos(ClosConfig{Pods: 1, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 2, Cores: 1})
	h := g.Hosts[0]
	g.DrainNode(h)
	if g.NodeDead(h) {
		t.Fatal("drain must not mark the node dead")
	}
	if !g.NodeDrained(h) {
		t.Fatal("drain mark lost")
	}
	if g.Reachable(g.Hosts[1], h) {
		t.Fatal("drained host still routable")
	}
	for _, lid := range g.Out[h] {
		if !g.LinkDrained(lid) {
			t.Fatalf("out-link %d of drained host not drained", lid)
		}
		if g.LinkDead(lid) {
			t.Fatalf("out-link %d of drained host reported dead", lid)
		}
	}
	// Draining one of two spines keeps the fabric fully routable.
	su := g.SpineUps(0)[0]
	g.DrainNode(su)
	g.DrainNode(g.PeerHalf(su))
	if !g.Reachable(g.Hosts[1], g.Hosts[2]) {
		t.Fatal("fabric unroutable after draining one of two spines")
	}
	for _, lid := range g.NextHops(g.torUp[0][0], g.Hosts[2]) {
		if g.Links[lid].To == su {
			t.Fatal("ECMP still routes via the drained spine")
		}
	}
	g.UndrainNode(su)
	g.UndrainNode(g.PeerHalf(su))
	if g.NodeDrained(su) {
		t.Fatal("undrain did not clear the mark")
	}
	// Structural validation is liveness-agnostic: drains never fail it.
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate with drains: %v", err)
	}
}
