// Package topology builds the routing graph of a multi-rooted Clos data
// center network as used by 1Pipe.
//
// Following Figure 3 of the paper, every physical switch is split into two
// logical switches — one for the uplink direction and one for the downlink
// direction — connected by a virtual "loopback" link that carries traffic
// turning around at that switch. With this split the routing graph of
// shortest up-down paths is a DAG, which is the property barrier-timestamp
// aggregation relies on: barriers propagate strictly downstream and every
// receiver's barrier transitively covers every sender.
package topology

import "fmt"

// NodeID identifies a logical node (host, up-switch, down-switch, or core).
type NodeID int32

// LinkID identifies a directed link.
type LinkID int32

// Kind classifies logical nodes.
type Kind uint8

const (
	// KindHost is an end host (both a sender and a receiver leaf).
	KindHost Kind = iota
	// KindSwitchUp is the uplink half of a physical switch.
	KindSwitchUp
	// KindSwitchDown is the downlink half of a physical switch.
	KindSwitchDown
	// KindCore is a core (top-layer) switch; it only turns traffic down,
	// so it is a single logical node.
	KindCore
)

func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindSwitchUp:
		return "up"
	case KindSwitchDown:
		return "down"
	case KindCore:
		return "core"
	}
	return "?"
}

// LinkKind classifies directed links; the network model assigns bandwidth
// and delay per kind (e.g. reduced uplink bandwidth models oversubscription).
type LinkKind uint8

const (
	// LinkHostUp connects a host to its ToR's uplink half.
	LinkHostUp LinkKind = iota
	// LinkTorSpineUp connects a ToR uplink half to a spine uplink half.
	LinkTorSpineUp
	// LinkSpineCoreUp connects a spine uplink half to a core.
	LinkSpineCoreUp
	// LinkCoreSpineDown connects a core to a spine downlink half.
	LinkCoreSpineDown
	// LinkSpineTorDown connects a spine downlink half to a ToR downlink half.
	LinkSpineTorDown
	// LinkTorHostDown connects a ToR downlink half to a host.
	LinkTorHostDown
	// LinkLoopback is the virtual link between the two halves of one
	// physical switch.
	LinkLoopback
)

// Node is a logical node in the routing DAG.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// Phys groups the two halves of a physical switch (and a host with
	// itself): logical nodes with equal Phys fail together.
	Phys int
	// Pod is the pod index for ToR/spine switches and hosts; -1 for cores.
	Pod int
	// Rack is the rack index for hosts and ToRs; -1 otherwise.
	Rack int
}

// Link is a directed link in the routing DAG.
type Link struct {
	ID       LinkID
	From, To NodeID
	Kind     LinkKind
}

// ClosConfig sizes a 3-layer Clos network. The paper's testbed is
// {Pods: 2, RacksPerPod: 2, HostsPerRack: 8, SpinesPerPod: 2, Cores: 2} —
// 32 servers, 4 ToR + 4 spine + 2 core switches.
type ClosConfig struct {
	Pods         int
	RacksPerPod  int
	HostsPerRack int
	SpinesPerPod int
	Cores        int
}

// Testbed returns the paper's 32-server, 10-switch configuration.
func Testbed() ClosConfig {
	return ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 8, SpinesPerPod: 2, Cores: 2}
}

// Validate reports a descriptive error for a non-positive dimension.
func (c ClosConfig) Validate() error {
	if c.Pods <= 0 || c.RacksPerPod <= 0 || c.HostsPerRack <= 0 || c.SpinesPerPod <= 0 || c.Cores <= 0 {
		return fmt.Errorf("topology: all ClosConfig dimensions must be positive: %+v", c)
	}
	return nil
}

// NumHosts returns the total host count.
func (c ClosConfig) NumHosts() int { return c.Pods * c.RacksPerPod * c.HostsPerRack }

// Graph is a routing DAG plus mutable liveness state used for failure
// experiments. The DAG itself is mutable too: AddHost and AddSpine grow a
// running fabric (live reconfiguration), and Validate re-checks the
// structural invariants after any such edit. Config records the *initial*
// sizing only; after growth, the slices are authoritative.
type Graph struct {
	Config ClosConfig
	Nodes  []Node
	Links  []Link
	// Out and In hold the link IDs leaving and entering each node.
	Out [][]LinkID
	In  [][]LinkID
	// Hosts lists host node IDs in rack-major order; hosts joined later
	// append in arrival order.
	Hosts []NodeID

	// tors[pod][rack] -> physical index into upOf/downOf
	torUp, torDown     [][]NodeID
	spineUp, spineDown [][]NodeID
	cores              []NodeID

	nodeDead []bool
	linkDead []bool
	// nodeDrained marks gracefully departed nodes: routing avoids their
	// links like dead ones, but the failure machinery (dead-link scanner,
	// controller §5.2) must never treat them as failed.
	nodeDrained []bool

	// peerHalf maps an up-half to its down-half and vice versa.
	peerHalf []NodeID
	// hostIndex maps a host node ID to its index in Hosts; -1 for switches.
	hostIndex []int
	// nextPhys is the next unused physical-device index for grown nodes.
	nextPhys int
}

// addNode appends a logical node, growing every node-indexed side table in
// lockstep so the graph stays consistent under runtime growth.
func (g *Graph) addNode(k Kind, name string, phys, pod, rack int) NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Kind: k, Name: name, Phys: phys, Pod: pod, Rack: rack})
	g.Out = append(g.Out, nil)
	g.In = append(g.In, nil)
	g.peerHalf = append(g.peerHalf, -1)
	g.nodeDead = append(g.nodeDead, false)
	g.nodeDrained = append(g.nodeDrained, false)
	if k == KindHost {
		g.hostIndex = append(g.hostIndex, len(g.Hosts))
		g.Hosts = append(g.Hosts, id)
	} else {
		g.hostIndex = append(g.hostIndex, -1)
	}
	return id
}

// addLink appends a directed link and indexes it in the adjacency lists.
func (g *Graph) addLink(from, to NodeID, k LinkKind) LinkID {
	id := LinkID(len(g.Links))
	g.Links = append(g.Links, Link{ID: id, From: from, To: to, Kind: k})
	g.Out[from] = append(g.Out[from], id)
	g.In[to] = append(g.In[to], id)
	g.linkDead = append(g.linkDead, false)
	return id
}

// NewClos builds the routing DAG for the given configuration. It panics on
// an invalid configuration (construction is programmer-controlled).
func NewClos(c ClosConfig) *Graph {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	g := &Graph{Config: c}

	addNode := g.addNode
	phys := 0

	// Hosts.
	for p := 0; p < c.Pods; p++ {
		for r := 0; r < c.RacksPerPod; r++ {
			for h := 0; h < c.HostsPerRack; h++ {
				rack := p*c.RacksPerPod + r
				addNode(KindHost, fmt.Sprintf("h%d", len(g.Hosts)), phys, p, rack)
				phys++
			}
		}
	}
	// ToRs (two halves each).
	g.torUp = make([][]NodeID, c.Pods)
	g.torDown = make([][]NodeID, c.Pods)
	for p := 0; p < c.Pods; p++ {
		g.torUp[p] = make([]NodeID, c.RacksPerPod)
		g.torDown[p] = make([]NodeID, c.RacksPerPod)
		for r := 0; r < c.RacksPerPod; r++ {
			rack := p*c.RacksPerPod + r
			g.torUp[p][r] = addNode(KindSwitchUp, fmt.Sprintf("tor%d.up", rack), phys, p, rack)
			g.torDown[p][r] = addNode(KindSwitchDown, fmt.Sprintf("tor%d.down", rack), phys, p, rack)
			phys++
		}
	}
	// Spines.
	g.spineUp = make([][]NodeID, c.Pods)
	g.spineDown = make([][]NodeID, c.Pods)
	for p := 0; p < c.Pods; p++ {
		g.spineUp[p] = make([]NodeID, c.SpinesPerPod)
		g.spineDown[p] = make([]NodeID, c.SpinesPerPod)
		for s := 0; s < c.SpinesPerPod; s++ {
			g.spineUp[p][s] = addNode(KindSwitchUp, fmt.Sprintf("spine%d.%d.up", p, s), phys, p, -1)
			g.spineDown[p][s] = addNode(KindSwitchDown, fmt.Sprintf("spine%d.%d.down", p, s), phys, p, -1)
			phys++
		}
	}
	// Cores.
	for i := 0; i < c.Cores; i++ {
		g.cores = append(g.cores, addNode(KindCore, fmt.Sprintf("core%d", i), phys, -1, -1))
		phys++
	}

	addLink := func(from, to NodeID, k LinkKind) { g.addLink(from, to, k) }

	for p := 0; p < c.Pods; p++ {
		for r := 0; r < c.RacksPerPod; r++ {
			up, down := g.torUp[p][r], g.torDown[p][r]
			g.peerHalf[up], g.peerHalf[down] = down, up
			addLink(up, down, LinkLoopback)
			rack := p*c.RacksPerPod + r
			for h := 0; h < c.HostsPerRack; h++ {
				host := g.Hosts[rack*c.HostsPerRack+h]
				addLink(host, up, LinkHostUp)
				addLink(down, host, LinkTorHostDown)
			}
			for s := 0; s < c.SpinesPerPod; s++ {
				addLink(up, g.spineUp[p][s], LinkTorSpineUp)
				addLink(g.spineDown[p][s], down, LinkSpineTorDown)
			}
		}
		for s := 0; s < c.SpinesPerPod; s++ {
			sup, sdown := g.spineUp[p][s], g.spineDown[p][s]
			g.peerHalf[sup], g.peerHalf[sdown] = sdown, sup
			addLink(sup, sdown, LinkLoopback)
			for _, core := range g.cores {
				addLink(sup, core, LinkSpineCoreUp)
				addLink(core, sdown, LinkCoreSpineDown)
			}
		}
	}

	g.nextPhys = phys
	return g
}

// AddHost grows rack (pod, rack) by one host attached to its existing ToR
// halves, returning the new host node and its two links (uplink, downlink).
// The edit is validated before it is visible to callers; an invalid target
// (out of range, dead or drained ToR) is rejected with the graph unchanged.
func (g *Graph) AddHost(pod, rack int) (NodeID, []LinkID, error) {
	if pod < 0 || pod >= len(g.torUp) || rack < 0 || rack >= len(g.torUp[pod]) {
		return -1, nil, fmt.Errorf("topology: AddHost(%d, %d): no such rack", pod, rack)
	}
	up, down := g.torUp[pod][rack], g.torDown[pod][rack]
	if g.nodeDead[up] || g.nodeDead[down] || g.nodeDrained[up] || g.nodeDrained[down] {
		return -1, nil, fmt.Errorf("topology: AddHost(%d, %d): ToR is dead or drained", pod, rack)
	}
	globalRack := g.Nodes[up].Rack
	id := g.addNode(KindHost, fmt.Sprintf("h%d", len(g.Hosts)), g.nextPhys, pod, globalRack)
	g.nextPhys++
	lu := g.addLink(id, up, LinkHostUp)
	ld := g.addLink(down, id, LinkTorHostDown)
	if err := g.Validate(); err != nil {
		return -1, nil, fmt.Errorf("topology: AddHost(%d, %d): %w", pod, rack, err)
	}
	return id, []LinkID{lu, ld}, nil
}

// AddSpine grows pod p's spine set by one physical switch (two logical
// halves), wiring it to every ToR in the pod and every core, and returns
// the halves plus all new links. ECMP routing picks the new paths up
// immediately, since NextHops scans the adjacency lists.
func (g *Graph) AddSpine(pod int) (up, down NodeID, links []LinkID, err error) {
	if pod < 0 || pod >= len(g.spineUp) {
		return -1, -1, nil, fmt.Errorf("topology: AddSpine(%d): no such pod", pod)
	}
	s := len(g.spineUp[pod])
	up = g.addNode(KindSwitchUp, fmt.Sprintf("spine%d.%d.up", pod, s), g.nextPhys, pod, -1)
	down = g.addNode(KindSwitchDown, fmt.Sprintf("spine%d.%d.down", pod, s), g.nextPhys, pod, -1)
	g.nextPhys++
	g.peerHalf[up], g.peerHalf[down] = down, up
	g.spineUp[pod] = append(g.spineUp[pod], up)
	g.spineDown[pod] = append(g.spineDown[pod], down)
	links = append(links, g.addLink(up, down, LinkLoopback))
	for r := range g.torUp[pod] {
		links = append(links, g.addLink(g.torUp[pod][r], up, LinkTorSpineUp))
		links = append(links, g.addLink(down, g.torDown[pod][r], LinkSpineTorDown))
	}
	for _, core := range g.cores {
		links = append(links, g.addLink(up, core, LinkSpineCoreUp))
		links = append(links, g.addLink(core, down, LinkCoreSpineDown))
	}
	if err := g.Validate(); err != nil {
		return -1, -1, nil, fmt.Errorf("topology: AddSpine(%d): %w", pod, err)
	}
	return up, down, links, nil
}

// SpineUps returns the up-half node IDs of pod p's spines (grown ones
// included), for callers that manage spine membership.
func (g *Graph) SpineUps(pod int) []NodeID { return g.spineUp[pod] }

// HostIndex maps a host node ID to its index in Hosts (and thus to its
// clock / process block), or -1 for non-host nodes. Hosts joined at runtime
// get IDs after the switches, so the identity mapping from the initial
// rack-major layout does not hold in general.
func (g *Graph) HostIndex(id NodeID) int { return g.hostIndex[id] }

// Validate re-checks the structural invariants every mutation must
// preserve: index/adjacency consistency, acyclicity of the switch graph,
// every host wired with an uplink and a downlink, and all-pairs host
// reachability ignoring liveness marks. It is invoked by the mutating
// builders and should be called after any manual edit; a non-nil error
// means the edit must not be activated.
func (g *Graph) Validate() error {
	if len(g.Out) != len(g.Nodes) || len(g.In) != len(g.Nodes) ||
		len(g.peerHalf) != len(g.Nodes) || len(g.nodeDead) != len(g.Nodes) ||
		len(g.nodeDrained) != len(g.Nodes) || len(g.hostIndex) != len(g.Nodes) {
		return fmt.Errorf("node side tables out of sync with %d nodes", len(g.Nodes))
	}
	if len(g.linkDead) != len(g.Links) {
		return fmt.Errorf("linkDead has %d entries for %d links", len(g.linkDead), len(g.Links))
	}
	for i, n := range g.Nodes {
		if int(n.ID) != i {
			return fmt.Errorf("node %d records ID %d", i, n.ID)
		}
	}
	for i, l := range g.Links {
		if int(l.ID) != i {
			return fmt.Errorf("link %d records ID %d", i, l.ID)
		}
		if l.From < 0 || int(l.From) >= len(g.Nodes) || l.To < 0 || int(l.To) >= len(g.Nodes) {
			return fmt.Errorf("link %d endpoints (%d -> %d) out of range", i, l.From, l.To)
		}
	}
	for n, outs := range g.Out {
		for _, lid := range outs {
			if lid < 0 || int(lid) >= len(g.Links) || g.Links[lid].From != NodeID(n) {
				return fmt.Errorf("Out[%d] lists link %d which does not originate there", n, lid)
			}
		}
	}
	for n, ins := range g.In {
		for _, lid := range ins {
			if lid < 0 || int(lid) >= len(g.Links) || g.Links[lid].To != NodeID(n) {
				return fmt.Errorf("In[%d] lists link %d which does not terminate there", n, lid)
			}
		}
	}
	for _, l := range g.Links {
		if !containsLink(g.Out[l.From], l.ID) || !containsLink(g.In[l.To], l.ID) {
			return fmt.Errorf("link %d missing from adjacency lists", l.ID)
		}
	}
	if !g.IsDAG() {
		return fmt.Errorf("switch graph is cyclic")
	}
	for hi, h := range g.Hosts {
		if g.Nodes[h].Kind != KindHost {
			return fmt.Errorf("Hosts[%d] = node %d which is a %s", hi, h, g.Nodes[h].Kind)
		}
		if g.hostIndex[h] != hi {
			return fmt.Errorf("hostIndex[%d] = %d, want %d", h, g.hostIndex[h], hi)
		}
		var hasUp, hasDown bool
		for _, lid := range g.Out[h] {
			if g.Links[lid].Kind == LinkHostUp {
				hasUp = true
			}
		}
		for _, lid := range g.In[h] {
			if g.Links[lid].Kind == LinkTorHostDown {
				hasDown = true
			}
		}
		if !hasUp || !hasDown {
			return fmt.Errorf("host %d is missing an uplink or downlink", h)
		}
	}
	// Routing completeness: ignoring liveness marks, every ordered host
	// pair must be connected by the up-down routing function. This is what
	// catches a structurally-sound-looking edit that NextHops cannot
	// actually route over.
	for _, src := range g.Hosts {
		for _, dst := range g.Hosts {
			if src == dst {
				continue
			}
			if !g.reachableStructural(src, dst) {
				return fmt.Errorf("host %d cannot route to host %d", src, dst)
			}
		}
	}
	return nil
}

func containsLink(list []LinkID, id LinkID) bool {
	for _, l := range list {
		if l == id {
			return true
		}
	}
	return false
}

// DrainNode marks a node gracefully departed: its links vanish from
// routing exactly like dead ones, but NodeDead stays false so the failure
// pipeline (scanner reports, §5.2 failure declaration) never fires for it.
func (g *Graph) DrainNode(id NodeID) { g.nodeDrained[id] = true }

// UndrainNode clears a drain mark — used by two-phase activation, where a
// freshly grown node stays drained (invisible to routing) until its link
// registers are seeded.
func (g *Graph) UndrainNode(id NodeID) { g.nodeDrained[id] = false }

// NodeDrained reports whether a node has been gracefully drained.
func (g *Graph) NodeDrained(id NodeID) bool { return g.nodeDrained[id] }

// LinkDrained reports whether either endpoint of a link is drained.
func (g *Graph) LinkDrained(id LinkID) bool {
	l := g.Links[id]
	return g.nodeDrained[l.From] || g.nodeDrained[l.To]
}

// Host returns the node ID of the i-th host.
func (g *Graph) Host(i int) NodeID { return g.Hosts[i] }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.Nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.Links[id] }

// PeerHalf returns the other logical half of a physical switch, or -1 for
// hosts and cores.
func (g *Graph) PeerHalf(id NodeID) NodeID { return g.peerHalf[id] }

// KillNode marks a logical node dead. Killing either half of a physical
// switch via KillPhys is the usual entry point.
func (g *Graph) KillNode(id NodeID) { g.nodeDead[id] = true }

// KillPhys marks every logical node of a physical device dead.
func (g *Graph) KillPhys(phys int) {
	for i := range g.Nodes {
		if g.Nodes[i].Phys == phys {
			g.nodeDead[i] = true
		}
	}
}

// KillLink marks a directed link dead.
func (g *Graph) KillLink(id LinkID) { g.linkDead[id] = true }

// Revive clears all death marks.
func (g *Graph) Revive() {
	for i := range g.nodeDead {
		g.nodeDead[i] = false
	}
	for i := range g.linkDead {
		g.linkDead[i] = false
	}
}

// ReviveLink clears the death mark of a single link — a repaired cable or a
// healed partition cut. The endpoints' own liveness is untouched.
func (g *Graph) ReviveLink(id LinkID) { g.linkDead[id] = false }

// ReviveNode clears the death mark of a single logical node.
func (g *Graph) ReviveNode(id NodeID) { g.nodeDead[id] = false }

// NodeDead reports whether a node is marked dead.
func (g *Graph) NodeDead(id NodeID) bool { return g.nodeDead[id] }

// LinkDead reports whether a link or either endpoint is dead.
func (g *Graph) LinkDead(id LinkID) bool {
	l := g.Links[id]
	return g.linkDead[id] || g.nodeDead[l.From] || g.nodeDead[l.To]
}

// LinkBetween returns the link from one node to another, or -1.
func (g *Graph) LinkBetween(from, to NodeID) LinkID {
	for _, lid := range g.Out[from] {
		if g.Links[lid].To == to {
			return lid
		}
	}
	return -1
}

// NumSwitchHops returns the number of switch hops on the up-down path
// between two hosts: 1 within a rack, 3 within a pod, 5 across pods. The
// paper quotes these same counts for its testbed (§7.2).
func (g *Graph) NumSwitchHops(a, b NodeID) int {
	na, nb := g.Nodes[a], g.Nodes[b]
	switch {
	case na.Rack == nb.Rack:
		return 1
	case na.Pod == nb.Pod:
		return 3
	default:
		return 5
	}
}
