// Package topology builds the routing graph of a multi-rooted Clos data
// center network as used by 1Pipe.
//
// Following Figure 3 of the paper, every physical switch is split into two
// logical switches — one for the uplink direction and one for the downlink
// direction — connected by a virtual "loopback" link that carries traffic
// turning around at that switch. With this split the routing graph of
// shortest up-down paths is a DAG, which is the property barrier-timestamp
// aggregation relies on: barriers propagate strictly downstream and every
// receiver's barrier transitively covers every sender.
package topology

import "fmt"

// NodeID identifies a logical node (host, up-switch, down-switch, or core).
type NodeID int32

// LinkID identifies a directed link.
type LinkID int32

// Kind classifies logical nodes.
type Kind uint8

const (
	// KindHost is an end host (both a sender and a receiver leaf).
	KindHost Kind = iota
	// KindSwitchUp is the uplink half of a physical switch.
	KindSwitchUp
	// KindSwitchDown is the downlink half of a physical switch.
	KindSwitchDown
	// KindCore is a core (top-layer) switch; it only turns traffic down,
	// so it is a single logical node.
	KindCore
)

func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindSwitchUp:
		return "up"
	case KindSwitchDown:
		return "down"
	case KindCore:
		return "core"
	}
	return "?"
}

// LinkKind classifies directed links; the network model assigns bandwidth
// and delay per kind (e.g. reduced uplink bandwidth models oversubscription).
type LinkKind uint8

const (
	// LinkHostUp connects a host to its ToR's uplink half.
	LinkHostUp LinkKind = iota
	// LinkTorSpineUp connects a ToR uplink half to a spine uplink half.
	LinkTorSpineUp
	// LinkSpineCoreUp connects a spine uplink half to a core.
	LinkSpineCoreUp
	// LinkCoreSpineDown connects a core to a spine downlink half.
	LinkCoreSpineDown
	// LinkSpineTorDown connects a spine downlink half to a ToR downlink half.
	LinkSpineTorDown
	// LinkTorHostDown connects a ToR downlink half to a host.
	LinkTorHostDown
	// LinkLoopback is the virtual link between the two halves of one
	// physical switch.
	LinkLoopback
)

// Node is a logical node in the routing DAG.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// Phys groups the two halves of a physical switch (and a host with
	// itself): logical nodes with equal Phys fail together.
	Phys int
	// Pod is the pod index for ToR/spine switches and hosts; -1 for cores.
	Pod int
	// Rack is the rack index for hosts and ToRs; -1 otherwise.
	Rack int
}

// Link is a directed link in the routing DAG.
type Link struct {
	ID       LinkID
	From, To NodeID
	Kind     LinkKind
}

// ClosConfig sizes a 3-layer Clos network. The paper's testbed is
// {Pods: 2, RacksPerPod: 2, HostsPerRack: 8, SpinesPerPod: 2, Cores: 2} —
// 32 servers, 4 ToR + 4 spine + 2 core switches.
type ClosConfig struct {
	Pods         int
	RacksPerPod  int
	HostsPerRack int
	SpinesPerPod int
	Cores        int
}

// Testbed returns the paper's 32-server, 10-switch configuration.
func Testbed() ClosConfig {
	return ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 8, SpinesPerPod: 2, Cores: 2}
}

// Validate reports a descriptive error for a non-positive dimension.
func (c ClosConfig) Validate() error {
	if c.Pods <= 0 || c.RacksPerPod <= 0 || c.HostsPerRack <= 0 || c.SpinesPerPod <= 0 || c.Cores <= 0 {
		return fmt.Errorf("topology: all ClosConfig dimensions must be positive: %+v", c)
	}
	return nil
}

// NumHosts returns the total host count.
func (c ClosConfig) NumHosts() int { return c.Pods * c.RacksPerPod * c.HostsPerRack }

// Graph is an immutable routing DAG plus mutable liveness state used for
// failure experiments.
type Graph struct {
	Config ClosConfig
	Nodes  []Node
	Links  []Link
	// Out and In hold the link IDs leaving and entering each node.
	Out [][]LinkID
	In  [][]LinkID
	// Hosts lists host node IDs in rack-major order.
	Hosts []NodeID

	// tors[pod][rack] -> physical index into upOf/downOf
	torUp, torDown     [][]NodeID
	spineUp, spineDown [][]NodeID
	cores              []NodeID

	nodeDead []bool
	linkDead []bool

	// peerHalf maps an up-half to its down-half and vice versa.
	peerHalf []NodeID
}

// NewClos builds the routing DAG for the given configuration. It panics on
// an invalid configuration (construction is programmer-controlled).
func NewClos(c ClosConfig) *Graph {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	g := &Graph{Config: c}

	addNode := func(k Kind, name string, phys, pod, rack int) NodeID {
		id := NodeID(len(g.Nodes))
		g.Nodes = append(g.Nodes, Node{ID: id, Kind: k, Name: name, Phys: phys, Pod: pod, Rack: rack})
		return id
	}
	phys := 0

	// Hosts.
	for p := 0; p < c.Pods; p++ {
		for r := 0; r < c.RacksPerPod; r++ {
			for h := 0; h < c.HostsPerRack; h++ {
				rack := p*c.RacksPerPod + r
				id := addNode(KindHost, fmt.Sprintf("h%d", len(g.Hosts)), phys, p, rack)
				g.Hosts = append(g.Hosts, id)
				phys++
			}
		}
	}
	// ToRs (two halves each).
	g.torUp = make([][]NodeID, c.Pods)
	g.torDown = make([][]NodeID, c.Pods)
	for p := 0; p < c.Pods; p++ {
		g.torUp[p] = make([]NodeID, c.RacksPerPod)
		g.torDown[p] = make([]NodeID, c.RacksPerPod)
		for r := 0; r < c.RacksPerPod; r++ {
			rack := p*c.RacksPerPod + r
			g.torUp[p][r] = addNode(KindSwitchUp, fmt.Sprintf("tor%d.up", rack), phys, p, rack)
			g.torDown[p][r] = addNode(KindSwitchDown, fmt.Sprintf("tor%d.down", rack), phys, p, rack)
			phys++
		}
	}
	// Spines.
	g.spineUp = make([][]NodeID, c.Pods)
	g.spineDown = make([][]NodeID, c.Pods)
	for p := 0; p < c.Pods; p++ {
		g.spineUp[p] = make([]NodeID, c.SpinesPerPod)
		g.spineDown[p] = make([]NodeID, c.SpinesPerPod)
		for s := 0; s < c.SpinesPerPod; s++ {
			g.spineUp[p][s] = addNode(KindSwitchUp, fmt.Sprintf("spine%d.%d.up", p, s), phys, p, -1)
			g.spineDown[p][s] = addNode(KindSwitchDown, fmt.Sprintf("spine%d.%d.down", p, s), phys, p, -1)
			phys++
		}
	}
	// Cores.
	for i := 0; i < c.Cores; i++ {
		g.cores = append(g.cores, addNode(KindCore, fmt.Sprintf("core%d", i), phys, -1, -1))
		phys++
	}

	g.Out = make([][]LinkID, len(g.Nodes))
	g.In = make([][]LinkID, len(g.Nodes))
	g.peerHalf = make([]NodeID, len(g.Nodes))
	for i := range g.peerHalf {
		g.peerHalf[i] = -1
	}
	addLink := func(from, to NodeID, k LinkKind) {
		id := LinkID(len(g.Links))
		g.Links = append(g.Links, Link{ID: id, From: from, To: to, Kind: k})
		g.Out[from] = append(g.Out[from], id)
		g.In[to] = append(g.In[to], id)
	}

	for p := 0; p < c.Pods; p++ {
		for r := 0; r < c.RacksPerPod; r++ {
			up, down := g.torUp[p][r], g.torDown[p][r]
			g.peerHalf[up], g.peerHalf[down] = down, up
			addLink(up, down, LinkLoopback)
			rack := p*c.RacksPerPod + r
			for h := 0; h < c.HostsPerRack; h++ {
				host := g.Hosts[rack*c.HostsPerRack+h]
				addLink(host, up, LinkHostUp)
				addLink(down, host, LinkTorHostDown)
			}
			for s := 0; s < c.SpinesPerPod; s++ {
				addLink(up, g.spineUp[p][s], LinkTorSpineUp)
				addLink(g.spineDown[p][s], down, LinkSpineTorDown)
			}
		}
		for s := 0; s < c.SpinesPerPod; s++ {
			sup, sdown := g.spineUp[p][s], g.spineDown[p][s]
			g.peerHalf[sup], g.peerHalf[sdown] = sdown, sup
			addLink(sup, sdown, LinkLoopback)
			for _, core := range g.cores {
				addLink(sup, core, LinkSpineCoreUp)
				addLink(core, sdown, LinkCoreSpineDown)
			}
		}
	}

	g.nodeDead = make([]bool, len(g.Nodes))
	g.linkDead = make([]bool, len(g.Links))
	return g
}

// Host returns the node ID of the i-th host.
func (g *Graph) Host(i int) NodeID { return g.Hosts[i] }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.Nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.Links[id] }

// PeerHalf returns the other logical half of a physical switch, or -1 for
// hosts and cores.
func (g *Graph) PeerHalf(id NodeID) NodeID { return g.peerHalf[id] }

// KillNode marks a logical node dead. Killing either half of a physical
// switch via KillPhys is the usual entry point.
func (g *Graph) KillNode(id NodeID) { g.nodeDead[id] = true }

// KillPhys marks every logical node of a physical device dead.
func (g *Graph) KillPhys(phys int) {
	for i := range g.Nodes {
		if g.Nodes[i].Phys == phys {
			g.nodeDead[i] = true
		}
	}
}

// KillLink marks a directed link dead.
func (g *Graph) KillLink(id LinkID) { g.linkDead[id] = true }

// Revive clears all death marks.
func (g *Graph) Revive() {
	for i := range g.nodeDead {
		g.nodeDead[i] = false
	}
	for i := range g.linkDead {
		g.linkDead[i] = false
	}
}

// ReviveLink clears the death mark of a single link — a repaired cable or a
// healed partition cut. The endpoints' own liveness is untouched.
func (g *Graph) ReviveLink(id LinkID) { g.linkDead[id] = false }

// ReviveNode clears the death mark of a single logical node.
func (g *Graph) ReviveNode(id NodeID) { g.nodeDead[id] = false }

// NodeDead reports whether a node is marked dead.
func (g *Graph) NodeDead(id NodeID) bool { return g.nodeDead[id] }

// LinkDead reports whether a link or either endpoint is dead.
func (g *Graph) LinkDead(id LinkID) bool {
	l := g.Links[id]
	return g.linkDead[id] || g.nodeDead[l.From] || g.nodeDead[l.To]
}

// LinkBetween returns the link from one node to another, or -1.
func (g *Graph) LinkBetween(from, to NodeID) LinkID {
	for _, lid := range g.Out[from] {
		if g.Links[lid].To == to {
			return lid
		}
	}
	return -1
}

// NumSwitchHops returns the number of switch hops on the up-down path
// between two hosts: 1 within a rack, 3 within a pod, 5 across pods. The
// paper quotes these same counts for its testbed (§7.2).
func (g *Graph) NumSwitchHops(a, b NodeID) int {
	na, nb := g.Nodes[a], g.Nodes[b]
	switch {
	case na.Rack == nb.Rack:
		return 1
	case na.Pod == nb.Pod:
		return 3
	default:
		return 5
	}
}
