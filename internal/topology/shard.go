package topology

// ShardMap partitions the graph's nodes into n shards for parallel
// discrete-event simulation. The cut follows pod boundaries: a pod's hosts,
// ToRs and spines (both halves) land on one shard, pods are distributed
// round-robin, and the core layer — shared by every pod — is pinned to
// shard 0 together with anything podless (the controller attaches there).
//
// With this cut the only links whose endpoints live on different shards are
// spine↔core hops, so the conservative lookahead of the parallel engine is
// the spine–core propagation delay — the largest latency in the fabric.
type ShardMap struct {
	// NodeShard maps NodeID -> shard index.
	NodeShard []int32
	// N is the shard count.
	N int
}

// shardOfPod places pod p: pods round-robin over shards, podless nodes
// (cores, pod -1) on shard 0.
func shardOfPod(pod, n int) int32 {
	if pod < 0 {
		return 0
	}
	return int32(pod % n)
}

// PodShards computes the pod-cut shard assignment for n shards. n < 1 is
// treated as 1 (everything on shard 0).
func (g *Graph) PodShards(n int) ShardMap {
	if n < 1 {
		n = 1
	}
	m := ShardMap{NodeShard: make([]int32, len(g.Nodes)), N: n}
	for i, nd := range g.Nodes {
		m.NodeShard[i] = shardOfPod(nd.Pod, n)
	}
	return m
}

// Of returns the shard owning node id.
func (m ShardMap) Of(id NodeID) int32 { return m.NodeShard[id] }

// Grow extends the map with the assignment for nodes appended to g since
// the map was computed (runtime host joins / spine additions).
func (m *ShardMap) Grow(g *Graph) {
	for i := len(m.NodeShard); i < len(g.Nodes); i++ {
		m.NodeShard = append(m.NodeShard, shardOfPod(g.Nodes[i].Pod, m.N))
	}
}

// CutLinks returns the links whose endpoints live on different shards —
// the only places a packet crosses a shard boundary.
func (m ShardMap) CutLinks(g *Graph) []LinkID {
	var cut []LinkID
	for _, l := range g.Links {
		if m.NodeShard[l.From] != m.NodeShard[l.To] {
			cut = append(cut, l.ID)
		}
	}
	return cut
}

// MinCrossShardLatency returns the minimum latency over all cut links, with
// lat mapping a link kind to its one-way propagation delay (in the caller's
// unit). It is the conservative lookahead bound of the parallel engine: no
// event can cross a shard boundary in less virtual time. ok is false when
// the cut is empty (single shard, or a degenerate graph) and the bound is
// meaningless.
func (g *Graph) MinCrossShardLatency(m ShardMap, lat func(LinkKind) int64) (min int64, ok bool) {
	for _, l := range g.Links {
		if m.NodeShard[l.From] == m.NodeShard[l.To] {
			continue
		}
		d := lat(l.Kind)
		if !ok || d < min {
			min, ok = d, true
		}
	}
	return min, ok
}
