package topology

// NextHops returns the candidate output links at node cur for a packet
// destined to host dst, implementing shortest up-down routing with ECMP.
// Dead links and links into dead nodes are filtered out, which models the
// SDN controller reconfiguring routes around failures (§3.1). The result is
// empty when the destination is unreachable from cur.
func (g *Graph) NextHops(cur, dst NodeID) []LinkID {
	return g.AppendNextHops(nil, cur, dst)
}

// AppendNextHops is NextHops appending into buf, so per-packet routing on
// the simulator's hot path can reuse one scratch slice instead of
// allocating candidates at every hop.
func (g *Graph) AppendNextHops(buf []LinkID, cur, dst NodeID) []LinkID {
	return g.appendNextHops(buf, cur, dst, false)
}

// appendNextHops implements the routing function. With structural set,
// liveness and drain marks are ignored — Validate uses that mode to check
// the wiring itself can route, independent of the current failure state.
func (g *Graph) appendNextHops(buf []LinkID, cur, dst NodeID, structural bool) []LinkID {
	n := g.Nodes[cur]
	d := g.Nodes[dst]
	switch n.Kind {
	case KindHost:
		// Single uplink to the ToR.
		buf = g.filter(buf, cur, structural, func(l Link) bool { return l.Kind == LinkHostUp })
	case KindSwitchUp:
		if n.Rack >= 0 {
			// ToR uplink half: turn around for same-rack destinations,
			// otherwise spread across pod spines.
			if n.Rack == d.Rack {
				buf = g.filter(buf, cur, structural, func(l Link) bool { return l.Kind == LinkLoopback })
			} else {
				buf = g.filter(buf, cur, structural, func(l Link) bool { return l.Kind == LinkTorSpineUp })
			}
		} else {
			// Spine uplink half: turn around within the pod, otherwise up
			// to the cores.
			if n.Pod == d.Pod {
				buf = g.filter(buf, cur, structural, func(l Link) bool { return l.Kind == LinkLoopback })
			} else {
				buf = g.filter(buf, cur, structural, func(l Link) bool { return l.Kind == LinkSpineCoreUp })
			}
		}
	case KindCore:
		// Down into the destination pod.
		buf = g.filter(buf, cur, structural, func(l Link) bool {
			return l.Kind == LinkCoreSpineDown && g.Nodes[l.To].Pod == d.Pod
		})
	case KindSwitchDown:
		if n.Rack >= 0 {
			// ToR downlink half: deliver to the host.
			buf = g.filter(buf, cur, structural, func(l Link) bool { return l.Kind == LinkTorHostDown && l.To == dst })
		} else {
			// Spine downlink half: down to the destination rack's ToR.
			buf = g.filter(buf, cur, structural, func(l Link) bool {
				return l.Kind == LinkSpineTorDown && g.Nodes[l.To].Rack == d.Rack
			})
		}
	}
	return buf
}

func (g *Graph) filter(out []LinkID, cur NodeID, structural bool, pred func(Link) bool) []LinkID {
	for _, lid := range g.Out[cur] {
		l := g.Links[lid]
		if pred(l) && (structural || (!g.LinkDead(lid) && !g.LinkDrained(lid))) {
			out = append(out, lid)
		}
	}
	return out
}

// reachableStructural reports whether dst is reachable from src by the
// routing function ignoring all liveness and drain marks.
func (g *Graph) reachableStructural(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	stack := []NodeID{src}
	seen[src] = true
	var buf []LinkID
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = g.appendNextHops(buf[:0], cur, dst, true)
		for _, lid := range buf {
			to := g.Links[lid].To
			if to == dst {
				return true
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

// Path returns one concrete up-down path of link IDs from host src to host
// dst, choosing among ECMP candidates with the select function (e.g. a flow
// hash or an RNG). It returns nil if no live path exists.
func (g *Graph) Path(src, dst NodeID, choose func(n int) int) []LinkID {
	var path []LinkID
	cur := src
	for cur != dst {
		hops := g.NextHops(cur, dst)
		if len(hops) == 0 {
			return nil
		}
		idx := 0
		if len(hops) > 1 && choose != nil {
			idx = choose(len(hops)) % len(hops)
			if idx < 0 {
				idx += len(hops)
			}
		}
		lid := hops[idx]
		path = append(path, lid)
		cur = g.Links[lid].To
		if len(path) > len(g.Links) { // defensive: routing must terminate on a DAG
			panic("topology: routing loop")
		}
	}
	return path
}

// Reachable reports whether dst is reachable from src along live links in
// the routing DAG (used by the controller to decide which processes are
// disconnected, §5.2).
func (g *Graph) Reachable(src, dst NodeID) bool {
	if g.nodeDead[src] || g.nodeDead[dst] || g.nodeDrained[src] || g.nodeDrained[dst] {
		return false
	}
	if src == dst {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	stack := []NodeID{src}
	seen[src] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, lid := range g.NextHops(cur, dst) {
			to := g.Links[lid].To
			if to == dst {
				return true
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

// DownstreamNeighbors returns, for a (possibly dead) logical node, the IDs
// of live nodes one hop downstream of it. These are the nodes whose barrier
// registers hold the failed node's last commit timestamp; the controller
// takes the maximum over them to determine the failure timestamp (§5.2).
func (g *Graph) DownstreamNeighbors(id NodeID) []NodeID {
	var out []NodeID
	for _, lid := range g.Out[id] {
		to := g.Links[lid].To
		if !g.nodeDead[to] {
			out = append(out, to)
		}
	}
	return out
}

// IsDAG verifies the routing graph is acyclic (a structural invariant all
// barrier-propagation correctness rests on). Hosts act as sources and sinks
// only — a packet never routes *through* a host — so links terminating at a
// host do not propagate, mirroring Figure 3 where each host appears once on
// the sender side and once on the receiver side.
func (g *Graph) IsDAG() bool {
	indeg := make([]int, len(g.Nodes))
	for _, l := range g.Links {
		if g.Nodes[l.From].Kind != KindHost {
			indeg[l.To]++
		}
	}
	var queue []NodeID
	for i, d := range indeg {
		if d == 0 && g.Nodes[i].Kind != KindHost {
			queue = append(queue, NodeID(i))
		}
	}
	seen := 0
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, lid := range g.Out[cur] {
			to := g.Links[lid].To
			if g.Nodes[to].Kind == KindHost {
				continue // sink: traffic terminates at hosts
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	nonHosts := 0
	for _, n := range g.Nodes {
		if n.Kind != KindHost {
			nonHosts++
		}
	}
	return seen == nonHosts
}
