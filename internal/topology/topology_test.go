package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTestbedDimensions(t *testing.T) {
	g := NewClos(Testbed())
	if got := len(g.Hosts); got != 32 {
		t.Fatalf("hosts = %d, want 32", got)
	}
	// 4 ToR + 4 spine = 8 physical switches -> 16 logical halves, + 2 cores.
	ups, downs, cores := 0, 0, 0
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindSwitchUp:
			ups++
		case KindSwitchDown:
			downs++
		case KindCore:
			cores++
		}
	}
	if ups != 8 || downs != 8 || cores != 2 {
		t.Fatalf("ups/downs/cores = %d/%d/%d, want 8/8/2", ups, downs, cores)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	bad := ClosConfig{Pods: 0, RacksPerPod: 1, HostsPerRack: 1, SpinesPerPod: 1, Cores: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted zero pods")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewClos did not panic on invalid config")
		}
	}()
	NewClos(bad)
}

func TestRoutingIsDAG(t *testing.T) {
	for _, c := range []ClosConfig{
		Testbed(),
		{Pods: 1, RacksPerPod: 1, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1},
		{Pods: 3, RacksPerPod: 2, HostsPerRack: 4, SpinesPerPod: 3, Cores: 4},
	} {
		g := NewClos(c)
		if !g.IsDAG() {
			t.Fatalf("config %+v: routing graph is not a DAG", c)
		}
	}
}

func TestPathTerminatesAtDestination(t *testing.T) {
	g := NewClos(Testbed())
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		src := g.Host(rng.Intn(len(g.Hosts)))
		dst := g.Host(rng.Intn(len(g.Hosts)))
		if src == dst {
			continue
		}
		path := g.Path(src, dst, rng.Intn)
		if len(path) == 0 {
			t.Fatalf("no path %v -> %v", src, dst)
		}
		if g.Links[path[len(path)-1]].To != dst {
			t.Fatalf("path does not end at dst")
		}
		cur := src
		for _, lid := range path {
			if g.Links[lid].From != cur {
				t.Fatalf("path link %d not contiguous", lid)
			}
			cur = g.Links[lid].To
			if g.Nodes[cur].Kind == KindHost && cur != dst {
				t.Fatalf("path traverses interior host %v", cur)
			}
		}
	}
}

func TestPathHopCounts(t *testing.T) {
	g := NewClos(Testbed())
	cases := []struct {
		a, b      int
		wantLinks int // links = switch hops + 1
	}{
		{0, 1, 3},   // same rack: host,tor.up,tor.down,host -> but loopback counts as a link: host->up, up->down, down->host = 3 links, 1 switch
		{0, 8, 7},   // same pod, different rack: h,up,spine.up,spine.down,tor.down,h = host->torup, torup->spineup, spineup->spinedown, spinedown->tordown, tordown->h = 5? plus loopbacks...
		{0, 16, 11}, // cross pod
	}
	// Recompute expected precisely: loopback links count.
	// same rack: h->tor.up, tor.up->tor.down (loopback), tor.down->h = 3
	// same pod:  h->tor.up, tor.up->spine.up, spine.up->spine.down (loopback),
	//            spine.down->tor.down, tor.down->h = 5
	// cross pod: h->tor.up, tor.up->spine.up, spine.up->core, core->spine.down,
	//            spine.down->tor.down, tor.down->h = 6
	cases[1].wantLinks = 5
	cases[2].wantLinks = 6
	rng := rand.New(rand.NewSource(2))
	for _, tc := range cases {
		path := g.Path(g.Host(tc.a), g.Host(tc.b), rng.Intn)
		if len(path) != tc.wantLinks {
			t.Errorf("path h%d->h%d has %d links, want %d", tc.a, tc.b, len(path), tc.wantLinks)
		}
	}
}

func TestNumSwitchHops(t *testing.T) {
	g := NewClos(Testbed())
	if got := g.NumSwitchHops(g.Host(0), g.Host(1)); got != 1 {
		t.Errorf("same rack hops = %d, want 1", got)
	}
	if got := g.NumSwitchHops(g.Host(0), g.Host(8)); got != 3 {
		t.Errorf("same pod hops = %d, want 3", got)
	}
	if got := g.NumSwitchHops(g.Host(0), g.Host(16)); got != 5 {
		t.Errorf("cross pod hops = %d, want 5", got)
	}
}

func TestECMPSpreadsAcrossSpines(t *testing.T) {
	g := NewClos(Testbed())
	src, dst := g.Host(0), g.Host(8) // different racks, same pod
	hops := g.NextHops(g.Links[g.Out[src][0]].To, dst)
	if len(hops) != Testbed().SpinesPerPod {
		t.Fatalf("ECMP fanout at ToR = %d, want %d", len(hops), Testbed().SpinesPerPod)
	}
}

func TestKillLinkReroutes(t *testing.T) {
	g := NewClos(Testbed())
	src, dst := g.Host(0), g.Host(16) // cross pod: uses a core
	rng := rand.New(rand.NewSource(3))
	// Kill one core: paths must avoid it but still exist.
	corePhys := -1
	for _, n := range g.Nodes {
		if n.Kind == KindCore {
			corePhys = n.Phys
			break
		}
	}
	g.KillPhys(corePhys)
	for trial := 0; trial < 50; trial++ {
		path := g.Path(src, dst, rng.Intn)
		if path == nil {
			t.Fatal("no path after killing one core")
		}
		for _, lid := range path {
			l := g.Links[lid]
			if g.Nodes[l.From].Phys == corePhys || g.Nodes[l.To].Phys == corePhys {
				t.Fatal("path uses dead core")
			}
		}
	}
	g.Revive()
	if g.NodeDead(g.Hosts[0]) {
		t.Fatal("Revive did not clear marks")
	}
}

func TestUnreachableAfterToRDeath(t *testing.T) {
	g := NewClos(Testbed())
	// Killing host 0's ToR disconnects the whole rack.
	torPhys := g.Nodes[g.Links[g.Out[g.Host(0)][0]].To].Phys
	g.KillPhys(torPhys)
	if g.Reachable(g.Host(8), g.Host(0)) {
		t.Fatal("host behind dead ToR should be unreachable")
	}
	if !g.Reachable(g.Host(8), g.Host(16)) {
		t.Fatal("unrelated hosts should stay reachable")
	}
	if g.Path(g.Host(8), g.Host(0), nil) != nil {
		t.Fatal("Path should be nil to unreachable host")
	}
}

func TestReachableSelfAndDead(t *testing.T) {
	g := NewClos(Testbed())
	if !g.Reachable(g.Host(0), g.Host(0)) {
		t.Fatal("host not reachable from itself")
	}
	g.KillNode(g.Host(0))
	if g.Reachable(g.Host(1), g.Host(0)) || g.Reachable(g.Host(0), g.Host(1)) {
		t.Fatal("dead host should be unreachable in both directions")
	}
}

func TestPeerHalf(t *testing.T) {
	g := NewClos(Testbed())
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindSwitchUp, KindSwitchDown:
			peer := g.PeerHalf(n.ID)
			if peer < 0 || g.PeerHalf(peer) != n.ID {
				t.Fatalf("peerHalf not an involution for %s", n.Name)
			}
			if g.Nodes[peer].Phys != n.Phys {
				t.Fatalf("peer halves differ in Phys for %s", n.Name)
			}
		case KindHost, KindCore:
			if g.PeerHalf(n.ID) != -1 {
				t.Fatalf("%s should have no peer half", n.Name)
			}
		}
	}
}

func TestLinkBetween(t *testing.T) {
	g := NewClos(Testbed())
	h := g.Host(0)
	tor := g.Links[g.Out[h][0]].To
	if g.LinkBetween(h, tor) < 0 {
		t.Fatal("missing host->tor link")
	}
	if g.LinkBetween(h, g.Host(1)) != -1 {
		t.Fatal("found nonexistent host->host link")
	}
}

// Property: NumSwitchHops matches the physical switches traversed by any
// concrete ECMP path (logical nodes collapse onto their Phys id).
func TestHopCountMatchesPathProperty(t *testing.T) {
	g := NewClos(Testbed())
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		a := g.Host(rng.Intn(len(g.Hosts)))
		b := g.Host(rng.Intn(len(g.Hosts)))
		if a == b {
			continue
		}
		path := g.Path(a, b, rng.Intn)
		phys := make(map[int]bool)
		for _, lid := range path {
			to := g.Nodes[g.Links[lid].To]
			if to.Kind != KindHost {
				phys[to.Phys] = true
			}
		}
		if got, want := len(phys), g.NumSwitchHops(a, b); got != want {
			t.Fatalf("%v->%v: path crosses %d physical switches, NumSwitchHops says %d", a, b, got, want)
		}
	}
}

// Property: every host pair in arbitrary (small) Clos configs is connected
// by a valid path of the expected parity, and the graph is always a DAG.
func TestAllPairsConnectedProperty(t *testing.T) {
	f := func(p, r, h, s, c uint8) bool {
		cfg := ClosConfig{
			Pods:         int(p%3) + 1,
			RacksPerPod:  int(r%3) + 1,
			HostsPerRack: int(h%3) + 1,
			SpinesPerPod: int(s%3) + 1,
			Cores:        int(c%3) + 1,
		}
		g := NewClos(cfg)
		if !g.IsDAG() {
			return false
		}
		rng := rand.New(rand.NewSource(99))
		for i := range g.Hosts {
			for j := range g.Hosts {
				if i == j {
					continue
				}
				if g.Path(g.Hosts[i], g.Hosts[j], rng.Intn) == nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
