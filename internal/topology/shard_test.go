package topology

import "testing"

// TestPodShardsCutOnlySpineCore: with the pod cut, every intra-pod link
// (host↔ToR, ToR↔spine, loopbacks) stays on one shard; only spine↔core
// hops cross, and cores sit on shard 0.
func TestPodShardsCutOnlySpineCore(t *testing.T) {
	g := NewClos(ClosConfig{Pods: 4, RacksPerPod: 2, HostsPerRack: 4, SpinesPerPod: 2, Cores: 4})
	m := g.PodShards(2)
	for _, nd := range g.Nodes {
		want := int32(0)
		if nd.Pod >= 0 {
			want = int32(nd.Pod % 2)
		}
		if m.Of(nd.ID) != want {
			t.Fatalf("node %s (pod %d): shard %d, want %d", nd.Name, nd.Pod, m.Of(nd.ID), want)
		}
	}
	for _, id := range m.CutLinks(g) {
		k := g.Links[id].Kind
		if k != LinkSpineCoreUp && k != LinkCoreSpineDown {
			t.Fatalf("cut link %d has kind %v; pod cut must only cross at spine↔core", id, k)
		}
	}
	if len(m.CutLinks(g)) == 0 {
		t.Fatal("expected a non-empty cut with 2 shards")
	}
}

// TestPodShardsSingleShardHasNoCut: n=1 puts everything on shard 0.
func TestPodShardsSingleShardHasNoCut(t *testing.T) {
	g := NewClos(Testbed())
	m := g.PodShards(1)
	if got := m.CutLinks(g); len(got) != 0 {
		t.Fatalf("single shard cut %d links, want 0", len(got))
	}
	if _, ok := g.MinCrossShardLatency(m, func(LinkKind) int64 { return 1 }); ok {
		t.Fatal("MinCrossShardLatency reported a bound for an empty cut")
	}
}

// TestMinCrossShardLatencyPicksSpineCore: the lookahead bound equals the
// spine–core latency under the pod cut.
func TestMinCrossShardLatencyPicksSpineCore(t *testing.T) {
	g := NewClos(Testbed())
	m := g.PodShards(2)
	lat := func(k LinkKind) int64 {
		switch k {
		case LinkSpineCoreUp, LinkCoreSpineDown:
			return 400
		default:
			return 100
		}
	}
	min, ok := g.MinCrossShardLatency(m, lat)
	if !ok || min != 400 {
		t.Fatalf("MinCrossShardLatency = %d, %v; want 400, true", min, ok)
	}
}

// TestShardMapGrow: nodes added after the map was computed pick up their
// pod's shard.
func TestShardMapGrow(t *testing.T) {
	g := NewClos(ClosConfig{Pods: 2, RacksPerPod: 2, HostsPerRack: 2, SpinesPerPod: 1, Cores: 1})
	m := g.PodShards(2)
	if _, _, err := g.AddHost(1, 0); err != nil {
		t.Fatal(err)
	}
	m.Grow(g)
	host := g.Hosts[len(g.Hosts)-1]
	if got := m.Of(host); got != 1 {
		t.Fatalf("grown host in pod 1 on shard %d, want 1", got)
	}
	if len(m.NodeShard) != len(g.Nodes) {
		t.Fatalf("map covers %d nodes, graph has %d", len(m.NodeShard), len(g.Nodes))
	}
}
