// Package baseline implements the total-order broadcast algorithms 1Pipe
// is compared against in Figure 8: a centralized sequencer on a
// programmable switch (Eris/NOPaxos style), a centralized sequencer on a
// host NIC, a token ring (Totem style), and Lamport logical-timestamp
// exchange.
//
// Each baseline is an event-driven simulation on the same engine and with
// the same delay constants as the 1Pipe network model: processes offer
// 64-byte messages at a configurable rate, the algorithm's serialization
// machinery is modeled with explicit queues, and the harness reports
// delivered throughput and delivery latency. The 1Pipe columns of Figure 8
// run on the full network simulator; these baselines isolate the ordering
// bottleneck, which is what the figure is about.
package baseline

import (
	"onepipe/internal/sim"
	"onepipe/internal/stats"
)

// Config parameterizes one baseline run.
type Config struct {
	// Procs is the number of processes; the traffic pattern is all-to-all
	// (each message goes to a uniformly random peer, as a slice of a
	// broadcast).
	Procs int
	// OfferedPerProc is the per-process offered load in messages/second.
	OfferedPerProc float64
	// Duration is the measured window of virtual time.
	Duration sim.Time
	// ProcRate is the per-process CPU send/receive capacity (msg/s); the
	// paper's lib1pipe tops out near 5M msg/s per process.
	ProcRate float64
	// PathDelay is the average one-way host-to-host latency.
	PathDelay sim.Time
	// SeqRate is the sequencer's service rate (msg/s): a programmable
	// switch stamps at line rate; a host NIC sequencer is ~an order of
	// magnitude slower.
	SeqRate float64
	// SeqDetour is the extra one-way delay to reach the sequencer.
	SeqDetour sim.Time
	// TokenPass is the token hand-off delay; TokenBatch the messages a
	// holder may send per possession.
	TokenPass  sim.Time
	TokenBatch int
	// ExchangeInterval is the Lamport timestamp-exchange period.
	ExchangeInterval sim.Time
	Seed             int64
}

// DefaultConfig calibrates the baselines against the netsim testbed
// constants.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:            procs,
		OfferedPerProc:   5e6,
		Duration:         200 * sim.Microsecond,
		ProcRate:         5e6,
		PathDelay:        2500 * sim.Nanosecond,
		SeqRate:          100e6,
		SeqDetour:        1500 * sim.Nanosecond,
		TokenPass:        2 * sim.Microsecond,
		TokenBatch:       16,
		ExchangeInterval: 10 * sim.Microsecond,
		Seed:             1,
	}
}

// Result is one (algorithm, process count) data point of Figure 8.
type Result struct {
	Name  string
	Procs int
	// TputPerProc is delivered messages/second per process.
	TputPerProc float64
	// Latency summarizes delivery latency in microseconds.
	Latency stats.Sample
}

// queue models a FIFO service station (sequencer pipeline, NIC, CPU).
type queue struct {
	busyUntil sim.Time
	perMsg    sim.Time
}

func newQueue(rate float64) *queue {
	return &queue{perMsg: sim.Time(1e9 / rate)}
}

// admit returns the completion time of a message entering the station now.
func (q *queue) admit(now sim.Time) sim.Time {
	start := now
	if q.busyUntil > start {
		start = q.busyUntil
	}
	q.busyUntil = start + q.perMsg
	return q.busyUntil
}

// depth returns the current backlog in time units.
func (q *queue) depth(now sim.Time) sim.Time {
	if q.busyUntil <= now {
		return 0
	}
	return q.busyUntil - now
}

// maxQueueDelay caps modeled queueing: beyond it the station drops (the
// figure's latency "soars" at saturation; unbounded queues would just melt
// the simulation).
const maxQueueDelay = 5 * sim.Millisecond

// RunSwitchSeq models a centralized sequencer on a programmable switch:
// every message detours to the sequencer, is stamped in a line-rate
// pipeline, and continues to its destination. Receivers deliver in stamp
// order (which the single sequencer makes trivially total).
func RunSwitchSeq(cfg Config) Result {
	return runSequencer("SwitchSeq", cfg, cfg.SeqRate)
}

// RunHostSeq models the sequencer on a host NIC (design of "Design
// Guidelines for High Performance RDMA Systems"): same structure, an order
// of magnitude less stamping throughput.
func RunHostSeq(cfg Config) Result {
	return runSequencer("HostSeq", cfg, cfg.SeqRate/8)
}

func runSequencer(name string, cfg Config, rate float64) Result {
	eng := sim.NewEngine(cfg.Seed)
	res := Result{Name: name, Procs: cfg.Procs}
	seq := newQueue(rate)
	recv := make([]*queue, cfg.Procs)
	for i := range recv {
		recv[i] = newQueue(cfg.ProcRate)
	}
	delivered := 0
	gap := sim.Time(1e9 / cfg.OfferedPerProc)
	for p := 0; p < cfg.Procs; p++ {
		p := p
		phase := sim.Time(int64(p) * int64(gap) / int64(cfg.Procs))
		sim.NewTicker(eng, gap, phase, func() {
			sent := eng.Now()
			// Sender CPU is also a station; skip when saturated.
			if seq.depth(sent) > maxQueueDelay {
				return // sequencer ingress drop under overload
			}
			atSeq := sent + cfg.PathDelay/2 + cfg.SeqDetour
			eng.At(atSeq, func() {
				stamped := seq.admit(eng.Now())
				dst := eng.Rand().Intn(cfg.Procs)
				arrive := stamped + cfg.SeqDetour + cfg.PathDelay/2
				eng.At(arrive, func() {
					if recv[dst].depth(eng.Now()) > maxQueueDelay {
						return
					}
					done := recv[dst].admit(eng.Now())
					eng.At(done, func() {
						delivered++
						res.Latency.Add(float64(eng.Now()-sent) / 1000)
					})
				})
			})
		})
	}
	eng.RunUntil(cfg.Duration)
	res.TputPerProc = float64(delivered) / cfg.Duration.Seconds() / float64(cfg.Procs)
	return res
}

// RunToken models a token ring: only the token holder may send; it drains
// up to TokenBatch pending messages, then passes the token to the next
// process.
func RunToken(cfg Config) Result {
	eng := sim.NewEngine(cfg.Seed)
	res := Result{Name: "Token", Procs: cfg.Procs}
	type msg struct{ created sim.Time }
	pendings := make([][]msg, cfg.Procs)
	delivered := 0
	gap := sim.Time(1e9 / cfg.OfferedPerProc)
	for p := 0; p < cfg.Procs; p++ {
		p := p
		sim.NewTicker(eng, gap, 0, func() {
			if len(pendings[p]) < 4*cfg.TokenBatch { // bounded send buffer
				pendings[p] = append(pendings[p], msg{created: eng.Now()})
			}
		})
	}
	perMsg := sim.Time(1e9 / cfg.ProcRate)
	var rotate func(holder int)
	rotate = func(holder int) {
		n := len(pendings[holder])
		if n > cfg.TokenBatch {
			n = cfg.TokenBatch
		}
		busy := eng.Now()
		for i := 0; i < n; i++ {
			m := pendings[holder][i]
			busy += perMsg
			arrive := busy + cfg.PathDelay
			created := m.created
			eng.At(arrive, func() {
				delivered++
				res.Latency.Add(float64(eng.Now()-created) / 1000)
			})
		}
		pendings[holder] = pendings[holder][n:]
		eng.At(busy+cfg.TokenPass, func() { rotate((holder + 1) % cfg.Procs) })
	}
	rotate(0)
	eng.RunUntil(cfg.Duration)
	res.TputPerProc = float64(delivered) / cfg.Duration.Seconds() / float64(cfg.Procs)
	return res
}

// RunLamport models receiver-side ordering with Lamport logical clocks and
// periodic timestamp exchange (the classic optimization: peers exchange
// their latest timestamps once per interval instead of per message). A
// receiver delivers a message once every peer's last-heard clock exceeds
// its timestamp, so delivery latency is bounded below by the exchange
// interval — and the (N-1) exchange messages per interval eat into each
// process's send budget.
func RunLamport(cfg Config) Result {
	eng := sim.NewEngine(cfg.Seed)
	res := Result{Name: "Lamport", Procs: cfg.Procs}
	n := cfg.Procs

	// Exchange overhead: (n-1) control messages per interval per process.
	// When the exchange would eat more than half the CPU, the interval is
	// stretched so exactly half the budget remains for data — the paper's
	// "even if 50% throughput is used for timestamp exchange" trade-off;
	// delivery latency then grows with the stretched interval.
	exchangeInterval := cfg.ExchangeInterval
	ctrlRate := float64(n-1) / exchangeInterval.Seconds()
	if ctrlRate > cfg.ProcRate/2 {
		ctrlRate = cfg.ProcRate / 2
		exchangeInterval = sim.Time(float64(n-1) / ctrlRate * 1e9)
	}
	dataBudget := cfg.ProcRate - ctrlRate
	offered := cfg.OfferedPerProc
	if offered > dataBudget {
		offered = dataBudget
	}
	cfg.ExchangeInterval = exchangeInterval

	type inflight struct {
		ts      sim.Time
		created sim.Time
	}
	// minHeard[r] is min over peers of the last clock r heard.
	lastHeard := make([][]sim.Time, n)
	for i := range lastHeard {
		lastHeard[i] = make([]sim.Time, n)
	}
	buffered := make([][]inflight, n)
	delivered := 0
	drain := func(r int) {
		minClock := lastHeard[r][0]
		for _, c := range lastHeard[r][1:] {
			if c < minClock {
				minClock = c
			}
		}
		kept := buffered[r][:0]
		for _, m := range buffered[r] {
			if m.ts < minClock {
				delivered++
				res.Latency.Add(float64(eng.Now()-m.created) / 1000)
			} else {
				kept = append(kept, m)
			}
		}
		buffered[r] = kept
	}

	gap := sim.Time(1e9 / offered)
	for p := 0; p < n; p++ {
		p := p
		sim.NewTicker(eng, gap, 0, func() {
			now := eng.Now()
			dst := eng.Rand().Intn(n)
			eng.At(now+cfg.PathDelay, func() {
				if len(buffered[dst]) < 1<<16 {
					buffered[dst] = append(buffered[dst], inflight{ts: now, created: now})
				}
				lastHeard[dst][p] = now
				drain(dst)
			})
		})
		// Periodic clock exchange to every peer.
		sim.NewTicker(eng, cfg.ExchangeInterval, 0, func() {
			now := eng.Now()
			for r := 0; r < n; r++ {
				r := r
				eng.At(now+cfg.PathDelay, func() {
					if now > lastHeard[r][p] {
						lastHeard[r][p] = now
						drain(r)
					}
				})
			}
		})
	}
	eng.RunUntil(cfg.Duration)
	res.TputPerProc = float64(delivered) / cfg.Duration.Seconds() / float64(cfg.Procs)
	return res
}
