package baseline

import "testing"

func TestSequencerScalesUntilSaturation(t *testing.T) {
	// With few processes the sequencer keeps up; per-process throughput
	// collapses as N grows past SeqRate/OfferedPerProc.
	small := RunSwitchSeq(DefaultConfig(4))
	large := RunSwitchSeq(DefaultConfig(256))
	if small.TputPerProc < 2e6 {
		t.Fatalf("small-N sequencer throughput %.2g too low", small.TputPerProc)
	}
	if large.TputPerProc > small.TputPerProc/2 {
		t.Fatalf("sequencer did not bottleneck at 256 procs: %.2g vs %.2g",
			large.TputPerProc, small.TputPerProc)
	}
}

func TestHostSeqSlowerThanSwitchSeq(t *testing.T) {
	sw := RunSwitchSeq(DefaultConfig(64))
	host := RunHostSeq(DefaultConfig(64))
	if host.TputPerProc >= sw.TputPerProc {
		t.Fatalf("host sequencer (%.2g) not slower than switch sequencer (%.2g)",
			host.TputPerProc, sw.TputPerProc)
	}
}

func TestSequencerLatencySoarsAtSaturation(t *testing.T) {
	under := RunSwitchSeq(DefaultConfig(8))
	over := RunSwitchSeq(DefaultConfig(512))
	if over.Latency.Mean() < 4*under.Latency.Mean() {
		t.Fatalf("saturated sequencer latency %.1fus not far above unsaturated %.1fus",
			over.Latency.Mean(), under.Latency.Mean())
	}
}

func TestTokenThroughputLowAndDecliningWithN(t *testing.T) {
	small := RunToken(DefaultConfig(4))
	large := RunToken(DefaultConfig(64))
	if small.TputPerProc > 5e6 {
		t.Fatalf("token ring impossibly fast: %.2g", small.TputPerProc)
	}
	if large.TputPerProc >= small.TputPerProc {
		t.Fatalf("token per-proc throughput did not decline with N: %.2g vs %.2g",
			large.TputPerProc, small.TputPerProc)
	}
}

func TestTokenLatencyGrowsWithRingSize(t *testing.T) {
	small := RunToken(DefaultConfig(4))
	large := RunToken(DefaultConfig(64))
	if large.Latency.Mean() <= small.Latency.Mean() {
		t.Fatalf("token latency should grow with ring size: %.1f vs %.1f",
			large.Latency.Mean(), small.Latency.Mean())
	}
}

func TestLamportLatencyBoundedByExchangeInterval(t *testing.T) {
	cfg := DefaultConfig(16)
	r := RunLamport(cfg)
	if r.TputPerProc == 0 {
		t.Fatal("lamport delivered nothing")
	}
	// Delivery waits for the slowest peer's next exchange: mean latency
	// must be at least a fraction of the interval.
	if r.Latency.Mean() < float64(cfg.ExchangeInterval)/1000/4 {
		t.Fatalf("lamport latency %.2fus implausibly below exchange interval", r.Latency.Mean())
	}
}

func TestLamportOverheadGrowsWithN(t *testing.T) {
	small := RunLamport(DefaultConfig(8))
	large := RunLamport(DefaultConfig(512))
	if large.TputPerProc >= small.TputPerProc {
		t.Fatalf("lamport data throughput should shrink with N: %.2g vs %.2g",
			large.TputPerProc, small.TputPerProc)
	}
}

func TestResultsDeterministic(t *testing.T) {
	a := RunSwitchSeq(DefaultConfig(32))
	b := RunSwitchSeq(DefaultConfig(32))
	if a.TputPerProc != b.TputPerProc || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("same-seed baseline runs diverged")
	}
}
