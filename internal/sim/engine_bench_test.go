package sim

import (
	"testing"

	"onepipe/internal/race"
)

// BenchmarkEngineSchedule measures steady-state scheduling throughput: a
// K-deep event heap where every executed event re-schedules itself at a
// pseudo-random future offset. 1/ns-per-op is the engine events/sec figure
// tracked in BENCH_core.json.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	const depth = 4096
	var step func()
	step = func() {
		e.After(Time(e.Rand().Intn(1000))+1, step)
	}
	for i := 0; i < depth; i++ {
		e.After(Time(e.Rand().Intn(1000))+1, step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineSchedule2 is the same churn through the At2 fast path
// (capture-free callback, two pointer-shaped arguments) that netsim's
// per-packet hops use.
func BenchmarkEngineSchedule2(b *testing.B) {
	e := NewEngine(1)
	const depth = 4096
	var x, y int
	var step func(a, b any)
	step = func(a, b any) {
		e.After2(Time(e.Rand().Intn(1000))+1, step, a, b)
	}
	for i := 0; i < depth; i++ {
		e.After2(Time(e.Rand().Intn(1000))+1, step, &x, &y)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// TestEngineScheduleAllocs pins the zero-allocation property of the event
// queue: once the backing array has grown to the working set, At/After/At2
// plus Step allocate nothing. A regression here (interface boxing, closure
// capture, heap re-growth) multiplies across every simulated packet hop.
func TestEngineScheduleAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race detector instrumentation allocates")
	}
	e := NewEngine(1)
	fn := func() {}
	// Grow the heap past the steady-state depth first.
	for i := 0; i < 1024; i++ {
		e.After(Time(i%37)+1, fn)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	}); avg != 0 {
		t.Errorf("At+Step: %v allocs/op, want 0", avg)
	}
	var x, y int
	fn2 := func(a, b any) {}
	for i := 0; i < 1024; i++ {
		e.After2(Time(i%37)+1, fn2, &x, &y)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		e.After2(1, fn2, &x, &y)
		e.Step()
	}); avg != 0 {
		t.Errorf("At2+Step: %v allocs/op, want 0", avg)
	}
}
