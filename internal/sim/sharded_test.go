package sim

import (
	"fmt"
	"strings"
	"testing"
)

// shardEntry is one recorded workload execution: which logical host ran at
// which virtual time, with a per-host step counter.
type shardEntry struct {
	at   Time
	host int
	step int
}

// crossWorkload drives a deterministic multi-host workload over the given
// shard group: H logical hosts are mapped host -> shard (host % N), each
// runs a self-rescheduling event chain, and every third step hands a
// cross-shard event to the next host with at least `lookahead` of delay.
// Event times are arranged so every host executes at times ≡ host (mod H),
// which keeps timestamps distinct across hosts — the same workload then
// produces the same per-host trace under lockstep and parallel drive.
//
// Returns one trace per host; each host's trace is only ever appended by
// the shard goroutine that owns it.
func crossWorkload(s *ShardedEngine, hosts int, lookahead, until Time) [][]shardEntry {
	traces := make([][]shardEntry, hosts)
	H := Time(hosts)
	chain := make([]func(k int), hosts)
	for h := 0; h < hosts; h++ {
		h := h
		eng := s.Shard(h % s.N())
		chain[h] = func(k int) {
			now := eng.Now()
			traces[h] = append(traces[h], shardEntry{at: now, host: h, step: k})
			if k > 400 {
				return
			}
			// Local successor stays on the host's residue class.
			eng.After(H*Time(1+(k*7)%97), func() { chain[h](k + 1) })
			if k%3 == 0 {
				// Cross-shard handoff to the next host, aligned to its
				// residue class and spread by sender identity and step so
				// same-target collisions stay rare.
				dst := (h + 1) % hosts
				deng := s.Shard(dst % s.N())
				base := now + lookahead + H*Time(1+h+3*(k%50))
				t := base + ((Time(dst)-base)%H+H)%H
				eng.At2On(deng, t, func(a, b any) {
					hh := a.(*int)
					kk := b.(*int)
					traces[*hh] = append(traces[*hh], shardEntry{at: deng.Now(), host: *hh, step: -*kk})
				}, &dst, &k)
			}
		}
	}
	for h := 0; h < hosts; h++ {
		hh := h
		s.Shard(h%s.N()).At(Time(h+1)*1, func() { chain[hh](1) })
	}
	s.RunUntil(until)
	return traces
}

func tracesEqual(t *testing.T, want, got [][]shardEntry, label string) {
	t.Helper()
	for h := range want {
		if len(want[h]) != len(got[h]) {
			t.Fatalf("%s: host %d trace length %d, want %d", label, h, len(got[h]), len(want[h]))
		}
		for i := range want[h] {
			if want[h][i] != got[h][i] {
				t.Fatalf("%s: host %d entry %d = %+v, want %+v", label, h, i, got[h][i], want[h][i])
			}
		}
	}
}

func traceTotal(tr [][]shardEntry) int {
	n := 0
	for _, h := range tr {
		n += len(h)
	}
	return n
}

// TestLockstepMatchesSingleShard pins the core determinism claim of the
// lockstep drive: with the shared clock and shared sequence counter, a
// 4-shard group executes the exact event order of a 1-shard group.
func TestLockstepMatchesSingleShard(t *testing.T) {
	const hosts, lookahead = 8, 64
	until := 200 * Microsecond
	ref := crossWorkload(NewShardedEngine(7, 1, lookahead, false), hosts, lookahead, until)
	if traceTotal(ref) == 0 {
		t.Fatal("reference workload executed no events")
	}
	for _, n := range []int{2, 4} {
		got := crossWorkload(NewShardedEngine(7, n, lookahead, false), hosts, lookahead, until)
		tracesEqual(t, ref, got, fmt.Sprintf("lockstep shards=%d", n))
	}
}

// TestParallelMatchesLockstep runs the same workload with concurrent shard
// goroutines and conservative windows: per-host traces must match the
// single-shard reference (timestamps are distinct across hosts, so the
// merge rule has no ties to resolve differently).
func TestParallelMatchesLockstep(t *testing.T) {
	const hosts, lookahead = 8, 64
	until := 200 * Microsecond
	ref := crossWorkload(NewShardedEngine(7, 1, lookahead, false), hosts, lookahead, until)
	for _, n := range []int{2, 4} {
		s := NewShardedEngine(7, n, lookahead, true)
		got := crossWorkload(s, hosts, lookahead, until)
		s.Close()
		tracesEqual(t, ref, got, fmt.Sprintf("parallel shards=%d", n))
	}
}

// TestParallelDeterministicAcrossRuns replays an identical parallel run and
// requires byte-identical traces: window barriers plus the
// (time, srcShard, seq) merge rule leave no room for goroutine scheduling
// to reorder anything.
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	const hosts, lookahead = 6, 48
	run := func() [][]shardEntry {
		s := NewShardedEngine(99, 3, lookahead, true)
		defer s.Close()
		return crossWorkload(s, hosts, lookahead, 150*Microsecond)
	}
	a, b := run(), run()
	tracesEqual(t, a, b, "replay")
}

// TestShardedLookaheadViolationPanics: handing a cross-shard event closer
// than the declared lookahead must fail loudly at the window barrier, not
// silently execute in a neighbor's past.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	s := NewShardedEngine(1, 2, 1000, true)
	defer s.Close()
	e0, e1 := s.Shard(0), s.Shard(1)
	e0.At(10, func() {
		e0.At2On(e1, e0.Now()+1, func(a, b any) {}, nil, nil)
	})
	e1.At(10, func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected lookahead-violation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s.RunUntil(5000)
}

// TestShardedPendingAndDrain: Pending aggregates live events across shards,
// and Drain empties every queue while reporting the live count.
func TestShardedPendingAndDrain(t *testing.T) {
	s := NewShardedEngine(3, 4, 10, false)
	for i := 0; i < s.N(); i++ {
		s.Shard(i).At(Time(1000+i), func() {})
	}
	tm := NewTimer(s.Shard(1), func() {})
	tm.Reset(2000)
	tm.Stop() // tombstone: must not count as pending
	if got := s.Pending(); got != 4 {
		t.Fatalf("Pending = %d, want 4", got)
	}
	s.RunUntil(100) // nothing executes
	if got := s.Drain(); got != 4 {
		t.Fatalf("Drain = %d, want 4", got)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after Drain = %d, want 0", got)
	}
	s.RunUntil(5000)
	if got := s.ExecutedTotal(); got != 0 { // Drain removed everything, tombstone included
		t.Fatalf("ExecutedTotal after Drain = %d, want 0", got)
	}
}

// TestShardedEngineRace is the -race exercise target for CI: a parallel run
// with steady cross-shard traffic on every window.
func TestShardedEngineRace(t *testing.T) {
	s := NewShardedEngine(42, 4, 64, true)
	defer s.Close()
	tr := crossWorkload(s, 8, 64, 300*Microsecond)
	if traceTotal(tr) == 0 {
		t.Fatal("no events executed")
	}
}

// BenchmarkShardedEngineParallel measures aggregate sharded throughput: 8
// shards, each with a 4096-deep self-rescheduling heap, one cross-shard
// handoff every 16 events. 1/ns-per-op × GOMAXPROCS-dependent speedup is
// the engine_events_per_sec_parallel figure in BENCH_core.json.
func BenchmarkShardedEngineParallel(b *testing.B) {
	const (
		shards    = 8
		depth     = 4096
		lookahead = Time(1000)
	)
	s := NewShardedEngine(1, shards, lookahead, true)
	defer s.Close()
	// Each shard's chain closure is owned by that shard: its counter, rng
	// and heap are only ever touched by the owning goroutine. A cross-shard
	// handoff schedules the *destination's* chain on the destination engine,
	// never the sender's state.
	steps := make([]func(a, b any), shards)
	for i := 0; i < shards; i++ {
		i := i
		e := s.Shard(i)
		next := (i + 1) % shards
		var k int
		steps[i] = func(a, b any) {
			k++
			if k%16 == 0 {
				e.At2On(s.Shard(next), e.Now()+lookahead+Time(e.Rand().Intn(1000)), steps[next], a, b)
				return
			}
			e.After2(Time(e.Rand().Intn(1000))+1, steps[i], a, b)
		}
	}
	for i := 0; i < shards; i++ {
		e := s.Shard(i)
		for j := 0; j < depth; j++ {
			e.After2(Time(e.Rand().Intn(1000))+1, steps[i], nil, nil)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for s.ExecutedTotal() < uint64(b.N) {
		s.RunFor(50 * Microsecond)
	}
}
