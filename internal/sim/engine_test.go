package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEnginePastEventClampedToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(100, func() {
		e.At(50, func() { // in the past
			if e.Now() != 100 {
				t.Errorf("past event ran at %v, want 100", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			e.After(1, recur)
		}
	}
	e.After(1, recur)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 10,20 only", ran)
	}
	if e.Now() != 25 {
		t.Fatalf("Now = %v, want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("after Run, ran %v, want 4 events", ran)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
	e.RunFor(50)
	if e.Now() != 150 {
		t.Fatalf("Now = %v, want 150", e.Now())
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("empty engine reported a next event")
	}
	e.At(42, func() {})
	at, ok := e.NextEventTime()
	if !ok || at != 42 {
		t.Fatalf("NextEventTime = %v,%v, want 42,true", at, ok)
	}
}

func TestEngineDeterministicRand(t *testing.T) {
	a := NewEngine(7).Rand()
	b := NewEngine(7).Rand()
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed engines diverged")
		}
	}
}

// Property: for any set of (time, id) pairs, execution order is sorted by
// time with FIFO tie-break on insertion order.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) > 500 {
			times = times[:500]
		}
		e := NewEngine(1)
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, raw := range times {
			at := Time(raw)
			i := i
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimerFiresOnce(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(10)
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerStopCancels(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(10)
	e.At(5, func() { tm.Stop() })
	e.Run()
	if fired != 0 {
		t.Fatalf("fired %d times after Stop, want 0", fired)
	}
}

func TestTimerResetSupersedesEarlierArm(t *testing.T) {
	e := NewEngine(1)
	var firedAt []Time
	tm := NewTimer(e, func() { firedAt = append(firedAt, e.Now()) })
	tm.Reset(10)
	e.At(5, func() { tm.Reset(20) }) // should fire at 25, not 10
	e.Run()
	if len(firedAt) != 1 || firedAt[0] != 25 {
		t.Fatalf("firedAt = %v, want [25]", firedAt)
	}
}

func TestTimerRearmsAfterFire(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		fired++
		if fired < 3 {
			tm.Reset(10)
		}
	})
	tm.Reset(10)
	e.Run()
	if fired != 3 {
		t.Fatalf("fired %d, want 3", fired)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, 10, 0, func() { ticks = append(ticks, e.Now()) })
	e.RunUntil(45)
	tk.Stop()
	e.RunUntil(100)
	want := []Time{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerPhaseAlignment(t *testing.T) {
	// Two tickers created at different times with the same phase must tick
	// at the same instants — this models synchronized beacons (§4.2).
	e := NewEngine(1)
	var a, b []Time
	NewTicker(e, 10, 3, func() { a = append(a, e.Now()) })
	e.At(7, func() {
		NewTicker(e, 10, 3, func() { b = append(b, e.Now()) })
	})
	e.RunUntil(60)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("tickers did not tick")
	}
	for _, at := range append(append([]Time{}, a...), b...) {
		if at%10 != 3 {
			t.Fatalf("tick at %v not aligned to phase 3 mod 10", at)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var tk *Ticker
	tk = NewTicker(e, 10, 0, func() {
		fired++
		tk.Stop()
	})
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
}

// TestPendingExcludesStoppedTimers is the Stop()-vs-pending regression: a
// stopped timer leaves its scheduled firing in the heap as a tombstone, and
// Pending must not count it — before tombstone accounting, RunUntil exiting
// early with a stopped timer queued reported one pending event too many.
func TestPendingExcludesStoppedTimers(t *testing.T) {
	e := NewEngine(1)
	e.At(200, func() {})
	tm := NewTimer(e, func() { t.Fatal("stopped timer fired") })
	tm.Reset(100)
	tm.Stop()
	e.RunUntil(50) // exits early: both events are still queued
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// TestPendingExcludesRearmedTimers: each Reset of an armed timer orphans
// the previous firing; only the latest counts.
func TestPendingExcludesRearmedTimers(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(100)
	tm.Reset(300)
	tm.Reset(500)
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after re-arms = %d, want 1", got)
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// TestDrainReturnsLiveCount: Drain empties the queue and reports only live
// events, not timer tombstones.
func TestDrainReturnsLiveCount(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {})
	e.At2(200, func(a, b any) {}, nil, nil)
	tm := NewTimer(e, func() {})
	tm.Reset(150)
	tm.Stop()
	if got := e.Drain(); got != 2 {
		t.Fatalf("Drain = %d, want 2", got)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Drain = %d, want 0", got)
	}
	if _, ok := e.NextEventTime(); ok {
		t.Fatal("events remain after Drain")
	}
	if got := e.Drain(); got != 0 {
		t.Fatalf("second Drain = %d, want 0", got)
	}
}
