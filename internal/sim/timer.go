package sim

// Timer is a cancelable, re-armable one-shot timer on the simulation clock.
// It is the building block for retransmission timeouts, beacon intervals,
// and dead-link detection in the network model.
type Timer struct {
	eng   *Engine
	fn    func()
	epoch uint64 // invalidates in-flight events from earlier arms
	armed bool
	at    Time
}

// NewTimer creates a timer that invokes fn when it fires. The timer starts
// disarmed.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// Reset (re)arms the timer to fire d nanoseconds from now, replacing any
// previously scheduled firing. The replaced firing stays in the event heap
// as a tombstone (it runs as a no-op); the engine counts tombstones so
// Pending stays accurate.
func (t *Timer) Reset(d Time) {
	if t.armed {
		t.eng.dead++
	}
	t.epoch++
	t.armed = true
	t.at = t.eng.Now() + d
	epoch := t.epoch
	t.eng.After(d, func() {
		if t.epoch != epoch {
			t.eng.dead--
			return
		}
		t.armed = false
		t.fn()
	})
}

// Stop disarms the timer. It is safe to call on a disarmed timer.
func (t *Timer) Stop() {
	if t.armed {
		t.eng.dead++
	}
	t.epoch++
	t.armed = false
}

// Armed reports whether the timer has a pending firing.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the virtual time at which the timer will fire. Only
// meaningful while Armed.
func (t *Timer) Deadline() Time { return t.at }

// Ticker invokes fn every interval until stopped. Used for periodic beacon
// generation and controller heartbeats.
type Ticker struct {
	timer    *Timer
	interval Time
	stopped  bool
}

// NewTicker starts a ticker with the given interval. The first tick fires
// one full interval from now. If phase is non-zero the first tick is aligned
// so ticks land at times ≡ phase (mod interval); the paper synchronizes
// beacon emission times across hosts this way (§4.2).
func NewTicker(eng *Engine, interval, phase Time, fn func()) *Ticker {
	tk := &Ticker{interval: interval}
	tk.timer = NewTimer(eng, func() {
		if tk.stopped {
			return
		}
		fn()
		if !tk.stopped {
			tk.timer.Reset(tk.interval)
		}
	})
	first := interval
	if phase > 0 {
		now := eng.Now()
		next := ((now-phase)/interval+1)*interval + phase
		if next <= now {
			next += interval
		}
		first = next - now
	}
	tk.timer.Reset(first)
	return tk
}

// Stop halts the ticker; no further ticks fire.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.timer.Stop()
}
